package latchchar

import (
	"math"
	"testing"

	"latchchar/internal/solver"
	"latchchar/internal/transient"
)

// TestChordFallbackOnStiffTSPC runs the chord fast path over the real TSPC
// register on a deliberately coarse grid: ~100 ps steps across 100 ps clock
// and data edges, so the Jacobian at the start of an edge step is badly
// stale and chord iterations stall. The engine must fall back to full
// Newton transparently — same answer as the exact path, no ErrNewtonFailure
// — while still serving chord iterations on the quiescent stretches.
func TestChordFallbackOnStiffTSPC(t *testing.T) {
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst.Data.SetSkews(1.2e-9, 1.2e-9)
	x0, _, err := solver.DCOperatingPoint(inst.Circuit, 0, nil, solver.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tEnd := inst.Edge50 + 2e-9
	g, err := transient.UniformGrid(0, tEnd, int(tEnd/100e-12))
	if err != nil {
		t.Fatal(err)
	}

	exact, err := transient.NewEngine(inst.Circuit, transient.Options{}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := transient.NewEngine(inst.Circuit, transient.Options{Chord: true}).Run(x0, g)
	if err != nil {
		t.Fatalf("chord transient failed on stiff TSPC grid (fallback broken): %v", err)
	}
	if fast.Stats.ChordIters == 0 {
		t.Error("stiff TSPC chord run took no chord iterations")
	}
	// Stalled steps rebuild the Jacobian: full iterations beyond the very
	// first factorization prove the fallback engaged.
	if fast.Stats.Factorizations <= 1 {
		t.Errorf("stiff TSPC chord run factorized %d times; edge steps should have forced rebuilds",
			fast.Stats.Factorizations)
	}
	if fast.Stats.ChordIters >= fast.Stats.NewtonIters {
		t.Error("every iteration was a chord iteration; the stiff edges should have stalled some")
	}
	var maxDiff float64
	for i := range exact.X {
		if d := math.Abs(exact.X[i] - fast.X[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Errorf("stiff TSPC chord run deviates by %.3g V from exact", maxDiff)
	}
	t.Logf("chord iters %d/%d, factorizations %d (exact %d), max |Δx| %.3g V",
		fast.Stats.ChordIters, fast.Stats.NewtonIters,
		fast.Stats.Factorizations, exact.Stats.Factorizations, maxDiff)
}

// TestFastPathAccuracyGate is the tentpole acceptance gate: characterize
// TSPC and C²MOS exact and with the full fast path (chord + device bypass)
// and require (a) every fast-path contour point to satisfy the *exact*
// state-transition equation within MPNR's convergence tolerance scale —
// the fast path may relocate MPNR's iterates but not the contour it
// converges to — and (b) a substantial LU-factorization saving.
func TestFastPathAccuracyGate(t *testing.T) {
	// MPNR accepts a contour point at |h| ≤ HTol = 1e-6 V. The fast path
	// perturbs each transient by O(BypassVTol)-scale stamp staleness
	// (measured ~1e-7 V on the waveform), so exact-h at fast points must
	// stay within a small multiple of HTol.
	const hGate = 3e-6

	for _, tc := range []struct {
		cell    string
		minSave float64 // required fractional factorization saving
	}{
		{"tspc", 0.25}, // the ≥25% acceptance bar
		{"c2mos", 0.10},
	} {
		t.Run(tc.cell, func(t *testing.T) {
			cell, err := CellByName(tc.cell)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Points: 10, BothDirections: true}

			exact, err := Characterize(cell, opts)
			if err != nil {
				t.Fatal(err)
			}
			fastOpts := opts
			fastOpts.Eval = EvalConfig{Chord: true, DeviceBypass: true}
			fast, err := Characterize(cell, fastOpts)
			if err != nil {
				t.Fatal(err)
			}

			if fast.Stats.ChordIters == 0 {
				t.Error("fast path took no chord iterations")
			}
			if fast.Stats.DeviceBypasses == 0 {
				t.Error("fast path bypassed no device evaluations")
			}
			save := 1 - float64(fast.Stats.Factorizations)/float64(exact.Stats.Factorizations)
			if save < tc.minSave {
				t.Errorf("fast path saved %.0f%% of factorizations (%d vs %d), want ≥ %.0f%%",
					100*save, fast.Stats.Factorizations, exact.Stats.Factorizations, 100*tc.minSave)
			}

			// Re-evaluate every fast-path contour point with an exact
			// evaluator: the gate bounds the contour deviation in the
			// equation's own units (volts of h), independent of contour
			// geometry.
			ev, err := NewEvaluator(cell, EvalConfig{})
			if err != nil {
				t.Fatal(err)
			}
			var worst float64
			for _, p := range fast.Contour.Points {
				h, err := ev.Eval(p.TauS, p.TauH)
				if err != nil {
					t.Fatal(err)
				}
				if a := math.Abs(h); a > worst {
					worst = a
				}
			}
			if worst > hGate {
				t.Errorf("fast-path contour violates the exact state-transition equation by %.3g V (gate %.3g V)",
					worst, hGate)
			}
			t.Logf("%d contour points, worst |h_exact| %.3g V; factorizations %d → %d (%.0f%% fewer), chord %d, bypasses %d",
				len(fast.Contour.Points), worst,
				exact.Stats.Factorizations, fast.Stats.Factorizations, 100*save,
				fast.Stats.ChordIters, fast.Stats.DeviceBypasses)
		})
	}
}
