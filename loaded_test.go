package latchchar

import (
	"testing"
)

// loadedTSPCDeck is the built-in TSPC register driving a realistic load: a
// two-stage buffer and a 3-section RC wire ladder. It exercises the whole
// netlist→characterization pipeline at roughly twice the bare cell's
// unknown count (13 transistors, 9 capacitors, 3 resistors → ~25 MNA
// unknowns).
const loadedTSPCDeck = `
* TSPC register + output buffer + wire load
.model nch nmos VT0=0.43 KP=115u LAMBDA=0.06 COX=6m CJ=0.6n
.model pch pmos VT0=0.40 KP=30u  LAMBDA=0.10 COX=6m CJ=0.6n

Vdd  vdd 0 DC 2.5
Vclk clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd   d   0 DATA(11.05n 2.5 0 0.1n 0.1n)

* register (same as the built-in TSPC)
MP1 n1 d   vdd vdd pch W=1.4u L=0.25u
MP2 x  clk n1  vdd pch W=1.4u L=0.25u
MN1 x  d   0   0   nch W=0.6u L=0.25u
MP3 y  x   vdd vdd pch W=1.4u L=0.25u
MN2 y  clk n2  0   nch W=0.6u L=0.25u
MN3 n2 x   0   0   nch W=0.6u L=0.25u
MP4 q  y   vdd vdd pch W=1.4u L=0.25u
MN4 q  clk n3  0   nch W=0.6u L=0.25u
MN5 n3 y   0   0   nch W=0.6u L=0.25u
Cx x 0 12f
Cy y 0 12f
Cq q 0 10f

* two-stage buffer (sized up on the second stage)
MPB1 b1 q  vdd vdd pch W=2.8u L=0.25u
MNB1 b1 q  0   0   nch W=1.2u L=0.25u
MPB2 b2 b1 vdd vdd pch W=5.6u L=0.25u
MNB2 b2 b1 0   0   nch W=2.4u L=0.25u
Cb1 b1 0 8f

* wire: 3-section RC ladder to the far end
Rw1 b2 w1 200
Cw1 w1 0 20f
Rw2 w1 w2 200
Cw2 w2 0 20f
Rw3 w2 w3 200
Cw3 w3 0 30f

* measure at the far end of the wire: two inverting stages past Q, so the
* monitored transition has the same direction as Q (rising)
.out w3
.vdd 2.5
.crossfrac 0.5
.rising 1
`

func TestLoadedTSPCDeckCharacterizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization of the loaded cell")
	}
	d, err := ParseNetlistString(loadedTSPCDeck)
	if err != nil {
		t.Fatal(err)
	}
	cell := d.Cell("tspc-loaded")
	rep, err := Vet(cell, VetSpec{}, VetOptions{
		Enable: []string{"floating-node", "no-ground-path", "single-terminal"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("vet diagnostics on the loaded deck: %v", rep.Diagnostics)
	}
	inst, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n := inst.Circuit.N(); n < 16 {
		t.Fatalf("expected a bigger system, N = %d", n)
	}
	res, err := Characterize(cell, Options{Points: 15, BothDirections: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contour.Points) < 10 {
		t.Fatalf("contour too short: %d", len(res.Contour.Points))
	}
	// The wire and buffer add delay on top of the bare register.
	bare := characterizeOnce(t, "tspc")
	if res.Calibration.CharDelay <= bare.Calibration.CharDelay {
		t.Errorf("loaded delay %v ps not above bare %v ps",
			res.Calibration.CharDelay*1e12, bare.Calibration.CharDelay*1e12)
	}
	t.Logf("clock-to-output through buffer+wire: %.1f ps (bare register %.1f ps)",
		res.Calibration.CharDelay*1e12, bare.Calibration.CharDelay*1e12)
	// The setup/hold constraints live in the register, not the wire: the
	// setup asymptote should sit near the bare cell's.
	minS, _, err := res.Contour.MinSetup()
	if err != nil {
		t.Fatal(err)
	}
	bareS, _, err := bare.Contour.MinSetup()
	if err != nil {
		t.Fatal(err)
	}
	if d := minS - bareS; d > 40e-12 || d < -40e-12 {
		t.Errorf("loaded setup asymptote %v ps vs bare %v ps", minS*1e12, bareS*1e12)
	}
}
