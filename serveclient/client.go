package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxBodyBytes bounds how much of a response body the client reads: large
// enough for any contour result, small enough that a misbehaving endpoint
// cannot exhaust memory.
const maxBodyBytes = 32 << 20

// Client is a typed client for the latchchard v1 API. The zero value is not
// usable; construct with New. All methods are context-first and propagate a
// traceparent or correlation ID attached to the context via WithTraceparent /
// WithCorrelationID, so a coordinator forwarding a request keeps the caller's
// trace joined across hops.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default client has no global timeout —
// characterization jobs with wait=true legitimately run minutes; bound calls
// with the context instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a Client for a daemon base URL such as "http://127.0.0.1:8080".
// A bare host:port is accepted and defaults to http.
func New(baseURL string, opts ...Option) *Client {
	if baseURL != "" && !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the normalized base URL the client targets.
func (c *Client) BaseURL() string { return c.base }

// ctxKey namespaces context values owned by this package.
type ctxKey int

const (
	traceparentKey ctxKey = iota
	correlationKey
)

// WithTraceparent attaches a W3C traceparent header value to the context;
// requests made with that context carry it, and the daemon adopts the
// trace-id as the request's correlation ID.
func WithTraceparent(ctx context.Context, traceparent string) context.Context {
	return context.WithValue(ctx, traceparentKey, traceparent)
}

// WithCorrelationID attaches a plain X-Correlation-Id to the context, for
// callers that have a correlation ID that is not a 32-hex trace-id.
func WithCorrelationID(ctx context.Context, corr string) context.Context {
	return context.WithValue(ctx, correlationKey, corr)
}

// Characterize submits one characterization. With req.Wait it blocks until
// the job finishes and the returned status is terminal; otherwise the status
// is the accepted (queued/cached) snapshot and the caller polls or streams.
// A failed wait-job is returned as a JobStatus with State=StateFailed, not an
// error: transport and protocol failures are errors, job outcomes are status.
func (c *Client) Characterize(ctx context.Context, req *CharacterizeRequest) (*JobStatus, error) {
	return c.jobCall(ctx, http.MethodPost, "/v1/characterize", req)
}

// Batch submits a batch of jobs, mirroring Characterize's wait semantics.
func (c *Client) Batch(ctx context.Context, req *BatchRequest) (*JobStatus, error) {
	return c.jobCall(ctx, http.MethodPost, "/v1/batch", req)
}

// Job fetches the current status of a job by ID.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	return c.jobCall(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
}

// Poll fetches the job status until it reaches a terminal state, waiting
// interval between fetches (a non-positive interval defaults to 100ms).
// It returns the terminal status, or the context error if ctx ends first.
func (c *Client) Poll(ctx context.Context, id string, interval time.Duration) (*JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Statusz fetches the single-node status document.
func (c *Client) Statusz(ctx context.Context) (*StatusZ, error) {
	var st StatusZ
	if err := c.getJSON(ctx, "/v1/statusz", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ClusterStatusz fetches the coordinator status document.
func (c *Client) ClusterStatusz(ctx context.Context) (*ClusterStatusZ, error) {
	var st ClusterStatusZ
	if err := c.getJSON(ctx, "/v1/statusz", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Healthz probes liveness; nil means the daemon answered 200.
func (c *Client) Healthz(ctx context.Context) error {
	var hs HealthStatus
	return c.getJSON(ctx, "/v1/healthz", &hs)
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("serveclient: read metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, parseAPIError(resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	return body, nil
}

// roundTrip builds and performs one request with trace propagation. The
// caller owns resp.Body.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload any) (*http.Response, error) {
	var body io.Reader
	if payload != nil {
		buf, err := json.Marshal(payload)
		if err != nil {
			return nil, fmt.Errorf("serveclient: encode %s: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("serveclient: build %s: %w", path, err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp, _ := ctx.Value(traceparentKey).(string); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	if corr, _ := ctx.Value(correlationKey).(string); corr != "" {
		req.Header.Set("X-Correlation-Id", corr)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serveclient: %s %s: %w", method, path, err)
	}
	return resp, nil
}

// jobCall performs a request whose success body is a JobStatus. The server
// returns a JobStatus for failed wait-jobs too (job outcome, not protocol
// error), so the decode is shape-driven: a body with an "id" is a status
// regardless of HTTP code; anything else non-2xx is an APIError.
func (c *Client) jobCall(ctx context.Context, method, path string, payload any) (*JobStatus, error) {
	resp, err := c.roundTrip(ctx, method, path, payload)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("serveclient: read %s: %w", path, err)
	}
	var probe struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &probe); err == nil && probe.ID != "" {
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return nil, fmt.Errorf("serveclient: decode %s: %w", path, err)
		}
		return &st, nil
	}
	if resp.StatusCode/100 == 2 {
		return nil, fmt.Errorf("serveclient: %s returned %d with no job status", path, resp.StatusCode)
	}
	return nil, parseAPIError(resp.StatusCode, resp.Header.Get("Retry-After"), body)
}

// getJSON fetches path and strict-decodes a JSON document into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.roundTrip(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("serveclient: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return parseAPIError(resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("serveclient: decode %s: %w", path, err)
	}
	return nil
}

// IsNotFound reports whether err is a v1 not_found error.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && (ae.Code == CodeNotFound || ae.StatusCode == http.StatusNotFound)
}
