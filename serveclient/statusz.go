package serveclient

// StatusZ is the body of GET /v1/statusz on a single-node daemon (and of
// each worker snapshot inside a coordinator's ClusterStatusZ).
type StatusZ struct {
	UptimeMS float64 `json:"uptime_ms"`
	Draining bool    `json:"draining"`

	QueueDepth   int `json:"queue_depth"`
	QueueCap     int `json:"queue_cap"`
	InflightKeys int `json:"inflight_keys"`
	Workers      int `json:"workers"`

	Requests     int64 `json:"requests"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`
	Coalesced    int64 `json:"coalesced"`

	ResultCacheHits        int64 `json:"result_cache_hits"`
	CalibrationCacheHits   int64 `json:"calibration_cache_hits"`
	CalibrationCacheMisses int64 `json:"calibration_cache_misses"`

	// Latency carries rolling p50/p95/p99 per route, one entry per
	// (route, window) pair with samples in the window.
	Latency []RouteQuantiles `json:"latency"`

	Runtime *RuntimeJSON `json:"runtime,omitempty"`
}

// RouteQuantiles is the rolling-window latency summary of one route.
type RouteQuantiles struct {
	Route  string  `json:"route"`
	Window string  `json:"window"`
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// RuntimeJSON is the latest runtime self-telemetry sample.
type RuntimeJSON struct {
	Goroutines   int     `json:"goroutines"`
	HeapBytes    uint64  `json:"heap_bytes"`
	GCPauseMS    float64 `json:"gc_pause_total_ms"`
	SchedP99US   float64 `json:"sched_latency_p99_us"`
	SampledAgoMS float64 `json:"sampled_ago_ms"`
}

// Worker health states as reported in ClusterStatusZ.
const (
	WorkerUp       = "up"
	WorkerDraining = "draining"
	WorkerDown     = "down"
)

// ClusterStatusZ is the body of GET /v1/statusz on a cluster coordinator:
// ring and forwarding state plus a fleet aggregate folded from the latest
// health poll of every worker.
type ClusterStatusZ struct {
	UptimeMS float64 `json:"uptime_ms"`
	Draining bool    `json:"draining"`

	WorkersConfigured int `json:"workers_configured"`
	WorkersUp         int `json:"workers_up"`
	WorkersDraining   int `json:"workers_draining"`
	WorkersDown       int `json:"workers_down"`
	RingSlots         int `json:"ring_slots"`
	TrackedJobs       int `json:"tracked_jobs"`

	Requests        int64 `json:"requests"`
	Forwards        int64 `json:"forwards"`
	ForwardRetries  int64 `json:"forward_retries"`
	ForwardFailures int64 `json:"forward_failures"`
	Rehashes        int64 `json:"rehashes"`
	StreamEvents    int64 `json:"stream_events"`

	// Aggregate sums the job counters of the latest successful statusz poll
	// of every non-down worker.
	Aggregate ClusterAggregate `json:"aggregate"`

	// WorkerList holds one entry per configured worker, sorted by address.
	WorkerList []WorkerStatusZ `json:"workers"`

	// Latency carries the coordinator's own rolling route quantiles.
	Latency []RouteQuantiles `json:"latency"`
}

// ClusterAggregate is the fleet-wide sum of worker job counters.
type ClusterAggregate struct {
	QueueDepth      int   `json:"queue_depth"`
	InflightKeys    int   `json:"inflight_keys"`
	Requests        int64 `json:"requests"`
	JobsDone        int64 `json:"jobs_done"`
	JobsFailed      int64 `json:"jobs_failed"`
	JobsCanceled    int64 `json:"jobs_canceled"`
	Coalesced       int64 `json:"coalesced"`
	ResultCacheHits int64 `json:"result_cache_hits"`
}

// WorkerStatusZ is one worker's health entry in ClusterStatusZ.
type WorkerStatusZ struct {
	Addr string `json:"addr"`
	// State is WorkerUp, WorkerDraining or WorkerDown.
	State string `json:"state"`
	// ConsecutiveFailures counts statusz polls failed in a row.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastPollMS is milliseconds since the last successful poll (0 = never).
	LastPollMS float64 `json:"last_poll_ms,omitempty"`
	// InFlight is the coordinator's current forwarded-request count.
	InFlight int `json:"in_flight"`
	// StatusZ is the worker's last successful /v1/statusz snapshot.
	StatusZ *StatusZ `json:"statusz,omitempty"`
}
