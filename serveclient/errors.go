package serveclient

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Error codes carried by the v1 error envelope. The set is closed: servers
// must not invent codes outside this list, so clients can switch on them.
const (
	// CodeInvalidRequest — the request body failed validation (HTTP 400).
	CodeInvalidRequest = "invalid_request"
	// CodeNotFound — no such job or route (HTTP 404).
	CodeNotFound = "not_found"
	// CodeQueueFull — the job queue is at capacity; retry after the
	// Retry-After interval (HTTP 429).
	CodeQueueFull = "queue_full"
	// CodeDraining — the daemon is shutting down and rejects new work;
	// retry against another node after Retry-After (HTTP 503).
	CodeDraining = "draining"
	// CodeUpstreamUnavailable — a cluster coordinator exhausted its retry
	// budget against the worker ring (HTTP 503).
	CodeUpstreamUnavailable = "upstream_unavailable"
	// CodeInternal — an unexpected server-side failure (HTTP 500).
	CodeInternal = "internal"
)

// ErrorEnvelope is the body of every non-2xx v1 response:
//
//	{"error": {"code": "queue_full", "message": "...", "correlation_id": "..."}}
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the typed error inside the envelope.
type ErrorDetail struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description; not a stable contract.
	Message string `json:"message"`
	// CorrelationID echoes the request's correlation ID so the failure can
	// be joined against daemon logs and obs events.
	CorrelationID string `json:"correlation_id"`
}

// APIError is the client-side form of a non-2xx response. It preserves the
// HTTP status, the envelope fields and any Retry-After hint.
type APIError struct {
	StatusCode    int
	Code          string
	Message       string
	CorrelationID string
	// RetryAfter is the server's backoff hint (zero when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latchchard: HTTP %d", e.StatusCode)
	if e.Code != "" {
		fmt.Fprintf(&b, " %s", e.Code)
	}
	if e.Message != "" {
		fmt.Fprintf(&b, ": %s", e.Message)
	}
	if e.CorrelationID != "" {
		fmt.Fprintf(&b, " (corr %s)", e.CorrelationID)
	}
	return b.String()
}

// Temporary reports whether the error is a backpressure condition worth
// retrying (queue full, draining, upstream unavailable).
func (e *APIError) Temporary() bool {
	switch e.Code {
	case CodeQueueFull, CodeDraining, CodeUpstreamUnavailable:
		return true
	}
	return e.StatusCode == 429 || e.StatusCode == 503 || e.StatusCode == 502
}

// parseAPIError builds an APIError from a non-2xx response body. Bodies that
// are not a valid envelope (e.g. from a proxy in front of the daemon) degrade
// to CodeInternal with the raw body as message.
func parseAPIError(status int, retryAfter string, body []byte) *APIError {
	ae := &APIError{StatusCode: status, Code: CodeInternal}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		ae.CorrelationID = env.Error.CorrelationID
	} else {
		ae.Message = strings.TrimSpace(string(body))
	}
	if retryAfter != "" {
		if secs, err := time.ParseDuration(retryAfter + "s"); err == nil {
			ae.RetryAfter = secs
		}
	}
	return ae
}
