// Package serveclient defines the stable v1 wire contract of the latchchard
// characterization service — every request, response, error envelope and
// status document the daemon speaks, single-node or clustered — plus a typed,
// context-first HTTP client. It is the one place wire types are defined: the
// server (internal/serve), the cluster coordinator, the load generator
// (cmd/latchload) and the acceptance tests all import these types, so schema
// drift is a compile error rather than a production surprise.
//
// The schema is versioned by URL prefix: every endpoint lives under /v1/ and
// breaking changes get a new prefix. See DESIGN.md §14 for the contract.
package serveclient

import "encoding/json"

// Job states, as carried by JobStatus.State.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// TerminalState reports whether a job state is final.
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// CharacterizeRequest is the body of POST /v1/characterize.
type CharacterizeRequest struct {
	// Cell names a built-in register ("tspc", "c2mos", "tgate").
	Cell string `json:"cell,omitempty"`
	// Netlist is an inline SPICE-like deck; it overrides Cell (which then
	// only labels the deck). Process/Timing overrides do not apply to decks,
	// which carry their own stimulus.
	Netlist string `json:"netlist,omitempty"`
	// Process and Timing partially override the built-in cell's defaults;
	// absent fields keep their default values.
	Process json.RawMessage `json:"process,omitempty"`
	Timing  json.RawMessage `json:"timing,omitempty"`
	// Options select the characterization query.
	Options OptionsRequest `json:"options"`
	// Wait blocks the request until the job finishes and returns the full
	// result inline instead of 202 + job id.
	Wait bool `json:"wait,omitempty"`
	// NoCache bypasses the result cache (the request still coalesces onto
	// an identical in-flight job).
	NoCache bool `json:"no_cache,omitempty"`
}

// OptionsRequest is the wire form of the characterization options. The
// schema is a deliberate subset of the engine options — fields with
// process-local semantics (observability hooks, step recording) stay
// server-side. Every field must carry a stable json tag: the canonical JSON
// encoding of this struct feeds the sha256 coalescing key, on the worker and
// on the cluster coordinator's consistent-hash ring alike.
type OptionsRequest struct {
	// Points is the contour point budget per trace direction (default 40).
	Points int `json:"points,omitempty"`
	// StepPS is the Euler step length α in picoseconds (default 5).
	StepPS float64 `json:"step_ps,omitempty"`
	// BothDirections traces the curve both ways from the seed.
	BothDirections bool `json:"both_directions,omitempty"`
	// Resample redistributes the contour into exactly N arc-length-uniform
	// points (0 = off).
	Resample int `json:"resample,omitempty"`
	// Degrade is the clock-to-Q degradation fraction defining setup/hold
	// (default 0.10).
	Degrade float64 `json:"degrade,omitempty"`
	// MaxSetupSkewPS bounds the skew domain in picoseconds.
	MaxSetupSkewPS float64 `json:"max_setup_skew_ps,omitempty"`
	// Method selects the integration scheme: "be" (default) or "trap".
	Method string `json:"method,omitempty"`
	// FastPath enables the chord/bypass Newton fast path (DESIGN §10).
	FastPath bool `json:"fast_path,omitempty"`
	// Block is the tracer's predictor lookahead width: a value > 1 corrects
	// a bundle of Block predicted points as one lockstep block-transient
	// (DESIGN §13). 0 or 1 keeps the scalar predictor.
	Block int `json:"block,omitempty"`

	// MCSamples > 0 turns the request into a variance-aware Monte-Carlo
	// characterization (DESIGN §16): the nominal corner is characterized
	// once, MCSamples process draws are solved by warm probe polishing, and
	// the result carries sigma percentile contours. Built-in cells only —
	// inline netlists carry no process parameters to perturb. All MC fields
	// participate in the coalescing key through the canonical encoding.
	MCSamples int `json:"mc_samples,omitempty"`
	// Sampler selects the process-draw scheme: "iid" (default), "lhs"
	// (Latin hypercube) or "sobol" (scrambled Sobol).
	Sampler string `json:"sampler,omitempty"`
	// Seed makes the draw deterministic; the sample set is a pure function
	// of (seed, sampler, mc_samples, sigma_vt, sigma_kp).
	Seed int64 `json:"seed,omitempty"`
	// SigmaVT and SigmaKP are the relative 1σ variations applied to
	// threshold voltages and transconductances (defaults 3% and 5%).
	SigmaVT float64 `json:"sigma_vt,omitempty"`
	SigmaKP float64 `json:"sigma_kp,omitempty"`
	// SigmaLevel is the percentile-band half-width in sample standard
	// deviations (default 3 — the 3σ band).
	SigmaLevel float64 `json:"sigma_level,omitempty"`
	// MCProbes is the number of probe points the per-sample deltas are
	// measured at (default 12).
	MCProbes int `json:"mc_probes,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: the jobs run as one engine
// batch, so jobs sharing a cell warm-start from their group leader. On a
// cluster coordinator the items are partitioned across workers by their
// individual coalescing keys, so identical items land on the same node.
type BatchRequest struct {
	Jobs []BatchJobRequest `json:"jobs"`
	Wait bool              `json:"wait,omitempty"`
}

// BatchJobRequest is one job of a batch. Wait and NoCache on the embedded
// request are ignored for batch items.
type BatchJobRequest struct {
	CharacterizeRequest
	// Name labels the job in the results (default: the cell name).
	Name string `json:"name,omitempty"`
	// Cold opts the job out of warm-start seeding.
	Cold bool `json:"cold,omitempty"`
}

// JobStatus is the response of GET /v1/jobs/{id} and of synchronous
// characterize/batch requests.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // queued, running, done, failed, canceled
	// Corr is the correlation ID of the request that created the job; every
	// daemon log line and NDJSON event of the job carries the same ID.
	// Coalesced requests keep the creating request's ID.
	Corr string `json:"corr,omitempty"`
	// Coalesced counts the extra requests that attached to this job instead
	// of running their own characterization.
	Coalesced int `json:"coalesced,omitempty"`
	// Cached reports the response was served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// QueuedMS, RunMS report wall-clock spent queued and running.
	QueuedMS float64 `json:"queued_ms,omitempty"`
	RunMS    float64 `json:"run_ms,omitempty"`
	Error    string  `json:"error,omitempty"`
	// Partial reports a canceled job that still carries the contour prefix
	// traced before cancellation.
	Partial bool        `json:"partial,omitempty"`
	Result  *ResultJSON `json:"result,omitempty"`
	// Results holds per-job outcomes for batch jobs, in request order.
	Results []BatchItemJSON `json:"results,omitempty"`
}

// Terminal reports whether the job reached a final state.
func (s *JobStatus) Terminal() bool { return TerminalState(s.State) }

// ResultJSON renders a characterization result. For a Monte-Carlo request
// the top-level fields describe the nominal corner and Sigma carries the
// statistical estimate.
type ResultJSON struct {
	Cell        string          `json:"cell"`
	Contour     []PointJSON     `json:"contour"`
	Calibration CalibrationJSON `json:"calibration"`
	PlainSims   int             `json:"plain_sims"`
	GradSims    int             `json:"grad_sims"`
	TotalSims   int             `json:"total_sims"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	Stats       StatsJSON       `json:"stats"`
	Sigma       *SigmaJSON      `json:"sigma,omitempty"`
}

// SigmaJSON renders the percentile-contour estimate of a variance-aware
// Monte-Carlo run. Probes, DeltaMeanPS/DeltaStdPS, Inner and Outer are
// parallel arrays over the covered probe points.
type SigmaJSON struct {
	// Level is the band half-width in sample standard deviations.
	Level float64 `json:"level"`
	// Samples counts the sample contours folded into the estimate;
	// WarmSamples of the run's draws were solved by warm probe polishing,
	// ColdFallbacks by a full characterization.
	Samples       int `json:"samples"`
	WarmSamples   int `json:"warm_samples"`
	ColdFallbacks int `json:"cold_fallbacks,omitempty"`
	// RunSims is the whole run's transient count (nominal included);
	// SimsSaved estimates the transients avoided vs naive per-sample
	// re-characterization (the mc_sims_saved counter).
	RunSims   int `json:"run_sims"`
	SimsSaved int `json:"sims_saved"`
	// Probes are the nominal probe points the deltas were measured at.
	Probes []PointJSON `json:"probes"`
	// DeltaMeanPS and DeltaStdPS are the per-probe normal-delta statistics
	// in picoseconds (positive = toward larger skews).
	DeltaMeanPS []float64 `json:"delta_mean_ps"`
	DeltaStdPS  []float64 `json:"delta_std_ps"`
	// Inner is the restrictive band edge (nominal + mean + level·std along
	// the probe normal); Outer the permissive one.
	Inner []PointJSON `json:"inner"`
	Outer []PointJSON `json:"outer"`
}

// PointJSON is one contour point, skews in picoseconds as in the CLI CSV.
type PointJSON struct {
	TauSPs float64 `json:"tau_s_ps"`
	TauHPs float64 `json:"tau_h_ps"`
	H      float64 `json:"h_volts"`
	Iters  int     `json:"corrector_iters"`
}

// CalibrationJSON renders the measured characteristic timing.
type CalibrationJSON struct {
	CharDelayPS float64 `json:"char_delay_ps"`
	TCNs        float64 `json:"tc_ns"`
	TfNs        float64 `json:"tf_ns"`
	R           float64 `json:"r_volts"`
	Rising      bool    `json:"rising"`
}

// StatsJSON renders the integrator-level work aggregate.
type StatsJSON struct {
	Steps             int     `json:"steps"`
	NewtonIters       int     `json:"newton_iters"`
	Factorizations    int     `json:"factorizations"`
	SensSolves        int     `json:"sens_solves"`
	ChordIters        int     `json:"chord_iters,omitempty"`
	JacobianReuses    int     `json:"jacobian_reuses,omitempty"`
	DeviceBypasses    int     `json:"device_bypasses,omitempty"`
	BlockSharedSteps  int     `json:"block_shared_steps,omitempty"`
	BlockPeelOffs     int     `json:"block_peel_offs,omitempty"`
	BlockDonorReplays int     `json:"block_donor_replays,omitempty"`
	WallMS            float64 `json:"wall_ms"`
}

// BatchItemJSON is one batch job's outcome.
type BatchItemJSON struct {
	Name              string      `json:"name"`
	Index             int         `json:"index"`
	Error             string      `json:"error,omitempty"`
	WarmStarted       bool        `json:"warm_started,omitempty"`
	CalibrationReused bool        `json:"calibration_reused,omitempty"`
	Result            *ResultJSON `json:"result,omitempty"`
}

// HealthStatus is the body of GET /v1/healthz.
type HealthStatus struct {
	Status string `json:"status"` // "ok" or "draining"
}
