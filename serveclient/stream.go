package serveclient

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// maxEventBytes bounds one NDJSON event line. Events are small (schema v1
// caps point payloads), but a bound keeps a corrupted stream from ballooning
// the scanner buffer.
const maxEventBytes = 1 << 20

// EventStream is a live NDJSON subscription to one job's obs events
// (GET /v1/jobs/{id}/events). The stream replays the job's buffered history
// and then follows live events until the job closes its run. Always Close a
// stream, even after Next returns false.
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	err  error
	n    int
}

// Stream subscribes to a job's event stream. The returned stream is bound to
// ctx: canceling it terminates Next with ctx's error.
func (c *Client) Stream(ctx context.Context, id string) (*EventStream, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		return nil, parseAPIError(resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxEventBytes)
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Next returns the next event line. ok=false means the stream ended: check
// Err to distinguish a clean end-of-stream from a transport failure. Blank
// lines are skipped; each returned message is one complete JSON event.
func (s *EventStream) Next() (event json.RawMessage, ok bool) {
	if s.err != nil {
		return nil, false
	}
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			s.err = fmt.Errorf("serveclient: event %d is not valid JSON", s.n)
			return nil, false
		}
		s.n++
		out := make(json.RawMessage, len(line))
		copy(out, line)
		return out, true
	}
	s.err = s.sc.Err()
	return nil, false
}

// Count returns how many events Next has yielded.
func (s *EventStream) Count() int { return s.n }

// Err returns the terminal error, nil after a clean end-of-stream.
func (s *EventStream) Err() error { return s.err }

// Close releases the underlying connection.
func (s *EventStream) Close() error { return s.body.Close() }
