package latchchar

import (
	"testing"

	"latchchar/internal/wave"
)

// TestDegradeFamilyNests checks the physical ordering of the contour family
// across the degradation criterion: allowing less clock-to-Q degradation
// (5%) demands larger skews than allowing more (20%), so the setup-time
// asymptote shifts right as the criterion tightens. This generalizes the
// paper's single 10% contour to the family a library characterization
// would tabulate.
func TestDegradeFamilyNests(t *testing.T) {
	if testing.Short() {
		t.Skip("three characterizations")
	}
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	setupAsymptote := func(degrade float64) float64 {
		res, err := Characterize(cell, Options{
			Points:         12,
			BothDirections: true,
			Eval:           EvalConfig{Degrade: degrade},
		})
		if err != nil {
			t.Fatalf("degrade %v: %v", degrade, err)
		}
		minS, _, err := res.Contour.MinSetup()
		if err != nil {
			t.Fatal(err)
		}
		return minS
	}
	s5 := setupAsymptote(0.05)
	s10 := setupAsymptote(0.10)
	s20 := setupAsymptote(0.20)
	t.Logf("setup asymptote: 5%%→%.1f ps, 10%%→%.1f ps, 20%%→%.1f ps", s5*1e12, s10*1e12, s20*1e12)
	if !(s5 > s10 && s10 > s20) {
		t.Errorf("contour family does not nest: %v, %v, %v", s5, s10, s20)
	}
}

// Ablation A6: data-ramp profile. The smoothstep ramp (default) keeps h(τ)
// C¹ in the skews; the linear SPICE-style ramp has kinked derivatives. Both
// must characterize successfully and agree on the contour location — the
// ramp shape is a 100 ps detail against ~300 ps skews.
func TestAblationRampShape(t *testing.T) {
	if testing.Short() {
		t.Skip("two characterizations")
	}
	p := DefaultProcess()
	asymptote := func(shape wave.RampShape) float64 {
		tm := DefaultTiming()
		tm.DataShape = shape
		res, err := Characterize(TSPCCell(p, tm), Options{Points: 12, BothDirections: true})
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		minS, _, err := res.Contour.MinSetup()
		if err != nil {
			t.Fatal(err)
		}
		return minS
	}
	smooth := asymptote(RampSmooth)
	linear := asymptote(RampLinear)
	t.Logf("setup asymptote: smoothstep %.2f ps, linear %.2f ps", smooth*1e12, linear*1e12)
	if d := smooth - linear; d > 15e-12 || d < -15e-12 {
		t.Errorf("ramp shape moved the setup asymptote by %v ps", d*1e12)
	}
}
