package latchchar

import (
	"errors"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"testing"

	"latchchar/internal/cli"
)

// sigintAfterGrads wraps a Problem and raises SIGINT at this process after a
// fixed number of gradient evaluations — the deterministic stand-in for a
// user pressing ^C mid-trace.
type sigintAfterGrads struct {
	Problem
	after int32
	count atomic.Int32
	t     *testing.T
}

func (s *sigintAfterGrads) EvalGrad(tauS, tauH float64) (h, dhdS, dhdH float64, err error) {
	if s.count.Add(1) == s.after {
		if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
			s.t.Errorf("raising SIGINT: %v", err)
		}
	}
	return s.Problem.EvalGrad(tauS, tauH)
}

// TestSIGINTMidTracePartialContour: the cli.SignalContext handler turns a
// real first SIGINT into context cancellation, and the engine hands back the
// partial contour — the end-to-end contract behind "^C stops cleanly".
// (The companion internal/cli tests cover the second-SIGINT hard exit.)
func TestSIGINTMidTracePartialContour(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-scale transients")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal delivery")
	}
	ev, err := NewEvaluator(TSPCCell(DefaultProcess(), DefaultTiming()), EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := FindSeed(ev, SeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Register the handler before any signal can fire: SignalContext installs
	// the registration synchronously, so the in-trace SIGINT below is caught.
	ctx, stop := cli.SignalContext()
	defer stop()
	p := &sigintAfterGrads{Problem: ev, after: 8, t: t}
	ct, err := TraceContourCtx(ctx, p, seed.TauS, seed.TauH, TraceOptions{
		Step: 5e-12, MaxPoints: 40,
		Bounds: Rect{MinS: 1e-12, MaxS: 1e-9, MinH: 1e-12, MaxH: 1e-9},
	})
	if err == nil {
		t.Fatal("SIGINT-canceled trace returned no error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error does not wrap ErrCanceled: %v", err)
	}
	if ct == nil {
		t.Fatal("SIGINT-canceled trace dropped the partial contour")
	}
	if len(ct.Points) == 0 || len(ct.Points) >= 40 {
		t.Fatalf("partial contour has %d points, want 0 < n < 40", len(ct.Points))
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("signal context not canceled after SIGINT")
	}
}
