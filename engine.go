// The batch characterization engine: one bounded, work-stealing worker pool
// shared by SweepCorners, MonteCarlo, BruteForce and CharacterizeBatch, with
// an LRU cache of calibrations and warm-start seeding — the first traced
// contour of each cell group seeds its neighbors through a single MPNR
// correction instead of the full bracketing search. This is the v2 entry
// surface the paper's library-scale workload wants: "setup/hold times need
// to be characterized for every register/cell of every standard cell
// library ... for all process-voltage-temperature (PVT) corners or
// statistical process samples."
package latchchar

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"latchchar/internal/obs"
	"latchchar/internal/sched"
	"latchchar/internal/stf"
)

// EngineOptions configure a batch characterization engine.
type EngineOptions struct {
	// Parallelism bounds the shared worker pool (default GOMAXPROCS). This
	// single knob replaces the v1 per-call Workers fields: corners,
	// Monte-Carlo samples and surface-grid rows all draw from the same pool.
	Parallelism int
	// CacheSize bounds the calibration LRU in entries (default 64; negative
	// disables caching). Calibrations are keyed by (cell name, process,
	// timing, evaluator config), so cells that share those but differ in
	// hand-built topology should use distinct names or a negative CacheSize.
	// latchlint:ignore optvalidate every value is meaningful: 0 = default 64, negative = caching disabled
	CacheSize int
	// Obs attaches engine-level observability: each batch runs inside a
	// "batch" span. Per-job spans nest under the job's own Options.Obs.
	Obs *ObsRun
	// Logger receives structured job-lifecycle logs. Each line carries the
	// correlation ID of the job's obs run (WithObsCorr), so a service's
	// request logs, engine logs and event streams join on one identifier.
	// Nil discards (the library stays silent by default).
	Logger *slog.Logger
}

// Engine runs characterization jobs on a shared, bounded worker pool.
// Construct with NewEngine and Close when done; the package-level ctx-first
// functions (SweepCornersCtx, MonteCarloCtx, BruteForceCtx) use the shared
// DefaultEngine. All methods are safe for concurrent use.
type Engine struct {
	pool  *sched.Pool
	cache *sched.LRU[calKey, Calibration]
	obs   *ObsRun
	log   *slog.Logger
}

// NewEngine starts an engine with its own worker pool.
func NewEngine(opts EngineOptions) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	size := opts.CacheSize
	if size == 0 {
		size = 64
	}
	if size < 0 {
		size = 0 // sched.LRU treats a non-positive capacity as disabled
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Engine{
		pool:  sched.NewPool(opts.Parallelism),
		cache: sched.NewLRU[calKey, Calibration](size),
		obs:   opts.Obs,
		log:   logger,
	}, nil
}

// Close stops the engine's workers after draining queued jobs. The shared
// DefaultEngine is never closed.
func (e *Engine) Close() { e.pool.Close() }

// Parallelism returns the worker-pool bound.
func (e *Engine) Parallelism() int { return e.pool.NumWorkers() }

// CacheStats returns the calibration cache's cumulative hit/miss counts.
func (e *Engine) CacheStats() (hits, misses int64) { return e.cache.Stats() }

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the process-wide shared engine (GOMAXPROCS workers,
// default cache) backing the package-level ctx-first functions.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() {
		defaultEngine, _ = NewEngine(EngineOptions{}) // zero options never fail validation
	})
	return defaultEngine
}

// calKey identifies a calibration for cache purposes. Process and Timing are
// all-scalar comparable structs; the evaluator config is normalized
// (defaults applied, observability stripped) so explicit defaults and zero
// values share an entry.
type calKey struct {
	cell string
	proc Process
	tim  Timing
	cfg  EvalConfig
}

func calKeyOf(cell *Cell, cfg EvalConfig) calKey {
	c := cfg.WithDefaults()
	c.Obs = nil
	return calKey{cell: cell.Name, proc: cell.Process, tim: cell.Timing, cfg: c}
}

// Job is one unit of batch characterization.
type Job struct {
	// Name labels the job in results and observability (default: the cell
	// name).
	Name string
	// Cell is the register to characterize.
	Cell *Cell
	// Opts configure the characterization exactly as for CharacterizeCtx.
	Opts Options
	// Cold opts this job out of warm-start seeding: it always runs the full
	// bracketing search and never serves as a seed donor.
	Cold bool
}

// JobResult is one job's outcome.
type JobResult struct {
	// Name echoes the job label; Index its position in the request.
	Name  string
	Index int
	// Result is the characterization outcome. On cancellation it may be
	// non-nil alongside Err, carrying the partial contour traced so far.
	Result *Result
	// Err reports a failed or canceled job.
	Err error
	// WarmStarted reports the trace was seeded from its group leader's
	// contour, skipping the bracketing search.
	WarmStarted bool
	// CalibrationReused reports the calibration came from the engine cache
	// instead of a fresh calibration transient.
	CalibrationReused bool
}

// batchConfig adapts characterizeBatch to its callers: the per-job span
// name (batch-job, corner, mc-sample), the progress phase, and an optional
// extra in-flight cap below the pool's worker bound (MCOptions.Parallelism).
type batchConfig struct {
	span  string
	phase string
	limit int
}

// Characterize runs one characterization job on the engine's pool — the
// single-job sibling of CharacterizeBatch and the canonical entry point for
// long-running services: the job draws a worker from the bounded pool
// (instead of running on the caller's goroutine) and reuses the calibration
// LRU, so a daemon serving many clients never bypasses either. The context
// threads into the transient step loop exactly as in CharacterizeCtx; a
// canceled run returns the partial contour alongside an error wrapping
// ErrCanceled.
func (e *Engine) Characterize(ctx context.Context, cell *Cell, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cell == nil {
		return nil, optErr("cell", nil, "must be set")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := JobResult{Name: cell.Name}
	grp := e.pool.NewGroup(ctx)
	grp.Go(func(context.Context) {
		e.runJob(ctx, Job{Cell: cell, Opts: opts}, nil, &res, batchConfig{span: obs.SpanJob})
	})
	grp.Wait()
	return res.Result, res.Err
}

// CharacterizeBatch runs the jobs on the shared pool and returns results in
// job order. Jobs are grouped by cell name; each group's first job runs the
// cold flow (calibration, bracketing search, trace) and its traced contour
// warm-starts the rest of the group: the follower seeds from the donor's
// contour point at the largest hold skew — where the setup time decouples
// and the MPNR basin is widest — so one corrector solve replaces the whole
// bracketing search. Calibrations are cached across jobs with identical
// (cell, process, timing, config).
//
// A canceled ctx stops in-flight traces mid-transient; their JobResults
// carry partial contours and errors wrapping ErrCanceled, and queued jobs
// fail fast.
func (e *Engine) CharacterizeBatch(ctx context.Context, jobs []Job) []JobResult {
	return e.characterizeBatch(ctx, jobs, batchConfig{span: obs.SpanBatchJob, phase: obs.SpanBatch})
}

func (e *Engine) characterizeBatch(ctx context.Context, jobs []Job, bc batchConfig) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]JobResult, len(jobs))
	bsp := e.obs.StartSpan(obs.SpanBatch)
	defer bsp.End()
	var sem chan struct{}
	if bc.limit > 0 {
		sem = make(chan struct{}, bc.limit)
	}
	var done atomic.Int64
	grp := e.pool.NewGroup(ctx)
	runJob := func(i int, warm *ContourPoint) {
		if sem != nil {
			sem <- struct{}{}
			defer func() { <-sem }()
		}
		e.runJob(ctx, jobs[i], warm, &out[i], bc)
		jobs[i].Opts.Obs.Progress(obs.Progress{
			Phase: bc.phase,
			Done:  int(done.Add(1)), Total: len(jobs),
		})
	}

	// Partition: jobs that fail validation are reported without running;
	// Cold jobs and group leaders run immediately; followers are submitted
	// by their leader once its contour (the warm seed donor) exists.
	groups := map[string][]int{}
	var groupOrder []string
	var singles []int
	for i := range jobs {
		name := jobs[i].Name
		if name == "" && jobs[i].Cell != nil {
			name = jobs[i].Cell.Name
		}
		out[i] = JobResult{Name: name, Index: i}
		if jobs[i].Cell == nil {
			out[i].Err = optErr(fmt.Sprintf("jobs[%d].Cell", i), nil, "must be set")
			continue
		}
		if err := jobs[i].Opts.Validate(); err != nil {
			out[i].Err = err
			continue
		}
		if jobs[i].Cold {
			singles = append(singles, i)
			continue
		}
		key := jobs[i].Cell.Name
		if _, ok := groups[key]; !ok {
			groupOrder = append(groupOrder, key)
		}
		groups[key] = append(groups[key], i)
	}
	for _, i := range singles {
		grp.Go(func(context.Context) { runJob(i, nil) })
	}
	for _, key := range groupOrder {
		idxs := groups[key]
		leader, followers := idxs[0], idxs[1:]
		grp.Go(func(context.Context) {
			runJob(leader, nil)
			warm := warmPointOf(&out[leader])
			for _, f := range followers {
				grp.Go(func(context.Context) { runJob(f, warm) })
			}
		})
	}
	grp.Wait()
	return out
}

// warmPointOf picks the donor seed from a completed leader job: the contour
// point at the largest hold skew, nearest the region the bracketing search
// itself probes. A failed leader donates nothing (followers run cold).
func warmPointOf(r *JobResult) *ContourPoint {
	if r.Err != nil || r.Result == nil || r.Result.Contour == nil || len(r.Result.Contour.Points) == 0 {
		return nil
	}
	pts := r.Result.Contour.Points
	best := pts[0]
	for _, p := range pts[1:] {
		if p.TauH > best.TauH {
			best = p
		}
	}
	return &best
}

// runJob builds the instance and evaluator (reusing a cached calibration
// when available) and runs the characterization, filling res in place.
func (e *Engine) runJob(ctx context.Context, job Job, warm *ContourPoint, res *JobResult, bc batchConfig) {
	sp := job.Opts.Obs.StartSpan(bc.span)
	defer sp.End()
	if sp.Enabled() {
		sp.Logf("%s %s", bc.span, res.Name)
	}
	corr := job.Opts.Obs.CorrID()
	start := time.Now()
	defer func() {
		if res.Err != nil {
			e.log.Warn("characterization failed", "corr", corr, "job", res.Name,
				"span", bc.span, "dur_ms", float64(time.Since(start))/1e6, "error", res.Err.Error())
			return
		}
		e.log.Info("characterization done", "corr", corr, "job", res.Name,
			"span", bc.span, "dur_ms", float64(time.Since(start))/1e6,
			"warm_started", res.WarmStarted, "calibration_reused", res.CalibrationReused)
	}()
	copts := job.Opts
	copts.Obs = sp
	inst, err := job.Cell.Build()
	if err != nil {
		res.Err = fmt.Errorf("latchchar: build %s: %w", job.Cell.Name, err)
		return
	}
	cfg := copts.Eval
	cfg.Obs = sp
	var ev *Evaluator
	key := calKeyOf(job.Cell, copts.Eval)
	if cal, ok := e.cache.Get(key); ok {
		ev, err = stf.NewEvaluatorWithCalibration(inst, cfg, cal)
		if err == nil {
			res.CalibrationReused = true
			sp.Count(obs.CtrCalReused, 1)
		}
	} else {
		ev, err = stf.NewEvaluator(inst, cfg)
		if err == nil {
			e.cache.Put(key, ev.Calibration())
		}
	}
	if err != nil {
		res.Err = fmt.Errorf("latchchar: evaluator: %w", err)
		return
	}
	res.Result, res.WarmStarted, res.Err = characterizeCtx(ctx, ev, copts, warm)
}

// calibrationFor returns the cell's calibration, from the cache when
// available, otherwise by building a reference evaluator (whose calibration
// transient runs under sp) and caching the measurement.
func (e *Engine) calibrationFor(cell *Cell, cfg EvalConfig, sp *ObsRun) (Calibration, bool, error) {
	key := calKeyOf(cell, cfg)
	if cal, ok := e.cache.Get(key); ok {
		sp.Count(obs.CtrCalReused, 1)
		return cal, true, nil
	}
	inst, err := cell.Build()
	if err != nil {
		return Calibration{}, false, fmt.Errorf("latchchar: build %s: %w", cell.Name, err)
	}
	c := cfg
	c.Obs = sp
	ev, err := stf.NewEvaluator(inst, c)
	if err != nil {
		return Calibration{}, false, fmt.Errorf("latchchar: evaluator: %w", err)
	}
	e.cache.Put(key, ev.Calibration())
	return ev.Calibration(), false, nil
}
