package latchchar

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestBlockEvalMatchesScalarOnDecks is the block-transient exactness table:
// for every example netlist deck, EvalBlock at block sizes 1, 2, 4 and 8
// must reproduce the scalar fast path's state-transition values within the
// same 3 µV gate the fast path itself is held to against the exact
// evaluator. The probe points are the deck's own characterized contour —
// the operating region the trace loop actually feeds the kernel (far off
// the contour the output saturates and the fast path's bypass staleness
// alone exceeds the gate, on the scalar path just as much as on the block
// path). One evaluator serves both paths, so calibration and grid are
// identical and the comparison isolates the lockstep kernel.
func TestBlockEvalMatchesScalarOnDecks(t *testing.T) {
	const gate = 3e-6
	decks, err := filepath.Glob(filepath.Join("examples", "netlists", "*.cir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(decks) == 0 {
		t.Fatal("no example decks found")
	}

	for _, path := range decks {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			deck, err := ParseNetlistString(string(src))
			if err != nil {
				t.Fatal(err)
			}
			cell := deck.Cell(name)
			res, err := Characterize(cell, Options{
				Points:         8,
				BothDirections: true,
				Eval:           DefaultFastPath(),
			})
			if err != nil {
				t.Fatal(err)
			}
			pts := res.Contour.Points
			if len(pts) > 8 {
				pts = pts[:8]
			}
			if len(pts) < 4 {
				t.Fatalf("deck traced only %d contour points", len(pts))
			}
			ev, err := NewEvaluator(cell, DefaultFastPath())
			if err != nil {
				t.Fatal(err)
			}

			want := make([]float64, len(pts))
			for j, p := range pts {
				if want[j], err = ev.Eval(p.TauS, p.TauH); err != nil {
					t.Fatalf("scalar eval (%g, %g): %v", p.TauS, p.TauH, err)
				}
			}

			for _, k := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("block=%d", k), func(t *testing.T) {
					var worst float64
					for lo := 0; lo < len(pts); lo += k {
						hi := lo + k
						if hi > len(pts) {
							hi = len(pts)
						}
						tauS := make([]float64, 0, k)
						tauH := make([]float64, 0, k)
						for _, p := range pts[lo:hi] {
							tauS = append(tauS, p.TauS)
							tauH = append(tauH, p.TauH)
						}
						got, err := ev.EvalBlock(tauS, tauH)
						if err != nil {
							t.Fatalf("block eval points [%d:%d]: %v", lo, hi, err)
						}
						for i, v := range got {
							if d := math.Abs(v - want[lo+i]); d > worst {
								worst = d
							}
						}
					}
					if worst > gate {
						t.Errorf("block size %d deviates %.3g V from the scalar fast path (gate %.3g V)",
							k, worst, gate)
					}
					t.Logf("block size %d: worst |Δh| %.3g V over %d points", k, worst, len(pts))
				})
			}

			// The gradient block path must agree with scalar EvalGrad too:
			// h within the same gate, sensitivities to ~0.1% relative (they
			// feed the Newton corrector, not the accepted contour).
			h0, ds0, dh0, err := ev.EvalGrad(pts[0].TauS, pts[0].TauH)
			if err != nil {
				t.Fatal(err)
			}
			hb, dsb, dhb, errs, err := ev.EvalGradBlock(
				[]float64{pts[0].TauS, pts[1].TauS}, []float64{pts[0].TauH, pts[1].TauH})
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range errs {
				if e != nil {
					t.Fatalf("grad block lane %d: %v", i, e)
				}
			}
			if d := math.Abs(hb[0] - h0); d > gate {
				t.Errorf("grad block h deviates %.3g V from scalar", d)
			}
			relOK := func(got, want float64) bool {
				return math.Abs(got-want) <= 1e-3*math.Max(math.Abs(want), 1e-12)
			}
			if !relOK(dsb[0], ds0) || !relOK(dhb[0], dh0) {
				t.Errorf("grad block sensitivities (%g, %g) deviate from scalar (%g, %g)",
					dsb[0], dhb[0], ds0, dh0)
			}
		})
	}
}

// TestBlockTraceAccuracyGate holds the block-corrected trace loop to the
// same acceptance bar as the scalar fast path: every contour point produced
// with Block-wide lookahead bundles must satisfy the exact state-transition
// equation within 3 µV.
func TestBlockTraceAccuracyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization")
	}
	const hGate = 3e-6
	cell, err := CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Characterize(cell, Options{
		Points:         10,
		BothDirections: true,
		Block:          4,
		Eval:           DefaultFastPath(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contour.Points) < 10 {
		t.Fatalf("block trace produced only %d contour points", len(res.Contour.Points))
	}

	ev, err := NewEvaluator(cell, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, p := range res.Contour.Points {
		h, err := ev.Eval(p.TauS, p.TauH)
		if err != nil {
			t.Fatal(err)
		}
		if a := math.Abs(h); a > worst {
			worst = a
		}
	}
	if worst > hGate {
		t.Errorf("block-traced contour violates the exact state-transition equation by %.3g V (gate %.3g V)",
			worst, hGate)
	}
	t.Logf("%d contour points, worst |h_exact| %.3g V, shared steps %d, donor replays %d, peel-offs %d",
		len(res.Contour.Points), worst,
		res.Stats.BlockSharedSteps, res.Stats.BlockDonorReplays, res.Stats.BlockPeelOffs)
}
