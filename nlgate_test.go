package latchchar

import (
	"math"
	"testing"
)

// Ablation A4: the characterization flow is model-agnostic — switching the
// registers to the nonlinear (Meyer-style) gate-capacitance model changes
// the calibrated numbers only modestly and the tracer runs unchanged. This
// exercises state-dependent C(x) end to end (assembly, BE integration and
// the sensitivity recursion all re-evaluate C every step).
func TestNLGateCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization")
	}
	p := DefaultProcess()
	p.NMOS.NLGate = true
	p.PMOS.NLGate = true
	cell := TSPCCell(p, DefaultTiming())
	res, err := Characterize(cell, Options{Points: 15, BothDirections: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contour.Points) < 10 {
		t.Fatalf("contour too short: %d", len(res.Contour.Points))
	}
	for i, pnt := range res.Contour.Points {
		if math.Abs(pnt.H) > 1e-5 {
			t.Errorf("point %d off contour: %v", i, pnt.H)
		}
	}
	// Compare against the constant-capacitance calibration: same regime.
	ref := characterizeOnce(t, "tspc")
	dNL := res.Calibration.CharDelay
	dRef := ref.Calibration.CharDelay
	if rel := math.Abs(dNL-dRef) / dRef; rel > 0.35 {
		t.Errorf("NLGate shifted the characteristic delay by %.0f%% (from %v ps to %v ps)",
			rel*100, dRef*1e12, dNL*1e12)
	}
	t.Logf("characteristic delay: constant caps %.1f ps, nonlinear gate caps %.1f ps",
		dRef*1e12, dNL*1e12)
}
