package latchchar

import (
	"strings"
	"testing"
)

// TestSingularDeckFailsGracefully: two ideal sources forcing the same node
// to different voltages make the MNA system singular; every entry point
// must return an error (never panic).
func TestSingularDeckFailsGracefully(t *testing.T) {
	deck := `
.model nch nmos VT0=0.43 KP=115u
Vdd vdd 0 DC 2.5
Vbad vdd 0 DC 1.0 ; conflicting ideal source on the same node
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d vdd 0 nch W=1u L=0.25u
Cq q 0 10f
.out q
`
	d, err := ParseNetlistString(deck)
	if err != nil {
		t.Fatal(err)
	}
	cell := d.Cell("singular")
	if _, err := NewEvaluator(cell, EvalConfig{}); err == nil {
		t.Error("singular circuit accepted by NewEvaluator")
	}
	if _, err := Characterize(cell, Options{Points: 3}); err == nil {
		t.Error("singular circuit accepted by Characterize")
	}
	if _, err := BruteForce(cell, SurfaceOptions{N: 3}); err == nil {
		t.Error("singular circuit accepted by BruteForce")
	}
}

// TestNonLatchingDeckReportsCalibrationFailure: a "register" whose output
// never crosses the threshold after the active edge must fail calibration
// with a descriptive error.
func TestNonLatchingDeckReportsCalibrationFailure(t *testing.T) {
	deck := `
.model nch nmos VT0=0.43 KP=115u
Vdd vdd 0 DC 2.5
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
* output tied to ground through a resistor; nothing ever latches
Rq q 0 1k
Rv q vdd 1meg
M1 x d 0 0 nch W=1u L=0.25u
Cx x 0 10f
.out q
.rising 1
`
	d, err := ParseNetlistString(deck)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewEvaluator(d.Cell("dud"), EvalConfig{})
	if err == nil {
		t.Fatal("non-latching circuit calibrated successfully")
	}
	if !strings.Contains(err.Error(), "never crossed") {
		t.Errorf("unhelpful error: %v", err)
	}
}
