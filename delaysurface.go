package latchchar

import (
	"context"
	"fmt"
	"time"

	"latchchar/internal/obs"
	"latchchar/internal/stf"
	"latchchar/internal/surface"
)

// The paper's Section I describes two brute-force formulations. The primary
// one measures the clock-to-Q *delay* for every trial skew pair — "a
// clock-to-Q delay surface ... followed by extraction of a contour ... that
// contains all points that result in a prescribed increase (e.g., 10%)".
// BruteForce implements the alternative (output level at tf); this file
// implements the delay-surface variant. It is the more expensive baseline:
// every sample needs an extended transient that runs past the crossing
// instead of stopping at tf.

// DelaySurfaceResult is the outcome of BruteForceDelay.
type DelaySurfaceResult struct {
	// Surface holds measured clock-to-Q delays (seconds). Samples that
	// failed to latch carry FailDelay.
	Surface *Surface
	// FailDelay is the sentinel stored for non-latching samples: 3× the
	// characteristic delay, comfortably above any contour level of
	// interest.
	FailDelay float64
	// Contour is the iso-delay extraction at (1+degrade)·characteristic.
	Contour []Polyline
	// Calibration is the shared characteristic timing.
	Calibration Calibration
	// Sims is the number of grid simulations (N²).
	Sims int
	// Elapsed is the wall-clock generation time.
	Elapsed time.Duration
}

// BruteForceDelay is BruteForceDelayCtx with context.Background().
func BruteForceDelay(cell *Cell, opts SurfaceOptions) (*DelaySurfaceResult, error) {
	return BruteForceDelayCtx(context.Background(), cell, opts)
}

// BruteForceDelayCtx generates the paper's primary prior-practice baseline:
// an N×N clock-to-Q delay surface with the 10%-degradation iso-contour
// extracted by marching squares, running the grid on the shared
// DefaultEngine pool with cancellation.
func BruteForceDelayCtx(ctx context.Context, cell *Cell, opts SurfaceOptions) (*DelaySurfaceResult, error) {
	return DefaultEngine().BruteForceDelay(ctx, cell, opts)
}

// BruteForceDelay runs the delay-surface baseline on this engine's pool; see
// Engine.BruteForce.
func (e *Engine) BruteForceDelay(ctx context.Context, cell *Cell, opts SurfaceOptions) (*DelaySurfaceResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.N <= 0 {
		opts.N = 40
	}
	if (opts.Domain == Rect{}) {
		opts.Domain = Rect{MinS: 10e-12, MaxS: 0.8e-9, MinH: 10e-12, MaxH: 0.8e-9}
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = e.pool.NumWorkers()
	}
	start := time.Now()
	sp := opts.Obs.StartSpan(obs.SpanSurface)
	defer sp.End()
	cal, _, err := e.calibrationFor(cell, opts.Eval, sp)
	if err != nil {
		return nil, err
	}
	failDelay := 3 * cal.CharDelay

	factory := func() (surface.EvalFunc, error) {
		inst, err := cell.Build()
		if err != nil {
			return nil, err
		}
		cfg := opts.Eval
		cfg.Obs = sp
		ev, err := stf.NewEvaluatorWithCalibration(inst, cfg, cal)
		if err != nil {
			return nil, err
		}
		ev.SetContext(ctx)
		return func(s, h float64) (float64, error) {
			d, ok, err := ev.ClockToQ(s, h)
			if err != nil {
				return 0, err
			}
			if !ok || d > failDelay {
				return failDelay, nil
			}
			return d, nil
		}, nil
	}
	sAxis := surface.Linspace(opts.Domain.MinS, opts.Domain.MaxS, opts.N)
	hAxis := surface.Linspace(opts.Domain.MinH, opts.Domain.MaxH, opts.N)
	sf, err := surface.GenerateCtx(ctx, sp, sAxis, hAxis, factory, e.pool, workers)
	if err != nil {
		return nil, fmt.Errorf("latchchar: delay surface: %w", err)
	}
	level := (1 + degradeOf(opts.Eval)) * cal.CharDelay
	return &DelaySurfaceResult{
		Surface:     sf,
		FailDelay:   failDelay,
		Contour:     sf.Contour(level),
		Calibration: cal,
		Sims:        sf.NumSamples(),
		Elapsed:     time.Since(start),
	}, nil
}

// degradeOf returns the configured degradation fraction with the stf
// default applied.
func degradeOf(cfg EvalConfig) float64 {
	if cfg.Degrade > 0 {
		return cfg.Degrade
	}
	return 0.10
}
