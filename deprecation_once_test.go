package latchchar

import (
	"bytes"
	"log"
	"strings"
	"sync"
	"testing"
)

// TestWorkersDeprecationWarnsOnce hammers the legacy-Workers resolution path
// from many goroutines and demands exactly one deprecation line: the warning
// is a write-once global guarded by sync.Once, and under -race this test is
// the audit that the guard actually covers the logging.
func TestWorkersDeprecationWarnsOnce(t *testing.T) {
	resetWorkersDeprecationForTest()
	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	const goroutines = 32
	var wg sync.WaitGroup
	for range goroutines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := effectiveParallelism(0, 4, 2); got != 4 {
				t.Errorf("effectiveParallelism(0, 4, 2) = %d, want 4", got)
			}
		}()
	}
	wg.Wait()

	count := func() int {
		n := 0
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, "deprecated") {
				n++
			}
		}
		return n
	}
	if n := count(); n != 1 {
		t.Fatalf("deprecation warning logged %d times across %d concurrent calls, want exactly 1:\n%s",
			n, goroutines, buf.String())
	}
	// A later legacy call in the same process must stay silent.
	if got := effectiveParallelism(0, 8, 2); got != 8 {
		t.Fatalf("effectiveParallelism(0, 8, 2) = %d, want 8", got)
	}
	if n := count(); n != 1 {
		t.Fatalf("second legacy call re-logged the warning (%d lines)", n)
	}
}

// TestEffectiveParallelismPrecedence pins the resolution order: Parallelism
// wins, legacy Workers second, default last — and neither of the quiet paths
// touches the warning.
func TestEffectiveParallelismPrecedence(t *testing.T) {
	resetWorkersDeprecationForTest()
	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	if got := effectiveParallelism(3, 4, 2); got != 3 {
		t.Errorf("Parallelism must win: got %d, want 3", got)
	}
	if got := effectiveParallelism(0, 0, 2); got != 2 {
		t.Errorf("default must apply: got %d, want 2", got)
	}
	if strings.Contains(buf.String(), "deprecated") {
		t.Errorf("non-legacy paths logged the deprecation warning:\n%s", buf.String())
	}
}

// TestDefaultEngineSingleton: the process-wide engine is a write-once global
// behind sync.Once; concurrent first calls must all observe the same
// instance (the -race audit for defaultEngine).
func TestDefaultEngineSingleton(t *testing.T) {
	const goroutines = 16
	engines := make([]*Engine, goroutines)
	var wg sync.WaitGroup
	for i := range engines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			engines[i] = DefaultEngine()
		}()
	}
	wg.Wait()
	if engines[0] == nil {
		t.Fatal("DefaultEngine returned nil")
	}
	for i, e := range engines {
		if e != engines[0] {
			t.Fatalf("goroutine %d saw a different engine instance", i)
		}
	}
}
