// Flight-recorder re-exports: the always-on bounded ring buffer over a run's
// recent obs events, dumped as a JSONL post-mortem when a characterization
// fails, times out or is cancelled. The serving layer attaches one per job;
// library users attach one like any other sink:
//
//	run := latchchar.NewObsRun(latchchar.WithObsCorr("req-42"))
//	rec := latchchar.NewFlightRecorder(0)
//	run.AddSink(rec)
//	_, err := latchchar.CharacterizeCtx(ctx, cell, latchchar.Options{Obs: run})
//	if err != nil {
//		rec.WriteDump(w, latchchar.FlightDumpMeta{Corr: "req-42", Reason: "failed",
//			Err: err.Error()}, latchchar.FlightErrorEvent(err))
//	}
package latchchar

import (
	"errors"

	"latchchar/internal/core"
	"latchchar/internal/obs"
)

type (
	// FlightRecorder is the bounded ring-buffer sink holding a run's most
	// recent events for post-mortem dumps.
	FlightRecorder = obs.Recorder
	// FlightDumpMeta identifies a dump: correlation ID, job, reason, error.
	FlightDumpMeta = obs.DumpMeta
	// ObsIterate is one corrector iterate inside a dumped error event.
	ObsIterate = obs.Iterate
)

// NewFlightRecorder creates a flight recorder holding the last capacity
// events (capacity ≤ 0 selects the default window).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewRecorder(capacity) }

// WithObsCorr stamps every event of the run with a correlation ID so event
// streams, dumps and log lines of one request join on the same identifier.
func WithObsCorr(id string) ObsOption { return obs.WithCorr(id) }

// ValidateObsDump checks a flight-recorder post-mortem dump: the relaxed
// variant of ValidateObsEvents that accepts the truncated window a bounded
// ring leaves behind (orphan span ends, spans still open at the kill point).
func ValidateObsDump(events []ObsEvent) error { return obs.ValidateDump(events) }

// FlightErrorEvent converts a characterization failure into the structured
// error event appended to a flight-recorder dump. A convergence failure
// keeps its corrector iterate ring (τs, τh, |h| residual) and the predictor
// step-length schedule tried at the failure site; a cancellation keeps the
// interrupted stage. Returns nil for a nil error (no event to append).
func FlightErrorEvent(err error) *ObsEvent {
	if err == nil {
		return nil
	}
	ev := &ObsEvent{Msg: err.Error()}
	var ce *core.ConvergenceError
	if errors.As(err, &ce) {
		ev.Op = ce.Op
		ev.Iterates = make([]ObsIterate, len(ce.Iterates))
		for i, p := range ce.Iterates {
			ev.Iterates[i] = ObsIterate{TauS: p.TauS, TauH: p.TauH, H: p.H}
		}
		ev.StepLens = append([]float64(nil), ce.StepLens...)
		return ev
	}
	var can *CanceledError
	if errors.As(err, &can) {
		ev.Op = can.Op
	}
	return ev
}
