package latchchar

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// lineContour builds a synthetic nominal contour along the anti-diagonal
// with unit-normal gradients pointing toward larger skews.
func lineContour(n int) *Contour {
	ct := &Contour{}
	for j := 0; j < n; j++ {
		t := float64(j) / float64(n-1)
		ct.Points = append(ct.Points, ContourPoint{
			TauS: 100e-12 + 200e-12*t,
			TauH: 300e-12 - 200e-12*t,
			DhdS: math.Sqrt2 / 2, DhdH: math.Sqrt2 / 2,
		})
	}
	return ct
}

// shifted returns a sample whose contour is the nominal displaced by d along
// each probe normal.
func shifted(nom *Contour, d float64) MCSample {
	ct := &Contour{}
	for _, p := range nom.Points {
		ct.Points = append(ct.Points, ContourPoint{
			TauS: p.TauS + d*math.Sqrt2/2,
			TauH: p.TauH + d*math.Sqrt2/2,
		})
	}
	return MCSample{Result: &Result{Contour: ct}}
}

func TestSigmaFromSamplesKnownDeltas(t *testing.T) {
	nom := lineContour(5)
	samples := []MCSample{shifted(nom, 1e-12), shifted(nom, 3e-12)}
	sig, err := SigmaFromSamples(nom, samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Samples != 2 || len(sig.Delta) != 5 {
		t.Fatalf("samples=%d probes=%d", sig.Samples, len(sig.Delta))
	}
	for j, st := range sig.Delta {
		if math.Abs(st.Mean-2e-12) > 1e-18 || math.Abs(st.Std-1e-12) > 1e-18 {
			t.Errorf("probe %d: stats %+v, want mean 2ps std 1ps", j, st)
		}
	}
	// Inner = nominal + (mean + level·std)·n = +4 ps along the normal.
	wantIn := 4e-12
	for j, p := range sig.Inner.Points {
		d := math.Hypot(p.TauS-nom.Points[j].TauS, p.TauH-nom.Points[j].TauH)
		if math.Abs(d-wantIn) > 1e-18 {
			t.Errorf("inner probe %d displaced %v, want %v", j, d, wantIn)
		}
		// Restrictive direction: both skews must grow.
		if p.TauS <= nom.Points[j].TauS || p.TauH <= nom.Points[j].TauH {
			t.Errorf("inner probe %d not in the restrictive direction", j)
		}
	}
	// Outer = nominal + (mean − level·std)·n = 0: coincides with nominal.
	for j, p := range sig.Outer.Points {
		if d := math.Hypot(p.TauS-nom.Points[j].TauS, p.TauH-nom.Points[j].TauH); d > 1e-18 {
			t.Errorf("outer probe %d displaced %v, want 0", j, d)
		}
	}
}

func TestSigmaFromSamplesSkipsUnusable(t *testing.T) {
	nom := lineContour(4)
	// A probe-count-matched contour is measured index-wise; a longer one is
	// measured by nearest-point projection; a single point has no segment to
	// project onto and is unusable.
	dense := shifted(lineContour(9), 2e-12)
	point := &Contour{Points: nom.Points[:1]}
	samples := []MCSample{
		shifted(nom, 1e-12),
		{Err: errFake{}},                  // failed
		{Result: &Result{Contour: point}}, // no polyline segment
		{Result: &Result{}},               // no contour
		dense,
	}
	sig, err := SigmaFromSamples(nom, samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Samples != 2 {
		t.Errorf("usable samples = %d, want 2", sig.Samples)
	}
	// The projected sample must contribute the same 2 ps delta at interior
	// probes as an index-aligned one would.
	for j, st := range sig.Delta {
		if math.Abs(st.Mean-1.5e-12) > 1e-15 {
			t.Errorf("probe %d: mean %v, want 1.5ps", j, st.Mean)
		}
	}
}

func TestSigmaFromSamplesErrors(t *testing.T) {
	nom := lineContour(4)
	if _, err := SigmaFromSamples(nil, nil, 3); err == nil {
		t.Error("nil nominal accepted")
	}
	_, err := SigmaFromSamples(nom, []MCSample{shifted(nom, 1e-12)}, 3)
	if !errors.Is(err, ErrNoSamples) {
		t.Errorf("single-sample estimate: err = %v, want ErrNoSamples", err)
	}
}

func TestExportLibertySigma(t *testing.T) {
	nom := lineContour(4)
	sig, err := SigmaFromSamples(nom, []MCSample{shifted(nom, 1e-12), shifted(nom, 3e-12)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	mc := &MCResult{Nominal: &Result{Contour: nom}, Sigma: sig}
	var buf bytes.Buffer
	if err := ExportLibertySigma(&buf, "tspc", mc, LibertyOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cell (tspc)", "statistical corner: 2sigma", "latchchar_interdependent_pairs"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in sigma liberty fragment", want)
		}
	}
	// The emitted pair table must be the inner (restrictive) band edge, not
	// the nominal contour: every inner point sits 4 ps further out.
	if !strings.Contains(out, "statistical corner") {
		t.Error("corner label missing")
	}
	if err := ExportLibertySigma(&buf, "tspc", &MCResult{}, LibertyOptions{}); err == nil {
		t.Error("missing sigma estimate accepted")
	}
}

func TestProbeNormalsFallsBackToTangent(t *testing.T) {
	// Degenerate gradients: the rotated-tangent fallback must still point
	// toward larger skews.
	pts := []ContourPoint{
		{TauS: 100e-12, TauH: 300e-12},
		{TauS: 200e-12, TauH: 200e-12},
		{TauS: 300e-12, TauH: 100e-12},
	}
	ns, nh := probeNormals(pts)
	for j := range pts {
		if math.Abs(math.Hypot(ns[j], nh[j])-1) > 1e-12 {
			t.Errorf("probe %d: normal not unit length", j)
		}
		if ns[j]+nh[j] <= 0 {
			t.Errorf("probe %d: normal (%v, %v) not restrictive-oriented", j, ns[j], nh[j])
		}
	}
}

// The acceptance gate of the variance-aware flow: on a TSPC deck the warm
// probe path must match the brute-force percentile bands within tolerance
// while spending ≥5× fewer transients per sample.
func TestMonteCarloContoursMatchesBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("many characterizations")
	}
	tm := DefaultTiming()
	mk := func(p Process) *Cell { return TSPCCell(p, tm) }
	opts := MCOptions{
		Samples: 6,
		Seed:    3,
		Sampler: SamplerLHS,
		Probes:  8,
		Characterize: Options{
			Points:         40, // the paper's contour resolution
			BothDirections: true,
			Eval:           DefaultFastPath(),
		},
	}
	va, err := MonteCarloContours(mk, DefaultProcess(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if va.Sigma == nil || len(va.Sigma.Inner.Points) < 6 {
		t.Fatalf("sigma contours missing or sparse: %+v", va.Sigma)
	}
	if va.WarmSamples == 0 {
		t.Fatal("no sample used the warm probe path")
	}

	// Brute force: the identical sample set (MCDraws is pure), each sample
	// fully characterized, with a dense resample so the nearest-point
	// estimator sees a smooth reference polyline.
	naiveOpts := opts
	naiveOpts.Characterize.Resample = 64
	naive := MonteCarlo(mk, DefaultProcess(), naiveOpts)
	var naiveSims int
	for _, s := range naive {
		if s.Err != nil {
			t.Fatalf("naive sample %d: %v", s.Index, s.Err)
		}
		naiveSims += s.Result.TotalSims()
	}
	ref, err := SigmaFromSamples(va.Nominal.Contour, naive, opts.SigmaLevel)
	if err != nil {
		t.Fatal(err)
	}

	// Cost gate: ≥5× fewer transients per sample on the warm path.
	warmSims := va.TotalSims - va.NominalSims
	ratio := float64(naiveSims) / float64(warmSims)
	t.Logf("per-sample sims: naive %d, variance-aware %d (%.1fx); saved %d",
		naiveSims, warmSims, ratio, va.SimsSaved)
	if ratio < 5 {
		t.Errorf("per-sample simulation ratio %.2fx below the 5x gate", ratio)
	}
	if va.SimsSaved <= 0 {
		t.Error("mc_sims_saved accounting is zero")
	}

	// Accuracy gate: band edges agree within 2 ps at every probe both
	// estimates cover (the stated tolerance; band half-widths are tens of
	// ps). Probes are matched by nominal coordinates since either estimate
	// may drop arc-end probes.
	const tol = 2e-12
	type bandPt struct{ in, out ContourPoint }
	vaBands := map[[2]float64]bandPt{}
	for j, p := range va.Sigma.Probes {
		vaBands[[2]float64{p.TauS, p.TauH}] = bandPt{va.Sigma.Inner.Points[j], va.Sigma.Outer.Points[j]}
	}
	shared := 0
	for j, p := range ref.Probes {
		b, ok := vaBands[[2]float64{p.TauS, p.TauH}]
		if !ok {
			continue
		}
		shared++
		din := math.Hypot(b.in.TauS-ref.Inner.Points[j].TauS, b.in.TauH-ref.Inner.Points[j].TauH)
		dout := math.Hypot(b.out.TauS-ref.Outer.Points[j].TauS, b.out.TauH-ref.Outer.Points[j].TauH)
		t.Logf("probe %d: band deviation inner %.3gps outer %.3gps", j, din*1e12, dout*1e12)
		if din > tol || dout > tol {
			t.Errorf("probe %d: band deviation inner %v outer %v exceeds %v", j, din, dout, tol)
		}
	}
	// The dense reference drops probes near the sample arcs' open ends (the
	// end-clamp skip), so a margin of the 8 probes may be reference-only.
	if shared < 4 {
		t.Errorf("only %d probes shared between the estimates", shared)
	}
}
