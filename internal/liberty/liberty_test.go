package liberty

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"latchchar/internal/core"
	"latchchar/internal/stf"
)

func sampleContour() *core.Contour {
	return &core.Contour{Points: []core.Point{
		{TauS: 700e-12, TauH: 150e-12},
		{TauS: 400e-12, TauH: 160e-12},
		{TauS: 270e-12, TauH: 220e-12},
		{TauS: 266e-12, TauH: 500e-12},
	}}
}

func sampleCal() stf.Calibration {
	return stf.Calibration{CharDelay: 247.5e-12, R: 1.25, Rising: true}
}

func TestExportStructure(t *testing.T) {
	var buf bytes.Buffer
	err := Export(&buf, "tspc", sampleContour(), sampleCal(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cell (tspc) {",
		"pin (D) {",
		"direction : input;",
		`related_pin : "CLK";`,
		"timing_type : setup_rising;",
		"timing_type : hold_rising;",
		// Setup asymptote = min τs = 266 ps = 0.266 ns.
		`rise_constraint (scalar) { values ("0.266000"); }`,
		// Hold asymptote = min τh = 150 ps.
		`values ("0.150000")`,
		"latchchar_interdependent_pairs (CLK, D) {",
		`pair ("0.700000", "0.150000");`,
		`pair ("0.266000", "0.500000");`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
	// Deterministic without a stamp.
	var buf2 bytes.Buffer
	if err := Export(&buf2, "tspc", sampleContour(), sampleCal(), Options{}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("non-deterministic output")
	}
	if strings.Contains(out, "generated:") {
		t.Error("zero stamp should omit the timestamp")
	}
}

func TestExportCustomPinsUnitsStamp(t *testing.T) {
	var buf bytes.Buffer
	stamp := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	err := Export(&buf, "x", sampleContour(), sampleCal(), Options{
		ClockPin: "CP", DataPin: "DIN", TimeUnit: 1e-12, Stamp: stamp,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `related_pin : "CP";`) || !strings.Contains(out, "pin (DIN)") {
		t.Error("custom pins not honored")
	}
	// Picosecond units: 266 ps → 266.000000.
	if !strings.Contains(out, `values ("266.000000")`) {
		t.Errorf("time unit not honored:\n%s", out)
	}
	if !strings.Contains(out, "generated: 2026-07-04T12:00:00Z") {
		t.Error("stamp missing")
	}
}

func TestExportRejectsShortContour(t *testing.T) {
	var buf bytes.Buffer
	ct := &core.Contour{Points: []core.Point{{TauS: 1, TauH: 1}}}
	if err := Export(&buf, "x", ct, sampleCal(), Options{}); err == nil {
		t.Error("single-point contour accepted")
	}
}
