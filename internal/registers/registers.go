// Package registers builds the validation circuits of the paper: the
// 9-transistor true single-phase clocked (TSPC) positive-edge register of
// Fig. 6 and the C²MOS positive-edge master-slave register of Fig. 11(a)
// with a delayed complementary clock, plus a static transmission-gate
// register as an extra example cell. Each cell is exposed as a factory so
// concurrent characterization can build one independent instance per
// goroutine.
package registers

import (
	"fmt"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/wave"
)

// Process collects the electrical parameters shared by all cells. The
// defaults are calibrated so the TSPC characteristic clock-to-Q delay lands
// in the paper's few-hundred-picosecond range at VDD = 2.5 V.
type Process struct {
	VDD  float64
	NMOS device.MOSModel
	PMOS device.MOSModel
	// WN, WP, L are the default channel dimensions (m).
	WN, WP, L float64
	// NodeCap loads every internal stage node; LoadCap loads the output.
	NodeCap, LoadCap float64
}

// DefaultProcess returns the 0.25 µm-flavoured parameters used throughout
// the experiments.
func DefaultProcess() Process {
	return Process{
		VDD: 2.5,
		NMOS: device.MOSModel{
			Type: device.NMOS, VT0: 0.43, KP: 115e-6, Lambda: 0.06,
			Cox: 6e-3, CJ: 0.6e-9,
		},
		PMOS: device.MOSModel{
			Type: device.PMOS, VT0: 0.40, KP: 30e-6, Lambda: 0.10,
			Cox: 6e-3, CJ: 0.6e-9,
		},
		WN: 0.6e-6, WP: 1.4e-6, L: 0.25e-6,
		NodeCap: 12e-15, LoadCap: 25e-15,
	}
}

// Timing collects the clock and data-edge timing shared by all cells,
// following Section IV of the paper: 10 ns period, first rising ramp at
// 1 ns, 0.1 ns transitions, measurement at the second rising edge.
type Timing struct {
	Period     float64
	ClockDelay float64
	Rise, Fall float64
	// EdgeIndex selects the active (measured) rising edge; 1 is the 11 ns
	// edge of the paper.
	EdgeIndex int
	// DataShape selects the data-ramp profile (smoothstep by default).
	DataShape wave.RampShape
}

// DefaultTiming returns the paper's waveform timing.
func DefaultTiming() Timing {
	return Timing{
		Period:     10e-9,
		ClockDelay: 1e-9,
		Rise:       0.1e-9,
		Fall:       0.1e-9,
		EdgeIndex:  1,
		DataShape:  wave.RampSmooth,
	}
}

// Clock returns the clock waveform for this timing at the given rails.
func (t Timing) Clock(low, high float64) wave.Clock {
	return wave.Clock{
		Low: low, High: high,
		Period: t.Period, Delay: t.ClockDelay,
		Rise: t.Rise, Fall: t.Fall,
		Shape: wave.RampSmooth,
	}
}

// Instance is one freshly built register circuit ready for simulation.
type Instance struct {
	Circuit *circuit.Circuit
	// Data is the skew-parametric input-pulse waveform.
	Data *wave.DataPulse
	// Out is the monitored output unknown (the paper's c-vector).
	Out circuit.UnknownID
	// Clock is the primary clock waveform.
	Clock wave.Clock
	// Edge50 is the 50% crossing time of the active clock edge.
	Edge50 float64
	// VDD is the supply voltage.
	VDD float64
	// OutputRising reports the direction of the monitored Q transition for
	// the cell's standard stimulus.
	OutputRising bool
	// CrossFrac is the fraction of the output transition that defines the
	// clock-to-Q crossing (0.5 for TSPC, 0.9 for C²MOS per Section IV-B).
	CrossFrac float64
	// Supply is the branch-current unknown of the main supply source, used
	// for energy measurements; circuit.Ground when unknown.
	Supply circuit.UnknownID
}

// Cell is a register type plus its standard characterization stimulus.
type Cell struct {
	Name    string
	Process Process
	Timing  Timing
	// Build constructs an independent instance. Instances share no state,
	// so one can be built per goroutine.
	Build func() (*Instance, error)
}

// helper bundling repetitive construction with error capture.
type builder struct {
	c   *circuit.Circuit
	err error
}

func (b *builder) add(d circuit.Device, err error) {
	if b.err == nil && err != nil {
		b.err = err
		return
	}
	if b.err == nil {
		b.c.AddDevice(d)
	}
}

func (b *builder) vsrc(name string, p circuit.UnknownID, w wave.Waveform, role device.SourceRole) *device.VSource {
	d, err := device.NewVSource(name, p, circuit.Ground, w, role)
	b.add(d, err)
	if b.err != nil {
		return nil
	}
	return d
}

func (b *builder) nmos(p Process, name string, d, g, s circuit.UnknownID, w float64) {
	m, err := device.NewMOSFET(name, d, g, s, circuit.Ground, p.NMOS, w, p.L)
	b.add(m, err)
}

func (b *builder) pmos(p Process, name string, d, g, s, bulk circuit.UnknownID, w float64) {
	m, err := device.NewMOSFET(name, d, g, s, bulk, p.PMOS, w, p.L)
	b.add(m, err)
}

func (b *builder) cap(name string, n circuit.UnknownID, f float64) {
	d, err := device.NewCapacitor(name, n, circuit.Ground, f)
	b.add(d, err)
}

// TSPC returns the 9-transistor positive-edge TSPC register cell (Fig. 6).
//
// The stimulus latches a falling data pulse (rest = VDD, active = 0) at the
// measured edge; since the register inverts (Q = D̄ one cycle behind the
// pipeline), the monitored Q transition is a rise from 0 to VDD, and the
// clock-to-Q crossing uses the 50% level, as in Section IV-A.
func TSPC(p Process, tm Timing) *Cell {
	cell := &Cell{Name: "tspc", Process: p, Timing: tm}
	cell.Build = func() (*Instance, error) {
		b := &builder{c: circuit.New()}
		c := b.c
		vdd := c.Node("vdd")
		d := c.Node("d")
		clk := c.Node("clk")
		x := c.Node("x")
		y := c.Node("y")
		q := c.Node("q")
		n1 := c.Node("n1")
		n2 := c.Node("n2")
		n3 := c.Node("n3")

		clkW := tm.Clock(0, p.VDD)
		edge50 := clkW.Edge50(tm.EdgeIndex)
		data, err := wave.NewDataPulse(edge50, p.VDD, 0, tm.Rise, tm.Fall, tm.DataShape)
		if err != nil {
			return nil, err
		}
		vddSrc := b.vsrc("vdd", vdd, wave.DC(p.VDD), device.RoleSupply)
		b.vsrc("vclk", clk, clkW, device.RoleClock)
		b.vsrc("vdata", d, data, device.RoleData)

		// Stage 1: clocked input inverter.
		b.pmos(p, "mp1", n1, d, vdd, vdd, p.WP)
		b.pmos(p, "mp2", x, clk, n1, vdd, p.WP)
		b.nmos(p, "mn1", x, d, circuit.Ground, p.WN)
		// Stage 2: clocked inverter on X.
		b.pmos(p, "mp3", y, x, vdd, vdd, p.WP)
		b.nmos(p, "mn2", y, clk, n2, p.WN)
		b.nmos(p, "mn3", n2, x, circuit.Ground, p.WN)
		// Stage 3: clocked output inverter on Y.
		b.pmos(p, "mp4", q, y, vdd, vdd, p.WP)
		b.nmos(p, "mn4", q, clk, n3, p.WN)
		b.nmos(p, "mn5", n3, y, circuit.Ground, p.WN)

		b.cap("cx", x, p.NodeCap)
		b.cap("cy", y, p.NodeCap)
		b.cap("cq", q, p.LoadCap)
		if b.err != nil {
			return nil, fmt.Errorf("registers: tspc: %w", b.err)
		}
		if err := c.Finalize(); err != nil {
			return nil, err
		}
		return &Instance{
			Circuit:      c,
			Data:         data,
			Out:          q,
			Clock:        clkW,
			Edge50:       edge50,
			VDD:          p.VDD,
			OutputRising: true,
			CrossFrac:    0.5,
			Supply:       vddSrc.Branch(),
		}, nil
	}
	return cell
}

// C2MOSOptions extends the common parameters for the C²MOS cell.
type C2MOSOptions struct {
	// ClkbDelay delays the complementary clock after the true clock,
	// creating the 0–0/1–1 overlap that imposes the hold constraint
	// (0.3 ns in the paper).
	ClkbDelay float64
}

// C2MOS returns the C²MOS positive-edge master-slave register (Fig. 11(a))
// with clk̄ delayed by opts.ClkbDelay.
//
// The stimulus latches a falling data pulse; Q follows D through two
// inversions, so the monitored transition is a fall from VDD toward 0. Per
// Section IV-B the clock-to-Q crossing uses 90% of the transition
// (r = 0.1·VDD) to reject false transitions caused by the clock overlap.
func C2MOS(p Process, tm Timing, opts C2MOSOptions) *Cell {
	if opts.ClkbDelay == 0 {
		opts.ClkbDelay = 0.3e-9
	}
	cell := &Cell{Name: "c2mos", Process: p, Timing: tm}
	cell.Build = func() (*Instance, error) {
		b := &builder{c: circuit.New()}
		c := b.c
		vdd := c.Node("vdd")
		d := c.Node("d")
		clk := c.Node("clk")
		clkb := c.Node("clkb")
		x := c.Node("x")
		q := c.Node("q")
		a := c.Node("a")
		bb := c.Node("b")
		cc := c.Node("c")
		dd := c.Node("dd")

		clkW := tm.Clock(0, p.VDD)
		clkbW := wave.Inverted{W: wave.Shifted{W: clkW, Dt: opts.ClkbDelay}, Low: 0, High: p.VDD}
		edge50 := clkW.Edge50(tm.EdgeIndex)
		data, err := wave.NewDataPulse(edge50, p.VDD, 0, tm.Rise, tm.Fall, tm.DataShape)
		if err != nil {
			return nil, err
		}
		vddSrc := b.vsrc("vdd", vdd, wave.DC(p.VDD), device.RoleSupply)
		b.vsrc("vclk", clk, clkW, device.RoleClock)
		b.vsrc("vclkb", clkb, clkbW, device.RoleClock)
		b.vsrc("vdata", d, data, device.RoleData)

		// Master: transparent while CLK is low (PMOS gated by clk, NMOS by
		// clk̄).
		b.pmos(p, "mp1", a, d, vdd, vdd, p.WP)
		b.pmos(p, "mp2", x, clk, a, vdd, p.WP)
		b.nmos(p, "mn1", x, clkb, bb, p.WN)
		b.nmos(p, "mn2", bb, d, circuit.Ground, p.WN)
		// Slave: transparent while CLK is high.
		b.pmos(p, "mp3", cc, x, vdd, vdd, p.WP)
		b.pmos(p, "mp4", q, clkb, cc, vdd, p.WP)
		b.nmos(p, "mn3", q, clk, dd, p.WN)
		b.nmos(p, "mn4", dd, x, circuit.Ground, p.WN)

		b.cap("cx", x, p.NodeCap)
		b.cap("cq", q, p.LoadCap)
		if b.err != nil {
			return nil, fmt.Errorf("registers: c2mos: %w", b.err)
		}
		if err := c.Finalize(); err != nil {
			return nil, err
		}
		return &Instance{
			Circuit:      c,
			Data:         data,
			Out:          q,
			Clock:        clkW,
			Edge50:       edge50,
			VDD:          p.VDD,
			OutputRising: false,
			CrossFrac:    0.9,
			Supply:       vddSrc.Branch(),
		}, nil
	}
	return cell
}

// TGate returns a static transmission-gate master-slave register — not part
// of the paper's validation set, included as the extra example cell for the
// library. It uses complementary non-delayed clocks, back-to-back inverter
// storage and a non-inverting data path, so the monitored Q transition is a
// fall (the stimulus latches a falling data pulse), at the 50% level.
func TGate(p Process, tm Timing) *Cell {
	cell := &Cell{Name: "tgate", Process: p, Timing: tm}
	cell.Build = func() (*Instance, error) {
		b := &builder{c: circuit.New()}
		c := b.c
		vdd := c.Node("vdd")
		d := c.Node("d")
		clk := c.Node("clk")
		clkb := c.Node("clkb")
		m1 := c.Node("m1") // master storage
		m2 := c.Node("m2") // master inverter output
		s1 := c.Node("s1") // slave storage
		q := c.Node("q")

		clkW := tm.Clock(0, p.VDD)
		clkbW := wave.Inverted{W: clkW, Low: 0, High: p.VDD}
		edge50 := clkW.Edge50(tm.EdgeIndex)
		data, err := wave.NewDataPulse(edge50, p.VDD, 0, tm.Rise, tm.Fall, tm.DataShape)
		if err != nil {
			return nil, err
		}
		vddSrc := b.vsrc("vdd", vdd, wave.DC(p.VDD), device.RoleSupply)
		b.vsrc("vclk", clk, clkW, device.RoleClock)
		b.vsrc("vclkb", clkb, clkbW, device.RoleClock)
		b.vsrc("vdata", d, data, device.RoleData)

		tgate := func(tag string, from, to circuit.UnknownID, nGate, pGate circuit.UnknownID) {
			b.nmos(p, "mnt"+tag, to, nGate, from, p.WN)
			b.pmos(p, "mpt"+tag, to, pGate, from, vdd, p.WP)
		}
		inv := func(tag string, in, out circuit.UnknownID, scale float64) {
			b.pmos(p, "mpi"+tag, out, in, vdd, vdd, p.WP*scale)
			b.nmos(p, "mni"+tag, out, in, circuit.Ground, p.WN*scale)
		}
		// Master: pass gate open while CLK low, weak keeper inverter pair.
		tgate("1", d, m1, clkb, clk)
		inv("1", m1, m2, 1)
		inv("1k", m2, m1, 0.25) // keeper
		// Slave: pass gate open while CLK high.
		tgate("2", m2, s1, clk, clkb)
		inv("2", s1, q, 1)
		inv("2k", q, s1, 0.25) // keeper
		b.cap("cm", m1, p.NodeCap)
		b.cap("cs", s1, p.NodeCap)
		b.cap("cq", q, p.LoadCap)
		if b.err != nil {
			return nil, fmt.Errorf("registers: tgate: %w", b.err)
		}
		if err := c.Finalize(); err != nil {
			return nil, err
		}
		return &Instance{
			Circuit:      c,
			Data:         data,
			Out:          q,
			Clock:        clkW,
			Edge50:       edge50,
			VDD:          p.VDD,
			OutputRising: false, // Q follows D, and the stimulus pulls D low
			CrossFrac:    0.5,
			Supply:       vddSrc.Branch(),
		}, nil
	}
	return cell
}

// ByName returns the named built-in cell with default process and timing.
func ByName(name string) (*Cell, error) {
	p, tm := DefaultProcess(), DefaultTiming()
	switch name {
	case "tspc":
		return TSPC(p, tm), nil
	case "c2mos":
		return C2MOS(p, tm, C2MOSOptions{}), nil
	case "tgate":
		return TGate(p, tm), nil
	default:
		return nil, fmt.Errorf("registers: unknown cell %q (have tspc, c2mos, tgate)", name)
	}
}
