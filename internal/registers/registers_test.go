package registers

import (
	"math"
	"testing"

	"latchchar/internal/solver"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"tspc", "c2mos", "tgate"} {
		cell, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cell.Name != name {
			t.Errorf("cell name %q", cell.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestBuildProducesFinalizedCircuit(t *testing.T) {
	for _, name := range []string{"tspc", "c2mos", "tgate"} {
		cell, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := cell.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !inst.Circuit.Finalized() {
			t.Errorf("%s: circuit not finalized", name)
		}
		if inst.Data == nil || inst.Out < 0 {
			t.Errorf("%s: incomplete instance", name)
		}
		if math.Abs(inst.Edge50-11.05e-9) > 1e-18 {
			t.Errorf("%s: Edge50 = %v", name, inst.Edge50)
		}
	}
}

func TestInstancesAreIndependent(t *testing.T) {
	cell, err := ByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	a, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Circuit == b.Circuit {
		t.Fatal("instances share a circuit")
	}
	if a.Data == b.Data {
		t.Fatal("instances share a data waveform")
	}
	a.Data.SetSkews(1e-12, 1e-12)
	if s, _ := b.Data.Skews(); s == 1e-12 {
		t.Fatal("skew mutation leaked across instances")
	}
}

func TestCellsHaveDCOperatingPoint(t *testing.T) {
	for _, name := range []string{"tspc", "c2mos", "tgate"} {
		cell, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := cell.Build()
		if err != nil {
			t.Fatal(err)
		}
		inst.Data.SetSkews(1e-9, 1e-9)
		x, _, err := solver.DCOperatingPoint(inst.Circuit, 0, nil, solver.DCOptions{})
		if err != nil {
			t.Fatalf("%s: DC failed: %v", name, err)
		}
		// All node voltages must lie within a diode drop of the rails.
		for i := 0; i < inst.Circuit.NumNodes(); i++ {
			if x[i] < -0.5 || x[i] > inst.VDD+0.5 {
				t.Errorf("%s: node %s at %v V", name, inst.Circuit.NodeName(0)+"...", x[i])
			}
		}
	}
}

func TestTSPCExpectedTopology(t *testing.T) {
	cell, err := ByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 3 sources + 9 transistors + 3 caps.
	if n := len(inst.Circuit.Devices()); n != 15 {
		t.Errorf("device count = %d, want 15", n)
	}
	if inst.CrossFrac != 0.5 || !inst.OutputRising {
		t.Errorf("TSPC criterion wrong: frac=%v rising=%v", inst.CrossFrac, inst.OutputRising)
	}
}

func TestC2MOSExpectedTopology(t *testing.T) {
	cell, err := ByName("c2mos")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 4 sources + 8 transistors + 2 caps.
	if n := len(inst.Circuit.Devices()); n != 14 {
		t.Errorf("device count = %d, want 14", n)
	}
	if inst.CrossFrac != 0.9 || inst.OutputRising {
		t.Errorf("C2MOS criterion wrong: frac=%v rising=%v", inst.CrossFrac, inst.OutputRising)
	}
}

func TestDefaultTimingMatchesPaper(t *testing.T) {
	tm := DefaultTiming()
	if tm.Period != 10e-9 || tm.ClockDelay != 1e-9 || tm.Rise != 0.1e-9 {
		t.Errorf("timing: %+v", tm)
	}
	clk := tm.Clock(0, 2.5)
	if math.Abs(clk.Edge50(1)-11.05e-9) > 1e-18 {
		t.Errorf("Edge50(1) = %v", clk.Edge50(1))
	}
}

func TestC2MOSClkbDelayDefault(t *testing.T) {
	p, tm := DefaultProcess(), DefaultTiming()
	cell := C2MOS(p, tm, C2MOSOptions{})
	inst, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = inst
	cell2 := C2MOS(p, tm, C2MOSOptions{ClkbDelay: 0.5e-9})
	if _, err := cell2.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessDefaultsValid(t *testing.T) {
	p := DefaultProcess()
	if err := p.NMOS.Validate(); err != nil {
		t.Error(err)
	}
	if err := p.PMOS.Validate(); err != nil {
		t.Error(err)
	}
	if p.VDD != 2.5 {
		t.Errorf("VDD = %v", p.VDD)
	}
}
