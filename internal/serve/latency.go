package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"latchchar/serveclient"
)

// Request-latency telemetry: per-route cumulative histograms rendered as
// native Prometheus histograms on /metrics, plus a bounded sample ring per
// route backing the rolling-window p50/p95/p99 on /statusz. Scrapers get the
// full distribution since process start; humans and autoscalers get "how
// slow is it right now". Shared by the single-node server and the cluster
// coordinator via Router.

// latencyBuckets are the histogram upper bounds in seconds. Characterization
// jobs run milliseconds (cached) to minutes (cold batch), so the range spans
// both with Prometheus-conventional decades.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// latencySamples bounds the rolling-window ring per route: at 1k req/s a
// 8192-deep ring still covers several seconds of the 1m window; quantiles
// over a partially covered window are computed over what the ring holds.
const latencySamples = 8192

// StatusWindows are the rolling quantile windows reported on /statusz.
var StatusWindows = []time.Duration{time.Minute, 5 * time.Minute}

// routeLatency is the per-route accumulator.
type routeLatency struct {
	counts []int64 // non-cumulative per-bucket counts; rendered cumulative
	over   int64   // observations above the last bucket
	count  int64
	sum    float64 // seconds

	ring []latencySample
	next int
	full bool
}

type latencySample struct {
	at  time.Time
	sec float64
}

// LatencySet is the registry of route accumulators.
type LatencySet struct {
	mu     sync.Mutex
	routes map[string]*routeLatency
}

// NewLatencySet returns an empty registry.
func NewLatencySet() *LatencySet {
	return &LatencySet{routes: make(map[string]*routeLatency)}
}

// Observe records one request duration for a route.
func (l *LatencySet) Observe(route string, at time.Time, d time.Duration) {
	sec := d.Seconds()
	l.mu.Lock()
	defer l.mu.Unlock()
	rl := l.routes[route]
	if rl == nil {
		rl = &routeLatency{
			counts: make([]int64, len(latencyBuckets)),
			ring:   make([]latencySample, latencySamples),
		}
		l.routes[route] = rl
	}
	idx := sort.SearchFloat64s(latencyBuckets, sec)
	if idx < len(latencyBuckets) {
		rl.counts[idx]++
	} else {
		rl.over++
	}
	rl.count++
	rl.sum += sec
	rl.ring[rl.next] = latencySample{at: at, sec: sec}
	rl.next++
	if rl.next == len(rl.ring) {
		rl.next = 0
		rl.full = true
	}
}

// histSnapshot is one route's cumulative histogram for exposition.
type histSnapshot struct {
	route string
	cum   []int64 // cumulative counts per latencyBuckets bound
	count int64
	sum   float64
}

// snapshot renders every route's cumulative histogram, sorted by route for
// stable exposition order.
func (l *LatencySet) snapshot() []histSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]histSnapshot, 0, len(l.routes))
	for route, rl := range l.routes {
		cum := make([]int64, len(latencyBuckets))
		var run int64
		for i, c := range rl.counts {
			run += c
			cum[i] = run
		}
		out = append(out, histSnapshot{route: route, cum: cum, count: rl.count, sum: rl.sum})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].route < out[j].route })
	return out
}

// WritePrometheus renders the per-route request-duration histogram family
// under the given metric name (no output when no requests were observed).
func (l *LatencySet) WritePrometheus(w io.Writer, name string) {
	snaps := l.snapshot()
	if len(snaps) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s HTTP request duration by route.\n# TYPE %s histogram\n", name, name)
	for _, h := range snaps {
		for i, bound := range latencyBuckets {
			fmt.Fprintf(w, "%s_bucket{route=%q,le=%q} %d\n", name, h.route, formatLe(bound), h.cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{route=%q,le=\"+Inf\"} %d\n", name, h.route, h.count)
		fmt.Fprintf(w, "%s_sum{route=%q} %g\n", name, h.route, h.sum)
		fmt.Fprintf(w, "%s_count{route=%q} %d\n", name, h.route, h.count)
	}
}

// formatLe renders a bucket bound the way Prometheus clients do (shortest
// decimal form, e.g. "0.005", "1", "2.5").
func formatLe(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Quantiles computes rolling p50/p95/p99 per route over the trailing window,
// sorted by route. Routes with no samples in the window are omitted.
func (l *LatencySet) Quantiles(now time.Time, window time.Duration) []serveclient.RouteQuantiles {
	cutoff := now.Add(-window)
	l.mu.Lock()
	type routeSamples struct {
		route string
		secs  []float64
	}
	var all []routeSamples
	for route, rl := range l.routes {
		n := rl.next
		if rl.full {
			n = len(rl.ring)
		}
		var secs []float64
		for i := 0; i < n; i++ {
			if s := rl.ring[i]; !s.at.Before(cutoff) {
				secs = append(secs, s.sec)
			}
		}
		if len(secs) > 0 {
			all = append(all, routeSamples{route: route, secs: secs})
		}
	}
	l.mu.Unlock()

	out := make([]serveclient.RouteQuantiles, 0, len(all))
	for _, rs := range all {
		sort.Float64s(rs.secs)
		q := func(p float64) float64 {
			idx := int(p * float64(len(rs.secs)-1))
			return rs.secs[idx] * 1e3
		}
		out = append(out, serveclient.RouteQuantiles{
			Route:  rs.route,
			Window: window.String(),
			Count:  len(rs.secs),
			P50MS:  q(0.50),
			P95MS:  q(0.95),
			P99MS:  q(0.99),
			MaxMS:  rs.secs[len(rs.secs)-1] * 1e3,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// WindowQuantiles appends the quantiles of every status window.
func (l *LatencySet) WindowQuantiles(now time.Time) []serveclient.RouteQuantiles {
	out := []serveclient.RouteQuantiles{}
	for _, win := range StatusWindows {
		out = append(out, l.Quantiles(now, win)...)
	}
	return out
}
