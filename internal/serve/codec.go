package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"latchchar"
	"latchchar/internal/transient"
)

// The wire schema of the v1 HTTP API. Requests name a built-in cell or carry
// an inline netlist deck plus optional Process/Timing overrides and a stable
// subset of the characterization options; responses render Result, Contour
// and Stats with picosecond skews matching the CLI formats. The schema is a
// deliberate subset of latchchar.Options — fields with process-local
// semantics (Obs, RecordSteps, evaluator step tuning) stay server-side.

// CharacterizeRequest is the body of POST /v1/characterize.
type CharacterizeRequest struct {
	// Cell names a built-in register ("tspc", "c2mos", "tgate").
	Cell string `json:"cell,omitempty"`
	// Netlist is an inline SPICE-like deck; it overrides Cell (which then
	// only labels the deck). Process/Timing overrides do not apply to decks,
	// which carry their own stimulus.
	Netlist string `json:"netlist,omitempty"`
	// Process and Timing partially override the built-in cell's defaults;
	// absent fields keep their default values.
	Process json.RawMessage `json:"process,omitempty"`
	Timing  json.RawMessage `json:"timing,omitempty"`
	// Options select the characterization query.
	Options OptionsRequest `json:"options"`
	// Wait blocks the request until the job finishes and returns the full
	// result inline instead of 202 + job id.
	Wait bool `json:"wait,omitempty"`
	// NoCache bypasses the result cache (the request still coalesces onto
	// an identical in-flight job).
	NoCache bool `json:"no_cache,omitempty"`
}

// OptionsRequest is the wire form of the characterization options.
type OptionsRequest struct {
	// Points is the contour point budget per trace direction (default 40).
	Points int `json:"points,omitempty"`
	// StepPS is the Euler step length α in picoseconds (default 5).
	StepPS float64 `json:"step_ps,omitempty"`
	// BothDirections traces the curve both ways from the seed.
	BothDirections bool `json:"both_directions,omitempty"`
	// Resample redistributes the contour into exactly N arc-length-uniform
	// points (0 = off).
	Resample int `json:"resample,omitempty"`
	// Degrade is the clock-to-Q degradation fraction defining setup/hold
	// (default 0.10).
	Degrade float64 `json:"degrade,omitempty"`
	// MaxSetupSkewPS bounds the skew domain in picoseconds.
	MaxSetupSkewPS float64 `json:"max_setup_skew_ps,omitempty"`
	// Method selects the integration scheme: "be" (default) or "trap".
	Method string `json:"method,omitempty"`
	// FastPath enables the chord/bypass Newton fast path: chord iterations
	// reusing the standing LU factorization plus the device-eval latency
	// bypass, with transparent full-Newton fallback (DESIGN §10). It resolves
	// to exactly latchchar.DefaultFastPath.
	FastPath bool `json:"fast_path,omitempty"`
	// Block is the tracer's predictor lookahead width: a value > 1 corrects a
	// bundle of Block predicted points as one lockstep block-transient
	// (DESIGN §13). 0 or 1 keeps the scalar predictor. Participates in the
	// coalescing key like every other option.
	Block int `json:"block,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: the jobs run as one engine
// batch, so jobs sharing a cell warm-start from their group leader exactly
// as in Engine.CharacterizeBatch.
type BatchRequest struct {
	Jobs []BatchJobRequest `json:"jobs"`
	Wait bool              `json:"wait,omitempty"`
}

// BatchJobRequest is one job of a batch. Wait and NoCache on the embedded
// request are ignored for batch items.
type BatchJobRequest struct {
	CharacterizeRequest
	// Name labels the job in the results (default: the cell name).
	Name string `json:"name,omitempty"`
	// Cold opts the job out of warm-start seeding.
	Cold bool `json:"cold,omitempty"`
}

// JobStatus is the response of GET /v1/jobs/{id} and of synchronous
// characterize/batch requests.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // queued, running, done, failed, canceled
	// Corr is the correlation ID of the request that created the job; every
	// daemon log line and NDJSON event of the job carries the same ID.
	// Coalesced requests keep the creating request's ID.
	Corr string `json:"corr,omitempty"`
	// Coalesced counts the extra requests that attached to this job instead
	// of running their own characterization.
	Coalesced int `json:"coalesced,omitempty"`
	// Cached reports the response was served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// QueuedMS, RunMS report wall-clock spent queued and running.
	QueuedMS float64 `json:"queued_ms,omitempty"`
	RunMS    float64 `json:"run_ms,omitempty"`
	Error    string  `json:"error,omitempty"`
	// Partial reports a canceled job that still carries the contour prefix
	// traced before cancellation.
	Partial bool        `json:"partial,omitempty"`
	Result  *ResultJSON `json:"result,omitempty"`
	// Results holds per-job outcomes for batch jobs, in request order.
	Results []BatchItemJSON `json:"results,omitempty"`
}

// ResultJSON renders a characterization result.
type ResultJSON struct {
	Cell        string          `json:"cell"`
	Contour     []PointJSON     `json:"contour"`
	Calibration CalibrationJSON `json:"calibration"`
	PlainSims   int             `json:"plain_sims"`
	GradSims    int             `json:"grad_sims"`
	TotalSims   int             `json:"total_sims"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	Stats       StatsJSON       `json:"stats"`
}

// PointJSON is one contour point, skews in picoseconds as in the CLI CSV.
type PointJSON struct {
	TauSPs float64 `json:"tau_s_ps"`
	TauHPs float64 `json:"tau_h_ps"`
	H      float64 `json:"h_volts"`
	Iters  int     `json:"corrector_iters"`
}

// CalibrationJSON renders the measured characteristic timing.
type CalibrationJSON struct {
	CharDelayPS float64 `json:"char_delay_ps"`
	TCNs        float64 `json:"tc_ns"`
	TfNs        float64 `json:"tf_ns"`
	R           float64 `json:"r_volts"`
	Rising      bool    `json:"rising"`
}

// StatsJSON renders the integrator-level work aggregate.
type StatsJSON struct {
	Steps             int     `json:"steps"`
	NewtonIters       int     `json:"newton_iters"`
	Factorizations    int     `json:"factorizations"`
	SensSolves        int     `json:"sens_solves"`
	ChordIters        int     `json:"chord_iters,omitempty"`
	JacobianReuses    int     `json:"jacobian_reuses,omitempty"`
	DeviceBypasses    int     `json:"device_bypasses,omitempty"`
	BlockSharedSteps  int     `json:"block_shared_steps,omitempty"`
	BlockPeelOffs     int     `json:"block_peel_offs,omitempty"`
	BlockDonorReplays int     `json:"block_donor_replays,omitempty"`
	WallMS            float64 `json:"wall_ms"`
}

// BatchItemJSON is one batch job's outcome.
type BatchItemJSON struct {
	Name              string      `json:"name"`
	Index             int         `json:"index"`
	Error             string      `json:"error,omitempty"`
	WarmStarted       bool        `json:"warm_started,omitempty"`
	CalibrationReused bool        `json:"calibration_reused,omitempty"`
	Result            *ResultJSON `json:"result,omitempty"`
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

// resolveCell turns a request into a buildable cell: an inline deck, or a
// built-in cell with Process/Timing overrides decoded on top of its
// defaults.
func resolveCell(req *CharacterizeRequest) (*latchchar.Cell, error) {
	if req.Netlist != "" {
		if len(req.Process) > 0 || len(req.Timing) > 0 {
			return nil, fmt.Errorf("process/timing overrides do not apply to inline netlists (the deck carries its own stimulus)")
		}
		deck, err := latchchar.ParseNetlistString(req.Netlist)
		if err != nil {
			return nil, err
		}
		name := req.Cell
		if name == "" {
			name = "netlist"
		}
		return deck.Cell(name), nil
	}
	name := req.Cell
	if name == "" {
		return nil, fmt.Errorf("request needs a cell name or an inline netlist")
	}
	base, err := latchchar.CellByName(name)
	if err != nil {
		return nil, err
	}
	p, tm := base.Process, base.Timing
	if len(req.Process) > 0 {
		if err := json.Unmarshal(req.Process, &p); err != nil {
			return nil, fmt.Errorf("process override: %w", err)
		}
	}
	if len(req.Timing) > 0 {
		if err := json.Unmarshal(req.Timing, &tm); err != nil {
			return nil, fmt.Errorf("timing override: %w", err)
		}
	}
	if len(req.Process) == 0 && len(req.Timing) == 0 {
		return base, nil
	}
	switch name {
	case "tspc":
		return latchchar.TSPCCell(p, tm), nil
	case "c2mos":
		return latchchar.C2MOSCell(p, tm, 0), nil // 0 selects the default clk̄ delay
	case "tgate":
		return latchchar.TGateCell(p, tm), nil
	}
	return nil, fmt.Errorf("cell %q does not accept process/timing overrides", name)
}

// toOptions converts the wire options to characterization options. The
// engine's own Options.Validate runs downstream and covers ranges; only
// wire-level choices (the method name) are checked here.
func (o OptionsRequest) toOptions() (latchchar.Options, error) {
	eval := latchchar.EvalConfig{
		Degrade:      o.Degrade,
		MaxSetupSkew: o.MaxSetupSkewPS * 1e-12,
	}
	if o.FastPath {
		eval = eval.WithFastPath()
	}
	opts := latchchar.Options{
		Points:         o.Points,
		Step:           o.StepPS * 1e-12,
		BothDirections: o.BothDirections,
		Resample:       o.Resample,
		Block:          o.Block,
		Eval:           eval,
	}
	switch o.Method {
	case "", "be":
		opts.Eval.Method = transient.BE
	case "trap":
		opts.Eval.Method = transient.TRAP
	default:
		return opts, fmt.Errorf("unknown method %q (have be, trap)", o.Method)
	}
	return opts, nil
}

// requestKey derives the coalescing/result-cache key: a digest over the
// resolved cell identity (name, process, timing — or the raw deck text) and
// the normalized wire options, mirroring the engine's calibration LRU key
// plus the query parameters.
func requestKey(req *CharacterizeRequest, cell *latchchar.Cell) string {
	canonical := struct {
		Netlist string
		Name    string
		Process latchchar.Process
		Timing  latchchar.Timing
		Options OptionsRequest
	}{
		Netlist: req.Netlist,
		Name:    cell.Name,
		Process: cell.Process,
		Timing:  cell.Timing,
		Options: req.Options,
	}
	b, err := json.Marshal(canonical)
	if err != nil {
		// Process/Timing/OptionsRequest are plain scalar structs; Marshal
		// cannot fail on them. Fall back to an uncoalescable key.
		return fmt.Sprintf("unkeyed-%p", req)
	}
	sum := sha256.Sum256(b)
	return "v1:" + hex.EncodeToString(sum[:])
}

// resultJSON renders a Result (nil-safe: canceled jobs may carry none).
func resultJSON(cell string, res *latchchar.Result) *ResultJSON {
	if res == nil {
		return nil
	}
	out := &ResultJSON{
		Cell:      cell,
		Contour:   []PointJSON{},
		PlainSims: res.PlainSims,
		GradSims:  res.GradSims,
		TotalSims: res.TotalSims(),
		ElapsedMS: durMS(res.Elapsed),
		Calibration: CalibrationJSON{
			CharDelayPS: res.Calibration.CharDelay * 1e12,
			TCNs:        res.Calibration.TC * 1e9,
			TfNs:        res.Calibration.Tf * 1e9,
			R:           res.Calibration.R,
			Rising:      res.Calibration.Rising,
		},
		Stats: StatsJSON{
			Steps:             res.Stats.Steps,
			NewtonIters:       res.Stats.NewtonIters,
			Factorizations:    res.Stats.Factorizations,
			SensSolves:        res.Stats.SensSolves,
			ChordIters:        res.Stats.ChordIters,
			JacobianReuses:    res.Stats.JacobianReuses,
			DeviceBypasses:    res.Stats.DeviceBypasses,
			BlockSharedSteps:  res.Stats.BlockSharedSteps,
			BlockPeelOffs:     res.Stats.BlockPeelOffs,
			BlockDonorReplays: res.Stats.BlockDonorReplays,
			WallMS:            durMS(res.Stats.Wall),
		},
	}
	if res.Contour != nil {
		for _, p := range res.Contour.Points {
			out.Contour = append(out.Contour, PointJSON{
				TauSPs: p.TauS * 1e12,
				TauHPs: p.TauH * 1e12,
				H:      p.H,
				Iters:  p.CorrectorIters,
			})
		}
	}
	return out
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
