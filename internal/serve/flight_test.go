package serve

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"latchchar/internal/obs"
	"latchchar/serveclient"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// A timed-out job must leave a tracecheck-valid flight-recorder dump in
// DumpDir: dump_meta header with reason "timeout" and the job's correlation
// ID, a recorded event window, every event stamped with the same ID.
func TestJobTimeoutWritesFlightDump(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a characterization into its timeout")
	}
	dumpDir := t.TempDir()
	_, ts := newTestServer(t, Config{
		JobTimeout: 300 * time.Millisecond,
		DumpDir:    dumpDir,
		Logger:     discardLogger(),
	})

	req, err := http.NewRequest("POST", ts.URL+"/v1/characterize",
		strings.NewReader(`{"cell":"tspc","options":{"points":40},"wait":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Correlation-Id", "corr-timeout-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st serveclient.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if st.State != serveclient.StateCanceled {
		t.Fatalf("state = %q (error %q), want canceled by the job timeout", st.State, st.Error)
	}
	if st.Corr != "corr-timeout-test" {
		t.Errorf("JobStatus.Corr = %q", st.Corr)
	}
	if got := resp.Header.Get("X-Correlation-Id"); got != "corr-timeout-test" {
		t.Errorf("response X-Correlation-Id = %q", got)
	}

	// runJob writes the dump before closing done, so it exists by now.
	path := filepath.Join(dumpDir, "flight-"+st.ID+".jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("dump not written: %v", err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateDump(events); err != nil {
		t.Fatalf("dump fails validation: %v", err)
	}
	head := events[0]
	if head.Reason != "timeout" {
		t.Errorf("dump reason = %q, want timeout", head.Reason)
	}
	if head.Job != st.ID || head.Corr != "corr-timeout-test" {
		t.Errorf("dump header job=%q corr=%q", head.Job, head.Corr)
	}
	if head.Msg == "" {
		t.Error("dump header missing the job error")
	}
	if len(events) < 3 {
		t.Fatalf("dump has %d events, want a recorded window", len(events))
	}
	for i, e := range events {
		if e.Corr != "corr-timeout-test" {
			t.Fatalf("event %d (%s) corr = %q", i, e.Kind, e.Corr)
		}
	}

	// The NDJSON event stream of the same job carries the same correlation
	// ID on every line.
	er, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	dec := json.NewDecoder(er.Body)
	n := 0
	for dec.More() {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Corr != "corr-timeout-test" {
			t.Fatalf("stream event %d (%s) corr = %q", n, e.Kind, e.Corr)
		}
		n++
	}
	if n == 0 {
		t.Error("event stream empty")
	}
}

// The middleware must echo an incoming W3C traceparent trace-id as the
// correlation ID (new span-id) and always answer with X-Correlation-Id.
func TestTraceparentIngestionAndEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{Logger: discardLogger()})
	const tid = "0123456789abcdef0123456789abcdef"

	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Correlation-Id"); got != tid {
		t.Errorf("X-Correlation-Id = %q, want the incoming trace-id", got)
	}
	tp := resp.Header.Get("traceparent")
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || parts[1] != tid {
		t.Fatalf("echoed traceparent = %q, want same trace-id", tp)
	}
	if parts[2] == "00f067aa0ba902b7" {
		t.Error("echoed traceparent reuses the caller's span-id")
	}

	// Without any header the server mints a fresh trace-id.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Correlation-Id"); len(got) != 32 {
		t.Errorf("minted correlation ID %q, want a 32-hex trace-id", got)
	}

	// A malformed traceparent is ignored, not echoed.
	req3, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req3.Header.Set("traceparent", "00-zzzz-bad-01")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Correlation-Id"); got == "" || strings.Contains(got, "z") {
		t.Errorf("malformed traceparent produced corr %q", got)
	}
}

// /statusz must be well-formed JSON with sane shape straight after startup.
func TestStatuszWellFormed(t *testing.T) {
	_, ts := newTestServer(t, Config{Logger: discardLogger()})
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st serveclient.StatusZ
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("statusz not well-formed: %v", err)
	}
	if st.Workers <= 0 || st.QueueCap <= 0 {
		t.Errorf("workers=%d queue_cap=%d", st.Workers, st.QueueCap)
	}
	if st.Draining {
		t.Error("fresh server reports draining")
	}
	if st.Runtime == nil {
		t.Fatal("statusz missing the runtime sample")
	}
	if st.Runtime.Goroutines <= 0 || st.Runtime.HeapBytes == 0 {
		t.Errorf("runtime sample empty: %+v", st.Runtime)
	}
	if st.Latency == nil {
		t.Error("latency must be [] rather than null")
	}

	// After a couple of requests the rolling windows carry quantiles.
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	resp2, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 serveclient.StatusZ
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, q := range st2.Latency {
		if q.Route == "/v1/healthz" && q.Count >= 3 && q.P50MS >= 0 && q.P99MS >= q.P50MS {
			found = true
		}
	}
	if !found {
		t.Errorf("no /healthz quantiles in %+v", st2.Latency)
	}
}

// The live /metrics output must pass the promtool-style lint, including the
// request-duration histogram once a route has samples.
func TestMetricsOutputPassesLint(t *testing.T) {
	_, ts := newTestServer(t, Config{Logger: discardLogger()})
	for i := 0; i < 2; i++ {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := LintMetrics(strings.NewReader(string(body))); err != nil {
		t.Fatalf("metrics lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"latchchard_request_seconds_bucket",
		"latchchard_request_seconds_sum",
		"latchchard_request_seconds_count",
		"latchchard_goroutines",
		"latchchard_obs_runtime_samples_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// LintMetrics itself must reject the classic exposition-format mistakes.
func TestLintMetricsRejects(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"no metadata", "foo 1\n"},
		{"duplicate series", "# HELP foo f\n# TYPE foo counter\nfoo 1\nfoo 2\n"},
		{"bad name", "# HELP 9foo f\n# TYPE 9foo counter\n9foo 1\n"},
		{"histogram missing +Inf", "# HELP h H\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram not cumulative", "# HELP h H\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"count disagrees with +Inf", "# HELP h H\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
	}
	for _, tc := range cases {
		if err := LintMetrics(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	good := "# HELP h H\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n"
	if err := LintMetrics(strings.NewReader(good)); err != nil {
		t.Errorf("valid histogram rejected: %v", err)
	}
}
