// Package serve is the single-node HTTP transport of the characterization
// service: routing, the v1 wire codec, middleware and telemetry over the
// transport-agnostic job core (internal/serve/jobcore), which owns the
// queue, coalescing, result cache and drain semantics. The cluster
// coordinator (internal/serve/cluster) reuses the same Router, error
// envelope and latency plumbing, and forwards to nodes running this server.
//
// Endpoints (all under the /v1/ prefix; the wire schema is defined in the
// public serveclient package and documented as a stable contract in
// DESIGN.md §14):
//
//	POST /v1/characterize     one job (async 202 + job id, or "wait": true)
//	POST /v1/batch            one engine batch with warm-start grouping
//	GET  /v1/jobs/{id}        job status + result
//	GET  /v1/jobs/{id}/events NDJSON live event stream (obs schema v1)
//	GET  /v1/healthz          liveness (503 while draining)
//	GET  /v1/metrics          Prometheus text: serve + engine + obs counters
//	GET  /v1/statusz          rolling-window JSON status
//	GET  /debug/pprof/        standard Go profiling handlers
//
// The pre-v1 routes /healthz, /metrics and /statusz answer one more release
// as 308 redirects onto their /v1/ successors, with Deprecation headers.
// Every non-2xx response (outside the documented failed-wait-job case)
// carries the typed error envelope {"error": {code, message,
// correlation_id}}, and every backpressure rejection (429 queue-full, 503
// draining) carries Retry-After.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"latchchar"
	"latchchar/internal/obs"
	"latchchar/internal/serve/jobcore"
	"latchchar/serveclient"
)

// Config configures a Server. Core fields are forwarded to jobcore.Config;
// RetryAfter is transport-level (the backpressure header hint).
type Config struct {
	// Engine runs the characterizations (required).
	Engine *latchchar.Engine
	// QueueDepth bounds accepted-but-unfinished jobs (default 64). A full
	// queue rejects with 429 + Retry-After.
	QueueDepth int
	// Workers bounds concurrently running jobs (default: the engine's
	// parallelism).
	Workers int
	// JobTimeout is the server-side per-job deadline (default 10 min;
	// negative disables).
	JobTimeout time.Duration
	// ResultCacheSize bounds the result LRU in entries (default 128;
	// negative disables).
	ResultCacheSize int
	// MaxJobs bounds retained job records (default 1024).
	MaxJobs int
	// RetryAfter is the backpressure hint on 429/503 responses (default 2s).
	RetryAfter time.Duration
	// ProgressInterval is the progress-event cadence on job event streams
	// (default 250ms).
	ProgressInterval time.Duration
	// Logf logs serving events (default log.Printf).
	Logf func(format string, args ...any)
	// Logger receives structured request and job-lifecycle logs (default
	// slog.Default()). The daemon installs a JSON handler here.
	Logger *slog.Logger
	// DumpDir, when non-empty, receives flight-recorder post-mortem dumps.
	DumpDir string
	// FlightRecorderSize bounds each job's flight-recorder ring in events
	// (default obs.DefaultRecorderCapacity; negative disables recording).
	FlightRecorderSize int
	// RuntimeSampleInterval is the runtime self-telemetry cadence (default
	// 10s; negative disables the sampler).
	RuntimeSampleInterval time.Duration
	// MockJobTime, when positive, replaces solver work with a fixed
	// synthetic service time (see jobcore.Config.MockJobTime). Load-test
	// only.
	MockJobTime time.Duration
}

// Server is the single-node characterization service. Construct with New;
// it implements http.Handler. Stop with Drain (graceful) and/or Close.
type Server struct {
	cfg  Config
	core *jobcore.Core
	rt   *Router
}

// New starts a server over a fresh job core.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Config.Engine must be set")
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	core, err := jobcore.New(jobcore.Config{
		Engine:                cfg.Engine,
		QueueDepth:            cfg.QueueDepth,
		Workers:               cfg.Workers,
		JobTimeout:            cfg.JobTimeout,
		ResultCacheSize:       cfg.ResultCacheSize,
		MaxJobs:               cfg.MaxJobs,
		ProgressInterval:      cfg.ProgressInterval,
		Logf:                  cfg.Logf,
		Logger:                cfg.Logger,
		DumpDir:               cfg.DumpDir,
		FlightRecorderSize:    cfg.FlightRecorderSize,
		RuntimeSampleInterval: cfg.RuntimeSampleInterval,
		MockJobTime:           cfg.MockJobTime,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, core: core, rt: NewRouter(cfg.Logger)}
	s.rt.Handle("POST /v1/characterize", "/v1/characterize", s.handleCharacterize)
	s.rt.Handle("POST /v1/batch", "/v1/batch", s.handleBatch)
	s.rt.Handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJob)
	s.rt.Handle("GET /v1/jobs/{id}/events", "/v1/jobs/{id}/events", s.handleJobEvents)
	s.rt.Handle("GET /v1/healthz", "/v1/healthz", s.handleHealthz)
	s.rt.Handle("GET /v1/metrics", "/v1/metrics", s.handleMetrics)
	s.rt.Handle("GET /v1/statusz", "/v1/statusz", s.handleStatusz)
	// Deprecated pre-v1 aliases, one release of 308s before removal.
	s.rt.Redirect("/healthz", "/v1/healthz")
	s.rt.Redirect("/metrics", "/v1/metrics")
	s.rt.Redirect("/statusz", "/v1/statusz")
	s.rt.HandleRaw("GET /debug/pprof/", pprof.Index)
	s.rt.HandleRaw("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.rt.HandleRaw("GET /debug/pprof/profile", pprof.Profile)
	s.rt.HandleRaw("GET /debug/pprof/symbol", pprof.Symbol)
	s.rt.HandleRaw("GET /debug/pprof/trace", pprof.Trace)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.rt.ServeHTTP(w, r) }

// Core exposes the underlying job core (tests and embedders).
func (s *Server) Core() *jobcore.Core { return s.core }

// Drain stops accepting new work (requests get 503 + Retry-After) and waits
// for queued and running jobs to finish; see jobcore.Core.Drain.
func (s *Server) Drain(ctx context.Context) error { return s.core.Drain(ctx) }

// Close cancels everything immediately.
func (s *Server) Close() { s.core.Close() }

// Draining reports whether the server has stopped accepting work.
func (s *Server) Draining() bool { return s.core.Draining() }

// Summary returns the server's aggregated observability counters and phase
// stats over all finished jobs (the data behind /metrics).
func (s *Server) Summary() obs.Summary { return s.core.Summary() }

// --- HTTP handlers ---

const maxBodyBytes = 8 << 20

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	s.core.Counters().Requests.Add(1)
	var req serveclient.CharacterizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	var (
		j      *jobcore.Job
		cached bool
	)
	if req.Options.MCSamples > 0 {
		mk, nominal, mcOpts, key, err := jobcore.ResolveMC(&req)
		if err != nil {
			WriteError(w, r, http.StatusBadRequest, serveclient.CodeInvalidRequest, err.Error())
			return
		}
		j, cached, err = s.core.SubmitMC(key, ReqCorr(r), mk, nominal, mcOpts, req.NoCache)
		if err != nil {
			s.reject(w, r, err)
			return
		}
	} else {
		cell, opts, key, err := jobcore.Resolve(&req)
		if err != nil {
			WriteError(w, r, http.StatusBadRequest, serveclient.CodeInvalidRequest, err.Error())
			return
		}
		j, cached, err = s.core.Submit(key, ReqCorr(r), cell, opts, req.NoCache)
		if err != nil {
			s.reject(w, r, err)
			return
		}
	}
	if cached {
		st := j.Status()
		st.Cached = true
		s.json(w, http.StatusOK, st)
		return
	}
	if req.Wait {
		s.waitAndRespond(w, r, j)
		return
	}
	s.accepted(w, j)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.core.Counters().Requests.Add(1)
	var req serveclient.BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	jobs, _, err := jobcore.ResolveBatch(&req)
	if err != nil {
		WriteError(w, r, http.StatusBadRequest, serveclient.CodeInvalidRequest, err.Error())
		return
	}
	j, err := s.core.SubmitBatch(jobs, ReqCorr(r))
	if err != nil {
		s.reject(w, r, err)
		return
	}
	if req.Wait {
		s.waitAndRespond(w, r, j)
		return
	}
	s.accepted(w, j)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.core.Lookup(r.PathValue("id"))
	if j == nil {
		WriteError(w, r, http.StatusNotFound, serveclient.CodeNotFound,
			fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	s.json(w, http.StatusOK, j.Status())
}

// handleJobEvents streams the job's obs events as NDJSON: the full replay
// history first, then live events until the job finishes or the client
// disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.core.Lookup(r.PathValue("id"))
	if j == nil {
		WriteError(w, r, http.StatusNotFound, serveclient.CodeNotFound,
			fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	history, live, cancel := j.Subscribe(1024)
	defer cancel()
	enc := json.NewEncoder(w)
	for i := range history {
		if enc.Encode(&history[i]) != nil {
			return
		}
	}
	flush()
	for {
		select {
		case e := <-live:
			if enc.Encode(&e) != nil {
				return
			}
			flush()
		case <-j.Done():
			// Drain what the subscription buffered before done closed.
			for {
				select {
				case e := <-live:
					if enc.Encode(&e) != nil {
						return
					}
				default:
					flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		SetRetryAfter(w, s.cfg.RetryAfter)
		WriteError(w, r, http.StatusServiceUnavailable, serveclient.CodeDraining, "server is draining")
		return
	}
	s.json(w, http.StatusOK, serveclient.HealthStatus{Status: "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// --- response helpers ---

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		WriteError(w, r, http.StatusBadRequest, serveclient.CodeInvalidRequest,
			fmt.Sprintf("decoding request: %v", err))
		return false
	}
	return true
}

// waitAndRespond blocks until the job finishes (200/500 with the full
// status) or the client gives up (the job keeps running; other waiters and
// pollers still get it). A failed wait-job deliberately returns the
// JobStatus body, not the error envelope: the job's failure is an outcome,
// and the status carries the error string plus any partial contour.
func (s *Server) waitAndRespond(w http.ResponseWriter, r *http.Request, j *jobcore.Job) {
	select {
	case <-j.Done():
		st := j.Status()
		code := http.StatusOK
		if st.State == serveclient.StateFailed {
			code = http.StatusInternalServerError
		}
		s.json(w, code, st)
	case <-r.Context().Done():
		// Client disconnected; nothing useful to write.
	}
}

func (s *Server) accepted(w http.ResponseWriter, j *jobcore.Job) {
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	s.json(w, http.StatusAccepted, j.Status())
}

// reject maps a jobcore backpressure rejection onto its transport form.
// Every backpressure response — queue-full 429 and draining 503 alike —
// carries Retry-After.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, err error) {
	var se *jobcore.SubmitError
	if errors.As(err, &se) {
		SetRetryAfter(w, s.cfg.RetryAfter)
		if se.Reason == jobcore.ReasonDraining {
			WriteError(w, r, http.StatusServiceUnavailable, serveclient.CodeDraining, se.Error())
		} else {
			WriteError(w, r, http.StatusTooManyRequests, serveclient.CodeQueueFull, se.Error())
		}
		return
	}
	WriteError(w, r, http.StatusInternalServerError, serveclient.CodeInternal, err.Error())
}

func (s *Server) json(w http.ResponseWriter, code int, v any) {
	if err := WriteJSON(w, code, v); err != nil {
		s.cfg.Logf("serve: writing response: %v", err)
	}
}
