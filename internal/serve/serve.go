// Package serve is the characterization service layer: a long-running
// HTTP/JSON front end over latchchar.Engine for the paper's library-scale
// workload — every register of every standard-cell library, at every PVT
// corner, queried repeatedly by downstream STA tools.
//
// The server adds what the engine lacks for traffic: singleflight request
// coalescing (N concurrent identical requests run one characterization and
// fan the result out to all waiters), an LRU result cache keyed like the
// engine's calibration cache, a bounded job queue with backpressure (429 +
// Retry-After when full), per-job server-side timeouts, and graceful drain
// (new requests get 503 while queued and in-flight jobs complete; past the
// drain deadline they return partial contours as canceled jobs).
//
// Endpoints:
//
//	POST /v1/characterize   one job (async 202 + job id, or "wait": true)
//	POST /v1/batch          one engine batch with warm-start grouping
//	GET  /v1/jobs/{id}        job status + result
//	GET  /v1/jobs/{id}/events NDJSON live event stream (obs schema v1)
//	GET  /healthz           liveness (503 while draining)
//	GET  /metrics           Prometheus text: serve + engine + obs counters
//	GET  /debug/pprof/      standard Go profiling handlers
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"latchchar"
	"latchchar/internal/obs"
	"latchchar/internal/sched"
)

// Config configures a Server.
type Config struct {
	// Engine runs the characterizations (required). The server never
	// bypasses it: every job draws a pool worker and shares the calibration
	// LRU.
	Engine *latchchar.Engine
	// QueueDepth bounds accepted-but-unfinished jobs (default 64). A full
	// queue rejects with 429 + Retry-After.
	QueueDepth int
	// Workers bounds concurrently running jobs (default: the engine's
	// parallelism). The engine pool bounds simulation concurrency either
	// way; this bounds how many jobs hold a queue slot as "running".
	Workers int
	// JobTimeout is the server-side per-job deadline (default 10 min;
	// negative disables). Timed-out jobs return partial contours as
	// canceled.
	JobTimeout time.Duration
	// ResultCacheSize bounds the result LRU in entries (default 128;
	// negative disables). Only fully successful single-job results are
	// cached.
	ResultCacheSize int
	// MaxJobs bounds retained job records (default 1024); the oldest
	// finished records are evicted first.
	MaxJobs int
	// RetryAfter is the backpressure hint on 429/503 responses (default 2s).
	RetryAfter time.Duration
	// ProgressInterval is the progress-event cadence on job event streams
	// (default 250ms).
	ProgressInterval time.Duration
	// Logf logs serving events (default log.Printf).
	Logf func(format string, args ...any)
	// Logger receives structured request and job-lifecycle logs, every line
	// stamped with the request's correlation ID (default slog.Default()).
	// The daemon installs a JSON handler here.
	Logger *slog.Logger
	// DumpDir, when non-empty, receives flight-recorder post-mortem dumps
	// (flight-<jobid>.jsonl) for jobs that fail, time out or are canceled.
	DumpDir string
	// FlightRecorderSize bounds each job's flight-recorder ring in events
	// (default obs.DefaultRecorderCapacity; negative disables recording).
	FlightRecorderSize int
	// RuntimeSampleInterval is the runtime self-telemetry cadence feeding
	// /statusz, /metrics and live job event streams (default 10s; negative
	// disables the sampler).
	RuntimeSampleInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = c.Engine.Parallelism()
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 128
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 250 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.FlightRecorderSize == 0 {
		c.FlightRecorderSize = obs.DefaultRecorderCapacity
	}
	if c.RuntimeSampleInterval == 0 {
		c.RuntimeSampleInterval = 10 * time.Second
	}
	return c
}

// Server is the characterization service. Construct with New; it implements
// http.Handler. Stop with Drain (graceful) and/or Close.
type Server struct {
	cfg        Config
	eng        *latchchar.Engine
	mux        *http.ServeMux
	base       context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	wg         sync.WaitGroup
	started    time.Time
	sampStop   chan struct{}

	mu       sync.Mutex
	draining bool
	nextID   uint64
	jobs     map[string]*job
	order    []string // job ids in creation order, for record eviction
	inflight map[string]*job
	results  *sched.LRU[string, *job]

	met metrics
	agg obsAgg
	lat latencySet

	rtMu    sync.Mutex
	rtStats obs.RuntimeStats
	rtAt    time.Time
}

// New starts a server: its workers pull jobs from the bounded queue and run
// them on cfg.Engine. The caller owns the engine's lifetime.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Config.Engine must be set")
	}
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		eng:        cfg.Engine,
		base:       base,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		started:    time.Now(),
		sampStop:   make(chan struct{}),
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		results:    sched.NewLRU[string, *job](max(cfg.ResultCacheSize, 0)),
	}
	s.agg.init()
	s.lat.init()
	s.mux = http.NewServeMux()
	s.handle("POST /v1/characterize", "/v1/characterize", s.handleCharacterize)
	s.handle("POST /v1/batch", "/v1/batch", s.handleBatch)
	s.handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJob)
	s.handle("GET /v1/jobs/{id}/events", "/v1/jobs/{id}/events", s.handleJobEvents)
	s.handle("GET /healthz", "/healthz", s.handleHealthz)
	s.handle("GET /metrics", "/metrics", s.handleMetrics)
	s.handle("GET /statusz", "/statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.RuntimeSampleInterval > 0 {
		s.sampleRuntime() // /statusz and /metrics have a sample from the start
		s.wg.Add(1)
		go s.runtimeSampler()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops accepting new work (requests get 503 + Retry-After) and waits
// for queued and running jobs to finish. If ctx expires first, in-flight
// characterizations are canceled — they record partial contours as canceled
// jobs — and Drain still waits for the workers to wind down before
// returning the context error. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)    // workers finish the buffered jobs, then exit
		close(s.sampStop) // runtime sampler winds down with them
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels everything immediately: equivalent to a drain whose
// deadline already passed.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}

// Draining reports whether the server has stopped accepting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// submitErr distinguishes the two rejection modes.
type submitErr struct {
	status int
	msg    string
}

func (e *submitErr) Error() string { return e.msg }

// submit coalesces or enqueues a single-characterization job. The returned
// job is either a cached finished job (cached=true), an in-flight job the
// request attached to, or a freshly queued one.
func (s *Server) submit(key, corr string, cell *latchchar.Cell, opts latchchar.Options, noCache bool) (j *job, cached bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.rejectedDraining.Add(1)
		return nil, false, &submitErr{http.StatusServiceUnavailable, "server is draining"}
	}
	if !noCache {
		if hit, ok := s.results.Get(key); ok {
			s.met.cacheHits.Add(1)
			return hit, true, nil
		}
	}
	if fl := s.inflight[key]; fl != nil {
		fl.mu.Lock()
		fl.coalesced++
		fl.mu.Unlock()
		s.met.coalesced.Add(1)
		return fl, false, nil
	}
	j = s.newJobLocked(key, corr)
	j.cell, j.opts = cell, opts
	select {
	case s.queue <- j:
	default:
		s.dropJobLocked(j)
		s.met.rejectedFull.Add(1)
		return nil, false, &submitErr{http.StatusTooManyRequests, "job queue is full"}
	}
	s.inflight[key] = j
	return j, false, nil
}

// submitBatch enqueues a batch job (no coalescing; warm-start grouping
// happens inside the engine batch).
func (s *Server) submitBatch(jobs []latchchar.Job, corr string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.rejectedDraining.Add(1)
		return nil, &submitErr{http.StatusServiceUnavailable, "server is draining"}
	}
	j := s.newJobLocked("", corr)
	j.batch = jobs
	select {
	case s.queue <- j:
	default:
		s.dropJobLocked(j)
		s.met.rejectedFull.Add(1)
		return nil, &submitErr{http.StatusTooManyRequests, "job queue is full"}
	}
	return j, nil
}

// newJobLocked creates and registers a job record, evicting the oldest
// finished records past MaxJobs. Callers hold s.mu.
func (s *Server) newJobLocked(key, corr string) *job {
	s.nextID++
	id := fmt.Sprintf("j%08d", s.nextID)
	j := newJob(id, key, corr, s.cfg.ProgressInterval, s.cfg.FlightRecorderSize)
	s.jobs[id] = j
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.MaxJobs {
		victim := s.jobs[s.order[0]]
		if victim == nil {
			s.order = s.order[1:]
			continue
		}
		select {
		case <-victim.done:
			delete(s.jobs, victim.id)
			s.order = s.order[1:]
		default:
			// Oldest record still live: stop evicting, the window grows
			// temporarily instead of dropping unfinished work.
			return j
		}
	}
	return j
}

func (s *Server) dropJobLocked(j *job) {
	delete(s.jobs, j.id)
	if len(s.order) > 0 && s.order[len(s.order)-1] == j.id {
		s.order = s.order[:len(s.order)-1]
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker pulls jobs until the queue closes on drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end: engine run, state transition, result
// caching, observability fold, failure dump, and the done broadcast.
func (s *Server) runJob(j *job) {
	ctx := s.base
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	j.setRunning()
	s.cfg.Logger.Info("job started", "corr", j.corr, "job", j.id,
		"batch", j.batch != nil, "queued_ms", durMS(time.Since(j.created)))
	if j.batch != nil {
		for i := range j.batch {
			j.batch[i].Opts.Obs = j.run
		}
		j.completeBatch(s.eng.CharacterizeBatch(ctx, j.batch))
	} else {
		opts := j.opts
		opts.Obs = j.run
		res, err := s.eng.Characterize(ctx, j.cell, opts)
		j.complete(res, err)
	}
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if j.batch == nil && state == stateDone && j.key != "" {
		s.results.Put(j.key, j)
	}
	s.mu.Unlock()
	switch state {
	case stateDone:
		s.met.jobsDone.Add(1)
	case stateCanceled:
		s.met.jobsCanceled.Add(1)
	default:
		s.met.jobsFailed.Add(1)
	}
	s.agg.fold(j.run.Summary())
	if err := j.run.Close(); err != nil {
		s.cfg.Logf("serve: job %s: closing obs run: %v", j.id, err)
	}
	j.mu.Lock()
	jobErr := j.err
	runMS := durMS(j.finished.Sub(j.started))
	j.mu.Unlock()
	if state == stateDone {
		s.cfg.Logger.Info("job finished", "corr", j.corr, "job", j.id,
			"state", state, "run_ms", runMS)
	} else {
		s.cfg.Logger.Warn("job finished", "corr", j.corr, "job", j.id,
			"state", state, "run_ms", runMS, "error", errString(jobErr))
		if path, err := s.dumpFlight(j, state, jobErr); err != nil {
			s.cfg.Logger.Error("flight dump failed", "corr", j.corr, "job", j.id, "error", err.Error())
		} else if path != "" {
			s.cfg.Logger.Info("flight dump written", "corr", j.corr, "job", j.id, "path", path)
		}
	}
	close(j.done)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// dumpFlight writes the job's flight-recorder post-mortem to DumpDir and
// returns the path ("" when dumping is disabled). The dump carries the
// recorded event window plus a structured error event — for convergence
// failures the corrector iterate ring and the step schedule tried.
func (s *Server) dumpFlight(j *job, state string, jobErr error) (string, error) {
	if s.cfg.DumpDir == "" || j.rec == nil {
		return "", nil
	}
	reason := state
	if state == stateCanceled && errors.Is(jobErr, context.DeadlineExceeded) {
		reason = "timeout"
	}
	if err := os.MkdirAll(s.cfg.DumpDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(s.cfg.DumpDir, "flight-"+j.id+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	meta := obs.DumpMeta{Corr: j.corr, Job: j.id, Reason: reason, Err: errString(jobErr)}
	werr := j.rec.WriteDump(f, meta, latchchar.FlightErrorEvent(jobErr))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	return path, nil
}

// --- HTTP handlers ---

const maxBodyBytes = 8 << 20

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	var req CharacterizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	cell, err := resolveCell(&req)
	if err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	if err := opts.Validate(); err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	j, cached, err := s.submit(requestKey(&req, cell), reqCorr(r), cell, opts, req.NoCache)
	if err != nil {
		s.reject(w, err)
		return
	}
	if cached {
		st := j.status()
		st.Cached = true
		s.json(w, http.StatusOK, st)
		return
	}
	if req.Wait {
		s.waitAndRespond(w, r, j)
		return
	}
	s.accepted(w, j)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		s.error(w, http.StatusBadRequest, fmt.Errorf("batch needs at least one job"))
		return
	}
	jobs := make([]latchchar.Job, len(req.Jobs))
	for i := range req.Jobs {
		item := &req.Jobs[i]
		cell, err := resolveCell(&item.CharacterizeRequest)
		if err != nil {
			s.error(w, http.StatusBadRequest, fmt.Errorf("jobs[%d]: %w", i, err))
			return
		}
		opts, err := item.Options.toOptions()
		if err != nil {
			s.error(w, http.StatusBadRequest, fmt.Errorf("jobs[%d]: %w", i, err))
			return
		}
		if err := opts.Validate(); err != nil {
			s.error(w, http.StatusBadRequest, fmt.Errorf("jobs[%d]: %w", i, err))
			return
		}
		jobs[i] = latchchar.Job{Name: item.Name, Cell: cell, Opts: opts, Cold: item.Cold}
	}
	j, err := s.submitBatch(jobs, reqCorr(r))
	if err != nil {
		s.reject(w, err)
		return
	}
	if req.Wait {
		s.waitAndRespond(w, r, j)
		return
	}
	s.accepted(w, j)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.json(w, http.StatusOK, j.status())
}

// handleJobEvents streams the job's obs events as NDJSON: the full replay
// history first, then live events until the job finishes or the client
// disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		s.error(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	history, live, cancel := j.subscribe(1024)
	defer cancel()
	enc := json.NewEncoder(w)
	for i := range history {
		if enc.Encode(&history[i]) != nil {
			return
		}
	}
	flush()
	for {
		select {
		case e := <-live:
			if enc.Encode(&e) != nil {
				return
			}
			flush()
		case <-j.done:
			// Drain what the subscription buffered before done closed.
			for {
				select {
				case e := <-live:
					if enc.Encode(&e) != nil {
						return
					}
				default:
					flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.retryAfter(w)
		s.json(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.json(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// --- response helpers ---

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.error(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// waitAndRespond blocks until the job finishes (200/500 with the full
// status) or the client gives up (the job keeps running; other waiters and
// pollers still get it).
func (s *Server) waitAndRespond(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.done:
		st := j.status()
		code := http.StatusOK
		if st.State == stateFailed {
			code = http.StatusInternalServerError
		}
		s.json(w, code, st)
	case <-r.Context().Done():
		// Client disconnected; nothing useful to write.
	}
}

func (s *Server) accepted(w http.ResponseWriter, j *job) {
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	s.json(w, http.StatusAccepted, j.status())
}

func (s *Server) reject(w http.ResponseWriter, err error) {
	if se, ok := err.(*submitErr); ok {
		s.retryAfter(w)
		s.json(w, se.status, errorJSON{Error: se.msg})
		return
	}
	s.error(w, http.StatusInternalServerError, err)
}

func (s *Server) retryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Round(time.Second)/time.Second)))
}

func (s *Server) error(w http.ResponseWriter, code int, err error) {
	s.json(w, code, errorJSON{Error: err.Error()})
}

func (s *Server) json(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.cfg.Logf("serve: writing response: %v", err)
	}
}

// Summary returns the server's aggregated observability counters and phase
// stats over all finished jobs (the data behind /metrics), for embedding
// callers and tests.
func (s *Server) Summary() obs.Summary { return s.agg.summary() }
