package jobcore

import (
	"context"
	"fmt"
	"time"

	"latchchar"
	"latchchar/internal/obs"
)

// Synthetic service-time mode (Config.MockJobTime): every job sleeps for a
// fixed interval under its context and returns a small canned contour. The
// full job lifecycle is real — queueing, coalescing, the result cache, obs
// spans and event streams, drain semantics — only the solver work is
// replaced. This is what cmd/latchload benchmarks against: it isolates the
// serving and cluster layers' scaling from the CPU-bound solver, so the
// throughput-vs-worker-count curve measures the thing cluster mode adds.

// runMock runs one job (single or batch) in mock mode.
func (c *Core) runMock(ctx context.Context, j *Job) {
	if j.batch != nil {
		res := make([]latchchar.JobResult, len(j.batch))
		for i := range j.batch {
			name := j.batch[i].Name
			if name == "" && j.batch[i].Cell != nil {
				name = j.batch[i].Cell.Name
			}
			res[i] = latchchar.JobResult{Name: name, Index: i}
			if err := c.mockWork(ctx, j.run); err != nil {
				res[i].Err = err
				continue
			}
			res[i].Result = mockResult(c.cfg.MockJobTime)
		}
		j.completeBatch(res)
		return
	}
	if err := c.mockWork(ctx, j.run); err != nil {
		j.complete(nil, err)
		return
	}
	j.complete(mockResult(c.cfg.MockJobTime), nil)
}

// mockWork burns one synthetic service interval inside a job span, honoring
// cancellation the way a real characterization does (an interrupted job
// reports canceled, not failed).
func (c *Core) mockWork(ctx context.Context, run *obs.Run) error {
	sp := run.StartSpan(obs.SpanJob)
	defer sp.End()
	t := time.NewTimer(c.cfg.MockJobTime)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("mock job interrupted: %w", latchchar.ErrCanceled)
	case <-t.C:
	}
	sp.Count(obs.CtrPoints, 3)
	return nil
}

// mockResult is the canned payload: a three-point contour with plausible
// picosecond-scale skews, so clients exercising the wire schema decode a
// realistic (if tiny) result.
func mockResult(d time.Duration) *latchchar.Result {
	return &latchchar.Result{
		Contour: &latchchar.Contour{
			Points: []latchchar.ContourPoint{
				{TauS: 30e-12, TauH: 120e-12, CorrectorIters: 2},
				{TauS: 35e-12, TauH: 80e-12, CorrectorIters: 2},
				{TauS: 45e-12, TauH: 60e-12, CorrectorIters: 3},
			},
		},
		Calibration: latchchar.Calibration{
			TC:        1.25e-9,
			CharDelay: 95e-12,
			Tf:        1.35e-9,
			R:         1.1,
			Rising:    true,
		},
		PlainSims: 3,
		GradSims:  3,
		Elapsed:   d,
	}
}
