package jobcore

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"latchchar"
	"latchchar/serveclient"
)

func newTestCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	if cfg.Engine == nil {
		eng, err := latchchar.NewEngine(latchchar.EngineOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		cfg.Engine = eng
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// blockingCell returns a cell whose Build blocks until release is closed,
// pinning a job inside the engine without burning simulation time.
func blockingCell(name string, release <-chan struct{}) *latchchar.Cell {
	return &latchchar.Cell{Name: name, Build: func() (*latchchar.Instance, error) {
		<-release
		return nil, errors.New("released")
	}}
}

// A full queue rejects with ReasonQueueFull and frees the slot again once a
// job drains.
func TestQueueFullBackpressure(t *testing.T) {
	c := newTestCore(t, Config{Workers: 1, QueueDepth: 1})

	release := make(chan struct{})
	submit := func(key string) (*Job, error) {
		j, cached, err := c.Submit(key, "", blockingCell(key, release), latchchar.Options{}, false)
		if cached {
			t.Fatalf("unexpected cache hit for %s", key)
		}
		return j, err
	}
	a, err := submit("a")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker holds job a, so job b occupies the one
	// queue slot deterministically.
	for {
		if st := a.Status(); st.State == serveclient.StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b, err := submit("b")
	if err != nil {
		t.Fatal(err)
	}
	_, err = submit("c")
	var se *SubmitError
	if !errors.As(err, &se) || se.Reason != ReasonQueueFull {
		t.Fatalf("third submit: %v, want queue-full rejection", err)
	}
	if se.HTTPStatus() != http.StatusTooManyRequests {
		t.Errorf("queue-full HTTPStatus = %d, want 429", se.HTTPStatus())
	}

	close(release)
	<-a.Done()
	<-b.Done()
	// Both blocked jobs failed their build — but they freed the queue.
	if st := a.Status(); st.State != serveclient.StateFailed {
		t.Errorf("job a: state %q", st.State)
	}
	if c.Counters().RejectedFull.Load() != 1 {
		t.Errorf("RejectedFull = %d", c.Counters().RejectedFull.Load())
	}
	if _, err := submit("d"); err != nil {
		t.Errorf("submit after drain of queue: %v", err)
	}
}

// Identical concurrent submissions coalesce onto one in-flight job.
func TestSubmitCoalescesInflight(t *testing.T) {
	c := newTestCore(t, Config{Workers: 1})

	release := make(chan struct{})
	first, _, err := c.Submit("k", "", blockingCell("k", release), latchchar.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	second, cached, err := c.Submit("k", "", blockingCell("k", release), latchchar.Options{}, false)
	if err != nil || cached {
		t.Fatalf("second submit: cached=%v err=%v", cached, err)
	}
	if second != first {
		t.Error("identical submission did not coalesce onto the in-flight job")
	}
	if st := first.Status(); st.Coalesced != 1 {
		t.Errorf("coalesced = %d", st.Coalesced)
	}
	close(release)
	<-first.Done()
	// Failed jobs must not populate the result cache.
	if _, ok := c.results.Get("k"); ok {
		t.Error("failed job cached")
	}
}

// A draining core rejects with ReasonDraining (mapped to 503 by transports).
func TestSubmitWhileDraining(t *testing.T) {
	c := newTestCore(t, Config{Workers: 1})
	c.Close()
	_, _, err := c.Submit("x", "", blockingCell("x", make(chan struct{})), latchchar.Options{}, false)
	var se *SubmitError
	if !errors.As(err, &se) || se.Reason != ReasonDraining {
		t.Fatalf("submit while draining: %v", err)
	}
	if se.HTTPStatus() != http.StatusServiceUnavailable {
		t.Errorf("draining HTTPStatus = %d, want 503", se.HTTPStatus())
	}
}

// Mock mode must produce terminal done jobs with the canned contour after
// roughly the configured service time — the substrate of the cluster smoke
// and load tests.
func TestMockJobMode(t *testing.T) {
	c := newTestCore(t, Config{Workers: 2, MockJobTime: 10 * time.Millisecond})
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	j, cached, err := c.Submit("mock-key", "", cell, latchchar.Options{}, false)
	if err != nil || cached {
		t.Fatalf("submit: cached=%v err=%v", cached, err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("mock job never finished")
	}
	st := j.Status()
	if st.State != serveclient.StateDone {
		t.Fatalf("state %q (error %q)", st.State, st.Error)
	}
	if st.Result == nil || len(st.Result.Contour) != 3 {
		t.Fatalf("mock result = %+v", st.Result)
	}
	if st.RunMS < 5 {
		t.Errorf("mock job ran in %.2fms, want >= the configured service time", st.RunMS)
	}
}
