// Package jobcore is the transport-agnostic heart of the characterization
// service: the bounded job queue, singleflight coalescing, the result LRU,
// per-job observability/flight-recorder plumbing and graceful drain. It
// speaks no HTTP — internal/serve (single-node transport) and
// internal/serve/cluster (coordinator) both sit on top of it, so the two
// modes cannot drift apart in job semantics.
package jobcore

import (
	"context"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"latchchar"
	"latchchar/internal/obs"
	"latchchar/internal/sched"
)

// Config configures a Core. It is the former serve.Config minus transport
// concerns.
type Config struct {
	// Engine runs the characterizations (required). The core never bypasses
	// it: every job draws a pool worker and shares the calibration LRU.
	Engine *latchchar.Engine
	// QueueDepth bounds accepted-but-unfinished jobs (default 64). A full
	// queue rejects with ReasonQueueFull.
	QueueDepth int
	// Workers bounds concurrently running jobs (default: the engine's
	// parallelism).
	Workers int
	// JobTimeout is the per-job deadline (default 10 min; negative
	// disables). Timed-out jobs return partial contours as canceled.
	JobTimeout time.Duration
	// ResultCacheSize bounds the result LRU in entries (default 128;
	// negative disables). Only fully successful single-job results are
	// cached.
	ResultCacheSize int
	// MaxJobs bounds retained job records (default 1024); the oldest
	// finished records are evicted first.
	MaxJobs int
	// ProgressInterval is the progress-event cadence on job event streams
	// (default 250ms).
	ProgressInterval time.Duration
	// Logf logs serving events (default log.Printf).
	Logf func(format string, args ...any)
	// Logger receives structured job-lifecycle logs, every line stamped
	// with the creating request's correlation ID (default slog.Default()).
	Logger *slog.Logger
	// DumpDir, when non-empty, receives flight-recorder post-mortem dumps
	// (flight-<jobid>.jsonl) for jobs that fail, time out or are canceled.
	DumpDir string
	// FlightRecorderSize bounds each job's flight-recorder ring in events
	// (default obs.DefaultRecorderCapacity; negative disables recording).
	FlightRecorderSize int
	// RuntimeSampleInterval is the runtime self-telemetry cadence feeding
	// status snapshots and live job event streams (default 10s; negative
	// disables the sampler).
	RuntimeSampleInterval time.Duration
	// MockJobTime, when positive, replaces every characterization with a
	// synthetic job of that fixed service time: the job sleeps (honoring
	// cancellation) and returns a small canned contour. This exists for
	// load testing the serving and cluster layers — on a box whose cores
	// are saturated by real solver work, horizontal-scaling curves would
	// otherwise measure the CPU, not the service. Never set in production.
	MockJobTime time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = c.Engine.Parallelism()
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 128
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 250 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.FlightRecorderSize == 0 {
		c.FlightRecorderSize = obs.DefaultRecorderCapacity
	}
	if c.RuntimeSampleInterval == 0 {
		c.RuntimeSampleInterval = 10 * time.Second
	}
	return c
}

// RejectReason says why Submit refused a job.
type RejectReason int

const (
	// ReasonQueueFull — the bounded queue is at capacity (transports map
	// this to 429).
	ReasonQueueFull RejectReason = iota
	// ReasonDraining — the core is shutting down (transports map this to
	// 503). Both reasons are backpressure: the reject carries a retry hint.
	ReasonDraining
)

// SubmitError is the typed backpressure rejection.
type SubmitError struct {
	Reason RejectReason
}

func (e *SubmitError) Error() string {
	if e.Reason == ReasonDraining {
		return "server is draining"
	}
	return "job queue is full"
}

// HTTPStatus is the canonical transport mapping of the rejection: 503 for
// draining, 429 for a full queue.
func (e *SubmitError) HTTPStatus() int {
	if e.Reason == ReasonDraining {
		return http.StatusServiceUnavailable
	}
	return http.StatusTooManyRequests
}

// Core owns the job lifecycle. Construct with New; stop with Drain and/or
// Close. The caller owns the engine's lifetime.
type Core struct {
	cfg        Config
	eng        *latchchar.Engine
	base       context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup
	started    time.Time
	sampStop   chan struct{}

	mu       sync.Mutex
	draining bool
	nextID   uint64
	jobs     map[string]*Job
	order    []string // job ids in creation order, for record eviction
	inflight map[string]*Job
	results  *sched.LRU[string, *Job]

	met Metrics
	agg obsAgg

	rtMu    sync.Mutex
	rtStats obs.RuntimeStats
	rtAt    time.Time
}

// New starts a core: its workers pull jobs from the bounded queue and run
// them on cfg.Engine.
func New(cfg Config) (*Core, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("jobcore: Config.Engine must be set")
	}
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	c := &Core{
		cfg:        cfg,
		eng:        cfg.Engine,
		base:       base,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		started:    time.Now(),
		sampStop:   make(chan struct{}),
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		results:    sched.NewLRU[string, *Job](max(cfg.ResultCacheSize, 0)),
	}
	c.agg.init()
	c.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go c.worker()
	}
	if cfg.RuntimeSampleInterval > 0 {
		c.sampleRuntime() // status snapshots have a sample from the start
		c.wg.Add(1)
		go c.runtimeSampler()
	}
	return c, nil
}

// Cfg returns the defaulted configuration.
func (c *Core) Cfg() Config { return c.cfg }

// Engine returns the characterization engine the core runs on.
func (c *Core) Engine() *latchchar.Engine { return c.eng }

// Started returns the core's start time (for uptime reporting).
func (c *Core) Started() time.Time { return c.started }

// Drain stops accepting new work and waits for queued and running jobs to
// finish. If ctx expires first, in-flight characterizations are canceled —
// they record partial contours as canceled jobs — and Drain still waits for
// the workers to wind down before returning the context error. Idempotent.
func (c *Core) Drain(ctx context.Context) error {
	c.mu.Lock()
	if !c.draining {
		c.draining = true
		close(c.queue)    // workers finish the buffered jobs, then exit
		close(c.sampStop) // runtime sampler winds down with them
	}
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		c.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels everything immediately: equivalent to a drain whose
// deadline already passed.
func (c *Core) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = c.Drain(ctx)
}

// Draining reports whether the core has stopped accepting work.
func (c *Core) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Submit coalesces or enqueues a single-characterization job. The returned
// job is either a cached finished job (cached=true), an in-flight job the
// request attached to, or a freshly queued one.
func (c *Core) Submit(key, corr string, cell *latchchar.Cell, opts latchchar.Options, noCache bool) (j *Job, cached bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		c.met.RejectedDraining.Add(1)
		return nil, false, &SubmitError{Reason: ReasonDraining}
	}
	if !noCache {
		if hit, ok := c.results.Get(key); ok {
			c.met.ResultCacheHits.Add(1)
			return hit, true, nil
		}
	}
	if fl := c.inflight[key]; fl != nil {
		fl.mu.Lock()
		fl.coalesced++
		fl.mu.Unlock()
		c.met.Coalesced.Add(1)
		return fl, false, nil
	}
	j = c.newJobLocked(key, corr)
	j.cell, j.opts = cell, opts
	select {
	case c.queue <- j:
	default:
		c.dropJobLocked(j)
		c.met.RejectedFull.Add(1)
		return nil, false, &SubmitError{Reason: ReasonQueueFull}
	}
	c.inflight[key] = j
	return j, false, nil
}

// SubmitMC coalesces or enqueues a variance-aware Monte-Carlo job. It
// shares the coalescing map and result cache with Submit — the MC options
// participate in the key, so an MC request never collides with a plain one.
func (c *Core) SubmitMC(key, corr string, mk func(latchchar.Process) *latchchar.Cell, nominal latchchar.Process, mcOpts latchchar.MCOptions, noCache bool) (j *Job, cached bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		c.met.RejectedDraining.Add(1)
		return nil, false, &SubmitError{Reason: ReasonDraining}
	}
	if !noCache {
		if hit, ok := c.results.Get(key); ok {
			c.met.ResultCacheHits.Add(1)
			return hit, true, nil
		}
	}
	if fl := c.inflight[key]; fl != nil {
		fl.mu.Lock()
		fl.coalesced++
		fl.mu.Unlock()
		c.met.Coalesced.Add(1)
		return fl, false, nil
	}
	j = c.newJobLocked(key, corr)
	j.mcMk, j.mcNominal, j.mcOpts = mk, nominal, mcOpts
	j.cell = mk(nominal)
	select {
	case c.queue <- j:
	default:
		c.dropJobLocked(j)
		c.met.RejectedFull.Add(1)
		return nil, false, &SubmitError{Reason: ReasonQueueFull}
	}
	c.inflight[key] = j
	return j, false, nil
}

// SubmitBatch enqueues a batch job (no coalescing; warm-start grouping
// happens inside the engine batch).
func (c *Core) SubmitBatch(jobs []latchchar.Job, corr string) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		c.met.RejectedDraining.Add(1)
		return nil, &SubmitError{Reason: ReasonDraining}
	}
	j := c.newJobLocked("", corr)
	j.batch = jobs
	select {
	case c.queue <- j:
	default:
		c.dropJobLocked(j)
		c.met.RejectedFull.Add(1)
		return nil, &SubmitError{Reason: ReasonQueueFull}
	}
	return j, nil
}

// newJobLocked creates and registers a job record, evicting the oldest
// finished records past MaxJobs. Callers hold c.mu.
func (c *Core) newJobLocked(key, corr string) *Job {
	c.nextID++
	id := fmt.Sprintf("j%08d", c.nextID)
	j := newJob(id, key, corr, c.cfg.ProgressInterval, c.cfg.FlightRecorderSize)
	c.jobs[id] = j
	c.order = append(c.order, id)
	for len(c.order) > c.cfg.MaxJobs {
		victim := c.jobs[c.order[0]]
		if victim == nil {
			c.order = c.order[1:]
			continue
		}
		select {
		case <-victim.done:
			delete(c.jobs, victim.id)
			c.order = c.order[1:]
		default:
			// Oldest record still live: stop evicting, the window grows
			// temporarily instead of dropping unfinished work.
			return j
		}
	}
	return j
}

func (c *Core) dropJobLocked(j *Job) {
	delete(c.jobs, j.id)
	if len(c.order) > 0 && c.order[len(c.order)-1] == j.id {
		c.order = c.order[:len(c.order)-1]
	}
}

// Lookup returns the job record for id, nil when unknown or evicted.
func (c *Core) Lookup(id string) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

// worker pulls jobs until the queue closes on drain.
func (c *Core) worker() {
	defer c.wg.Done()
	for j := range c.queue {
		c.runJob(j)
	}
}

// runJob executes one job end to end: engine run (or mock), state
// transition, result caching, observability fold, failure dump, and the
// done broadcast.
func (c *Core) runJob(j *Job) {
	ctx := c.base
	if c.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.JobTimeout)
		defer cancel()
	}
	j.setRunning()
	c.cfg.Logger.Info("job started", "corr", j.corr, "job", j.id,
		"batch", j.batch != nil, "queued_ms", DurMS(time.Since(j.created)))
	switch {
	case c.cfg.MockJobTime > 0:
		c.runMock(ctx, j)
	case j.batch != nil:
		for i := range j.batch {
			j.batch[i].Opts.Obs = j.run
		}
		j.completeBatch(c.eng.CharacterizeBatch(ctx, j.batch))
	case j.mcMk != nil:
		mcOpts := j.mcOpts
		mcOpts.Characterize.Obs = j.run
		mc, err := c.eng.MonteCarloContours(ctx, j.mcMk, j.mcNominal, mcOpts)
		j.completeMC(mc, err)
	default:
		opts := j.opts
		opts.Obs = j.run
		res, err := c.eng.Characterize(ctx, j.cell, opts)
		j.complete(res, err)
	}
	c.mu.Lock()
	if c.inflight[j.key] == j {
		delete(c.inflight, j.key)
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if j.batch == nil && state == stateDone && j.key != "" {
		c.results.Put(j.key, j)
	}
	c.mu.Unlock()
	switch state {
	case stateDone:
		c.met.JobsDone.Add(1)
	case stateCanceled:
		c.met.JobsCanceled.Add(1)
	default:
		c.met.JobsFailed.Add(1)
	}
	c.agg.fold(j.run.Summary())
	if err := j.run.Close(); err != nil {
		c.cfg.Logf("jobcore: job %s: closing obs run: %v", j.id, err)
	}
	j.mu.Lock()
	jobErr := j.err
	runMS := DurMS(j.finished.Sub(j.started))
	j.mu.Unlock()
	if state == stateDone {
		c.cfg.Logger.Info("job finished", "corr", j.corr, "job", j.id,
			"state", state, "run_ms", runMS)
	} else {
		c.cfg.Logger.Warn("job finished", "corr", j.corr, "job", j.id,
			"state", state, "run_ms", runMS, "error", errString(jobErr))
		if path, err := c.dumpFlight(j, state, jobErr); err != nil {
			c.cfg.Logger.Error("flight dump failed", "corr", j.corr, "job", j.id, "error", err.Error())
		} else if path != "" {
			c.cfg.Logger.Info("flight dump written", "corr", j.corr, "job", j.id, "path", path)
		}
	}
	close(j.done)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// dumpFlight writes the job's flight-recorder post-mortem to DumpDir and
// returns the path ("" when dumping is disabled). The dump carries the
// recorded event window plus a structured error event — for convergence
// failures the corrector iterate ring and the step schedule tried.
func (c *Core) dumpFlight(j *Job, state string, jobErr error) (string, error) {
	if c.cfg.DumpDir == "" || j.rec == nil {
		return "", nil
	}
	reason := state
	if state == stateCanceled && errors.Is(jobErr, context.DeadlineExceeded) {
		reason = "timeout"
	}
	if err := os.MkdirAll(c.cfg.DumpDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(c.cfg.DumpDir, "flight-"+j.id+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	meta := obs.DumpMeta{Corr: j.corr, Job: j.id, Reason: reason, Err: errString(jobErr)}
	werr := j.rec.WriteDump(f, meta, latchchar.FlightErrorEvent(jobErr))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	return path, nil
}

// Summary returns the aggregated observability counters and phase stats
// over all finished jobs, for metrics exposition and tests.
func (c *Core) Summary() obs.Summary { return c.agg.summary() }

// Counters returns the core's request/job counters for exposition.
func (c *Core) Counters() *Metrics { return &c.met }

// Snapshot captures the queue/cache state behind /statusz and /metrics.
func (c *Core) Snapshot() Snapshot {
	c.mu.Lock()
	queued := len(c.queue)
	inflight := len(c.inflight)
	draining := c.draining
	c.mu.Unlock()
	hits, misses := c.eng.CacheStats()
	return Snapshot{
		QueueDepth:             queued,
		QueueCap:               c.cfg.QueueDepth,
		InflightKeys:           inflight,
		Workers:                c.cfg.Workers,
		Draining:               draining,
		CalibrationCacheHits:   hits,
		CalibrationCacheMisses: misses,
	}
}

// Snapshot is a point-in-time view of the core's queue and cache state.
type Snapshot struct {
	QueueDepth             int
	QueueCap               int
	InflightKeys           int
	Workers                int
	Draining               bool
	CalibrationCacheHits   int64
	CalibrationCacheMisses int64
}

// RuntimeStats returns the latest runtime self-telemetry sample and when it
// was taken (zero time when the sampler is disabled or hasn't fired).
func (c *Core) RuntimeStats() (obs.RuntimeStats, time.Time) {
	c.rtMu.Lock()
	defer c.rtMu.Unlock()
	return c.rtStats, c.rtAt
}

// runtimeSampler periodically reads the Go runtime and (a) publishes the
// sample for status snapshots, (b) emits a runtime event into every live
// job's obs stream so a streamed trace shows the saturation it ran under.
// Exits when Drain closes sampStop.
func (c *Core) runtimeSampler() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.RuntimeSampleInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.sampleRuntime()
		case <-c.sampStop:
			return
		}
	}
}

func (c *Core) sampleRuntime() {
	st := obs.ReadRuntimeStats()
	c.rtMu.Lock()
	c.rtStats, c.rtAt = st, time.Now()
	c.rtMu.Unlock()
	c.mu.Lock()
	runs := make([]*obs.Run, 0, len(c.inflight))
	for _, j := range c.inflight {
		runs = append(runs, j.run)
	}
	c.mu.Unlock()
	// Outside c.mu: Run.Runtime takes the collector lock, which event
	// subscribers (Job.capture) run under.
	for _, r := range runs {
		r.Runtime(st)
	}
}
