package jobcore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"latchchar"
	"latchchar/internal/transient"
	"latchchar/serveclient"
)

// Conversion between the serveclient wire schema and engine-level types.
// The wire types themselves live in serveclient (the stable contract); what
// lives here is the server-side semantics: resolving a request to a
// buildable cell, mapping wire options onto engine options, deriving the
// coalescing key, and rendering results. Both the single-node transport and
// the cluster coordinator route requests through these, so a job hashes and
// validates identically on every node.

// ResolveCell turns a request into a buildable cell: an inline deck, or a
// built-in cell with Process/Timing overrides decoded on top of its
// defaults.
func ResolveCell(req *serveclient.CharacterizeRequest) (*latchchar.Cell, error) {
	if req.Netlist != "" {
		if len(req.Process) > 0 || len(req.Timing) > 0 {
			return nil, fmt.Errorf("process/timing overrides do not apply to inline netlists (the deck carries its own stimulus)")
		}
		deck, err := latchchar.ParseNetlistString(req.Netlist)
		if err != nil {
			return nil, err
		}
		name := req.Cell
		if name == "" {
			name = "netlist"
		}
		return deck.Cell(name), nil
	}
	name := req.Cell
	if name == "" {
		return nil, fmt.Errorf("request needs a cell name or an inline netlist")
	}
	base, err := latchchar.CellByName(name)
	if err != nil {
		return nil, err
	}
	p, tm := base.Process, base.Timing
	if len(req.Process) > 0 {
		if err := json.Unmarshal(req.Process, &p); err != nil {
			return nil, fmt.Errorf("process override: %w", err)
		}
	}
	if len(req.Timing) > 0 {
		if err := json.Unmarshal(req.Timing, &tm); err != nil {
			return nil, fmt.Errorf("timing override: %w", err)
		}
	}
	if len(req.Process) == 0 && len(req.Timing) == 0 {
		return base, nil
	}
	switch name {
	case "tspc":
		return latchchar.TSPCCell(p, tm), nil
	case "c2mos":
		return latchchar.C2MOSCell(p, tm, 0), nil // 0 selects the default clk̄ delay
	case "tgate":
		return latchchar.TGateCell(p, tm), nil
	}
	return nil, fmt.Errorf("cell %q does not accept process/timing overrides", name)
}

// ToOptions converts the wire options to characterization options. The
// engine's own Options.Validate runs downstream and covers ranges; only
// wire-level choices (the method name) are checked here.
func ToOptions(o serveclient.OptionsRequest) (latchchar.Options, error) {
	eval := latchchar.EvalConfig{
		Degrade:      o.Degrade,
		MaxSetupSkew: o.MaxSetupSkewPS * 1e-12,
	}
	if o.FastPath {
		eval = eval.WithFastPath()
	}
	opts := latchchar.Options{
		Points:         o.Points,
		Step:           o.StepPS * 1e-12,
		BothDirections: o.BothDirections,
		Resample:       o.Resample,
		Block:          o.Block,
		Eval:           eval,
	}
	switch o.Method {
	case "", "be":
		opts.Eval.Method = transient.BE
	case "trap":
		opts.Eval.Method = transient.TRAP
	default:
		return opts, fmt.Errorf("unknown method %q (have be, trap)", o.Method)
	}
	return opts, nil
}

// Resolve validates one characterize request end to end: cell resolution,
// option mapping, engine-level option validation, and the coalescing key.
// Monte-Carlo requests (Options.MCSamples > 0) resolve through ResolveMC —
// the returned cell is the nominal corner's — so a cluster edge derives the
// same key and rejects the same invalid requests as the worker it forwards
// to.
func Resolve(req *serveclient.CharacterizeRequest) (*latchchar.Cell, latchchar.Options, string, error) {
	if req.Options.MCSamples > 0 {
		mk, nominal, mcOpts, key, err := ResolveMC(req)
		if err != nil {
			return nil, latchchar.Options{}, "", err
		}
		return mk(nominal), mcOpts.Characterize, key, nil
	}
	cell, err := ResolveCell(req)
	if err != nil {
		return nil, latchchar.Options{}, "", err
	}
	opts, err := ToOptions(req.Options)
	if err != nil {
		return nil, latchchar.Options{}, "", err
	}
	if err := opts.Validate(); err != nil {
		return nil, latchchar.Options{}, "", err
	}
	return cell, opts, RequestKey(req, cell), nil
}

// ToMCOptions converts the wire options to Monte-Carlo options around the
// already-mapped characterization options.
func ToMCOptions(o serveclient.OptionsRequest, charOpts latchchar.Options) (latchchar.MCOptions, error) {
	mc := latchchar.MCOptions{
		Samples:      o.MCSamples,
		Seed:         o.Seed,
		Sampler:      latchchar.Sampler(o.Sampler),
		SigmaVT:      o.SigmaVT,
		SigmaKP:      o.SigmaKP,
		SigmaLevel:   o.SigmaLevel,
		Probes:       o.MCProbes,
		Characterize: charOpts,
	}
	return mc, mc.Validate()
}

// ResolveMC resolves a Monte-Carlo request: a cell maker over the process
// axes, the nominal process, the mapped MC options and the coalescing key.
// Only built-in cells qualify — an inline netlist carries no process
// parameters to perturb.
func ResolveMC(req *serveclient.CharacterizeRequest) (func(latchchar.Process) *latchchar.Cell, latchchar.Process, latchchar.MCOptions, string, error) {
	fail := func(err error) (func(latchchar.Process) *latchchar.Cell, latchchar.Process, latchchar.MCOptions, string, error) {
		return nil, latchchar.Process{}, latchchar.MCOptions{}, "", err
	}
	if req.Netlist != "" {
		return fail(fmt.Errorf("monte-carlo requests need a built-in cell (inline netlists carry no process parameters to perturb)"))
	}
	name := req.Cell
	if name == "" {
		return fail(fmt.Errorf("request needs a cell name"))
	}
	base, err := latchchar.CellByName(name)
	if err != nil {
		return fail(err)
	}
	p, tm := base.Process, base.Timing
	if len(req.Process) > 0 {
		if err := json.Unmarshal(req.Process, &p); err != nil {
			return fail(fmt.Errorf("process override: %w", err))
		}
	}
	if len(req.Timing) > 0 {
		if err := json.Unmarshal(req.Timing, &tm); err != nil {
			return fail(fmt.Errorf("timing override: %w", err))
		}
	}
	mk, err := latchchar.CellMakerByName(name, tm)
	if err != nil {
		return fail(fmt.Errorf("cell %q does not support monte-carlo characterization", name))
	}
	charOpts, err := ToOptions(req.Options)
	if err != nil {
		return fail(err)
	}
	if err := charOpts.Validate(); err != nil {
		return fail(err)
	}
	mcOpts, err := ToMCOptions(req.Options, charOpts)
	if err != nil {
		return fail(err)
	}
	return mk, p, mcOpts, RequestKey(req, mk(p)), nil
}

// ResolveBatch validates every batch item and returns the engine jobs plus
// each item's individual coalescing key (the cluster coordinator partitions
// a batch across workers by these keys; single-node mode ignores them).
func ResolveBatch(req *serveclient.BatchRequest) ([]latchchar.Job, []string, error) {
	if len(req.Jobs) == 0 {
		return nil, nil, fmt.Errorf("batch needs at least one job")
	}
	jobs := make([]latchchar.Job, len(req.Jobs))
	keys := make([]string, len(req.Jobs))
	for i := range req.Jobs {
		item := &req.Jobs[i]
		if item.Options.MCSamples > 0 {
			return nil, nil, fmt.Errorf("jobs[%d]: monte-carlo requests are not batchable; submit them to /v1/characterize", i)
		}
		cell, opts, key, err := Resolve(&item.CharacterizeRequest)
		if err != nil {
			return nil, nil, fmt.Errorf("jobs[%d]: %w", i, err)
		}
		jobs[i] = latchchar.Job{Name: item.Name, Cell: cell, Opts: opts, Cold: item.Cold}
		keys[i] = key
	}
	return jobs, keys, nil
}

// RequestKey derives the coalescing/result-cache key: a digest over the
// resolved cell identity (name, process, timing — or the raw deck text) and
// the normalized wire options, mirroring the engine's calibration LRU key
// plus the query parameters. The same key partitions jobs across the
// cluster ring, which is what makes coalescing work cross-node.
func RequestKey(req *serveclient.CharacterizeRequest, cell *latchchar.Cell) string {
	canonical := struct {
		Netlist string
		Name    string
		Process latchchar.Process
		Timing  latchchar.Timing
		Options serveclient.OptionsRequest
	}{
		Netlist: req.Netlist,
		Name:    cell.Name,
		Process: cell.Process,
		Timing:  cell.Timing,
		Options: req.Options,
	}
	b, err := json.Marshal(canonical)
	if err != nil {
		// Process/Timing/OptionsRequest are plain scalar structs; Marshal
		// cannot fail on them. Fall back to an uncoalescable key.
		return fmt.Sprintf("unkeyed-%p", req)
	}
	sum := sha256.Sum256(b)
	return "v1:" + hex.EncodeToString(sum[:])
}

// RenderResult renders a Result (nil-safe: canceled jobs may carry none).
func RenderResult(cell string, res *latchchar.Result) *serveclient.ResultJSON {
	if res == nil {
		return nil
	}
	out := &serveclient.ResultJSON{
		Cell:      cell,
		Contour:   []serveclient.PointJSON{},
		PlainSims: res.PlainSims,
		GradSims:  res.GradSims,
		TotalSims: res.TotalSims(),
		ElapsedMS: DurMS(res.Elapsed),
		Calibration: serveclient.CalibrationJSON{
			CharDelayPS: res.Calibration.CharDelay * 1e12,
			TCNs:        res.Calibration.TC * 1e9,
			TfNs:        res.Calibration.Tf * 1e9,
			R:           res.Calibration.R,
			Rising:      res.Calibration.Rising,
		},
		Stats: serveclient.StatsJSON{
			Steps:             res.Stats.Steps,
			NewtonIters:       res.Stats.NewtonIters,
			Factorizations:    res.Stats.Factorizations,
			SensSolves:        res.Stats.SensSolves,
			ChordIters:        res.Stats.ChordIters,
			JacobianReuses:    res.Stats.JacobianReuses,
			DeviceBypasses:    res.Stats.DeviceBypasses,
			BlockSharedSteps:  res.Stats.BlockSharedSteps,
			BlockPeelOffs:     res.Stats.BlockPeelOffs,
			BlockDonorReplays: res.Stats.BlockDonorReplays,
			WallMS:            DurMS(res.Stats.Wall),
		},
	}
	if res.Contour != nil {
		for _, p := range res.Contour.Points {
			out.Contour = append(out.Contour, serveclient.PointJSON{
				TauSPs: p.TauS * 1e12,
				TauHPs: p.TauH * 1e12,
				H:      p.H,
				Iters:  p.CorrectorIters,
			})
		}
	}
	return out
}

// RenderMCResult renders a variance-aware Monte-Carlo outcome: the nominal
// corner as the base result plus the sigma percentile estimate (nil-safe on
// both levels — canceled runs may carry a nominal result without a sigma
// estimate, or nothing at all).
func RenderMCResult(cell string, mc *latchchar.MCResult) *serveclient.ResultJSON {
	if mc == nil {
		return nil
	}
	out := RenderResult(cell, mc.Nominal)
	if out == nil || mc.Sigma == nil {
		return out
	}
	sig := &serveclient.SigmaJSON{
		Level:         mc.Sigma.Level,
		Samples:       mc.Sigma.Samples,
		WarmSamples:   mc.WarmSamples,
		ColdFallbacks: mc.ColdFallbacks,
		RunSims:       mc.TotalSims,
		SimsSaved:     mc.SimsSaved,
	}
	for j, p := range mc.Sigma.Probes {
		sig.Probes = append(sig.Probes, serveclient.PointJSON{
			TauSPs: p.TauS * 1e12, TauHPs: p.TauH * 1e12, H: p.H, Iters: p.CorrectorIters,
		})
		sig.DeltaMeanPS = append(sig.DeltaMeanPS, mc.Sigma.Delta[j].Mean*1e12)
		sig.DeltaStdPS = append(sig.DeltaStdPS, mc.Sigma.Delta[j].Std*1e12)
		in, outp := mc.Sigma.Inner.Points[j], mc.Sigma.Outer.Points[j]
		sig.Inner = append(sig.Inner, serveclient.PointJSON{TauSPs: in.TauS * 1e12, TauHPs: in.TauH * 1e12})
		sig.Outer = append(sig.Outer, serveclient.PointJSON{TauSPs: outp.TauS * 1e12, TauHPs: outp.TauH * 1e12})
	}
	out.Sigma = sig
	return out
}

// DurMS converts a duration to float milliseconds for wire rendering.
func DurMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
