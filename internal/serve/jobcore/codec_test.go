package jobcore

import (
	"strings"
	"testing"

	"latchchar"
	"latchchar/serveclient"
)

func TestRequestKeyStability(t *testing.T) {
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	r1 := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}
	r2 := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}, Wait: true, NoCache: true}
	if RequestKey(r1, cell) != RequestKey(r2, cell) {
		t.Error("wait/no_cache must not affect the coalescing key")
	}
	r3 := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 4}}
	if RequestKey(r1, cell) == RequestKey(r3, cell) {
		t.Error("different options share a key")
	}
	if !strings.HasPrefix(RequestKey(r1, cell), "v1:") {
		t.Error("key missing version prefix")
	}

	// The coordinator derives the key via Resolve before forwarding; it must
	// match the worker's own derivation exactly, or cross-node coalescing
	// silently stops working.
	_, _, key, err := Resolve(r1)
	if err != nil {
		t.Fatal(err)
	}
	if key != RequestKey(r1, cell) {
		t.Error("Resolve key differs from RequestKey")
	}
}

func TestFastPathOptionMapping(t *testing.T) {
	opts, err := ToOptions(serveclient.OptionsRequest{FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Eval.Chord || !opts.Eval.DeviceBypass {
		t.Errorf("fast_path must enable both chord and device bypass, got Chord=%v DeviceBypass=%v",
			opts.Eval.Chord, opts.Eval.DeviceBypass)
	}
	opts, err = ToOptions(serveclient.OptionsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Eval.Chord || opts.Eval.DeviceBypass {
		t.Error("fast path must stay off by default")
	}
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	// fast_path selects a different inner loop — it must not coalesce with
	// exact-path requests.
	exact := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}
	fast := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3, FastPath: true}}
	if RequestKey(exact, cell) == RequestKey(fast, cell) {
		t.Error("fast_path requests share a coalescing key with exact requests")
	}
}

func TestResolveMC(t *testing.T) {
	req := &serveclient.CharacterizeRequest{
		Cell: "tspc",
		Options: serveclient.OptionsRequest{
			Points: 3, MCSamples: 4, Sampler: "sobol", Seed: 9, MCProbes: 6, SigmaLevel: 2,
		},
	}
	mk, nominal, mcOpts, key, err := ResolveMC(req)
	if err != nil {
		t.Fatal(err)
	}
	if mcOpts.Samples != 4 || mcOpts.Sampler != latchchar.SamplerSobol ||
		mcOpts.Seed != 9 || mcOpts.Probes != 6 || mcOpts.SigmaLevel != 2 {
		t.Errorf("mc options mis-mapped: %+v", mcOpts)
	}
	if mcOpts.Characterize.Points != 3 {
		t.Errorf("characterize options mis-mapped: points = %d", mcOpts.Characterize.Points)
	}
	if cell := mk(nominal); cell == nil || cell.Name != "tspc" {
		t.Error("cell maker does not rebuild the nominal cell")
	}

	// The MC parameters must participate in the coalescing key, and an MC
	// request must never share a key with the plain request it wraps.
	plain := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}
	cell, _ := latchchar.CellByName("tspc")
	if key == RequestKey(plain, cell) {
		t.Error("MC request shares a key with the plain request")
	}
	other := *req
	other.Options.Seed = 10
	_, _, _, key2, err := ResolveMC(&other)
	if err != nil {
		t.Fatal(err)
	}
	if key == key2 {
		t.Error("different MC seeds share a coalescing key")
	}
	// The coordinator derives MC keys through Resolve; it must agree.
	_, _, rkey, err := Resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	if rkey != key {
		t.Error("Resolve key differs from ResolveMC key")
	}

	bad := &serveclient.CharacterizeRequest{Netlist: "x", Options: serveclient.OptionsRequest{MCSamples: 4}}
	if _, _, _, _, err := ResolveMC(bad); err == nil {
		t.Error("inline netlist accepted for monte-carlo")
	}
	badSampler := *req
	badSampler.Options.Sampler = "dartboard"
	if _, _, _, _, err := ResolveMC(&badSampler); err == nil {
		t.Error("unknown sampler accepted")
	}
}

func TestResolveBatchKeys(t *testing.T) {
	req := &serveclient.BatchRequest{Jobs: []serveclient.BatchJobRequest{
		{Name: "a", CharacterizeRequest: serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}},
		{Name: "b", CharacterizeRequest: serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 4}}},
		{Name: "c", CharacterizeRequest: serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}},
	}}
	jobs, keys, err := ResolveBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 || len(keys) != 3 {
		t.Fatalf("jobs=%d keys=%d", len(jobs), len(keys))
	}
	if keys[0] != keys[2] {
		t.Error("identical batch items must share a key (cluster partitioning relies on it)")
	}
	if keys[0] == keys[1] {
		t.Error("distinct batch items share a key")
	}
}
