package jobcore

import (
	"strings"
	"testing"

	"latchchar"
	"latchchar/serveclient"
)

func TestRequestKeyStability(t *testing.T) {
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	r1 := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}
	r2 := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}, Wait: true, NoCache: true}
	if RequestKey(r1, cell) != RequestKey(r2, cell) {
		t.Error("wait/no_cache must not affect the coalescing key")
	}
	r3 := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 4}}
	if RequestKey(r1, cell) == RequestKey(r3, cell) {
		t.Error("different options share a key")
	}
	if !strings.HasPrefix(RequestKey(r1, cell), "v1:") {
		t.Error("key missing version prefix")
	}

	// The coordinator derives the key via Resolve before forwarding; it must
	// match the worker's own derivation exactly, or cross-node coalescing
	// silently stops working.
	_, _, key, err := Resolve(r1)
	if err != nil {
		t.Fatal(err)
	}
	if key != RequestKey(r1, cell) {
		t.Error("Resolve key differs from RequestKey")
	}
}

func TestFastPathOptionMapping(t *testing.T) {
	opts, err := ToOptions(serveclient.OptionsRequest{FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Eval.Chord || !opts.Eval.DeviceBypass {
		t.Errorf("fast_path must enable both chord and device bypass, got Chord=%v DeviceBypass=%v",
			opts.Eval.Chord, opts.Eval.DeviceBypass)
	}
	opts, err = ToOptions(serveclient.OptionsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Eval.Chord || opts.Eval.DeviceBypass {
		t.Error("fast path must stay off by default")
	}
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	// fast_path selects a different inner loop — it must not coalesce with
	// exact-path requests.
	exact := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}
	fast := &serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3, FastPath: true}}
	if RequestKey(exact, cell) == RequestKey(fast, cell) {
		t.Error("fast_path requests share a coalescing key with exact requests")
	}
}

func TestResolveBatchKeys(t *testing.T) {
	req := &serveclient.BatchRequest{Jobs: []serveclient.BatchJobRequest{
		{Name: "a", CharacterizeRequest: serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}},
		{Name: "b", CharacterizeRequest: serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 4}}},
		{Name: "c", CharacterizeRequest: serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}},
	}}
	jobs, keys, err := ResolveBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 || len(keys) != 3 {
		t.Fatalf("jobs=%d keys=%d", len(jobs), len(keys))
	}
	if keys[0] != keys[2] {
		t.Error("identical batch items must share a key (cluster partitioning relies on it)")
	}
	if keys[0] == keys[1] {
		t.Error("distinct batch items share a key")
	}
}
