package jobcore

import (
	"sort"
	"sync"
	"sync/atomic"

	"latchchar/internal/obs"
)

// Metrics holds the core-level request and job counters exposed on /metrics
// and /statusz. Transports increment Requests; the core owns the rest.
type Metrics struct {
	Requests         atomic.Int64
	JobsDone         atomic.Int64
	JobsFailed       atomic.Int64
	JobsCanceled     atomic.Int64
	Coalesced        atomic.Int64
	ResultCacheHits  atomic.Int64
	RejectedFull     atomic.Int64
	RejectedDraining atomic.Int64
}

// obsAgg accumulates per-job obs.Run summaries into a core-lifetime view:
// every obs counter plus per-phase count and wall-clock. All known counter
// names are pre-seeded at zero so scrapers see a stable metric set from the
// first request — including the cluster_* counters, which a worker never
// increments but must still expose so fleet-wide dashboards sum one stable
// vocabulary.
type obsAgg struct {
	mu       sync.Mutex
	counters map[string]int64
	phases   map[string]obs.PhaseStat
	hists    map[string]*obs.Hist
}

func (a *obsAgg) init() {
	a.counters = map[string]int64{
		obs.CtrTransients:             0,
		obs.CtrTransientsGrad:         0,
		obs.CtrSteps:                  0,
		obs.CtrNewtonIters:            0,
		obs.CtrLUFactor:               0,
		obs.CtrLURefactor:             0,
		obs.CtrSensSolves:             0,
		obs.CtrSensFactReused:         0,
		obs.CtrPoints:                 0,
		obs.CtrStepRejects:            0,
		obs.CtrWarmSeeds:              0,
		obs.CtrCalReused:              0,
		obs.CtrChordIters:             0,
		obs.CtrJacobianReuses:         0,
		obs.CtrDeviceBypasses:         0,
		obs.CtrRuntimeSamples:         0,
		obs.CtrBlockRuns:              0,
		obs.CtrBlockPeelOffs:          0,
		obs.CtrBlockSharedSteps:       0,
		obs.CtrBlockDonorReplays:      0,
		obs.CtrMCWarmSeeds:            0,
		obs.CtrMCSimsSaved:            0,
		obs.CtrMCCVApplied:            0,
		obs.CtrClusterForwards:        0,
		obs.CtrClusterForwardRetries:  0,
		obs.CtrClusterForwardFailures: 0,
		obs.CtrClusterRehashes:        0,
		obs.CtrClusterStreamEvents:    0,
	}
	a.phases = map[string]obs.PhaseStat{}
	a.hists = map[string]*obs.Hist{}
}

func (a *obsAgg) fold(s obs.Summary) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for name, v := range s.Counters {
		a.counters[name] += v
	}
	for _, p := range s.Phases {
		agg := a.phases[p.Name]
		agg.Name = p.Name
		agg.Count += p.Count
		agg.Total += p.Total
		a.phases[p.Name] = agg
	}
	for _, hs := range s.Hists {
		h := a.hists[hs.Name]
		if h == nil {
			h = &obs.Hist{}
			a.hists[hs.Name] = h
		}
		h.AddSnapshot(hs.Hist)
	}
}

// summary renders the aggregate as an obs.Summary for tests and embedders.
func (a *obsAgg) summary() obs.Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := obs.Summary{Counters: make(map[string]int64, len(a.counters))}
	for name, v := range a.counters {
		s.Counters[name] = v
	}
	for _, p := range a.phases {
		s.Phases = append(s.Phases, p)
	}
	for name, h := range a.hists {
		s.Hists = append(s.Hists, obs.HistStat{Name: name, Hist: h.Snapshot()})
	}
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Name < s.Phases[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
