package jobcore

import (
	"errors"
	"sync"
	"time"

	"latchchar"
	"latchchar/internal/obs"
	"latchchar/serveclient"
)

// Job states — aliases of the wire constants so the core and the transports
// agree by construction.
const (
	stateQueued   = serveclient.StateQueued
	stateRunning  = serveclient.StateRunning
	stateDone     = serveclient.StateDone
	stateFailed   = serveclient.StateFailed
	stateCanceled = serveclient.StateCanceled
)

// maxJobEvents bounds the per-job event replay buffer; live subscribers
// keep receiving past the cap, only the replay history stops growing.
const maxJobEvents = 16384

// Job is one queued/running/finished characterization (or batch) with its
// observability run and event log. The done channel closes after the final
// state and the run's run_end event are in place, so waiters and event
// streamers never observe a half-finished record.
type Job struct {
	id   string
	key  string // coalescing key; "" for batch jobs (never coalesced)
	corr string // correlation ID of the request that created the job

	cell  *latchchar.Cell
	opts  latchchar.Options
	batch []latchchar.Job // non-nil selects the batch flow

	// Monte-Carlo flow (non-nil mcMk selects it): the cell maker over the
	// process axes, the nominal process and the MC options.
	mcMk      func(latchchar.Process) *latchchar.Cell
	mcNominal latchchar.Process
	mcOpts    latchchar.MCOptions

	run     *obs.Run
	rec     *obs.Recorder // flight recorder; nil when disabled
	created time.Time
	done    chan struct{}

	mu        sync.Mutex
	state     string
	started   time.Time
	finished  time.Time
	coalesced int
	result    *latchchar.Result
	mcRes     *latchchar.MCResult
	batchRes  []latchchar.JobResult
	err       error
	events    []obs.Event
	subs      map[int]chan obs.Event
	nextSub   int
}

// newJob creates a queued job with a live observability run capturing every
// event (including progress at progressInterval cadence) into the job's
// replay buffer and fanning it out to subscribers. Every event is stamped
// with the request's correlation ID, and a flight recorder rides along as a
// sink (recorderSize < 0 disables it) for post-mortem dumps.
func newJob(id, key, corr string, progressInterval time.Duration, recorderSize int) *Job {
	j := &Job{
		id:      id,
		key:     key,
		corr:    corr,
		created: time.Now(),
		state:   stateQueued,
		done:    make(chan struct{}),
		subs:    make(map[int]chan obs.Event),
	}
	// The empty progress callback turns on progress *events* (the stream
	// consumers render those); the callback itself has nothing to do.
	j.run = obs.New(
		obs.WithProgress(func(obs.Progress) {}, progressInterval),
		obs.WithCorr(corr),
	)
	if recorderSize >= 0 {
		j.rec = obs.NewRecorder(recorderSize)
		j.run.AddSink(j.rec)
	}
	j.run.Subscribe(j.capture)
	return j
}

// ID returns the job's record id ("j00000042").
func (j *Job) ID() string { return j.id }

// Corr returns the correlation ID of the creating request.
func (j *Job) Corr() string { return j.corr }

// Done returns the channel closed once the job record is final.
func (j *Job) Done() <-chan struct{} { return j.done }

// capture receives one obs event under the collector lock: append to the
// bounded replay buffer and fan out non-blocking (slow readers drop events
// rather than stalling the solvers).
func (j *Job) capture(e obs.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.events) < maxJobEvents {
		j.events = append(j.events, e)
	}
	for _, ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// Subscribe returns a copy of the event history plus a channel carrying
// subsequent events, and a cancel function. The copy and the registration
// happen atomically, so no event is missed or duplicated at the boundary.
func (j *Job) Subscribe(buf int) (history []obs.Event, ch chan obs.Event, cancel func()) {
	ch = make(chan obs.Event, buf)
	j.mu.Lock()
	history = append([]obs.Event(nil), j.events...)
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	return history, ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = stateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// complete records a single-job outcome. Cancellation (drain or job
// timeout) is distinguished from failure so clients can tell a partial
// contour from a broken setup.
func (j *Job) complete(res *latchchar.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.result, j.err = res, err
	switch {
	case err == nil:
		j.state = stateDone
	case errors.Is(err, latchchar.ErrCanceled):
		j.state = stateCanceled
	default:
		j.state = stateFailed
	}
}

// completeMC records a Monte-Carlo outcome. The nominal result doubles as
// the partial-contour carrier so cancellation renders the same way as for
// single jobs.
func (j *Job) completeMC(mc *latchchar.MCResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.mcRes, j.err = mc, err
	if mc != nil {
		j.result = mc.Nominal
	}
	switch {
	case err == nil:
		j.state = stateDone
	case errors.Is(err, latchchar.ErrCanceled):
		j.state = stateCanceled
	default:
		j.state = stateFailed
	}
}

// completeBatch records a batch outcome; the job fails only if every item
// failed.
func (j *Job) completeBatch(res []latchchar.JobResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.batchRes = res
	j.state = stateDone
	allFailed := len(res) > 0
	for _, r := range res {
		if r.Err == nil {
			allFailed = false
			break
		}
	}
	if allFailed {
		j.state = stateFailed
		j.err = errors.Join(func() []error {
			errs := make([]error, 0, len(res))
			for _, r := range res {
				errs = append(errs, r.Err)
			}
			return errs
		}()...)
	}
}

// Status snapshots the job as its wire representation.
func (j *Job) Status() serveclient.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := serveclient.JobStatus{
		ID:        j.id,
		State:     j.state,
		Corr:      j.corr,
		Coalesced: j.coalesced,
	}
	if !j.started.IsZero() {
		st.QueuedMS = DurMS(j.started.Sub(j.created))
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = DurMS(end.Sub(j.started))
	}
	if j.err != nil {
		st.Error = j.err.Error()
		var ce *latchchar.CanceledError
		if errors.As(j.err, &ce) && j.result != nil && j.result.Contour != nil && len(j.result.Contour.Points) > 0 {
			st.Partial = true
		}
	}
	if j.batch != nil {
		st.Results = make([]serveclient.BatchItemJSON, len(j.batchRes))
		for i, r := range j.batchRes {
			item := serveclient.BatchItemJSON{
				Name:              r.Name,
				Index:             r.Index,
				WarmStarted:       r.WarmStarted,
				CalibrationReused: r.CalibrationReused,
				Result:            RenderResult(r.Name, r.Result),
			}
			if r.Err != nil {
				item.Error = r.Err.Error()
			}
			st.Results[i] = item
		}
		return st
	}
	if j.result != nil && (j.err == nil || st.Partial) {
		name := ""
		if j.cell != nil {
			name = j.cell.Name
		}
		if j.mcRes != nil {
			st.Result = RenderMCResult(name, j.mcRes)
		} else {
			st.Result = RenderResult(name, j.result)
		}
	}
	return st
}
