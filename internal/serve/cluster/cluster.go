package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"latchchar/internal/serve"
	"latchchar/internal/serve/jobcore"
	"latchchar/serveclient"
)

// Config configures a Coordinator.
type Config struct {
	// Workers are the worker daemon addresses ("host:port" or full base
	// URLs). Required, at least one.
	Workers []string
	// HealthInterval is the /v1/statusz poll cadence (default 2s).
	HealthInterval time.Duration
	// FailureThreshold is how many consecutive poll failures mark a worker
	// down (default 2). A failed forward demotes immediately.
	FailureThreshold int
	// MaxInFlight bounds concurrently forwarded requests per worker
	// (default 32); excess submissions queue on the semaphore, bounded by
	// the caller's context.
	MaxInFlight int
	// ForwardRetries is the maximum number of distinct workers tried per
	// forward, the ring owner included (default 3).
	ForwardRetries int
	// RetryBackoff is the base sleep before each retry hop, doubling per
	// attempt (default 100ms).
	RetryBackoff time.Duration
	// Replicas is the virtual-node count per worker on the hash ring
	// (default 512). Keyspace share per worker concentrates as
	// 1/sqrt(2·Replicas): 64 vnodes leaves an ~9% share stddev — 60/40
	// splits at two workers are then routine and cap fleet throughput at
	// capacity/max_share — while 512 brings it to ~3%. Ring rebuilds sort
	// members·Replicas entries, so even 512 is microseconds at realistic
	// fleet sizes.
	Replicas int
	// RetryAfter is the backpressure hint on coordinator 503s (default 2s).
	RetryAfter time.Duration
	// MaxJobs bounds retained forwarded-job records (default 4096).
	MaxJobs int
	// Logf logs coordinator events (default log.Printf).
	Logf func(format string, args ...any)
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
	// HTTPClient overrides the client used for worker calls (tests).
	HTTPClient *http.Client
}

// Validate checks the numeric knobs; New calls it after defaulting, so only
// explicitly negative/nonsensical values fail.
func (c *Config) Validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("cluster: Config.Workers must name at least one worker")
	}
	if c.FailureThreshold < 1 {
		return fmt.Errorf("cluster: FailureThreshold must be >= 1 (got %d)", c.FailureThreshold)
	}
	if c.MaxInFlight < 1 {
		return fmt.Errorf("cluster: MaxInFlight must be >= 1 (got %d)", c.MaxInFlight)
	}
	if c.ForwardRetries < 1 {
		return fmt.Errorf("cluster: ForwardRetries must be >= 1 (got %d)", c.ForwardRetries)
	}
	if c.Replicas < 1 {
		return fmt.Errorf("cluster: Replicas must be >= 1 (got %d)", c.Replicas)
	}
	if c.MaxJobs < 1 {
		return fmt.Errorf("cluster: MaxJobs must be >= 1 (got %d)", c.MaxJobs)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 2
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 32
	}
	if c.ForwardRetries == 0 {
		c.ForwardRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.Replicas == 0 {
		c.Replicas = 512
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 4096
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// counters are the coordinator-level atomics behind /v1/metrics and
// /v1/statusz; the exposition maps them onto the obs cluster counter
// vocabulary.
type counters struct {
	requests        atomic.Int64
	forwards        atomic.Int64
	forwardRetries  atomic.Int64
	forwardFailures atomic.Int64
	rehashes        atomic.Int64
	streamEvents    atomic.Int64
}

// Coordinator fronts a fleet of worker daemons. Construct with New; it
// implements http.Handler. Stop with Drain and/or Close.
type Coordinator struct {
	cfg     Config
	rt      *serve.Router
	started time.Time
	stop    chan struct{}
	wg      sync.WaitGroup
	met     counters

	mu       sync.Mutex
	draining bool
	workers  map[string]*worker // by address
	ring     *ring
	nextID   uint64
	jobs     map[string]*record
	order    []string
}

// New builds a coordinator and starts its health loop. The initial ring
// holds every configured worker — jobs can be forwarded before the first
// poll round completes; a dead worker costs one retry hop until the poll
// notices it.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:     cfg,
		rt:      serve.NewRouter(cfg.Logger),
		started: time.Now(),
		stop:    make(chan struct{}),
		workers: make(map[string]*worker),
		jobs:    make(map[string]*record),
	}
	addrs := make([]string, 0, len(cfg.Workers))
	for _, a := range cfg.Workers {
		w := newWorker(a, cfg)
		if _, dup := co.workers[w.addr]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker %s", w.addr)
		}
		co.workers[w.addr] = w
		addrs = append(addrs, w.addr)
	}
	co.ring = buildRing(addrs, cfg.Replicas)

	co.rt.Handle("POST /v1/characterize", "/v1/characterize", co.handleCharacterize)
	co.rt.Handle("POST /v1/batch", "/v1/batch", co.handleBatch)
	co.rt.Handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", co.handleJob)
	co.rt.Handle("GET /v1/jobs/{id}/events", "/v1/jobs/{id}/events", co.handleJobEvents)
	co.rt.Handle("GET /v1/healthz", "/v1/healthz", co.handleHealthz)
	co.rt.Handle("GET /v1/metrics", "/v1/metrics", co.handleMetrics)
	co.rt.Handle("GET /v1/statusz", "/v1/statusz", co.handleStatusz)
	co.rt.Redirect("/healthz", "/v1/healthz")
	co.rt.Redirect("/metrics", "/v1/metrics")
	co.rt.Redirect("/statusz", "/v1/statusz")
	co.rt.HandleRaw("GET /debug/pprof/", pprof.Index)

	co.wg.Add(1)
	go co.healthLoop()
	return co, nil
}

// ServeHTTP implements http.Handler.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { co.rt.ServeHTTP(w, r) }

// Draining reports whether the coordinator has stopped accepting work.
func (co *Coordinator) Draining() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.draining
}

// Drain stops accepting new work and waits for in-flight forwards and the
// health loop to wind down, or for ctx to expire. Idempotent. Forwarded
// jobs keep running on their workers either way — the workers drain
// themselves.
func (co *Coordinator) Drain(ctx context.Context) error {
	co.mu.Lock()
	if !co.draining {
		co.draining = true
		close(co.stop)
	}
	co.mu.Unlock()
	done := make(chan struct{})
	go func() {
		co.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is a drain whose deadline already passed.
func (co *Coordinator) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = co.Drain(ctx)
}

// --- HTTP handlers ---

const maxBodyBytes = 8 << 20

func (co *Coordinator) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	co.met.requests.Add(1)
	if co.Draining() {
		co.rejectDraining(w, r)
		return
	}
	var req serveclient.CharacterizeRequest
	if !co.decode(w, r, &req) {
		return
	}
	// Resolve locally before forwarding: invalid requests fail fast at the
	// edge, and the key must be derived from the resolved cell exactly as
	// the worker derives it.
	cell, _, key, err := jobcore.Resolve(&req)
	if err != nil {
		serve.WriteError(w, r, http.StatusBadRequest, serveclient.CodeInvalidRequest, err.Error())
		return
	}
	_ = cell
	st, addr, err := co.forwardCharacterize(r, &req, key)
	if err != nil {
		co.writeForwardError(w, r, err)
		return
	}
	rec := co.newRecord(ref{addr: addr, remoteID: st.ID})
	code := http.StatusAccepted
	if st.Terminal() || st.Cached {
		code = http.StatusOK
		rec.markFinished()
		if st.State == serveclient.StateFailed {
			code = http.StatusInternalServerError
		}
	} else {
		w.Header().Set("Location", "/v1/jobs/"+rec.id)
	}
	out := *st
	out.ID = rec.id
	co.json(w, code, out)
}

func (co *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	co.met.requests.Add(1)
	if co.Draining() {
		co.rejectDraining(w, r)
		return
	}
	var req serveclient.BatchRequest
	if !co.decode(w, r, &req) {
		return
	}
	_, keys, err := jobcore.ResolveBatch(&req)
	if err != nil {
		serve.WriteError(w, r, http.StatusBadRequest, serveclient.CodeInvalidRequest, err.Error())
		return
	}
	st, refs, err := co.forwardBatch(r, &req, keys)
	if err != nil {
		co.writeForwardError(w, r, err)
		return
	}
	rec := co.newRecord(refs...)
	code := http.StatusAccepted
	if st.Terminal() {
		code = http.StatusOK
		rec.markFinished()
		if st.State == serveclient.StateFailed {
			code = http.StatusInternalServerError
		}
	} else {
		w.Header().Set("Location", "/v1/jobs/"+rec.id)
	}
	st.ID = rec.id
	co.json(w, code, st)
}

func (co *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	rec := co.lookup(r.PathValue("id"))
	if rec == nil {
		serve.WriteError(w, r, http.StatusNotFound, serveclient.CodeNotFound,
			fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	st := co.mergedStatus(r.Context(), rec)
	if st.Terminal() {
		rec.markFinished()
	}
	co.json(w, http.StatusOK, st)
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if co.Draining() {
		serve.SetRetryAfter(w, co.cfg.RetryAfter)
		serve.WriteError(w, r, http.StatusServiceUnavailable, serveclient.CodeDraining, "coordinator is draining")
		return
	}
	if co.upWorkers() == 0 {
		serve.SetRetryAfter(w, co.cfg.RetryAfter)
		serve.WriteError(w, r, http.StatusServiceUnavailable, serveclient.CodeUpstreamUnavailable,
			"no workers available")
		return
	}
	co.json(w, http.StatusOK, serveclient.HealthStatus{Status: "ok"})
}

// --- helpers ---

func (co *Coordinator) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		serve.WriteError(w, r, http.StatusBadRequest, serveclient.CodeInvalidRequest,
			fmt.Sprintf("decoding request: %v", err))
		return false
	}
	return true
}

func (co *Coordinator) rejectDraining(w http.ResponseWriter, r *http.Request) {
	serve.SetRetryAfter(w, co.cfg.RetryAfter)
	serve.WriteError(w, r, http.StatusServiceUnavailable, serveclient.CodeDraining, "coordinator is draining")
}

func (co *Coordinator) json(w http.ResponseWriter, code int, v any) {
	if err := serve.WriteJSON(w, code, v); err != nil {
		co.cfg.Logf("cluster: writing response: %v", err)
	}
}

func (co *Coordinator) upWorkers() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	n := 0
	for _, w := range co.workers {
		if w.currentState() == serveclient.WorkerUp {
			n++
		}
	}
	return n
}
