package cluster

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"

	"latchchar/internal/serve"
	"latchchar/serveclient"
)

// Worker health tracking. The coordinator polls every worker's /v1/statusz
// on HealthInterval; a draining or dead worker leaves the ring (its keyspace
// re-hashes onto the survivors) and rejoins automatically when polls succeed
// again. Forward failures demote immediately instead of waiting out the poll
// cadence, so one request pays the discovery cost, not every request for the
// next interval.

// worker is the coordinator's view of one worker daemon.
type worker struct {
	addr   string // as configured; the ring identity
	client *serveclient.Client
	sem    chan struct{} // bounded in-flight forwards

	mu         sync.Mutex
	state      string // serveclient.WorkerUp / WorkerDraining / WorkerDown
	fails      int    // consecutive poll failures
	lastPoll   time.Time
	lastStatus *serveclient.StatusZ
}

func newWorker(addr string, cfg Config) *worker {
	opts := []serveclient.Option{}
	if cfg.HTTPClient != nil {
		opts = append(opts, serveclient.WithHTTPClient(cfg.HTTPClient))
	}
	return &worker{
		addr:   strings.TrimSpace(addr),
		client: serveclient.New(strings.TrimSpace(addr), opts...),
		sem:    make(chan struct{}, cfg.MaxInFlight),
		// Optimistic until the first poll: jobs can forward immediately
		// after boot; a genuinely dead worker costs one retry hop.
		state: serveclient.WorkerUp,
	}
}

func (w *worker) currentState() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// acquire takes an in-flight slot, honoring ctx while waiting.
func (w *worker) acquire(ctx context.Context) (release func(), err error) {
	select {
	case w.sem <- struct{}{}:
		return func() { <-w.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (w *worker) inFlight() int { return len(w.sem) }

// pollOK records a successful statusz poll.
func (w *worker) pollOK(st *serveclient.StatusZ) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails = 0
	w.lastPoll = time.Now()
	w.lastStatus = st
	if st.Draining {
		w.state = serveclient.WorkerDraining
	} else {
		w.state = serveclient.WorkerUp
	}
}

// pollFailed records a failed poll; past threshold the worker is down.
func (w *worker) pollFailed(threshold int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails++
	if w.fails >= threshold {
		w.state = serveclient.WorkerDown
	}
}

// markDown demotes immediately (forward failure: no reason to route more
// traffic at a socket that just refused one).
func (w *worker) markDown(threshold int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails = threshold
	w.state = serveclient.WorkerDown
}

// snapshot renders the worker's health entry for ClusterStatusZ.
func (w *worker) snapshot(now time.Time) serveclient.WorkerStatusZ {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := serveclient.WorkerStatusZ{
		Addr:                w.addr,
		State:               w.state,
		ConsecutiveFailures: w.fails,
		InFlight:            w.inFlight(),
		StatusZ:             w.lastStatus,
	}
	if !w.lastPoll.IsZero() {
		st.LastPollMS = float64(now.Sub(w.lastPoll)) / float64(time.Millisecond)
	}
	return st
}

// healthLoop polls the fleet until Drain closes stop.
func (co *Coordinator) healthLoop() {
	defer co.wg.Done()
	co.pollAll() // first round immediately, not an interval later
	t := time.NewTicker(co.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			co.pollAll()
		case <-co.stop:
			return
		}
	}
}

// pollAll polls every worker concurrently, then reconciles the ring.
func (co *Coordinator) pollAll() {
	co.mu.Lock()
	ws := make([]*worker, 0, len(co.workers))
	for _, w := range co.workers {
		ws = append(ws, w)
	}
	co.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), co.cfg.HealthInterval)
			defer cancel()
			st, err := w.client.Statusz(ctx)
			if err != nil {
				w.pollFailed(co.cfg.FailureThreshold)
				return
			}
			w.pollOK(st)
		}(w)
	}
	wg.Wait()
	co.rebuildRing()
}

// rebuildRing recomputes the ring from the up workers when membership
// changed, counting a rehash. Draining and down workers leave the ring;
// their keyspace re-hashes onto the survivors, and in-flight jobs they
// already own are untouched (workers drain gracefully themselves).
func (co *Coordinator) rebuildRing() {
	co.mu.Lock()
	up := make([]string, 0, len(co.workers))
	for addr, w := range co.workers {
		if w.currentState() == serveclient.WorkerUp {
			up = append(up, addr)
		}
	}
	changed := !co.ring.sameMembers(up)
	if changed {
		co.ring = buildRing(up, co.cfg.Replicas)
	}
	co.mu.Unlock()
	if changed {
		co.met.rehashes.Add(1)
		co.cfg.Logger.Info("ring rebuilt", "members", len(up))
	}
}

// workerByAddr returns the tracked worker, nil for unknown addresses.
func (co *Coordinator) workerByAddr(addr string) *worker {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.workers[addr]
}

// outgoingCtx derives the context for worker calls from an incoming
// request: the caller's cancellation, plus trace/correlation propagation so
// the worker's logs and obs events join the same trace.
func (co *Coordinator) outgoingCtx(r *http.Request) context.Context {
	ctx := r.Context()
	corr := serve.ReqCorr(r)
	if corr == "" {
		return ctx
	}
	if tp := serve.OutgoingTraceparent(corr); tp != "" {
		return serveclient.WithTraceparent(ctx, tp)
	}
	return serveclient.WithCorrelationID(ctx, corr)
}
