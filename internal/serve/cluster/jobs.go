package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"latchchar/internal/serve"
	"latchchar/serveclient"
)

// Forwarded-job records. The coordinator issues its own job IDs ("c%08d")
// and maps each onto the worker-side job(s) behind it: one ref for a single
// characterization, one per partition for a batch. Polls and event streams
// fan back out through the refs.

// ref points at one worker-side job and the original request indices it
// covers (nil for single jobs).
type ref struct {
	addr     string
	remoteID string
	indices  []int
}

// record is one coordinator-issued job.
type record struct {
	id   string
	refs []ref

	mu       sync.Mutex
	finished bool
}

func (rec *record) markFinished() {
	rec.mu.Lock()
	rec.finished = true
	rec.mu.Unlock()
}

func (rec *record) isFinished() bool {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.finished
}

// newRecord registers a forwarded job under a fresh coordinator ID, evicting
// the oldest finished records past MaxJobs. Unfinished records are never
// evicted — a slow poller must not lose the mapping to a still-running job.
func (co *Coordinator) newRecord(refs ...ref) *record {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.nextID++
	rec := &record{id: fmt.Sprintf("c%08d", co.nextID), refs: refs}
	co.jobs[rec.id] = rec
	co.order = append(co.order, rec.id)
	for len(co.jobs) > co.cfg.MaxJobs {
		evicted := false
		for i, id := range co.order {
			if old := co.jobs[id]; old != nil && old.isFinished() {
				delete(co.jobs, id)
				co.order = append(co.order[:i], co.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	return rec
}

func (co *Coordinator) lookup(id string) *record {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.jobs[id]
}

// trackedJobs reports the record count for statusz.
func (co *Coordinator) trackedJobs() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.jobs)
}

// mergedStatus polls every ref and merges the answers under the
// coordinator's job ID. An unreachable worker renders its portion failed —
// the caller can retry the poll; the record keeps the mapping.
func (co *Coordinator) mergedStatus(ctx context.Context, rec *record) *serveclient.JobStatus {
	if len(rec.refs) == 1 && rec.refs[0].indices == nil {
		r := rec.refs[0]
		st, err := co.refStatus(ctx, r)
		if err != nil {
			st = &serveclient.JobStatus{State: serveclient.StateFailed, Error: err.Error()}
		}
		st.ID = rec.id
		return st
	}

	merged := &serveclient.JobStatus{ID: rec.id, State: serveclient.StateDone}
	allFailed := len(rec.refs) > 0
	for _, r := range rec.refs {
		st, err := co.refStatus(ctx, r)
		if err != nil {
			if merged.Error == "" {
				merged.Error = err.Error()
			}
			merged.State = serveclient.StateFailed
			continue
		}
		merged.Coalesced += st.Coalesced
		if !st.Terminal() {
			if merged.State != serveclient.StateFailed {
				merged.State = st.State
			}
			allFailed = false
			continue
		}
		if st.State != serveclient.StateFailed {
			allFailed = false
		}
		mergeBatchResults(merged, st, r.indices)
	}
	if allFailed {
		merged.State = serveclient.StateFailed
		if merged.Error == "" {
			merged.Error = "all batch partitions failed"
		}
	}
	return merged
}

func (co *Coordinator) refStatus(ctx context.Context, r ref) (*serveclient.JobStatus, error) {
	w := co.workerByAddr(r.addr)
	if w == nil {
		return nil, fmt.Errorf("worker %s no longer configured", r.addr)
	}
	return w.client.Job(ctx, r.remoteID)
}

// handleJobEvents proxies the NDJSON event streams of every ref behind a
// coordinator job onto one response. Pumps run concurrently under a shared
// write lock; a slow coordinator-side reader back-pressures the pumps (the
// workers' own non-blocking fan-out keeps their solvers unaffected).
func (co *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	rec := co.lookup(r.PathValue("id"))
	if rec == nil {
		serve.WriteError(w, r, http.StatusNotFound, serveclient.CodeNotFound,
			fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, _ := w.(http.Flusher)
	ctx := co.outgoingCtx(r)

	// Open every upstream stream before committing the response status so a
	// fully unreachable job can still 404/503 cleanly.
	streams := make([]*serveclient.EventStream, 0, len(rec.refs))
	var openErr error
	for _, ref := range rec.refs {
		wk := co.workerByAddr(ref.addr)
		if wk == nil {
			openErr = fmt.Errorf("worker %s no longer configured", ref.addr)
			continue
		}
		es, err := wk.client.Stream(ctx, ref.remoteID)
		if err != nil {
			openErr = err
			continue
		}
		streams = append(streams, es)
	}
	if len(streams) == 0 {
		co.writeForwardError(w, r, &upstreamError{tried: len(rec.refs), last: openErr})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	var wmu sync.Mutex
	var wg sync.WaitGroup
	for _, es := range streams {
		wg.Add(1)
		go func(es *serveclient.EventStream) {
			defer wg.Done()
			defer es.Close()
			for {
				line, ok := es.Next()
				if !ok {
					return
				}
				wmu.Lock()
				_, werr := w.Write(append(line, '\n'))
				if werr == nil && flusher != nil {
					flusher.Flush()
				}
				wmu.Unlock()
				if werr != nil {
					return
				}
				co.met.streamEvents.Add(1)
			}
		}(es)
	}
	wg.Wait()
}

// writeForwardError renders a forwarding failure: worker API errors pass
// through with their original status, code, and Retry-After; exhausted-ring
// errors become 503 upstream_unavailable with a Retry-After hint.
func (co *Coordinator) writeForwardError(w http.ResponseWriter, r *http.Request, err error) {
	var apiErr *serveclient.APIError
	if errors.As(err, &apiErr) {
		if apiErr.RetryAfter > 0 {
			serve.SetRetryAfter(w, apiErr.RetryAfter)
		} else if apiErr.Temporary() {
			serve.SetRetryAfter(w, co.cfg.RetryAfter)
		}
		code := apiErr.Code
		if code == "" {
			code = serveclient.CodeInternal
		}
		serve.WriteError(w, r, apiErr.StatusCode, code, apiErr.Message)
		return
	}
	var upErr *upstreamError
	if errors.As(err, &upErr) {
		serve.SetRetryAfter(w, co.cfg.RetryAfter)
		serve.WriteError(w, r, http.StatusServiceUnavailable, serveclient.CodeUpstreamUnavailable, upErr.Error())
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Client went away mid-forward; nothing useful to write.
		serve.WriteError(w, r, 499, serveclient.CodeInternal, err.Error())
		return
	}
	serve.WriteError(w, r, http.StatusBadGateway, serveclient.CodeUpstreamUnavailable, err.Error())
}
