// Package cluster is the latchchard coordinator: it partitions the
// characterization keyspace across N worker daemons with a consistent-hash
// ring over the sha256 coalescing key, forwards jobs with bounded per-worker
// in-flight limits and retry-with-backoff, proxies NDJSON event streams,
// tracks worker health from periodic /v1/statusz polls (re-hashing the ring
// on drain or death), and aggregates fleet metrics and status. It speaks to
// workers exclusively through the public serveclient API — the same door
// every external client uses.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is an immutable consistent-hash ring over worker addresses. Each
// member contributes Replicas virtual nodes, hashed by fnv64a over
// "addr#i"; a key routes to the first vnode clockwise of its own hash.
// Construction sorts members first, so the ring — and therefore every key's
// placement — is a pure function of the membership set: the same key lands
// on the same worker across coordinator restarts and across coordinators,
// which is what makes coalescing and result caching work cluster-wide.
type ring struct {
	vnodes []vnode
	addrs  []string // sorted distinct members
}

type vnode struct {
	hash uint64
	addr string
}

// buildRing constructs the ring for a member set. An empty set yields an
// empty ring (lookups return "").
func buildRing(addrs []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = 512
	}
	members := append([]string(nil), addrs...)
	sort.Strings(members)
	r := &ring{addrs: members}
	for _, a := range members {
		for i := 0; i < replicas; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(a + "#" + strconv.Itoa(i)), addr: a})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		// Hash ties (vanishingly rare) break by address so placement stays
		// deterministic regardless of input order.
		return r.vnodes[i].addr < r.vnodes[j].addr
	})
	return r
}

// hash64 is fnv64a with a murmur-style 64-bit finalizer. Raw FNV-1a has
// weak high-bit avalanche for strings that share a long prefix and differ
// only in a short tail — exactly the "addr#i" vnode names — which clusters a
// member's vnodes and skews keyspace shares as far as 70/30. The finalizer
// decorrelates the positions; determinism is untouched.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// slots returns the virtual-node count.
func (r *ring) slots() int { return len(r.vnodes) }

// members returns the sorted member set.
func (r *ring) members() []string { return r.addrs }

// lookup returns the worker owning key, "" on an empty ring.
func (r *ring) lookup(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	h := hash64(key)
	idx := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if idx == len(r.vnodes) {
		idx = 0
	}
	return r.vnodes[idx].addr
}

// sequence returns every member in ring order starting at key's owner: the
// retry order for a failed forward (distinct workers, owner first).
func (r *ring) sequence(key string) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	h := hash64(key)
	idx := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if idx == len(r.vnodes) {
		idx = 0
	}
	seen := make(map[string]bool, len(r.addrs))
	out := make([]string, 0, len(r.addrs))
	for i := 0; i < len(r.vnodes) && len(out) < len(r.addrs); i++ {
		a := r.vnodes[(idx+i)%len(r.vnodes)].addr
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// sameMembers reports whether the ring's membership equals addrs (sorted
// comparison).
func (r *ring) sameMembers(addrs []string) bool {
	if len(addrs) != len(r.addrs) {
		return false
	}
	sorted := append([]string(nil), addrs...)
	sort.Strings(sorted)
	for i, a := range sorted {
		if r.addrs[i] != a {
			return false
		}
	}
	return true
}
