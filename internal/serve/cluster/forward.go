package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"latchchar/serveclient"
)

// Forwarding: a job's coalescing key picks its owner on the hash ring; on a
// temporary rejection (429/503) or a transport failure the coordinator walks
// the ring to the next distinct worker, backing off exponentially, up to
// ForwardRetries workers. Transport failures demote the worker immediately
// and rebuild the ring. Non-temporary API errors (bad request, unknown job)
// pass through untouched — retrying a 400 on another worker only burns
// capacity on the same answer.

// upstreamError means every eligible worker was tried and none accepted the
// job. It renders as 503 upstream_unavailable.
type upstreamError struct {
	tried int
	last  error
}

func (e *upstreamError) Error() string {
	if e.last == nil {
		return fmt.Sprintf("no worker accepted the job (%d tried)", e.tried)
	}
	return fmt.Sprintf("no worker accepted the job (%d tried): %v", e.tried, e.last)
}

func (e *upstreamError) Unwrap() error { return e.last }

// forward routes one call along key's ring sequence. It returns the worker
// address that served the call so the job record can point polls and stream
// proxies at the right daemon.
func (co *Coordinator) forward(ctx context.Context, key string,
	call func(ctx context.Context, w *worker) (*serveclient.JobStatus, error)) (*serveclient.JobStatus, string, error) {

	co.mu.Lock()
	seq := co.ring.sequence(key)
	co.mu.Unlock()

	tried := 0
	var last error
	for _, addr := range seq {
		if tried >= co.cfg.ForwardRetries {
			break
		}
		w := co.workerByAddr(addr)
		if w == nil || w.currentState() == serveclient.WorkerDown {
			continue
		}
		if tried > 0 {
			co.met.forwardRetries.Add(1)
			backoff := co.cfg.RetryBackoff << (tried - 1)
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, "", ctx.Err()
			}
		}
		tried++
		release, err := w.acquire(ctx)
		if err != nil {
			return nil, "", err
		}
		co.met.forwards.Add(1)
		st, err := call(ctx, w)
		release()
		if err == nil {
			return st, addr, nil
		}
		last = err
		var apiErr *serveclient.APIError
		switch {
		case errors.As(err, &apiErr):
			if !apiErr.Temporary() {
				// Deterministic rejection: same outcome everywhere.
				return nil, "", err
			}
			// Backpressure (queue full, draining): the next worker in ring
			// order may have room.
		case ctx.Err() != nil:
			return nil, "", ctx.Err()
		default:
			// Transport failure — the worker is unreachable. Demote now so
			// subsequent requests skip it instead of each paying a timeout.
			w.markDown(co.cfg.FailureThreshold)
			co.rebuildRing()
		}
	}
	co.met.forwardFailures.Add(1)
	return nil, "", &upstreamError{tried: tried, last: last}
}

// forwardCharacterize routes a single characterization to its key's owner.
func (co *Coordinator) forwardCharacterize(r *http.Request, req *serveclient.CharacterizeRequest, key string) (*serveclient.JobStatus, string, error) {
	ctx := co.outgoingCtx(r)
	return co.forward(ctx, key, func(ctx context.Context, w *worker) (*serveclient.JobStatus, error) {
		return w.client.Characterize(ctx, req)
	})
}

// forwardBatch partitions a batch by each item's coalescing key, forwards
// one sub-batch per owning worker concurrently, and merges the results back
// into request order. Items that hash to the same worker stay in one
// sub-batch so the worker's warm-start ordering still applies within the
// partition.
func (co *Coordinator) forwardBatch(r *http.Request, req *serveclient.BatchRequest, keys []string) (*serveclient.JobStatus, []ref, error) {
	ctx := co.outgoingCtx(r)

	co.mu.Lock()
	ringSnap := co.ring
	co.mu.Unlock()
	if len(ringSnap.members()) == 0 {
		co.met.forwardFailures.Add(1)
		return nil, nil, &upstreamError{}
	}

	// Group original item indices by owning worker, deterministically ordered
	// by address so refs and merge order are stable.
	groups := make(map[string][]int)
	for i, key := range keys {
		addr := ringSnap.lookup(key)
		groups[addr] = append(groups[addr], i)
	}
	addrs := make([]string, 0, len(groups))
	for a := range groups {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)

	type groupResult struct {
		addr    string
		indices []int
		st      *serveclient.JobStatus
		err     error
	}
	results := make([]groupResult, len(addrs))
	var wg sync.WaitGroup
	for gi, addr := range addrs {
		indices := groups[addr]
		sub := &serveclient.BatchRequest{Wait: req.Wait, Jobs: make([]serveclient.BatchJobRequest, 0, len(indices))}
		for _, i := range indices {
			sub.Jobs = append(sub.Jobs, req.Jobs[i])
		}
		wg.Add(1)
		go func(gi int, addr string, indices []int, sub *serveclient.BatchRequest) {
			defer wg.Done()
			// Retry within the group's own ring sequence; the group key is
			// any member's key — they all share the same owner.
			st, servedBy, err := co.forward(ctx, keys[indices[0]], func(ctx context.Context, w *worker) (*serveclient.JobStatus, error) {
				return w.client.Batch(ctx, sub)
			})
			results[gi] = groupResult{addr: servedBy, indices: indices, st: st, err: err}
		}(gi, addr, indices, sub)
	}
	wg.Wait()

	merged := &serveclient.JobStatus{State: serveclient.StateDone}
	refs := make([]ref, 0, len(results))
	allTerminal := true
	allFailed := true
	var firstErr error
	for _, g := range results {
		if g.err != nil {
			if firstErr == nil {
				firstErr = g.err
			}
			continue
		}
		refs = append(refs, ref{addr: g.addr, remoteID: g.st.ID, indices: g.indices})
		merged.Coalesced += g.st.Coalesced
		if !g.st.Terminal() {
			allTerminal = false
			continue
		}
		if g.st.State != serveclient.StateFailed {
			allFailed = false
		}
		mergeBatchResults(merged, g.st, g.indices)
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	switch {
	case !allTerminal:
		merged.State = serveclient.StateQueued
		merged.Results = nil
	case allFailed:
		merged.State = serveclient.StateFailed
		if merged.Error == "" {
			merged.Error = "all batch partitions failed"
		}
	}
	return merged, refs, nil
}

// mergeBatchResults copies one partition's per-item outcomes into the merged
// status, translating partition-local indices back to request order.
func mergeBatchResults(merged, part *serveclient.JobStatus, indices []int) {
	if part.Error != "" {
		if merged.Error == "" {
			merged.Error = part.Error
		} else {
			merged.Error += "; " + part.Error
		}
	}
	for _, item := range part.Results {
		if item.Index >= 0 && item.Index < len(indices) {
			item.Index = indices[item.Index]
		}
		merged.Results = append(merged.Results, item)
	}
	sort.Slice(merged.Results, func(i, j int) bool {
		return merged.Results[i].Index < merged.Results[j].Index
	})
}
