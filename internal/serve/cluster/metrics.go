package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"latchchar/internal/serve/jobcore"
	"latchchar/serveclient"
)

// Fleet observability: /v1/statusz renders the ring, per-worker health, and
// an aggregate of the latest poll snapshots; /v1/metrics exposes the
// coordinator's own counters (latchcoord_*) plus the same fleet aggregate so
// one scrape of the coordinator answers "what is the cluster doing".

func (co *Coordinator) handleStatusz(w http.ResponseWriter, r *http.Request) {
	co.json(w, http.StatusOK, co.clusterStatus(time.Now()))
}

func (co *Coordinator) clusterStatus(now time.Time) serveclient.ClusterStatusZ {
	co.mu.Lock()
	ws := make([]*worker, 0, len(co.workers))
	for _, wk := range co.workers {
		ws = append(ws, wk)
	}
	ringSlots := co.ring.slots()
	draining := co.draining
	co.mu.Unlock()

	st := serveclient.ClusterStatusZ{
		UptimeMS: jobcore.DurMS(now.Sub(co.started)),
		Draining: draining,

		WorkersConfigured: len(ws),
		RingSlots:         ringSlots,
		TrackedJobs:       co.trackedJobs(),

		Requests:        co.met.requests.Load(),
		Forwards:        co.met.forwards.Load(),
		ForwardRetries:  co.met.forwardRetries.Load(),
		ForwardFailures: co.met.forwardFailures.Load(),
		Rehashes:        co.met.rehashes.Load(),
		StreamEvents:    co.met.streamEvents.Load(),

		Latency: co.rt.Latency().WindowQuantiles(now),
	}
	for _, wk := range ws {
		snap := wk.snapshot(now)
		st.WorkerList = append(st.WorkerList, snap)
		switch snap.State {
		case serveclient.WorkerUp:
			st.WorkersUp++
		case serveclient.WorkerDraining:
			st.WorkersDraining++
		default:
			st.WorkersDown++
		}
		if snap.State != serveclient.WorkerDown && snap.StatusZ != nil {
			agg := &st.Aggregate
			agg.QueueDepth += snap.StatusZ.QueueDepth
			agg.InflightKeys += snap.StatusZ.InflightKeys
			agg.Requests += snap.StatusZ.Requests
			agg.JobsDone += snap.StatusZ.JobsDone
			agg.JobsFailed += snap.StatusZ.JobsFailed
			agg.JobsCanceled += snap.StatusZ.JobsCanceled
			agg.Coalesced += snap.StatusZ.Coalesced
			agg.ResultCacheHits += snap.StatusZ.ResultCacheHits
		}
	}
	sort.Slice(st.WorkerList, func(i, j int) bool { return st.WorkerList[i].Addr < st.WorkerList[j].Addr })
	return st
}

func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	co.writeMetrics(w)
}

func (co *Coordinator) writeMetrics(w io.Writer) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	counter("latchcoord_requests_total", "Characterize and batch requests received by the coordinator.",
		float64(co.met.requests.Load()))
	counter("latchcoord_forwards_total", "Job forwards attempted against workers.",
		float64(co.met.forwards.Load()))
	counter("latchcoord_forward_retries_total", "Forward attempts beyond a key's ring owner.",
		float64(co.met.forwardRetries.Load()))
	counter("latchcoord_forward_failures_total", "Forwards that exhausted the retry budget.",
		float64(co.met.forwardFailures.Load()))
	counter("latchcoord_rehashes_total", "Ring rebuilds after membership changes.",
		float64(co.met.rehashes.Load()))
	counter("latchcoord_stream_events_total", "NDJSON events proxied to stream subscribers.",
		float64(co.met.streamEvents.Load()))

	st := co.clusterStatus(time.Now())
	drainVal := 0.0
	if st.Draining {
		drainVal = 1
	}
	gauge("latchcoord_draining", "1 while the coordinator refuses new work.", drainVal)
	gauge("latchcoord_workers_configured", "Configured worker count.", float64(st.WorkersConfigured))
	gauge("latchcoord_workers_up", "Workers currently accepting jobs.", float64(st.WorkersUp))
	gauge("latchcoord_workers_draining", "Workers currently draining.", float64(st.WorkersDraining))
	gauge("latchcoord_workers_down", "Workers currently unreachable.", float64(st.WorkersDown))
	gauge("latchcoord_ring_slots", "Virtual nodes on the hash ring.", float64(st.RingSlots))
	gauge("latchcoord_tracked_jobs", "Forwarded-job records retained.", float64(st.TrackedJobs))

	// Per-worker health gauges, one labeled series per configured worker.
	fmt.Fprintf(w, "# HELP latchcoord_worker_up Worker health: 1 up, 0.5 draining, 0 down.\n# TYPE latchcoord_worker_up gauge\n")
	for _, wk := range st.WorkerList {
		v := 0.0
		switch wk.State {
		case serveclient.WorkerUp:
			v = 1
		case serveclient.WorkerDraining:
			v = 0.5
		}
		fmt.Fprintf(w, "latchcoord_worker_up{worker=%q} %g\n", wk.Addr, v)
	}
	fmt.Fprintf(w, "# HELP latchcoord_worker_in_flight Forwards currently in flight per worker.\n# TYPE latchcoord_worker_in_flight gauge\n")
	for _, wk := range st.WorkerList {
		fmt.Fprintf(w, "latchcoord_worker_in_flight{worker=%q} %d\n", wk.Addr, wk.InFlight)
	}

	// Fleet aggregate from the latest health-poll snapshots. These are sums
	// of worker counters, so they render as counters even though a worker
	// restart can step one backwards (same caveat as any federated sum).
	agg := st.Aggregate
	gauge("latchcoord_fleet_queue_depth", "Queued jobs summed over reachable workers.", float64(agg.QueueDepth))
	gauge("latchcoord_fleet_inflight_keys", "Distinct in-flight coalescing keys summed over reachable workers.", float64(agg.InflightKeys))
	counter("latchcoord_fleet_requests_total", "Requests summed over reachable workers.", float64(agg.Requests))
	counter("latchcoord_fleet_jobs_done_total", "Jobs finished successfully, summed over reachable workers.", float64(agg.JobsDone))
	counter("latchcoord_fleet_jobs_failed_total", "Jobs failed, summed over reachable workers.", float64(agg.JobsFailed))
	counter("latchcoord_fleet_jobs_canceled_total", "Jobs canceled, summed over reachable workers.", float64(agg.JobsCanceled))
	counter("latchcoord_fleet_coalesced_total", "Coalesced requests summed over reachable workers.", float64(agg.Coalesced))
	counter("latchcoord_fleet_result_cache_hits_total", "Result-cache hits summed over reachable workers.", float64(agg.ResultCacheHits))

	// The coordinator's own per-endpoint request-duration histogram.
	co.rt.Latency().WritePrometheus(w, "latchcoord_request_seconds")
}
