package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"latchchar"
	"latchchar/internal/serve"
	"latchchar/serveclient"
)

// The ring must be a pure function of the membership set: same members in
// any order — or across a coordinator restart — place every key on the same
// worker.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	members := []string{"host-c:1", "host-a:1", "host-b:1", "host-d:1"}
	r1 := buildRing(members, 64)
	shuffled := append([]string(nil), members...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	r2 := buildRing(shuffled, 64) // "restarted" coordinator, different input order

	hits := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("v1:%064d", i)
		a, b := r1.lookup(key), r2.lookup(key)
		if a != b {
			t.Fatalf("key %d: %q vs %q after restart", i, a, b)
		}
		hits[a]++
	}
	// Sanity: the keyspace actually spreads over all members.
	for _, m := range r1.members() {
		if hits[m] == 0 {
			t.Errorf("member %s owns no keys", m)
		}
	}
	// At the default replica count the two-member keyspace split must be
	// close to even: throughput of a saturated fleet is capacity/max_share,
	// so a 60/40 split (routine at 64 vnodes) caps a two-worker cluster at
	// 1.7x a single node. Checked over several address pairs because each
	// pair draws a fresh set of vnode positions.
	for pair := 0; pair < 5; pair++ {
		two := buildRing([]string{
			fmt.Sprintf("10.0.%d.1:8080", pair),
			fmt.Sprintf("10.0.%d.2:8080", pair),
		}, 0)
		share := map[string]int{}
		const keys = 4000
		for i := 0; i < keys; i++ {
			share[two.lookup(fmt.Sprintf("v1:%d:%064d", pair, i))]++
		}
		for m, n := range share {
			if f := float64(n) / keys; f < 0.44 || f > 0.56 {
				t.Errorf("pair %d: member %s owns %.1f%% of the keyspace, want 44-56%%", pair, m, 100*f)
			}
		}
	}

	// The retry sequence starts at the owner and visits every member once.
	seq := r1.sequence("v1:some-key")
	if len(seq) != len(members) || seq[0] != r1.lookup("v1:some-key") {
		t.Fatalf("sequence = %v", seq)
	}
	seen := map[string]bool{}
	for _, a := range seq {
		if seen[a] {
			t.Fatalf("sequence revisits %s", a)
		}
		seen[a] = true
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := buildRing(nil, 64)
	if empty.lookup("k") != "" || empty.sequence("k") != nil || empty.slots() != 0 {
		t.Error("empty ring must answer empty")
	}
	one := buildRing([]string{"only:1"}, 8)
	if one.lookup("anything") != "only:1" {
		t.Error("single-member ring must own everything")
	}
	if !one.sameMembers([]string{"only:1"}) || one.sameMembers(nil) {
		t.Error("sameMembers broken")
	}
}

// testWorker boots a real single-node daemon in mock-job mode.
func testWorker(t *testing.T, mock time.Duration) (*serve.Server, *httptest.Server) {
	t.Helper()
	eng, err := latchchar.NewEngine(latchchar.EngineOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, err := serve.New(serve.Config{Engine: eng, MockJobTime: mock, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestCoordinator wires a coordinator over the given worker URLs with a
// fast health loop.
func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	ts := httptest.NewServer(co)
	t.Cleanup(ts.Close)
	return co, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func characterizeReq(points int) serveclient.CharacterizeRequest {
	return serveclient.CharacterizeRequest{
		Cell:    "tspc",
		Options: serveclient.OptionsRequest{Points: points},
	}
}

// Draining a worker must re-hash its keyspace onto the survivors without
// dropping a single in-flight job: jobs already forwarded keep running on
// the draining worker and stay pollable through the coordinator, while new
// work lands on the remaining worker.
func TestRehashOnWorkerDrainZeroDroppedJobs(t *testing.T) {
	w1, ts1 := testWorker(t, 400*time.Millisecond)
	_, ts2 := testWorker(t, 400*time.Millisecond)
	co, cots := newTestCoordinator(t, Config{Workers: []string{ts1.URL, ts2.URL}})

	// Submit enough distinct async jobs that both workers hold work.
	var ids []string
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, cots.URL+"/v1/characterize", characterizeReq(3+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d: %s", i, resp.StatusCode, body)
		}
		var st serveclient.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// Drain worker 1 while its jobs are in flight.
	drained := make(chan error, 1)
	go func() { drained <- w1.Drain(context.Background()) }()
	for !w1.Draining() {
		time.Sleep(time.Millisecond)
	}

	// The health loop must notice and rebuild the ring without worker 1.
	deadline := time.Now().Add(5 * time.Second)
	for {
		co.mu.Lock()
		members := co.ring.members()
		co.mu.Unlock()
		if len(members) == 1 && members[0] == ts2.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never re-hashed, members %v", members)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if co.met.rehashes.Load() == 0 {
		t.Error("rehash counter did not advance")
	}

	// New work must succeed — it can only land on worker 2 now (a forward
	// hitting the draining worker retries onto the survivor).
	resp, body := postJSON(t, cots.URL+"/v1/characterize", characterizeReq(99))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain job: status %d: %s", resp.StatusCode, body)
	}
	var newJob serveclient.JobStatus
	if err := json.Unmarshal(body, &newJob); err != nil {
		t.Fatal(err)
	}
	ids = append(ids, newJob.ID)

	if err := <-drained; err != nil {
		t.Fatalf("worker drain: %v", err)
	}

	// ZERO dropped jobs: every job submitted before and during the drain
	// must reach done and stay pollable through the coordinator.
	sc := serveclient.New(cots.URL)
	for _, id := range ids {
		st, err := sc.Poll(context.Background(), id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("job %s lost across the drain: %v", id, err)
		}
		if st.State != serveclient.StateDone {
			t.Errorf("job %s: state %q (error %q)", id, st.State, st.Error)
		}
	}
}

// A dead worker costs one retry hop, not a failed request: the coordinator
// walks the ring, demotes the corpse, and later requests skip it entirely.
func TestForwardRetriesPastDeadWorker(t *testing.T) {
	_, ts2 := testWorker(t, time.Millisecond)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	co, cots := newTestCoordinator(t, Config{
		Workers:        []string{deadURL, ts2.URL},
		HealthInterval: time.Hour, // force discovery through the forward path
	})

	// Some keys will hash to the dead worker; every request must still land.
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, cots.URL+"/v1/characterize", serveclient.CharacterizeRequest{
			Cell:    "tspc",
			Options: serveclient.OptionsRequest{Points: 3 + i},
			Wait:    true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if w := co.workerByAddr(deadURL); w.currentState() != serveclient.WorkerDown {
		t.Errorf("dead worker state %q, want down", w.currentState())
	}
}

// With every worker gone, the coordinator must answer a typed 503
// upstream_unavailable with a Retry-After hint.
func TestAllWorkersDownRejects(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	_, cots := newTestCoordinator(t, Config{Workers: []string{deadURL}, ForwardRetries: 1})

	resp, body := postJSON(t, cots.URL+"/v1/characterize", characterizeReq(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("upstream-unavailable 503 without Retry-After")
	}
	var env serveclient.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != serveclient.CodeUpstreamUnavailable {
		t.Errorf("envelope = %s, want code %q", body, serveclient.CodeUpstreamUnavailable)
	}
}

// The proxied NDJSON stream must survive a coordinator-side slow reader: a
// subscriber draining one line at a time still receives the complete event
// history, and the worker finishes its job unimpeded.
func TestStreamProxySurvivesSlowReader(t *testing.T) {
	_, ts1 := testWorker(t, 300*time.Millisecond)
	_, cots := newTestCoordinator(t, Config{Workers: []string{ts1.URL}})

	resp, body := postJSON(t, cots.URL+"/v1/characterize", characterizeReq(3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st serveclient.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	er, err := http.Get(cots.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	if ct := er.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type %q", ct)
	}
	// Deliberately slow consumer: one event per 25ms, far slower than the
	// job produces them. Backpressure lands on the proxy pump, never on the
	// worker's solver.
	sc := bufio.NewScanner(er.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines := 0
	sawRunEnd := false
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var e struct {
			Kind string `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Kind == "run_end" {
			sawRunEnd = true
		}
		lines++
		time.Sleep(25 * time.Millisecond)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 3 {
		t.Errorf("slow reader got only %d events", lines)
	}
	if !sawRunEnd {
		t.Error("stream ended without the run_end event")
	}

	// The job itself finished normally despite the slow subscriber.
	cl := serveclient.New(cots.URL)
	fin, err := cl.Poll(context.Background(), st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != serveclient.StateDone {
		t.Errorf("job state %q after slow-read stream", fin.State)
	}
}

// Batches partition across the ring by item key and merge back in request
// order.
func TestBatchPartitioning(t *testing.T) {
	_, ts1 := testWorker(t, 5*time.Millisecond)
	_, ts2 := testWorker(t, 5*time.Millisecond)
	_, cots := newTestCoordinator(t, Config{Workers: []string{ts1.URL, ts2.URL}})

	req := serveclient.BatchRequest{Wait: true}
	for i := 0; i < 8; i++ {
		req.Jobs = append(req.Jobs, serveclient.BatchJobRequest{
			Name:                fmt.Sprintf("job%d", i),
			CharacterizeRequest: characterizeReq(3 + i),
		})
	}
	resp, body := postJSON(t, cots.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st serveclient.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != serveclient.StateDone {
		t.Fatalf("state %q (error %q)", st.State, st.Error)
	}
	if len(st.Results) != 8 {
		t.Fatalf("results = %d, want 8", len(st.Results))
	}
	for i, r := range st.Results {
		if r.Index != i {
			t.Errorf("result %d has index %d — merge order broken", i, r.Index)
		}
		if r.Name != fmt.Sprintf("job%d", i) {
			t.Errorf("result %d name %q", i, r.Name)
		}
		if r.Error != "" || r.Result == nil {
			t.Errorf("result %d: error %q", i, r.Error)
		}
	}
}

// Config validation must reject nonsense before any goroutine starts.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty worker list accepted")
	}
	if _, err := New(Config{Workers: []string{"a:1", "a:1"}}); err == nil {
		t.Error("duplicate workers accepted")
	}
	if _, err := New(Config{Workers: []string{"a:1"}, MaxInFlight: -1}); err == nil {
		t.Error("negative MaxInFlight accepted")
	}
	if _, err := New(Config{Workers: []string{"a:1"}, ForwardRetries: -2}); err == nil {
		t.Error("negative ForwardRetries accepted")
	}
	cfg := Config{Workers: []string{"a:1"}}.withDefaults()
	if err := cfg.Validate(); err != nil {
		t.Errorf("defaulted config invalid: %v", err)
	}
	if !strings.HasPrefix(serveclient.New("a:1").BaseURL(), "http://") {
		t.Error("bare host:port not normalized to a URL")
	}
}
