package serve

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"latchchar/internal/serve/jobcore"
	"latchchar/serveclient"
)

// Router is the shared HTTP front end of both serving modes: an
// http.ServeMux behind the request middleware (correlation-ID resolution
// and echo, per-route latency observation, one structured log line per
// request). The single-node server and the cluster coordinator both build
// on it, so every endpoint gets identical trace and telemetry behavior.
type Router struct {
	mux    *http.ServeMux
	lat    *LatencySet
	logger *slog.Logger
}

// NewRouter builds an empty router logging requests to logger
// (slog.Default() when nil).
func NewRouter(logger *slog.Logger) *Router {
	if logger == nil {
		logger = slog.Default()
	}
	return &Router{mux: http.NewServeMux(), lat: NewLatencySet(), logger: logger}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Latency exposes the per-route latency accumulator for /metrics and
// /statusz rendering.
func (rt *Router) Latency() *LatencySet { return rt.lat }

// Handle registers pattern behind the middleware; route is the stable label
// used for latency histograms and request logs ("/v1/jobs/{id}", not the
// concrete path).
func (rt *Router) Handle(pattern, route string, h http.HandlerFunc) {
	rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		corr, fromTrace := requestCorr(r)
		if fromTrace {
			w.Header().Set(traceparentHeader, "00-"+corr+"-"+randomHex(8)+"-01")
		}
		w.Header().Set(corrHeader, corr)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, withCorr(r, corr))
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rt.lat.Observe(route, start, elapsed)
		rt.logger.Info("request",
			"corr", corr,
			"route", route,
			"method", r.Method,
			"status", status,
			"dur_ms", jobcore.DurMS(elapsed),
			"remote", r.RemoteAddr,
		)
	})
}

// HandleRaw registers a handler with no middleware (pprof and other
// stdlib-owned endpoints that manage their own headers).
func (rt *Router) HandleRaw(pattern string, h http.HandlerFunc) {
	rt.mux.HandleFunc(pattern, h)
}

// Redirect maps a deprecated unprefixed route onto its /v1/ successor with
// a 308 (method- and body-preserving) redirect. The Deprecation and Link
// headers announce the sunset so clients can migrate before the alias is
// dropped next release.
func (rt *Router) Redirect(from, to string) {
	rt.mux.HandleFunc(from, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+to+`>; rel="successor-version"`)
		http.Redirect(w, r, to, http.StatusPermanentRedirect)
	})
}

// WriteJSON writes v as an indented JSON response with the given status.
// Encode errors are reported to the caller (the connection is usually gone;
// most handlers ignore them).
func WriteJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteError writes the v1 typed error envelope, stamping the request's
// correlation ID so the failure can be joined against logs and obs events.
func WriteError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	_ = WriteJSON(w, status, serveclient.ErrorEnvelope{Error: serveclient.ErrorDetail{
		Code:          code,
		Message:       msg,
		CorrelationID: ReqCorr(r),
	}})
}

// SetRetryAfter sets the backpressure hint on a 429/503 response, rounded
// up to at least one second (the header carries integral seconds).
func SetRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
