package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// W3C trace-context plumbing and the request middleware: every request gets
// a correlation ID — the trace-id of an incoming `traceparent` header when
// present, a fresh random one otherwise — echoed back in a `traceparent`
// response header (same trace-id, new span-id) and an `X-Correlation-Id`
// header, threaded into the job's obs run, and stamped on the structured
// request log line.

// traceparentHeader is the W3C trace-context header: version "00",
// 16-byte trace-id and 8-byte parent-id as lowercase hex, and flags.
const traceparentHeader = "traceparent"

// corrHeader carries the bare correlation ID for clients that don't speak
// trace-context.
const corrHeader = "X-Correlation-Id"

// parseTraceparent extracts the trace-id of a W3C traceparent value;
// ok=false on anything malformed (wrong field sizes, non-hex, all-zero
// trace-id, reserved version ff).
func parseTraceparent(v string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 {
		return "", false
	}
	ver, tid, pid := strings.ToLower(parts[0]), strings.ToLower(parts[1]), strings.ToLower(parts[2])
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return "", false
	}
	if len(tid) != 32 || !isLowerHex(tid) || tid == strings.Repeat("0", 32) {
		return "", false
	}
	if len(pid) != 16 || !isLowerHex(pid) || pid == strings.Repeat("0", 16) {
		return "", false
	}
	return tid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// corrSeq backs the fallback correlation IDs when crypto/rand fails.
var corrSeq atomic.Uint64

// randomHex returns n random bytes as 2n lowercase hex characters.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return fmt.Sprintf("%0*x", 2*n, corrSeq.Add(1))
	}
	return hex.EncodeToString(b)
}

// requestCorr resolves the correlation ID of a request: an incoming
// traceparent trace-id, the bare X-Correlation-Id header, or a fresh random
// trace-id. fromTrace reports whether the ID is a W3C trace-id we should
// echo in a traceparent response header.
func requestCorr(r *http.Request) (corr string, fromTrace bool) {
	if tid, ok := parseTraceparent(r.Header.Get(traceparentHeader)); ok {
		return tid, true
	}
	if c := strings.TrimSpace(r.Header.Get(corrHeader)); c != "" && len(c) <= 128 {
		return c, false
	}
	return randomHex(16), true
}

// statusWriter records the response code for the request log and latency
// labels while passing Flush through, so the NDJSON event stream keeps
// streaming behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// corrKey carries the resolved correlation ID through the request context.
type corrKey struct{}

func withCorr(r *http.Request, corr string) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), corrKey{}, corr))
}

// ReqCorr reads the correlation ID the middleware resolved ("" outside it).
func ReqCorr(r *http.Request) string {
	c, _ := r.Context().Value(corrKey{}).(string)
	return c
}

// OutgoingTraceparent renders a traceparent header value continuing the
// trace of corr with a fresh span-id, or "" when corr is not a W3C
// trace-id (correlation IDs taken from a bare X-Correlation-Id header
// propagate through that header instead). The cluster coordinator uses this
// to keep a forwarded request's worker-side logs joined to the caller's
// trace.
func OutgoingTraceparent(corr string) string {
	if len(corr) != 32 || !isLowerHex(corr) || corr == strings.Repeat("0", 32) {
		return ""
	}
	return "00-" + corr + "-" + randomHex(8) + "-01"
}
