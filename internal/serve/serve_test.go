package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"latchchar"
	"latchchar/internal/obs"
	"latchchar/serveclient"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		eng, err := latchchar.NewEngine(latchchar.EngineOptions{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		cfg.Engine = eng
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// Eight concurrent identical requests must produce equal results while the
// engine runs exactly one characterization: the first request runs it, the
// rest coalesce onto the in-flight job or hit the result cache. The proof is
// the server's folded obs counters — one "characterize" span total.
func TestCoalescingEightConcurrentRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization")
	}
	srv, ts := newTestServer(t, Config{})
	req := serveclient.CharacterizeRequest{
		Cell:    "tspc",
		Options: serveclient.OptionsRequest{Points: 3},
		Wait:    true,
	}
	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/characterize", req)
			codes[i] = resp.StatusCode
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	var want serveclient.JobStatus
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		var st serveclient.JobStatus
		if err := json.Unmarshal(bodies[i], &st); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if st.State != serveclient.StateDone {
			t.Fatalf("request %d: state %q (error %q)", i, st.State, st.Error)
		}
		if st.Result == nil || len(st.Result.Contour) == 0 {
			t.Fatalf("request %d: empty contour", i)
		}
		if i == 0 {
			want = st
			continue
		}
		got, _ := json.Marshal(st.Result)
		ref, _ := json.Marshal(want.Result)
		if !bytes.Equal(got, ref) {
			t.Errorf("request %d: result differs from request 0", i)
		}
	}

	// Exactly one characterization ran, per the obs span aggregate.
	if got := srv.Summary().Phase(obs.SpanCharacterize).Count; got != 1 {
		t.Errorf("characterize span count = %d, want 1", got)
	}
	// The other seven either attached in-flight or hit the result cache.
	met := srv.Core().Counters()
	co, ch := met.Coalesced.Load(), met.ResultCacheHits.Load()
	if co+ch != n-1 {
		t.Errorf("coalesced=%d cacheHits=%d, want sum %d", co, ch, n-1)
	}

	// A later identical request is a pure cache hit.
	resp, body := postJSON(t, ts.URL+"/v1/characterize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request: status %d", resp.StatusCode)
	}
	var st serveclient.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Error("follow-up request not served from the result cache")
	}

	// The metrics endpoint exposes the folded obs counters by name (via the
	// deprecated alias, which 308s to /v1/metrics).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"calibrations_reused",
		"latchchard_requests_total",
		"latchchard_phase_characterize_count_total 1",
	} {
		if !strings.Contains(string(met2), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The job's NDJSON event stream replays the full history and closes.
	loc := want.ID
	resp, err = http.Get(ts.URL + "/v1/jobs/" + loc + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type = %q", ct)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kinds[string(e.Kind)]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{string(obs.KindSpanBegin), string(obs.KindSpanEnd), string(obs.KindRunEnd)} {
		if kinds[k] == 0 {
			t.Errorf("event stream missing kind %q (got %v)", k, kinds)
		}
	}
}

// A drain must finish the queued jobs while new requests get 503 +
// Retry-After + a typed draining envelope, and healthz must flip to
// draining.
func TestDrainCompletesQueuedRejectsNew(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterizations")
	}
	eng, err := latchchar.NewEngine(latchchar.EngineOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, ts := newTestServer(t, Config{Engine: eng, Workers: 1})

	// Two distinct jobs: with one worker the second waits in the queue.
	var ids []string
	for _, points := range []int{2, 3} {
		resp, body := postJSON(t, ts.URL+"/v1/characterize", serveclient.CharacterizeRequest{
			Cell:    "tspc",
			Options: serveclient.OptionsRequest{Points: points},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var st serveclient.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the queued jobs keep running: 503, a
	// Retry-After hint, and the typed draining code.
	resp, body := postJSON(t, ts.URL+"/v1/characterize", serveclient.CharacterizeRequest{
		Cell: "tspc", Options: serveclient.OptionsRequest{Points: 4},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	var env serveclient.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != serveclient.CodeDraining {
		t.Errorf("draining envelope = %s (err %v), want code %q", body, err, serveclient.CodeDraining)
	}
	if env.Error.CorrelationID == "" {
		t.Error("draining envelope missing correlation_id")
	}
	hc, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hc.Body.Close()
	if hc.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d", hc.StatusCode)
	}
	if hc.Header.Get("Retry-After") == "" {
		t.Error("draining healthz without Retry-After")
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		var st serveclient.JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != serveclient.StateDone {
			t.Errorf("job %s after drain: state %q (error %q)", id, st.State, st.Error)
		}
		if st.Result == nil || len(st.Result.Contour) == 0 {
			t.Errorf("job %s after drain: empty contour", id)
		}
	}
}

// A full queue must reject with 429, a Retry-After hint, and the typed
// queue_full envelope — exercised end to end over HTTP using the mock job
// mode to pin the single worker deterministically.
func TestQueueFullBackpressureHTTP(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers:     1,
		QueueDepth:  1,
		MockJobTime: 2 * time.Second,
	})

	post := func(points int) (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/v1/characterize", serveclient.CharacterizeRequest{
			Cell: "tspc", Options: serveclient.OptionsRequest{Points: points},
		})
	}
	// Job 1 occupies the worker; wait until it actually runs so job 2
	// deterministically fills the single queue slot.
	resp, body := post(2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d: %s", resp.StatusCode, body)
	}
	var st serveclient.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Core().Snapshot().QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatal("job 1 never left the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, body = post(3); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(4)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 429 without Retry-After")
	}
	var env serveclient.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != serveclient.CodeQueueFull {
		t.Errorf("queue-full envelope = %s (err %v), want code %q", body, err, serveclient.CodeQueueFull)
	}
	if srv.Core().Counters().RejectedFull.Load() != 1 {
		t.Errorf("RejectedFull = %d", srv.Core().Counters().RejectedFull.Load())
	}
}

// The batch endpoint runs one engine batch: same-cell jobs share one
// calibration and the followers warm-start from the leader's contour.
func TestBatchEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterizations")
	}
	_, ts := newTestServer(t, Config{})
	req := serveclient.BatchRequest{
		Wait: true,
		Jobs: []serveclient.BatchJobRequest{
			{Name: "lead", CharacterizeRequest: serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}},
			{Name: "follow", CharacterizeRequest: serveclient.CharacterizeRequest{Cell: "tspc", Options: serveclient.OptionsRequest{Points: 3}}},
		},
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st serveclient.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != 2 {
		t.Fatalf("results = %d", len(st.Results))
	}
	for i, r := range st.Results {
		if r.Error != "" || r.Result == nil || len(r.Result.Contour) == 0 {
			t.Fatalf("item %d: error %q", i, r.Error)
		}
	}
	if !st.Results[1].WarmStarted && !st.Results[1].CalibrationReused {
		t.Error("second batch job neither warm-started nor calibration-reused")
	}
}

// A Monte-Carlo request (mc_samples > 0) must run the variance-aware flow
// and return the nominal contour plus the sigma estimate, with MC-path
// counters on /v1/metrics. A second identical request must come from the
// result cache — MC options participate in the coalescing key.
func TestMonteCarloEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full monte-carlo run")
	}
	_, ts := newTestServer(t, Config{})
	req := serveclient.CharacterizeRequest{
		Cell: "tspc",
		Options: serveclient.OptionsRequest{
			Points:         8,
			BothDirections: true,
			FastPath:       true,
			MCSamples:      3,
			Sampler:        "lhs",
			Seed:           7,
			MCProbes:       4,
		},
		Wait: true,
	}
	resp, body := postJSON(t, ts.URL+"/v1/characterize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st serveclient.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != serveclient.StateDone {
		t.Fatalf("state %q (error %q)", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Sigma == nil {
		t.Fatalf("missing sigma estimate: %s", body)
	}
	sig := st.Result.Sigma
	if sig.Samples < 2 || len(sig.Inner) == 0 || len(sig.Inner) != len(sig.Outer) || len(sig.Inner) != len(sig.Probes) {
		t.Fatalf("malformed sigma estimate: %+v", sig)
	}
	if sig.WarmSamples == 0 {
		t.Error("no warm-started samples")
	}
	if sig.RunSims <= 0 {
		t.Error("run sims not accounted")
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/characterize", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, body2)
	}
	var st2 serveclient.JobStatus
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Error("identical MC request was not served from the result cache")
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, ctr := range []string{"mc_warm_seeds", "mc_sims_saved", "mc_cv_applied"} {
		if !strings.Contains(string(metrics), ctr) {
			t.Errorf("metrics exposition is missing %s", ctr)
		}
	}
}

// Every rejection must carry the v1 typed error envelope with a closed-set
// code and the request's correlation ID.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		body string
		code int
	}{
		{"unknown cell", "/v1/characterize", `{"cell":"zzz"}`, http.StatusBadRequest},
		{"no cell or netlist", "/v1/characterize", `{}`, http.StatusBadRequest},
		{"bad method", "/v1/characterize", `{"cell":"tspc","options":{"method":"rk4"}}`, http.StatusBadRequest},
		{"unknown field", "/v1/characterize", `{"cell":"tspc","bogus":1}`, http.StatusBadRequest},
		{"negative points", "/v1/characterize", `{"cell":"tspc","options":{"points":-1}}`, http.StatusBadRequest},
		{"override on netlist", "/v1/characterize", `{"netlist":"x","process":{}}`, http.StatusBadRequest},
		{"mc on netlist", "/v1/characterize", `{"netlist":"x","options":{"mc_samples":4}}`, http.StatusBadRequest},
		{"bad sampler", "/v1/characterize", `{"cell":"tspc","options":{"mc_samples":4,"sampler":"dartboard"}}`, http.StatusBadRequest},
		{"mc in batch", "/v1/batch", `{"jobs":[{"cell":"tspc","options":{"mc_samples":4}}]}`, http.StatusBadRequest},
		{"empty batch", "/v1/batch", `{"jobs":[]}`, http.StatusBadRequest},
		{"bad batch item", "/v1/batch", `{"jobs":[{"cell":"zzz"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, b)
		}
		var env serveclient.ErrorEnvelope
		if err := json.Unmarshal(b, &env); err != nil {
			t.Errorf("%s: malformed error body %q", tc.name, b)
			continue
		}
		if env.Error.Code != serveclient.CodeInvalidRequest {
			t.Errorf("%s: code %q, want %q", tc.name, env.Error.Code, serveclient.CodeInvalidRequest)
		}
		if env.Error.Message == "" || env.Error.CorrelationID == "" {
			t.Errorf("%s: incomplete envelope %s", tc.name, b)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	var env serveclient.ErrorEnvelope
	if err := json.Unmarshal(b, &env); err != nil || env.Error.Code != serveclient.CodeNotFound {
		t.Errorf("unknown job envelope = %s, want code %q", b, serveclient.CodeNotFound)
	}
}

// The deprecated unprefixed routes must answer 308 with the /v1/ successor
// and sunset headers, without executing the handler.
func TestDeprecatedRouteRedirects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for from, to := range map[string]string{
		"/healthz": "/v1/healthz",
		"/metrics": "/v1/metrics",
		"/statusz": "/v1/statusz",
	} {
		resp, err := noFollow.Get(ts.URL + from)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s: status %d, want 308", from, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != to {
			t.Errorf("%s: Location %q, want %q", from, loc, to)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: missing Deprecation header", from)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("%s: Link %q missing successor-version", from, link)
		}
	}
}

func TestConfigRequiresEngine(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil engine accepted")
	}
}
