package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"latchchar"
	"latchchar/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		eng, err := latchchar.NewEngine(latchchar.EngineOptions{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		cfg.Engine = eng
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// Eight concurrent identical requests must produce equal results while the
// engine runs exactly one characterization: the first request runs it, the
// rest coalesce onto the in-flight job or hit the result cache. The proof is
// the server's folded obs counters — one "characterize" span total.
func TestCoalescingEightConcurrentRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization")
	}
	srv, ts := newTestServer(t, Config{})
	req := CharacterizeRequest{
		Cell:    "tspc",
		Options: OptionsRequest{Points: 3},
		Wait:    true,
	}
	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/characterize", req)
			codes[i] = resp.StatusCode
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	var want JobStatus
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		var st JobStatus
		if err := json.Unmarshal(bodies[i], &st); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if st.State != stateDone {
			t.Fatalf("request %d: state %q (error %q)", i, st.State, st.Error)
		}
		if st.Result == nil || len(st.Result.Contour) == 0 {
			t.Fatalf("request %d: empty contour", i)
		}
		if i == 0 {
			want = st
			continue
		}
		got, _ := json.Marshal(st.Result)
		ref, _ := json.Marshal(want.Result)
		if !bytes.Equal(got, ref) {
			t.Errorf("request %d: result differs from request 0", i)
		}
	}

	// Exactly one characterization ran, per the obs span aggregate.
	if got := srv.Summary().Phase(obs.SpanCharacterize).Count; got != 1 {
		t.Errorf("characterize span count = %d, want 1", got)
	}
	// The other seven either attached in-flight or hit the result cache.
	co, ch := srv.met.coalesced.Load(), srv.met.cacheHits.Load()
	if co+ch != n-1 {
		t.Errorf("coalesced=%d cacheHits=%d, want sum %d", co, ch, n-1)
	}

	// A later identical request is a pure cache hit.
	resp, body := postJSON(t, ts.URL+"/v1/characterize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request: status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Error("follow-up request not served from the result cache")
	}

	// The metrics endpoint exposes the folded obs counters by name.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"calibrations_reused",
		"latchchard_requests_total",
		"latchchard_phase_characterize_count_total 1",
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The job's NDJSON event stream replays the full history and closes.
	loc := want.ID
	resp, err = http.Get(ts.URL + "/v1/jobs/" + loc + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type = %q", ct)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kinds[string(e.Kind)]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{string(obs.KindSpanBegin), string(obs.KindSpanEnd), string(obs.KindRunEnd)} {
		if kinds[k] == 0 {
			t.Errorf("event stream missing kind %q (got %v)", k, kinds)
		}
	}
}

// A drain must finish the queued jobs while new requests get 503 +
// Retry-After, and healthz must flip to draining.
func TestDrainCompletesQueuedRejectsNew(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterizations")
	}
	eng, err := latchchar.NewEngine(latchchar.EngineOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, ts := newTestServer(t, Config{Engine: eng, Workers: 1})

	// Two distinct jobs: with one worker the second waits in the queue.
	var ids []string
	for _, points := range []int{2, 3} {
		resp, body := postJSON(t, ts.URL+"/v1/characterize", CharacterizeRequest{
			Cell:    "tspc",
			Options: OptionsRequest{Points: points},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the queued jobs keep running.
	resp, body := postJSON(t, ts.URL+"/v1/characterize", CharacterizeRequest{
		Cell: "tspc", Options: OptionsRequest{Points: 4},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if hc, _ := http.Get(ts.URL + "/healthz"); hc.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d", hc.StatusCode)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != stateDone {
			t.Errorf("job %s after drain: state %q (error %q)", id, st.State, st.Error)
		}
		if st.Result == nil || len(st.Result.Contour) == 0 {
			t.Errorf("job %s after drain: empty contour", id)
		}
	}
}

// blockingCell returns a cell whose Build blocks until release is closed,
// pinning a job inside the engine without burning simulation time.
func blockingCell(name string, release <-chan struct{}) *latchchar.Cell {
	return &latchchar.Cell{Name: name, Build: func() (*latchchar.Instance, error) {
		<-release
		return nil, errors.New("released")
	}}
}

// A full queue rejects with 429 and frees the slot again once a job drains.
func TestQueueFullBackpressure(t *testing.T) {
	eng, err := latchchar.NewEngine(latchchar.EngineOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, _ := newTestServer(t, Config{Engine: eng, Workers: 1, QueueDepth: 1})

	release := make(chan struct{})
	submit := func(key string) (*job, error) {
		j, cached, err := srv.submit(key, "", blockingCell(key, release), latchchar.Options{}, false)
		if cached {
			t.Fatalf("unexpected cache hit for %s", key)
		}
		return j, err
	}
	a, err := submit("a")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker holds job a, so job b occupies the one
	// queue slot deterministically.
	for {
		if st := a.status(); st.State == stateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b, err := submit("b")
	if err != nil {
		t.Fatal(err)
	}
	_, err = submit("c")
	var se *submitErr
	if !errors.As(err, &se) || se.status != http.StatusTooManyRequests {
		t.Fatalf("third submit: %v, want 429", err)
	}

	close(release)
	<-a.done
	<-b.done
	// Both blocked jobs failed their build — but they freed the queue.
	if st := a.status(); st.State != stateFailed {
		t.Errorf("job a: state %q", st.State)
	}
	if srv.met.rejectedFull.Load() != 1 {
		t.Errorf("rejectedFull = %d", srv.met.rejectedFull.Load())
	}
	if _, err := submit("d"); err != nil {
		t.Errorf("submit after drain of queue: %v", err)
	}
}

// Identical concurrent submissions coalesce at the submit layer too (unit
// version of the HTTP test, no simulations involved).
func TestSubmitCoalescesInflight(t *testing.T) {
	eng, err := latchchar.NewEngine(latchchar.EngineOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, _ := newTestServer(t, Config{Engine: eng, Workers: 1})

	release := make(chan struct{})
	first, _, err := srv.submit("k", "", blockingCell("k", release), latchchar.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	second, cached, err := srv.submit("k", "", blockingCell("k", release), latchchar.Options{}, false)
	if err != nil || cached {
		t.Fatalf("second submit: cached=%v err=%v", cached, err)
	}
	if second != first {
		t.Error("identical submission did not coalesce onto the in-flight job")
	}
	if st := first.status(); st.Coalesced != 1 {
		t.Errorf("coalesced = %d", st.Coalesced)
	}
	close(release)
	<-first.done
	// Failed jobs must not populate the result cache.
	if _, ok := srv.results.Get("k"); ok {
		t.Error("failed job cached")
	}
}

// The batch endpoint runs one engine batch: same-cell jobs share one
// calibration and the followers warm-start from the leader's contour.
func TestBatchEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterizations")
	}
	_, ts := newTestServer(t, Config{})
	req := BatchRequest{
		Wait: true,
		Jobs: []BatchJobRequest{
			{Name: "lead", CharacterizeRequest: CharacterizeRequest{Cell: "tspc", Options: OptionsRequest{Points: 3}}},
			{Name: "follow", CharacterizeRequest: CharacterizeRequest{Cell: "tspc", Options: OptionsRequest{Points: 3}}},
		},
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != 2 {
		t.Fatalf("results = %d", len(st.Results))
	}
	for i, r := range st.Results {
		if r.Error != "" || r.Result == nil || len(r.Result.Contour) == 0 {
			t.Fatalf("item %d: error %q", i, r.Error)
		}
	}
	if !st.Results[1].WarmStarted && !st.Results[1].CalibrationReused {
		t.Error("second batch job neither warm-started nor calibration-reused")
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		body string
		code int
	}{
		{"unknown cell", "/v1/characterize", `{"cell":"zzz"}`, http.StatusBadRequest},
		{"no cell or netlist", "/v1/characterize", `{}`, http.StatusBadRequest},
		{"bad method", "/v1/characterize", `{"cell":"tspc","options":{"method":"rk4"}}`, http.StatusBadRequest},
		{"unknown field", "/v1/characterize", `{"cell":"tspc","bogus":1}`, http.StatusBadRequest},
		{"negative points", "/v1/characterize", `{"cell":"tspc","options":{"points":-1}}`, http.StatusBadRequest},
		{"override on netlist", "/v1/characterize", `{"netlist":"x","process":{}}`, http.StatusBadRequest},
		{"empty batch", "/v1/batch", `{"jobs":[]}`, http.StatusBadRequest},
		{"bad batch item", "/v1/batch", `{"jobs":[{"cell":"zzz"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, b)
		}
		var e errorJSON
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Errorf("%s: malformed error body %q", tc.name, b)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

func TestConfigRequiresEngine(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestRequestKeyStability(t *testing.T) {
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	r1 := &CharacterizeRequest{Cell: "tspc", Options: OptionsRequest{Points: 3}}
	r2 := &CharacterizeRequest{Cell: "tspc", Options: OptionsRequest{Points: 3}, Wait: true, NoCache: true}
	if requestKey(r1, cell) != requestKey(r2, cell) {
		t.Error("wait/no_cache must not affect the coalescing key")
	}
	r3 := &CharacterizeRequest{Cell: "tspc", Options: OptionsRequest{Points: 4}}
	if requestKey(r1, cell) == requestKey(r3, cell) {
		t.Error("different options share a key")
	}
	if !strings.HasPrefix(requestKey(r1, cell), "v1:") {
		t.Error("key missing version prefix")
	}
}

func TestFastPathOptionMapping(t *testing.T) {
	opts, err := OptionsRequest{FastPath: true}.toOptions()
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Eval.Chord || !opts.Eval.DeviceBypass {
		t.Errorf("fast_path must enable both chord and device bypass, got Chord=%v DeviceBypass=%v",
			opts.Eval.Chord, opts.Eval.DeviceBypass)
	}
	opts, err = OptionsRequest{}.toOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Eval.Chord || opts.Eval.DeviceBypass {
		t.Error("fast path must stay off by default")
	}
	cell, err := latchchar.CellByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	// fast_path selects a different inner loop — it must not coalesce with
	// exact-path requests.
	exact := &CharacterizeRequest{Cell: "tspc", Options: OptionsRequest{Points: 3}}
	fast := &CharacterizeRequest{Cell: "tspc", Options: OptionsRequest{Points: 3, FastPath: true}}
	if requestKey(exact, cell) == requestKey(fast, cell) {
		t.Error("fast_path requests share a coalescing key with exact requests")
	}
}
