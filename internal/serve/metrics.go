package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"latchchar/internal/obs"
)

// metrics holds the server-level request counters exposed on /metrics.
type metrics struct {
	requests         atomic.Int64
	jobsDone         atomic.Int64
	jobsFailed       atomic.Int64
	jobsCanceled     atomic.Int64
	coalesced        atomic.Int64
	cacheHits        atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
}

// obsAgg accumulates per-job obs.Run summaries into a server-lifetime view:
// every obs counter plus per-phase count and wall-clock. All known counter
// names are pre-seeded at zero so scrapers see a stable metric set from the
// first request (and the smoke test can assert calibrations_reused exists
// before any reuse happened).
type obsAgg struct {
	mu       sync.Mutex
	counters map[string]int64
	phases   map[string]obs.PhaseStat
	hists    map[string]*obs.Hist
}

func (a *obsAgg) init() {
	a.counters = map[string]int64{
		obs.CtrTransients:        0,
		obs.CtrTransientsGrad:    0,
		obs.CtrSteps:             0,
		obs.CtrNewtonIters:       0,
		obs.CtrLUFactor:          0,
		obs.CtrLURefactor:        0,
		obs.CtrSensSolves:        0,
		obs.CtrSensFactReused:    0,
		obs.CtrPoints:            0,
		obs.CtrStepRejects:       0,
		obs.CtrWarmSeeds:         0,
		obs.CtrCalReused:         0,
		obs.CtrChordIters:        0,
		obs.CtrJacobianReuses:    0,
		obs.CtrDeviceBypasses:    0,
		obs.CtrRuntimeSamples:    0,
		obs.CtrBlockRuns:         0,
		obs.CtrBlockPeelOffs:     0,
		obs.CtrBlockSharedSteps:  0,
		obs.CtrBlockDonorReplays: 0,
	}
	a.phases = map[string]obs.PhaseStat{}
	a.hists = map[string]*obs.Hist{}
}

func (a *obsAgg) fold(s obs.Summary) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for name, v := range s.Counters {
		a.counters[name] += v
	}
	for _, p := range s.Phases {
		agg := a.phases[p.Name]
		agg.Name = p.Name
		agg.Count += p.Count
		agg.Total += p.Total
		a.phases[p.Name] = agg
	}
	for _, hs := range s.Hists {
		h := a.hists[hs.Name]
		if h == nil {
			h = &obs.Hist{}
			a.hists[hs.Name] = h
		}
		h.AddSnapshot(hs.Hist)
	}
}

// summary renders the aggregate as an obs.Summary for tests and embedders.
func (a *obsAgg) summary() obs.Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := obs.Summary{Counters: make(map[string]int64, len(a.counters))}
	for name, v := range a.counters {
		s.Counters[name] = v
	}
	for _, p := range a.phases {
		s.Phases = append(s.Phases, p)
	}
	for name, h := range a.hists {
		s.Hists = append(s.Hists, obs.HistStat{Name: name, Hist: h.Snapshot()})
	}
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Name < s.Phases[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// writeMetrics renders the Prometheus text exposition format (v0.0.4) by
// hand: serve-level request counters, engine calibration-cache stats, the
// folded obs counters, and per-phase count/seconds.
func (s *Server) writeMetrics(w io.Writer) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	counter("latchchard_requests_total", "Characterize and batch requests received.", float64(s.met.requests.Load()))
	counter("latchchard_jobs_done_total", "Jobs finished successfully.", float64(s.met.jobsDone.Load()))
	counter("latchchard_jobs_failed_total", "Jobs finished with an error.", float64(s.met.jobsFailed.Load()))
	counter("latchchard_jobs_canceled_total", "Jobs canceled by drain or timeout.", float64(s.met.jobsCanceled.Load()))
	counter("latchchard_requests_coalesced_total", "Requests attached to an identical in-flight job.", float64(s.met.coalesced.Load()))
	counter("latchchard_result_cache_hits_total", "Requests served from the result cache.", float64(s.met.cacheHits.Load()))
	counter("latchchard_rejected_queue_full_total", "Requests rejected with 429 because the job queue was full.", float64(s.met.rejectedFull.Load()))
	counter("latchchard_rejected_draining_total", "Requests rejected with 503 while draining.", float64(s.met.rejectedDraining.Load()))

	s.mu.Lock()
	queued := len(s.queue)
	inflight := len(s.inflight)
	draining := s.draining
	s.mu.Unlock()
	gauge("latchchard_queue_depth", "Jobs waiting in the bounded queue.", float64(queued))
	gauge("latchchard_inflight_jobs", "Distinct coalescing keys currently queued or running.", float64(inflight))
	drainVal := 0.0
	if draining {
		drainVal = 1
	}
	gauge("latchchard_draining", "1 while the server refuses new work.", drainVal)

	hits, misses := s.eng.CacheStats()
	counter("latchchard_calibration_cache_hits_total", "Engine calibration LRU hits.", float64(hits))
	counter("latchchard_calibration_cache_misses_total", "Engine calibration LRU misses.", float64(misses))

	sum := s.agg.summary()
	names := make([]string, 0, len(sum.Counters))
	for name := range sum.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		counter("latchchard_obs_"+name+"_total",
			"Observability counter "+name+" summed over finished jobs.",
			float64(sum.Counters[name]))
	}
	for _, p := range sum.Phases {
		counter("latchchard_phase_"+p.Name+"_count_total",
			"Completed "+p.Name+" spans over finished jobs.", float64(p.Count))
		counter("latchchard_phase_"+p.Name+"_seconds_total",
			"Wall-clock seconds in "+p.Name+" spans over finished jobs.",
			p.Total.Seconds())
	}

	// Iteration-count histograms (Newton/corrector/chord) as native
	// Prometheus histograms: obs buckets are exact small integers 1..16 plus
	// overflow, rendered as cumulative le bounds.
	for _, hs := range sum.Hists {
		name := "latchchard_obs_" + hs.Name
		fmt.Fprintf(w, "# HELP %s Distribution of %s over finished jobs.\n# TYPE %s histogram\n",
			name, hs.Name, name)
		var cum int64
		for i := 0; i < len(hs.Hist.Buckets)-1; i++ {
			cum += hs.Hist.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, i+1, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, hs.Hist.Count)
		fmt.Fprintf(w, "%s_sum %d\n", name, hs.Hist.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, hs.Hist.Count)
	}

	// Per-endpoint request-duration histogram.
	if snaps := s.lat.snapshot(); len(snaps) > 0 {
		const name = "latchchard_request_seconds"
		fmt.Fprintf(w, "# HELP %s HTTP request duration by route.\n# TYPE %s histogram\n", name, name)
		for _, h := range snaps {
			for i, bound := range latencyBuckets {
				fmt.Fprintf(w, "%s_bucket{route=%q,le=%q} %d\n", name, h.route, formatLe(bound), h.cum[i])
			}
			fmt.Fprintf(w, "%s_bucket{route=%q,le=\"+Inf\"} %d\n", name, h.route, h.count)
			fmt.Fprintf(w, "%s_sum{route=%q} %g\n", name, h.route, h.sum)
			fmt.Fprintf(w, "%s_count{route=%q} %d\n", name, h.route, h.count)
		}
	}

	// Runtime self-telemetry (last sampler reading).
	s.rtMu.Lock()
	rt := s.rtStats
	s.rtMu.Unlock()
	gauge("latchchard_goroutines", "Goroutines at the last runtime sample.", float64(rt.Goroutines))
	gauge("latchchard_heap_bytes", "Live heap bytes at the last runtime sample.", float64(rt.HeapBytes))
	counter("latchchard_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", float64(rt.GCPauseNs)/1e9)
	gauge("latchchard_sched_latency_p99_seconds", "p99 goroutine scheduling latency since process start.", float64(rt.SchedP99Ns)/1e9)
}

// formatLe renders a bucket bound the way Prometheus clients do (shortest
// decimal form, e.g. "0.005", "1", "2.5").
func formatLe(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
