package serve

import (
	"fmt"
	"io"
	"sort"
)

// writeMetrics renders the Prometheus text exposition format (v0.0.4) by
// hand: serve-level request counters, engine calibration-cache stats, the
// folded obs counters, and per-phase count/seconds. The counter/gauge data
// lives in the job core; this file is only the text rendering.
func (s *Server) writeMetrics(w io.Writer) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	met := s.core.Counters()
	counter("latchchard_requests_total", "Characterize and batch requests received.", float64(met.Requests.Load()))
	counter("latchchard_jobs_done_total", "Jobs finished successfully.", float64(met.JobsDone.Load()))
	counter("latchchard_jobs_failed_total", "Jobs finished with an error.", float64(met.JobsFailed.Load()))
	counter("latchchard_jobs_canceled_total", "Jobs canceled by drain or timeout.", float64(met.JobsCanceled.Load()))
	counter("latchchard_requests_coalesced_total", "Requests attached to an identical in-flight job.", float64(met.Coalesced.Load()))
	counter("latchchard_result_cache_hits_total", "Requests served from the result cache.", float64(met.ResultCacheHits.Load()))
	counter("latchchard_rejected_queue_full_total", "Requests rejected with 429 because the job queue was full.", float64(met.RejectedFull.Load()))
	counter("latchchard_rejected_draining_total", "Requests rejected with 503 while draining.", float64(met.RejectedDraining.Load()))

	snap := s.core.Snapshot()
	gauge("latchchard_queue_depth", "Jobs waiting in the bounded queue.", float64(snap.QueueDepth))
	gauge("latchchard_inflight_jobs", "Distinct coalescing keys currently queued or running.", float64(snap.InflightKeys))
	drainVal := 0.0
	if snap.Draining {
		drainVal = 1
	}
	gauge("latchchard_draining", "1 while the server refuses new work.", drainVal)

	counter("latchchard_calibration_cache_hits_total", "Engine calibration LRU hits.", float64(snap.CalibrationCacheHits))
	counter("latchchard_calibration_cache_misses_total", "Engine calibration LRU misses.", float64(snap.CalibrationCacheMisses))

	sum := s.core.Summary()
	names := make([]string, 0, len(sum.Counters))
	for name := range sum.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		counter("latchchard_obs_"+name+"_total",
			"Observability counter "+name+" summed over finished jobs.",
			float64(sum.Counters[name]))
	}
	for _, p := range sum.Phases {
		counter("latchchard_phase_"+p.Name+"_count_total",
			"Completed "+p.Name+" spans over finished jobs.", float64(p.Count))
		counter("latchchard_phase_"+p.Name+"_seconds_total",
			"Wall-clock seconds in "+p.Name+" spans over finished jobs.",
			p.Total.Seconds())
	}

	// Iteration-count histograms (Newton/corrector/chord) as native
	// Prometheus histograms: obs buckets are exact small integers 1..16 plus
	// overflow, rendered as cumulative le bounds.
	for _, hs := range sum.Hists {
		name := "latchchard_obs_" + hs.Name
		fmt.Fprintf(w, "# HELP %s Distribution of %s over finished jobs.\n# TYPE %s histogram\n",
			name, hs.Name, name)
		var cum int64
		for i := 0; i < len(hs.Hist.Buckets)-1; i++ {
			cum += hs.Hist.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, i+1, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, hs.Hist.Count)
		fmt.Fprintf(w, "%s_sum %d\n", name, hs.Hist.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, hs.Hist.Count)
	}

	// Per-endpoint request-duration histogram.
	s.rt.Latency().WritePrometheus(w, "latchchard_request_seconds")

	// Runtime self-telemetry (last sampler reading).
	rt, _ := s.core.RuntimeStats()
	gauge("latchchard_goroutines", "Goroutines at the last runtime sample.", float64(rt.Goroutines))
	gauge("latchchard_heap_bytes", "Live heap bytes at the last runtime sample.", float64(rt.HeapBytes))
	counter("latchchard_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", float64(rt.GCPauseNs)/1e9)
	gauge("latchchard_sched_latency_p99_seconds", "p99 goroutine scheduling latency since process start.", float64(rt.SchedP99Ns)/1e9)
}
