package serve

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintMetrics checks a Prometheus text-exposition (v0.0.4) payload the way
// `promtool check metrics` would, without the dependency: every sample
// belongs to a family with HELP and TYPE metadata, names and labels are
// well-formed, no (name, labels) series repeats, and histogram families are
// complete — cumulative non-decreasing _bucket series ending in le="+Inf",
// with _sum and _count matching the +Inf bucket. The servesmoke CI step and
// the serve tests run it over /metrics output.
func LintMetrics(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	types := map[string]string{} // family -> TYPE
	helped := map[string]bool{}
	seen := map[string]bool{}            // "name{labels}" series dedup
	samples := map[string][]promSample{} // metric name -> samples
	line := 0

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("metrics line %d: invalid metric name %q", line, name)
			}
			if fields[1] == "HELP" {
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					return fmt.Errorf("metrics line %d: empty HELP for %s", line, name)
				}
				helped[name] = true
				continue
			}
			if len(fields) < 4 {
				return fmt.Errorf("metrics line %d: TYPE without a type for %s", line, name)
			}
			typ := strings.TrimSpace(fields[3])
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("metrics line %d: unknown TYPE %q for %s", line, typ, name)
			}
			if prev, dup := types[name]; dup && prev != typ {
				return fmt.Errorf("metrics line %d: %s re-typed %s -> %s", line, name, prev, typ)
			}
			types[name] = typ
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("metrics line %d: %w", line, err)
		}
		family := familyOf(name, types)
		if family == "" {
			return fmt.Errorf("metrics line %d: sample %s has no TYPE metadata", line, name)
		}
		if !helped[family] {
			return fmt.Errorf("metrics line %d: sample %s has no HELP metadata", line, family)
		}
		series := name + "{" + canonicalLabels(labels) + "}"
		if seen[series] {
			return fmt.Errorf("metrics line %d: duplicate series %s", line, series)
		}
		seen[series] = true
		samples[name] = append(samples[name], promSample{labels: labels, value: value})
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading metrics: %w", err)
	}

	// Histogram completeness per family, per label set (minus le).
	for family, typ := range types {
		if typ != "histogram" {
			continue
		}
		buckets := map[string][]promSample{} // groupKey -> le buckets
		for _, sm := range samples[family+"_bucket"] {
			le, ok := sm.labels["le"]
			if !ok {
				return fmt.Errorf("metrics: %s_bucket series missing le label", family)
			}
			group := canonicalLabelsExcept(sm.labels, "le")
			if _, err := parseLe(le); err != nil {
				return fmt.Errorf("metrics: %s_bucket: %w", family, err)
			}
			buckets[group] = append(buckets[group], sm)
		}
		if len(buckets) == 0 {
			return fmt.Errorf("metrics: histogram %s has no _bucket series", family)
		}
		counts := groupValues(samples[family+"_count"])
		sums := groupValues(samples[family+"_sum"])
		for group, bs := range buckets {
			sort.Slice(bs, func(i, j int) bool {
				li, _ := parseLe(bs[i].labels["le"])
				lj, _ := parseLe(bs[j].labels["le"])
				return li < lj
			})
			last := bs[len(bs)-1]
			if last.labels["le"] != "+Inf" {
				return fmt.Errorf("metrics: histogram %s{%s} lacks le=\"+Inf\" bucket", family, group)
			}
			var prevCount float64
			var prevCounted bool
			for _, b := range bs {
				if prevCounted && b.value < prevCount {
					return fmt.Errorf("metrics: histogram %s{%s} bucket counts not cumulative at le=%s", family, group, b.labels["le"])
				}
				prevCount, prevCounted = b.value, true
			}
			cnt, ok := counts[group]
			if !ok {
				return fmt.Errorf("metrics: histogram %s{%s} lacks _count", family, group)
			}
			if _, ok := sums[group]; !ok {
				return fmt.Errorf("metrics: histogram %s{%s} lacks _sum", family, group)
			}
			if cnt != prevCount {
				return fmt.Errorf("metrics: histogram %s{%s}: _count %g != +Inf bucket %g", family, group, cnt, prevCount)
			}
		}
	}
	return nil
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelNameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

func validMetricName(s string) bool { return metricNameRe.MatchString(s) }

// familyOf resolves a sample name to its typed family: exact match, or the
// histogram/summary suffix conventions.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return ""
}

// parseSample splits `name{k="v",...} value` (labels optional).
func parseSample(text string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := text
	if i := strings.IndexByte(text, '{'); i >= 0 {
		name = text[:i]
		end := strings.LastIndexByte(text, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", text)
		}
		if err := parseLabels(text[i+1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(text[end+1:])
	} else {
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", text)
		}
		name = fields[0]
		rest = fields[1]
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	// A timestamp may follow the value; only the value is checked.
	valueField := strings.Fields(rest)
	if len(valueField) == 0 {
		return "", nil, 0, fmt.Errorf("sample %s has no value", name)
	}
	value, err = strconv.ParseFloat(valueField[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s: bad value %q", name, valueField[0])
	}
	return name, labels, value, nil
}

func parseLabels(s string, into map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("bad label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		var b strings.Builder
		i := 1
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(rest[i])
				default:
					return fmt.Errorf("label %s: bad escape \\%c", key, rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return fmt.Errorf("label %s value not terminated", key)
		}
		if _, dup := into[key]; dup {
			return fmt.Errorf("duplicate label %s", key)
		}
		into[key] = b.String()
		s = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

func canonicalLabelsExcept(labels map[string]string, drop string) string {
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != drop {
			cp[k] = v
		}
	}
	return canonicalLabels(cp)
}

func parseLe(le string) (float64, error) {
	if le == "+Inf" {
		return inf(), nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q", le)
	}
	return v, nil
}

func inf() float64 { return math.Inf(1) }

// promSample is one parsed sample line.
type promSample struct {
	labels map[string]string
	value  float64
}

// groupValues indexes _sum/_count samples by their canonical label set.
func groupValues(ss []promSample) map[string]float64 {
	out := map[string]float64{}
	for _, s := range ss {
		out[canonicalLabels(s.labels)] = s.value
	}
	return out
}
