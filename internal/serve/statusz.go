package serve

import (
	"net/http"
	"time"

	"latchchar/internal/serve/jobcore"
	"latchchar/serveclient"
)

// /v1/statusz: the human- and autoscaler-facing JSON snapshot — rolling
// latency quantiles over 1m/5m windows, queue and drain state, cache hit
// rates, and the latest runtime self-telemetry sample. /v1/metrics keeps the
// full since-start distributions; /v1/statusz answers "how is it doing right
// now". The wire type is serveclient.StatusZ.

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	snap := s.core.Snapshot()
	met := s.core.Counters()
	st := serveclient.StatusZ{
		UptimeMS:     jobcore.DurMS(now.Sub(s.core.Started())),
		Draining:     snap.Draining,
		QueueDepth:   snap.QueueDepth,
		QueueCap:     snap.QueueCap,
		InflightKeys: snap.InflightKeys,
		Workers:      snap.Workers,

		Requests:     met.Requests.Load(),
		JobsDone:     met.JobsDone.Load(),
		JobsFailed:   met.JobsFailed.Load(),
		JobsCanceled: met.JobsCanceled.Load(),
		Coalesced:    met.Coalesced.Load(),

		ResultCacheHits:        met.ResultCacheHits.Load(),
		CalibrationCacheHits:   snap.CalibrationCacheHits,
		CalibrationCacheMisses: snap.CalibrationCacheMisses,

		Latency: s.rt.Latency().WindowQuantiles(now),
	}
	if rt, at := s.core.RuntimeStats(); !at.IsZero() {
		st.Runtime = &serveclient.RuntimeJSON{
			Goroutines:   rt.Goroutines,
			HeapBytes:    rt.HeapBytes,
			GCPauseMS:    float64(rt.GCPauseNs) / 1e6,
			SchedP99US:   float64(rt.SchedP99Ns) / 1e3,
			SampledAgoMS: jobcore.DurMS(now.Sub(at)),
		}
	}
	s.json(w, http.StatusOK, st)
}
