package serve

import (
	"net/http"
	"time"

	"latchchar/internal/obs"
)

// /statusz: the human- and autoscaler-facing JSON snapshot — rolling latency
// quantiles over 1m/5m windows, queue and drain state, cache hit rates, and
// the latest runtime self-telemetry sample. /metrics keeps the full
// since-start distributions; /statusz answers "how is it doing right now".

// statusWindows are the rolling quantile windows reported on /statusz.
var statusWindows = []time.Duration{time.Minute, 5 * time.Minute}

// StatusZ is the /statusz response body.
type StatusZ struct {
	UptimeMS float64 `json:"uptime_ms"`
	Draining bool    `json:"draining"`

	QueueDepth   int `json:"queue_depth"`
	QueueCap     int `json:"queue_cap"`
	InflightKeys int `json:"inflight_keys"`
	Workers      int `json:"workers"`

	Requests     int64 `json:"requests"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`
	Coalesced    int64 `json:"coalesced"`

	ResultCacheHits       int64 `json:"result_cache_hits"`
	CalibrationCacheHits  int64 `json:"calibration_cache_hits"`
	CalibrationCacheMisses int64 `json:"calibration_cache_misses"`

	// Latency carries rolling p50/p95/p99 per route, one entry per
	// (route, window) pair with samples in the window.
	Latency []RouteQuantiles `json:"latency"`

	Runtime *RuntimeJSON `json:"runtime,omitempty"`
}

// RuntimeJSON is the latest runtime self-telemetry sample.
type RuntimeJSON struct {
	Goroutines   int     `json:"goroutines"`
	HeapBytes    uint64  `json:"heap_bytes"`
	GCPauseMS    float64 `json:"gc_pause_total_ms"`
	SchedP99US   float64 `json:"sched_latency_p99_us"`
	SampledAgoMS float64 `json:"sampled_ago_ms"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	queued := len(s.queue)
	inflight := len(s.inflight)
	draining := s.draining
	s.mu.Unlock()
	hits, misses := s.eng.CacheStats()
	st := StatusZ{
		UptimeMS:     durMS(now.Sub(s.started)),
		Draining:     draining,
		QueueDepth:   queued,
		QueueCap:     s.cfg.QueueDepth,
		InflightKeys: inflight,
		Workers:      s.cfg.Workers,

		Requests:     s.met.requests.Load(),
		JobsDone:     s.met.jobsDone.Load(),
		JobsFailed:   s.met.jobsFailed.Load(),
		JobsCanceled: s.met.jobsCanceled.Load(),
		Coalesced:    s.met.coalesced.Load(),

		ResultCacheHits:        s.met.cacheHits.Load(),
		CalibrationCacheHits:   hits,
		CalibrationCacheMisses: misses,

		Latency: []RouteQuantiles{},
	}
	for _, win := range statusWindows {
		st.Latency = append(st.Latency, s.lat.quantiles(now, win)...)
	}
	s.rtMu.Lock()
	if !s.rtAt.IsZero() {
		st.Runtime = &RuntimeJSON{
			Goroutines:   s.rtStats.Goroutines,
			HeapBytes:    s.rtStats.HeapBytes,
			GCPauseMS:    float64(s.rtStats.GCPauseNs) / 1e6,
			SchedP99US:   float64(s.rtStats.SchedP99Ns) / 1e3,
			SampledAgoMS: durMS(now.Sub(s.rtAt)),
		}
	}
	s.rtMu.Unlock()
	s.json(w, http.StatusOK, st)
}

// runtimeSampler periodically reads the Go runtime and (a) publishes the
// sample for /statusz and /metrics, (b) emits a runtime event into every
// live job's obs stream so a streamed trace shows the saturation it ran
// under. Exits when Drain closes sampStop.
func (s *Server) runtimeSampler() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RuntimeSampleInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sampleRuntime()
		case <-s.sampStop:
			return
		}
	}
}

func (s *Server) sampleRuntime() {
	st := obs.ReadRuntimeStats()
	s.rtMu.Lock()
	s.rtStats, s.rtAt = st, time.Now()
	s.rtMu.Unlock()
	s.mu.Lock()
	runs := make([]*obs.Run, 0, len(s.inflight))
	for _, j := range s.inflight {
		runs = append(runs, j.run)
	}
	s.mu.Unlock()
	// Outside s.mu: Run.Runtime takes the collector lock, which event
	// subscribers (job.capture) run under.
	for _, r := range runs {
		r.Runtime(st)
	}
}
