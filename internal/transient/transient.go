package transient

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"latchchar/internal/circuit"
	"latchchar/internal/num"
	"latchchar/internal/obs"
	"latchchar/internal/sparse"
)

// Method selects the integration scheme.
type Method int

const (
	// BE is first-order Backward Euler (default): L-stable, damps the
	// numerical ringing that TRAP can exhibit on stiff latch nodes.
	BE Method = iota
	// TRAP is the second-order trapezoidal rule.
	TRAP
)

func (m Method) String() string {
	if m == TRAP {
		return "trap"
	}
	return "be"
}

// ErrNewtonFailure indicates a time step whose Newton iteration did not
// converge. The grid is fixed (it must not depend on the skews), so the
// engine cannot retry with a smaller step; choose a finer grid instead.
var ErrNewtonFailure = errors.New("transient: Newton did not converge")

// ErrCanceled indicates a run stopped by context cancellation between time
// steps. Errors returned for canceled runs wrap both this sentinel and the
// context cause, so errors.Is works against either.
var ErrCanceled = errors.New("transient: run canceled")

// Options configure a transient run.
type Options struct {
	Method Method
	// Skews enables forward propagation of mₛ and m_h.
	Skews bool
	// MaxNewtonIter bounds the per-step Newton iterations (default 50).
	MaxNewtonIter int
	// VTol, ITol, RelTol define Newton convergence per unknown class.
	VTol, ITol, RelTol float64
	// Probes lists unknowns whose waveforms are recorded at every grid
	// point.
	Probes []circuit.UnknownID
	// Timing enables wall-clock attribution in Stats (LU, DeviceEval,
	// Sens). Attribution is also collected whenever an obs run is passed to
	// RunObs; with neither, only Stats.Wall is measured and the step loop
	// carries no timing overhead.
	Timing bool

	// Chord enables chord (modified-Newton) iterations: the Newton update is
	// back-substituted against the standing LU factorization — skipping the
	// Combine assembly and refactorization — for as long as the iteration
	// keeps contracting. The residual is always exact, so a converged chord
	// iteration satisfies the same tolerances as full Newton; a stalled or
	// diverging one transparently falls back to a full iteration on the same
	// residual. Chord also unlocks the sensitivity-factorization reuse below.
	Chord bool
	// ChordContraction is the contraction-rate threshold θ: a chord update
	// with ‖dx_k‖ > θ·‖dx_{k−1}‖ counts as a stall and forces the next
	// iteration to rebuild the Jacobian (default 0.5). Values ≥ 1 accept
	// non-contracting chord steps and are rejected by the options layer.
	ChordContraction float64
	// ChordMaxAge bounds how many back-substitutions one factorization may
	// serve before a rebuild is forced regardless of contraction (default 20).
	ChordMaxAge int
	// SensReuseTol is the total-iterate-drift tolerance (volts) under which a
	// Skews run reuses the standing factorization for the sensitivity solves
	// instead of building the converged-state one (default 1e-6). Only active
	// with Chord; reuses are counted in Stats.JacobianReuses.
	SensReuseTol float64
	// DeviceBypass enables the device-eval latency bypass: devices whose
	// terminal voltages moved less than BypassVTol since their last true
	// evaluation replay cached stamps (circuit.Eval.EnableBypass). The bypass
	// serves only the first Newton iteration of each step — quiescent steps,
	// where it pays — and is held for the rest of the step so a frozen
	// residual can never pin the iteration above the convergence tolerance.
	DeviceBypass bool
	// BypassVTol is the bypass terminal-voltage tolerance in volts
	// (default circuit.DefaultBypassVTol, 1 µV).
	BypassVTol float64
}

// Validate rejects option values the defaulting pass cannot repair:
// non-finite tolerances, a non-contracting chord threshold and negative
// iteration bounds. The zero value is valid — withDefaults fills every
// unset knob — and Options built from a validated stf.Config never trip it;
// RunCtx re-checks so hand-built engines fail fast instead of iterating on
// NaN.
func (o Options) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"VTol", o.VTol},
		{"ITol", o.ITol},
		{"RelTol", o.RelTol},
		{"ChordContraction", o.ChordContraction},
		{"SensReuseTol", o.SensReuseTol},
		{"BypassVTol", o.BypassVTol},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("transient: %s must be finite, got %g", f.name, f.v)
		}
	}
	if o.ChordContraction >= 1 {
		return fmt.Errorf("transient: ChordContraction must contract (θ < 1), got %g", o.ChordContraction)
	}
	if o.MaxNewtonIter < 0 || o.ChordMaxAge < 0 {
		return fmt.Errorf("transient: MaxNewtonIter and ChordMaxAge must be non-negative")
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.MaxNewtonIter <= 0 {
		o.MaxNewtonIter = 50
	}
	if o.VTol <= 0 {
		o.VTol = 1e-7
	}
	if o.ITol <= 0 {
		o.ITol = 1e-10
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-5
	}
	if o.ChordContraction <= 0 {
		o.ChordContraction = 0.5
	}
	if o.ChordMaxAge <= 0 {
		o.ChordMaxAge = 20
	}
	if o.SensReuseTol <= 0 {
		o.SensReuseTol = 1e-6
	}
	return o
}

// Stats counts the work done by a run; the characterization layers use it
// for the paper's cost comparisons.
type Stats struct {
	Steps          int
	NewtonIters    int
	Factorizations int
	SensSolves     int
	// SensFactorizationsReused counts steps whose sensitivity solves reused
	// the converged-state LU factorization instead of building their own —
	// the mechanism behind the paper's "essentially free gradient" (one
	// factorization serves both Newton and the mₛ/m_h solves, DESIGN §5).
	SensFactorizationsReused int
	// ChordIters counts Newton iterations served by a chord back-substitution
	// (no Combine, no refactorization); always ≤ NewtonIters.
	ChordIters int
	// JacobianReuses counts Skews steps whose sensitivity solves reused the
	// standing Newton factorization in place of a fresh converged-state one
	// (Options.SensReuseTol).
	JacobianReuses int
	// DeviceBypasses counts device evaluations replayed from cached stamps
	// by the latency bypass (Options.DeviceBypass).
	DeviceBypasses int

	// Block-transient accounting (BlockEngine; zero for scalar runs).
	// BlockSharedSteps counts lane-steps served by the shared exact prefix —
	// steps the follower lanes never had to integrate because every lane's
	// stimulus is bit-identical before the skews diverge. BlockPeelOffs
	// counts lanes that dropped out of a block on a Newton failure (they are
	// retried on the scalar path by the caller). BlockDonorReplays counts
	// device evaluations served by replaying the reference lane's stamp tape
	// into a follower (circuit.Eval.AtWithDonor).
	BlockSharedSteps  int
	BlockPeelOffs     int
	BlockDonorReplays int

	// Wall-clock attribution. Wall is always measured; LU (factorize +
	// solve), DeviceEval (model evaluation/assembly) and Sens (sensitivity
	// back-substitutions) are collected only when Options.Timing is set or
	// an obs run is attached, so the default step loop stays clean.
	Wall       time.Duration
	LU         time.Duration
	DeviceEval time.Duration
	Sens       time.Duration
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Steps += other.Steps
	s.NewtonIters += other.NewtonIters
	s.Factorizations += other.Factorizations
	s.SensSolves += other.SensSolves
	s.SensFactorizationsReused += other.SensFactorizationsReused
	s.ChordIters += other.ChordIters
	s.JacobianReuses += other.JacobianReuses
	s.DeviceBypasses += other.DeviceBypasses
	s.BlockSharedSteps += other.BlockSharedSteps
	s.BlockPeelOffs += other.BlockPeelOffs
	s.BlockDonorReplays += other.BlockDonorReplays
	s.Wall += other.Wall
	s.LU += other.LU
	s.DeviceEval += other.DeviceEval
	s.Sens += other.Sens
}

// Result holds the outcome of a transient run.
type Result struct {
	// Times is the grid (aliased, do not modify).
	Times []float64
	// Probes[i] is the waveform of Options.Probes[i] over Times.
	Probes [][]float64
	// X is the final state x(t_end).
	X []float64
	// Ms and Mh are the final sensitivities ∂x/∂τs and ∂x/∂τh when
	// Options.Skews is set, nil otherwise.
	Ms, Mh []float64
	// Stats reports the work done.
	Stats Stats
}

// Engine runs transient analyses of one finalized circuit. It owns all
// per-run scratch memory, so repeated runs (the characterization inner
// loop) do not allocate. An Engine is not safe for concurrent use.
type Engine struct {
	c    *circuit.Circuit
	ev   *circuit.Eval
	opts Options

	j          *sparse.CSR // α·C + G
	mapC, mapG []int
	lu         sparse.Reusable

	x, r, dx           []float64
	qPrev              []float64
	cPrev              *sparse.CSR
	qdotPrev           []float64 // TRAP only
	ms, mh             []float64
	msdotPrev, mhdot   []float64 // TRAP sensitivity derivative memory
	zsVec, zhVec, rhsS []float64
	scrA, scrB         []float64

	stats Stats

	// Chord-policy state. chordReady gates chord solves (set after every
	// fresh factorization, cleared on stall and at run start), chordAlpha is
	// the α the standing factorization was assembled with, and drift
	// accumulates the ‖dx‖∞ applied since the factorization was built — the
	// staleness measure for the sensitivity-factorization reuse.
	chordReady bool
	chordAlpha float64
	drift      float64

	// Per-run observability state (set by RunObs, cleared by default Run).
	timed      bool     // collect fine-grained wall-clock attribution
	hist       bool     // accumulate the per-step Newton histogram
	newtonHist obs.Hist // local accumulator, merged once per run
	chordHist  obs.Hist // chord iterations per step (steps that used any)
	prof       profLabels
}

// profLabels holds the prebuilt pprof label contexts; switching goroutine
// labels per phase is then a pointer swap, cheap enough for the step loop.
type profLabels struct {
	active        bool
	transient, lu context.Context
}

func (p *profLabels) init() {
	if p.transient != nil {
		return
	}
	p.transient = pprof.WithLabels(context.Background(), pprof.Labels("lcphase", "transient"))
	p.lu = pprof.WithLabels(context.Background(), pprof.Labels("lcphase", "lu"))
}

// NewEngine prepares an engine for the circuit with the given options.
func NewEngine(c *circuit.Circuit, opts Options) *Engine {
	return newEngine(c, opts, nil)
}

// newEngine builds an engine. With a non-nil proto — an engine of the same
// circuit — the union-pattern symbolic analysis is shared instead of being
// recomputed: the Jacobian aliases proto's RowPtr/Col structure with fresh
// values. Block lanes use this so one symbolic analysis serves the block.
func newEngine(c *circuit.Circuit, opts Options, proto *Engine) *Engine {
	o := opts.withDefaults()
	ev := c.NewEval()
	n := c.N()
	e := &Engine{
		c:     c,
		ev:    ev,
		opts:  o,
		x:     make([]float64, n),
		r:     make([]float64, n),
		dx:    make([]float64, n),
		qPrev: make([]float64, n),
		cPrev: nil,
		ms:    make([]float64, n),
		mh:    make([]float64, n),
	}
	if proto != nil {
		e.j = proto.j.PatternClone()
		e.mapC, e.mapG = proto.mapC, proto.mapG
	} else {
		e.j, e.mapC, e.mapG = sparse.UnionPattern(ev.C, ev.G)
	}
	e.cPrev = ev.C.Clone()
	if o.DeviceBypass {
		ev.EnableBypass(o.BypassVTol)
	}
	e.qdotPrev = make([]float64, n)
	e.msdotPrev = make([]float64, n)
	e.mhdot = make([]float64, n)
	e.zsVec = make([]float64, n)
	e.zhVec = make([]float64, n)
	e.rhsS = make([]float64, n)
	e.scrA = make([]float64, n)
	e.scrB = make([]float64, n)
	return e
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Run integrates from x0 at grid.Start() to grid.End(). x0 is copied.
func (e *Engine) Run(x0 []float64, grid Grid) (*Result, error) {
	return e.RunCtx(context.Background(), nil, x0, grid)
}

// RunObs is Run with observability attached: the simulation runs inside a
// "transient" span of run, integrator counters and the per-step Newton
// iteration histogram are published to it, and (when the run requests
// profile labels) the goroutine carries pprof phase labels so CPU profiles
// attribute time to the transient vs. LU phases. A nil run behaves exactly
// like Run and adds no allocations.
func (e *Engine) RunObs(run *obs.Run, x0 []float64, grid Grid) (*Result, error) {
	return e.RunCtx(context.Background(), run, x0, grid)
}

// RunCtx is RunObs with a cancellation context: the step loop checks ctx
// between time steps, so a canceled deadline stops the integration within
// one step instead of running the grid to completion. A canceled run
// returns an error wrapping ErrCanceled and the context cause; the partial
// state is discarded (transients are cheap relative to a characterization —
// cancellation granularity for partial *results* is the contour point, see
// internal/core). A Background context adds one channel-poll per step.
func (e *Engine) RunCtx(ctx context.Context, run *obs.Run, x0 []float64, grid Grid) (*Result, error) {
	if err := e.opts.Validate(); err != nil {
		return nil, err
	}
	e.timed = e.opts.Timing || run.Enabled()
	e.hist = run.Enabled()
	if e.hist {
		e.newtonHist.Reset()
		e.chordHist.Reset()
	}
	e.prof.active = run.ProfileLabelsEnabled()
	if e.prof.active {
		e.prof.init()
		pprof.SetGoroutineLabels(e.prof.transient)
		defer pprof.SetGoroutineLabels(context.Background())
	}
	sp := run.StartSpan(obs.SpanTransient)
	luF0, luR0 := e.lu.Factorizations, e.lu.Refactorizations
	res, err := e.run(ctx, x0, grid)
	if run.Enabled() {
		sp.Count(obs.CtrLUFactor, int64(e.lu.Factorizations-luF0))
		sp.Count(obs.CtrLURefactor, int64(e.lu.Refactorizations-luR0))
		if res != nil {
			st := res.Stats
			sp.Count(obs.CtrSteps, int64(st.Steps))
			sp.Count(obs.CtrNewtonIters, int64(st.NewtonIters))
			sp.Count(obs.CtrSensSolves, int64(st.SensSolves))
			sp.Count(obs.CtrSensFactReused, int64(st.SensFactorizationsReused))
			sp.Count(obs.CtrChordIters, int64(st.ChordIters))
			sp.Count(obs.CtrJacobianReuses, int64(st.JacobianReuses))
			sp.Count(obs.CtrDeviceBypasses, int64(st.DeviceBypasses))
		}
		sp.Merge(obs.HistNewtonIters, &e.newtonHist)
		sp.Merge(obs.HistChordIters, &e.chordHist)
	}
	sp.End()
	return res, err
}

func (e *Engine) run(ctx context.Context, x0 []float64, grid Grid) (*Result, error) {
	n := e.c.N()
	if len(x0) != n {
		return nil, fmt.Errorf("transient: x0 length %d, want %d", len(x0), n)
	}
	pts := grid.Points()
	res := &Result{
		Times:  pts,
		Probes: make([][]float64, len(e.opts.Probes)),
	}
	for i := range res.Probes {
		res.Probes[i] = make([]float64, len(pts))
	}
	record := func(k int) {
		for pi, id := range e.opts.Probes {
			if id == circuit.Ground {
				res.Probes[pi][k] = 0
			} else {
				res.Probes[pi][k] = e.x[id]
			}
		}
	}
	e.stats = Stats{}
	wall0 := time.Now()
	e.initAt(x0, pts[0])
	record(0)
	luF0, luR0 := e.lu.Factorizations, e.lu.Refactorizations
	byp0 := e.ev.Bypasses
	done := ctx.Done()
	for k := 1; k < len(pts); k++ {
		if done != nil {
			select {
			case <-done:
				return nil, fmt.Errorf("%w at t=%.6g s (step %d of %d): %w",
					ErrCanceled, pts[k], k, len(pts)-1, context.Cause(ctx))
			default:
			}
		}
		if err := e.step(pts[k-1], pts[k]); err != nil {
			return nil, fmt.Errorf("%w at t=%.6g s (step %d)", err, pts[k], k)
		}
		record(k)
	}
	res.X = append([]float64(nil), e.x...)
	if e.opts.Skews {
		res.Ms = append([]float64(nil), e.ms...)
		res.Mh = append([]float64(nil), e.mh...)
	}
	res.Stats = e.stats
	res.Stats.Steps = len(pts) - 1
	res.Stats.Factorizations = (e.lu.Factorizations - luF0) + (e.lu.Refactorizations - luR0)
	res.Stats.DeviceBypasses = e.ev.Bypasses - byp0
	res.Stats.Wall = time.Since(wall0)
	return res, nil
}

// initAt seeds the integrator state at t0: the initial assembly fills qPrev,
// cPrev and (for TRAP) the charge derivative qdot0 = −(f + src); the
// sensitivities start at zero because x0 is fixed independent of the skews
// (paper step 1c), with the TRAP derivative memory at −∂src/∂τ(t0), which
// vanishes while the data line is quiescent. The standing factorization (if
// any) predates this state, so the chord gate is reset: the first iteration
// factorizes fresh. Both the scalar run and the block lanes initialize
// through here.
func (e *Engine) initAt(x0 []float64, t0 float64) {
	n := e.c.N()
	copy(e.x, x0)
	e.evalAt(t0)
	copy(e.qPrev, e.ev.Q)
	if e.opts.Skews {
		// cPrev only feeds the sensitivity recursions (eqs. (11)–(14)).
		copy(e.cPrev.Val, e.ev.C.Val)
	}
	if e.opts.Method == TRAP {
		for i := 0; i < n; i++ {
			e.qdotPrev[i] = -(e.ev.F[i] + e.ev.Src[i])
		}
	}
	for i := 0; i < n; i++ {
		e.ms[i] = 0
		e.mh[i] = 0
	}
	if e.opts.Skews && e.opts.Method == TRAP {
		e.zeroZ()
		e.ev.AddSkewSens(t0, e.zsVec, e.zhVec)
		for i := 0; i < n; i++ {
			e.msdotPrev[i] = -e.zsVec[i]
			e.mhdot[i] = -e.zhVec[i]
		}
	}
	e.chordReady = false
	e.drift = 0
}

// evalAt wraps the device evaluation with optional wall-clock attribution.
func (e *Engine) evalAt(t float64) {
	if !e.timed {
		e.ev.At(e.x, t)
		return
	}
	t0 := time.Now()
	e.ev.At(e.x, t)
	e.stats.DeviceEval += time.Since(t0)
}

// factorSolve factorizes the assembled Jacobian and solves for the Newton
// update, with optional LU wall-clock attribution and pprof phase labels.
func (e *Engine) factorSolve() error {
	if e.prof.active {
		pprof.SetGoroutineLabels(e.prof.lu)
		defer pprof.SetGoroutineLabels(e.prof.transient)
	}
	if !e.timed {
		if err := e.lu.Factorize(e.j); err != nil {
			return err
		}
		e.lu.Solve(e.r, e.dx)
		return nil
	}
	t0 := time.Now()
	err := e.lu.Factorize(e.j)
	if err == nil {
		e.lu.Solve(e.r, e.dx)
	}
	e.stats.LU += time.Since(t0)
	return err
}

// solveOnly back-substitutes the residual against the standing factorization
// (a chord iteration): no assembly, no factorization.
func (e *Engine) solveOnly() {
	if e.prof.active {
		pprof.SetGoroutineLabels(e.prof.lu)
		defer pprof.SetGoroutineLabels(e.prof.transient)
	}
	if !e.timed {
		e.lu.Solve(e.r, e.dx)
		return
	}
	t0 := time.Now()
	e.lu.Solve(e.r, e.dx)
	e.stats.LU += time.Since(t0)
}

// factorize is factorSolve without the solve (the converged-state
// factorization the sensitivity solves reuse).
func (e *Engine) factorize() error {
	if e.prof.active {
		pprof.SetGoroutineLabels(e.prof.lu)
		defer pprof.SetGoroutineLabels(e.prof.transient)
	}
	if !e.timed {
		return e.lu.Factorize(e.j)
	}
	t0 := time.Now()
	err := e.lu.Factorize(e.j)
	e.stats.LU += time.Since(t0)
	return err
}

func (e *Engine) zeroZ() {
	for i := range e.zsVec {
		e.zsVec[i] = 0
		e.zhVec[i] = 0
	}
}

// sameAlpha reports whether the standing factorization's α matches the
// step's. Grid spacings of one phase can differ in the last ulp, so the
// comparison is relative rather than exact.
func sameAlpha(alpha, ref float64) bool {
	return math.Abs(alpha-ref) <= 1e-9*math.Abs(alpha)
}

// step advances the state from t0 to t1, updating x, qPrev, cPrev and the
// sensitivities in place.
func (e *Engine) step(t0, t1 float64) error {
	n := e.c.N()
	dt := t1 - t0
	var alpha float64 // J = alpha·C + G
	if e.opts.Method == TRAP {
		alpha = 2 / dt
	} else {
		alpha = 1 / dt
	}
	numNodes := e.c.NumNodes()
	chord := e.opts.Chord
	converged := false
	iters := 0
	chordIters := 0
	prevNorm := math.Inf(1) // ‖dx‖∞ of the previous iteration of this step
	for iter := 0; iter < e.opts.MaxNewtonIter; iter++ {
		if e.opts.DeviceBypass {
			// Replay only on the first iteration; later iterations evaluate
			// exactly so the residual can keep shrinking (bypass livelock).
			e.ev.HoldBypass(iter > 0)
		}
		e.evalAt(t1)
		// Residual — always exact, also under chord iterations, so the fast
		// path converges to the same solution as full Newton.
		switch e.opts.Method {
		case TRAP:
			for i := 0; i < n; i++ {
				e.r[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) - e.qdotPrev[i] + e.ev.F[i] + e.ev.Src[i]
			}
		default: // BE
			for i := 0; i < n; i++ {
				e.r[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) + e.ev.F[i] + e.ev.Src[i]
			}
		}
		// Chord path: back-substitute against the standing factorization and
		// keep the update only while it still contracts. A non-finite or
		// growing update is discarded and the same residual is redone as a
		// full Newton iteration — the transparent fallback.
		full := true
		if chord && e.chordReady && e.lu.Age < e.opts.ChordMaxAge && sameAlpha(alpha, e.chordAlpha) {
			e.solveOnly()
			nrm, finite := 0.0, true
			for i := 0; i < n; i++ {
				v := math.Abs(e.dx[i])
				if !num.IsFinite(v) {
					finite = false
					break
				}
				if v > nrm {
					nrm = v
				}
			}
			if finite && nrm <= prevNorm {
				full = false
				e.stats.ChordIters++
				chordIters++
				if nrm > e.opts.ChordContraction*prevNorm {
					// Stalling: keep this update but rebuild next iteration.
					e.chordReady = false
				}
			}
		}
		if full {
			sparse.Combine(e.j, alpha, e.ev.C, e.mapC, 1, e.ev.G, e.mapG)
			if err := e.factorSolve(); err != nil {
				return fmt.Errorf("transient: Jacobian factorization failed: %w", err)
			}
			e.chordReady = chord
			e.chordAlpha = alpha
			e.drift = 0
		}
		e.stats.NewtonIters++
		iters++
		conv := true
		nrm := 0.0
		for i := 0; i < n; i++ {
			if !num.IsFinite(e.dx[i]) {
				return ErrNewtonFailure
			}
			e.x[i] -= e.dx[i]
			ad := math.Abs(e.dx[i])
			if ad > nrm {
				nrm = ad
			}
			atol := e.opts.VTol
			if i >= numNodes {
				atol = e.opts.ITol
			}
			if ad > atol+e.opts.RelTol*math.Abs(e.x[i]) {
				conv = false
			}
		}
		prevNorm = nrm
		e.drift += nrm
		if conv {
			converged = true
			break
		}
	}
	if !converged {
		return ErrNewtonFailure
	}
	if e.hist {
		e.newtonHist.Observe(iters, 1)
		if chordIters > 0 {
			e.chordHist.Observe(chordIters, 1)
		}
	}

	if e.opts.Skews {
		// The sensitivity solves back-substitute against a factorization of
		// α·C + G at the converged state. Build it — unless the fast path is
		// on and the iterate barely drifted since the standing factorization
		// was assembled, in which case reusing it perturbs the sensitivities
		// by O(drift) only.
		if chord && e.drift <= e.opts.SensReuseTol && sameAlpha(alpha, e.chordAlpha) {
			e.stats.JacobianReuses++
		} else {
			e.evalAt(t1)
			sparse.Combine(e.j, alpha, e.ev.C, e.mapC, 1, e.ev.G, e.mapG)
			if err := e.factorize(); err != nil {
				return fmt.Errorf("transient: converged-state factorization failed: %w", err)
			}
			e.chordReady = chord
			e.chordAlpha = alpha
			e.drift = 0
		}

		e.zeroZ()
		e.ev.AddSkewSens(t1, e.zsVec, e.zhVec)
		var t0 time.Time
		if e.timed {
			t0 = time.Now()
		}
		switch e.opts.Method {
		case TRAP:
			e.sensTrap(alpha, &e.lu)
		default:
			e.sensBE(alpha, &e.lu)
		}
		if e.timed {
			e.stats.Sens += time.Since(t0)
		}
		// The sensitivity solves back-substitute against the factorization
		// above — no factorization of their own.
		e.stats.SensFactorizationsReused++
	}
	// With Skews off there is nothing to rebuild: the last Newton evaluation
	// already carries Q (and, for TRAP, F+Src) within the convergence
	// tolerance of the accepted state, so the converged-state eval and
	// factorization are elided entirely.

	if e.opts.Method == TRAP {
		for i := 0; i < n; i++ {
			e.qdotPrev[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) - e.qdotPrev[i]
		}
	}
	copy(e.qPrev, e.ev.Q)
	if e.opts.Skews {
		copy(e.cPrev.Val, e.ev.C.Val)
	}
	return nil
}

// sensBE advances the BE-discretized sensitivities (paper eq. (11)/(13)):
// (C/Δt + G)·m = (C_prev/Δt)·m_prev − ∂src/∂τ. The solves back-substitute
// against lu — the engine's own converged-state factorization on the scalar
// path, possibly a shared block factorization on the block path.
func (e *Engine) sensBE(alpha float64, lu *sparse.Reusable) {
	n := e.c.N()
	for i := 0; i < n; i++ {
		e.rhsS[i] = -e.zsVec[i]
	}
	e.cPrev.MulVecAdd(alpha, e.ms, e.rhsS)
	lu.Solve(e.rhsS, e.ms)

	for i := 0; i < n; i++ {
		e.rhsS[i] = -e.zhVec[i]
	}
	e.cPrev.MulVecAdd(alpha, e.mh, e.rhsS)
	lu.Solve(e.rhsS, e.mh)
	e.stats.SensSolves += 2
}

// sensTrap advances the TRAP-discretized sensitivities:
// (2C/Δt + G)·m = (2C_prev/Δt)·m_prev + mdot_prev − ∂src/∂τ, with the
// derivative memory mdot = d(q̇)/dτ propagated like q̇ itself.
func (e *Engine) sensTrap(alpha float64, lu *sparse.Reusable) {
	e.sensTrapOne(alpha, lu, e.ms, e.msdotPrev, e.zsVec)
	e.sensTrapOne(alpha, lu, e.mh, e.mhdot, e.zhVec)
	e.stats.SensSolves += 2
}

func (e *Engine) sensTrapOne(alpha float64, lu *sparse.Reusable, m, mdot, z []float64) {
	n := e.c.N()
	e.cPrev.MulVec(m, e.scrA) // C_prev·m_prev
	for i := 0; i < n; i++ {
		e.rhsS[i] = alpha*e.scrA[i] + mdot[i] - z[i]
	}
	lu.Solve(e.rhsS, m)
	e.ev.C.MulVec(m, e.scrB) // C_new·m_new
	for i := 0; i < n; i++ {
		mdot[i] = alpha*(e.scrB[i]-e.scrA[i]) - mdot[i]
	}
}
