package transient

import (
	"errors"
	"fmt"
	"math"

	"latchchar/internal/circuit"
	"latchchar/internal/num"
	"latchchar/internal/sparse"
)

// Method selects the integration scheme.
type Method int

const (
	// BE is first-order Backward Euler (default): L-stable, damps the
	// numerical ringing that TRAP can exhibit on stiff latch nodes.
	BE Method = iota
	// TRAP is the second-order trapezoidal rule.
	TRAP
)

func (m Method) String() string {
	if m == TRAP {
		return "trap"
	}
	return "be"
}

// ErrNewtonFailure indicates a time step whose Newton iteration did not
// converge. The grid is fixed (it must not depend on the skews), so the
// engine cannot retry with a smaller step; choose a finer grid instead.
var ErrNewtonFailure = errors.New("transient: Newton did not converge")

// Options configure a transient run.
type Options struct {
	Method Method
	// Skews enables forward propagation of mₛ and m_h.
	Skews bool
	// MaxNewtonIter bounds the per-step Newton iterations (default 50).
	MaxNewtonIter int
	// VTol, ITol, RelTol define Newton convergence per unknown class.
	VTol, ITol, RelTol float64
	// Probes lists unknowns whose waveforms are recorded at every grid
	// point.
	Probes []circuit.UnknownID
}

func (o Options) withDefaults() Options {
	if o.MaxNewtonIter <= 0 {
		o.MaxNewtonIter = 50
	}
	if o.VTol <= 0 {
		o.VTol = 1e-7
	}
	if o.ITol <= 0 {
		o.ITol = 1e-10
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-5
	}
	return o
}

// Stats counts the work done by a run; the characterization layers use it
// for the paper's cost comparisons.
type Stats struct {
	Steps          int
	NewtonIters    int
	Factorizations int
	SensSolves     int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Steps += other.Steps
	s.NewtonIters += other.NewtonIters
	s.Factorizations += other.Factorizations
	s.SensSolves += other.SensSolves
}

// Result holds the outcome of a transient run.
type Result struct {
	// Times is the grid (aliased, do not modify).
	Times []float64
	// Probes[i] is the waveform of Options.Probes[i] over Times.
	Probes [][]float64
	// X is the final state x(t_end).
	X []float64
	// Ms and Mh are the final sensitivities ∂x/∂τs and ∂x/∂τh when
	// Options.Skews is set, nil otherwise.
	Ms, Mh []float64
	// Stats reports the work done.
	Stats Stats
}

// Engine runs transient analyses of one finalized circuit. It owns all
// per-run scratch memory, so repeated runs (the characterization inner
// loop) do not allocate. An Engine is not safe for concurrent use.
type Engine struct {
	c    *circuit.Circuit
	ev   *circuit.Eval
	opts Options

	j          *sparse.CSR // α·C + G
	mapC, mapG []int
	lu         sparse.Reusable

	x, r, dx           []float64
	qPrev              []float64
	cPrev              *sparse.CSR
	qdotPrev           []float64 // TRAP only
	ms, mh             []float64
	msdotPrev, mhdot   []float64 // TRAP sensitivity derivative memory
	zsVec, zhVec, rhsS []float64
	scrA, scrB         []float64

	stats Stats
}

// NewEngine prepares an engine for the circuit with the given options.
func NewEngine(c *circuit.Circuit, opts Options) *Engine {
	o := opts.withDefaults()
	ev := c.NewEval()
	n := c.N()
	e := &Engine{
		c:     c,
		ev:    ev,
		opts:  o,
		x:     make([]float64, n),
		r:     make([]float64, n),
		dx:    make([]float64, n),
		qPrev: make([]float64, n),
		cPrev: nil,
		ms:    make([]float64, n),
		mh:    make([]float64, n),
	}
	e.j, e.mapC, e.mapG = sparse.UnionPattern(ev.C, ev.G)
	e.cPrev = ev.C.Clone()
	e.qdotPrev = make([]float64, n)
	e.msdotPrev = make([]float64, n)
	e.mhdot = make([]float64, n)
	e.zsVec = make([]float64, n)
	e.zhVec = make([]float64, n)
	e.rhsS = make([]float64, n)
	e.scrA = make([]float64, n)
	e.scrB = make([]float64, n)
	return e
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Run integrates from x0 at grid.Start() to grid.End(). x0 is copied.
func (e *Engine) Run(x0 []float64, grid Grid) (*Result, error) {
	n := e.c.N()
	if len(x0) != n {
		return nil, fmt.Errorf("transient: x0 length %d, want %d", len(x0), n)
	}
	pts := grid.Points()
	res := &Result{
		Times:  pts,
		Probes: make([][]float64, len(e.opts.Probes)),
	}
	for i := range res.Probes {
		res.Probes[i] = make([]float64, len(pts))
	}
	copy(e.x, x0)
	record := func(k int) {
		for pi, id := range e.opts.Probes {
			if id == circuit.Ground {
				res.Probes[pi][k] = 0
			} else {
				res.Probes[pi][k] = e.x[id]
			}
		}
	}
	record(0)

	// Initial assembly at (x0, t0) seeds qPrev, cPrev and, for TRAP, the
	// charge derivative qdot0 = −(f + src).
	e.ev.At(e.x, pts[0])
	copy(e.qPrev, e.ev.Q)
	copy(e.cPrev.Val, e.ev.C.Val)
	if e.opts.Method == TRAP {
		for i := 0; i < n; i++ {
			e.qdotPrev[i] = -(e.ev.F[i] + e.ev.Src[i])
		}
	}
	// Sensitivities start at zero: x0 is fixed independent of the skews
	// (paper step 1c). The TRAP derivative memory starts at −∂src/∂τ(t0),
	// which vanishes while the data line is quiescent.
	for i := 0; i < n; i++ {
		e.ms[i] = 0
		e.mh[i] = 0
	}
	if e.opts.Skews && e.opts.Method == TRAP {
		e.zeroZ()
		e.ev.AddSkewSens(pts[0], e.zsVec, e.zhVec)
		for i := 0; i < n; i++ {
			e.msdotPrev[i] = -e.zsVec[i]
			e.mhdot[i] = -e.zhVec[i]
		}
	}

	e.stats = Stats{}
	luF0, luR0 := e.lu.Factorizations, e.lu.Refactorizations
	for k := 1; k < len(pts); k++ {
		if err := e.step(pts[k-1], pts[k]); err != nil {
			return nil, fmt.Errorf("%w at t=%.6g s (step %d)", err, pts[k], k)
		}
		record(k)
	}
	res.X = append([]float64(nil), e.x...)
	if e.opts.Skews {
		res.Ms = append([]float64(nil), e.ms...)
		res.Mh = append([]float64(nil), e.mh...)
	}
	res.Stats = e.stats
	res.Stats.Steps = len(pts) - 1
	res.Stats.Factorizations = (e.lu.Factorizations - luF0) + (e.lu.Refactorizations - luR0)
	return res, nil
}

func (e *Engine) zeroZ() {
	for i := range e.zsVec {
		e.zsVec[i] = 0
		e.zhVec[i] = 0
	}
}

// step advances the state from t0 to t1, updating x, qPrev, cPrev and the
// sensitivities in place.
func (e *Engine) step(t0, t1 float64) error {
	n := e.c.N()
	dt := t1 - t0
	var alpha float64 // J = alpha·C + G
	if e.opts.Method == TRAP {
		alpha = 2 / dt
	} else {
		alpha = 1 / dt
	}
	numNodes := e.c.NumNodes()
	converged := false
	for iter := 0; iter < e.opts.MaxNewtonIter; iter++ {
		e.ev.At(e.x, t1)
		// Residual.
		switch e.opts.Method {
		case TRAP:
			for i := 0; i < n; i++ {
				e.r[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) - e.qdotPrev[i] + e.ev.F[i] + e.ev.Src[i]
			}
		default: // BE
			for i := 0; i < n; i++ {
				e.r[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) + e.ev.F[i] + e.ev.Src[i]
			}
		}
		sparse.Combine(e.j, alpha, e.ev.C, e.mapC, 1, e.ev.G, e.mapG)
		if err := e.lu.Factorize(e.j); err != nil {
			return fmt.Errorf("transient: Jacobian factorization failed: %w", err)
		}
		e.lu.Solve(e.r, e.dx)
		e.stats.NewtonIters++
		conv := true
		for i := 0; i < n; i++ {
			if !num.IsFinite(e.dx[i]) {
				return ErrNewtonFailure
			}
			e.x[i] -= e.dx[i]
			atol := e.opts.VTol
			if i >= numNodes {
				atol = e.opts.ITol
			}
			if math.Abs(e.dx[i]) > atol+e.opts.RelTol*math.Abs(e.x[i]) {
				conv = false
			}
		}
		if conv {
			converged = true
			break
		}
	}
	if !converged {
		return ErrNewtonFailure
	}

	// Final assembly at the converged state: exact C, G for the sensitivity
	// solves and the next step's charge history.
	e.ev.At(e.x, t1)
	sparse.Combine(e.j, alpha, e.ev.C, e.mapC, 1, e.ev.G, e.mapG)
	if err := e.lu.Factorize(e.j); err != nil {
		return fmt.Errorf("transient: converged-state factorization failed: %w", err)
	}

	if e.opts.Skews {
		e.zeroZ()
		e.ev.AddSkewSens(t1, e.zsVec, e.zhVec)
		switch e.opts.Method {
		case TRAP:
			e.sensTrap(alpha)
		default:
			e.sensBE(alpha)
		}
	}

	if e.opts.Method == TRAP {
		for i := 0; i < n; i++ {
			e.qdotPrev[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) - e.qdotPrev[i]
		}
	}
	copy(e.qPrev, e.ev.Q)
	copy(e.cPrev.Val, e.ev.C.Val)
	return nil
}

// sensBE advances the BE-discretized sensitivities (paper eq. (11)/(13)):
// (C/Δt + G)·m = (C_prev/Δt)·m_prev − ∂src/∂τ.
func (e *Engine) sensBE(alpha float64) {
	n := e.c.N()
	for i := 0; i < n; i++ {
		e.rhsS[i] = -e.zsVec[i]
	}
	e.cPrev.MulVecAdd(alpha, e.ms, e.rhsS)
	e.lu.Solve(e.rhsS, e.ms)

	for i := 0; i < n; i++ {
		e.rhsS[i] = -e.zhVec[i]
	}
	e.cPrev.MulVecAdd(alpha, e.mh, e.rhsS)
	e.lu.Solve(e.rhsS, e.mh)
	e.stats.SensSolves += 2
}

// sensTrap advances the TRAP-discretized sensitivities:
// (2C/Δt + G)·m = (2C_prev/Δt)·m_prev + mdot_prev − ∂src/∂τ, with the
// derivative memory mdot = d(q̇)/dτ propagated like q̇ itself.
func (e *Engine) sensTrap(alpha float64) {
	e.sensTrapOne(alpha, e.ms, e.msdotPrev, e.zsVec)
	e.sensTrapOne(alpha, e.mh, e.mhdot, e.zhVec)
	e.stats.SensSolves += 2
}

func (e *Engine) sensTrapOne(alpha float64, m, mdot, z []float64) {
	n := e.c.N()
	e.cPrev.MulVec(m, e.scrA) // C_prev·m_prev
	for i := 0; i < n; i++ {
		e.rhsS[i] = alpha*e.scrA[i] + mdot[i] - z[i]
	}
	e.lu.Solve(e.rhsS, m)
	e.ev.C.MulVec(m, e.scrB) // C_new·m_new
	for i := 0; i < n; i++ {
		mdot[i] = alpha*(e.scrB[i]-e.scrA[i]) - mdot[i]
	}
}
