package transient

import (
	"math"
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/solver"
	"latchchar/internal/wave"
)

// buildClockedInverter builds the nonlinear CMOS inverter used by the
// fast-path tests: a clock-driven input so successive steps alternate
// between quiescent stretches (where chord and bypass shine) and sharp
// transitions (where the fallback must engage).
func buildClockedInverter(t *testing.T) (*circuit.Circuit, circuit.UnknownID, []float64) {
	t.Helper()
	ckt := circuit.New()
	vddN := ckt.Node("vdd")
	in := ckt.Node("in")
	out := ckt.Node("out")
	addV := func(name string, p circuit.UnknownID, w wave.Waveform, role device.SourceRole) {
		v, err := device.NewVSource(name, p, circuit.Ground, w, role)
		if err != nil {
			t.Fatal(err)
		}
		ckt.AddDevice(v)
	}
	clk := wave.Clock{Low: 0, High: 2.5, Period: 4e-9, Delay: 1e-9, Rise: 0.1e-9, Fall: 0.1e-9, Shape: wave.RampSmooth}
	addV("vdd", vddN, wave.DC(2.5), device.RoleSupply)
	addV("vin", in, clk, device.RoleClock)
	nm := device.MOSModel{Type: device.NMOS, VT0: 0.43, KP: 115e-6, Lambda: 0.06, Cox: 6e-3, CJ: 1e-9}
	pm := device.MOSModel{Type: device.PMOS, VT0: 0.40, KP: 30e-6, Lambda: 0.10, Cox: 6e-3, CJ: 1e-9}
	mp, err := device.NewMOSFET("mp", out, in, vddN, vddN, pm, 8e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(mp)
	mn, err := device.NewMOSFET("mn", out, in, circuit.Ground, circuit.Ground, nm, 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(mn)
	cl, err := device.NewCapacitor("cl", out, circuit.Ground, 20e-15)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(cl)
	if err := ckt.Finalize(); err != nil {
		t.Fatal(err)
	}
	x0, _, err := solver.DCOperatingPoint(ckt, 0, nil, solver.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ckt, out, x0
}

// TestPlainStepElidesConvergedFactorization pins the satellite bugfix: with
// Skews off the per-step converged-state eval + factorization is gone, so a
// plain run factorizes exactly once per Newton iteration — a drop of one
// factorization per step versus the old unconditional behavior. A Skews run
// (without the fast path) keeps the converged-state factorization.
func TestPlainStepElidesConvergedFactorization(t *testing.T) {
	ckt, _, x0 := buildClockedInverter(t)
	g, err := UniformGrid(0, 4e-9, 400)
	if err != nil {
		t.Fatal(err)
	}

	res, err := NewEngine(ckt, Options{}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Factorizations != res.Stats.NewtonIters {
		t.Errorf("plain run: %d factorizations, want exactly NewtonIters = %d (converged-state factorization not elided)",
			res.Stats.Factorizations, res.Stats.NewtonIters)
	}

	resS, err := NewEngine(ckt, Options{Skews: true}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	if want := resS.Stats.NewtonIters + resS.Stats.Steps; resS.Stats.Factorizations != want {
		t.Errorf("skews run: %d factorizations, want NewtonIters+Steps = %d", resS.Stats.Factorizations, want)
	}
	if resS.Stats.JacobianReuses != 0 {
		t.Errorf("skews run without chord reused %d Jacobians, want 0", resS.Stats.JacobianReuses)
	}
}

// TestChordMatchesFullNewton runs the same nonlinear transient exact and
// with the full fast path (chord + device bypass) and requires the fast
// path to (a) agree with the exact solution within Newton-tolerance scale,
// (b) actually engage, and (c) save factorizations.
func TestChordMatchesFullNewton(t *testing.T) {
	ckt, out, x0 := buildClockedInverter(t)
	g, err := UniformGrid(0, 4e-9, 400)
	if err != nil {
		t.Fatal(err)
	}

	exact, err := NewEngine(ckt, Options{}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEngine(ckt, Options{Chord: true, DeviceBypass: true}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}

	var maxDiff float64
	for i := range exact.X {
		if d := math.Abs(exact.X[i] - fast.X[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Errorf("fast-path final state deviates by %.3g V from exact (out exact %.6f, fast %.6f)",
			maxDiff, exact.X[out], fast.X[out])
	}
	if fast.Stats.ChordIters == 0 {
		t.Error("fast path never took a chord iteration")
	}
	if fast.Stats.DeviceBypasses == 0 {
		t.Error("fast path never bypassed a device evaluation")
	}
	if fast.Stats.Factorizations >= exact.Stats.Factorizations {
		t.Errorf("fast path used %d factorizations, exact used %d — no saving",
			fast.Stats.Factorizations, exact.Stats.Factorizations)
	}
	t.Logf("factorizations: exact %d, fast %d (%.0f%% fewer); chord iters %d/%d, bypasses %d",
		exact.Stats.Factorizations, fast.Stats.Factorizations,
		100*(1-float64(fast.Stats.Factorizations)/float64(exact.Stats.Factorizations)),
		fast.Stats.ChordIters, fast.Stats.NewtonIters, fast.Stats.DeviceBypasses)
}

// TestChordSensitivityReuse checks the Skews-side fast path: sensitivities
// from a chord run with Jacobian reuse must track the exact-path
// sensitivities, and at least some quiescent steps must reuse the standing
// factorization instead of building the converged-state one.
func TestChordSensitivityReuse(t *testing.T) {
	ckt := circuit.New()
	in := ckt.Node("in")
	mid := ckt.Node("mid")
	dp, err := wave.NewDataPulse(5e-9, 0, 2.5, 0.1e-9, 0.1e-9, wave.RampSmooth)
	if err != nil {
		t.Fatal(err)
	}
	dp.SetSkews(500e-12, 400e-12)
	vs, err := device.NewVSource("vin", in, circuit.Ground, dp, device.RoleData)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(vs)
	r, err := device.NewResistor("r", in, mid, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(r)
	c, err := device.NewCapacitor("c", mid, circuit.Ground, 0.1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(c)
	if err := ckt.Finalize(); err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, ckt.N())
	g, err := UniformGrid(0, 6e-9, 1200)
	if err != nil {
		t.Fatal(err)
	}

	exact, err := NewEngine(ckt, Options{Skews: true}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEngine(ckt, Options{Skews: true, Chord: true}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Stats.JacobianReuses == 0 {
		t.Error("chord+skews run never reused a factorization for the sensitivity solves")
	}
	if fast.Stats.Factorizations >= exact.Stats.Factorizations {
		t.Errorf("chord+skews used %d factorizations, exact used %d — no saving",
			fast.Stats.Factorizations, exact.Stats.Factorizations)
	}
	for i := range exact.Ms {
		scale := math.Max(math.Abs(exact.Ms[i]), 1)
		if d := math.Abs(exact.Ms[i]-fast.Ms[i]) / scale; d > 1e-3 {
			t.Errorf("ms[%d]: exact %.6g, fast %.6g (rel diff %.3g)", i, exact.Ms[i], fast.Ms[i], d)
		}
		scale = math.Max(math.Abs(exact.Mh[i]), 1)
		if d := math.Abs(exact.Mh[i]-fast.Mh[i]) / scale; d > 1e-3 {
			t.Errorf("mh[%d]: exact %.6g, fast %.6g (rel diff %.3g)", i, exact.Mh[i], fast.Mh[i], d)
		}
	}
	t.Logf("jacobian reuses %d/%d steps; factorizations exact %d, fast %d",
		fast.Stats.JacobianReuses, fast.Stats.Steps,
		exact.Stats.Factorizations, fast.Stats.Factorizations)
}

// TestChordStallFallsBackOnStiffStep drives the nonlinear inverter with a
// deliberately coarse grid: every step crosses a large part of a transition,
// so chord iterations against the stale Jacobian stall and the engine must
// transparently fall back to full Newton — converging everywhere, with some
// chord iterations taken and no ErrNewtonFailure.
func TestChordStallFallsBackOnStiffStep(t *testing.T) {
	ckt, _, x0 := buildClockedInverter(t)
	// 200 ps steps against 100 ps edges: the input slews rail-to-rail within
	// a single step.
	g, err := UniformGrid(0, 4e-9, 20)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewEngine(ckt, Options{}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEngine(ckt, Options{Chord: true}).Run(x0, g)
	if err != nil {
		t.Fatalf("chord run failed on stiff grid (fallback broken): %v", err)
	}
	if fast.Stats.ChordIters == 0 {
		t.Error("stiff chord run took no chord iterations at all")
	}
	// Fallback means full factorizations still happen after stalls.
	if fast.Stats.Factorizations == 0 {
		t.Error("stiff chord run never rebuilt the Jacobian")
	}
	var maxDiff float64
	for i := range exact.X {
		if d := math.Abs(exact.X[i] - fast.X[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Errorf("stiff chord run deviates by %.3g V from exact", maxDiff)
	}
}

// TestDeviceBypassAccuracy isolates the bypass: same transient with and
// without DeviceBypass (no chord), requiring bypasses to happen and the
// waveform to agree within the bypass tolerance scale.
func TestDeviceBypassAccuracy(t *testing.T) {
	ckt, out, x0 := buildClockedInverter(t)
	g, err := UniformGrid(0, 4e-9, 400)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewEngine(ckt, Options{Probes: []circuit.UnknownID{out}}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEngine(ckt, Options{Probes: []circuit.UnknownID{out}, DeviceBypass: true}).Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Stats.DeviceBypasses == 0 {
		t.Error("no device evaluations bypassed on a mostly-quiescent clocked waveform")
	}
	var maxDiff float64
	for k := range exact.Probes[0] {
		if d := math.Abs(exact.Probes[0][k] - fast.Probes[0][k]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Errorf("bypassed waveform deviates by %.3g V from exact", maxDiff)
	}
	t.Logf("device bypasses: %d; max waveform deviation %.3g V", fast.Stats.DeviceBypasses, maxDiff)
}
