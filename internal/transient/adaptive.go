package transient

import (
	"context"
	"errors"
	"fmt"
	"math"

	"latchchar/internal/circuit"
	"latchchar/internal/num"
	"latchchar/internal/sparse"
)

// Adaptive time stepping. Characterization transients must run on fixed,
// τ-independent grids (so h(τ) stays smooth), but one-off simulations —
// calibration sweeps, waveform dumps, netlist debugging — benefit from
// local-truncation-error control. The scheme is the classic SPICE one:
// predict the new state by polynomial extrapolation of the accepted
// history, correct with the implicit method, and use the
// predictor-corrector difference as the LTE estimate that accepts the step
// and picks the next step size.

// ErrStepLimit is returned when the adaptive run exceeds MaxSteps.
var ErrStepLimit = errors.New("transient: adaptive step limit exceeded")

// ErrStepUnderflow is returned when the controller cannot find an
// acceptable step above HMin.
var ErrStepUnderflow = errors.New("transient: adaptive step underflow")

// AdaptiveOptions configure an adaptive run.
type AdaptiveOptions struct {
	// Method selects BE (default) or TRAP.
	Method Method
	// RelTol and AbsTol define the per-node LTE acceptance test
	// (defaults 1e-3 and 1e-6 V).
	RelTol, AbsTol float64
	// HInit, HMin, HMax bound the step size (defaults: span/1e3, span/1e9,
	// span/20).
	HInit, HMin, HMax float64
	// MaxSteps bounds the accepted-step count (default 200000).
	MaxSteps int
	// MaxNewtonIter bounds the per-step Newton iterations (default 50).
	MaxNewtonIter int
	// Probes lists unknowns recorded at every accepted step.
	Probes []circuit.UnknownID
}

func (o AdaptiveOptions) withDefaults(span float64) AdaptiveOptions {
	if o.RelTol <= 0 {
		o.RelTol = 1e-3
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-6
	}
	if o.HInit <= 0 {
		o.HInit = span / 1e3
	}
	if o.HMin <= 0 {
		o.HMin = span / 1e9
	}
	if o.HMax <= 0 {
		o.HMax = span / 20
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200000
	}
	if o.MaxNewtonIter <= 0 {
		o.MaxNewtonIter = 50
	}
	return o
}

// AdaptiveResult is the outcome of an adaptive transient.
type AdaptiveResult struct {
	// Times are the accepted time points (including t0).
	Times []float64
	// Probes[i] is the waveform of Options.Probes[i] over Times.
	Probes [][]float64
	// X is the final state.
	X []float64
	// Stats counts the work; Steps counts accepted steps only.
	Stats Stats
	// Rejected counts LTE-rejected step attempts.
	Rejected int
}

// RunAdaptive integrates the circuit from x0 at t0 to t1 with LTE-based
// step control. The circuit must be finalized; x0 is not modified.
func RunAdaptive(ckt *circuit.Circuit, x0 []float64, t0, t1 float64, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return RunAdaptiveCtx(context.Background(), ckt, x0, t0, t1, opts)
}

// RunAdaptiveCtx is RunAdaptive with a cancellation context, checked between
// step attempts: a canceled run returns the waveform accepted so far together
// with an error wrapping context.Cause(ctx).
func RunAdaptiveCtx(ctx context.Context, ckt *circuit.Circuit, x0 []float64, t0, t1 float64, opts AdaptiveOptions) (*AdaptiveResult, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("transient: RunAdaptive needs t1 > t0")
	}
	n := ckt.N()
	if len(x0) != n {
		return nil, fmt.Errorf("transient: x0 length %d, want %d", len(x0), n)
	}
	o := opts.withDefaults(t1 - t0)
	ev := ckt.NewEval()
	j, mapC, mapG := sparse.UnionPattern(ev.C, ev.G)
	var lu sparse.Reusable

	x := append([]float64(nil), x0...)
	xPrev := append([]float64(nil), x0...) // state at the previous accepted point
	qPrev := make([]float64, n)
	qdotPrev := make([]float64, n)
	r := make([]float64, n)
	dx := make([]float64, n)
	pred := make([]float64, n)
	numNodes := ckt.NumNodes()

	res := &AdaptiveResult{Times: []float64{t0}}
	res.Probes = make([][]float64, len(o.Probes))
	record := func() {
		for pi, id := range o.Probes {
			v := 0.0
			if id != circuit.Ground {
				v = x[id]
			}
			res.Probes[pi] = append(res.Probes[pi], v)
		}
	}
	record()

	// Seed charge history at (x0, t0).
	ev.At(x, t0)
	copy(qPrev, ev.Q)
	for i := 0; i < n; i++ {
		qdotPrev[i] = -(ev.F[i] + ev.Src[i])
	}

	t := t0
	h := math.Min(o.HInit, t1-t0)
	hPrev := 0.0
	for t < t1 {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("transient: adaptive canceled at t=%g: %w", t, context.Cause(ctx))
		}
		if len(res.Times)-1 >= o.MaxSteps {
			return res, fmt.Errorf("%w at t=%g", ErrStepLimit, t)
		}
		if h < o.HMin {
			return res, fmt.Errorf("%w at t=%g (h=%g)", ErrStepUnderflow, t, h)
		}
		if t+h > t1 {
			h = t1 - t
		}
		tNew := t + h

		// Predictor: linear extrapolation from the last two accepted
		// points (constant for the first step).
		if hPrev > 0 {
			grow := h / hPrev
			for i := 0; i < n; i++ {
				pred[i] = x[i] + grow*(x[i]-xPrev[i])
			}
		} else {
			copy(pred, x)
		}

		// Corrector: implicit solve starting from the predictor.
		trial := append([]float64(nil), pred...)
		var alpha float64
		if o.Method == TRAP {
			alpha = 2 / h
		} else {
			alpha = 1 / h
		}
		converged := false
		for iter := 0; iter < o.MaxNewtonIter; iter++ {
			ev.At(trial, tNew)
			switch o.Method {
			case TRAP:
				for i := 0; i < n; i++ {
					r[i] = alpha*(ev.Q[i]-qPrev[i]) - qdotPrev[i] + ev.F[i] + ev.Src[i]
				}
			default:
				for i := 0; i < n; i++ {
					r[i] = alpha*(ev.Q[i]-qPrev[i]) + ev.F[i] + ev.Src[i]
				}
			}
			sparse.Combine(j, alpha, ev.C, mapC, 1, ev.G, mapG)
			if err := lu.Factorize(j); err != nil {
				return res, fmt.Errorf("transient: adaptive factorization: %w", err)
			}
			lu.Solve(r, dx)
			res.Stats.NewtonIters++
			conv := true
			for i := 0; i < n; i++ {
				if !num.IsFinite(dx[i]) {
					conv = false
					break
				}
				trial[i] -= dx[i]
				atol := 1e-7
				if i >= numNodes {
					atol = 1e-10
				}
				if math.Abs(dx[i]) > atol+1e-5*math.Abs(trial[i]) {
					conv = false
				}
			}
			if conv {
				converged = true
				break
			}
		}
		if !converged {
			res.Rejected++
			h /= 4
			continue
		}

		// LTE estimate from the predictor-corrector difference (node
		// voltages only; branch currents can jump with sources).
		errNorm := 0.0
		if hPrev > 0 {
			for i := 0; i < numNodes; i++ {
				e := math.Abs(trial[i]-pred[i]) / (o.AbsTol + o.RelTol*math.Abs(trial[i]))
				if e > errNorm {
					errNorm = e
				}
			}
		}
		if errNorm > 2 {
			// Reject and retry with a smaller step.
			res.Rejected++
			h *= math.Max(0.2, 0.9/math.Sqrt(errNorm))
			continue
		}

		// Accept.
		ev.At(trial, tNew)
		if o.Method == TRAP {
			for i := 0; i < n; i++ {
				qdotPrev[i] = alpha*(ev.Q[i]-qPrev[i]) - qdotPrev[i]
			}
		}
		copy(qPrev, ev.Q)
		copy(xPrev, x)
		copy(x, trial)
		hPrev = h
		t = tNew
		res.Times = append(res.Times, t)
		record()
		res.Stats.Steps++

		// Grow the step if comfortably accurate.
		if errNorm < 0.5 {
			factor := 2.0
			if errNorm > 0 {
				factor = math.Min(2, 0.9/math.Sqrt(errNorm))
			}
			h = math.Min(o.HMax, h*factor)
		}
	}
	res.X = x
	res.Stats.Factorizations = lu.Factorizations + lu.Refactorizations
	return res, nil
}
