package transient

import (
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/wave"
)

// benchCircuit builds an RC ladder of the given depth driven by a data
// pulse, exercising assembly, factorization and (optionally) sensitivities.
func benchCircuit(b *testing.B, stages int) (*circuit.Circuit, []float64) {
	b.Helper()
	ckt := circuit.New()
	dp, err := wave.NewDataPulse(5e-9, 0, 2.5, 0.1e-9, 0.1e-9, wave.RampSmooth)
	if err != nil {
		b.Fatal(err)
	}
	dp.SetSkews(500e-12, 400e-12)
	prev := ckt.Node("in")
	vs, err := device.NewVSource("vin", prev, circuit.Ground, dp, device.RoleData)
	if err != nil {
		b.Fatal(err)
	}
	ckt.AddDevice(vs)
	for i := 0; i < stages; i++ {
		next := ckt.Node("n" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		r, err := device.NewResistor("r", prev, next, 1e3)
		if err != nil {
			b.Fatal(err)
		}
		ckt.AddDevice(r)
		c, err := device.NewCapacitor("c", next, circuit.Ground, 0.1e-12)
		if err != nil {
			b.Fatal(err)
		}
		ckt.AddDevice(c)
		prev = next
	}
	if err := ckt.Finalize(); err != nil {
		b.Fatal(err)
	}
	return ckt, make([]float64, ckt.N())
}

func benchRun(b *testing.B, opts Options) {
	ckt, x0 := benchCircuit(b, 10)
	g, err := UniformGrid(0, 6e-9, 600)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(ckt, opts)
	var facts int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(x0, g)
		if err != nil {
			b.Fatal(err)
		}
		facts = res.Stats.Factorizations
	}
	b.ReportMetric(float64(facts), "factorizations")
}

func BenchmarkTransientBE(b *testing.B)            { benchRun(b, Options{}) }
func BenchmarkTransientTRAP(b *testing.B)          { benchRun(b, Options{Method: TRAP}) }
func BenchmarkTransientBESensitivity(b *testing.B) { benchRun(b, Options{Skews: true}) }

// Chord fast-path counterparts of the exact benchmarks above (the RC ladder
// has no bypassable devices, so only the chord half of the fast path runs).
func BenchmarkTransientBEChord(b *testing.B) { benchRun(b, Options{Chord: true}) }
func BenchmarkTransientBESensitivityChord(b *testing.B) {
	benchRun(b, Options{Skews: true, Chord: true})
}
