package transient

import (
	"errors"
	"math"
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/wave"
)

func TestAdaptiveRCAccuracy(t *testing.T) {
	const (
		R = 1e3
		C = 1e-12
		V = 1.0
	)
	tau := R * C
	ckt, out := buildRC(t, wave.DC(V), device.RoleSupply, R, C)
	x0 := make([]float64, ckt.N())
	x0[0] = V
	res, err := RunAdaptive(ckt, x0, 0, 5*tau, AdaptiveOptions{
		Method: TRAP, RelTol: 1e-4, AbsTol: 1e-7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := V * (1 - math.Exp(-5))
	if math.Abs(res.X[out]-want) > 5e-4 {
		t.Errorf("final value %v, want %v", res.X[out], want)
	}
	if res.Stats.Steps < 10 {
		t.Errorf("suspiciously few steps: %d", res.Stats.Steps)
	}
	// Times strictly increasing, ending exactly at t1.
	for i := 1; i < len(res.Times); i++ {
		if res.Times[i] <= res.Times[i-1] {
			t.Fatalf("times not increasing at %d", i)
		}
	}
	if res.Times[len(res.Times)-1] != 5*tau {
		t.Errorf("end time %v", res.Times[len(res.Times)-1])
	}
}

func TestAdaptiveTightensWithTolerance(t *testing.T) {
	ckt, out := buildRC(t, wave.DC(1), device.RoleSupply, 1e3, 1e-12)
	x0 := make([]float64, ckt.N())
	x0[0] = 1
	run := func(rtol float64) (float64, int) {
		res, err := RunAdaptive(ckt, x0, 0, 2e-9, AdaptiveOptions{RelTol: rtol, AbsTol: rtol * 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-2)
		return math.Abs(res.X[out] - want), res.Stats.Steps
	}
	errLoose, stepsLoose := run(1e-2)
	errTight, stepsTight := run(1e-5)
	if errTight >= errLoose {
		t.Errorf("tight tolerance not more accurate: %v vs %v", errTight, errLoose)
	}
	if stepsTight <= stepsLoose {
		t.Errorf("tight tolerance should take more steps: %d vs %d", stepsTight, stepsLoose)
	}
}

func TestAdaptiveConcentratesStepsAtEdges(t *testing.T) {
	// Driving an RC with a fast pulse: steps must cluster around the two
	// ramps and stretch out in the quiescent regions.
	dp, err := wave.NewDataPulse(5e-9, 0, 2.5, 0.1e-9, 0.1e-9, wave.RampSmooth)
	if err != nil {
		t.Fatal(err)
	}
	dp.SetSkews(1e-9, 1e-9)
	ckt, _ := buildRC(t, dp, device.RoleData, 1e3, 0.2e-12)
	x0 := make([]float64, ckt.N())
	res, err := RunAdaptive(ckt, x0, 0, 8e-9, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Count accepted points in the active window [3.8, 6.3] ns vs the
	// quiet prefix [0, 3.5] ns (same 2.5 ns width... roughly).
	active, quiet := 0, 0
	for _, tt := range res.Times {
		if tt > 3.8e-9 && tt < 6.3e-9 {
			active++
		}
		if tt < 3.5e-9 {
			quiet++
		}
	}
	if active < 2*quiet {
		t.Errorf("steps not concentrated at activity: active=%d quiet=%d", active, quiet)
	}
}

func TestAdaptiveProbesRecorded(t *testing.T) {
	ckt, out := buildRC(t, wave.DC(1), device.RoleSupply, 1e3, 1e-12)
	x0 := make([]float64, ckt.N())
	x0[0] = 1
	res, err := RunAdaptive(ckt, x0, 0, 1e-9, AdaptiveOptions{
		Probes: []circuit.UnknownID{out, circuit.Ground},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 2 {
		t.Fatal("probe count")
	}
	if len(res.Probes[0]) != len(res.Times) {
		t.Errorf("probe length %d vs %d times", len(res.Probes[0]), len(res.Times))
	}
	for _, v := range res.Probes[1] {
		if v != 0 {
			t.Fatal("ground probe nonzero")
		}
	}
	// RC charging is monotone.
	for i := 1; i < len(res.Probes[0]); i++ {
		if res.Probes[0][i] < res.Probes[0][i-1]-1e-9 {
			t.Fatalf("not monotone at %d", i)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	ckt, _ := buildRC(t, wave.DC(1), device.RoleSupply, 1e3, 1e-12)
	x0 := make([]float64, ckt.N())
	if _, err := RunAdaptive(ckt, x0, 1, 0, AdaptiveOptions{}); err == nil {
		t.Error("reversed interval accepted")
	}
	if _, err := RunAdaptive(ckt, []float64{0}, 0, 1e-9, AdaptiveOptions{}); err == nil {
		t.Error("bad x0 accepted")
	}
}

func TestAdaptiveStepLimit(t *testing.T) {
	ckt, _ := buildRC(t, wave.DC(1), device.RoleSupply, 1e3, 1e-12)
	x0 := make([]float64, ckt.N())
	x0[0] = 1
	_, err := RunAdaptive(ckt, x0, 0, 1e-9, AdaptiveOptions{MaxSteps: 3, HMax: 1e-12})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v", err)
	}
}

func TestAdaptiveMatchesFixedGridOnInverter(t *testing.T) {
	// Cross-check: adaptive and fine fixed-grid BE agree on a switching
	// CMOS inverter output.
	build := func() (*circuit.Circuit, circuit.UnknownID) {
		ckt := circuit.New()
		vddN := ckt.Node("vdd")
		in := ckt.Node("in")
		out := ckt.Node("out")
		clk := wave.Clock{Low: 0, High: 2.5, Period: 4e-9, Delay: 1e-9, Rise: 0.1e-9, Fall: 0.1e-9, Shape: wave.RampSmooth}
		for _, src := range []struct {
			name string
			node circuit.UnknownID
			w    wave.Waveform
			role device.SourceRole
		}{
			{"vdd", vddN, wave.DC(2.5), device.RoleSupply},
			{"vin", in, clk, device.RoleClock},
		} {
			v, err := device.NewVSource(src.name, src.node, circuit.Ground, src.w, src.role)
			if err != nil {
				t.Fatal(err)
			}
			ckt.AddDevice(v)
		}
		nm := device.MOSModel{Type: device.NMOS, VT0: 0.43, KP: 115e-6, Lambda: 0.06, Cox: 6e-3, CJ: 1e-9}
		pm := device.MOSModel{Type: device.PMOS, VT0: 0.40, KP: 30e-6, Lambda: 0.10, Cox: 6e-3, CJ: 1e-9}
		mp, err := device.NewMOSFET("mp", out, in, vddN, vddN, pm, 8e-6, 0.25e-6)
		if err != nil {
			t.Fatal(err)
		}
		ckt.AddDevice(mp)
		mn, err := device.NewMOSFET("mn", out, in, circuit.Ground, circuit.Ground, nm, 4e-6, 0.25e-6)
		if err != nil {
			t.Fatal(err)
		}
		ckt.AddDevice(mn)
		cl, err := device.NewCapacitor("cl", out, circuit.Ground, 20e-15)
		if err != nil {
			t.Fatal(err)
		}
		ckt.AddDevice(cl)
		if err := ckt.Finalize(); err != nil {
			t.Fatal(err)
		}
		return ckt, out
	}
	ckt, out := build()
	x0 := make([]float64, ckt.N())
	x0[0] = 2.5 // vdd node
	x0[out] = 2.5
	ad, err := RunAdaptive(ckt, x0, 0, 2e-9, AdaptiveOptions{RelTol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	ckt2, out2 := build()
	g, _ := UniformGrid(0, 2e-9, 4000)
	eng := NewEngine(ckt2, Options{})
	fx, err := eng.Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ad.X[out]-fx.X[out2]) > 0.02 {
		t.Errorf("adaptive %v vs fixed %v", ad.X[out], fx.X[out2])
	}
	if ad.Stats.Steps >= 4000 {
		t.Errorf("adaptive used %d steps, no better than fixed grid", ad.Stats.Steps)
	}
}
