package transient

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"latchchar/internal/circuit"
	"latchchar/internal/num"
	"latchchar/internal/obs"
	"latchchar/internal/sparse"
)

// BlockEngine advances K transients of one circuit in lockstep — the
// vectorized multi-point kernel of DESIGN §13. Each lane is a full scalar
// Engine (structure-of-arrays state: lane-major vectors, shared symbolic
// analysis via newEngine's prototype path), but the lanes cooperate:
//
//   - Shared exact prefix: the caller passes tSplit, the earliest time any
//     lane's stimulus can differ. Until then every lane is bit-identical, so
//     only the reference lane integrates and the followers inherit its state
//     at the fork — K−1 lane-steps saved per prefix step, counted in
//     Stats.BlockSharedSteps.
//   - Shared Jacobian: after the fork, follower Newton iterations first try a
//     chord back-substitution against the reference lane's standing
//     factorization (gated exactly like the scalar chord: α match, age,
//     contraction). Residuals stay exact per lane, so accepted solutions
//     satisfy the same tolerances as full Newton.
//   - Batched device evaluation: a follower's first Newton iteration offers
//     every bypassable device the reference lane's stamp tape
//     (circuit.Eval.AtWithDonor), amortizing MOSFET model math across lanes
//     whose terminal voltages agree within the bypass tolerance.
//   - Peel-off: a lane whose Newton iteration fails records its error and
//     drops out; the remaining lanes continue unharmed. Callers retry peeled
//     lanes on the scalar path.
//
// A BlockEngine is not safe for concurrent use.
type BlockEngine struct {
	c     *circuit.Circuit
	opts  Options
	lanes []*Engine
	// setLane installs lane k's stimulus parameters (the skews) on the shared
	// circuit before any of that lane's device evaluations. The lanes share
	// one Circuit whose data source is mutable state, so every burst of
	// lane-k work is preceded by setLane(k).
	setLane func(lane int)

	timed bool
	prof  profLabels
}

// NewBlockEngine prepares a k-lane block engine. setLane is invoked with a
// lane index before that lane evaluates any device; it must reconfigure the
// shared circuit's stimulus for that lane (and may be nil when all lanes
// share one stimulus). Lane 0's engine performs the symbolic analysis; the
// others alias its sparsity structure. Options.Probes is not supported on
// the block path (probes are a scalar-run concern) and must be empty.
func NewBlockEngine(c *circuit.Circuit, opts Options, k int, setLane func(lane int)) *BlockEngine {
	if k <= 0 {
		panic("transient: NewBlockEngine requires at least one lane")
	}
	if len(opts.Probes) != 0 {
		panic("transient: BlockEngine does not support Probes")
	}
	b := &BlockEngine{c: c, opts: opts.withDefaults(), setLane: setLane}
	b.lanes = make([]*Engine, k)
	b.lanes[0] = newEngine(c, opts, nil)
	for i := 1; i < k; i++ {
		b.lanes[i] = newEngine(c, opts, b.lanes[0])
	}
	return b
}

// Lanes returns the number of lanes.
func (b *BlockEngine) Lanes() int { return len(b.lanes) }

// Options returns the effective options shared by every lane.
func (b *BlockEngine) Options() Options { return b.opts }

// BlockResult holds the per-lane outcomes of a block run plus the aggregate
// work accounting. Lane k failed iff Errs[k] != nil, in which case X[k],
// Ms[k] and Mh[k] are nil.
type BlockResult struct {
	// X[k] is lane k's final state x(t_end).
	X [][]float64
	// Ms and Mh are the final sensitivities per lane when Options.Skews is
	// set, nil otherwise.
	Ms, Mh [][]float64
	// Errs[k] is lane k's Newton failure, nil for lanes that converged. A
	// failure before the fork (in the shared prefix, where all lanes are
	// identical) fails every lane.
	Errs []error
	// Stats aggregates the work of all lanes. Steps counts executed
	// lane-steps; BlockSharedSteps counts the lane-steps the prefix saved.
	Stats Stats
}

// Ok reports whether every lane converged.
func (r *BlockResult) Ok() bool {
	for _, err := range r.Errs {
		if err != nil {
			return false
		}
	}
	return true
}

// Run integrates every lane from x0 at grid.Start() to grid.End(). tSplit is
// the earliest time any lane's stimulus can differ from lane 0's: steps
// ending strictly before tSplit integrate the reference lane only (pass
// math.Inf(1) when all lanes are identical, 0 — or any t ≤ grid.Start() — to
// disable sharing). Lane Newton failures are reported per-lane in
// BlockResult.Errs; the returned error is non-nil only for invalid options,
// a bad x0, or cancellation.
func (b *BlockEngine) Run(x0 []float64, grid Grid, tSplit float64) (*BlockResult, error) {
	return b.RunCtx(context.Background(), nil, x0, grid, tSplit)
}

// RunCtx is Run with cancellation and observability: the block runs inside a
// "transient" span of run with block counters and the per-lane iteration
// histograms merged in, and a canceled ctx stops the lockstep loop between
// steps.
func (b *BlockEngine) RunCtx(ctx context.Context, run *obs.Run, x0 []float64, grid Grid, tSplit float64) (*BlockResult, error) {
	if err := b.opts.Validate(); err != nil {
		return nil, err
	}
	b.timed = b.opts.Timing || run.Enabled()
	hist := run.Enabled()
	for _, e := range b.lanes {
		e.timed = b.timed
		e.hist = hist
		if hist {
			e.newtonHist.Reset()
			e.chordHist.Reset()
		}
	}
	b.prof.active = run.ProfileLabelsEnabled()
	if b.prof.active {
		b.prof.init()
		for _, e := range b.lanes {
			e.prof = b.prof
		}
		pprof.SetGoroutineLabels(b.prof.transient)
		defer pprof.SetGoroutineLabels(context.Background())
	}
	var luF0, luR0 int
	for _, e := range b.lanes {
		luF0 += e.lu.Factorizations
		luR0 += e.lu.Refactorizations
	}
	sp := run.StartSpan(obs.SpanTransient)
	res, err := b.run(ctx, x0, grid, tSplit)
	if run.Enabled() {
		sp.Count(obs.CtrBlockRuns, 1)
		sp.Observe(obs.HistBlockSize, len(b.lanes))
		// Fresh symbolic factorizations and pattern-reusing refactorizations
		// are split across two counters, matching the scalar RunCtx (the
		// aggregate Stats.Factorizations remains their sum).
		var luF1, luR1 int
		for _, e := range b.lanes {
			luF1 += e.lu.Factorizations
			luR1 += e.lu.Refactorizations
		}
		sp.Count(obs.CtrLUFactor, int64(luF1-luF0))
		sp.Count(obs.CtrLURefactor, int64(luR1-luR0))
		if res != nil {
			st := res.Stats
			sp.Count(obs.CtrSteps, int64(st.Steps))
			sp.Count(obs.CtrNewtonIters, int64(st.NewtonIters))
			sp.Count(obs.CtrSensSolves, int64(st.SensSolves))
			sp.Count(obs.CtrSensFactReused, int64(st.SensFactorizationsReused))
			sp.Count(obs.CtrChordIters, int64(st.ChordIters))
			sp.Count(obs.CtrJacobianReuses, int64(st.JacobianReuses))
			sp.Count(obs.CtrDeviceBypasses, int64(st.DeviceBypasses))
			sp.Count(obs.CtrBlockPeelOffs, int64(st.BlockPeelOffs))
			sp.Count(obs.CtrBlockSharedSteps, int64(st.BlockSharedSteps))
			sp.Count(obs.CtrBlockDonorReplays, int64(st.BlockDonorReplays))
		}
		for _, e := range b.lanes {
			sp.Merge(obs.HistNewtonIters, &e.newtonHist)
			sp.Merge(obs.HistChordIters, &e.chordHist)
		}
	}
	sp.End()
	return res, err
}

func (b *BlockEngine) run(ctx context.Context, x0 []float64, grid Grid, tSplit float64) (*BlockResult, error) {
	n := b.c.N()
	if len(x0) != n {
		return nil, fmt.Errorf("transient: x0 length %d, want %d", len(x0), n)
	}
	K := len(b.lanes)
	pts := grid.Points()
	res := &BlockResult{
		X:    make([][]float64, K),
		Errs: make([]error, K),
	}
	if b.opts.Skews {
		res.Ms = make([][]float64, K)
		res.Mh = make([][]float64, K)
	}
	wall0 := time.Now()
	luF0 := make([]int, K)
	byp0 := make([]int, K)
	for j, e := range b.lanes {
		e.stats = Stats{}
		luF0[j] = e.lu.Factorizations + e.lu.Refactorizations
		byp0[j] = e.ev.Bypasses
	}

	// refIdx is the reference lane: it integrates the shared prefix alone,
	// steps first after the fork, and donates its factorization and stamp
	// tapes to the followers. It starts as lane 0 and is re-elected if lane 0
	// peels off.
	refIdx := 0
	dead := make([]bool, K)
	alive := K
	forked := false
	sharedSteps := 0
	stepsRun := 0

	b.lane(0)
	b.lanes[0].initAt(x0, pts[0])

	// fork brings the followers to the reference lane's state. After a shared
	// prefix the lanes were bit-identical up to here, so copying the
	// integrator state (and the sensitivities, exactly zero until the stimulus
	// support begins) is exact. With no prefix at all the lanes may already
	// differ at t0, so each initializes independently from x0 instead.
	fork := func(k int) {
		ref := b.lanes[0]
		for j := 1; j < K; j++ {
			e := b.lanes[j]
			if k == 1 {
				b.lane(j)
				e.initAt(x0, pts[0])
				continue
			}
			copy(e.x, ref.x)
			copy(e.qPrev, ref.qPrev)
			if e.opts.Skews {
				copy(e.cPrev.Val, ref.cPrev.Val)
			}
			if e.opts.Method == TRAP {
				copy(e.qdotPrev, ref.qdotPrev)
			}
			copy(e.ms, ref.ms)
			copy(e.mh, ref.mh)
			if e.opts.Skews && e.opts.Method == TRAP {
				copy(e.msdotPrev, ref.msdotPrev)
				copy(e.mhdot, ref.mhdot)
			}
			e.chordReady = false
			e.drift = 0
		}
		forked = true
	}

	done := ctx.Done()
	for k := 1; k < len(pts); k++ {
		if done != nil {
			select {
			case <-done:
				return nil, fmt.Errorf("%w at t=%.6g s (step %d of %d): %w",
					ErrCanceled, pts[k], k, len(pts)-1, context.Cause(ctx))
			default:
			}
		}
		t0, t1 := pts[k-1], pts[k]
		if !forked && t1 < tSplit {
			// Shared prefix: the lanes are still bit-identical, so one lane's
			// step stands in for all of them. The caller guarantees the
			// stimulus cannot differ before tSplit; the strict comparison
			// protects the step that lands exactly on the divergence time.
			b.lane(refIdx)
			if err := b.lanes[refIdx].step(t0, t1); err != nil {
				werr := fmt.Errorf("%w at t=%.6g s (step %d, shared prefix)", err, t1, k)
				for j := range dead {
					dead[j] = true
					res.Errs[j] = werr
				}
				alive = 0
				break
			}
			stepsRun++
			sharedSteps += K - 1
			continue
		}
		if !forked {
			fork(k)
		}
		// Lockstep: the reference lane steps first (scalar path — it owns the
		// shared factorization), then each follower steps with the reference
		// as donor.
		for _, j := range laneOrder(refIdx, K) {
			if dead[j] {
				continue
			}
			e := b.lanes[j]
			b.lane(j)
			var err error
			if j == refIdx {
				err = e.step(t0, t1)
			} else {
				err = b.stepFollower(e, b.lanes[refIdx], t0, t1)
			}
			stepsRun++
			if err != nil {
				// Peel-off: this lane is done, the block continues.
				dead[j] = true
				res.Errs[j] = fmt.Errorf("%w at t=%.6g s (step %d, lane %d)", err, t1, k, j)
				alive--
			}
		}
		if alive == 0 {
			break
		}
		if dead[refIdx] {
			for j := range dead {
				if !dead[j] {
					refIdx = j
					break
				}
			}
		}
	}
	if !forked && alive > 0 {
		fork(len(pts)) // degenerate: the whole grid was shared
	}

	var st Stats
	for j, e := range b.lanes {
		if !dead[j] {
			res.X[j] = append([]float64(nil), e.x...)
			if b.opts.Skews {
				res.Ms[j] = append([]float64(nil), e.ms...)
				res.Mh[j] = append([]float64(nil), e.mh...)
			}
		}
		st.Add(e.stats)
		st.Factorizations += e.lu.Factorizations + e.lu.Refactorizations - luF0[j]
		st.DeviceBypasses += e.ev.Bypasses - byp0[j]
	}
	st.Steps = stepsRun
	st.BlockSharedSteps = sharedSteps
	if alive > 0 {
		st.BlockPeelOffs = K - alive
	}
	st.Wall = time.Since(wall0)
	res.Stats = st
	return res, nil
}

// lane invokes the setLane hook for lane j.
func (b *BlockEngine) lane(j int) {
	if b.setLane != nil {
		b.setLane(j)
	}
}

// laneOrder yields lane indices with ref first; the followers keep their
// natural order.
func laneOrder(ref, k int) []int {
	order := make([]int, 0, k)
	order = append(order, ref)
	for j := 0; j < k; j++ {
		if j != ref {
			order = append(order, j)
		}
	}
	return order
}

// laneClose reports ‖a−b‖∞ ≤ tol.
func laneClose(a, b []float64, tol float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// stepFollower advances follower lane e from t0 to t1 with ref as the donor
// lane. It is Engine.step with two extra fast paths layered in front of the
// scalar ones:
//
//   - the first Newton iteration assembles via AtWithDonor, so devices whose
//     terminal voltages match the reference lane's tape snapshot replay the
//     reference's stamps instead of re-running model math;
//   - chord iterations try the reference lane's standing factorization
//     before the follower's own, under the same α/age/contraction gates.
//
// Residuals stay exact, so a converged follower satisfies the identical
// tolerances as the scalar path; on any non-contracting update the follower
// falls back to its own chord and then to full Newton, exactly like the
// scalar engine.
func (b *BlockEngine) stepFollower(e, ref *Engine, t0, t1 float64) error {
	n := e.c.N()
	dt := t1 - t0
	var alpha float64 // J = alpha·C + G
	if e.opts.Method == TRAP {
		alpha = 2 / dt
	} else {
		alpha = 1 / dt
	}
	numNodes := e.c.NumNodes()
	chord := e.opts.Chord
	converged := false
	iters := 0
	chordIters := 0
	prevNorm := math.Inf(1)
	// sharedOK gates chord solves against the reference lane's standing
	// factorization; usedShared remembers whether the follower's most recent
	// linear solve went through it (the sensitivity-reuse decision needs to
	// know which factorization the drift is measured against).
	sharedOK := chord && ref != e && ref.chordReady && sameAlpha(alpha, ref.chordAlpha)
	usedShared := false
	for iter := 0; iter < e.opts.MaxNewtonIter; iter++ {
		if e.opts.DeviceBypass {
			e.ev.HoldBypass(iter > 0)
		}
		if iter == 0 && e.opts.DeviceBypass && ref != e {
			if e.timed {
				tEval := time.Now()
				e.stats.BlockDonorReplays += e.ev.AtWithDonor(e.x, t1, ref.ev)
				e.stats.DeviceEval += time.Since(tEval)
			} else {
				e.stats.BlockDonorReplays += e.ev.AtWithDonor(e.x, t1, ref.ev)
			}
		} else {
			e.evalAt(t1)
		}
		// Residual — always exact, also under shared-Jacobian chord
		// iterations, so every lane converges to its own true solution.
		switch e.opts.Method {
		case TRAP:
			for i := 0; i < n; i++ {
				e.r[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) - e.qdotPrev[i] + e.ev.F[i] + e.ev.Src[i]
			}
		default: // BE
			for i := 0; i < n; i++ {
				e.r[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) + e.ev.F[i] + e.ev.Src[i]
			}
		}
		full := true
		if sharedOK && ref.lu.Age < e.opts.ChordMaxAge {
			b.sharedSolve(e, ref)
			nrm, finite := updateNorm(e.dx, n)
			if finite && nrm <= prevNorm {
				full = false
				usedShared = true
				e.stats.ChordIters++
				chordIters++
				if nrm > e.opts.ChordContraction*prevNorm {
					// Stalling against the shared Jacobian: this lane has
					// drifted too far from the reference; stop offering it.
					sharedOK = false
				}
			} else {
				sharedOK = false
			}
		}
		if full && chord && e.chordReady && e.lu.Age < e.opts.ChordMaxAge && sameAlpha(alpha, e.chordAlpha) {
			e.solveOnly()
			nrm, finite := updateNorm(e.dx, n)
			if finite && nrm <= prevNorm {
				full = false
				usedShared = false
				e.stats.ChordIters++
				chordIters++
				if nrm > e.opts.ChordContraction*prevNorm {
					e.chordReady = false
				}
			}
		}
		if full {
			sparse.Combine(e.j, alpha, e.ev.C, e.mapC, 1, e.ev.G, e.mapG)
			if err := e.factorSolve(); err != nil {
				return fmt.Errorf("transient: Jacobian factorization failed: %w", err)
			}
			e.chordReady = chord
			e.chordAlpha = alpha
			e.drift = 0
			usedShared = false
		}
		e.stats.NewtonIters++
		iters++
		conv := true
		nrm := 0.0
		for i := 0; i < n; i++ {
			if !num.IsFinite(e.dx[i]) {
				return ErrNewtonFailure
			}
			e.x[i] -= e.dx[i]
			ad := math.Abs(e.dx[i])
			if ad > nrm {
				nrm = ad
			}
			atol := e.opts.VTol
			if i >= numNodes {
				atol = e.opts.ITol
			}
			if ad > atol+e.opts.RelTol*math.Abs(e.x[i]) {
				conv = false
			}
		}
		prevNorm = nrm
		e.drift += nrm
		if conv {
			converged = true
			break
		}
	}
	if !converged {
		return ErrNewtonFailure
	}
	if e.hist {
		e.newtonHist.Observe(iters, 1)
		if chordIters > 0 {
			e.chordHist.Observe(chordIters, 1)
		}
	}

	if e.opts.Skews {
		// Pick the factorization the sensitivity solves back-substitute
		// against. The reference lane's serves when the follower rode the
		// shared Jacobian to convergence and its state stayed within the
		// reuse tolerance of the reference's; the follower's own serves under
		// the scalar drift gate; otherwise build a fresh converged-state one.
		lu := &e.lu
		reuse := false
		if chord {
			if usedShared && ref.chordReady && sameAlpha(alpha, ref.chordAlpha) &&
				ref.drift <= e.opts.SensReuseTol && laneClose(e.x, ref.x, e.opts.SensReuseTol) {
				lu = &ref.lu
				reuse = true
			} else if !usedShared && e.drift <= e.opts.SensReuseTol && sameAlpha(alpha, e.chordAlpha) {
				reuse = true
			}
		}
		if reuse {
			e.stats.JacobianReuses++
		} else {
			e.evalAt(t1)
			sparse.Combine(e.j, alpha, e.ev.C, e.mapC, 1, e.ev.G, e.mapG)
			if err := e.factorize(); err != nil {
				return fmt.Errorf("transient: converged-state factorization failed: %w", err)
			}
			e.chordReady = chord
			e.chordAlpha = alpha
			e.drift = 0
			lu = &e.lu
		}

		e.zeroZ()
		e.ev.AddSkewSens(t1, e.zsVec, e.zhVec)
		var tSens time.Time
		if e.timed {
			tSens = time.Now()
		}
		switch e.opts.Method {
		case TRAP:
			e.sensTrap(alpha, lu)
		default:
			e.sensBE(alpha, lu)
		}
		if e.timed {
			e.stats.Sens += time.Since(tSens)
		}
		e.stats.SensFactorizationsReused++
	}

	if e.opts.Method == TRAP {
		for i := 0; i < n; i++ {
			e.qdotPrev[i] = alpha*(e.ev.Q[i]-e.qPrev[i]) - e.qdotPrev[i]
		}
	}
	copy(e.qPrev, e.ev.Q)
	if e.opts.Skews {
		copy(e.cPrev.Val, e.ev.C.Val)
	}
	return nil
}

// sharedSolve back-substitutes follower e's residual against the reference
// lane's standing factorization, attributing the wall-clock to e.
func (b *BlockEngine) sharedSolve(e, ref *Engine) {
	if b.prof.active {
		pprof.SetGoroutineLabels(b.prof.lu)
		defer pprof.SetGoroutineLabels(b.prof.transient)
	}
	if !e.timed {
		ref.lu.Solve(e.r, e.dx)
		return
	}
	t0 := time.Now()
	ref.lu.Solve(e.r, e.dx)
	e.stats.LU += time.Since(t0)
}

// updateNorm returns ‖dx‖∞ and whether every component is finite.
func updateNorm(dx []float64, n int) (float64, bool) {
	nrm := 0.0
	for i := 0; i < n; i++ {
		v := math.Abs(dx[i])
		if !num.IsFinite(v) {
			return nrm, false
		}
		if v > nrm {
			nrm = v
		}
	}
	return nrm, true
}
