// Package transient implements the time-domain simulation engine: fixed-grid
// Backward-Euler and Trapezoidal integration of the MNA equations with
// per-step Newton solves, plus forward propagation of the setup/hold skew
// sensitivities mₛ = ∂x/∂τs and m_h = ∂x/∂τh (paper eqs. (9)–(13)), reusing
// each converged step's LU factorization so the gradient of the
// state-transition function costs two extra triangular solves per step.
//
// The time grid never depends on (τs, τh); this keeps the discretized
// state-transition function smooth in the skews, which the Newton methods
// built on top of it require.
package transient

import (
	"fmt"
	"math"
)

// Grid is a strictly increasing sequence of time points.
type Grid struct {
	points []float64
}

// Points returns the grid's time points. The slice must not be modified.
func (g Grid) Points() []float64 { return g.points }

// Len returns the number of time points.
func (g Grid) Len() int { return len(g.points) }

// Start and End return the first and last time points.
func (g Grid) Start() float64 { return g.points[0] }

// End returns the last time point.
func (g Grid) End() float64 { return g.points[len(g.points)-1] }

// UniformGrid returns a grid of n equal steps (n+1 points) from t0 to t1.
func UniformGrid(t0, t1 float64, n int) (Grid, error) {
	if n < 1 {
		return Grid{}, fmt.Errorf("transient: UniformGrid needs at least one step")
	}
	if t1 <= t0 {
		return Grid{}, fmt.Errorf("transient: UniformGrid needs t1 > t0")
	}
	pts := make([]float64, n+1)
	dt := (t1 - t0) / float64(n)
	for i := range pts {
		pts[i] = t0 + float64(i)*dt
	}
	pts[n] = t1
	return Grid{points: pts}, nil
}

// TwoPhaseGrid returns a grid using coarse steps from t0 up to tFine and
// fine steps from there to t1. tFine is snapped onto the coarse lattice so
// both phases remain uniform. This is the default schedule for latch
// characterization: coarse through the quiescent prefix, fine across the
// data/clock-edge window. The grid depends only on the window boundaries,
// never on the skews.
func TwoPhaseGrid(t0, tFine, t1, coarse, fine float64) (Grid, error) {
	switch {
	case !(t0 < tFine && tFine < t1):
		return Grid{}, fmt.Errorf("transient: TwoPhaseGrid needs t0 < tFine < t1 (got %g, %g, %g)", t0, tFine, t1)
	case coarse <= 0 || fine <= 0:
		return Grid{}, fmt.Errorf("transient: TwoPhaseGrid steps must be positive")
	case fine > coarse:
		return Grid{}, fmt.Errorf("transient: fine step %g exceeds coarse step %g", fine, coarse)
	}
	var pts []float64
	nc := int(math.Ceil((tFine - t0) / coarse))
	dtc := (tFine - t0) / float64(nc)
	for i := 0; i <= nc; i++ {
		pts = append(pts, t0+float64(i)*dtc)
	}
	pts[len(pts)-1] = tFine
	nf := int(math.Ceil((t1 - tFine) / fine))
	dtf := (t1 - tFine) / float64(nf)
	for i := 1; i <= nf; i++ {
		pts = append(pts, tFine+float64(i)*dtf)
	}
	pts[len(pts)-1] = t1
	return Grid{points: pts}, nil
}

// GridFromPoints wraps an explicit strictly increasing point list.
func GridFromPoints(pts []float64) (Grid, error) {
	if len(pts) < 2 {
		return Grid{}, fmt.Errorf("transient: grid needs at least two points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			return Grid{}, fmt.Errorf("transient: grid not strictly increasing at %d", i)
		}
	}
	return Grid{points: append([]float64(nil), pts...)}, nil
}
