package transient

import (
	"errors"
	"math"
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/num"
	"latchchar/internal/solver"
	"latchchar/internal/wave"
)

func TestUniformGrid(t *testing.T) {
	g, err := UniformGrid(0, 1e-9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 || g.Start() != 0 || g.End() != 1e-9 {
		t.Fatalf("grid: %v", g.Points())
	}
	if !num.ApproxEqual(g.Points()[2], 0.5e-9, 1e-12, 0) {
		t.Errorf("midpoint: %v", g.Points()[2])
	}
	if _, err := UniformGrid(0, 1, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := UniformGrid(1, 0, 4); err == nil {
		t.Error("reversed interval accepted")
	}
}

func TestTwoPhaseGrid(t *testing.T) {
	g, err := TwoPhaseGrid(0, 10e-9, 11e-9, 100e-12, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Points()
	if pts[0] != 0 || pts[len(pts)-1] != 11e-9 {
		t.Fatalf("endpoints: %v %v", pts[0], pts[len(pts)-1])
	}
	// Strictly increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("not increasing at %d", i)
		}
	}
	// Fine region has ~10 ps spacing.
	var fineCount int
	for i := 1; i < len(pts); i++ {
		if pts[i] > 10e-9 {
			dt := pts[i] - pts[i-1]
			if dt > 10.5e-12 {
				t.Fatalf("fine step too large: %v", dt)
			}
			fineCount++
		}
	}
	if fineCount < 99 {
		t.Errorf("fine region undersampled: %d steps", fineCount)
	}
	if _, err := TwoPhaseGrid(0, 2, 1, 0.1, 0.01); err == nil {
		t.Error("tFine past t1 accepted")
	}
	if _, err := TwoPhaseGrid(0, 1, 2, 0.01, 0.1); err == nil {
		t.Error("fine > coarse accepted")
	}
	if _, err := TwoPhaseGrid(0, 1, 2, 0, 0.1); err == nil {
		t.Error("zero step accepted")
	}
}

func TestGridFromPoints(t *testing.T) {
	if _, err := GridFromPoints([]float64{0}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := GridFromPoints([]float64{0, 0}); err == nil {
		t.Error("repeated point accepted")
	}
	g, err := GridFromPoints([]float64{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Error("length wrong")
	}
}

// buildRC creates a series R-C driven by w: src -- R -- out -- C -- gnd.
func buildRC(t *testing.T, w wave.Waveform, role device.SourceRole, r, c float64) (*circuit.Circuit, circuit.UnknownID) {
	t.Helper()
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	vs, err := device.NewVSource("vin", in, circuit.Ground, w, role)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(vs)
	res, err := device.NewResistor("r1", in, out, r)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(res)
	cap, err := device.NewCapacitor("c1", out, circuit.Ground, c)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(cap)
	if err := ckt.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ckt, out
}

// rcError runs an RC step response on n uniform steps and returns the error
// against the analytic solution at t = 2·RC.
func rcError(t *testing.T, method Method, n int) float64 {
	t.Helper()
	const (
		R = 1e3
		C = 1e-12
		V = 1.0
	)
	tau := R * C
	// Ideal step at t=0 driven through the source value directly: use a
	// step that has (almost) settled before the first grid point would
	// distort convergence-order measurements, so instead drive with DC and
	// start the capacitor discharged.
	ckt, out := buildRC(t, wave.DC(V), device.RoleSupply, R, C)
	g, err := UniformGrid(0, 2*tau, n)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ckt, Options{Method: method})
	x0 := make([]float64, ckt.N())
	x0[0] = V // source node pinned; capacitor node starts at 0
	res, err := eng.Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	want := V * (1 - math.Exp(-2))
	return math.Abs(res.X[out] - want)
}

func TestRCChargingBEFirstOrder(t *testing.T) {
	e1 := rcError(t, BE, 100)
	e2 := rcError(t, BE, 200)
	ratio := e1 / e2
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("BE convergence ratio %v, want ≈ 2 (errors %v, %v)", ratio, e1, e2)
	}
}

func TestRCChargingTRAPSecondOrder(t *testing.T) {
	e1 := rcError(t, TRAP, 100)
	e2 := rcError(t, TRAP, 200)
	ratio := e1 / e2
	if ratio < 3.3 || ratio > 4.7 {
		t.Errorf("TRAP convergence ratio %v, want ≈ 4 (errors %v, %v)", ratio, e1, e2)
	}
}

func TestTRAPMoreAccurateThanBE(t *testing.T) {
	if be, tr := rcError(t, BE, 100), rcError(t, TRAP, 100); tr >= be {
		t.Errorf("TRAP error %v not below BE error %v", tr, be)
	}
}

func TestProbesRecorded(t *testing.T) {
	ckt, out := buildRC(t, wave.DC(1), device.RoleSupply, 1e3, 1e-12)
	g, _ := UniformGrid(0, 2e-9, 50)
	eng := NewEngine(ckt, Options{Probes: []circuit.UnknownID{out, circuit.Ground}})
	x0 := make([]float64, ckt.N())
	x0[0] = 1
	res, err := eng.Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 2 || len(res.Probes[0]) != 51 {
		t.Fatalf("probe shape wrong")
	}
	if res.Probes[0][0] != 0 {
		t.Errorf("initial probe: %v", res.Probes[0][0])
	}
	// Monotone rise.
	for i := 1; i < len(res.Probes[0]); i++ {
		if res.Probes[0][i] < res.Probes[0][i-1]-1e-12 {
			t.Fatalf("RC charge not monotone at %d", i)
		}
	}
	for _, v := range res.Probes[1] {
		if v != 0 {
			t.Fatal("ground probe must be 0")
		}
	}
	if res.Stats.Steps != 50 || res.Stats.NewtonIters < 50 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestRunBadX0(t *testing.T) {
	ckt, _ := buildRC(t, wave.DC(1), device.RoleSupply, 1e3, 1e-12)
	g, _ := UniformGrid(0, 1e-9, 10)
	eng := NewEngine(ckt, Options{})
	if _, err := eng.Run([]float64{0}, g); err == nil {
		t.Error("bad x0 accepted")
	}
}

// dataRC builds an RC filter driven by a DataPulse source and returns the
// circuit, probe node and pulse handle.
func dataRC(t *testing.T) (*circuit.Circuit, circuit.UnknownID, *wave.DataPulse) {
	t.Helper()
	dp, err := wave.NewDataPulse(5e-9, 0, 2.5, 0.1e-9, 0.1e-9, wave.RampSmooth)
	if err != nil {
		t.Fatal(err)
	}
	dp.SetSkews(500e-12, 400e-12)
	ckt, out := buildRC(t, dp, device.RoleData, 1e3, 0.2e-12)
	return ckt, out, dp
}

func sensVsFD(t *testing.T, method Method) {
	t.Helper()
	ckt, out, dp := dataRC(t)
	g, err := UniformGrid(0, 6e-9, 1200)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ckt, Options{Method: method, Skews: true})
	x0 := make([]float64, ckt.N())

	run := func(ts, th float64) *Result {
		dp.SetSkews(ts, th)
		res, err := eng.Run(x0, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(500e-12, 400e-12)
	if base.Ms == nil || base.Mh == nil {
		t.Fatal("sensitivities not returned")
	}
	const d = 1e-14 // 0.01 ps
	fpS := run(500e-12+d, 400e-12).X[out]
	fmS := run(500e-12-d, 400e-12).X[out]
	fdS := (fpS - fmS) / (2 * d)
	if !num.ApproxEqual(fdS, base.Ms[out], 2e-4, 1e4) {
		t.Errorf("%v: ms[out] = %v, fd = %v", method, base.Ms[out], fdS)
	}
	fpH := run(500e-12, 400e-12+d).X[out]
	fmH := run(500e-12, 400e-12-d).X[out]
	fdH := (fpH - fmH) / (2 * d)
	if !num.ApproxEqual(fdH, base.Mh[out], 2e-4, 1e4) {
		t.Errorf("%v: mh[out] = %v, fd = %v", method, base.Mh[out], fdH)
	}
	// The trailing edge ended the pulse, so at t=6ns the output is heading
	// back to 0; a longer hold skew means a later falloff → mh > 0, and a
	// longer setup skew has (almost) no effect far after the leading ramp
	// settles through the 1ns RC — actually ms ≈ 0 here.
	if base.Mh[out] <= 0 {
		t.Errorf("%v: expected positive hold sensitivity, got %v", method, base.Mh[out])
	}
}

func TestSensitivityMatchesFiniteDifferenceBE(t *testing.T)   { sensVsFD(t, BE) }
func TestSensitivityMatchesFiniteDifferenceTRAP(t *testing.T) { sensVsFD(t, TRAP) }

func TestSensitivityStatsCounted(t *testing.T) {
	ckt, _, _ := dataRC(t)
	g, _ := UniformGrid(0, 6e-9, 100)
	eng := NewEngine(ckt, Options{Skews: true})
	x0 := make([]float64, ckt.N())
	res, err := eng.Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SensSolves != 200 {
		t.Errorf("SensSolves = %d, want 200", res.Stats.SensSolves)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Steps: 1, NewtonIters: 2, Factorizations: 3, SensSolves: 4}
	b := Stats{Steps: 10, NewtonIters: 20, Factorizations: 30, SensSolves: 40}
	a.Add(b)
	if a.Steps != 11 || a.NewtonIters != 22 || a.Factorizations != 33 || a.SensSolves != 44 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestMethodString(t *testing.T) {
	if BE.String() != "be" || TRAP.String() != "trap" {
		t.Error("method strings wrong")
	}
}

// TestInverterTransient drives a CMOS inverter with a clock and checks that
// the output switches rail to rail with the expected polarity.
func TestInverterTransient(t *testing.T) {
	ckt := circuit.New()
	vddN := ckt.Node("vdd")
	in := ckt.Node("in")
	out := ckt.Node("out")
	addV := func(name string, p circuit.UnknownID, w wave.Waveform, role device.SourceRole) {
		v, err := device.NewVSource(name, p, circuit.Ground, w, role)
		if err != nil {
			t.Fatal(err)
		}
		ckt.AddDevice(v)
	}
	clk := wave.Clock{Low: 0, High: 2.5, Period: 4e-9, Delay: 1e-9, Rise: 0.1e-9, Fall: 0.1e-9, Shape: wave.RampSmooth}
	addV("vdd", vddN, wave.DC(2.5), device.RoleSupply)
	addV("vin", in, clk, device.RoleClock)
	nm := device.MOSModel{Type: device.NMOS, VT0: 0.43, KP: 115e-6, Lambda: 0.06, Cox: 6e-3, CJ: 1e-9}
	pm := device.MOSModel{Type: device.PMOS, VT0: 0.40, KP: 30e-6, Lambda: 0.10, Cox: 6e-3, CJ: 1e-9}
	mp, err := device.NewMOSFET("mp", out, in, vddN, vddN, pm, 8e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(mp)
	mn, err := device.NewMOSFET("mn", out, in, circuit.Ground, circuit.Ground, nm, 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(mn)
	cl, err := device.NewCapacitor("cl", out, circuit.Ground, 20e-15)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(cl)
	if err := ckt.Finalize(); err != nil {
		t.Fatal(err)
	}

	x0, _, err := solver.DCOperatingPoint(ckt, 0, nil, solver.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if x0[out] < 2.4 {
		t.Fatalf("DC: inverter out = %v with input low", x0[out])
	}
	g, err := UniformGrid(0, 4e-9, 800)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ckt, Options{Probes: []circuit.UnknownID{out}})
	res, err := eng.Run(x0, g)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Probes[0]
	// Input rises at 1 ns → output must fall near 0 shortly after; input
	// falls at 3 ns (width 2 ns from ramp start... period/2) → output back up.
	atNS := func(ns float64) float64 {
		idx := int(ns * 1e-9 / (4e-9 / 800))
		return w[idx]
	}
	if v := atNS(0.9); v < 2.4 {
		t.Errorf("out before clock edge = %v", v)
	}
	if v := atNS(2.5); v > 0.1 {
		t.Errorf("out after rising input = %v", v)
	}
	if v := atNS(3.9); v < 2.0 {
		t.Errorf("out after falling input = %v", v)
	}
	// Typical step should converge in few Newton iterations.
	if avg := float64(res.Stats.NewtonIters) / float64(res.Stats.Steps); avg > 4 {
		t.Errorf("average Newton iterations %v too high", avg)
	}
}

func TestNewtonFailureReported(t *testing.T) {
	// A one-iteration Newton budget cannot converge the nonlinear inverter
	// step; the engine must report ErrNewtonFailure with the failing time.
	ckt := circuit.New()
	vddN := ckt.Node("vdd")
	out := ckt.Node("out")
	v, err := device.NewVSource("vdd", vddN, circuit.Ground, wave.DC(2.5), device.RoleSupply)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(v)
	nm := device.MOSModel{Type: device.NMOS, VT0: 0.43, KP: 115e-6, Lambda: 0.06, Cox: 6e-3, CJ: 1e-9}
	mn, err := device.NewMOSFET("mn", out, vddN, circuit.Ground, circuit.Ground, nm, 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(mn)
	r, err := device.NewResistor("r", vddN, out, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(r)
	cp, err := device.NewCapacitor("c", out, circuit.Ground, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(cp)
	if err := ckt.Finalize(); err != nil {
		t.Fatal(err)
	}
	g, _ := UniformGrid(0, 1e-9, 4)
	eng := NewEngine(ckt, Options{MaxNewtonIter: 1})
	x0 := make([]float64, ckt.N()) // far from the operating point
	_, err = eng.Run(x0, g)
	if err == nil {
		t.Fatal("expected Newton failure")
	}
	if !errors.Is(err, ErrNewtonFailure) {
		t.Errorf("err = %v", err)
	}
}
