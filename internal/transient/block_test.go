package transient

import (
	"math"
	"strings"
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/solver"
)

// laneWave is a source whose value the block engine's setLane hook swaps
// per lane: constant 0 until t0, then a linear ramp of duration rise up to
// the lane's amplitude *v. Before t0 the output is amplitude-independent,
// so lanes share the exact prefix up to t0.
type laneWave struct {
	v        *float64
	t0, rise float64
}

func (w laneWave) V(t float64) float64 {
	switch {
	case t < w.t0:
		return 0
	case t >= w.t0+w.rise:
		return *w.v
	default:
		return *w.v * (t - w.t0) / w.rise
	}
}

// buildLaneRC creates src -- R -- out -- C -- gnd driven by a laneWave and
// returns the circuit, the output node and the amplitude cell setLane swaps.
func buildLaneRC(t *testing.T, t0, rise float64) (*circuit.Circuit, circuit.UnknownID, *float64) {
	t.Helper()
	amp := new(float64)
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	vs, err := device.NewVSource("vin", in, circuit.Ground, laneWave{v: amp, t0: t0, rise: rise}, device.RoleSupply)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(vs)
	res, err := device.NewResistor("r1", in, out, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(res)
	cap, err := device.NewCapacitor("c1", out, circuit.Ground, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddDevice(cap)
	if err := ckt.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ckt, out, amp
}

// runScalarLane integrates the same circuit with a single-lane engine at one
// amplitude, as the reference for the block lanes.
func runScalarLane(t *testing.T, opts Options, t0, rise, amp float64, x0 []float64, g Grid) *Result {
	t.Helper()
	ckt, _, a := buildLaneRC(t, t0, rise)
	*a = amp
	res, err := NewEngine(ckt, opts).Run(x0, g)
	if err != nil {
		t.Fatalf("scalar lane amp=%g: %v", amp, err)
	}
	return res
}

// TestBlockSharedPrefixMatchesScalar advances four lanes whose stimuli are
// identical until t0 and diverge after: the block result must match four
// independent scalar integrations within the fast path's accuracy gate, and
// the shared prefix must actually have saved lane-steps.
func TestBlockSharedPrefixMatchesScalar(t *testing.T) {
	const (
		t0   = 2e-9
		rise = 0.5e-9
	)
	amps := []float64{1.0, 1.5, 2.0, 2.5}
	opts := Options{Chord: true, DeviceBypass: true}

	ckt, _, amp := buildLaneRC(t, t0, rise)
	x0, _, err := solver.DCOperatingPoint(ckt, 0, nil, solver.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := UniformGrid(0, 4e-9, 40)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBlockEngine(ckt, opts, len(amps), func(lane int) { *amp = amps[lane] })
	res, err := b.Run(x0, g, t0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("lane errors: %v", res.Errs)
	}
	if res.Stats.BlockSharedSteps == 0 {
		t.Error("no lane-steps saved despite a 2 ns shared prefix")
	}
	if res.Stats.BlockPeelOffs != 0 {
		t.Errorf("%d peel-offs on a clean block", res.Stats.BlockPeelOffs)
	}
	for lane, a := range amps {
		want := runScalarLane(t, opts, t0, rise, a, x0, g)
		for i := range want.X {
			if d := math.Abs(res.X[lane][i] - want.X[i]); d > 3e-6 {
				t.Errorf("lane %d node %d deviates %.3g V from scalar", lane, i, d)
			}
		}
	}
	t.Logf("shared steps %d, chord iters %d, factorizations %d, donor replays %d",
		res.Stats.BlockSharedSteps, res.Stats.ChordIters,
		res.Stats.Factorizations, res.Stats.BlockDonorReplays)
}

// TestBlockPeelOff poisons one lane's stimulus with NaN: that lane must fail
// with a per-lane error (counted as a peel-off) while the remaining lanes
// converge to the same states as their scalar references. Poisoning lane 0
// additionally exercises reference-lane re-election.
func TestBlockPeelOff(t *testing.T) {
	const (
		t0   = 1e-9
		rise = 0.5e-9
	)
	for _, poisoned := range []int{2, 0} {
		amps := []float64{1.0, 1.5, 2.0, 2.5}
		amps[poisoned] = math.NaN()
		opts := Options{Chord: true, DeviceBypass: true}

		ckt, _, amp := buildLaneRC(t, t0, rise)
		x0, _, err := solver.DCOperatingPoint(ckt, 0, nil, solver.DCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := UniformGrid(0, 3e-9, 30)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBlockEngine(ckt, opts, len(amps), func(lane int) { *amp = amps[lane] })
		res, err := b.Run(x0, g, t0)
		if err != nil {
			t.Fatalf("poisoned lane %d must not fail the block: %v", poisoned, err)
		}
		if res.Errs[poisoned] == nil {
			t.Fatalf("poisoned lane %d converged on a NaN stimulus", poisoned)
		}
		if !strings.Contains(res.Errs[poisoned].Error(), "lane") {
			t.Errorf("lane error does not name the lane: %v", res.Errs[poisoned])
		}
		if res.Stats.BlockPeelOffs != 1 {
			t.Errorf("peel-offs = %d, want 1", res.Stats.BlockPeelOffs)
		}
		for lane, a := range amps {
			if lane == poisoned {
				continue
			}
			if res.Errs[lane] != nil {
				t.Errorf("healthy lane %d poisoned by its neighbor: %v", lane, res.Errs[lane])
				continue
			}
			want := runScalarLane(t, opts, t0, rise, a, x0, g)
			for i := range want.X {
				if d := math.Abs(res.X[lane][i] - want.X[i]); d > 3e-6 {
					t.Errorf("lane %d node %d deviates %.3g V after peel-off", lane, i, d)
				}
			}
		}
	}
}

// TestBlockDegenerateFullyShared runs a block whose lanes never differ
// (tSplit = +Inf): the shared prefix covers the whole grid and every lane
// must return the reference trajectory.
func TestBlockDegenerateFullyShared(t *testing.T) {
	ckt, _, amp := buildLaneRC(t, 1e-9, 0.5e-9)
	x0, _, err := solver.DCOperatingPoint(ckt, 0, nil, solver.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := UniformGrid(0, 3e-9, 30)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBlockEngine(ckt, Options{Chord: true}, 3, func(int) { *amp = 1.0 })
	res, err := b.Run(x0, g, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("lane errors: %v", res.Errs)
	}
	for lane := 1; lane < 3; lane++ {
		for i := range res.X[0] {
			if res.X[lane][i] != res.X[0][i] {
				t.Fatalf("fully shared lane %d diverged from the reference", lane)
			}
		}
	}
	// Only the reference lane executes, so every executed step saves the two
	// follower lane-steps.
	if res.Stats.BlockSharedSteps != 2*res.Stats.Steps {
		t.Errorf("shared steps %d with %d executed lane-steps; the whole grid should have been shared",
			res.Stats.BlockSharedSteps, res.Stats.Steps)
	}
}
