package device

import (
	"fmt"

	"latchchar/internal/circuit"
	"latchchar/internal/wave"
)

// SourceRole tags what an independent voltage source represents; the
// characterization layers use it to identify the data input.
type SourceRole int

const (
	// RoleSupply is a constant rail or any source with no timing role.
	RoleSupply SourceRole = iota
	// RoleClock is a clock-like input uc(t): time-varying but independent of
	// the setup/hold skews.
	RoleClock
	// RoleData is the data input ud(t, τs, τh); its waveform must implement
	// SkewWaveform for sensitivity evaluation.
	RoleData
)

func (r SourceRole) String() string {
	switch r {
	case RoleSupply:
		return "supply"
	case RoleClock:
		return "clock"
	case RoleData:
		return "data"
	default:
		return fmt.Sprintf("SourceRole(%d)", int(r))
	}
}

// SkewWaveform is a waveform parameterized by the setup and hold skews.
type SkewWaveform interface {
	wave.Waveform
	// DTauS returns ∂v/∂τs at time t (the zs of paper eq. (7)).
	DTauS(t float64) float64
	// DTauH returns ∂v/∂τh at time t.
	DTauH(t float64) float64
}

// VSource is an independent voltage source between P (positive) and N. It
// adds one branch-current unknown and the branch equation
// v(P) − v(N) − W(t) = 0, contributing −W(t) to the src vector on its
// branch row — the bc·uc(t) / bd·ud(t) terms of paper eq. (2).
type VSource struct {
	Inst string
	P, N circuit.UnknownID
	W    wave.Waveform
	Role SourceRole

	branch circuit.UnknownID
	slots  [4]circuit.Slot
}

// NewVSource creates a voltage source driven by w. For RoleData, w must
// implement SkewWaveform.
func NewVSource(name string, p, n circuit.UnknownID, w wave.Waveform, role SourceRole) (*VSource, error) {
	if w == nil {
		return nil, fmt.Errorf("device: source %s has no waveform", name)
	}
	if role == RoleData {
		if _, ok := w.(SkewWaveform); !ok {
			return nil, fmt.Errorf("device: data source %s waveform does not expose skew derivatives", name)
		}
	}
	return &VSource{Inst: name, P: p, N: n, W: w, Role: role}, nil
}

// Name implements circuit.Device.
func (v *VSource) Name() string { return v.Inst }

// Branch returns the source's branch-current unknown (valid after the
// circuit is finalized).
func (v *VSource) Branch() circuit.UnknownID { return v.branch }

// Setup implements circuit.Device.
func (v *VSource) Setup(ctx *circuit.SetupCtx) error {
	v.branch = ctx.Branch(v.Inst)
	// KCL rows: branch current leaves P, enters N.
	v.slots[0] = ctx.G(v.P, v.branch)
	v.slots[1] = ctx.G(v.N, v.branch)
	// Branch row: v(P) − v(N) = W(t).
	v.slots[2] = ctx.G(v.branch, v.P)
	v.slots[3] = ctx.G(v.branch, v.N)
	if v.Role == RoleData {
		ctx.RegisterDataSource(v)
	}
	return nil
}

// Eval implements circuit.Device.
func (v *VSource) Eval(ctx *circuit.EvalCtx) {
	ib := ctx.V(v.branch)
	ctx.AddF(v.P, ib)
	ctx.AddF(v.N, -ib)
	ctx.AddG(v.slots[0], 1)
	ctx.AddG(v.slots[1], -1)
	ctx.AddF(v.branch, ctx.V(v.P)-ctx.V(v.N))
	ctx.AddG(v.slots[2], 1)
	ctx.AddG(v.slots[3], -1)
	ctx.AddSrc(v.branch, -v.W.V(ctx.T))
}

// AddSkewSens implements circuit.DataSource: the source's contribution to
// the sensitivity right-hand sides is −z(t) on its branch row, mirroring
// the −W(t) source term.
func (v *VSource) AddSkewSens(t float64, zs, zh []float64) {
	sw, ok := v.W.(SkewWaveform)
	if !ok {
		return
	}
	zs[v.branch] -= sw.DTauS(t)
	zh[v.branch] -= sw.DTauH(t)
}

// ConductivePairs implements circuit.ConductiveDevice: an ideal source is a
// DC connection between its terminals.
func (v *VSource) ConductivePairs() [][2]circuit.UnknownID {
	return [][2]circuit.UnknownID{{v.P, v.N}}
}

// Terminals lists the source's node connections (for netlist lint).
func (v *VSource) Terminals() []circuit.UnknownID { return []circuit.UnknownID{v.P, v.N} }
