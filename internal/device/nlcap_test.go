package device

import (
	"math"
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/num"
)

func nlModel(t MOSType) MOSModel {
	m := testModel(t)
	m.NLGate = true
	return m
}

func TestNlRampIntLimitsAndContinuity(t *testing.T) {
	const d = 0.3
	if nlRampInt(d, -1) != 0 || nlRampInt(d, 0) != 0 {
		t.Error("below threshold must carry no channel charge")
	}
	// Far above the window: slope 1, offset δ/2.
	if got := nlRampInt(d, 2.0); math.Abs(got-(2.0-d/2)) > 1e-15 {
		t.Errorf("asymptote: %v", got)
	}
	// Continuity at the window edges.
	if math.Abs(nlRampInt(d, d)-nlRampInt(d, d+1e-12)) > 1e-11 {
		t.Error("discontinuous at x = δ")
	}
	if nlRampInt(d, 1e-12) > 1e-11 {
		t.Error("discontinuous at x = 0")
	}
	// Monotone.
	prev := -1.0
	for x := -0.1; x <= 0.6; x += 0.01 {
		v := nlRampInt(d, x)
		if v < prev {
			t.Fatalf("not monotone at %v", x)
		}
		prev = v
	}
}

func TestNlRampIntDerivativeIsSmoothstep(t *testing.T) {
	const d = 0.3
	const h = 1e-7
	for _, x := range []float64{0.05, 0.15, 0.25, 0.29, 0.4} {
		fd := (nlRampInt(d, x+h) - nlRampInt(d, x-h)) / (2 * h)
		want := num.Smoothstep(0, d, x)
		if !num.ApproxEqual(fd, want, 1e-5, 1e-6) {
			t.Errorf("x=%v: dΦ/dx = %v, smoothstep = %v", x, fd, want)
		}
	}
}

func TestMOSFETNLGateStampConsistencyNMOS(t *testing.T) {
	stampConsistency(t, "nmos-nlgate", func(c *circuit.Circuit) error {
		m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), circuit.Ground, nlModel(NMOS), 4e-6, 0.25e-6)
		if err != nil {
			return err
		}
		c.AddDevice(m)
		return nil
	}, 8, 21)
}

func TestMOSFETNLGateStampConsistencyPMOS(t *testing.T) {
	stampConsistency(t, "pmos-nlgate", func(c *circuit.Circuit) error {
		m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), c.Node("vdd"), nlModel(PMOS), 8e-6, 0.25e-6)
		if err != nil {
			return err
		}
		c.AddDevice(m)
		return nil
	}, 8, 22)
}

// TestNLGateCapacitanceRegions verifies the physical behavior: the gate
// capacitance in cutoff is the overlap value only, and grows to overlap +
// channel share in strong inversion.
func TestNLGateCapacitanceRegions(t *testing.T) {
	c := circuit.New()
	m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), circuit.Ground, nlModel(NMOS), 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(m)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	cox := m.Model.Cox * m.W * m.L
	// Cutoff: vg = 0, vs = 0 → C(g,g) ≈ 2 overlaps (gs + gd).
	ev.At([]float64{0, 0, 0}, 0)
	cCut := ev.C.At(1, 1) // node g has index 1
	if !num.WithinRel(cCut, 2*0.1*cox, 1e-9) {
		t.Errorf("cutoff C(g,g) = %v, want %v", cCut, 2*0.1*cox)
	}
	// Strong inversion: vg = 2.5 with d, s at 0.
	ev.At([]float64{0, 2.5, 0}, 0)
	cInv := ev.C.At(1, 1)
	want := 2 * (0.1 + 0.4) * cox
	if !num.WithinRel(cInv, want, 1e-9) {
		t.Errorf("inversion C(g,g) = %v, want %v", cInv, want)
	}
	if cInv <= cCut {
		t.Error("gate capacitance must grow with inversion")
	}
}

// TestNLGateChargeConservation: total stamped charge sums to zero (both
// plates stamped symmetrically).
func TestNLGateChargeConservation(t *testing.T) {
	c := circuit.New()
	m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), c.Node("b"), nlModel(NMOS), 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(m)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	ev.At([]float64{1.7, 2.1, 0.2, 0.0}, 0)
	sum := 0.0
	for _, q := range ev.Q {
		sum += q
	}
	if math.Abs(sum) > 1e-20 {
		t.Errorf("charge not conserved: %v", sum)
	}
}

func TestNLDeltaDefaultApplied(t *testing.T) {
	c := circuit.New()
	mdl := nlModel(NMOS)
	mdl.NLDelta = 0 // must default to 0.3 V
	m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), circuit.Ground, mdl, 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	if m.nlgs.dlt != 0.3 {
		t.Errorf("delta = %v", m.nlgs.dlt)
	}
}
