package device

import (
	"latchchar/internal/circuit"
	"latchchar/internal/num"
)

// Nonlinear (Meyer-style) gate capacitance. The dominant nonlinearity of
// the MOS gate is that the channel charge only exists above threshold: the
// gate-source and gate-drain capacitances collapse to the overlap value in
// cutoff and grow to the full channel share in inversion.
//
// The model is formulated in *charge* so that BE/TRAP integration conserves
// charge and the stamped C = ∂q/∂v is the exact Jacobian:
//
//	q(v) = Cov·v + Cch·Φ(v − VT)
//
// where Φ is the integral of the cubic smoothstep over a turn-on window δ:
// Φ(x) = 0 for x ≤ 0, δ·(u³ − u⁴/2) for u = x/δ ∈ [0, 1], and x − δ/2
// beyond — so C(v) = Cov + Cch·smoothstep(0, δ, v − VT) is C¹ and monotone.
//
// The same polarity transform as the channel current applies for PMOS: the
// charge is evaluated on negated voltages and negated, leaving capacitances
// positive.

// nlRampInt is Φ: the integral of smoothstep(0, delta, ·) from 0 to x.
func nlRampInt(delta, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= delta {
		return x - delta/2
	}
	u := x / delta
	u3 := u * u * u
	return delta * (u3 - u3*u/2)
}

// nlGateStamp is one nonlinear gate capacitor between the gate and a
// channel terminal.
type nlGateStamp struct {
	g, t     circuit.UnknownID // gate and channel terminal
	cov, cch float64           // overlap and channel capacitance
	vt, dlt  float64           // threshold and turn-on window
	sgn      float64           // +1 NMOS, −1 PMOS
	slots    [4]circuit.Slot
}

func (s *nlGateStamp) setup(ctx *circuit.SetupCtx) {
	s.slots[0] = ctx.C(s.g, s.g)
	s.slots[1] = ctx.C(s.g, s.t)
	s.slots[2] = ctx.C(s.t, s.g)
	s.slots[3] = ctx.C(s.t, s.t)
}

func (s *nlGateStamp) eval(ctx *circuit.EvalCtx) {
	v := s.sgn * (ctx.V(s.g) - ctx.V(s.t))
	q := s.sgn * (s.cov*v + s.cch*nlRampInt(s.dlt, v-s.vt))
	c := s.cov + s.cch*num.Smoothstep(0, s.dlt, v-s.vt)
	ctx.AddQ(s.g, q)
	ctx.AddQ(s.t, -q)
	ctx.AddC(s.slots[0], c)
	ctx.AddC(s.slots[1], -c)
	ctx.AddC(s.slots[2], -c)
	ctx.AddC(s.slots[3], c)
}
