package device

import (
	"math"
	"math/rand"
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/num"
	"latchchar/internal/wave"
)

func testModel(t MOSType) MOSModel {
	return MOSModel{
		Type:   t,
		VT0:    0.43,
		KP:     115e-6,
		Lambda: 0.06,
		Cox:    6e-3,
		CJ:     1e-9,
	}
}

func TestMOSModelValidate(t *testing.T) {
	good := testModel(NMOS)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.VT0 = 0
	if bad.Validate() == nil {
		t.Error("zero VT0 accepted")
	}
	bad = good
	bad.KP = -1
	if bad.Validate() == nil {
		t.Error("negative KP accepted")
	}
	bad = good
	bad.Lambda = -0.1
	if bad.Validate() == nil {
		t.Error("negative lambda accepted")
	}
	bad = good
	bad.CJ = -1
	if bad.Validate() == nil {
		t.Error("negative CJ accepted")
	}
}

func TestNewMOSFETValidation(t *testing.T) {
	c := circuit.New()
	d, g, s := c.Node("d"), c.Node("g"), c.Node("s")
	if _, err := NewMOSFET("m1", d, g, s, circuit.Ground, testModel(NMOS), 0, 1e-6); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewMOSFET("m1", d, g, s, circuit.Ground, MOSModel{}, 1e-6, 1e-6); err == nil {
		t.Error("invalid model accepted")
	}
}

func mkMOS(t *testing.T, typ MOSType) *MOSFET {
	t.Helper()
	c := circuit.New()
	m, err := NewMOSFET("m", c.Node("d"), c.Node("g"), c.Node("s"), circuit.Ground, testModel(typ), 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIdsCutoff(t *testing.T) {
	m := mkMOS(t, NMOS)
	id, gm, gds := m.ids(0.2, 1.0) // vgs < VT0
	if id != 0 || gm != 0 || gds != 0 {
		t.Errorf("cutoff should carry no current: %v %v %v", id, gm, gds)
	}
}

func TestIdsSaturation(t *testing.T) {
	m := mkMOS(t, NMOS)
	vgs, vds := 1.5, 2.0 // vov = 1.07 < vds
	id, gm, gds := m.ids(vgs, vds)
	beta := m.Model.KP * m.W / m.L
	vov := vgs - m.Model.VT0
	wantID := beta / 2 * vov * vov * (1 + m.Model.Lambda*vds)
	if !num.WithinRel(id, wantID, 1e-12) {
		t.Errorf("id = %v, want %v", id, wantID)
	}
	if gm <= 0 || gds <= 0 {
		t.Errorf("saturation conductances must be positive: gm=%v gds=%v", gm, gds)
	}
}

func TestIdsTriode(t *testing.T) {
	m := mkMOS(t, NMOS)
	vgs, vds := 2.5, 0.1 // deep triode
	id, gm, gds := m.ids(vgs, vds)
	beta := m.Model.KP * m.W / m.L
	vov := vgs - m.Model.VT0
	wantID := beta * (vov*vds - vds*vds/2) * (1 + m.Model.Lambda*vds)
	if !num.WithinRel(id, wantID, 1e-12) {
		t.Errorf("id = %v, want %v", id, wantID)
	}
	if gds <= gm {
		t.Errorf("deep triode should have gds > gm: gm=%v gds=%v", gm, gds)
	}
}

func TestIdsContinuousAtSaturationBoundary(t *testing.T) {
	m := mkMOS(t, NMOS)
	vgs := 1.5
	vov := vgs - m.Model.VT0
	const eps = 1e-9
	idA, gmA, gdsA := m.ids(vgs, vov-eps)
	idB, gmB, gdsB := m.ids(vgs, vov+eps)
	if !num.ApproxEqual(idA, idB, 1e-6, 1e-15) {
		t.Errorf("id discontinuous: %v vs %v", idA, idB)
	}
	if !num.ApproxEqual(gmA, gmB, 1e-6, 1e-12) {
		t.Errorf("gm discontinuous: %v vs %v", gmA, gmB)
	}
	if !num.ApproxEqual(gdsA, gdsB, 1e-6, 1e-12) {
		t.Errorf("gds discontinuous: %v vs %v", gdsA, gdsB)
	}
}

func TestIdsDerivativesMatchFiniteDifference(t *testing.T) {
	m := mkMOS(t, NMOS)
	const h = 1e-7
	for _, pt := range [][2]float64{{1.0, 0.2}, {1.5, 2.0}, {2.5, 0.05}, {0.6, 1.0}} {
		vgs, vds := pt[0], pt[1]
		_, gm, gds := m.ids(vgs, vds)
		ip, _, _ := m.ids(vgs+h, vds)
		im, _, _ := m.ids(vgs-h, vds)
		if fd := (ip - im) / (2 * h); !num.ApproxEqual(fd, gm, 1e-5, 1e-10) {
			t.Errorf("gm at (%v,%v): fd=%v analytic=%v", vgs, vds, fd, gm)
		}
		ip, _, _ = m.ids(vgs, vds+h)
		im, _, _ = m.ids(vgs, vds-h)
		if fd := (ip - im) / (2 * h); !num.ApproxEqual(fd, gds, 1e-5, 1e-10) {
			t.Errorf("gds at (%v,%v): fd=%v analytic=%v", vgs, vds, fd, gds)
		}
	}
}

// buildTestbench creates a circuit containing the device under test between
// three free nodes so states can be imposed directly on the MNA unknowns.
func stampConsistency(t *testing.T, name string, build func(c *circuit.Circuit) error, states int, seed int64) {
	t.Helper()
	c := circuit.New()
	if err := build(c); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	evFD := c.NewEval()
	n := c.N()
	rng := rand.New(rand.NewSource(seed))
	const h = 1e-6
	for trial := 0; trial < states; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*5 - 1 // −1 .. 4 V, current unknowns too
		}
		tt := rng.Float64() * 1e-9
		ev.At(x, tt)
		for j := 0; j < n; j++ {
			xp := append([]float64(nil), x...)
			xp[j] += h
			evFD.At(xp, tt)
			fp := append([]float64(nil), evFD.F...)
			qp := append([]float64(nil), evFD.Q...)
			xm := append([]float64(nil), x...)
			xm[j] -= h
			evFD.At(xm, tt)
			for i := 0; i < n; i++ {
				gfd := (fp[i] - evFD.F[i]) / (2 * h)
				if !num.ApproxEqual(gfd, ev.G.At(i, j), 2e-3, 1e-7) {
					t.Errorf("%s trial %d: G(%d,%d) fd=%v stamped=%v", name, trial, i, j, gfd, ev.G.At(i, j))
				}
				cfd := (qp[i] - evFD.Q[i]) / (2 * h)
				if !num.ApproxEqual(cfd, ev.C.At(i, j), 2e-3, 1e-16) {
					t.Errorf("%s trial %d: C(%d,%d) fd=%v stamped=%v", name, trial, i, j, cfd, ev.C.At(i, j))
				}
			}
		}
	}
}

func TestResistorStampConsistency(t *testing.T) {
	stampConsistency(t, "resistor", func(c *circuit.Circuit) error {
		r, err := NewResistor("r1", c.Node("a"), c.Node("b"), 1e3)
		if err != nil {
			return err
		}
		c.AddDevice(r)
		return nil
	}, 3, 1)
}

func TestCapacitorStampConsistency(t *testing.T) {
	stampConsistency(t, "capacitor", func(c *circuit.Circuit) error {
		cp, err := NewCapacitor("c1", c.Node("a"), c.Node("b"), 1e-14)
		if err != nil {
			return err
		}
		c.AddDevice(cp)
		return nil
	}, 3, 2)
}

func TestVSourceStampConsistency(t *testing.T) {
	stampConsistency(t, "vsource", func(c *circuit.Circuit) error {
		v, err := NewVSource("v1", c.Node("a"), circuit.Ground, wave.DC(2.5), RoleSupply)
		if err != nil {
			return err
		}
		c.AddDevice(v)
		// A resistor keeps node b referenced.
		r, err := NewResistor("r1", c.Node("a"), c.Node("b"), 1e4)
		if err != nil {
			return err
		}
		c.AddDevice(r)
		return nil
	}, 3, 3)
}

func TestMOSFETStampConsistencyNMOS(t *testing.T) {
	stampConsistency(t, "nmos", func(c *circuit.Circuit) error {
		m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), circuit.Ground, testModel(NMOS), 4e-6, 0.25e-6)
		if err != nil {
			return err
		}
		c.AddDevice(m)
		return nil
	}, 8, 4)
}

func TestMOSFETStampConsistencyPMOS(t *testing.T) {
	stampConsistency(t, "pmos", func(c *circuit.Circuit) error {
		m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), c.Node("vdd"), testModel(PMOS), 8e-6, 0.25e-6)
		if err != nil {
			return err
		}
		c.AddDevice(m)
		return nil
	}, 8, 5)
}

func TestMOSFETChargeConservation(t *testing.T) {
	// Total stamped charge must be zero when no capacitor touches ground.
	c := circuit.New()
	m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), c.Node("b"), testModel(NMOS), 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(m)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	x := []float64{1.2, 0.7, -0.3, 0.1}
	ev.At(x, 0)
	sum := 0.0
	for _, q := range ev.Q {
		sum += q
	}
	if math.Abs(sum) > 1e-20 {
		t.Errorf("charge not conserved: %v", sum)
	}
}

func TestMOSFETCurrentDirectionNMOSvsPMOS(t *testing.T) {
	// NMOS with vgs > VT, vds > 0 conducts into the drain (positive f at
	// drain row means current leaving the node through the device is
	// positive ... f_d = +Id: current flows d→s internally).
	eval := func(typ MOSType, x []float64) []float64 {
		c := circuit.New()
		c.Gmin = 0 // keep assertions exact
		m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), circuit.Ground, testModel(typ), 4e-6, 0.25e-6)
		if err != nil {
			t.Fatal(err)
		}
		c.AddDevice(m)
		if err := c.Finalize(); err != nil {
			t.Fatal(err)
		}
		ev := c.NewEval()
		ev.At(x, 0)
		return append([]float64(nil), ev.F...)
	}
	// Nodes: d=0, g=1, s=2.
	fn := eval(NMOS, []float64{2.5, 2.5, 0})
	if fn[0] <= 0 {
		t.Errorf("NMOS on: f[d] = %v, want > 0", fn[0])
	}
	if !num.ApproxEqual(fn[0], -fn[2], 1e-9, 1e-15) {
		t.Errorf("KCL: f[d]=%v f[s]=%v", fn[0], fn[2])
	}
	// PMOS with source at 2.5, gate 0, drain 0: conducts, current into the
	// drain node is negative (flows source→drain, out of the drain row).
	fp := eval(PMOS, []float64{0, 0, 2.5})
	if fp[0] >= 0 {
		t.Errorf("PMOS on: f[d] = %v, want < 0", fp[0])
	}
	// Off states.
	if f := eval(NMOS, []float64{2.5, 0, 0}); f[0] != 0 {
		t.Errorf("NMOS off but f[d] = %v", f[0])
	}
	if f := eval(PMOS, []float64{0, 2.5, 2.5}); f[0] != 0 {
		t.Errorf("PMOS off but f[d] = %v", f[0])
	}
}

func TestMOSFETSourceDrainSwapSymmetry(t *testing.T) {
	// The channel is symmetric in this model: swapping drain/source voltages
	// reverses the current exactly (lambda applies to |vds| in the
	// effective frame).
	c := circuit.New()
	c.Gmin = 0 // keep the symmetry exact
	m, err := NewMOSFET("m1", c.Node("d"), c.Node("g"), c.Node("s"), circuit.Ground, testModel(NMOS), 4e-6, 0.25e-6)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(m)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	ev.At([]float64{1.8, 2.5, 0.3}, 0)
	fwd := ev.F[0]
	ev.At([]float64{0.3, 2.5, 1.8}, 0)
	rev := ev.F[0]
	if !num.ApproxEqual(fwd, -rev, 1e-12, 1e-18) {
		t.Errorf("swap asymmetric: %v vs %v", fwd, rev)
	}
}

func TestResistorValidation(t *testing.T) {
	if _, err := NewResistor("r", 0, 1, 0); err == nil {
		t.Error("zero resistance accepted")
	}
	if _, err := NewCapacitor("c", 0, 1, -1); err == nil {
		t.Error("negative capacitance accepted")
	}
}

func TestVSourceRoles(t *testing.T) {
	if RoleSupply.String() != "supply" || RoleClock.String() != "clock" || RoleData.String() != "data" {
		t.Error("role strings wrong")
	}
	if SourceRole(42).String() == "" {
		t.Error("unknown role should format")
	}
	if _, err := NewVSource("v", 0, circuit.Ground, nil, RoleSupply); err == nil {
		t.Error("nil waveform accepted")
	}
	// Data role requires skew derivatives.
	if _, err := NewVSource("v", 0, circuit.Ground, wave.DC(1), RoleData); err == nil {
		t.Error("data source without skew derivatives accepted")
	}
	dp, err := wave.NewDataPulse(11.05e-9, 0, 2.5, 0.1e-9, 0.1e-9, wave.RampSmooth)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVSource("v", 0, circuit.Ground, dp, RoleData); err != nil {
		t.Errorf("valid data source rejected: %v", err)
	}
}

func TestVSourceBranchEquationAndSens(t *testing.T) {
	c := circuit.New()
	dp, err := wave.NewDataPulse(1e-9, 0, 2.5, 0.1e-9, 0.1e-9, wave.RampSmooth)
	if err != nil {
		t.Fatal(err)
	}
	dp.SetSkews(100e-12, 100e-12)
	v, err := NewVSource("vd", c.Node("a"), circuit.Ground, dp, RoleData)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(v)
	r, err := NewResistor("r", c.Node("a"), circuit.Ground, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(r)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	// Unknowns: node a (=0), branch (=1).
	x := []float64{1.7, -0.4}
	tt := 0.93e-9 // mid leading ramp (50% at 0.9 ns)
	ev.At(x, tt)
	// Branch row: f = v(a), src = −V(t).
	if !num.ApproxEqual(ev.F[1], 1.7, 1e-12, 0) {
		t.Errorf("branch f = %v", ev.F[1])
	}
	if !num.ApproxEqual(ev.Src[1], -dp.V(tt), 1e-12, 0) {
		t.Errorf("branch src = %v, want %v", ev.Src[1], -dp.V(tt))
	}
	// Node row: f gets branch current plus resistor current plus gmin.
	wantNode := -0.4 + 1.7/1e3 + 1e-12*1.7
	if !num.ApproxEqual(ev.F[0], wantNode, 1e-9, 1e-15) {
		t.Errorf("node f = %v, want %v", ev.F[0], wantNode)
	}
	// Skew sensitivity lands on the branch row with sign −z.
	zs := make([]float64, 2)
	zh := make([]float64, 2)
	ev.AddSkewSens(tt, zs, zh)
	if !num.ApproxEqual(zs[1], -dp.DTauS(tt), 1e-12, 0) || zs[0] != 0 {
		t.Errorf("zs = %v", zs)
	}
	if !num.ApproxEqual(zh[1], -dp.DTauH(tt), 1e-12, 0) {
		t.Errorf("zh = %v", zh)
	}
}
