// Package device implements the circuit elements used by the simulator:
// linear resistors and capacitors, independent voltage sources driven by
// waveforms (including the skew-parametric data source), and a
// Shichman-Hodges (SPICE level-1) MOSFET with constant intrinsic
// capacitances. Each device stamps the MNA system through the slot handles
// it acquires in Setup.
package device

import (
	"fmt"

	"latchchar/internal/circuit"
)

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	Inst   string
	P, N   circuit.UnknownID
	Ohms   float64
	gSlots [4]circuit.Slot
}

// NewResistor returns a resistor between p and n.
func NewResistor(name string, p, n circuit.UnknownID, ohms float64) (*Resistor, error) {
	if ohms <= 0 {
		return nil, fmt.Errorf("device: resistor %s must have positive resistance, got %g", name, ohms)
	}
	return &Resistor{Inst: name, P: p, N: n, Ohms: ohms}, nil
}

// Name implements circuit.Device.
func (r *Resistor) Name() string { return r.Inst }

// Setup implements circuit.Device.
func (r *Resistor) Setup(ctx *circuit.SetupCtx) error {
	r.gSlots[0] = ctx.G(r.P, r.P)
	r.gSlots[1] = ctx.G(r.P, r.N)
	r.gSlots[2] = ctx.G(r.N, r.P)
	r.gSlots[3] = ctx.G(r.N, r.N)
	return nil
}

// Eval implements circuit.Device.
func (r *Resistor) Eval(ctx *circuit.EvalCtx) {
	g := 1 / r.Ohms
	i := g * (ctx.V(r.P) - ctx.V(r.N))
	ctx.AddF(r.P, i)
	ctx.AddF(r.N, -i)
	ctx.AddG(r.gSlots[0], g)
	ctx.AddG(r.gSlots[1], -g)
	ctx.AddG(r.gSlots[2], -g)
	ctx.AddG(r.gSlots[3], g)
}

// Capacitor is a linear two-terminal capacitor.
type Capacitor struct {
	Inst   string
	P, N   circuit.UnknownID
	Farads float64
	cSlots [4]circuit.Slot
}

// NewCapacitor returns a capacitor between p and n.
func NewCapacitor(name string, p, n circuit.UnknownID, farads float64) (*Capacitor, error) {
	if farads <= 0 {
		return nil, fmt.Errorf("device: capacitor %s must have positive capacitance, got %g", name, farads)
	}
	return &Capacitor{Inst: name, P: p, N: n, Farads: farads}, nil
}

// Name implements circuit.Device.
func (c *Capacitor) Name() string { return c.Inst }

// Setup implements circuit.Device.
func (c *Capacitor) Setup(ctx *circuit.SetupCtx) error {
	c.cSlots[0] = ctx.C(c.P, c.P)
	c.cSlots[1] = ctx.C(c.P, c.N)
	c.cSlots[2] = ctx.C(c.N, c.P)
	c.cSlots[3] = ctx.C(c.N, c.N)
	return nil
}

// Eval implements circuit.Device.
func (c *Capacitor) Eval(ctx *circuit.EvalCtx) {
	q := c.Farads * (ctx.V(c.P) - ctx.V(c.N))
	ctx.AddQ(c.P, q)
	ctx.AddQ(c.N, -q)
	ctx.AddC(c.cSlots[0], c.Farads)
	ctx.AddC(c.cSlots[1], -c.Farads)
	ctx.AddC(c.cSlots[2], -c.Farads)
	ctx.AddC(c.cSlots[3], c.Farads)
}

// ConductivePairs implements circuit.ConductiveDevice.
func (r *Resistor) ConductivePairs() [][2]circuit.UnknownID {
	return [][2]circuit.UnknownID{{r.P, r.N}}
}

// Terminals lists the resistor's node connections (for netlist lint).
func (r *Resistor) Terminals() []circuit.UnknownID { return []circuit.UnknownID{r.P, r.N} }

// Terminals lists the capacitor's node connections (for netlist lint).
// Capacitors expose no conductive pairs: a node reachable only through
// capacitors has no DC path.
func (c *Capacitor) Terminals() []circuit.UnknownID { return []circuit.UnknownID{c.P, c.N} }
