package device

import (
	"fmt"
	"math"

	"latchchar/internal/circuit"
)

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

const (
	// NMOS is an n-channel device.
	NMOS MOSType = iota
	// PMOS is a p-channel device.
	PMOS
)

func (t MOSType) String() string {
	if t == PMOS {
		return "pmos"
	}
	return "nmos"
}

// MOSModel holds the process ("model card") parameters of a level-1
// Shichman-Hodges MOSFET. Voltages and thresholds are expressed in the
// device's own polarity: VT0 and KP are positive for both types.
type MOSModel struct {
	Type MOSType
	// VT0 is the zero-bias threshold voltage magnitude (V).
	VT0 float64
	// KP is the process transconductance µ·Cox (A/V²).
	KP float64
	// Lambda is the channel-length modulation coefficient (1/V).
	Lambda float64
	// Cox is the gate oxide capacitance per area (F/m²); the intrinsic gate
	// capacitance Cox·W·L is split equally between Cgs and Cgd.
	Cox float64
	// CJ is the junction capacitance per gate width (F/m), applied from
	// drain and source to the bulk node.
	CJ float64
	// NLGate selects the nonlinear (Meyer-style) gate capacitance model:
	// the channel share of the gate capacitance turns on smoothly above
	// threshold instead of being constant. See nlcap.go.
	NLGate bool
	// NLDelta is the turn-on window of the nonlinear gate capacitance in
	// volts (default 0.3 V).
	NLDelta float64
}

// Validate reports whether the model parameters are usable.
func (m MOSModel) Validate() error {
	if m.VT0 <= 0 {
		return fmt.Errorf("device: VT0 must be positive (magnitude), got %g", m.VT0)
	}
	if m.KP <= 0 {
		return fmt.Errorf("device: KP must be positive, got %g", m.KP)
	}
	if m.Lambda < 0 {
		return fmt.Errorf("device: Lambda must be non-negative, got %g", m.Lambda)
	}
	if m.Cox < 0 || m.CJ < 0 {
		return fmt.Errorf("device: capacitance parameters must be non-negative")
	}
	if m.NLDelta < 0 || math.IsNaN(m.NLDelta) || math.IsInf(m.NLDelta, 0) {
		return fmt.Errorf("device: NLDelta must be a finite non-negative window, got %g", m.NLDelta)
	}
	return nil
}

// MOSFET is a three-terminal (drain, gate, source) level-1 MOSFET with a
// bulk connection used only for its constant junction capacitances. The
// model handles source/drain inversion and, for PMOS, operates on negated
// terminal voltages so that one n-type core serves both polarities.
type MOSFET struct {
	Inst       string
	D, G, S, B circuit.UnknownID
	Model      MOSModel
	// W, L are the channel width and length (m).
	W, L float64

	gSlots [9]circuit.Slot // rows {D,S} × cols {G,D,S}; plus unused padding
	cgs    *capStamp
	cgd    *capStamp
	cdb    *capStamp
	csb    *capStamp
	nlgs   *nlGateStamp
	nlgd   *nlGateStamp
}

type capStamp struct {
	p, n  circuit.UnknownID
	c     float64
	slots [4]circuit.Slot
}

func (cs *capStamp) setup(ctx *circuit.SetupCtx) {
	cs.slots[0] = ctx.C(cs.p, cs.p)
	cs.slots[1] = ctx.C(cs.p, cs.n)
	cs.slots[2] = ctx.C(cs.n, cs.p)
	cs.slots[3] = ctx.C(cs.n, cs.n)
}

func (cs *capStamp) eval(ctx *circuit.EvalCtx) {
	q := cs.c * (ctx.V(cs.p) - ctx.V(cs.n))
	ctx.AddQ(cs.p, q)
	ctx.AddQ(cs.n, -q)
	ctx.AddC(cs.slots[0], cs.c)
	ctx.AddC(cs.slots[1], -cs.c)
	ctx.AddC(cs.slots[2], -cs.c)
	ctx.AddC(cs.slots[3], cs.c)
}

// NewMOSFET constructs a MOSFET instance. b is the bulk node (typically
// ground for NMOS, the supply rail for PMOS); it only receives junction
// capacitance.
func NewMOSFET(name string, d, g, s, b circuit.UnknownID, model MOSModel, w, l float64) (*MOSFET, error) {
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("device: mosfet %s: %w", name, err)
	}
	if w <= 0 || l <= 0 {
		return nil, fmt.Errorf("device: mosfet %s: W and L must be positive, got %g, %g", name, w, l)
	}
	m := &MOSFET{Inst: name, D: d, G: g, S: s, B: b, Model: model, W: w, L: l}
	cj := model.CJ * w
	if model.NLGate {
		// Split the total gate capacitance Cox·W·L into a constant overlap
		// share and a threshold-gated channel share per terminal, so that in
		// strong inversion the total matches the constant-capacitance model.
		cox := model.Cox * w * l
		delta := model.NLDelta
		if delta <= 0 {
			delta = 0.3
		}
		sgn := 1.0
		if model.Type == PMOS {
			sgn = -1
		}
		m.nlgs = &nlGateStamp{g: g, t: s, cov: 0.1 * cox, cch: 0.4 * cox, vt: model.VT0, dlt: delta, sgn: sgn}
		m.nlgd = &nlGateStamp{g: g, t: d, cov: 0.1 * cox, cch: 0.4 * cox, vt: model.VT0, dlt: delta, sgn: sgn}
	} else {
		cgate := model.Cox * w * l / 2
		m.cgs = &capStamp{p: g, n: s, c: cgate}
		m.cgd = &capStamp{p: g, n: d, c: cgate}
	}
	if cj > 0 {
		m.cdb = &capStamp{p: d, n: b, c: cj}
		m.csb = &capStamp{p: s, n: b, c: cj}
	}
	return m, nil
}

// Name implements circuit.Device.
func (m *MOSFET) Name() string { return m.Inst }

// Setup implements circuit.Device.
func (m *MOSFET) Setup(ctx *circuit.SetupCtx) error {
	// Channel current I flows into D and out of S; it depends on vG, vD, vS.
	cols := [3]circuit.UnknownID{m.G, m.D, m.S}
	for k, c := range cols {
		m.gSlots[k] = ctx.G(m.D, c)
		m.gSlots[3+k] = ctx.G(m.S, c)
	}
	if m.nlgs != nil {
		m.nlgs.setup(ctx)
		m.nlgd.setup(ctx)
	} else {
		m.cgs.setup(ctx)
		m.cgd.setup(ctx)
	}
	if m.cdb != nil {
		m.cdb.setup(ctx)
		m.csb.setup(ctx)
	}
	return nil
}

// ids evaluates the n-type level-1 drain current and its derivatives for
// effective terminal voltages with vds ≥ 0.
func (m *MOSFET) ids(vgs, vds float64) (id, gm, gds float64) {
	mdl := m.Model
	beta := mdl.KP * m.W / m.L
	vov := vgs - mdl.VT0
	if vov <= 0 {
		return 0, 0, 0
	}
	cl := 1 + mdl.Lambda*vds
	if vds < vov {
		// Triode region.
		id = beta * (vov*vds - vds*vds/2) * cl
		gm = beta * vds * cl
		gds = beta*(vov-vds)*cl + beta*(vov*vds-vds*vds/2)*mdl.Lambda
		return id, gm, gds
	}
	// Saturation.
	id = beta / 2 * vov * vov * cl
	gm = beta * vov * cl
	gds = beta / 2 * vov * vov * mdl.Lambda
	return id, gm, gds
}

// Eval implements circuit.Device.
func (m *MOSFET) Eval(ctx *circuit.EvalCtx) {
	// Polarity transform: for PMOS evaluate the n-type core on negated
	// voltages; the current into the drain negates while conductances keep
	// their sign (d(−I')/d(−v) = dI'/dv).
	sgn := 1.0
	if m.Model.Type == PMOS {
		sgn = -1
	}
	vg := sgn * ctx.V(m.G)
	vd := sgn * ctx.V(m.D)
	vs := sgn * ctx.V(m.S)

	var id, dIdG, dIdD, dIdS float64
	if vd >= vs {
		ids, gm, gds := m.ids(vg-vs, vd-vs)
		id = ids
		dIdG = gm
		dIdD = gds
		dIdS = -(gm + gds)
	} else {
		// Inverted operation: effective drain is the source terminal.
		ids, gm, gds := m.ids(vg-vd, vs-vd)
		id = -ids
		dIdG = -gm
		dIdS = -gds
		dIdD = gm + gds
	}

	ctx.AddF(m.D, sgn*id)
	ctx.AddF(m.S, -sgn*id)
	derivs := [3]float64{dIdG, dIdD, dIdS}
	for k, dv := range derivs {
		ctx.AddG(m.gSlots[k], dv)
		ctx.AddG(m.gSlots[3+k], -dv)
	}

	if m.nlgs != nil {
		m.nlgs.eval(ctx)
		m.nlgd.eval(ctx)
	} else {
		m.cgs.eval(ctx)
		m.cgd.eval(ctx)
	}
	if m.cdb != nil {
		m.cdb.eval(ctx)
		m.csb.eval(ctx)
	}
}

// ConductivePairs implements circuit.ConductiveDevice: the channel joins
// drain and source (counted as conductive regardless of bias — the lint is
// topological).
func (m *MOSFET) ConductivePairs() [][2]circuit.UnknownID {
	return [][2]circuit.UnknownID{{m.D, m.S}}
}

// Terminals lists the MOSFET's node connections (for netlist lint).
func (m *MOSFET) Terminals() []circuit.UnknownID {
	return []circuit.UnknownID{m.D, m.G, m.S, m.B}
}

// BypassTerminals implements circuit.StateOnlyDevice: every stamp above
// (channel current, gate and junction charges and their Jacobians) is a pure
// function of the four terminal voltages — never of time — so the evaluator
// may replay cached stamps while D, G, S and B sit still.
func (m *MOSFET) BypassTerminals() []circuit.UnknownID {
	return []circuit.UnknownID{m.D, m.G, m.S, m.B}
}
