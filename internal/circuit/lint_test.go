package circuit

import (
	"strings"
	"testing"
)

// lintDevice is a configurable stub implementing the lint interfaces.
type lintDevice struct {
	name  string
	pairs [][2]UnknownID
	terms []UnknownID
}

func (d *lintDevice) Name() string                    { return d.name }
func (d *lintDevice) Setup(ctx *SetupCtx) error       { ctx.G(d.terms[0], d.terms[0]); return nil }
func (d *lintDevice) Eval(ctx *EvalCtx)               {}
func (d *lintDevice) ConductivePairs() [][2]UnknownID { return d.pairs }
func (d *lintDevice) Terminals() []UnknownID          { return d.terms }

func TestLintCleanCircuit(t *testing.T) {
	c := New()
	a := c.Node("a")
	b := c.Node("b")
	c.AddDevice(&lintDevice{name: "r1", pairs: [][2]UnknownID{{a, Ground}}, terms: []UnknownID{a, Ground}})
	c.AddDevice(&lintDevice{name: "r2", pairs: [][2]UnknownID{{a, b}}, terms: []UnknownID{a, b}})
	c.AddDevice(&lintDevice{name: "r3", pairs: [][2]UnknownID{{b, Ground}}, terms: []UnknownID{b, Ground}})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if warns := c.Lint(); len(warns) != 0 {
		t.Errorf("clean circuit flagged: %v", warns)
	}
}

func TestLintFloatingNode(t *testing.T) {
	c := New()
	a := c.Node("a")
	fl := c.Node("floaty")
	c.AddDevice(&lintDevice{name: "r1", pairs: [][2]UnknownID{{a, Ground}}, terms: []UnknownID{a, Ground}})
	// A capacitor-like device: terminals but no conductive pairs.
	c.AddDevice(&lintDevice{name: "c1", terms: []UnknownID{a, fl}})
	c.AddDevice(&lintDevice{name: "c2", terms: []UnknownID{fl, Ground}})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	warns := c.Lint()
	found := false
	for _, w := range warns {
		if w.Kind == "no-ground-path" && w.Node == "floaty" {
			found = true
		}
		if w.Node == "a" {
			t.Errorf("node a wrongly flagged: %v", w)
		}
	}
	if !found {
		t.Errorf("floating node not flagged: %v", warns)
	}
}

func TestLintIsolatedNode(t *testing.T) {
	c := New()
	a := c.Node("a")
	iso := c.Node("iso")
	c.AddDevice(&lintDevice{name: "r1", pairs: [][2]UnknownID{{a, Ground}}, terms: []UnknownID{a, Ground}})
	// Two capacitor-like devices meet at iso: touched, but no conduction at all.
	c.AddDevice(&lintDevice{name: "c1", terms: []UnknownID{a, iso}})
	c.AddDevice(&lintDevice{name: "c2", terms: []UnknownID{iso, Ground}})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range c.Lint() {
		if w.Kind == "floating-node" && w.Node == "iso" {
			found = true
		}
	}
	if !found {
		t.Errorf("conduction-isolated node not flagged as floating-node: %v", c.Lint())
	}
}

func TestLintSingleTerminalNode(t *testing.T) {
	c := New()
	a := c.Node("a")
	stub := c.Node("stub")
	c.AddDevice(&lintDevice{name: "r1", pairs: [][2]UnknownID{{a, Ground}}, terms: []UnknownID{a, Ground}})
	c.AddDevice(&lintDevice{name: "r2", pairs: [][2]UnknownID{{a, stub}}, terms: []UnknownID{a, stub}})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	warns := c.Lint()
	found := false
	for _, w := range warns {
		if w.Kind == "single-terminal-node" && w.Node == "stub" {
			found = true
			if !strings.Contains(w.String(), "stub") {
				t.Error("String() missing node name")
			}
		}
	}
	if !found {
		t.Errorf("dangling node not flagged: %v", warns)
	}
}

func TestLintBeforeFinalizePanics(t *testing.T) {
	c := New()
	c.Node("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Lint()
}
