package circuit

import (
	"math"
	"testing"
)

// bypassStubG is stubG with eval counting and the StateOnlyDevice contract:
// its stamps depend only on the voltages of a and b.
type bypassStubG struct {
	stubG
	evals int
}

func (s *bypassStubG) Eval(ctx *EvalCtx) {
	s.evals++
	s.stubG.Eval(ctx)
}

func (s *bypassStubG) BypassTerminals() []UnknownID { return []UnknownID{s.a, s.b} }

func buildBypassPair(t *testing.T) (*Circuit, *Eval, *bypassStubG, []float64) {
	t.Helper()
	c := New()
	a, b := c.Node("a"), c.Node("b")
	d := &bypassStubG{stubG: stubG{name: "g1", a: a, b: b, g: 1e-3}}
	c.AddDevice(d)
	c.AddDevice(&stubG{name: "g2", a: b, b: Ground, g: 2e-3})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	ev.EnableBypass(1e-6)
	return c, ev, d, make([]float64, c.N())
}

// TestBypassReplaysWithinTolerance checks the tape lifecycle: record on the
// first assembly, replay with identical results while terminals sit inside
// vtol of the snapshot, re-record once any terminal escapes.
func TestBypassReplaysWithinTolerance(t *testing.T) {
	_, ev, d, x := buildBypassPair(t)
	x[0], x[1] = 1.0, 0.25

	ev.At(x, 0)
	if d.evals != 1 || ev.Bypasses != 0 {
		t.Fatalf("first assembly: evals=%d bypasses=%d", d.evals, ev.Bypasses)
	}
	refF := append([]float64(nil), ev.F...)
	refG := append([]float64(nil), ev.G.Val...)

	// Nudge a watched terminal by less than vtol: replayed, same stamps.
	x[0] += 5e-7
	ev.At(x, 0)
	if d.evals != 1 || ev.Bypasses != 1 {
		t.Fatalf("within-vtol assembly: evals=%d bypasses=%d", d.evals, ev.Bypasses)
	}
	// F carries the per-node gmin leak, which tracks x even under replay;
	// compare just above gmin scale.
	for i := range refF {
		if math.Abs(ev.F[i]-refF[i]) > 1e-10 {
			t.Errorf("F[%d] = %g, want replayed %g", i, ev.F[i], refF[i])
		}
	}
	for i := range refG {
		if ev.G.Val[i] != refG[i] {
			t.Errorf("G.Val[%d] = %g, want replayed %g", i, ev.G.Val[i], refG[i])
		}
	}

	// Escape the tolerance: the device re-evaluates and the stamps track x.
	x[0] = 2.0
	ev.At(x, 0)
	if d.evals != 2 || ev.Bypasses != 1 {
		t.Fatalf("outside-vtol assembly: evals=%d bypasses=%d", d.evals, ev.Bypasses)
	}
	wantI := 1e-3 * (x[0] - x[1])
	if math.Abs(ev.F[0]-wantI) > 1e-10 {
		t.Errorf("F[0] = %g after re-record, want %g", ev.F[0], wantI)
	}
}

// TestBypassComparesAgainstSnapshot pins the boundedness property: many
// sub-vtol drifts in the same direction accumulate past vtol relative to
// the recording snapshot and must trigger a re-evaluation — comparing
// against the previous assembly instead would let the error grow without
// bound.
func TestBypassComparesAgainstSnapshot(t *testing.T) {
	_, ev, d, x := buildBypassPair(t)
	x[0] = 1.0
	ev.At(x, 0)
	for i := 0; i < 4; i++ {
		x[0] += 4e-7 // each move < vtol vs the previous eval
		ev.At(x, 0)
	}
	// Total drift 1.6 µV > vtol: at least one assembly re-evaluated.
	if d.evals < 2 {
		t.Errorf("device evaluated %d times; cumulative drift past vtol must re-record", d.evals)
	}
}

// TestHoldBypassForcesExactEvaluation checks the livelock escape used by the
// transient engine: held assemblies run the real models (and leave the tape
// untouched), resumed assemblies may replay again.
func TestHoldBypassForcesExactEvaluation(t *testing.T) {
	_, ev, d, x := buildBypassPair(t)
	x[0] = 1.0
	ev.At(x, 0)

	ev.HoldBypass(true)
	ev.At(x, 0)
	ev.At(x, 0)
	if d.evals != 3 || ev.Bypasses != 0 {
		t.Fatalf("held assemblies: evals=%d bypasses=%d, want exact evaluation", d.evals, ev.Bypasses)
	}

	ev.HoldBypass(false)
	ev.At(x, 0)
	if d.evals != 3 || ev.Bypasses != 1 {
		t.Fatalf("resumed assembly: evals=%d bypasses=%d, want replay", d.evals, ev.Bypasses)
	}
}
