// Package circuit implements modified nodal analysis (MNA) assembly for the
// simulator. A Circuit owns the unknown numbering (node voltages followed by
// branch currents), the fixed sparsity patterns of the conductance Jacobian
// G = ∂f/∂x and the charge Jacobian C = ∂q/∂x, and evaluates the vectors and
// matrices of the circuit equation
//
//	d/dt q(x) + f(x) + src(t) = 0
//
// where src(t) collects all independent-source contributions, split per the
// paper into clock-like terms bc·uc(t) and the data term bd·ud(t, τs, τh).
//
// Devices register their matrix entries once (Setup) and then stamp values
// through integer slots on every evaluation, so no pattern work happens in
// the inner Newton loop.
package circuit

import (
	"fmt"

	"latchchar/internal/sparse"
)

// UnknownID identifies one MNA unknown: a node voltage or a branch current.
// Ground is the reference node and is not an unknown.
type UnknownID int

// Ground is the reference node; stamps against it are dropped.
const Ground UnknownID = -1

// Slot addresses one stored matrix entry for fast value stamping.
// The zero Slot is invalid; devices must use the Slot returned by SetupCtx.
type Slot int

// noSlot marks pattern entries involving ground.
const noSlot Slot = -1

// Device is a circuit element. Setup is called exactly once when the
// circuit is finalized; Eval is called for every residual/Jacobian
// evaluation and must only stamp values through the handles acquired in
// Setup.
type Device interface {
	// Name returns the instance name, used in diagnostics.
	Name() string
	// Setup registers matrix pattern entries and any extra branch unknowns.
	Setup(ctx *SetupCtx) error
	// Eval stamps q, f, src values and C, G matrix values for the state and
	// time in ctx.
	Eval(ctx *EvalCtx)
}

// DataSource is implemented by devices whose source waveform depends on the
// setup/hold skews (τs, τh); they contribute the sensitivity right-hand
// sides bd·zs(t) and bd·zh(t) of paper eq. (7).
type DataSource interface {
	Device
	// AddSkewSens accumulates bd·zs(t) into zs and bd·zh(t) into zh.
	AddSkewSens(t float64, zs, zh []float64)
}

// Circuit is an MNA circuit under construction or finalized for evaluation.
// A Circuit (and evaluators derived from it) is not safe for concurrent
// use; build one circuit per goroutine via a factory function.
type Circuit struct {
	nodeIndex map[string]UnknownID
	nodeNames []string
	devices   []Device
	dataSrcs  []DataSource

	numBranches int
	branchNames []string

	// Gmin is the conductance from every node to ground, stamped
	// unconditionally so that floating dynamic nodes keep the DC system
	// nonsingular (SPICE-style). Set before Finalize; default 1e-12 S.
	Gmin float64

	finalized bool
	gEntries  []patEntry // provisional G entries in setup order
	cEntries  []patEntry
	gSlotMap  []int // provisional slot -> CSR value index
	cSlotMap  []int
	gPat      *sparse.CSR // pattern with zero values (template)
	cPat      *sparse.CSR
}

type patEntry struct{ i, j UnknownID }

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		nodeIndex: make(map[string]UnknownID),
		Gmin:      1e-12,
	}
}

// Node returns the unknown for the named node, creating it on first use.
// The names "0", "gnd" and "GND" denote ground.
func (c *Circuit) Node(name string) UnknownID {
	if name == "0" || name == "gnd" || name == "GND" {
		return Ground
	}
	if id, ok := c.nodeIndex[name]; ok {
		return id
	}
	if c.finalized {
		panic(fmt.Sprintf("circuit: new node %q after Finalize", name))
	}
	id := UnknownID(len(c.nodeNames))
	c.nodeIndex[name] = id
	c.nodeNames = append(c.nodeNames, name)
	return id
}

// LookupNode returns the unknown for a node that must already exist.
func (c *Circuit) LookupNode(name string) (UnknownID, error) {
	if name == "0" || name == "gnd" || name == "GND" {
		return Ground, nil
	}
	id, ok := c.nodeIndex[name]
	if !ok {
		return Ground, fmt.Errorf("circuit: unknown node %q", name)
	}
	return id, nil
}

// NodeName returns a human-readable name for an unknown.
func (c *Circuit) NodeName(id UnknownID) string {
	switch {
	case id == Ground:
		return "gnd"
	case int(id) < len(c.nodeNames):
		return c.nodeNames[id]
	default:
		bi := int(id) - len(c.nodeNames)
		if bi < len(c.branchNames) {
			return "i(" + c.branchNames[bi] + ")"
		}
		return fmt.Sprintf("unknown%d", int(id))
	}
}

// AddDevice appends a device to the circuit.
func (c *Circuit) AddDevice(d Device) {
	if c.finalized {
		panic("circuit: AddDevice after Finalize")
	}
	c.devices = append(c.devices, d)
}

// Devices returns the devices in insertion order.
func (c *Circuit) Devices() []Device { return c.devices }

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// N returns the total unknown count (nodes + branches). Valid after
// Finalize.
func (c *Circuit) N() int { return len(c.nodeNames) + c.numBranches }

// Finalize runs device Setup, assigns branch unknowns and freezes the
// sparsity patterns. It must be called exactly once, after which Eval
// contexts can be created.
func (c *Circuit) Finalize() error {
	if c.finalized {
		return fmt.Errorf("circuit: already finalized")
	}
	if len(c.devices) == 0 {
		return fmt.Errorf("circuit: no devices")
	}
	setup := &SetupCtx{c: c}
	for _, d := range c.devices {
		if err := d.Setup(setup); err != nil {
			return fmt.Errorf("circuit: setup of %s: %w", d.Name(), err)
		}
	}
	c.finalized = true

	n := c.N()
	// Gmin diagonal entries for every node row keep G nonsingular at DC.
	for i := 0; i < len(c.nodeNames); i++ {
		c.gEntries = append(c.gEntries, patEntry{UnknownID(i), UnknownID(i)})
	}
	build := func(entries []patEntry) (*sparse.CSR, []int) {
		b := sparse.NewBuilder(n)
		for _, e := range entries {
			if e.i == Ground || e.j == Ground {
				continue
			}
			b.Add(int(e.i), int(e.j), 0)
		}
		pat := b.Build()
		slots := make([]int, len(entries))
		for k, e := range entries {
			if e.i == Ground || e.j == Ground {
				slots[k] = -1
				continue
			}
			idx, ok := pat.Index(int(e.i), int(e.j))
			if !ok {
				panic("circuit: pattern entry vanished")
			}
			slots[k] = idx
		}
		return pat, slots
	}
	c.gPat, c.gSlotMap = build(c.gEntries)
	c.cPat, c.cSlotMap = build(c.cEntries)
	return nil
}

// Finalized reports whether Finalize has run.
func (c *Circuit) Finalized() bool { return c.finalized }

// SetupCtx is passed to Device.Setup for registering unknowns and pattern
// entries.
type SetupCtx struct {
	c *Circuit
}

// Branch allocates a new branch-current unknown (e.g. for a voltage
// source) and returns its id.
func (s *SetupCtx) Branch(name string) UnknownID {
	id := UnknownID(len(s.c.nodeNames) + s.c.numBranches)
	s.c.numBranches++
	s.c.branchNames = append(s.c.branchNames, name)
	return id
}

// G registers a conductance-Jacobian pattern entry (i, j) and returns its
// stamping slot. Entries touching ground return a slot whose stamps are
// dropped.
func (s *SetupCtx) G(i, j UnknownID) Slot {
	if i == Ground || j == Ground {
		return noSlot
	}
	s.c.gEntries = append(s.c.gEntries, patEntry{i, j})
	return Slot(len(s.c.gEntries) - 1)
}

// C registers a charge-Jacobian pattern entry (i, j) and returns its slot.
func (s *SetupCtx) C(i, j UnknownID) Slot {
	if i == Ground || j == Ground {
		return noSlot
	}
	s.c.cEntries = append(s.c.cEntries, patEntry{i, j})
	return Slot(len(s.c.cEntries) - 1)
}

// RegisterDataSource marks d as a skew-dependent source whose sensitivity
// right-hand sides are collected by AddSkewSens.
func (s *SetupCtx) RegisterDataSource(d DataSource) {
	s.c.dataSrcs = append(s.c.dataSrcs, d)
}

// Eval owns the storage for one assembly of the circuit equations. Create
// one per solver (DC or transient) and reuse it across evaluations.
type Eval struct {
	c *Circuit
	// Q, F, Src are the assembled vectors: charges, static currents and
	// independent-source contributions at the last At call.
	Q, F, Src []float64
	// C and G are the assembled Jacobians ∂q/∂x and ∂f/∂x.
	C, G *sparse.CSR

	// Bypasses counts device evaluations skipped by the latency bypass
	// (EnableBypass) over the evaluator's lifetime.
	Bypasses int

	bypassVTol float64
	bypassHold bool         // replay suspended (HoldBypass); tapes stay valid
	tapes      []*stampTape // index-aligned with c.devices; nil entry = not bypassable

	ctx EvalCtx
}

// NewEval allocates evaluation storage. The circuit must be finalized.
func (c *Circuit) NewEval() *Eval {
	if !c.finalized {
		panic("circuit: NewEval before Finalize")
	}
	n := c.N()
	ev := &Eval{
		c:   c,
		Q:   make([]float64, n),
		F:   make([]float64, n),
		Src: make([]float64, n),
		C:   c.cPat.Clone(),
		G:   c.gPat.Clone(),
	}
	ev.ctx.ev = ev
	return ev
}

// At assembles q, f, src, C and G for state x at time t.
func (ev *Eval) At(x []float64, t float64) {
	if len(x) != ev.c.N() {
		panic("circuit: Eval.At state length mismatch")
	}
	for i := range ev.Q {
		ev.Q[i] = 0
		ev.F[i] = 0
		ev.Src[i] = 0
	}
	ev.C.ZeroVals()
	ev.G.ZeroVals()
	ev.ctx.X = x
	ev.ctx.T = t
	if ev.tapes == nil || ev.bypassHold {
		for _, d := range ev.c.devices {
			d.Eval(&ev.ctx)
		}
	} else {
		for di, d := range ev.c.devices {
			tp := ev.tapes[di]
			if tp == nil {
				d.Eval(&ev.ctx)
				continue
			}
			if tp.fresh(x, ev.bypassVTol) {
				tp.replay(ev)
				ev.Bypasses++
				continue
			}
			tp.snapshot(x)
			tp.recs = tp.recs[:0]
			ev.ctx.tape = tp
			d.Eval(&ev.ctx)
			ev.ctx.tape = nil
			tp.valid = true
		}
	}
	// Gmin stamps: conductance to ground on every node.
	gmin := ev.c.Gmin
	numNodes := len(ev.c.nodeNames)
	base := len(ev.c.gEntries) - numNodes
	for i := 0; i < numNodes; i++ {
		ev.F[i] += gmin * x[i]
		ev.G.Val[ev.c.gSlotMap[base+i]] += gmin
	}
}

// AddSkewSens accumulates the data-source sensitivity right-hand sides
// bd·zs(t) into zs and bd·zh(t) into zh (paper eq. (7)).
func (ev *Eval) AddSkewSens(t float64, zs, zh []float64) {
	for _, d := range ev.c.dataSrcs {
		d.AddSkewSens(t, zs, zh)
	}
}

// Circuit returns the evaluated circuit.
func (ev *Eval) Circuit() *Circuit { return ev.c }

// EvalCtx is the stamping context handed to Device.Eval.
type EvalCtx struct {
	ev *Eval
	// X is the state vector being evaluated; T the time.
	X []float64
	T float64

	// tape, when non-nil, records the current device's stamps for later
	// bypass replay (see bypass.go).
	tape *stampTape
}

// V returns the value of unknown id in the current state (0 for ground).
func (e *EvalCtx) V(id UnknownID) float64 {
	if id == Ground {
		return 0
	}
	return e.X[id]
}

// AddF accumulates into the static-current vector f.
func (e *EvalCtx) AddF(id UnknownID, v float64) {
	if id != Ground {
		e.ev.F[id] += v
		if e.tape != nil {
			e.tape.recs = append(e.tape.recs, stampRec{tapeF, int32(id), v})
		}
	}
}

// AddQ accumulates into the charge vector q.
func (e *EvalCtx) AddQ(id UnknownID, v float64) {
	if id != Ground {
		e.ev.Q[id] += v
		if e.tape != nil {
			e.tape.recs = append(e.tape.recs, stampRec{tapeQ, int32(id), v})
		}
	}
}

// AddSrc accumulates into the independent-source vector src(t).
func (e *EvalCtx) AddSrc(id UnknownID, v float64) {
	if id != Ground {
		e.ev.Src[id] += v
		if e.tape != nil {
			e.tape.recs = append(e.tape.recs, stampRec{tapeSrc, int32(id), v})
		}
	}
}

// AddG accumulates into the conductance Jacobian through a Setup slot.
func (e *EvalCtx) AddG(s Slot, v float64) {
	if s == noSlot {
		return
	}
	if idx := e.ev.c.gSlotMap[s]; idx >= 0 {
		e.ev.G.Val[idx] += v
		if e.tape != nil {
			e.tape.recs = append(e.tape.recs, stampRec{tapeG, int32(idx), v})
		}
	}
}

// AddC accumulates into the charge Jacobian through a Setup slot.
func (e *EvalCtx) AddC(s Slot, v float64) {
	if s == noSlot {
		return
	}
	if idx := e.ev.c.cSlotMap[s]; idx >= 0 {
		e.ev.C.Val[idx] += v
		if e.tape != nil {
			e.tape.recs = append(e.tape.recs, stampRec{tapeC, int32(idx), v})
		}
	}
}
