package circuit

// Cross-lane device-eval sharing for the block-transient kernel: lanes of a
// block evaluate the same circuit at nearby states, so a device whose
// terminal voltages in THIS lane sit within the bypass tolerance of the
// snapshot another lane's tape was cut at can replay that lane's stamps
// verbatim. The tapes store resolved value indices against the circuit's
// shared slot maps, so a record cut on one Eval applies bit-identically to
// any other Eval of the same circuit.

// AtWithDonor assembles q, f, src, C and G for state x at time t like At,
// but additionally offers every bypassable device the donor evaluator's
// standing tape: when the device's own tape is stale yet the donor's tape is
// fresh against x (within the bypass tolerance), the donor's stamps are
// replayed — and copied onto the device's own tape so later assemblies of
// this lane keep hitting without the donor. The donor must evaluate the same
// circuit. It returns the number of device evaluations served by a donor
// replay; own-tape replays count in ev.Bypasses as usual. With the bypass
// disabled or held, AtWithDonor behaves exactly like At.
func (ev *Eval) AtWithDonor(x []float64, t float64, donor *Eval) int {
	if donor != nil && donor.c != ev.c {
		panic("circuit: AtWithDonor donor evaluates a different circuit")
	}
	if ev.tapes == nil || ev.bypassHold || donor == nil || donor.tapes == nil {
		ev.At(x, t)
		return 0
	}
	if len(x) != ev.c.N() {
		panic("circuit: Eval.At state length mismatch")
	}
	for i := range ev.Q {
		ev.Q[i] = 0
		ev.F[i] = 0
		ev.Src[i] = 0
	}
	ev.C.ZeroVals()
	ev.G.ZeroVals()
	ev.ctx.X = x
	ev.ctx.T = t
	replays := 0
	for di, d := range ev.c.devices {
		tp := ev.tapes[di]
		if tp == nil {
			d.Eval(&ev.ctx)
			continue
		}
		if tp.fresh(x, ev.bypassVTol) {
			tp.replay(ev)
			ev.Bypasses++
			continue
		}
		if dtp := donor.tapes[di]; dtp != nil && dtp.fresh(x, ev.bypassVTol) {
			dtp.replay(ev)
			tp.copyFrom(dtp)
			replays++
			continue
		}
		tp.snapshot(x)
		tp.recs = tp.recs[:0]
		ev.ctx.tape = tp
		d.Eval(&ev.ctx)
		ev.ctx.tape = nil
		tp.valid = true
	}
	gmin := ev.c.Gmin
	numNodes := len(ev.c.nodeNames)
	base := len(ev.c.gEntries) - numNodes
	for i := 0; i < numNodes; i++ {
		ev.F[i] += gmin * x[i]
		ev.G.Val[ev.c.gSlotMap[base+i]] += gmin
	}
	return replays
}

// copyFrom makes tp a replica of src (snapshot and records), reusing tp's
// storage. Both tapes must watch the same terminals (true by construction:
// tapes are index-aligned with one circuit's device list).
func (tp *stampTape) copyFrom(src *stampTape) {
	copy(tp.vSnap, src.vSnap)
	tp.recs = append(tp.recs[:0], src.recs...)
	tp.valid = true
}
