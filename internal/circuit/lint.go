package circuit

import (
	"fmt"
	"sort"
)

// Netlist lint: structural checks that catch the usual latch-netlist
// mistakes before a characterization run spends transient simulations on
// them. The checks are topological, built from devices that report their
// conductive connectivity.

// ConductiveDevice is implemented by devices that provide a DC conduction
// path between unknowns (resistors, sources, MOSFET channels). Devices that
// do not implement it (capacitors) contribute no conductive edges.
type ConductiveDevice interface {
	Device
	// ConductivePairs returns terminal pairs that can conduct DC current.
	ConductivePairs() [][2]UnknownID
}

// LintWarning is one structural finding.
type LintWarning struct {
	// Kind is a stable identifier: "floating-node", "single-terminal-node"
	// or "no-ground-path".
	Kind string
	// Node is the affected node's name.
	Node string
	// Detail is a human-readable explanation.
	Detail string
}

func (w LintWarning) String() string {
	return fmt.Sprintf("%s: node %q: %s", w.Kind, w.Node, w.Detail)
}

// Lint analyzes the finalized circuit's topology and returns warnings:
//
//   - "no-ground-path": the node cannot reach ground through any chain of
//     conductive devices — its DC level is set only by the gmin leak, which
//     usually means a missing transistor connection or a node name typo.
//     (Dynamic storage nodes connected through MOSFET channels do NOT
//     trigger this: a channel counts as a conductive edge even when it may
//     be off at a particular bias.)
//   - "single-terminal-node": exactly one device terminal touches the node.
func (c *Circuit) Lint() []LintWarning {
	if !c.finalized {
		panic("circuit: Lint before Finalize")
	}
	n := len(c.nodeNames)
	touch := make([]int, n)
	// Union-find over nodes ∪ {ground}; index n is ground.
	parent := make([]int, n+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	idx := func(id UnknownID) int {
		if id == Ground {
			return n
		}
		return int(id)
	}
	for _, d := range c.devices {
		cd, ok := d.(ConductiveDevice)
		if !ok {
			continue
		}
		for _, pair := range cd.ConductivePairs() {
			a, b := pair[0], pair[1]
			if a != Ground && int(a) < n {
				touch[a]++
			}
			if b != Ground && int(b) < n {
				touch[b]++
			}
			// Branch unknowns are not nodes; clamp into the node set by
			// skipping pairs that reference them.
			if (a != Ground && int(a) >= n) || (b != Ground && int(b) >= n) {
				continue
			}
			union(idx(a), idx(b))
		}
	}
	// Count every device terminal (conductive or not) for the
	// single-terminal check.
	termCount := make([]int, n)
	for _, d := range c.devices {
		if tp, ok := d.(interface{ Terminals() []UnknownID }); ok {
			for _, id := range tp.Terminals() {
				if id != Ground && int(id) < n {
					termCount[id]++
				}
			}
		}
	}

	var warns []LintWarning
	groundRoot := find(n)
	for i := 0; i < n; i++ {
		if find(i) != groundRoot {
			warns = append(warns, LintWarning{
				Kind:   "no-ground-path",
				Node:   c.nodeNames[i],
				Detail: "no conductive path to ground; DC level set only by gmin",
			})
		}
		if termCount[i] == 1 {
			warns = append(warns, LintWarning{
				Kind:   "single-terminal-node",
				Node:   c.nodeNames[i],
				Detail: "only one device terminal touches this node (typo?)",
			})
		}
	}
	sort.Slice(warns, func(a, b int) bool {
		if warns[a].Node != warns[b].Node {
			return warns[a].Node < warns[b].Node
		}
		return warns[a].Kind < warns[b].Kind
	})
	return warns
}
