package circuit

import (
	"fmt"
	"sort"
)

// Netlist lint: structural checks that catch the usual latch-netlist
// mistakes before a characterization run spends transient simulations on
// them. The checks are topological, built from devices that report their
// conductive connectivity.
//
// Lint predates the analyzer driver in internal/vet and is kept as a thin
// adapter over the shared Topology computation; new code should run the vet
// registry instead, which covers these checks (as the floating-node,
// no-ground-path and single-terminal analyzers) plus stimulus- and
// configuration-level ones, with structured diagnostics.

// ConductiveDevice is implemented by devices that provide a DC conduction
// path between unknowns (resistors, sources, MOSFET channels). Devices that
// do not implement it (capacitors) contribute no conductive edges.
type ConductiveDevice interface {
	Device
	// ConductivePairs returns terminal pairs that can conduct DC current.
	ConductivePairs() [][2]UnknownID
}

// LintWarning is one structural finding.
type LintWarning struct {
	// Kind is a stable identifier: "floating-node", "no-ground-path" or
	// "single-terminal-node".
	Kind string
	// Node is the affected node's name.
	Node string
	// Detail is a human-readable explanation.
	Detail string
}

func (w LintWarning) String() string {
	return fmt.Sprintf("%s: node %q: %s", w.Kind, w.Node, w.Detail)
}

// Lint analyzes the finalized circuit's topology and returns warnings:
//
//   - "floating-node": no conductive device terminal touches the node at all
//     — only capacitors (or nothing) connect to it, so its DC level is set
//     solely by the gmin leak.
//   - "no-ground-path": the node cannot reach ground through any chain of
//     conductive devices, which usually means a missing transistor
//     connection or a node name typo. (Dynamic storage nodes connected
//     through MOSFET channels do NOT trigger this: a channel counts as a
//     conductive edge even when it may be off at a particular bias.)
//   - "single-terminal-node": exactly one device terminal touches the node.
//
// Deprecated: use the analyzer registry in internal/vet, which runs these
// checks alongside stimulus and configuration validation and returns
// structured diagnostics. Lint remains for existing callers.
func (c *Circuit) Lint() []LintWarning {
	top := c.Topology()
	var warns []LintWarning
	for i := 0; i < top.NumNodes(); i++ {
		name := top.NodeName(i)
		if top.ConductiveDegree(i) == 0 && top.TerminalCount(i) > 0 {
			warns = append(warns, LintWarning{
				Kind:   "floating-node",
				Node:   name,
				Detail: "no conductive device terminal touches this node; DC level set only by gmin",
			})
		}
		if !top.ReachesGround(i) {
			warns = append(warns, LintWarning{
				Kind:   "no-ground-path",
				Node:   name,
				Detail: "no conductive path to ground; DC level set only by gmin",
			})
		}
		if top.TerminalCount(i) == 1 {
			warns = append(warns, LintWarning{
				Kind:   "single-terminal-node",
				Node:   name,
				Detail: "only one device terminal touches this node (typo?)",
			})
		}
	}
	sort.Slice(warns, func(a, b int) bool {
		if warns[a].Node != warns[b].Node {
			return warns[a].Node < warns[b].Node
		}
		return warns[a].Kind < warns[b].Kind
	})
	return warns
}
