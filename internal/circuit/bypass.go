package circuit

import "math"

// Device-eval latency bypass (Nagel's SPICE2 technique): a device whose
// stamps are a pure function of a few terminal voltages does not need to be
// re-evaluated while those voltages sit still. The Eval records the device's
// stamp stream (a "tape") the first time it runs and replays it verbatim on
// later assemblies whenever every watched terminal has moved less than a
// tolerance since the tape was cut. The comparison is always against the
// snapshot the tape was recorded at — never the previous assembly — so the
// replay error stays bounded by the tolerance no matter how many assemblies
// the bypass survives.

// StateOnlyDevice is implemented by devices eligible for the latency bypass.
// The contract: every value the device stamps (q, f, C, G) must be a pure
// function of the voltages of the returned terminals — no dependence on time
// or on any other unknown — and the device must not stamp src(t). MOSFET
// models qualify; independent sources and anything clocked do not.
type StateOnlyDevice interface {
	Device
	// BypassTerminals returns the unknowns the device's stamps depend on.
	// Ground entries are allowed and compare as 0 V.
	BypassTerminals() []UnknownID
}

// stampKind tags one replayable stamp record.
type stampKind uint8

const (
	tapeQ stampKind = iota
	tapeF
	tapeSrc
	tapeC // idx is a resolved C.Val index
	tapeG // idx is a resolved G.Val index
)

type stampRec struct {
	kind stampKind
	idx  int32
	v    float64
}

// stampTape is the recorded stamp stream of one bypassable device plus the
// terminal-voltage snapshot it was cut at.
type stampTape struct {
	terms []UnknownID
	vSnap []float64
	valid bool
	recs  []stampRec
}

func newStampTape(terms []UnknownID) *stampTape {
	return &stampTape{terms: terms, vSnap: make([]float64, len(terms))}
}

func termV(x []float64, id UnknownID) float64 {
	if id == Ground {
		return 0
	}
	return x[id]
}

// fresh reports whether every watched terminal is within vtol of the
// recording snapshot.
func (tp *stampTape) fresh(x []float64, vtol float64) bool {
	if !tp.valid {
		return false
	}
	for i, id := range tp.terms {
		if math.Abs(termV(x, id)-tp.vSnap[i]) > vtol {
			return false
		}
	}
	return true
}

func (tp *stampTape) snapshot(x []float64) {
	for i, id := range tp.terms {
		tp.vSnap[i] = termV(x, id)
	}
}

// replay re-applies the recorded stamps to the assembly arrays.
func (tp *stampTape) replay(ev *Eval) {
	for _, r := range tp.recs {
		switch r.kind {
		case tapeQ:
			ev.Q[r.idx] += r.v
		case tapeF:
			ev.F[r.idx] += r.v
		case tapeSrc:
			ev.Src[r.idx] += r.v
		case tapeC:
			ev.C.Val[r.idx] += r.v
		case tapeG:
			ev.G.Val[r.idx] += r.v
		}
	}
}

// HoldBypass suspends (true) or resumes (false) the replay path without
// touching the recorded tapes. Integrators hold the bypass after the first
// Newton iteration of a step: replaying frozen stamps across iterations
// freezes the residual too, which can pin ‖dx‖ just above the convergence
// tolerance forever (the classic bypass livelock). Held evaluations run the
// exact models and leave the standing tapes as they are — the freshness
// test always compares against the recording snapshot, so resuming later
// keeps the replay error bounded by the tolerance.
func (ev *Eval) HoldBypass(hold bool) { ev.bypassHold = hold }

// EnableBypass activates the device-latency bypass for every device
// implementing StateOnlyDevice. vtol is the terminal-voltage tolerance in
// volts below which a device's cached stamps are replayed instead of
// re-evaluated; vtol ≤ 0 selects the 1 µV default. Calling EnableBypass
// again only updates the tolerance; existing tapes stay valid (they are
// revalidated against the new tolerance on the next assembly).
func (ev *Eval) EnableBypass(vtol float64) {
	if vtol <= 0 {
		vtol = DefaultBypassVTol
	}
	ev.bypassVTol = vtol
	if ev.tapes != nil {
		return
	}
	ev.tapes = make([]*stampTape, len(ev.c.devices))
	for i, d := range ev.c.devices {
		if sd, ok := d.(StateOnlyDevice); ok {
			ev.tapes[i] = newStampTape(sd.BypassTerminals())
		}
	}
}

// DefaultBypassVTol is the terminal-voltage tolerance EnableBypass uses when
// none is given: well under the Newton VTol-scale solution accuracy, so the
// bypass perturbs converged states by less than the solver already tolerates.
const DefaultBypassVTol = 1e-6
