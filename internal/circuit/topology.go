package circuit

// Topology is a static connectivity summary of a finalized circuit: how many
// device terminals and conductive device terminals touch each node, and which
// nodes can reach ground through chains of conductive devices. It is the
// shared substrate for the structural analyzers in internal/vet and for the
// legacy Lint adapter.
//
// "Conductive" is topological, not electrical: a MOSFET channel counts as a
// conductive edge even at biases where it is off, so dynamic storage nodes
// reached through pass devices are considered grounded.
type Topology struct {
	c *Circuit
	// conductiveDeg[i] counts conductive-device terminal touches of node i.
	conductiveDeg []int
	// termCount[i] counts all device terminal touches of node i.
	termCount []int
	// reachesGround[i] reports a conductive path from node i to ground.
	reachesGround []bool
}

// Topology computes the connectivity summary. The circuit must be finalized.
func (c *Circuit) Topology() *Topology {
	if !c.finalized {
		panic("circuit: Topology before Finalize")
	}
	n := len(c.nodeNames)
	t := &Topology{
		c:             c,
		conductiveDeg: make([]int, n),
		termCount:     make([]int, n),
		reachesGround: make([]bool, n),
	}
	// Union-find over nodes ∪ {ground}; index n is ground.
	parent := make([]int, n+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	idx := func(id UnknownID) int {
		if id == Ground {
			return n
		}
		return int(id)
	}
	for _, d := range c.devices {
		cd, ok := d.(ConductiveDevice)
		if !ok {
			continue
		}
		for _, pair := range cd.ConductivePairs() {
			a, b := pair[0], pair[1]
			if a != Ground && int(a) < n {
				t.conductiveDeg[a]++
			}
			if b != Ground && int(b) < n {
				t.conductiveDeg[b]++
			}
			// Branch unknowns are not nodes; skip pairs that reference them.
			if (a != Ground && int(a) >= n) || (b != Ground && int(b) >= n) {
				continue
			}
			union(idx(a), idx(b))
		}
	}
	for _, d := range c.devices {
		if tp, ok := d.(interface{ Terminals() []UnknownID }); ok {
			for _, id := range tp.Terminals() {
				if id != Ground && int(id) < n {
					t.termCount[id]++
				}
			}
		}
	}
	groundRoot := find(n)
	for i := 0; i < n; i++ {
		t.reachesGround[i] = find(i) == groundRoot
	}
	return t
}

// NumNodes returns the number of non-ground nodes.
func (t *Topology) NumNodes() int { return len(t.termCount) }

// NodeName returns the name of node i.
func (t *Topology) NodeName(i int) string { return t.c.nodeNames[i] }

// ConductiveDegree returns how many conductive device terminals touch node i.
// Zero means the node is isolated from all DC conduction (only capacitors, or
// nothing, touch it) and its DC level is set solely by the gmin leak.
func (t *Topology) ConductiveDegree(i int) int { return t.conductiveDeg[i] }

// TerminalCount returns how many device terminals of any kind touch node i.
func (t *Topology) TerminalCount(i int) int { return t.termCount[i] }

// ReachesGround reports whether node i has a conductive path to ground.
func (t *Topology) ReachesGround(i int) bool { return t.reachesGround[i] }
