package circuit

import (
	"testing"
)

// stub device for bookkeeping tests: a conductance between two unknowns.
type stubG struct {
	name  string
	a, b  UnknownID
	g     float64
	slots [4]Slot
}

func (s *stubG) Name() string { return s.name }
func (s *stubG) Setup(ctx *SetupCtx) error {
	s.slots[0] = ctx.G(s.a, s.a)
	s.slots[1] = ctx.G(s.a, s.b)
	s.slots[2] = ctx.G(s.b, s.a)
	s.slots[3] = ctx.G(s.b, s.b)
	return nil
}
func (s *stubG) Eval(ctx *EvalCtx) {
	i := s.g * (ctx.V(s.a) - ctx.V(s.b))
	ctx.AddF(s.a, i)
	ctx.AddF(s.b, -i)
	ctx.AddG(s.slots[0], s.g)
	ctx.AddG(s.slots[1], -s.g)
	ctx.AddG(s.slots[2], -s.g)
	ctx.AddG(s.slots[3], s.g)
}

func TestNodeCreationAndGroundAliases(t *testing.T) {
	c := New()
	a := c.Node("a")
	a2 := c.Node("a")
	if a != a2 {
		t.Error("repeated Node returned different ids")
	}
	b := c.Node("b")
	if a == b {
		t.Error("distinct nodes share an id")
	}
	for _, g := range []string{"0", "gnd", "GND"} {
		if c.Node(g) != Ground {
			t.Errorf("%q should be ground", g)
		}
	}
	if c.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
	if c.NodeName(a) != "a" || c.NodeName(Ground) != "gnd" {
		t.Error("NodeName wrong")
	}
}

func TestLookupNode(t *testing.T) {
	c := New()
	a := c.Node("a")
	got, err := c.LookupNode("a")
	if err != nil || got != a {
		t.Errorf("LookupNode(a) = %v, %v", got, err)
	}
	if _, err := c.LookupNode("missing"); err == nil {
		t.Error("missing node should error")
	}
	if g, err := c.LookupNode("0"); err != nil || g != Ground {
		t.Error("ground lookup failed")
	}
}

func TestFinalizeLifecycle(t *testing.T) {
	c := New()
	if err := c.Finalize(); err == nil {
		t.Error("empty circuit should not finalize")
	}
	c = New()
	d := &stubG{name: "g1", a: c.Node("a"), b: Ground, g: 1e-3}
	c.AddDevice(d)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !c.Finalized() {
		t.Error("Finalized should be true")
	}
	if err := c.Finalize(); err == nil {
		t.Error("double Finalize should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddDevice after Finalize should panic")
			}
		}()
		c.AddDevice(d)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("new Node after Finalize should panic")
			}
		}()
		c.Node("new")
	}()
}

func TestEvalAssembleAndGmin(t *testing.T) {
	c := New()
	c.Gmin = 1e-9
	a := c.Node("a")
	b := c.Node("b")
	c.AddDevice(&stubG{name: "g1", a: a, b: b, g: 2e-3})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if c.N() != 2 {
		t.Fatalf("N = %d", c.N())
	}
	ev := c.NewEval()
	x := []float64{2, 1}
	ev.At(x, 0)
	// f[a] = g(va−vb) + gmin·va
	want := 2e-3*1 + 1e-9*2
	if ev.F[0] != want {
		t.Errorf("F[a] = %v, want %v", ev.F[0], want)
	}
	if g := ev.G.At(0, 0); g != 2e-3+1e-9 {
		t.Errorf("G(a,a) = %v", g)
	}
	if g := ev.G.At(0, 1); g != -2e-3 {
		t.Errorf("G(a,b) = %v", g)
	}
	// Re-evaluation must not accumulate.
	ev.At(x, 0)
	if ev.F[0] != want {
		t.Errorf("second At accumulated: %v", ev.F[0])
	}
}

func TestEvalGroundStampsDropped(t *testing.T) {
	c := New()
	a := c.Node("a")
	c.AddDevice(&stubG{name: "g1", a: a, b: Ground, g: 1e-3})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	ev.At([]float64{3}, 0)
	if ev.G.NNZ() != 1 {
		t.Errorf("expected only the (a,a) entry, NNZ = %d", ev.G.NNZ())
	}
	if ev.F[0] != 3e-3+3*c.Gmin {
		t.Errorf("F[a] = %v", ev.F[0])
	}
}

func TestBranchAllocation(t *testing.T) {
	c := New()
	a := c.Node("a")
	dev := &branchStub{a: a}
	c.AddDevice(dev)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if c.N() != 2 {
		t.Fatalf("N = %d, want node+branch", c.N())
	}
	if dev.br != UnknownID(1) {
		t.Errorf("branch id = %d", dev.br)
	}
	if c.NodeName(dev.br) != "i(vb)" {
		t.Errorf("branch name = %q", c.NodeName(dev.br))
	}
}

type branchStub struct {
	a  UnknownID
	br UnknownID
	s  [2]Slot
}

func (b *branchStub) Name() string { return "vb" }
func (b *branchStub) Setup(ctx *SetupCtx) error {
	b.br = ctx.Branch("vb")
	b.s[0] = ctx.G(b.a, b.br)
	b.s[1] = ctx.G(b.br, b.a)
	return nil
}
func (b *branchStub) Eval(ctx *EvalCtx) {
	ctx.AddF(b.a, ctx.V(b.br))
	ctx.AddG(b.s[0], 1)
	ctx.AddF(b.br, ctx.V(b.a))
	ctx.AddG(b.s[1], 1)
	ctx.AddSrc(b.br, -1.5)
}

func TestSrcVector(t *testing.T) {
	c := New()
	a := c.Node("a")
	c.AddDevice(&branchStub{a: a})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	ev.At([]float64{0, 0}, 0)
	if ev.Src[1] != -1.5 {
		t.Errorf("Src[branch] = %v", ev.Src[1])
	}
	if ev.Src[0] != 0 {
		t.Errorf("Src[node] = %v", ev.Src[0])
	}
}

func TestNewEvalBeforeFinalizePanics(t *testing.T) {
	c := New()
	c.Node("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.NewEval()
}

func TestEvalStateLengthChecked(t *testing.T) {
	c := New()
	c.AddDevice(&stubG{name: "g", a: c.Node("a"), b: Ground, g: 1})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong state length")
		}
	}()
	ev.At([]float64{1, 2}, 0)
}
