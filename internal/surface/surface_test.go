package surface

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-15 {
			t.Fatalf("v = %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("n=1 should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func analyticFactory(f func(s, h float64) float64) Factory {
	return func() (EvalFunc, error) {
		return func(s, h float64) (float64, error) { return f(s, h), nil }, nil
	}
}

func TestGenerateFillsGrid(t *testing.T) {
	sAxis := Linspace(0, 1, 11)
	hAxis := Linspace(0, 2, 21)
	sf, err := Generate(sAxis, hAxis, analyticFactory(func(s, h float64) float64 { return s + 10*h }), 4)
	if err != nil {
		t.Fatal(err)
	}
	if sf.NumSamples() != 11*21 {
		t.Errorf("NumSamples = %d", sf.NumSamples())
	}
	for i, s := range sf.S {
		for j, h := range sf.H {
			if math.Abs(sf.At(i, j)-(s+10*h)) > 1e-12 {
				t.Fatalf("V[%d][%d] = %v", i, j, sf.At(i, j))
			}
		}
	}
}

func TestGenerateParallelUsesIndependentEvaluators(t *testing.T) {
	var built int32
	factory := func() (EvalFunc, error) {
		atomic.AddInt32(&built, 1)
		return func(s, h float64) (float64, error) { return s * h, nil }, nil
	}
	if _, err := Generate(Linspace(0, 1, 20), Linspace(0, 1, 20), factory, 4); err != nil {
		t.Fatal(err)
	}
	if built != 4 {
		t.Errorf("factory built %d evaluators, want 4", built)
	}
}

func TestGeneratePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	factory := func() (EvalFunc, error) {
		return func(s, h float64) (float64, error) {
			if s > 0.5 {
				return 0, boom
			}
			return 0, nil
		}, nil
	}
	if _, err := Generate(Linspace(0, 1, 10), Linspace(0, 1, 10), factory, 2); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	badFactory := func() (EvalFunc, error) { return nil, boom }
	if _, err := Generate(Linspace(0, 1, 4), Linspace(0, 1, 4), badFactory, 2); !errors.Is(err, boom) {
		t.Errorf("factory err = %v", err)
	}
}

func TestGenerateValidatesAxes(t *testing.T) {
	f := analyticFactory(func(s, h float64) float64 { return 0 })
	if _, err := Generate([]float64{0}, Linspace(0, 1, 3), f, 1); err == nil {
		t.Error("single-point axis accepted")
	}
	if _, err := Generate([]float64{1, 0}, Linspace(0, 1, 3), f, 1); err == nil {
		t.Error("descending axis accepted")
	}
}

func TestContourOfLinearField(t *testing.T) {
	// f = s + h; contour at level 1 is the line s + h = 1.
	sf, err := Generate(Linspace(0, 1, 21), Linspace(0, 1, 21),
		analyticFactory(func(s, h float64) float64 { return s + h }), 1)
	if err != nil {
		t.Fatal(err)
	}
	polys := sf.Contour(1)
	if len(polys) == 0 {
		t.Fatal("no contour found")
	}
	count := 0
	for _, pl := range polys {
		for _, p := range pl.Pts {
			if math.Abs(p[0]+p[1]-1) > 1e-9 {
				t.Fatalf("contour point off the line: %v", p)
			}
			count++
		}
	}
	if count < 20 {
		t.Errorf("too few contour points: %d", count)
	}
}

func TestContourOfCircleField(t *testing.T) {
	// f = s² + h²; contour at level r² is a circle. Interpolated points
	// land within one cell diagonal of the true circle.
	n := 81
	sf, err := Generate(Linspace(-1, 1, n), Linspace(-1, 1, n),
		analyticFactory(func(s, h float64) float64 { return s*s + h*h }), 2)
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.6
	polys := sf.Contour(r * r)
	if len(polys) == 0 {
		t.Fatal("no contour")
	}
	cell := 2.0 / float64(n-1)
	for _, pl := range polys {
		for _, p := range pl.Pts {
			rad := math.Hypot(p[0], p[1])
			if math.Abs(rad-r) > cell {
				t.Fatalf("point %v radius %v, want %v ± %v", p, rad, r, cell)
			}
		}
	}
	// A circle contour should link into one long closed-ish polyline.
	if polys[0].Len() < 40 {
		t.Errorf("main polyline too short: %d", polys[0].Len())
	}
}

func TestContourEmptyWhenLevelOutside(t *testing.T) {
	sf, err := Generate(Linspace(0, 1, 5), Linspace(0, 1, 5),
		analyticFactory(func(s, h float64) float64 { return s }), 1)
	if err != nil {
		t.Fatal(err)
	}
	if polys := sf.Contour(5); len(polys) != 0 {
		t.Errorf("expected no contour, got %d polylines", len(polys))
	}
}

func TestContourSaddleCellsHandled(t *testing.T) {
	// f = s·h has a saddle at the origin; the contour at 0 must not crash
	// and must produce points on the axes.
	sf, err := Generate(Linspace(-1, 1, 21), Linspace(-1, 1, 21),
		analyticFactory(func(s, h float64) float64 { return s * h }), 1)
	if err != nil {
		t.Fatal(err)
	}
	polys := sf.Contour(0.25)
	if len(polys) == 0 {
		t.Fatal("no contour")
	}
	for _, pl := range polys {
		for _, p := range pl.Pts {
			if math.Abs(p[0]*p[1]-0.25) > 0.05 {
				t.Fatalf("point %v violates s·h=0.25", p)
			}
		}
	}
}

func TestPointSegDist(t *testing.T) {
	// Perpendicular case.
	if d := pointSegDist([2]float64{0, 1}, [2]float64{-1, 0}, [2]float64{1, 0}); math.Abs(d-1) > 1e-14 {
		t.Errorf("perp: %v", d)
	}
	// Beyond the segment end: distance to the endpoint.
	if d := pointSegDist([2]float64{2, 1}, [2]float64{-1, 0}, [2]float64{1, 0}); math.Abs(d-math.Sqrt2) > 1e-14 {
		t.Errorf("end: %v", d)
	}
	// Degenerate segment.
	if d := pointSegDist([2]float64{3, 4}, [2]float64{0, 0}, [2]float64{0, 0}); math.Abs(d-5) > 1e-14 {
		t.Errorf("degenerate: %v", d)
	}
}

func TestDeviation(t *testing.T) {
	ref := []Polyline{{Pts: [][2]float64{{0, 0}, {1, 0}, {2, 0}}}}
	pts := [][2]float64{{0.5, 0.1}, {1.5, 0.3}}
	max, mean, err := Deviation(pts, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(max-0.3) > 1e-14 || math.Abs(mean-0.2) > 1e-14 {
		t.Errorf("max=%v mean=%v", max, mean)
	}
	if _, _, err := Deviation(nil, ref); err == nil {
		t.Error("empty points accepted")
	}
	if _, _, err := Deviation(pts, nil); err == nil {
		t.Error("empty reference accepted")
	}
}

func TestDistanceToPointSinglePointPolyline(t *testing.T) {
	polys := []Polyline{{Pts: [][2]float64{{1, 1}}}}
	if d := DistanceToPoint([2]float64{1, 2}, polys); math.Abs(d-1) > 1e-14 {
		t.Errorf("d = %v", d)
	}
}

// Property: marching squares of a monotone field crosses every grid column
// exactly once (single-valued contour), so linking yields one polyline.
func TestContourMonotoneFieldSinglePolyline(t *testing.T) {
	sf, err := Generate(Linspace(0, 1, 31), Linspace(0, 1, 31),
		analyticFactory(func(s, h float64) float64 { return s + 0.3*h }), 1)
	if err != nil {
		t.Fatal(err)
	}
	polys := sf.Contour(0.65)
	if len(polys) != 1 {
		t.Fatalf("expected a single polyline, got %d", len(polys))
	}
}

// Property: for random smooth quadratic fields, every marching-squares
// contour point evaluates to the level within the interpolation error bound
// of one cell.
func TestContourRandomQuadraticFieldsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 20; trial++ {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		d, e := rng.NormFloat64(), rng.NormFloat64()
		field := func(s, h float64) float64 {
			return a*s*s + b*h*h + c*s*h + d*s + e*h
		}
		n := 41
		sf, err := Generate(Linspace(-1, 1, n), Linspace(-1, 1, n), analyticFactory(field), 1)
		if err != nil {
			t.Fatal(err)
		}
		// Pick a level inside the field's range so a contour exists.
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range sf.V {
			for _, v := range sf.V[i] {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
		}
		if hi-lo < 1e-6 {
			continue
		}
		level := lo + (hi-lo)*(0.25+0.5*rng.Float64())
		polys := sf.Contour(level)
		if len(polys) == 0 {
			t.Fatalf("trial %d: no contour at level %v in [%v, %v]", trial, level, lo, hi)
		}
		// Second-order interpolation error bound: |f''|·cell²/8 with a
		// comfortable safety factor.
		cell := 2.0 / float64(n-1)
		maxCurv := 2 * (math.Abs(a) + math.Abs(b) + math.Abs(c))
		bound := maxCurv*cell*cell + 1e-9
		for _, pl := range polys {
			for _, p := range pl.Pts {
				if err := math.Abs(field(p[0], p[1]) - level); err > bound {
					t.Fatalf("trial %d: contour point off level by %v (bound %v)", trial, err, bound)
				}
			}
		}
	}
}
