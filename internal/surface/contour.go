package surface

import (
	"fmt"
	"math"
	"sort"
)

// Polyline is an ordered chain of (s, h) points.
type Polyline struct {
	Pts [][2]float64
}

// Len returns the number of points.
func (p Polyline) Len() int { return len(p.Pts) }

// segment is one marching-squares crossing segment.
type segment struct {
	a, b [2]float64
}

// Contour extracts the iso-lines of the surface at the given level using
// marching squares with linear interpolation along cell edges; the
// segments are then linked into polylines. Saddle cells are disambiguated
// by the cell-center average.
func (s *Surface) Contour(level float64) []Polyline {
	// Samples exactly at the level make cells degenerate (zero-length
	// segments and 3-way junctions); nudge them off the level by a tiny
	// fraction of the value range before classification.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range s.V {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	eps := (hi - lo) * 1e-12
	if eps == 0 {
		eps = 1e-300
	}
	var segs []segment
	ns, nh := len(s.S), len(s.H)
	for i := 0; i < ns-1; i++ {
		for j := 0; j < nh-1; j++ {
			segs = append(segs, s.cellSegments(i, j, level, eps)...)
		}
	}
	return linkSegments(segs)
}

// interp returns the point where the value crosses level between two grid
// corners (linear interpolation).
func interp(p0, p1 [2]float64, v0, v1, level float64) [2]float64 {
	if v1 == v0 {
		return [2]float64{(p0[0] + p1[0]) / 2, (p0[1] + p1[1]) / 2}
	}
	u := (level - v0) / (v1 - v0)
	return [2]float64{p0[0] + u*(p1[0]-p0[0]), p0[1] + u*(p1[1]-p0[1])}
}

// cellSegments implements the 16-case marching-squares table for one cell.
func (s *Surface) cellSegments(i, j int, level, eps float64) []segment {
	// Corners: 0 = (i, j), 1 = (i+1, j), 2 = (i+1, j+1), 3 = (i, j+1).
	pts := [4][2]float64{
		{s.S[i], s.H[j]},
		{s.S[i+1], s.H[j]},
		{s.S[i+1], s.H[j+1]},
		{s.S[i], s.H[j+1]},
	}
	vals := [4]float64{s.V[i][j], s.V[i+1][j], s.V[i+1][j+1], s.V[i][j+1]}
	for k, v := range vals {
		if v == level {
			vals[k] = level + eps
		}
	}
	code := 0
	for k := 0; k < 4; k++ {
		if vals[k] > level {
			code |= 1 << k
		}
	}
	if code == 0 || code == 15 {
		return nil
	}
	// Edge midcrossings: edge k joins corner k and corner (k+1)%4.
	edge := func(k int) [2]float64 {
		k2 := (k + 1) % 4
		return interp(pts[k], pts[k2], vals[k], vals[k2], level)
	}
	mk := func(e1, e2 int) segment { return segment{edge(e1), edge(e2)} }
	switch code {
	case 1, 14:
		return []segment{mk(3, 0)}
	case 2, 13:
		return []segment{mk(0, 1)}
	case 3, 12:
		return []segment{mk(3, 1)}
	case 4, 11:
		return []segment{mk(1, 2)}
	case 6, 9:
		return []segment{mk(0, 2)}
	case 7, 8:
		return []segment{mk(3, 2)}
	case 5, 10:
		// Saddle: resolve by the center average.
		center := (vals[0] + vals[1] + vals[2] + vals[3]) / 4
		if (code == 5) == (center > level) {
			return []segment{mk(3, 0), mk(1, 2)}
		}
		return []segment{mk(0, 1), mk(3, 2)}
	}
	return nil
}

// linkSegments chains segments that share endpoints into polylines.
func linkSegments(segs []segment) []Polyline {
	if len(segs) == 0 {
		return nil
	}
	// Quantized endpoint keys tolerate floating-point jitter.
	scale := 0.0
	for _, sg := range segs {
		scale = math.Max(scale, math.Max(math.Abs(sg.a[0]), math.Max(math.Abs(sg.a[1]),
			math.Max(math.Abs(sg.b[0]), math.Abs(sg.b[1])))))
	}
	if scale == 0 {
		scale = 1
	}
	q := scale * 1e-9
	key := func(p [2]float64) [2]int64 {
		return [2]int64{int64(math.Round(p[0] / q)), int64(math.Round(p[1] / q))}
	}
	type end struct {
		seg   int
		atEnd bool // which endpoint of the segment this key refers to
	}
	adj := make(map[[2]int64][]end, 2*len(segs))
	for idx, sg := range segs {
		adj[key(sg.a)] = append(adj[key(sg.a)], end{idx, false})
		adj[key(sg.b)] = append(adj[key(sg.b)], end{idx, true})
	}
	used := make([]bool, len(segs))
	var polys []Polyline

	// walk extends a chain from point p (belonging to segment cur).
	walk := func(start int) Polyline {
		used[start] = true
		pts := [][2]float64{segs[start].a, segs[start].b}
		// Extend forward from the tail.
		for {
			tail := pts[len(pts)-1]
			found := -1
			var next [2]float64
			for _, e := range adj[key(tail)] {
				if used[e.seg] {
					continue
				}
				found = e.seg
				if e.atEnd {
					next = segs[e.seg].a
				} else {
					next = segs[e.seg].b
				}
				break
			}
			if found < 0 {
				break
			}
			used[found] = true
			pts = append(pts, next)
		}
		// Extend backward from the head.
		for {
			head := pts[0]
			found := -1
			var prev [2]float64
			for _, e := range adj[key(head)] {
				if used[e.seg] {
					continue
				}
				found = e.seg
				if e.atEnd {
					prev = segs[e.seg].a
				} else {
					prev = segs[e.seg].b
				}
				break
			}
			if found < 0 {
				break
			}
			used[found] = true
			pts = append([][2]float64{prev}, pts...)
		}
		return Polyline{Pts: pts}
	}

	for idx := range segs {
		if !used[idx] {
			polys = append(polys, walk(idx))
		}
	}
	// Longest first: the main contour leads.
	sort.Slice(polys, func(a, b int) bool { return len(polys[a].Pts) > len(polys[b].Pts) })
	return polys
}

// DistanceToPoint returns the Euclidean distance from p to the nearest
// point of any polyline (distance to the nearest segment, not just
// vertices).
func DistanceToPoint(p [2]float64, polys []Polyline) float64 {
	best := math.Inf(1)
	for _, pl := range polys {
		for i := 1; i < len(pl.Pts); i++ {
			d := pointSegDist(p, pl.Pts[i-1], pl.Pts[i])
			if d < best {
				best = d
			}
		}
		if len(pl.Pts) == 1 {
			d := math.Hypot(p[0]-pl.Pts[0][0], p[1]-pl.Pts[0][1])
			if d < best {
				best = d
			}
		}
	}
	return best
}

func pointSegDist(p, a, b [2]float64) float64 {
	abx, aby := b[0]-a[0], b[1]-a[1]
	apx, apy := p[0]-a[0], p[1]-a[1]
	den := abx*abx + aby*aby
	t := 0.0
	if den > 0 {
		t = (apx*abx + apy*aby) / den
		t = math.Max(0, math.Min(1, t))
	}
	cx, cy := a[0]+t*abx, a[1]+t*aby
	return math.Hypot(p[0]-cx, p[1]-cy)
}

// Deviation compares a point set against reference polylines, returning the
// maximum and mean nearest distances. It is the quantitative form of the
// paper's overlay figures (Figs. 10, 12(b)).
func Deviation(points [][2]float64, polys []Polyline) (max, mean float64, err error) {
	if len(points) == 0 {
		return 0, 0, fmt.Errorf("surface: Deviation of empty point set")
	}
	if len(polys) == 0 {
		return 0, 0, fmt.Errorf("surface: Deviation against empty contour")
	}
	sum := 0.0
	for _, p := range points {
		d := DistanceToPoint(p, polys)
		sum += d
		if d > max {
			max = d
		}
	}
	return max, sum / float64(len(points)), nil
}
