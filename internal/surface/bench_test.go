package surface

import (
	"math"
	"testing"
)

func BenchmarkContourExtraction(b *testing.B) {
	sf, err := Generate(Linspace(-1, 1, 101), Linspace(-1, 1, 101),
		analyticFactory(func(s, h float64) float64 {
			return math.Tanh((s*s + h*h - 0.36) / 0.05)
		}), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if polys := sf.Contour(0); len(polys) == 0 {
			b.Fatal("no contour")
		}
	}
}

func BenchmarkDeviation(b *testing.B) {
	sf, err := Generate(Linspace(-1, 1, 101), Linspace(-1, 1, 101),
		analyticFactory(func(s, h float64) float64 { return s*s + h*h }), 1)
	if err != nil {
		b.Fatal(err)
	}
	polys := sf.Contour(0.36)
	pts := make([][2]float64, 40)
	for i := range pts {
		th := float64(i) / 40 * 2 * math.Pi
		pts[i] = [2]float64{0.6 * math.Cos(th), 0.6 * math.Sin(th)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Deviation(pts, polys); err != nil {
			b.Fatal(err)
		}
	}
}
