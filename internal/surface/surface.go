// Package surface implements the brute-force baseline the paper compares
// against: generate the output surface over an n×n grid of (τs, τh) trial
// skews (one transient simulation per grid point, parallelized across
// workers), then extract the constant clock-to-Q contour by
// marching-squares interpolation. It also provides the curve-distance
// metrics used to overlay the Euler-Newton contour on the surface contour
// (Figs. 10, 12(b)).
package surface

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"latchchar/internal/obs"
	"latchchar/internal/sched"
)

// Surface holds samples of a scalar field on a regular grid:
// V[i][j] = f(S[i], H[j]).
type Surface struct {
	S, H []float64
	V    [][]float64
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("surface: Linspace needs n ≥ 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// EvalFunc evaluates the field at one grid point.
type EvalFunc func(s, h float64) (float64, error)

// Factory builds one independent EvalFunc per worker; the function it
// returns is only ever used from a single goroutine.
type Factory func() (EvalFunc, error)

// Generate evaluates the field over sAxis × hAxis using up to workers
// concurrent evaluators (default: GOMAXPROCS). Both axes must be strictly
// increasing.
func Generate(sAxis, hAxis []float64, factory Factory, workers int) (*Surface, error) {
	return GenerateCtx(context.Background(), nil, sAxis, hAxis, factory, nil, workers)
}

// GenerateObs is Generate with observability attached: it counts grid
// evaluations and reports per-row progress (rows done / total) to run as
// workers complete them. Callers that want the sweep grouped start a
// "surface" span and pass it (threading the same span into their evaluators
// parents the worker transients correctly). A nil run behaves exactly like
// Generate.
func GenerateObs(run *obs.Run, sAxis, hAxis []float64, factory Factory, workers int) (*Surface, error) {
	return GenerateCtx(context.Background(), run, sAxis, hAxis, factory, nil, workers)
}

// newSurface validates the axes and allocates the sample grid.
func newSurface(sAxis, hAxis []float64) (*Surface, error) {
	if len(sAxis) < 2 || len(hAxis) < 2 {
		return nil, fmt.Errorf("surface: axes need at least 2 points")
	}
	for i := 1; i < len(sAxis); i++ {
		if sAxis[i] <= sAxis[i-1] {
			return nil, fmt.Errorf("surface: s axis not increasing")
		}
	}
	for i := 1; i < len(hAxis); i++ {
		if hAxis[i] <= hAxis[i-1] {
			return nil, fmt.Errorf("surface: h axis not increasing")
		}
	}
	sf := &Surface{
		S: append([]float64(nil), sAxis...),
		H: append([]float64(nil), hAxis...),
		V: make([][]float64, len(sAxis)),
	}
	for i := range sf.V {
		sf.V[i] = make([]float64, len(hAxis))
	}
	return sf, nil
}

// GenerateCtx is GenerateObs with cancellation and optional execution on a
// shared scheduler pool. A canceled ctx stops the sweep between grid points
// (and, through evaluators that honor it, mid-transient) and returns the
// context's cause. When pool is non-nil each row becomes one pool task — the
// batch engine routes brute-force sweeps here so surface grids, corners and
// Monte-Carlo samples all share one Parallelism bound; workers then caps how
// many evaluators the factory builds. A nil pool spawns the classic
// row-worker goroutines.
func GenerateCtx(ctx context.Context, run *obs.Run, sAxis, hAxis []float64, factory Factory, pool *sched.Pool, workers int) (*Surface, error) {
	return generateRows(ctx, run, sAxis, hAxis, factory, pool, workers,
		func(ctx context.Context, eval EvalFunc, sf *Surface, i int) error {
			for j, h := range sf.H {
				if ctx.Err() != nil {
					return fmt.Errorf("surface: canceled at row τs=%g: %w", sf.S[i], context.Cause(ctx))
				}
				v, err := eval(sf.S[i], h)
				if err != nil {
					return fmt.Errorf("surface: point (%g, %g): %w", sf.S[i], h, err)
				}
				sf.V[i][j] = v
			}
			return nil
		})
}

// BlockEvalFunc evaluates one full grid row — fixed s, the whole h axis — in
// a single call, writing f(s, h[j]) into out[j]. The circuit implementation
// runs the row as one lockstep block-transient (stf.Evaluator.EvalBlock), so
// the row shares its stimulus prefix and Jacobians across the h samples.
type BlockEvalFunc func(s float64, h, out []float64) error

// BlockFactory builds one independent BlockEvalFunc per worker; the function
// it returns is only ever used from a single goroutine.
type BlockFactory func() (BlockEvalFunc, error)

// GenerateBlock is GenerateBlockCtx with context.Background() and no
// observability or pool routing.
func GenerateBlock(sAxis, hAxis []float64, factory BlockFactory, workers int) (*Surface, error) {
	return GenerateBlockCtx(context.Background(), nil, sAxis, hAxis, factory, nil, workers)
}

// GenerateBlockCtx is GenerateCtx for row-at-a-time evaluators: each grid
// row is one BlockEvalFunc call instead of len(hAxis) scalar calls. Axes,
// workers, pool routing, cancellation and progress behave exactly like
// GenerateCtx.
func GenerateBlockCtx(ctx context.Context, run *obs.Run, sAxis, hAxis []float64, factory BlockFactory, pool *sched.Pool, workers int) (*Surface, error) {
	return generateRows(ctx, run, sAxis, hAxis, factory, pool, workers,
		func(ctx context.Context, eval BlockEvalFunc, sf *Surface, i int) error {
			if ctx.Err() != nil {
				return fmt.Errorf("surface: canceled at row τs=%g: %w", sf.S[i], context.Cause(ctx))
			}
			if err := eval(sf.S[i], sf.H, sf.V[i]); err != nil {
				return fmt.Errorf("surface: row τs=%g: %w", sf.S[i], err)
			}
			return nil
		})
}

// generateRows is the shared sweep driver behind GenerateCtx and
// GenerateBlockCtx, generic over the per-worker evaluator type: rows are
// distributed to up to workers evaluators (lazy-built, recycled), either as
// pool tasks or classic worker goroutines, and each row is filled by one
// row() call.
func generateRows[E any](ctx context.Context, run *obs.Run, sAxis, hAxis []float64, factory func() (E, error), pool *sched.Pool, workers int, row func(ctx context.Context, eval E, sf *Surface, i int) error) (*Surface, error) {
	sf, err := newSurface(sAxis, hAxis)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		if pool != nil {
			workers = pool.NumWorkers()
		} else {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	if workers > len(sAxis) {
		workers = len(sAxis)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if pool != nil {
		return generateOnPool(ctx, run, sf, factory, pool, workers, row)
	}

	rows := make(chan int)
	errs := make(chan error, workers)
	var rowsDone atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval, err := factory()
			if err != nil {
				errs <- err
				return
			}
			for i := range rows {
				if err := row(ctx, eval, sf, i); err != nil {
					errs <- err
					return
				}
				run.Count(obs.CtrPoints, int64(len(sf.H)))
				run.Progress(obs.Progress{
					Phase: obs.SpanSurface,
					Done:  int(rowsDone.Add(1)), Total: len(sf.S),
					TauS: sf.S[i],
				})
			}
		}()
	}
	for i := range sf.S {
		select {
		case err := <-errs:
			close(rows)
			wg.Wait()
			return nil, err
		case rows <- i:
		}
	}
	close(rows)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return sf, nil
}

// generateOnPool runs the sweep as one pool task per row. Evaluators are
// built lazily (at most workers of them) and recycled through a channel, so
// the calibration-sharing factory economics of the goroutine path carry
// over: the number of evaluator builds stays bounded by the concurrency, not
// the row count.
func generateOnPool[E any](ctx context.Context, run *obs.Run, sf *Surface, factory func() (E, error), pool *sched.Pool, workers int, row func(ctx context.Context, eval E, sf *Surface, i int) error) (*Surface, error) {
	inner, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	evs := make(chan E, workers)
	var built atomic.Int32
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel(err)
		})
	}
	var rowsDone atomic.Int64
	grp := pool.NewGroup(inner)
	for i := range sf.S {
		grp.Go(func(context.Context) {
			if inner.Err() != nil {
				return
			}
			var eval E
			select {
			case eval = <-evs:
			default:
				if int(built.Add(1)) <= workers {
					var err error
					if eval, err = factory(); err != nil {
						fail(err)
						return
					}
				} else {
					built.Add(-1)
					select {
					case eval = <-evs:
					case <-inner.Done():
						return
					}
				}
			}
			defer func() { evs <- eval }()
			if err := row(inner, eval, sf, i); err != nil {
				fail(err)
				return
			}
			run.Count(obs.CtrPoints, int64(len(sf.H)))
			run.Progress(obs.Progress{
				Phase: obs.SpanSurface,
				Done:  int(rowsDone.Add(1)), Total: len(sf.S),
				TauS: sf.S[i],
			})
		})
	}
	waitErr := grp.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if waitErr != nil {
		return nil, fmt.Errorf("surface: canceled: %w", waitErr)
	}
	return sf, nil
}

// At returns the sampled value at grid indices (i, j).
func (s *Surface) At(i, j int) float64 { return s.V[i][j] }

// NumSamples returns the total number of grid evaluations the surface
// represents (the n² cost of the brute-force method).
func (s *Surface) NumSamples() int { return len(s.S) * len(s.H) }
