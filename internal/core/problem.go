// Package core implements the paper's contribution: solving the
// underdetermined scalar equation h(τs, τh) = 0 (paper eq. (4)) with a
// Moore-Penrose pseudo-inverse Newton-Raphson (MPNR) corrector, and tracing
// the entire constant clock-to-Q contour in the (τs, τh) plane with an
// Euler-Newton predictor-corrector continuation (Section IIIE), plus the
// bracketing seed search of Fig. 7 and the independent setup/hold
// characterization of Section IIIB used as the prior-work baseline.
//
// The algorithms are expressed against the Problem interface so they can be
// validated on analytic functions and applied unchanged to the circuit-level
// state-transition evaluator in internal/stf.
package core

import "errors"

// Problem is an underdetermined scalar equation h(τs, τh) = 0.
//
// Eval costs one plain evaluation (for the circuit problem: one transient
// simulation); EvalGrad additionally returns the gradient [∂h/∂τs, ∂h/∂τh]
// for the same price class (one transient carrying forward sensitivities).
type Problem interface {
	Eval(tauS, tauH float64) (float64, error)
	EvalGrad(tauS, tauH float64) (h, dhdS, dhdH float64, err error)
}

// Point is one solved point on the h = 0 contour, carrying the gradient at
// the point (the MPNR Jacobian, reused for the Euler tangent of eq. (16)).
type Point struct {
	TauS, TauH float64
	// H is the residual at the point (≈ 0 for converged points).
	H float64
	// DhdS, DhdH form the 1×2 Jacobian H(τ) at the point.
	DhdS, DhdH float64
	// CorrectorIters is the number of MPNR iterations spent reaching the
	// point (the paper reports 2–3 as typical during tracing).
	CorrectorIters int
}

// ErrDegenerateGradient is returned when ‖∇h‖ is too small for a
// Moore-Penrose step, e.g. when the current iterate sits in a flat region of
// the output surface (fully failed or fully latched).
var ErrDegenerateGradient = errors.New("core: gradient of h is degenerate (flat region)")

// ErrNoConvergence is returned when MPNR exhausts its iteration budget.
var ErrNoConvergence = errors.New("core: MPNR did not converge")

// ErrNoBracket is returned when the seed search cannot find a sign change.
var ErrNoBracket = errors.New("core: no sign change bracket found")
