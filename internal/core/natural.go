package core

import (
	"fmt"
	"math"
)

// TraceContourNatural is the ablation baseline for the Euler-Newton tracer:
// natural-parameter continuation. It marches τs in fixed increments and, at
// each station, solves the scalar equation h(τs, ·) = 0 for τh with plain
// Newton on ∂h/∂τh, seeded by the previous τh.
//
// Unlike the Euler-Newton method it has no tangent information: it wastes
// iterations where the curve is steep in τh and fails outright where the
// contour turns back in τs (the Jacobian ∂h/∂τh passes through zero there).
// The ablation benchmark contrasts its corrector effort and failure modes
// with TraceContour's.
func TraceContourNatural(p Problem, seedS, seedH float64, opts TraceOptions) (*Contour, error) {
	o := opts.withDefaults()
	ct := &Contour{}

	seedRes, err := SolveMPNR(p, seedS, seedH, o.MPNR)
	ct.GradEvals += seedRes.GradEvals
	if err != nil {
		return ct, fmt.Errorf("core: natural continuation seed failed: %w", err)
	}
	cur := seedRes.Point
	ct.Points = append(ct.Points, cur)

	for len(ct.Points) < o.MaxPoints+1 {
		s := cur.TauS + o.Step
		v := cur.TauH
		var pt Point
		converged := false
		for iter := 1; iter <= o.MPNR.withDefaults().MaxIter; iter++ {
			h, gs, gh, err := p.EvalGrad(s, v)
			if err != nil {
				return ct, err
			}
			ct.GradEvals++
			pt = Point{TauS: s, TauH: v, H: h, DhdS: gs, DhdH: gh, CorrectorIters: iter}
			if math.Abs(h) <= o.MPNR.withDefaults().HTol {
				converged = true
				break
			}
			if gh == 0 {
				return ct, fmt.Errorf("core: natural continuation hit a turning point at τs=%.4g: %w", s, ErrDegenerateGradient)
			}
			v -= h / gh
		}
		if !converged {
			return ct, fmt.Errorf("core: natural continuation corrector stalled at τs=%.4g: %w", s, ErrNoConvergence)
		}
		zero := Rect{}
		if o.Bounds != zero && !o.Bounds.Contains(pt.TauS, pt.TauH) {
			return ct, nil
		}
		ct.Points = append(ct.Points, pt)
		cur = pt
	}
	return ct, nil
}
