package core

import (
	"context"
	"fmt"

	"latchchar/internal/obs"
)

// SeedOptions configure the first-point search of Section IV-A / Fig. 7:
// with the hold skew pinned large (so the setup time decouples), bracket the
// setup time by a sign change of h and narrow the bracket with a coarse
// binary search until it falls inside the Newton convergence range.
type SeedOptions struct {
	// TauHLarge pins the hold skew (default 500 ps).
	TauHLarge float64
	// Lo, Hi is the initial setup-skew interval (defaults 10 ps, 800 ps).
	Lo, Hi float64
	// NarrowTo stops the bisection once the bracket is this tight
	// (default 25 ps, a comfortable MPNR basin for latch problems).
	NarrowTo float64
	// MaxExpand bounds how many times Hi is doubled hunting for a sign
	// change (default 4).
	MaxExpand int
	// Obs attaches observability: the search runs inside a "seed" span.
	// nil disables collection.
	Obs *obs.Run
}

func (o SeedOptions) withDefaults() SeedOptions {
	if o.TauHLarge <= 0 {
		o.TauHLarge = 500e-12
	}
	if o.Lo <= 0 {
		o.Lo = 10e-12
	}
	if o.Hi <= o.Lo {
		o.Hi = 800e-12
	}
	if o.NarrowTo <= 0 {
		o.NarrowTo = 25e-12
	}
	if o.MaxExpand <= 0 {
		o.MaxExpand = 4
	}
	return o
}

// SeedResult is the outcome of the first-point search.
type SeedResult struct {
	// TauS, TauH is the seed to hand to MPNR.
	TauS, TauH float64
	// PlainEvals counts the transient simulations spent bracketing.
	PlainEvals int
}

// FindSeed locates an initial guess near the h = 0 curve. It evaluates h at
// the bracket ends, expands the bracket if needed, then bisects until the
// interval width reaches NarrowTo and returns the midpoint.
func FindSeed(p Problem, opts SeedOptions) (SeedResult, error) {
	return FindSeedCtx(context.Background(), p, opts)
}

// FindSeedCtx is FindSeed with a cancellation context: the search checks
// ctx before every bracketing evaluation and threads it into the problem's
// transients (CtxAttachable), returning a *CanceledError when interrupted.
func FindSeedCtx(ctx context.Context, p Problem, opts SeedOptions) (SeedResult, error) {
	o := opts.withDefaults()
	res := SeedResult{TauH: o.TauHLarge}
	sp := o.Obs.StartSpan(obs.SpanSeed)
	detachObs := attachObs(p, sp, o.Obs)
	detachCtx := attachCtx(ctx, p)
	defer func() {
		detachCtx()
		detachObs()
		sp.End()
	}()
	eval := func(s float64) (float64, error) {
		if err := ctxErr(ctx, "seed", Point{TauS: s, TauH: o.TauHLarge}); err != nil {
			return 0, err
		}
		res.PlainEvals++
		h, err := p.Eval(s, o.TauHLarge)
		if err != nil && canceled(err) {
			err = &CanceledError{Op: "seed", At: Point{TauS: s, TauH: o.TauHLarge}, Err: err}
		}
		return h, err
	}
	lo, hi := o.Lo, o.Hi
	hLo, err := eval(lo)
	if err != nil {
		return res, err
	}
	hHi, err := eval(hi)
	if err != nil {
		return res, err
	}
	for i := 0; sameSign(hLo, hHi) && i < o.MaxExpand; i++ {
		hi *= 2
		hHi, err = eval(hi)
		if err != nil {
			return res, err
		}
	}
	if sameSign(hLo, hHi) {
		return res, fmt.Errorf("%w: h(%g)=%g and h(%g)=%g at τh=%g", ErrNoBracket, lo, hLo, hi, hHi, o.TauHLarge)
	}
	for hi-lo > o.NarrowTo {
		mid := 0.5 * (lo + hi)
		hMid, err := eval(mid)
		if err != nil {
			return res, err
		}
		if sameSign(hMid, hLo) {
			lo, hLo = mid, hMid
		} else {
			hi = mid
		}
	}
	res.TauS = 0.5 * (lo + hi)
	return res, nil
}

func sameSign(a, b float64) bool {
	return (a > 0 && b > 0) || (a < 0 && b < 0)
}
