package core

import (
	"context"
	"math"

	"latchchar/internal/num"
	"latchchar/internal/obs"
)

// MPNROptions configure the Moore-Penrose Newton-Raphson corrector.
type MPNROptions struct {
	// MaxIter bounds the Newton iterations (default 12).
	MaxIter int
	// HTol is the residual tolerance in output units (volts for circuit
	// problems; default 1e-6).
	HTol float64
	// TauTol is the step-size tolerance in seconds: the iteration is
	// converged when ‖Δτ‖ falls below it (default 1e-16, i.e. well past the
	// paper's five significant digits on ~100 ps skews).
	TauTol float64
	// MaxStep clamps ‖Δτ‖ per iteration to keep iterates inside the Newton
	// convergence region (default 50 ps; 0 disables clamping).
	MaxStep float64
	// Record, when set, stores the iterate trajectory in the result
	// (used to reproduce Fig. 4).
	Record bool
	// Obs attaches observability: the solve runs inside a "corrector" span
	// and reports its iteration count to the corrector histogram. nil
	// disables collection.
	Obs *obs.Run
}

func (o MPNROptions) withDefaults() MPNROptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 12
	}
	if o.HTol <= 0 {
		o.HTol = 1e-6
	}
	if o.TauTol <= 0 {
		o.TauTol = 1e-16
	}
	if o.MaxStep < 0 {
		o.MaxStep = 0
	} else if o.MaxStep == 0 {
		o.MaxStep = 50e-12
	}
	return o
}

// MPNRResult is the outcome of a Moore-Penrose Newton solve.
type MPNRResult struct {
	Point
	Converged bool
	// Trajectory holds the iterates (including the start) when
	// MPNROptions.Record is set.
	Trajectory []Point
	// GradEvals counts gradient evaluations (= transient simulations with
	// sensitivities for the circuit problem).
	GradEvals int
}

// SolveMPNR runs the Moore-Penrose pseudo-inverse Newton-Raphson iteration
// of Section IIIC from the initial guess (τs0, τh0):
//
//	τ ← τ − h(τ) · H(τ)⁺,   H⁺ = Hᵀ(H·Hᵀ)⁻¹ = [gs, gh]ᵀ / (gs² + gh²)
//
// Under the usual regularity conditions the iteration converges to the
// point of the h = 0 curve nearest the initial guess.
func SolveMPNR(p Problem, tauS0, tauH0 float64, opts MPNROptions) (MPNRResult, error) {
	return SolveMPNRCtx(context.Background(), p, tauS0, tauH0, opts)
}

// SolveMPNRCtx is SolveMPNR with a cancellation context: ctx is checked
// before every gradient evaluation and threaded into the problem's
// transients (CtxAttachable), so a canceled deadline stops the solve within
// one transient step. Interrupted solves return a *CanceledError.
func SolveMPNRCtx(ctx context.Context, p Problem, tauS0, tauH0 float64, opts MPNROptions) (MPNRResult, error) {
	o := opts.withDefaults()
	res := MPNRResult{}
	sp := o.Obs.StartSpan(obs.SpanCorrector)
	detachObs := attachObs(p, sp, o.Obs)
	detachCtx := attachCtx(ctx, p)
	defer func() {
		detachCtx()
		detachObs()
		sp.Observe(obs.HistCorrectorIters, res.Point.CorrectorIters)
		sp.End()
	}()
	var ring iterRing
	tauS, tauH := tauS0, tauH0
	for iter := 1; iter <= o.MaxIter; iter++ {
		if err := ctxErr(ctx, "mpnr", res.Point); err != nil {
			return res, err
		}
		h, gs, gh, err := p.EvalGrad(tauS, tauH)
		if err != nil {
			if canceled(err) {
				return res, &CanceledError{Op: "mpnr", At: res.Point, Err: err}
			}
			return res, &ConvergenceError{Op: "mpnr", At: res.Point, Iterates: ring.slice(), Err: err}
		}
		res.GradEvals++
		if o.Record {
			res.Trajectory = append(res.Trajectory, Point{TauS: tauS, TauH: tauH, H: h, DhdS: gs, DhdH: gh, CorrectorIters: iter - 1})
		}
		norm2 := gs*gs + gh*gh
		res.Point = Point{TauS: tauS, TauH: tauH, H: h, DhdS: gs, DhdH: gh, CorrectorIters: iter}
		ring.push(res.Point)
		if math.Abs(h) <= o.HTol {
			res.Converged = true
			return res, nil
		}
		if norm2 == 0 || !num.IsFinite(norm2) {
			return res, &ConvergenceError{Op: "mpnr", At: res.Point, Iterates: ring.slice(), Err: ErrDegenerateGradient}
		}
		// Moore-Penrose step (paper eqs. (23)–(24)).
		dS := h * gs / norm2
		dH := h * gh / norm2
		stepLen := math.Hypot(dS, dH)
		if o.MaxStep > 0 && stepLen > o.MaxStep {
			scale := o.MaxStep / stepLen
			dS *= scale
			dH *= scale
			stepLen = o.MaxStep
		}
		tauS -= dS
		tauH -= dH
		if stepLen <= o.TauTol {
			// The iterate stopped moving; declare convergence at the new τ
			// with the latest available residual information.
			res.Point.TauS, res.Point.TauH = tauS, tauH
			res.Converged = true
			return res, nil
		}
	}
	return res, &ConvergenceError{Op: "mpnr", At: res.Point, Iterates: ring.slice(), Err: ErrNoConvergence}
}

// Tangent returns the unit tangent vector induced by the Jacobian
// H = [gs, gh] (paper eq. (16)): T = (−gh, gs)/‖H‖. The returned vector is
// orthogonal to ∇h, i.e. tangent to the level curve h = const.
func Tangent(gs, gh float64) (ts, th float64, err error) {
	n := math.Hypot(gs, gh)
	if n == 0 || !num.IsFinite(n) {
		return 0, 0, ErrDegenerateGradient
	}
	return -gh / n, gs / n, nil
}
