package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file provides the SHIA-STA-facing queries over a traced contour: the
// paper's motivation is that a timing flow constrained by a hold violation
// can trade a longer (non-critical) setup time for a shorter guaranteed
// hold time along the constant clock-to-Q curve, without touching the
// circuit. The queries interpolate the traced points.

// ErrOutsideContour is returned when a query falls outside the traced range.
var ErrOutsideContour = errors.New("core: query outside the traced contour range")

// SetupForHold returns the setup time on the contour for a required hold
// time, by monotone linear interpolation along the traced curve. It is the
// primitive behind hold-violation fixing: "guarantee a shorter hold time at
// the expense of a longer setup time".
func (c *Contour) SetupForHold(tauH float64) (float64, error) {
	return c.interpolate(tauH, false)
}

// HoldForSetup returns the hold time on the contour for a given setup time.
func (c *Contour) HoldForSetup(tauS float64) (float64, error) {
	return c.interpolate(tauS, true)
}

// interpolate walks the polyline and interpolates the complementary
// coordinate at the query value. bypassSetup selects which coordinate is
// the key.
func (c *Contour) interpolate(q float64, keyIsSetup bool) (float64, error) {
	if len(c.Points) < 2 {
		return 0, fmt.Errorf("core: contour has %d points, need ≥ 2", len(c.Points))
	}
	key := func(p Point) float64 {
		if keyIsSetup {
			return p.TauS
		}
		return p.TauH
	}
	val := func(p Point) float64 {
		if keyIsSetup {
			return p.TauH
		}
		return p.TauS
	}
	// Scan segments; the curve is ordered, keys are monotone up to
	// asymptote jitter, so a simple segment walk is robust.
	bestDist := math.Inf(1)
	bestVal := 0.0
	found := false
	for i := 1; i < len(c.Points); i++ {
		k0, k1 := key(c.Points[i-1]), key(c.Points[i])
		lo, hi := math.Min(k0, k1), math.Max(k0, k1)
		if q >= lo && q <= hi {
			var u float64
			if k1 != k0 {
				u = (q - k0) / (k1 - k0)
			}
			v := val(c.Points[i-1]) + u*(val(c.Points[i])-val(c.Points[i-1]))
			// Prefer the segment whose midpoint is closest to the query —
			// guards against re-crossing jitter near asymptotes.
			d := math.Abs(q - (k0+k1)/2)
			if !found || d < bestDist {
				bestDist, bestVal, found = d, v, true
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("%w: %.4g", ErrOutsideContour, q)
	}
	return bestVal, nil
}

// MinSetup returns the smallest setup time on the contour (the setup-time
// asymptote value within the traced range) and the hold time paired with
// it.
func (c *Contour) MinSetup() (tauS, tauH float64, err error) {
	if len(c.Points) == 0 {
		return 0, 0, fmt.Errorf("core: empty contour")
	}
	best := c.Points[0]
	for _, p := range c.Points {
		if p.TauS < best.TauS {
			best = p
		}
	}
	return best.TauS, best.TauH, nil
}

// MinHold returns the smallest hold time on the contour and the setup time
// paired with it.
func (c *Contour) MinHold() (tauS, tauH float64, err error) {
	if len(c.Points) == 0 {
		return 0, 0, fmt.Errorf("core: empty contour")
	}
	best := c.Points[0]
	for _, p := range c.Points {
		if p.TauH < best.TauH {
			best = p
		}
	}
	return best.TauS, best.TauH, nil
}

// TradeHold answers the SHIA-STA question directly: the path currently
// assumes the pair (tauS0, tauH0) on (or above) the contour but violates
// hold by deficit Δ. TradeHold returns a new pair on the contour whose hold
// time is tauH0 − Δ, i.e. the extra setup margin that buys the missing hold
// margin. It fails if the contour does not extend to the required hold
// time.
func (c *Contour) TradeHold(tauS0, tauH0, deficit float64) (tauS, tauH float64, err error) {
	if deficit < 0 {
		return 0, 0, fmt.Errorf("core: negative hold deficit %g", deficit)
	}
	target := tauH0 - deficit
	s, err := c.SetupForHold(target)
	if err != nil {
		return 0, 0, err
	}
	if s < tauS0 {
		// The contour already permits the shorter hold at no setup cost;
		// report the original setup time.
		s = tauS0
	}
	return s, target, nil
}

// ArcLength returns the total polyline length of the contour in the
// (τs, τh) plane — a measure of how much tradeoff range was captured.
func (c *Contour) ArcLength() float64 {
	sum := 0.0
	for i := 1; i < len(c.Points); i++ {
		sum += math.Hypot(c.Points[i].TauS-c.Points[i-1].TauS, c.Points[i].TauH-c.Points[i-1].TauH)
	}
	return sum
}

// SortedBySetup returns the contour points ordered by increasing setup
// time; useful for tabulation.
func (c *Contour) SortedBySetup() []Point {
	pts := append([]Point(nil), c.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].TauS < pts[j].TauS })
	return pts
}
