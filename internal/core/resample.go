package core

import (
	"context"
	"fmt"
	"math"

	"latchchar/internal/obs"
)

// ResampleContour redistributes a traced contour into exactly n points
// evenly spaced in arc length, polishing each interpolated point back onto
// h = 0 with the MPNR corrector. Library table generation wants contours on
// a predictable grid; the tracer's adaptive steps do not provide one.
//
// Since every start point lies (interpolated) on the curve, the corrector
// typically needs a single iteration per point, so the cost is ≈n gradient
// evaluations.
func ResampleContour(p Problem, c *Contour, n int, opts MPNROptions) (*Contour, error) {
	return ResampleContourCtx(context.Background(), p, c, n, opts)
}

// resampleSeeds interpolates a traced contour onto n arc-length-uniform
// start points — the shared front half of the scalar and block resamplers.
func resampleSeeds(c *Contour, n int) (seedS, seedH []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("core: ResampleContour needs n ≥ 2, got %d", n)
	}
	if len(c.Points) < 2 {
		return nil, nil, fmt.Errorf("core: ResampleContour needs a traced contour with ≥ 2 points")
	}
	// Cumulative arc length.
	cum := make([]float64, len(c.Points))
	for i := 1; i < len(c.Points); i++ {
		d := math.Hypot(c.Points[i].TauS-c.Points[i-1].TauS, c.Points[i].TauH-c.Points[i-1].TauH)
		cum[i] = cum[i-1] + d
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return nil, nil, fmt.Errorf("core: contour has zero arc length")
	}
	seedS = make([]float64, n)
	seedH = make([]float64, n)
	seg := 1
	for k := 0; k < n; k++ {
		target := total * float64(k) / float64(n-1)
		for seg < len(cum)-1 && cum[seg] < target {
			seg++
		}
		a, b := c.Points[seg-1], c.Points[seg]
		var u float64
		if cum[seg] > cum[seg-1] {
			u = (target - cum[seg-1]) / (cum[seg] - cum[seg-1])
		}
		seedS[k] = a.TauS + u*(b.TauS-a.TauS)
		seedH[k] = a.TauH + u*(b.TauH-a.TauH)
	}
	return seedS, seedH, nil
}

// ResampleContourCtx is ResampleContour with a cancellation context; an
// interrupted resample returns the points polished so far together with a
// *CanceledError.
func ResampleContourCtx(ctx context.Context, p Problem, c *Contour, n int, opts MPNROptions) (*Contour, error) {
	seedS, seedH, err := resampleSeeds(c, n)
	if err != nil {
		return nil, err
	}
	sp := opts.Obs.StartSpan(obs.SpanResample)
	defer sp.End()
	opts.Obs = sp // correctors nest under the resample span
	out := &Contour{Closed: c.Closed}
	for k := 0; k < n; k++ {
		res, err := SolveMPNRCtx(ctx, p, seedS[k], seedH[k], opts)
		out.GradEvals += res.GradEvals
		if err != nil {
			if canceled(err) {
				return out, &CanceledError{Op: "resample", At: res.Point, Points: len(out.Points), Err: err}
			}
			return out, fmt.Errorf("core: resample point %d at (%.4g, %.4g): %w", k, seedS[k], seedH[k], err)
		}
		out.Points = append(out.Points, res.Point)
	}
	return out, nil
}

// ResampleContourBlock is ResampleContourBlockCtx with context.Background().
func ResampleContourBlock(p BlockProblem, c *Contour, n, block int, opts MPNROptions) (*Contour, error) {
	return ResampleContourBlockCtx(context.Background(), p, c, n, block, opts)
}

// ResampleContourBlockCtx is ResampleContourCtx with the per-point MPNR
// polish batched through the block-transient kernel: the n interpolated
// seeds are corrected in chunks of up to block lockstep lanes, sharing
// Jacobian factorizations and batched device evaluation exactly as the
// block tracer does. This is the warm-start kernel of the variance-aware
// Monte-Carlo flow — a process sample's whole probe contour is one or two
// block solves seeded from the nominal contour. block < 2 falls back to the
// scalar resampler.
func ResampleContourBlockCtx(ctx context.Context, p BlockProblem, c *Contour, n, block int, opts MPNROptions) (*Contour, error) {
	if block < 2 {
		return ResampleContourCtx(ctx, p, c, n, opts)
	}
	seedS, seedH, err := resampleSeeds(c, n)
	if err != nil {
		return nil, err
	}
	sp := opts.Obs.StartSpan(obs.SpanResample)
	defer sp.End()
	opts.Obs = sp
	out := &Contour{Closed: c.Closed}
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		results, errs, berr := solveMPNRBlockCtx(ctx, p, seedS[lo:hi], seedH[lo:hi], opts)
		for i := range results {
			out.GradEvals += results[i].GradEvals
		}
		if berr != nil {
			at := results[0].Point
			if canceled(berr) {
				return out, &CanceledError{Op: "resample", At: at, Points: len(out.Points), Err: berr}
			}
			return out, fmt.Errorf("core: resample block at point %d: %w", lo, berr)
		}
		for i := range results {
			if errs[i] != nil {
				return out, fmt.Errorf("core: resample point %d at (%.4g, %.4g): %w", lo+i, seedS[lo+i], seedH[lo+i], errs[i])
			}
			if !results[i].Converged {
				return out, fmt.Errorf("core: resample point %d at (%.4g, %.4g): %w", lo+i, seedS[lo+i], seedH[lo+i], ErrNoConvergence)
			}
			out.Points = append(out.Points, results[i].Point)
		}
	}
	return out, nil
}
