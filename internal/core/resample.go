package core

import (
	"context"
	"fmt"
	"math"

	"latchchar/internal/obs"
)

// ResampleContour redistributes a traced contour into exactly n points
// evenly spaced in arc length, polishing each interpolated point back onto
// h = 0 with the MPNR corrector. Library table generation wants contours on
// a predictable grid; the tracer's adaptive steps do not provide one.
//
// Since every start point lies (interpolated) on the curve, the corrector
// typically needs a single iteration per point, so the cost is ≈n gradient
// evaluations.
func ResampleContour(p Problem, c *Contour, n int, opts MPNROptions) (*Contour, error) {
	return ResampleContourCtx(context.Background(), p, c, n, opts)
}

// ResampleContourCtx is ResampleContour with a cancellation context; an
// interrupted resample returns the points polished so far together with a
// *CanceledError.
func ResampleContourCtx(ctx context.Context, p Problem, c *Contour, n int, opts MPNROptions) (*Contour, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: ResampleContour needs n ≥ 2, got %d", n)
	}
	if len(c.Points) < 2 {
		return nil, fmt.Errorf("core: ResampleContour needs a traced contour with ≥ 2 points")
	}
	sp := opts.Obs.StartSpan(obs.SpanResample)
	defer sp.End()
	opts.Obs = sp // correctors nest under the resample span
	// Cumulative arc length.
	cum := make([]float64, len(c.Points))
	for i := 1; i < len(c.Points); i++ {
		d := math.Hypot(c.Points[i].TauS-c.Points[i-1].TauS, c.Points[i].TauH-c.Points[i-1].TauH)
		cum[i] = cum[i-1] + d
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return nil, fmt.Errorf("core: contour has zero arc length")
	}
	out := &Contour{Closed: c.Closed}
	seg := 1
	for k := 0; k < n; k++ {
		target := total * float64(k) / float64(n-1)
		for seg < len(cum)-1 && cum[seg] < target {
			seg++
		}
		a, b := c.Points[seg-1], c.Points[seg]
		var u float64
		if cum[seg] > cum[seg-1] {
			u = (target - cum[seg-1]) / (cum[seg] - cum[seg-1])
		}
		s := a.TauS + u*(b.TauS-a.TauS)
		h := a.TauH + u*(b.TauH-a.TauH)
		res, err := SolveMPNRCtx(ctx, p, s, h, opts)
		out.GradEvals += res.GradEvals
		if err != nil {
			if canceled(err) {
				return out, &CanceledError{Op: "resample", At: res.Point, Points: len(out.Points), Err: err}
			}
			return out, fmt.Errorf("core: resample point %d at (%.4g, %.4g): %w", k, s, h, err)
		}
		out.Points = append(out.Points, res.Point)
	}
	return out, nil
}
