package core

import (
	"errors"
	"math"
	"testing"
)

// tradeoffContour builds a synthetic decreasing contour resembling a traced
// setup/hold curve: τh = 50 + 2000/(τs − 90) (picosecond units).
func tradeoffContour() *Contour {
	ct := &Contour{}
	for s := 120.0; s <= 400; s += 10 {
		h := 50 + 2000/(s-90)
		ct.Points = append(ct.Points, Point{TauS: s * 1e-12, TauH: h * 1e-12})
	}
	return ct
}

func TestSetupForHoldInterpolates(t *testing.T) {
	ct := tradeoffContour()
	// At τh = 100 ps: 100 = 50 + 2000/(s−90) → s = 130 ps.
	s, err := ct.SetupForHold(100e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-130e-12) > 1.5e-12 {
		t.Errorf("SetupForHold(100ps) = %v ps, want ≈130 ps", s*1e12)
	}
	// Exactly at a traced point.
	s, err = ct.SetupForHold(ct.Points[5].TauH)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-ct.Points[5].TauS) > 1e-15 {
		t.Errorf("exact point lookup: %v vs %v", s, ct.Points[5].TauS)
	}
}

func TestHoldForSetupInterpolates(t *testing.T) {
	ct := tradeoffContour()
	h, err := ct.HoldForSetup(130e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-100e-12) > 1.5e-12 {
		t.Errorf("HoldForSetup(130ps) = %v ps, want ≈100 ps", h*1e12)
	}
}

func TestQueryOutsideRange(t *testing.T) {
	ct := tradeoffContour()
	if _, err := ct.SetupForHold(1e-9); !errors.Is(err, ErrOutsideContour) {
		t.Errorf("err = %v", err)
	}
	if _, err := ct.HoldForSetup(1e-15); !errors.Is(err, ErrOutsideContour) {
		t.Errorf("err = %v", err)
	}
}

func TestQueryTooFewPoints(t *testing.T) {
	ct := &Contour{Points: []Point{{TauS: 1, TauH: 1}}}
	if _, err := ct.SetupForHold(1); err == nil {
		t.Error("single-point contour accepted")
	}
}

func TestMinSetupMinHold(t *testing.T) {
	ct := tradeoffContour()
	s, h, err := ct.MinSetup()
	if err != nil {
		t.Fatal(err)
	}
	if s != 120e-12 {
		t.Errorf("MinSetup = %v", s)
	}
	if h != ct.Points[0].TauH {
		t.Errorf("paired hold = %v", h)
	}
	s, h, err = ct.MinHold()
	if err != nil {
		t.Fatal(err)
	}
	if s != 400e-12 {
		t.Errorf("MinHold setup = %v", s)
	}
	want := (50 + 2000.0/(400-90)) * 1e-12
	if math.Abs(h-want) > 1e-15 {
		t.Errorf("MinHold = %v, want %v", h, want)
	}
	empty := &Contour{}
	if _, _, err := empty.MinSetup(); err == nil {
		t.Error("empty contour accepted")
	}
	if _, _, err := empty.MinHold(); err == nil {
		t.Error("empty contour accepted")
	}
}

func TestTradeHold(t *testing.T) {
	ct := tradeoffContour()
	// Path sits at (130 ps, 100 ps) but needs 20 ps more hold margin:
	// required hold = 80 ps → 80 = 50 + 2000/(s−90) → s ≈ 156.7 ps.
	s, h, err := ct.TradeHold(130e-12, 100e-12, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-80e-12) > 1e-15 {
		t.Errorf("new hold = %v", h)
	}
	want := (90 + 2000/30.0) * 1e-12
	if math.Abs(s-want) > 2e-12 {
		t.Errorf("new setup = %v ps, want ≈%v ps", s*1e12, want*1e12)
	}
	if s <= 130e-12 {
		t.Error("fixing a hold violation must cost setup time here")
	}
}

func TestTradeHoldNoCost(t *testing.T) {
	ct := tradeoffContour()
	// Path already has huge setup margin: shortening hold costs nothing
	// beyond what it already pays.
	s, _, err := ct.TradeHold(390e-12, 80e-12, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if s != 390e-12 {
		t.Errorf("setup should stay at 390 ps, got %v ps", s*1e12)
	}
}

func TestTradeHoldErrors(t *testing.T) {
	ct := tradeoffContour()
	if _, _, err := ct.TradeHold(130e-12, 100e-12, -1e-12); err == nil {
		t.Error("negative deficit accepted")
	}
	// Deficit so large the contour cannot supply the hold time.
	if _, _, err := ct.TradeHold(130e-12, 100e-12, 60e-12); !errors.Is(err, ErrOutsideContour) {
		t.Errorf("err = %v", err)
	}
}

func TestArcLength(t *testing.T) {
	ct := &Contour{Points: []Point{
		{TauS: 0, TauH: 0}, {TauS: 3e-12, TauH: 4e-12}, {TauS: 6e-12, TauH: 8e-12},
	}}
	if got := ct.ArcLength(); math.Abs(got-10e-12) > 1e-24 {
		t.Errorf("ArcLength = %v", got)
	}
	if (&Contour{}).ArcLength() != 0 {
		t.Error("empty arc length")
	}
}

func TestSortedBySetup(t *testing.T) {
	ct := &Contour{Points: []Point{
		{TauS: 3}, {TauS: 1}, {TauS: 2},
	}}
	sorted := ct.SortedBySetup()
	if sorted[0].TauS != 1 || sorted[1].TauS != 2 || sorted[2].TauS != 3 {
		t.Errorf("sorted: %v", sorted)
	}
	// Original untouched.
	if ct.Points[0].TauS != 3 {
		t.Error("SortedBySetup mutated the contour")
	}
}

func TestQueryOnReversedContour(t *testing.T) {
	// The same queries must work when the curve is traced in the opposite
	// direction (points reversed).
	ct := tradeoffContour()
	rev := &Contour{}
	for i := len(ct.Points) - 1; i >= 0; i-- {
		rev.Points = append(rev.Points, ct.Points[i])
	}
	s1, err := ct.SetupForHold(100e-12)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rev.SetupForHold(100e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1-s2) > 1e-15 {
		t.Errorf("direction-dependent query: %v vs %v", s1, s2)
	}
}
