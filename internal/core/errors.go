package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"latchchar/internal/obs"
)

// ObsAttachable is implemented by Problems that carry an observability
// handle (internal/stf.Evaluator does). Solvers re-parent the problem onto
// their own span for the duration of the solve, so transient spans nest
// under the corrector (or seed) that requested them, and restore the handle
// they were given when done.
type ObsAttachable interface {
	SetObs(*obs.Run)
}

// CtxAttachable is implemented by Problems that propagate a cancellation
// context into their evaluations (internal/stf.Evaluator passes it to the
// transient step loop). The ctx-first solvers attach their context for the
// duration of the solve and restore Background when done, so a canceled
// deadline stops the simulation mid-transient, not just between solver
// iterations.
type CtxAttachable interface {
	SetContext(context.Context)
}

// attachCtx points p's evaluation context at ctx and returns a restore
// function (a no-op when p does not participate or ctx is Background).
func attachCtx(ctx context.Context, p Problem) func() {
	if ctx == nil || ctx == context.Background() {
		return func() {}
	}
	a, ok := p.(CtxAttachable)
	if !ok {
		return func() {}
	}
	a.SetContext(ctx)
	return func() { a.SetContext(context.Background()) }
}

// ErrCanceled is the sentinel for solves stopped by context cancellation.
// The structured *CanceledError carrying the interruption site wraps it.
var ErrCanceled = errors.New("core: canceled")

// CanceledError reports a solve stopped by context cancellation, carrying
// where the work stopped so callers can resume or report partial progress.
// TraceContourCtx pairs it with the partial contour traced so far.
type CanceledError struct {
	// Op identifies the interrupted stage: "seed", "mpnr", "trace",
	// "resample", "independent".
	Op string
	// At is the last solved point before the interruption (zero when the
	// solve was canceled before producing one).
	At Point
	// Points is the number of contour points already accepted (trace only).
	Points int
	// Err is the underlying cause (the context error, possibly wrapped by
	// the transient engine's own cancellation report).
	Err error
}

// Error renders a one-line summary.
func (e *CanceledError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %s canceled near (τs=%.4g s, τh=%.4g s)", e.Op, e.At.TauS, e.At.TauH)
	if e.Points > 0 {
		fmt.Fprintf(&b, " after %d contour points", e.Points)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes both the ErrCanceled sentinel and the context cause, so
// errors.Is(err, core.ErrCanceled) and errors.Is(err, context.Canceled)
// both hold.
func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Err} }

// canceled classifies an evaluation error as a cancellation: either the
// solver's own ctx fired, or a nested stage (the transient engine, an inner
// solve) already reported one.
func canceled(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrCanceled))
}

// ctxErr returns a CanceledError for op when ctx is done, else nil.
func ctxErr(ctx context.Context, op string, at Point) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	return &CanceledError{Op: op, At: at, Err: context.Cause(ctx)}
}

// attachObs points p's observability at span and returns a restore function
// (both no-ops when the run is disabled or p does not participate).
func attachObs(p Problem, span, restore *obs.Run) func() {
	if span == nil {
		return func() {}
	}
	a, ok := p.(ObsAttachable)
	if !ok {
		return func() {}
	}
	a.SetObs(span)
	return func() { a.SetObs(restore) }
}

// ConvergenceError is the structured failure report of a solver: instead of
// a bare message it carries the last iterates, their |h| residuals and the
// step-length history at the failure site, so callers (and the CLIs) can
// show *how* the solve died — oscillating iterates, a flat gradient region,
// a predictor step that no shrinking could rescue.
type ConvergenceError struct {
	// Op identifies the failing stage: "mpnr", "trace".
	Op string
	// At is the last iterate (mpnr) or the last accepted contour point
	// (trace) before the failure.
	At Point
	// Iterates holds the most recent corrector iterates, oldest first.
	// Each carries its residual H and gradient.
	Iterates []Point
	// StepLens is the tracer's predictor step-length history at the failure
	// site: every α tried (halving each retry) before giving up.
	StepLens []float64
	// Err is the underlying sentinel or nested failure.
	Err error
}

// Error renders a one-line summary; the CLIs render the full trail.
func (e *ConvergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %s failed near (τs=%.4g s, τh=%.4g s)", e.Op, e.At.TauS, e.At.TauH)
	if len(e.Iterates) > 0 {
		last := e.Iterates[len(e.Iterates)-1]
		fmt.Fprintf(&b, ", last |h|=%.3g after %d iterates", abs(last.H), len(e.Iterates))
	}
	if len(e.StepLens) > 0 {
		fmt.Fprintf(&b, ", step lengths tried %.3g…%.3g", e.StepLens[0], e.StepLens[len(e.StepLens)-1])
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes the sentinel for errors.Is/As.
func (e *ConvergenceError) Unwrap() error { return e.Err }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// iterRing keeps the last few iterates of a Newton loop without heap
// allocation on the success path; the slice is only materialized on failure.
type iterRing struct {
	buf [8]Point
	n   int
}

func (r *iterRing) push(p Point) {
	r.buf[r.n%len(r.buf)] = p
	r.n++
}

func (r *iterRing) slice() []Point {
	k := r.n
	if k > len(r.buf) {
		k = len(r.buf)
	}
	out := make([]Point, k)
	for i := 0; i < k; i++ {
		out[i] = r.buf[(r.n-k+i)%len(r.buf)]
	}
	return out
}
