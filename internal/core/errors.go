package core

import (
	"fmt"
	"strings"

	"latchchar/internal/obs"
)

// ObsAttachable is implemented by Problems that carry an observability
// handle (internal/stf.Evaluator does). Solvers re-parent the problem onto
// their own span for the duration of the solve, so transient spans nest
// under the corrector (or seed) that requested them, and restore the handle
// they were given when done.
type ObsAttachable interface {
	SetObs(*obs.Run)
}

// attachObs points p's observability at span and returns a restore function
// (both no-ops when the run is disabled or p does not participate).
func attachObs(p Problem, span, restore *obs.Run) func() {
	if span == nil {
		return func() {}
	}
	a, ok := p.(ObsAttachable)
	if !ok {
		return func() {}
	}
	a.SetObs(span)
	return func() { a.SetObs(restore) }
}

// ConvergenceError is the structured failure report of a solver: instead of
// a bare message it carries the last iterates, their |h| residuals and the
// step-length history at the failure site, so callers (and the CLIs) can
// show *how* the solve died — oscillating iterates, a flat gradient region,
// a predictor step that no shrinking could rescue.
type ConvergenceError struct {
	// Op identifies the failing stage: "mpnr", "trace".
	Op string
	// At is the last iterate (mpnr) or the last accepted contour point
	// (trace) before the failure.
	At Point
	// Iterates holds the most recent corrector iterates, oldest first.
	// Each carries its residual H and gradient.
	Iterates []Point
	// StepLens is the tracer's predictor step-length history at the failure
	// site: every α tried (halving each retry) before giving up.
	StepLens []float64
	// Err is the underlying sentinel or nested failure.
	Err error
}

// Error renders a one-line summary; the CLIs render the full trail.
func (e *ConvergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %s failed near (τs=%.4g s, τh=%.4g s)", e.Op, e.At.TauS, e.At.TauH)
	if len(e.Iterates) > 0 {
		last := e.Iterates[len(e.Iterates)-1]
		fmt.Fprintf(&b, ", last |h|=%.3g after %d iterates", abs(last.H), len(e.Iterates))
	}
	if len(e.StepLens) > 0 {
		fmt.Fprintf(&b, ", step lengths tried %.3g…%.3g", e.StepLens[0], e.StepLens[len(e.StepLens)-1])
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes the sentinel for errors.Is/As.
func (e *ConvergenceError) Unwrap() error { return e.Err }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// iterRing keeps the last few iterates of a Newton loop without heap
// allocation on the success path; the slice is only materialized on failure.
type iterRing struct {
	buf [8]Point
	n   int
}

func (r *iterRing) push(p Point) {
	r.buf[r.n%len(r.buf)] = p
	r.n++
}

func (r *iterRing) slice() []Point {
	k := r.n
	if k > len(r.buf) {
		k = len(r.buf)
	}
	out := make([]Point, k)
	for i := 0; i < k; i++ {
		out[i] = r.buf[(r.n-k+i)%len(r.buf)]
	}
	return out
}
