package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"latchchar/internal/obs"
)

// Rect bounds the traced skew domain.
type Rect struct {
	MinS, MaxS float64
	MinH, MaxH float64
}

// Contains reports whether (s, h) lies inside the rectangle.
func (r Rect) Contains(s, h float64) bool {
	return s >= r.MinS && s <= r.MaxS && h >= r.MinH && h <= r.MaxH
}

// TraceStep records one predictor-corrector step for diagnostics and for
// reproducing Fig. 5.
type TraceStep struct {
	// From is the accepted point the Euler step departed from.
	From Point
	// PredS, PredH is the Euler predictor (paper eq. (26)).
	PredS, PredH float64
	// Alpha is the step length used.
	Alpha float64
	// Accepted is the corrected point (valid when OK).
	Accepted Point
	// OK reports whether the corrector converged at this step length.
	OK bool
}

// TraceOptions configure Euler-Newton contour tracing.
type TraceOptions struct {
	// Step is the Euler step length α along the tangent (default 5 ps).
	Step float64
	// MinStep and MaxStep bound the adaptive step length
	// (defaults Step/16 and 4·Step).
	MinStep, MaxStep float64
	// MaxPoints bounds the number of contour points per direction
	// (default 40, the paper's validation count).
	MaxPoints int
	// Bounds stops tracing when the curve leaves this rectangle. A zero
	// Rect disables the check.
	Bounds Rect
	// BothDirections traces backwards from the seed as well and returns the
	// concatenated curve.
	BothDirections bool
	// MPNR configures the corrector.
	MPNR MPNROptions
	// FastIters is the corrector iteration count at or below which the step
	// length is grown (default 3, matching the paper's "2–3 iterations").
	FastIters int
	// RecordSteps keeps the predictor/corrector history.
	RecordSteps bool
	// Block is the predictor lookahead width: a value > 1 predicts a bundle
	// of Block equally spaced points along the tangent each cycle and
	// corrects them as one lockstep block (BlockProblem — for circuit
	// problems a single multi-lane block-transient), accepting the converged
	// in-order prefix. Ignored (scalar predictor) when ≤ 1 or when the
	// problem does not implement BlockProblem.
	Block int
	// UseSecant replaces the Jacobian-induced tangent with the secant
	// through the last two accepted points once two points exist — the
	// classical alternative predictor from numerical continuation
	// (Allgower & Georg, the paper's ref. [10]). The first step still uses
	// the tangent. Mostly useful for comparison; the tangent needs no
	// history and reacts to curvature immediately.
	UseSecant bool
	// Obs attaches observability: the trace runs inside a "trace" span with
	// one "step" span per predictor-corrector cycle, emits point events and
	// live progress (points traced / budget, current (τs, τh), corrector
	// iterations, ETA). nil disables collection.
	Obs *obs.Run
}

func (o TraceOptions) withDefaults() TraceOptions {
	if o.Step <= 0 {
		o.Step = 5e-12
	}
	if o.MinStep <= 0 {
		o.MinStep = o.Step / 16
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 4 * o.Step
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 40
	}
	if o.FastIters <= 0 {
		o.FastIters = 3
	}
	return o
}

// Contour is a traced constant clock-to-Q curve.
type Contour struct {
	// Points are ordered along the curve. With BothDirections, the seed sits
	// between the two traced arms.
	Points []Point
	// Steps is the predictor/corrector history when RecordSteps is set.
	Steps []TraceStep
	// GradEvals counts gradient evaluations spent (seed correction
	// included).
	GradEvals int
	// Closed reports whether tracing terminated by returning to the seed.
	Closed bool
}

// SetupHoldPairs returns the contour as (τs, τh) pairs.
func (c *Contour) SetupHoldPairs() [][2]float64 {
	out := make([][2]float64, len(c.Points))
	for i, p := range c.Points {
		out[i] = [2]float64{p.TauS, p.TauH}
	}
	return out
}

// TraceContour runs the complete Euler-Newton procedure of Section IIIE:
// correct the seed onto the curve with MPNR, then repeatedly extrapolate
// along the tangent induced by the Jacobian (Euler predictor) and re-correct
// with MPNR, adapting the step length to corrector performance.
func TraceContour(p Problem, seedS, seedH float64, opts TraceOptions) (*Contour, error) {
	return TraceContourCtx(context.Background(), p, seedS, seedH, opts)
}

// TraceContourCtx is TraceContour with a cancellation context, checked at
// every predictor-corrector cycle and threaded into the problem's
// transients (CtxAttachable) so cancellation lands within one transient
// step. An interrupted trace returns the partial contour accepted so far —
// still a valid prefix (or two arms) of the constant clock-to-Q curve —
// together with a *CanceledError.
func TraceContourCtx(ctx context.Context, p Problem, seedS, seedH float64, opts TraceOptions) (*Contour, error) {
	o := opts.withDefaults()
	ct := &Contour{}

	sp := o.Obs.StartSpan(obs.SpanTrace)
	defer sp.End()
	o.Obs = sp // children (steps, correctors) nest under the trace span

	seedOpts := o.MPNR
	seedOpts.Obs = sp
	seedRes, err := SolveMPNRCtx(ctx, p, seedS, seedH, seedOpts)
	ct.GradEvals += seedRes.GradEvals
	if err != nil {
		if canceled(err) {
			return ct, &CanceledError{Op: "trace", At: seedRes.Point, Err: err}
		}
		return ct, fmt.Errorf("core: seed correction failed: %w", err)
	}
	seed := seedRes.Point
	sp.Point(seed.TauS, seed.TauH, seed.CorrectorIters)
	sp.Count(obs.CtrPoints, 1)

	// Assemble whatever both arms produced even when a direction fails or
	// is canceled: the error reports why tracing stopped, the points are
	// the partial contour.
	fwd, closed, errF := traceOneDirection(ctx, p, seed, +1, o, ct)
	ct.Closed = closed
	var bwd []Point
	var errB error
	if o.BothDirections && !closed && errF == nil {
		bwd, _, errB = traceOneDirection(ctx, p, seed, -1, o, ct)
	}
	// Assemble: reversed backward arm, seed, forward arm.
	pts := make([]Point, 0, len(bwd)+1+len(fwd))
	for i := len(bwd) - 1; i >= 0; i-- {
		pts = append(pts, bwd[i])
	}
	pts = append(pts, seed)
	pts = append(pts, fwd...)
	ct.Points = pts
	err = errF
	if err == nil {
		err = errB
	}
	if err != nil {
		var ce *CanceledError
		if errors.As(err, &ce) {
			ce.Points = len(ct.Points)
		}
		return ct, err
	}
	return ct, nil
}

// traceOneDirection walks the curve from seed with initial orientation
// sign·T(seed). It returns the accepted points (excluding the seed) and
// whether the walk closed back onto the seed.
func traceOneDirection(ctx context.Context, p Problem, seed Point, sign float64, o TraceOptions, ct *Contour) ([]Point, bool, error) {
	var pts []Point
	cur := seed
	havePrev := false
	var prev Point
	ts, th, err := Tangent(cur.DhdS, cur.DhdH)
	if err != nil {
		return nil, false, err
	}
	prevTS, prevTH := sign*ts, sign*th
	alpha := o.Step
	bp, _ := p.(BlockProblem)
	if o.Block <= 1 {
		bp = nil
	}

	for len(pts) < o.MaxPoints {
		if err := ctxErr(ctx, "trace", cur); err != nil {
			return pts, false, err
		}
		ts, th, err := Tangent(cur.DhdS, cur.DhdH)
		if err != nil {
			return pts, false, err
		}
		if o.UseSecant && havePrev {
			ds, dh := cur.TauS-prev.TauS, cur.TauH-prev.TauH
			if n := math.Hypot(ds, dh); n > 0 {
				ts, th = ds/n, dh/n
			}
		}
		// Orientation continuity: never double back (Section IIID).
		if ts*prevTS+th*prevTH < 0 {
			ts, th = -ts, -th
		}

		if bp != nil {
			bSize := o.Block
			if rem := o.MaxPoints - len(pts); bSize > rem {
				bSize = rem
			}
			accepted, stop, closed, grow, err := bundleAdvance(ctx, bp, seed, cur, ts, th, alpha, bSize, len(pts), o, ct)
			for _, ap := range accepted {
				pts = append(pts, ap)
				prev, havePrev = cur, true
				cur = ap
				o.Obs.Progress(obs.Progress{
					Phase: obs.SpanTrace, Done: len(pts), Total: o.MaxPoints,
					TauS: ap.TauS, TauH: ap.TauH, CorrectorIters: ap.CorrectorIters,
				})
			}
			if len(accepted) > 0 {
				prevTS, prevTH = ts, th
			}
			if err != nil {
				var ce *CanceledError
				if errors.As(err, &ce) {
					ce.Points = len(pts)
				}
				return pts, false, err
			}
			if stop {
				return pts, closed, nil
			}
			if grow && alpha < o.MaxStep {
				alpha = math.Min(o.MaxStep, alpha*1.4)
			}
			if len(accepted) > 0 {
				continue
			}
			// Empty prefix: the bundle's first lane failed to correct. Fall
			// through to the scalar α-halving cycle for this advance.
		}

		stepSpan := o.Obs.StartSpan(obs.SpanStep)
		stepOpts := o.MPNR
		stepOpts.Obs = stepSpan
		var accepted *Point
		var alphasTried []float64
		for {
			predS := cur.TauS + alpha*ts
			predH := cur.TauH + alpha*th
			res, err := SolveMPNRCtx(ctx, p, predS, predH, stepOpts)
			ct.GradEvals += res.GradEvals
			step := TraceStep{From: cur, PredS: predS, PredH: predH, Alpha: alpha, OK: err == nil}
			if err == nil {
				step.Accepted = res.Point
				accepted = &res.Point
			}
			if o.RecordSteps {
				ct.Steps = append(ct.Steps, step)
			}
			if err == nil {
				// Grow the step when the corrector is comfortable.
				if res.Point.CorrectorIters <= o.FastIters && alpha < o.MaxStep {
					alpha = math.Min(o.MaxStep, alpha*1.4)
				}
				break
			}
			if canceled(err) {
				// A canceled corrector is not a struggling corrector: stop
				// here with the points accepted so far.
				stepSpan.End()
				return pts, false, &CanceledError{Op: "trace", At: cur, Points: len(pts), Err: err}
			}
			// Corrector struggled: shrink and retry.
			stepSpan.Count(obs.CtrStepRejects, 1)
			alphasTried = append(alphasTried, alpha)
			alpha /= 2
			if alpha < o.MinStep {
				stepSpan.End()
				return pts, false, &ConvergenceError{
					Op:       "trace",
					At:       cur,
					StepLens: alphasTried,
					Err:      err,
				}
			}
		}
		// Domain bound check.
		zero := Rect{}
		if o.Bounds != zero && !o.Bounds.Contains(accepted.TauS, accepted.TauH) {
			stepSpan.End()
			return pts, false, nil
		}
		// Closed-curve detection: back at the seed.
		if len(pts) >= 3 {
			d := math.Hypot(accepted.TauS-seed.TauS, accepted.TauH-seed.TauH)
			if d < alpha/2 {
				stepSpan.End()
				return pts, true, nil
			}
		}
		stepSpan.Point(accepted.TauS, accepted.TauH, accepted.CorrectorIters)
		stepSpan.Count(obs.CtrPoints, 1)
		stepSpan.End()
		o.Obs.Progress(obs.Progress{
			Phase: obs.SpanTrace, Done: len(pts) + 1, Total: o.MaxPoints,
			TauS: accepted.TauS, TauH: accepted.TauH, CorrectorIters: accepted.CorrectorIters,
		})
		pts = append(pts, *accepted)
		prevTS, prevTH = ts, th
		prev, havePrev = cur, true
		cur = *accepted
	}
	return pts, false, nil
}
