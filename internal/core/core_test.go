package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// analytic test problems ----------------------------------------------------

// circle: h = τs² + τh² − R². Contour is a closed circle of radius R.
type circle struct {
	r     float64
	evals int
	grads int
}

func (c *circle) Eval(s, h float64) (float64, error) {
	c.evals++
	return s*s + h*h - c.r*c.r, nil
}

func (c *circle) EvalGrad(s, h float64) (float64, float64, float64, error) {
	c.grads++
	return s*s + h*h - c.r*c.r, 2 * s, 2 * h, nil
}

// hyperbola: h = (τs−a)(τh−b) − c for τs>a, τh>b — the qualitative shape of
// a setup/hold tradeoff curve (decreasing, convex, with asymptotes).
type hyperbola struct {
	a, b, c float64
	grads   int
}

func (hp *hyperbola) Eval(s, h float64) (float64, error) {
	return (s-hp.a)*(h-hp.b) - hp.c, nil
}

func (hp *hyperbola) EvalGrad(s, h float64) (float64, float64, float64, error) {
	hp.grads++
	return (s-hp.a)*(h-hp.b) - hp.c, h - hp.b, s - hp.a, nil
}

// line: h = u·τs + v·τh − w.
type line struct{ u, v, w float64 }

func (l *line) Eval(s, h float64) (float64, error) {
	return l.u*s + l.v*h - l.w, nil
}

func (l *line) EvalGrad(s, h float64) (float64, float64, float64, error) {
	return l.u*s + l.v*h - l.w, l.u, l.v, nil
}

// flat: h = 1 everywhere (degenerate gradient).
type flat struct{}

func (flat) Eval(s, h float64) (float64, error)                       { return 1, nil }
func (flat) EvalGrad(s, h float64) (float64, float64, float64, error) { return 1, 0, 0, nil }

// latchLike mimics the circuit's h: a smooth saturating function of the
// hyperbola residual, flat (≈ ±1) away from the contour — the Q-surface
// cliff of Fig. 1(a).
type latchLike struct {
	hyp hyperbola
	w   float64
}

func (l *latchLike) raw(s, h float64) (float64, float64, float64) {
	r, gs, gh, _ := l.hyp.EvalGrad(s, h)
	t := math.Tanh(r / l.w)
	d := (1 - t*t) / l.w
	return t, d * gs, d * gh
}

func (l *latchLike) Eval(s, h float64) (float64, error) {
	v, _, _ := l.raw(s, h)
	return v, nil
}

func (l *latchLike) EvalGrad(s, h float64) (float64, float64, float64, error) {
	v, gs, gh := l.raw(s, h)
	return v, gs, gh, nil
}

// MPNR ----------------------------------------------------------------------

func TestMPNRConvergesToNearestPointOnCircle(t *testing.T) {
	c := &circle{r: 1}
	// Start at (2, 0): the nearest curve point is (1, 0).
	res, err := SolveMPNR(c, 2, 0, MPNROptions{MaxStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if math.Abs(res.TauS-1) > 1e-5 || math.Abs(res.TauH) > 1e-9 {
		t.Errorf("converged to (%v, %v), want (1, 0)", res.TauS, res.TauH)
	}
	// Diagonal start: nearest point is on the diagonal.
	res, err = SolveMPNR(c, 2, 2, MPNROptions{MaxStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	d := 1 / math.Sqrt2
	if math.Abs(res.TauS-d) > 1e-5 || math.Abs(res.TauH-d) > 1e-5 {
		t.Errorf("converged to (%v, %v), want (%v, %v)", res.TauS, res.TauH, d, d)
	}
}

func TestMPNRQuadraticConvergenceOnLine(t *testing.T) {
	// For a linear h, one MPNR step lands exactly on the curve.
	l := &line{u: 3, v: -2, w: 1}
	res, err := SolveMPNR(l, 5, 5, MPNROptions{MaxStep: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.GradEvals > 2 {
		t.Errorf("linear problem took %d gradient evals, want ≤ 2", res.GradEvals)
	}
	h, _ := l.Eval(res.TauS, res.TauH)
	if math.Abs(h) > 1e-12 {
		t.Errorf("residual %v", h)
	}
}

func TestMPNRResidualMeetsTolerance(t *testing.T) {
	c := &circle{r: 1}
	res, err := SolveMPNR(c, 1.3, 0.4, MPNROptions{HTol: 1e-10, MaxStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H) > 1e-10 {
		t.Errorf("|h| = %v exceeds tolerance", math.Abs(res.H))
	}
}

func TestMPNRDegenerateGradient(t *testing.T) {
	_, err := SolveMPNR(flat{}, 0, 0, MPNROptions{})
	if !errors.Is(err, ErrDegenerateGradient) {
		t.Errorf("err = %v, want ErrDegenerateGradient", err)
	}
}

func TestMPNRTrajectoryRecorded(t *testing.T) {
	c := &circle{r: 1}
	res, err := SolveMPNR(c, 1.5, 0.5, MPNROptions{Record: true, MaxStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) < 2 {
		t.Fatalf("trajectory too short: %d", len(res.Trajectory))
	}
	// |h| should shrink monotonically on this well-behaved problem.
	for i := 1; i < len(res.Trajectory); i++ {
		if math.Abs(res.Trajectory[i].H) > math.Abs(res.Trajectory[i-1].H) {
			t.Errorf("residual grew at iterate %d", i)
		}
	}
}

func TestMPNRMaxStepClamps(t *testing.T) {
	c := &circle{r: 1}
	// Huge initial residual with a tight clamp still converges, just slower.
	res, err := SolveMPNR(c, 4, 0, MPNROptions{MaxStep: 0.5, MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TauS-1) > 1e-5 {
		t.Errorf("converged to %v", res.TauS)
	}
}

func TestMPNRNoConvergence(t *testing.T) {
	c := &circle{r: 1}
	_, err := SolveMPNR(c, 100, 0, MPNROptions{MaxIter: 2, MaxStep: 1e-3})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

// Tangent ---------------------------------------------------------------------

func TestTangentOrthogonalAndUnit(t *testing.T) {
	gs, gh := 3.0, 4.0
	ts, th, err := Tangent(gs, gh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts*gs+th*gh) > 1e-14 {
		t.Error("tangent not orthogonal to gradient")
	}
	if math.Abs(math.Hypot(ts, th)-1) > 1e-14 {
		t.Error("tangent not unit length")
	}
	if _, _, err := Tangent(0, 0); !errors.Is(err, ErrDegenerateGradient) {
		t.Error("degenerate gradient not detected")
	}
}

// Tracing ---------------------------------------------------------------------

func TestTraceCircleStaysOnCurve(t *testing.T) {
	c := &circle{r: 1}
	ct, err := TraceContour(c, 1.2, 0.1, TraceOptions{
		Step:      0.05,
		MaxPoints: 50,
		MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Points) < 20 {
		t.Fatalf("too few points: %d", len(ct.Points))
	}
	for i, p := range ct.Points {
		if r := math.Hypot(p.TauS, p.TauH); math.Abs(r-1) > 1e-6 {
			t.Errorf("point %d off the circle: radius %v", i, r)
		}
	}
}

func TestTraceCircleDetectsClosure(t *testing.T) {
	c := &circle{r: 1}
	ct, err := TraceContour(c, 1.0, 0.0, TraceOptions{
		Step:      0.12,
		MaxPoints: 200,
		MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Closed {
		t.Error("closed curve not detected")
	}
	// Should take roughly 2π/step ≈ 52 points with adaptation ≤ 4·step.
	if len(ct.Points) > 200 {
		t.Errorf("closure missed, used %d points", len(ct.Points))
	}
}

func TestTraceRespectssBounds(t *testing.T) {
	hp := &hyperbola{a: 0.1, b: 0.05, c: 0.01}
	bounds := Rect{MinS: 0.12, MaxS: 0.5, MinH: 0.06, MaxH: 0.5}
	ct, err := TraceContour(hp, 0.2, 0.2, TraceOptions{
		Step:           0.01,
		MaxPoints:      500,
		Bounds:         bounds,
		BothDirections: true,
		MPNR:           MPNROptions{MaxStep: 10, HTol: 1e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ct.Points {
		if !bounds.Contains(p.TauS, p.TauH) {
			t.Errorf("point %d outside bounds: (%v, %v)", i, p.TauS, p.TauH)
		}
	}
	// Both directions: the curve should span a decent τs range.
	minS, maxS := math.Inf(1), math.Inf(-1)
	for _, p := range ct.Points {
		minS = math.Min(minS, p.TauS)
		maxS = math.Max(maxS, p.TauS)
	}
	if maxS-minS < 0.2 {
		t.Errorf("curve span too small: [%v, %v]", minS, maxS)
	}
}

func TestTraceHyperbolaMonotoneTradeoff(t *testing.T) {
	// The setup/hold tradeoff curve: τh decreases as τs increases.
	hp := &hyperbola{a: 0.1, b: 0.05, c: 0.01}
	ct, err := TraceContour(hp, 0.2, 0.2, TraceOptions{
		Step:      0.02,
		MaxPoints: 30,
		MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	inc, dec := 0, 0
	for i := 1; i < len(ct.Points); i++ {
		ds := ct.Points[i].TauS - ct.Points[i-1].TauS
		dh := ct.Points[i].TauH - ct.Points[i-1].TauH
		if ds > 0 {
			inc++
		}
		if dh < 0 {
			dec++
		}
	}
	// Directionality must be consistent: all steps same way.
	n := len(ct.Points) - 1
	if !(inc == n && dec == n) && !(inc == 0 && dec == 0) {
		t.Errorf("trace zig-zagged: %d/%d increasing τs, %d/%d decreasing τh", inc, n, dec, n)
	}
}

func TestTraceCorrectorItersSmall(t *testing.T) {
	// With Euler prediction, the corrector should need ≤ 3 iterations
	// almost everywhere (the paper's observation).
	hp := &hyperbola{a: 0.1, b: 0.05, c: 0.01}
	ct, err := TraceContour(hp, 0.2, 0.11, TraceOptions{
		Step:        0.01,
		MaxPoints:   25,
		RecordSteps: true,
		MPNR:        MPNROptions{MaxStep: 10, HTol: 1e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	slow := 0
	for _, p := range ct.Points[1:] {
		if p.CorrectorIters > 3 {
			slow++
		}
	}
	if slow > len(ct.Points)/4 {
		t.Errorf("%d of %d points needed > 3 corrector iterations", slow, len(ct.Points))
	}
	if len(ct.Steps) == 0 {
		t.Error("steps not recorded")
	}
}

func TestTraceLatchLikeCliff(t *testing.T) {
	// On the saturating problem, the seed must be near the contour (inside
	// the cliff) — exactly why the paper brackets first. From a reasonable
	// seed the tracer must stay on the curve.
	l := &latchLike{hyp: hyperbola{a: 0.1, b: 0.05, c: 0.01}, w: 0.005}
	ct, err := TraceContour(l, 0.21, 0.14, TraceOptions{
		Step:      0.01,
		MaxPoints: 20,
		MPNR:      MPNROptions{MaxStep: 0.02, HTol: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ct.Points {
		want := 0.01/(p.TauS-0.1) + 0.05
		if math.Abs(p.TauH-want)/want > 1e-3 {
			t.Errorf("point %d off contour: τh=%v want %v", i, p.TauH, want)
		}
	}
}

func TestTraceGradEvalsLinearInPoints(t *testing.T) {
	// Cost must scale linearly with the number of contour points — the
	// paper's core complexity claim (Section I).
	costs := map[int]int{}
	for _, n := range []int{10, 20, 40} {
		c := &circle{r: 1}
		ct, err := TraceContour(c, 1.1, 0, TraceOptions{
			Step:      0.01,
			MaxStep:   0.01, // disable growth for a clean scaling measurement
			MaxPoints: n,
			MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-9},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(ct.Points) != n+1 {
			t.Fatalf("points = %d, want %d", len(ct.Points), n+1)
		}
		costs[n] = ct.GradEvals
	}
	r1 := float64(costs[20]) / float64(costs[10])
	r2 := float64(costs[40]) / float64(costs[20])
	if r1 < 1.6 || r1 > 2.4 || r2 < 1.6 || r2 > 2.4 {
		t.Errorf("cost not linear: 10→%d, 20→%d, 40→%d", costs[10], costs[20], costs[40])
	}
}

// Natural-parameter ablation ---------------------------------------------------

func TestNaturalContinuationWorksOnGentleCurve(t *testing.T) {
	hp := &hyperbola{a: 0.1, b: 0.05, c: 0.01}
	ct, err := TraceContourNatural(hp, 0.2, 0.2, TraceOptions{
		Step:      0.02,
		MaxPoints: 15,
		MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ct.Points {
		want := 0.01/(p.TauS-0.1) + 0.05
		if math.Abs(p.TauH-want) > 1e-6 {
			t.Errorf("point %d off contour: %v vs %v", i, p.TauH, want)
		}
	}
}

func TestNaturalContinuationFailsAtTurningPoint(t *testing.T) {
	// On the circle, marching τs rightward must fail near τs = r where the
	// tangent is vertical — the failure mode Euler-Newton avoids.
	c := &circle{r: 1}
	_, err := TraceContourNatural(c, 0.5, 0.9, TraceOptions{
		Step:      0.05,
		MaxPoints: 100,
		MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-9},
	})
	if err == nil {
		t.Fatal("expected failure at the turning point")
	}
	// Euler-Newton sails through the same region (tracing both directions,
	// one of which heads straight for the turning point).
	ct, err := TraceContour(c, 0.5, 0.9, TraceOptions{
		Step:           0.05,
		MaxPoints:      60,
		BothDirections: true,
		MPNR:           MPNROptions{MaxStep: 10, HTol: 1e-9},
	})
	if err != nil {
		t.Fatalf("Euler-Newton failed too: %v", err)
	}
	crossed := false
	for _, p := range ct.Points {
		if p.TauS > 0.999 {
			crossed = true
		}
	}
	if !crossed {
		t.Error("Euler-Newton did not pass the turning point")
	}
}

// Seeding -----------------------------------------------------------------------

func TestFindSeedBracketsCliff(t *testing.T) {
	l := &latchLike{hyp: hyperbola{a: 100e-12, b: 50e-12, c: (100e-12) * (100e-12)}, w: 0.005}
	// At τh = 500 ps, contour τs = 100p + c/(450p) ≈ 122.2 ps.
	res, err := FindSeed(l, SeedOptions{TauHLarge: 500e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := 100e-12 + (100e-12*100e-12)/(450e-12)
	if math.Abs(res.TauS-want) > 25e-12 {
		t.Errorf("seed %v ps, want ≈ %v ps", res.TauS*1e12, want*1e12)
	}
	if res.PlainEvals == 0 || res.PlainEvals > 12 {
		t.Errorf("bracketing used %d evals", res.PlainEvals)
	}
	if res.TauH != 500e-12 {
		t.Errorf("TauH = %v", res.TauH)
	}
}

func TestFindSeedNoBracket(t *testing.T) {
	if _, err := FindSeed(flat{}, SeedOptions{}); !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

// Independent characterization ---------------------------------------------------

func TestIndependentBisectionAndNRAgree(t *testing.T) {
	l := &latchLike{hyp: hyperbola{a: 100e-12, b: 50e-12, c: (100e-12) * (100e-12)}, w: 0.01}
	want := 100e-12 + (100e-12*100e-12)/(500e-12-50e-12)
	bis, err := IndependentBisection(l, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nr, err := IndependentNR(l, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bis.Skew-want) > 1e-12 {
		t.Errorf("bisection: %v want %v", bis.Skew, want)
	}
	if math.Abs(nr.Skew-want) > 1e-12 {
		t.Errorf("NR: %v want %v", nr.Skew, want)
	}
	if math.Abs(nr.Skew-bis.Skew) > 0.5e-12 {
		t.Errorf("methods disagree: %v vs %v", nr.Skew, bis.Skew)
	}
}

func TestIndependentNRCheaperThanBisection(t *testing.T) {
	l := &latchLike{hyp: hyperbola{a: 100e-12, b: 50e-12, c: (100e-12) * (100e-12)}, w: 0.01}
	// Equal accuracy targets: 0.01 ps (five digits on ~100 ps skews).
	opts := IndependentOptions{Tol: 0.01e-12}
	bis, err := IndependentBisection(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := IndependentNR(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	costB := bis.PlainEvals
	costN := nr.PlainEvals + nr.GradEvals
	if costN*2 >= costB {
		t.Errorf("NR cost %d not ≥2× cheaper than bisection cost %d", costN, costB)
	}
}

func TestIndependentHoldAxis(t *testing.T) {
	// Solve for τh with τs pinned: the same hyperbola by symmetry.
	l := &latchLike{hyp: hyperbola{a: 100e-12, b: 50e-12, c: (100e-12) * (100e-12)}, w: 0.01}
	want := 50e-12 + (100e-12*100e-12)/(500e-12-100e-12)
	nr, err := IndependentNR(l, IndependentOptions{Axis: HoldAxis})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nr.Skew-want) > 1e-12 {
		t.Errorf("hold NR: %v want %v", nr.Skew, want)
	}
	if HoldAxis.String() != "hold" || SetupAxis.String() != "setup" {
		t.Error("axis strings")
	}
}

func TestIndependentNoBracket(t *testing.T) {
	if _, err := IndependentBisection(flat{}, IndependentOptions{}); !errors.Is(err, ErrNoBracket) {
		t.Error("bisection should report ErrNoBracket")
	}
	if _, err := IndependentNR(flat{}, IndependentOptions{}); !errors.Is(err, ErrNoBracket) {
		t.Error("NR should report ErrNoBracket")
	}
}

// Misc ----------------------------------------------------------------------------

func TestRectContains(t *testing.T) {
	r := Rect{MinS: 0, MaxS: 1, MinH: 0, MaxH: 1}
	if !r.Contains(0.5, 0.5) || r.Contains(1.5, 0.5) || r.Contains(0.5, -0.1) {
		t.Error("Contains wrong")
	}
}

func TestSetupHoldPairs(t *testing.T) {
	ct := &Contour{Points: []Point{{TauS: 1, TauH: 2}, {TauS: 3, TauH: 4}}}
	pairs := ct.SetupHoldPairs()
	if len(pairs) != 2 || pairs[0] != [2]float64{1, 2} || pairs[1] != [2]float64{3, 4} {
		t.Errorf("pairs: %v", pairs)
	}
}

func TestTraceOptionsDefaults(t *testing.T) {
	o := TraceOptions{}.withDefaults()
	if o.Step != 5e-12 || o.MaxPoints != 40 || o.FastIters != 3 {
		t.Errorf("defaults: %+v", o)
	}
	if o.MinStep >= o.Step || o.MaxStep <= o.Step {
		t.Errorf("step bounds: %+v", o)
	}
}

func TestMPNROptionsDefaults(t *testing.T) {
	o := MPNROptions{}.withDefaults()
	if o.MaxIter != 12 || o.HTol != 1e-6 || o.MaxStep != 50e-12 {
		t.Errorf("defaults: %+v", o)
	}
	o = MPNROptions{MaxStep: -1}.withDefaults()
	if o.MaxStep != 0 {
		t.Errorf("negative MaxStep should disable clamping: %+v", o)
	}
}

func TestFindSeedExpandsBracket(t *testing.T) {
	// The contour sits above the initial Hi: the search must expand the
	// bracket (Fig. 7's "start with an interval containing the setup time"
	// step when the first guess is too narrow).
	l := &latchLike{hyp: hyperbola{a: 1.5e-9, b: 50e-12, c: (100e-12) * (100e-12)}, w: 0.01}
	res, err := FindSeed(l, SeedOptions{TauHLarge: 500e-12, Lo: 10e-12, Hi: 400e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.5e-9 + (100e-12*100e-12)/(450e-12)
	if math.Abs(res.TauS-want) > 25e-12 {
		t.Errorf("seed %v ps, want ≈ %v ps", res.TauS*1e12, want*1e12)
	}
}

func TestFindSeedExpandExhausted(t *testing.T) {
	// Contour far beyond any reachable expansion.
	l := &latchLike{hyp: hyperbola{a: 1.0, b: 50e-12, c: 1e-20}, w: 0.01}
	if _, err := FindSeed(l, SeedOptions{Lo: 1e-12, Hi: 2e-12, MaxExpand: 2}); !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v", err)
	}
}

func TestTraceSecantPredictorStaysOnCircle(t *testing.T) {
	c := &circle{r: 1}
	ct, err := TraceContour(c, 1.1, 0.1, TraceOptions{
		Step:      0.05,
		MaxPoints: 40,
		UseSecant: true,
		MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Points) < 20 {
		t.Fatalf("too few points: %d", len(ct.Points))
	}
	for i, p := range ct.Points {
		if r := math.Hypot(p.TauS, p.TauH); math.Abs(r-1) > 1e-6 {
			t.Errorf("point %d radius %v", i, r)
		}
	}
}

func TestTraceSecantComparableEffort(t *testing.T) {
	// On a smooth curve the secant predictor should cost about the same
	// corrector effort as the tangent predictor.
	run := func(secant bool) int {
		c := &circle{r: 1}
		ct, err := TraceContour(c, 1.05, 0.05, TraceOptions{
			Step:      0.05,
			MaxStep:   0.05,
			MaxPoints: 30,
			UseSecant: secant,
			MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ct.GradEvals
	}
	tangent, secant := run(false), run(true)
	if float64(secant) > 1.5*float64(tangent) {
		t.Errorf("secant predictor much worse: %d vs %d gradient evals", secant, tangent)
	}
}

// TestMPNRQuadraticRate measures the convergence order on the circle:
// for Newton, err_{k+1} ≈ C·err_k², so log-errors should (at least) double
// their decay per iteration once in the basin. This is the structural
// reason behind the paper's "2–3 iterations" observation.
func TestMPNRQuadraticRate(t *testing.T) {
	c := &circle{r: 1}
	res, err := SolveMPNR(c, 1.05, 0.02, MPNROptions{Record: true, MaxStep: 10, HTol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for _, p := range res.Trajectory {
		e := math.Abs(math.Hypot(p.TauS, p.TauH) - 1)
		if e > 0 {
			errs = append(errs, e)
		}
	}
	if len(errs) < 3 {
		t.Skipf("converged too fast to measure rate: %v", errs)
	}
	// Order estimate p ≈ log(e2/e1)/log(e1/e0) ≥ ~1.7 for quadratic.
	p := math.Log(errs[2]/errs[1]) / math.Log(errs[1]/errs[0])
	if p < 1.5 {
		t.Errorf("convergence order %.2f, want ≥ 1.5 (errors %v)", p, errs)
	}
}

// Property: from random starts in an annulus around the circle, MPNR always
// converges to a point on the circle, and the landing point is close to the
// radial projection (nearest point).
func TestMPNRNearestPointProperty(t *testing.T) {
	c := &circle{r: 1}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		th := rng.Float64() * 2 * math.Pi
		r := 0.6 + 0.8*rng.Float64()
		s0, h0 := r*math.Cos(th), r*math.Sin(th)
		res, err := SolveMPNR(c, s0, h0, MPNROptions{MaxStep: 10, HTol: 1e-12})
		if err != nil {
			t.Fatalf("trial %d from (%v, %v): %v", trial, s0, h0, err)
		}
		if d := math.Abs(math.Hypot(res.TauS, res.TauH) - 1); d > 1e-6 {
			t.Errorf("trial %d: landed %v off the circle", trial, d)
		}
		// Nearest point is the radial projection.
		want := [2]float64{math.Cos(th), math.Sin(th)}
		if math.Hypot(res.TauS-want[0], res.TauH-want[1]) > 0.05 {
			t.Errorf("trial %d: landed at (%v, %v), projection (%v, %v)",
				trial, res.TauS, res.TauH, want[0], want[1])
		}
	}
}
