package core

import (
	"math"
	"testing"
)

func TestResampleCircleUniformSpacing(t *testing.T) {
	c := &circle{r: 1}
	ct, err := TraceContour(c, 1.05, 0.02, TraceOptions{
		Step:      0.07,
		MaxPoints: 40,
		MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	rs, err := ResampleContour(c, ct, n, MPNROptions{MaxStep: 10, HTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Points) != n {
		t.Fatalf("points: %d", len(rs.Points))
	}
	// All points on the circle.
	for i, p := range rs.Points {
		if r := math.Hypot(p.TauS, p.TauH); math.Abs(r-1) > 1e-8 {
			t.Errorf("point %d radius %v", i, r)
		}
	}
	// Spacing approximately uniform (within 30%, tolerance for the
	// polish pulling points slightly along the normal).
	var ds []float64
	for i := 1; i < n; i++ {
		ds = append(ds, math.Hypot(rs.Points[i].TauS-rs.Points[i-1].TauS,
			rs.Points[i].TauH-rs.Points[i-1].TauH))
	}
	mean := 0.0
	for _, d := range ds {
		mean += d
	}
	mean /= float64(len(ds))
	for i, d := range ds {
		if math.Abs(d-mean)/mean > 0.3 {
			t.Errorf("segment %d length %v deviates from mean %v", i, d, mean)
		}
	}
	// Cheap: about one gradient evaluation per point.
	if rs.GradEvals > 3*n {
		t.Errorf("resampling cost %d gradient evals for %d points", rs.GradEvals, n)
	}
}

func TestResampleEndpointsPreserved(t *testing.T) {
	hp := &hyperbola{a: 0.1, b: 0.05, c: 0.01}
	ct, err := TraceContour(hp, 0.2, 0.2, TraceOptions{
		Step:      0.02,
		MaxPoints: 20,
		MPNR:      MPNROptions{MaxStep: 10, HTol: 1e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ResampleContour(hp, ct, 8, MPNROptions{MaxStep: 10, HTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	first, last := ct.Points[0], ct.Points[len(ct.Points)-1]
	if math.Hypot(rs.Points[0].TauS-first.TauS, rs.Points[0].TauH-first.TauH) > 1e-9 {
		t.Error("first endpoint moved")
	}
	if math.Hypot(rs.Points[7].TauS-last.TauS, rs.Points[7].TauH-last.TauH) > 1e-9 {
		t.Error("last endpoint moved")
	}
}

func TestResampleValidation(t *testing.T) {
	c := &circle{r: 1}
	ct := &Contour{Points: []Point{{TauS: 1, TauH: 0}}}
	if _, err := ResampleContour(c, ct, 5, MPNROptions{}); err == nil {
		t.Error("single-point contour accepted")
	}
	ct2 := &Contour{Points: []Point{{TauS: 1}, {TauS: 1}}}
	if _, err := ResampleContour(c, ct2, 5, MPNROptions{}); err == nil {
		t.Error("zero-length contour accepted")
	}
	ct3 := &Contour{Points: []Point{{TauS: 1}, {TauS: 0.9, TauH: 0.1}}}
	if _, err := ResampleContour(c, ct3, 1, MPNROptions{}); err == nil {
		t.Error("n=1 accepted")
	}
}
