package core

import (
	"context"
	"fmt"
	"math"

	"latchchar/internal/obs"
)

// This file implements Section IIIB: solving for setup (or hold) time with
// the other skew pinned at a large value, where eq. (4) degenerates to the
// scalar equation h(τs) = 0 of eq. (5). Two strategies are provided:
//
//   - IndependentBisection — the industry-practice binary search, driven
//     purely by latch/fail outcomes (one plain transient per probe);
//   - IndependentNR — the direct Newton solution of the paper's companion
//     work (DATE 2007, ref. [6]): a coarse bracket followed by scalar
//     Newton-Raphson on h using the sensitivity-computed derivative.
//
// Comparing their simulation counts reproduces the 4–10× speedup the paper
// cites for the prior-work baseline.

// Axis selects which skew is solved for.
type Axis int

const (
	// SetupAxis solves for τs with τh pinned.
	SetupAxis Axis = iota
	// HoldAxis solves for τh with τs pinned.
	HoldAxis
)

func (a Axis) String() string {
	if a == HoldAxis {
		return "hold"
	}
	return "setup"
}

// IndependentOptions configure the scalar solves.
type IndependentOptions struct {
	// Axis selects the solved skew (default SetupAxis).
	Axis Axis
	// Pinned is the fixed value of the other skew (default 500 ps).
	Pinned float64
	// Lo, Hi bracket the solved skew (defaults 10 ps, 800 ps).
	Lo, Hi float64
	// Tol is the accuracy target on the skew (default 0.1 ps, i.e. the
	// paper's five significant digits on ~100 ps quantities).
	Tol float64
	// MaxIter bounds iterations for either strategy (default 60).
	MaxIter int
	// CoarseWidth is the bracket width below which IndependentNR switches
	// from bisection to Newton (default 50 ps).
	CoarseWidth float64
	// Guess, when positive, starts IndependentNR directly from this value,
	// skipping the bracketing phase. This models the industrial situation
	// the paper describes — "a good guess will typically approximate some
	// previously known pair of setup and hold time of the similar kind of
	// registers" — and is where the full 4–10× prior-work speedup comes
	// from. [Lo, Hi] still clamps runaway Newton steps.
	Guess float64
	// Obs attaches observability: either solve runs inside an "independent"
	// span. nil disables collection.
	Obs *obs.Run
}

func (o IndependentOptions) withDefaults() IndependentOptions {
	if o.Pinned <= 0 {
		o.Pinned = 500e-12
	}
	if o.Lo <= 0 {
		o.Lo = 10e-12
	}
	if o.Hi <= o.Lo {
		o.Hi = 800e-12
	}
	if o.Tol <= 0 {
		o.Tol = 0.1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 60
	}
	if o.CoarseWidth <= 0 {
		o.CoarseWidth = 50e-12
	}
	return o
}

// IndependentResult reports a scalar characterization outcome.
type IndependentResult struct {
	// Skew is the solved setup or hold time.
	Skew float64
	// H is the residual at the solution.
	H float64
	// PlainEvals and GradEvals count transient simulations by kind.
	PlainEvals, GradEvals int
}

func (o IndependentOptions) eval(p Problem, v float64) (float64, error) {
	if o.Axis == HoldAxis {
		return p.Eval(o.Pinned, v)
	}
	return p.Eval(v, o.Pinned)
}

func (o IndependentOptions) evalGrad(p Problem, v float64) (h, dh float64, err error) {
	if o.Axis == HoldAxis {
		h, _, dh, err = p.EvalGrad(o.Pinned, v)
		return h, dh, err
	}
	h, dh, _, err = p.EvalGrad(v, o.Pinned)
	return h, dh, err
}

// IndependentBisection is the current-practice baseline: binary search on
// the latch/fail boundary down to Tol. Every probe costs one plain
// transient.
func IndependentBisection(p Problem, opts IndependentOptions) (IndependentResult, error) {
	return IndependentBisectionCtx(context.Background(), p, opts)
}

// IndependentBisectionCtx is IndependentBisection with a cancellation
// context, checked before every probe and threaded into the problem's
// transients (CtxAttachable). Interrupted solves return a *CanceledError.
func IndependentBisectionCtx(ctx context.Context, p Problem, opts IndependentOptions) (IndependentResult, error) {
	o := opts.withDefaults()
	res := IndependentResult{}
	sp := o.Obs.StartSpan(obs.SpanIndependent)
	detachObs := attachObs(p, sp, o.Obs)
	detachCtx := attachCtx(ctx, p)
	defer func() {
		detachCtx()
		detachObs()
		sp.End()
	}()
	eval := func(v float64) (float64, error) {
		if err := ctxErr(ctx, "independent", Point{}); err != nil {
			return 0, err
		}
		h, err := o.eval(p, v)
		if err != nil && canceled(err) {
			err = &CanceledError{Op: "independent", Err: err}
		}
		return h, err
	}
	lo, hi := o.Lo, o.Hi
	hLo, err := eval(lo)
	if err != nil {
		return res, err
	}
	res.PlainEvals++
	hHi, err := eval(hi)
	if err != nil {
		return res, err
	}
	res.PlainEvals++
	if sameSign(hLo, hHi) {
		return res, fmt.Errorf("%w: [%g, %g] on %s axis", ErrNoBracket, lo, hi, o.Axis)
	}
	for iter := 0; hi-lo > o.Tol && iter < o.MaxIter; iter++ {
		mid := 0.5 * (lo + hi)
		hMid, err := eval(mid)
		if err != nil {
			return res, err
		}
		res.PlainEvals++
		if sameSign(hMid, hLo) {
			lo, hLo = mid, hMid
		} else {
			hi = mid
		}
	}
	res.Skew = 0.5 * (lo + hi)
	res.H, err = eval(res.Skew)
	if err != nil {
		return res, err
	}
	res.PlainEvals++
	return res, nil
}

// IndependentNR is the direct Newton solution of eq. (5): a coarse
// bisection narrows the bracket into the Newton basin, then scalar
// Newton-Raphson polishes to Tol using the sensitivity-computed dh/dτ.
func IndependentNR(p Problem, opts IndependentOptions) (IndependentResult, error) {
	return IndependentNRCtx(context.Background(), p, opts)
}

// IndependentNRCtx is IndependentNR with a cancellation context, checked
// before every probe and Newton iteration and threaded into the problem's
// transients (CtxAttachable). Interrupted solves return a *CanceledError.
func IndependentNRCtx(ctx context.Context, p Problem, opts IndependentOptions) (IndependentResult, error) {
	o := opts.withDefaults()
	res := IndependentResult{}
	sp := o.Obs.StartSpan(obs.SpanIndependent)
	detachObs := attachObs(p, sp, o.Obs)
	detachCtx := attachCtx(ctx, p)
	defer func() {
		detachCtx()
		detachObs()
		sp.End()
	}()
	eval := func(v float64) (float64, error) {
		if err := ctxErr(ctx, "independent", Point{}); err != nil {
			return 0, err
		}
		h, err := o.eval(p, v)
		if err != nil && canceled(err) {
			err = &CanceledError{Op: "independent", Err: err}
		}
		return h, err
	}
	lo, hi := o.Lo, o.Hi
	var v float64
	if o.Guess > 0 {
		v = o.Guess
	} else {
		hLo, err := eval(lo)
		if err != nil {
			return res, err
		}
		res.PlainEvals++
		hHi, err := eval(hi)
		if err != nil {
			return res, err
		}
		res.PlainEvals++
		if sameSign(hLo, hHi) {
			return res, fmt.Errorf("%w: [%g, %g] on %s axis", ErrNoBracket, lo, hi, o.Axis)
		}
		for hi-lo > o.CoarseWidth {
			mid := 0.5 * (lo + hi)
			hMid, err := eval(mid)
			if err != nil {
				return res, err
			}
			res.PlainEvals++
			if sameSign(hMid, hLo) {
				lo, hLo = mid, hMid
			} else {
				hi = mid
			}
		}
		v = 0.5 * (lo + hi)
	}
	for iter := 0; iter < o.MaxIter; iter++ {
		if err := ctxErr(ctx, "independent", Point{}); err != nil {
			return res, err
		}
		h, dh, err := o.evalGrad(p, v)
		if err != nil {
			if canceled(err) {
				return res, &CanceledError{Op: "independent", Err: err}
			}
			return res, err
		}
		res.GradEvals++
		res.Skew, res.H = v, h
		if dh == 0 {
			return res, ErrDegenerateGradient
		}
		dv := h / dh
		v -= dv
		// Keep Newton honest: fall back into the bracket if it escapes.
		if v < lo || v > hi {
			v = math.Min(math.Max(v, lo), hi)
		}
		if math.Abs(dv) <= o.Tol {
			res.Skew = v
			return res, nil
		}
	}
	return res, ErrNoConvergence
}
