package core

import (
	"context"
	"fmt"
	"math"

	"latchchar/internal/num"
	"latchchar/internal/obs"
)

// BlockProblem is a Problem that can evaluate a block of nearby points with
// one lockstep multi-lane computation (for the circuit problem: one
// block-transient, internal/stf.Evaluator.EvalGradBlock). errs reports
// per-lane failures without invalidating the other lanes; the final error is
// reserved for whole-block failures (cancellation, invalid input), which
// void every lane.
type BlockProblem interface {
	Problem
	EvalGradBlock(tauS, tauH []float64) (h, dhdS, dhdH []float64, errs []error, err error)
}

// SolveMPNRBlock is SolveMPNRBlockCtx with context.Background().
func SolveMPNRBlock(p BlockProblem, tauS0, tauH0 []float64, opts MPNROptions) ([]MPNRResult, []error, error) {
	return SolveMPNRBlockCtx(context.Background(), p, tauS0, tauH0, opts)
}

// SolveMPNRBlockCtx runs the Moore-Penrose corrector on a bundle of starting
// guesses as one lockstep block-transient computation — the batch sibling of
// SolveMPNRCtx. Per-lane outcomes land in the result and error slices
// (errs[i] is nil iff lane i converged); the final error is reserved for
// cancellation and invalid input.
func SolveMPNRBlockCtx(ctx context.Context, p BlockProblem, tauS0, tauH0 []float64, opts MPNROptions) ([]MPNRResult, []error, error) {
	if len(tauS0) != len(tauH0) {
		return nil, nil, fmt.Errorf("core: SolveMPNRBlock needs matched seed slices, got %d and %d", len(tauS0), len(tauH0))
	}
	return solveMPNRBlockCtx(ctx, p, tauS0, tauH0, opts)
}

// solveMPNRBlockCtx runs the Moore-Penrose corrector on a bundle of starting
// guesses in lockstep: each sweep evaluates all still-active lanes as one
// block, applies the scalar MPNR update per lane, and drops lanes as they
// converge or fail. Per-lane outcomes land in results/errsOut (errsOut[i] is
// nil iff lane i converged); the returned error is reserved for
// cancellation. The whole bundle runs inside one "corrector" span, observing
// one iteration count per lane.
func solveMPNRBlockCtx(ctx context.Context, p BlockProblem, tauS0, tauH0 []float64, opts MPNROptions) (results []MPNRResult, errsOut []error, err error) {
	o := opts.withDefaults()
	B := len(tauS0)
	results = make([]MPNRResult, B)
	errsOut = make([]error, B)
	sp := o.Obs.StartSpan(obs.SpanCorrector)
	detachObs := attachObs(p, sp, o.Obs)
	detachCtx := attachCtx(ctx, p)
	defer func() {
		detachCtx()
		detachObs()
		for i := range results {
			sp.Observe(obs.HistCorrectorIters, results[i].Point.CorrectorIters)
		}
		sp.End()
	}()
	tauS := append([]float64(nil), tauS0...)
	tauH := append([]float64(nil), tauH0...)
	active := make([]int, B)
	for i := range active {
		active[i] = i
	}
	rings := make([]iterRing, B)
	bs := make([]float64, 0, B)
	bh := make([]float64, 0, B)
	for iter := 1; iter <= o.MaxIter && len(active) > 0; iter++ {
		if cerr := ctxErr(ctx, "mpnr", results[active[0]].Point); cerr != nil {
			return results, errsOut, cerr
		}
		bs, bh = bs[:0], bh[:0]
		for _, i := range active {
			bs = append(bs, tauS[i])
			bh = append(bh, tauH[i])
		}
		h, gs, gh, evalErrs, berr := p.EvalGradBlock(bs, bh)
		if berr != nil {
			if canceled(berr) {
				return results, errsOut, &CanceledError{Op: "mpnr", At: results[active[0]].Point, Err: berr}
			}
			for _, i := range active {
				errsOut[i] = &ConvergenceError{Op: "mpnr", At: results[i].Point, Iterates: rings[i].slice(), Err: berr}
			}
			return results, errsOut, nil
		}
		next := active[:0]
		for ai, i := range active {
			results[i].GradEvals++
			if evalErrs != nil && evalErrs[ai] != nil {
				errsOut[i] = &ConvergenceError{Op: "mpnr", At: results[i].Point, Iterates: rings[i].slice(), Err: evalErrs[ai]}
				continue
			}
			hi, gsi, ghi := h[ai], gs[ai], gh[ai]
			if o.Record {
				results[i].Trajectory = append(results[i].Trajectory,
					Point{TauS: tauS[i], TauH: tauH[i], H: hi, DhdS: gsi, DhdH: ghi, CorrectorIters: iter - 1})
			}
			norm2 := gsi*gsi + ghi*ghi
			results[i].Point = Point{TauS: tauS[i], TauH: tauH[i], H: hi, DhdS: gsi, DhdH: ghi, CorrectorIters: iter}
			rings[i].push(results[i].Point)
			if math.Abs(hi) <= o.HTol {
				results[i].Converged = true
				continue
			}
			if norm2 == 0 || !num.IsFinite(norm2) {
				errsOut[i] = &ConvergenceError{Op: "mpnr", At: results[i].Point, Iterates: rings[i].slice(), Err: ErrDegenerateGradient}
				continue
			}
			dS := hi * gsi / norm2
			dH := hi * ghi / norm2
			stepLen := math.Hypot(dS, dH)
			if o.MaxStep > 0 && stepLen > o.MaxStep {
				scale := o.MaxStep / stepLen
				dS *= scale
				dH *= scale
				stepLen = o.MaxStep
			}
			tauS[i] -= dS
			tauH[i] -= dH
			if stepLen <= o.TauTol {
				results[i].Point.TauS, results[i].Point.TauH = tauS[i], tauH[i]
				results[i].Converged = true
				continue
			}
			if iter == o.MaxIter {
				errsOut[i] = &ConvergenceError{Op: "mpnr", At: results[i].Point, Iterates: rings[i].slice(), Err: ErrNoConvergence}
				continue
			}
			next = append(next, i)
		}
		active = next
	}
	return results, errsOut, nil
}

// bundleAdvance is the block predictor-corrector cycle of the trace loop:
// predict B equally spaced lookahead points along the current tangent
// (cur + i·α·T, i = 1..B), correct them as one lockstep bundle, and accept
// the in-order prefix of lanes that converged, advanced monotonically along
// the tangent, stayed in bounds and did not close the curve. The first
// non-accepting lane truncates the prefix — contour order is sacred. An
// empty prefix means the caller falls back to the scalar α-halving cycle.
//
// Returns the accepted points, whether tracing should stop (bounds exit or
// closure, with closed distinguishing the two), whether the step length may
// grow (every lane accepted comfortably), and a cancellation error if the
// bundle was interrupted.
func bundleAdvance(ctx context.Context, p BlockProblem, seed, cur Point, ts, th, alpha float64, bSize, nPts int, o TraceOptions, ct *Contour) (accepted []Point, stop, closed, grow bool, err error) {
	stepSpan := o.Obs.StartSpan(obs.SpanStep)
	defer stepSpan.End()
	stepOpts := o.MPNR
	stepOpts.Obs = stepSpan

	predS := make([]float64, bSize)
	predH := make([]float64, bSize)
	for i := 0; i < bSize; i++ {
		predS[i] = cur.TauS + float64(i+1)*alpha*ts
		predH[i] = cur.TauH + float64(i+1)*alpha*th
	}
	results, errs, err := solveMPNRBlockCtx(ctx, p, predS, predH, stepOpts)
	for i := range results {
		ct.GradEvals += results[i].GradEvals
	}
	if err != nil {
		return nil, false, false, false, err
	}

	prevProj := 0.0
	maxIters := 0
	zero := Rect{}
	for i := 0; i < bSize; i++ {
		ok := errs[i] == nil && results[i].Converged
		pt := results[i].Point
		if ok {
			// Monotone-advance guard: a corrected point must move forward
			// along the tangent past its predecessor, or the bundle prefix
			// ends here (correctors can pull lookahead points backwards onto
			// already-traced curve).
			proj := (pt.TauS-cur.TauS)*ts + (pt.TauH-cur.TauH)*th
			ok = proj > prevProj
			prevProj = proj
		}
		if o.RecordSteps {
			step := TraceStep{From: cur, PredS: predS[i], PredH: predH[i], Alpha: alpha, OK: ok}
			if ok {
				step.Accepted = pt
			}
			ct.Steps = append(ct.Steps, step)
		}
		if !ok {
			return accepted, false, false, false, nil
		}
		if o.Bounds != zero && !o.Bounds.Contains(pt.TauS, pt.TauH) {
			return accepted, true, false, false, nil
		}
		if nPts+len(accepted) >= 3 {
			if d := math.Hypot(pt.TauS-seed.TauS, pt.TauH-seed.TauH); d < alpha/2 {
				return accepted, true, true, false, nil
			}
		}
		stepSpan.Point(pt.TauS, pt.TauH, pt.CorrectorIters)
		stepSpan.Count(obs.CtrPoints, 1)
		accepted = append(accepted, pt)
		if pt.CorrectorIters > maxIters {
			maxIters = pt.CorrectorIters
		}
	}
	grow = len(accepted) == bSize && maxIters <= o.FastIters
	return accepted, false, false, grow, nil
}
