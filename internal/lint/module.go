package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// ModuleIndex is the module-wide syntax fact base shared by every pass. It
// is built once per driver invocation from a comments-preserving parse of
// the whole module (no type checking), so even the single-package unitchecker
// mode of `go vet -vettool` sees cross-package facts like deprecation
// markers.
type ModuleIndex struct {
	// ModulePath is the module's import path ("latchchar").
	ModulePath string
	// Dir is the module root directory.
	Dir string
	// Deprecated maps qualified object names to their deprecation note.
	// Keys: "pkgpath.Func", "pkgpath.Type", "pkgpath.Type.Method" and
	// "pkgpath.Type.Field" for struct fields.
	Deprecated map[string]string
}

// BuildModuleIndex parses every non-test Go file under the module root
// (skipping testdata, vendor and dot-directories) and extracts the
// declarations whose doc comments carry a "Deprecated:" paragraph, in the
// standard Go convention.
func BuildModuleIndex(dir, modulePath string) (*ModuleIndex, error) {
	idx := &ModuleIndex{ModulePath: modulePath, Dir: dir, Deprecated: map[string]string{}}
	fset := token.NewFileSet()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			// A module tree under active edit may hold broken files; the
			// index is advisory, so skip them instead of failing the run.
			return nil
		}
		rel, rerr := filepath.Rel(dir, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		pkgPath := modulePath
		if rel != "." {
			if modulePath == "" {
				// GOPATH-style tree (the analysistest fixtures): package
				// paths are directory paths relative to the root.
				pkgPath = filepath.ToSlash(rel)
			} else {
				pkgPath = modulePath + "/" + filepath.ToSlash(rel)
			}
		}
		idx.indexFile(pkgPath, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// indexFile records the deprecated declarations of one parsed file.
func (idx *ModuleIndex) indexFile(pkgPath string, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if note, ok := deprecationNote(d.Doc); ok {
				idx.Deprecated[pkgPath+"."+funcKey(d)] = note
			}
		case *ast.GenDecl:
			declNote, declDep := deprecationNote(d.Doc)
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if note, ok := specNote(s.Doc, s.Comment, declNote, declDep); ok {
						idx.Deprecated[pkgPath+"."+s.Name.Name] = note
					}
					if st, ok := s.Type.(*ast.StructType); ok {
						idx.indexFields(pkgPath+"."+s.Name.Name, st)
					}
				case *ast.ValueSpec:
					if note, ok := specNote(s.Doc, s.Comment, declNote, declDep); ok {
						for _, name := range s.Names {
							idx.Deprecated[pkgPath+"."+name.Name] = note
						}
					}
				}
			}
		}
	}
}

// indexFields records deprecated struct fields under "pkgpath.Type.Field".
func (idx *ModuleIndex) indexFields(typeKey string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		note, ok := specNote(field.Doc, field.Comment, "", false)
		if !ok {
			continue
		}
		for _, name := range field.Names {
			idx.Deprecated[typeKey+"."+name.Name] = note
		}
	}
}

// funcKey names a function or "Recv.Method" for methods.
func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return recvTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
}

// recvTypeName unwraps a receiver type expression to its type name.
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// specNote resolves the effective deprecation note of a spec: its own doc or
// line comment first, then the enclosing GenDecl's doc.
func specNote(doc, comment *ast.CommentGroup, declNote string, declDep bool) (string, bool) {
	if note, ok := deprecationNote(doc); ok {
		return note, true
	}
	if note, ok := deprecationNote(comment); ok {
		return note, true
	}
	return declNote, declDep
}

// deprecationNote extracts the "Deprecated:" paragraph from a doc comment.
func deprecationNote(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Deprecated:") {
			return strings.TrimSpace(strings.TrimPrefix(line, "Deprecated:")), true
		}
	}
	return "", false
}
