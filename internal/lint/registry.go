package lint

// All returns the full pass suite in catalog order (DESIGN.md §11). The
// order is stable: it is the -list order of cmd/latchlint and the rule order
// of the SARIF output.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerCtxPair,
		AnalyzerObsSpan,
		AnalyzerCounterReg,
		AnalyzerOptValidate,
		AnalyzerNakedGoroutine,
		AnalyzerDeprecated,
	}
}

// Lookup resolves a pass by its stable name, nil if unknown.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
