package counterreg

import "example.com/obs"

// Complete pre-seed: every Ctr* constant registered.
func seedComplete() map[string]int64 {
	return map[string]int64{
		obs.CtrSteps:          0,
		obs.CtrRetries:        0,
		obs.CtrRuntimeSamples: 0,
		obs.CtrMCWarmSeeds:    0,
		obs.CtrMCSimsSaved:    0,
		obs.CtrMCCVApplied:    0,
	}
}

// Missing counters are reported on the literal — one finding per absent
// constant, covering counters from any declaration block (the mc_* group
// landed after the original vocabulary).
func seedIncomplete() map[string]int64 {
	return map[string]int64{ // want `counter pre-seed map is missing obs.CtrMCSimsSaved` `counter pre-seed map is missing obs.CtrRetries`
		obs.CtrSteps:          0,
		obs.CtrRuntimeSamples: 0,
		obs.CtrMCWarmSeeds:    0,
		obs.CtrMCCVApplied:    0,
	}
}

// A string->int64 map without Ctr* keys is not a pre-seed map.
func unrelated() map[string]int64 {
	return map[string]int64{"hits": 0}
}
