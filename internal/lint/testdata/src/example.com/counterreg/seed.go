package counterreg

import "example.com/obs"

// Complete pre-seed: every Ctr* constant registered.
func seedComplete() map[string]int64 {
	return map[string]int64{
		obs.CtrSteps:          0,
		obs.CtrRetries:        0,
		obs.CtrRuntimeSamples: 0,
	}
}

// Missing counters are reported on the literal.
func seedIncomplete() map[string]int64 {
	return map[string]int64{ // want `counter pre-seed map is missing obs.CtrRetries`
		obs.CtrSteps:          0,
		obs.CtrRuntimeSamples: 0,
	}
}

// A string->int64 map without Ctr* keys is not a pre-seed map.
func unrelated() map[string]int64 {
	return map[string]int64{"hits": 0}
}
