package wire

// Every field of the wire options must serialize into the canonical JSON
// that feeds the request-coalescing key.

type OptionsRequest struct {
	Steps int     `json:"steps"`
	Block int     `json:"block,omitempty"`
	Tol   float64 // want `field OptionsRequest.Tol has no json tag`
	Debug bool    `json:"-"` // want `field OptionsRequest.Debug is excluded from JSON`
	// Monte-Carlo knobs: non-numeric fields are gated too — a sampler name
	// or seed left out of the canonical JSON would coalesce requests whose
	// sample sets differ.
	MCSamples int    `json:"mc_samples,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Sampler   string // want `field OptionsRequest.Sampler has no json tag`
}
