package wire

// Every field of the wire options must serialize into the canonical JSON
// that feeds the request-coalescing key.

type OptionsRequest struct {
	Steps int     `json:"steps"`
	Block int     `json:"block,omitempty"`
	Tol   float64 // want `field OptionsRequest.Tol has no json tag`
	Debug bool    `json:"-"` // want `field OptionsRequest.Debug is excluded from JSON`
}
