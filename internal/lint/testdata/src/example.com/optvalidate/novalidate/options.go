package novalidate

// An options struct with numeric knobs but no validation anywhere in the
// package is reported once, on the type.

type Options struct { // want `options struct Options has no validation`
	Window int
}
