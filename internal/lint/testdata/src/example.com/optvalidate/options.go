package optvalidate

import "errors"

type Options struct {
	// Mentioned as a selector in Validate.
	MaxIter int
	// Lane-count knob validated like latchchar's Options.Block: negative
	// rejected, 0/1 selects the scalar path.
	Block int
	// Mentioned only inside a validator's message string, which counts.
	Window int
	// Never validated.
	Tol float64 // want `field Options.Tol is not checked by any validator`
	// Every finite value is accepted.
	// latchlint:ignore optvalidate clamped to [0,1] by the consumer
	Bias float64
	// Non-numeric fields are out of scope.
	Name string
	// Named types validate in their own package.
	Mode Mode
}

type Mode int

func (o Options) Validate() error {
	if o.MaxIter <= 0 {
		return errors.New("MaxIter must be positive")
	}
	if o.Block < 0 {
		return errors.New("Block must be ≥ 0")
	}
	return validateAux(o)
}

// validate-prefixed helpers contribute mentions too, including field paths
// inside message strings.
func validateAux(o Options) error {
	if aux(o) {
		return errors.New("options: Window must be positive")
	}
	return nil
}

func aux(o Options) bool { return false }

// MCOptions mirrors latchchar's Monte-Carlo options: a second options struct
// in the same package, recognized via its Validate method, whose numeric
// fields are each covered by a validator (selector or message string) —
// except the one that isn't.
type MCOptions struct {
	Samples int
	// Any seed is a valid seed.
	// latchlint:ignore optvalidate every int64 selects a deterministic draw sequence
	Seed int64
	// Mentioned only in a validator message string.
	SigmaLevel float64
	// Never validated.
	Probes int // want `field MCOptions.Probes is not checked by any validator`
	// Named types validate in their own package.
	Scheme Mode
}

func (o MCOptions) Validate() error {
	if o.Samples < 0 {
		return errors.New("Samples must be ≥ 0")
	}
	if bad(o) {
		return errors.New("mc: SigmaLevel must be positive")
	}
	return nil
}

func bad(o MCOptions) bool { return false }
