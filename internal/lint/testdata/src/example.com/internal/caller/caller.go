// Package caller sits under an internal path segment, so the caller-side
// ctxpair rule applies: module code must use the Ctx variants.
package caller

import (
	"context"

	"example.com/ctxpair"
)

func run(ctx context.Context) int {
	good := ctxpair.DoCtx(ctx, 1)
	bad := ctxpair.Do(2) // want `internal package calls ctxpair.Do: call DoCtx`
	return good + bad
}

func methods(ctx context.Context) int {
	var e ctxpair.Engine
	good := e.SolveCtx(ctx, 1)
	bad := e.Solve(2) // want `internal package calls ctxpair.Solve: call SolveCtx`
	return good + bad
}

// A same-name wrapper may delegate down a wrapper chain: it is itself the
// Background shim, not a context-dropping call site.

func Do(x int) int { return ctxpair.Do(x) }

// fetchImpl has no Ctx sibling, so calling it is fine.

func plain() string { return ctxpair.Fetch("k") } // want `internal package calls ctxpair.Fetch: call FetchCtx`
