package nakedgoroutine

import (
	"context"
	"sync"

	"example.com/sched"
)

func bad() {
	go func() { // want `naked goroutine`
		work()
	}()
}

func badNamed() {
	go work() // want `naked goroutine`
}

// A context reference anywhere in the spawned code is the discipline.
func goodCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// Passing a ctx into the goroutine counts even without a closure.
func goodNamedCtx(ctx context.Context) {
	go pump(ctx)
}

func pump(ctx context.Context) { <-ctx.Done() }

// WaitGroup join.
func goodWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Completion observable through a channel send or close.
func goodSend(res chan int) {
	go func() {
		res <- compute()
	}()
}

func goodClose(done chan struct{}) {
	go func() {
		work()
		close(done)
	}()
}

// The sched pool owns the lifecycle of what runs on it.
func goodPool(p *sched.Pool) {
	go func() {
		p.Drain()
	}()
}

// A spawned same-package function is inspected through its body.
func goodNamedBody(wg *sync.WaitGroup) {
	go joined(wg)
}

func joined(wg *sync.WaitGroup) { defer wg.Done(); work() }

func work()        {}
func compute() int { return 0 }
