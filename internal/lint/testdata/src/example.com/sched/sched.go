// Package sched stands in for the repository's scheduler: the one package
// exempt from the nakedgoroutine rule, and the owner of pool lifecycles.
package sched

type Pool struct{}

func (p *Pool) Drain() {}

// The exemption covers the whole package: workers are joined by the pool's
// own accounting, invisible to the per-site check.
func spawn() {
	go loop()
}

func loop() {}
