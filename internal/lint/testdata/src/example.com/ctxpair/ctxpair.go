package ctxpair

import "context"

// Conforming pair: exported Ctx variant plus a pure Background wrapper.

func DoCtx(ctx context.Context, x int) int { return x }

func Do(x int) int { return DoCtx(context.Background(), x) }

// context.TODO also satisfies the wrapper contract.

func PlanCtx(ctx context.Context, n int) int { return n }

func Plan(n int) int { return PlanCtx(context.TODO(), n) }

// Method pair on a receiver.

type Engine struct{}

func (e *Engine) SolveCtx(ctx context.Context, n int) int { return n }

func (e *Engine) Solve(n int) int { return e.SolveCtx(context.Background(), n) }

// Missing wrapper.

func RunCtx(ctx context.Context) error { return nil } // want `exported RunCtx has no non-Ctx wrapper Run`

// Wrapper exists but does real work instead of delegating.

func FetchCtx(ctx context.Context, k string) string { return k }

func Fetch(k string) string { // want `Fetch must be a pure wrapper`
	return fetchImpl(k)
}

func fetchImpl(k string) string { return k }

// Suppression: the marker on the line above silences the finding.

// latchlint:ignore ctxpair fixture exercises the suppression path
func LegacyCtx(ctx context.Context) error { return nil }

// Unexported and non-context first parameters are out of scope.

func helperCtx(ctx context.Context) {}

func IndexCtx(name string) int { return len(name) }
