package obsspan

import (
	"errors"

	"example.com/obs"
)

var errNope = errors.New("nope")

// Deferred End covers every path.
func good(r *obs.Run) {
	sp := r.StartSpan(obs.SpanTrace)
	defer sp.End()
	work()
}

// Explicit End before each return also conforms.
func goodExplicit(r *obs.Run, fail bool) error {
	sp := r.StartSpan(obs.SpanSeed)
	if fail {
		sp.End()
		return errNope
	}
	sp.End()
	return nil
}

// Deferred closure counts as a deferred End.
func goodDeferredClosure(r *obs.Run, err error) {
	sp := r.StartSpan(obs.SpanTrace)
	defer func() {
		sp.SetErr(err)
		sp.End()
	}()
	work()
}

// A handle that escapes transfers ownership to the caller.
func goodEscape(r *obs.Run) *obs.Span {
	sp := r.StartSpan(obs.SpanSeed)
	return sp
}

// One return path leaves the span open.
func badReturn(r *obs.Run, fail bool) error {
	sp := r.StartSpan(obs.SpanTrace)
	if fail {
		return errNope // want `return leaves span sp open`
	}
	sp.End()
	return nil
}

// The span falls out of scope without an End.
func badScope(r *obs.Run) {
	sp := r.StartSpan(obs.SpanTrace) // want `span sp is not ended on every path`
	work()
	sp.SetErr(nil)
}

// Raw literals are flagged even when the value is in the vocabulary: the
// constants are the schema.
func badRawName(r *obs.Run) {
	sp := r.StartSpan("trace") // want `span name "trace" is a raw literal`
	defer sp.End()
}

const localSpan = "not-in-schema"

// Constants outside the Span* vocabulary are flagged.
func badVocab(r *obs.Run) {
	sp := r.StartSpan(localSpan) // want `span name "not-in-schema" is not in the schema-v1 vocabulary`
	defer sp.End()
}

func work() {}

// Service-layer span names (the daemon's job spans) come from the same
// vocabulary and follow the same End discipline.
func goodJobSpan(r *obs.Run) {
	sp := r.StartSpan(obs.SpanJob)
	defer sp.End()
	work()
}
