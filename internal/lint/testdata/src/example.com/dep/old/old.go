// Package old declares deprecated identifiers; its own compatibility shims
// may keep using them, other packages may not.
package old

// Old is the legacy entry point.
//
// Deprecated: use New instead.
func Old() int { return 1 }

func New() int { return 2 }

type Config struct {
	// Deprecated: use Parallelism.
	Workers int

	Parallelism int
}

// effective keeps honoring the legacy field — same-package use is allowed.
func effective(c Config) int {
	if c.Workers != 0 {
		return c.Workers
	}
	return c.Parallelism
}
