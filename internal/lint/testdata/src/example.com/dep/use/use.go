package use

import "example.com/dep/old"

func f() int {
	n := old.Old() // want `use of deprecated example.com/dep/old.Old: use New instead.`
	c := old.Config{Parallelism: 2}
	c.Workers = n // want `use of deprecated example.com/dep/old.Config.Workers: use Parallelism.`
	return old.New() + c.Parallelism
}

// Composite-literal keys are caught too.
func g() old.Config {
	return old.Config{Workers: 1} // want `use of deprecated example.com/dep/old.Config.Workers: use Parallelism.`
}

// Suppression applies here like everywhere else.
func h() int {
	c := old.Config{}
	// latchlint:ignore deprecated migration scheduled separately
	c.Workers = 4
	return c.Workers // want `use of deprecated example.com/dep/old.Config.Workers: use Parallelism.`
}
