// Package obs is a minimal stand-in for the repository's observability
// layer: the Span*/Ctr* vocabulary, a Run handle and a Span with End.
package obs

const (
	SpanTrace = "trace"
	SpanSeed  = "seed"
	SpanJob   = "job"
)

const (
	CtrSteps          = "steps"
	CtrRetries        = "retries"
	CtrRuntimeSamples = "runtime_samples"
)

type Run struct{}

func (r *Run) StartSpan(name string) *Span { return &Span{} }

type Span struct{}

func (s *Span) End() {}

func (s *Span) SetErr(err error) {}
