// Package obs is a minimal stand-in for the repository's observability
// layer: the Span*/Ctr* vocabulary, a Run handle and a Span with End.
package obs

const (
	SpanTrace = "trace"
	SpanSeed  = "seed"
	SpanJob   = "job"
)

const (
	CtrSteps          = "steps"
	CtrRetries        = "retries"
	CtrRuntimeSamples = "runtime_samples"
)

// Monte-Carlo flow counters, mirroring internal/obs's mc_* vocabulary.
const (
	CtrMCWarmSeeds = "mc_warm_seeds"
	CtrMCSimsSaved = "mc_sims_saved"
	CtrMCCVApplied = "mc_cv_applied"
)

type Run struct{}

func (r *Run) StartSpan(name string) *Span { return &Span{} }

type Span struct{}

func (s *Span) End() {}

func (s *Span) SetErr(err error) {}
