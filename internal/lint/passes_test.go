package lint_test

import (
	"testing"

	"latchchar/internal/lint"
	"latchchar/internal/lint/analysistest"
)

func TestCtxPair(t *testing.T) {
	analysistest.Run(t, lint.AnalyzerCtxPair, "example.com/ctxpair", "example.com/internal/caller")
}

func TestObsSpan(t *testing.T) {
	analysistest.Run(t, lint.AnalyzerObsSpan, "example.com/obsspan")
}

func TestCounterReg(t *testing.T) {
	analysistest.Run(t, lint.AnalyzerCounterReg, "example.com/counterreg")
}

func TestOptValidate(t *testing.T) {
	analysistest.Run(t, lint.AnalyzerOptValidate,
		"example.com/optvalidate",
		"example.com/optvalidate/novalidate",
		"example.com/optvalidate/wire")
}

func TestNakedGoroutine(t *testing.T) {
	analysistest.Run(t, lint.AnalyzerNakedGoroutine,
		"example.com/nakedgoroutine",
		"example.com/sched")
}

func TestDeprecated(t *testing.T) {
	analysistest.Run(t, lint.AnalyzerDeprecated,
		"example.com/dep/old",
		"example.com/dep/use")
}

func TestRegistry(t *testing.T) {
	all := lint.All()
	if len(all) != 6 {
		t.Fatalf("All() returned %d analyzers, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.URL == "" || a.Run == nil {
			t.Errorf("analyzer %q has incomplete metadata", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if lint.Lookup(a.Name) != a {
			t.Errorf("Lookup(%q) did not return the registered analyzer", a.Name)
		}
	}
	if lint.Lookup("nope") != nil {
		t.Errorf("Lookup of unknown name should return nil")
	}
}
