package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Module    *ModuleIndex
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct{ Err string }
}

// Load enumerates the packages matching patterns with
// `go list -deps -export -json`, parses the non-dependency matches and
// type-checks them against the compiler's export data. It returns the
// checked packages (tests excluded — the invariants police production code)
// plus the module index shared by cross-package facts.
//
// The export-data importer is the same mechanism the real go vet driver
// uses: `go list -export` populates the build cache, and each import
// resolves through the cached export file instead of re-type-checking
// dependency source. The whole flow works offline.
func Load(dir string, patterns []string) ([]*Package, *ModuleIndex, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listPackage
	exports := map[string]string{}
	moduleDir, modulePath := "", ""
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Module != nil && moduleDir == "" {
			moduleDir, modulePath = lp.Module.Dir, lp.Module.Path
		}
		p := lp
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, &p)
		}
	}
	if moduleDir == "" {
		moduleDir = dir
	}
	mod, err := BuildModuleIndex(moduleDir, modulePath)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: building module index: %w", err)
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := CheckPackage(fset, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles), imp, mod)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, mod, nil
}

// absFiles joins relative file names onto the package directory.
func absFiles(dir string, files []string) []string {
	out := make([]string, len(files))
	for i, f := range files {
		if filepath.IsAbs(f) {
			out[i] = f
		} else {
			out[i] = filepath.Join(dir, f)
		}
	}
	return out
}

// ExportImporter returns a types.Importer resolving import paths through
// compiler export-data files (the mapping produced by `go list -export` or
// handed over in a unitchecker vet config).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// CheckPackage parses and type-checks one package from explicit file lists —
// the shared core of Load and the unitchecker mode.
func CheckPackage(fset *token.FileSet, pkgPath, dir string, files []string, imp types.Importer, mod *ModuleIndex) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
		Module:    mod,
	}, nil
}
