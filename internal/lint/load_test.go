package lint

import (
	"strings"
	"testing"
)

// TestLoadModule exercises the offline driver end to end on the repository
// itself: go list -export enumeration, export-data type checking, the module
// index, and a full run of the suite (which must be clean — CI enforces the
// same via cmd/latchlint).
func TestLoadModule(t *testing.T) {
	pkgs, mod, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if mod.ModulePath != "latchchar" {
		t.Fatalf("module path = %q, want latchchar", mod.ModulePath)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil || len(p.Syntax) == 0 {
			t.Fatalf("package %s loaded without types or syntax", p.PkgPath)
		}
	}
	// The deprecation index must see the known legacy identifiers. (The v1
	// per-call Workers aliases are gone as of v3; circuit.Lint carries the
	// remaining in-tree Deprecated marker.)
	found := false
	for key := range mod.Deprecated {
		if strings.HasSuffix(key, "internal/circuit.Circuit.Lint") {
			found = true
		}
	}
	if !found {
		t.Errorf("module index did not record the deprecated circuit.Lint method: %v", mod.Deprecated)
	}

	findings, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("latchlint finding on the tree: %s: [%s] %s", f.Position, f.Analyzer.Name, f.Message)
	}
}
