package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerNakedGoroutine enforces goroutine discipline (DESIGN.md §8): all
// characterization concurrency runs on the internal/sched pool, and the few
// goroutines outside it must be cancelable or joinable. A `go` statement
// outside internal/sched is flagged unless the spawned code (the function
// literal, or the body of a same-package function/method it calls, plus the
// call's arguments) shows one of the accepted disciplines:
//
//   - it references a context.Context (cancelable),
//   - it calls a sync.WaitGroup method (joined),
//   - it sends on or closes a channel (its completion is observable), or
//   - it touches the sched pool (the pool owns its lifecycle).
//
// Fire-and-forget goroutines leak under test -race -shuffle and defeat
// graceful drain; a legitimately detached goroutine takes a
// latchlint:ignore annotation explaining its lifecycle.
var AnalyzerNakedGoroutine = &Analyzer{
	Name: "nakedgoroutine",
	Doc:  "no fire-and-forget go statements outside internal/sched: thread a ctx, join, or use the pool",
	URL:  "DESIGN.md#lint-nakedgoroutine",
	Run:  runNakedGoroutine,
}

func runNakedGoroutine(pass *Pass) error {
	if hasPathSegment(pass.Pkg.Path(), "sched") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineDisciplined(pass, g) {
				return true
			}
			pass.Reportf(g.Pos(),
				"naked goroutine: fire-and-forget go statement outside internal/sched — thread a ctx, join via sync.WaitGroup or a channel, or run it on the sched pool")
			return true
		})
	}
	return nil
}

// goroutineDisciplined checks the spawned code for an accepted lifecycle
// signal.
func goroutineDisciplined(pass *Pass, g *ast.GoStmt) bool {
	// The call's own arguments and callee expression count: passing a ctx or
	// a WaitGroup into the goroutine is the discipline itself.
	for _, arg := range g.Call.Args {
		if nodeShowsDiscipline(pass, arg) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return nodeShowsDiscipline(pass, fun.Body)
	default:
		if nodeShowsDiscipline(pass, g.Call.Fun) {
			return true
		}
		// Same-package named function or method: inspect its body.
		if fn := calleeFunc(pass, g.Call); fn != nil && fn.Pkg() == pass.Pkg {
			if body := funcBody(pass, fn); body != nil {
				return nodeShowsDiscipline(pass, body)
			}
		}
	}
	return false
}

// nodeShowsDiscipline scans a subtree for a ctx reference, a WaitGroup
// method call, a channel send/close, or a sched-pool use.
func nodeShowsDiscipline(pass *Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.Ident:
			if tv, ok := pass.TypesInfo.Types[ast.Expr(e)]; ok && isContextType(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			switch fun := e.Fun.(type) {
			case *ast.Ident:
				// close(ch) observable completion.
				if fun.Name == "close" {
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
					if isWaitGroupMethod(fn) || isSchedFunc(fn) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroupMethod matches sync.WaitGroup.Add/Done/Wait.
func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isSchedFunc matches functions and methods of a sched package.
func isSchedFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "sched" || strings.HasSuffix(p, "/sched")
}

// funcBody finds the declaration body of a package-local function.
func funcBody(pass *Pass, fn *types.Func) *ast.BlockStmt {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if pass.TypesInfo.Defs[fd.Name] == fn {
					return fd.Body
				}
			}
		}
	}
	return nil
}
