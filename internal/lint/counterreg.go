package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerCounterReg enforces Prometheus pre-seed completeness (DESIGN.md
// §9): the serving layer renders every obs counter as a
// latchchard_obs_*_total metric and pre-seeds all known counter names at
// zero so scrapers see a stable metric set from the first request. A counter
// constant added to internal/obs but missing from the pre-seed map appears
// only after the first job that happens to increment it — a silent schema
// drift this pass turns into a build-time finding.
//
// The pass triggers on any map[string]int64 composite literal keyed by Ctr*
// constants of an obs package, and requires the literal to name every Ctr*
// constant that package exports.
var AnalyzerCounterReg = &Analyzer{
	Name: "counterreg",
	Doc:  "the Prometheus pre-seed map must register every obs.Ctr* counter constant",
	URL:  "DESIGN.md#lint-counterreg",
	Run:  runCounterReg,
}

func runCounterReg(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || !isStringInt64Map(tv.Type) {
				return true
			}
			var obsPkg *types.Package
			present := map[string]bool{}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				c := counterConst(pass, kv.Key)
				if c == nil {
					continue
				}
				obsPkg = c.Pkg()
				present[c.Name()] = true
			}
			if obsPkg == nil {
				return true // not a counter pre-seed map
			}
			var missing []string
			scope := obsPkg.Scope()
			for _, name := range scope.Names() {
				if !strings.HasPrefix(name, "Ctr") || name == "Ctr" {
					continue
				}
				if _, ok := scope.Lookup(name).(*types.Const); !ok {
					continue
				}
				if !present[name] {
					missing = append(missing, name)
				}
			}
			sort.Strings(missing)
			for _, name := range missing {
				pass.Reportf(lit.Pos(),
					"counter pre-seed map is missing %s.%s: register it so the Prometheus exposition is stable from the first scrape",
					obsPkg.Name(), name)
			}
			return true
		})
	}
	return nil
}

// isStringInt64Map matches map[string]int64 (after alias resolution).
func isStringInt64Map(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	k, ok := m.Key().Underlying().(*types.Basic)
	if !ok || k.Kind() != types.String {
		return false
	}
	v, ok := m.Elem().Underlying().(*types.Basic)
	return ok && v.Kind() == types.Int64
}

// counterConst resolves a map key to a Ctr* constant declared in an obs
// package, nil otherwise.
func counterConst(pass *Pass, key ast.Expr) *types.Const {
	var obj types.Object
	switch k := ast.Unparen(key).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[k]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[k.Sel]
	default:
		return nil
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || !strings.HasPrefix(c.Name(), "Ctr") {
		return nil
	}
	if p := c.Pkg().Path(); p != "obs" && !strings.HasSuffix(p, "/obs") {
		return nil
	}
	return c
}
