package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerCtxPair enforces the public API's context contract (DESIGN.md §8):
// every exported FooCtx function or method whose first parameter is a
// context.Context must have an exported non-Ctx sibling Foo, and that
// sibling must be a pure Background wrapper — a single return delegating to
// FooCtx with context.Background() as the first argument. Internal packages
// must call the Ctx variant directly: the wrappers exist for external
// callers, and an internal call site that drops the context silently breaks
// end-to-end cancellation.
var AnalyzerCtxPair = &Analyzer{
	Name: "ctxpair",
	Doc:  "exported ...Ctx API needs a conforming Background wrapper; internal code must call the Ctx variant",
	URL:  "DESIGN.md#lint-ctxpair",
	Run:  runCtxPair,
}

func runCtxPair(pass *Pass) error {
	// Index the package's function declarations by receiver/name.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				decls[funcKey(fd)] = fd
			}
		}
	}

	for key, fd := range decls {
		name := fd.Name.Name
		if !fd.Name.IsExported() || !strings.HasSuffix(name, "Ctx") || name == "Ctx" {
			continue
		}
		if !firstParamIsContext(pass, fd) {
			continue
		}
		base := strings.TrimSuffix(name, "Ctx")
		wrapperKey := strings.TrimSuffix(key, "Ctx")
		wrapper, ok := decls[wrapperKey]
		if !ok {
			pass.Reportf(fd.Name.Pos(),
				"exported %s has no non-Ctx wrapper %s (every ...Ctx API needs a documented context.Background() sibling)",
				name, base)
			continue
		}
		if !isBackgroundWrapper(pass, wrapper, name) {
			pass.Reportf(wrapper.Name.Pos(),
				"%s must be a pure wrapper: a single return calling %s with context.Background() as the context",
				base, name)
		}
	}

	// Caller-side rule, internal packages only: calling the non-Ctx wrapper
	// of another module package discards the caller's context.
	if !hasPathSegment(pass.Pkg.Path(), "internal") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
				return true
			}
			if !pass.InModule(fn.Pkg().Path()) || strings.HasSuffix(fn.Name(), "Ctx") {
				return true
			}
			sib := ctxSibling(fn)
			if sib == nil || !sigFirstParamIsContext(sib) {
				return true
			}
			// A same-name wrapper delegating down a wrapper chain is itself a
			// Background wrapper and may call one.
			if encl := enclosingFuncName(pass, call); encl == fn.Name() {
				return true
			}
			pass.Reportf(call.Pos(),
				"internal package calls %s.%s: call %sCtx and thread the context (the non-Ctx wrapper is for external callers)",
				fn.Pkg().Name(), fn.Name(), fn.Name())
			return true
		})
	}
	return nil
}

// firstParamIsContext reports whether the declared function's first
// parameter is a context.Context.
func firstParamIsContext(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	return sigFirstParamIsContext(obj)
}

func sigFirstParamIsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isBackgroundWrapper reports whether the wrapper body is exactly
// `return <...>FooCtx(context.Background(), args...)`.
func isBackgroundWrapper(pass *Pass, wrapper *ast.FuncDecl, ctxName string) bool {
	if wrapper.Body == nil || len(wrapper.Body.List) != 1 {
		return false
	}
	ret, ok := wrapper.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	// Callee must be named FooCtx (possibly pkg- or receiver-qualified).
	switch callee := call.Fun.(type) {
	case *ast.Ident:
		if callee.Name != ctxName {
			return false
		}
	case *ast.SelectorExpr:
		if callee.Sel.Name != ctxName {
			return false
		}
	default:
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	// First argument must be context.Background() (or context.TODO(), which
	// still satisfies "no caller context exists here").
	argCall, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	argFn := calleeFunc(pass, argCall)
	return argFn != nil && argFn.Pkg() != nil && argFn.Pkg().Path() == "context" &&
		(argFn.Name() == "Background" || argFn.Name() == "TODO")
}

// ctxSibling finds the FooCtx sibling of a package-level function or method.
func ctxSibling(fn *types.Func) *types.Func {
	want := fn.Name() + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want {
				return m
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	sib, _ := fn.Pkg().Scope().Lookup(want).(*types.Func)
	return sib
}

// calleeFunc resolves the *types.Func a call expression invokes, nil for
// calls through function values, conversions and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// enclosingFuncName returns the name of the function declaration containing
// pos ("" when inside a function literal or at file scope).
func enclosingFuncName(pass *Pass, n ast.Node) string {
	for _, f := range pass.Files {
		if n.Pos() < f.Pos() || n.Pos() > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= n.Pos() && n.Pos() <= fd.End() {
				return fd.Name.Name
			}
		}
	}
	return ""
}
