package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDeprecated contains deprecated aliases (DESIGN.md §8): an
// identifier whose declaration carries a "Deprecated:" doc paragraph — the
// legacy Workers fields, the removed Lint entry points — must not be
// referenced from any other package of the module. The declaring package
// keeps its compatibility shims (effectiveParallelism still honors Workers),
// but internal consumers migrating late would resurrect the alias and block
// the scheduled removal.
//
// Deprecation facts come from the module-wide syntax index, so the pass sees
// markers on packages other than the one being analyzed — including in
// single-package unitchecker runs under go vet.
var AnalyzerDeprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "no cross-package use of deprecated identifiers (legacy Workers fields, removed Lint entry points)",
	URL:  "DESIGN.md#lint-deprecated",
	Run:  runDeprecated,
}

func runDeprecated(pass *Pass) error {
	if pass.Module == nil || len(pass.Module.Deprecated) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				// Field, method or package-qualified selection: check the Sel
				// here and descend only into X, so the Sel identifier is not
				// re-reported by the Ident case below.
				reportDeprecated(pass, e.Sel, selectorKeys(pass, e))
				ast.Inspect(e.X, visit)
				return false
			case *ast.CompositeLit:
				checkLitKeys(pass, e)
				return true // values still visited; field keys skip via IsField
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[e]
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					return true // handled by the selector/composite-literal cases
				}
				if obj != nil && obj.Pkg() != nil {
					reportDeprecated(pass, e, []string{obj.Pkg().Path() + "." + obj.Name()})
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

// reportDeprecated flags the identifier when one of the candidate index keys
// is deprecated and the use crosses a package boundary inside the module.
func reportDeprecated(pass *Pass, id *ast.Ident, keys []string) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg() == pass.Pkg || !pass.InModule(obj.Pkg().Path()) {
		return
	}
	for _, key := range keys {
		if note, ok := pass.Module.Deprecated[key]; ok {
			pass.Reportf(id.Pos(), "use of deprecated %s: %s", key, note)
			return
		}
	}
}

// selectorKeys builds the candidate index keys of a selection:
// "pkgpath.Type.Sel" for fields and methods, plus "pkgpath.Sel" for
// package-qualified identifiers.
func selectorKeys(pass *Pass, sel *ast.SelectorExpr) []string {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	var keys []string
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		if named := namedRecv(s.Recv()); named != nil {
			keys = append(keys, named.Obj().Pkg().Path()+"."+named.Obj().Name()+"."+obj.Name())
		}
	}
	return append(keys, obj.Pkg().Path()+"."+obj.Name())
}

// checkLitKeys flags deprecated struct fields used as composite-literal keys
// (`Config{Workers: 1}`), which carry no SelectorExpr to hang the check on.
func checkLitKeys(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named := namedRecv(tv.Type)
	if named == nil {
		return
	}
	typeKey := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			reportDeprecated(pass, id, []string{typeKey + "." + id.Name})
		}
	}
}

// namedRecv unwraps pointers down to a named type, nil otherwise.
func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
