package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// AnalyzerOptValidate enforces the options contract (DESIGN.md §8): every
// plain numeric field of an options struct must be covered by the package's
// validation code, and every field of the HTTP wire options must participate
// in the canonical coalescing key.
//
// Concretely, for each struct that is named Options or carries a Validate
// method, each exported field of unnamed numeric type (int, float64, ...)
// must be mentioned — as a selector or inside a field-path string literal —
// in some function of the package whose name is Validate or starts with
// "validate". Named field types (enums like transient.Method, nested option
// structs validated by their own rule or by the consumer's options.go) are
// exempt; a field that is genuinely valid for all values takes a
// latchlint:ignore annotation in its doc comment.
//
// Separately, every field of a struct named OptionsRequest must carry a json
// tag other than "-": the serving layer's coalescing key is a digest of the
// canonical JSON encoding, so an unserialized field silently coalesces
// requests that differ in that knob — the exact bug class the fast_path
// option nearly shipped.
var AnalyzerOptValidate = &Analyzer{
	Name: "optvalidate",
	Doc:  "options-struct numeric fields must be covered by Validate; wire options must serialize into the coalescing key",
	URL:  "DESIGN.md#lint-optvalidate",
	Run:  runOptValidate,
}

func runOptValidate(pass *Pass) error {
	mentioned := validatorMentions(pass)
	hasValidators := mentioned != nil

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if ts.Name.Name == "OptionsRequest" {
					checkWireOptions(pass, ts.Name.Name, st)
				}
				if !isOptionsStruct(pass, ts) || !hasPlainNumericField(pass, st) {
					continue
				}
				if !hasValidators {
					pass.Reportf(ts.Name.Pos(),
						"options struct %s has no validation: add a Validate method covering its numeric fields (see options.go)",
						ts.Name.Name)
					continue
				}
				checkOptionsFields(pass, ts.Name.Name, st, mentioned)
			}
		}
	}
	return nil
}

// isOptionsStruct reports whether the type participates in the validation
// contract: it is named Options, or it has a Validate method.
func isOptionsStruct(pass *Pass, ts *ast.TypeSpec) bool {
	if ts.Name.Name == "Options" {
		return true
	}
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Validate" {
			return true
		}
	}
	return false
}

// checkOptionsFields flags exported plain-numeric fields absent from the
// package's validation vocabulary.
func checkOptionsFields(pass *Pass, typeName string, st *ast.StructType, mentioned map[string]bool) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || !isPlainNumeric(v.Type()) {
				continue
			}
			if !mentioned[name.Name] {
				pass.Reportf(name.Pos(),
					"field %s.%s is not checked by any validator: add it to Validate (or annotate why every value is valid)",
					typeName, name.Name)
			}
		}
	}
}

// hasPlainNumericField reports whether the struct has at least one exported
// field subject to the validation rule.
func hasPlainNumericField(pass *Pass, st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isPlainNumeric(v.Type()) {
				return true
			}
		}
	}
	return false
}

// isPlainNumeric matches unnamed basic numeric types; named types (enums,
// units) are exempt because their validation belongs to their own package.
func isPlainNumeric(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// validatorMentions collects every field name referenced by the package's
// validation functions: selector names plus the identifier-shaped tokens of
// field-path string literals ("Eval.Degrade" mentions Eval and Degrade).
// Returns nil when the package has no validators at all.
func validatorMentions(pass *Pass) map[string]bool {
	mentioned := map[string]bool{}
	found := false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if name != "Validate" && !strings.HasPrefix(name, "validate") {
				continue
			}
			found = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.SelectorExpr:
					mentioned[e.Sel.Name] = true
				case *ast.BasicLit:
					if e.Kind.String() == "STRING" {
						for _, tok := range splitIdentTokens(strings.Trim(e.Value, "`\"")) {
							mentioned[tok] = true
						}
					}
				}
				return true
			})
		}
	}
	if !found {
		return nil
	}
	return mentioned
}

// splitIdentTokens splits a string on non-identifier characters.
func splitIdentTokens(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	})
}

// checkWireOptions requires every field of the wire options struct to land
// in the canonical JSON used for the coalescing key.
func checkWireOptions(pass *Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tag := ""
		if field.Tag != nil {
			tag = reflect.StructTag(strings.Trim(field.Tag.Value, "`")).Get("json")
		}
		jsonName, _, _ := strings.Cut(tag, ",")
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			switch jsonName {
			case "-":
				pass.Reportf(name.Pos(),
					"field %s.%s is excluded from JSON: it would not reach the canonical coalescing key, so requests differing in it would coalesce onto one job",
					typeName, name.Name)
			case "":
				pass.Reportf(name.Pos(),
					"field %s.%s has no json tag: give it a stable snake_case wire name so it participates in the canonical coalescing key",
					typeName, name.Name)
			}
		}
	}
}
