package lint

import (
	"path/filepath"

	"latchchar/internal/vet"
)

// ToVetReport converts lint findings into the shared vet report type so the
// latchlint CLI renders JSON and SARIF through internal/vet/render.go — one
// envelope shape for both the circuit-level and source-level analyzers.
//
// analyzers is the full set that ran (findings or not): their names populate
// Report.Checks so SARIF rule metadata stays complete on clean runs. baseDir,
// when non-empty, relativizes finding paths (SARIF artifact URIs should be
// repo-relative); paths outside baseDir stay absolute.
func ToVetReport(baseDir string, analyzers []*Analyzer, findings []Finding) *vet.Report {
	rep := &vet.Report{Tool: "latchlint", Target: "source"}
	for _, a := range analyzers {
		rep.Checks = append(rep.Checks, a.Name)
	}
	for _, f := range findings {
		rep.Diagnostics = append(rep.Diagnostics, vet.Diagnostic{
			Check:    f.Analyzer.Name,
			Severity: vet.Error,
			Message:  f.Message,
			File:     relPath(baseDir, f.Position.Filename),
			Line:     f.Position.Line,
		})
	}
	return rep
}

// RuleMetas exposes the analyzers' metadata in the renderer-facing shape.
func RuleMetas(analyzers []*Analyzer) []vet.RuleMeta {
	metas := make([]vet.RuleMeta, 0, len(analyzers))
	for _, a := range analyzers {
		metas = append(metas, vet.RuleMeta{ID: a.Name, Doc: a.Doc, HelpURI: a.URL})
	}
	return metas
}

func relPath(baseDir, path string) string {
	if baseDir == "" || path == "" {
		return path
	}
	rel, err := filepath.Rel(baseDir, path)
	if err != nil || rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator) {
		return path
	}
	return filepath.ToSlash(rel)
}
