// Package analysistest runs a single lint pass over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repository's own driver.
//
// Fixtures live under testdata/src/<import/path>/ relative to the calling
// test's directory; an import path is fixture-local exactly when that
// directory exists, everything else resolves as standard library through
// compiler export data (fetched once per process with `go list -export`, so
// runs stay offline). A flagged line carries a comment of the form
//
//	code() // want `regexp` `another`
//
// with one backquoted or double-quoted regexp per expected diagnostic on
// that line. Unmatched wants and unexpected diagnostics both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"latchchar/internal/lint"
)

// Run loads each fixture package (plus its local imports), applies the
// analyzer through the production driver — so latchlint:ignore suppression is
// active — and diffs the findings against the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	mod, err := lint.BuildModuleIndex(src, "")
	if err != nil {
		t.Fatalf("analysistest: building fixture index: %v", err)
	}

	l := &loader{src: src, fset: token.NewFileSet(), mod: mod, pkgs: map[string]*lint.Package{}}
	stdPaths, err := l.scanStdImports(pkgPaths)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	exports, err := stdExports(stdPaths)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l.std = lint.ExportImporter(l.fset, exports)

	var targets []*lint.Package
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		targets = append(targets, pkg)
	}

	findings, err := lint.RunAnalyzers(targets, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	checkWants(t, targets, findings)
}

// loader parses and type-checks fixture packages on demand; it doubles as the
// types.Importer for fixture-local import paths.
type loader struct {
	src  string
	fset *token.FileSet
	mod  *lint.ModuleIndex
	std  types.Importer
	pkgs map[string]*lint.Package
}

func (l *loader) load(path string) (*lint.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	files, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := lint.CheckPackage(l.fset, path, dir, files, l, l.mod)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: fixture directories first, export data
// for everything else.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.isLocal(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// scanStdImports walks the fixture import graph (imports-only parses) and
// returns every non-local import path reached.
func (l *loader) scanStdImports(roots []string) ([]string, error) {
	seen := map[string]bool{}
	std := map[string]bool{}
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		dir := filepath.Join(l.src, filepath.FromSlash(path))
		files, err := fixtureFiles(dir)
		if err != nil {
			return err
		}
		for _, name := range files {
			f, err := parser.ParseFile(token.NewFileSet(), name, nil, parser.ImportsOnly)
			if err != nil {
				return fmt.Errorf("scanning %s: %w", name, err)
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if l.isLocal(p) {
					if err := visit(p); err != nil {
						return err
					}
				} else {
					std[p] = true
				}
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	out := make([]string, 0, len(std))
	for p := range std {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", dir, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files", dir)
	}
	sort.Strings(files)
	return files, nil
}

// stdExportCache memoizes export-data locations across Run calls: `go list`
// is the only subprocess the harness spawns, and only for paths not yet seen.
var stdExportCache = struct {
	sync.Mutex
	m map[string]string
}{m: map[string]string{}}

// stdExports resolves export-data files for the paths and their transitive
// dependencies via `go list -deps -export`.
func stdExports(paths []string) (map[string]string, error) {
	stdExportCache.Lock()
	defer stdExportCache.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := stdExportCache.m[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		args := append([]string{"list", "-deps", "-export", "-f",
			`{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}`}, missing...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v", strings.Join(missing, " "), err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			if path, file, ok := strings.Cut(line, "="); ok {
				stdExportCache.m[path] = file
			}
		}
	}
	// Hand back a snapshot so the importer reads without the lock.
	snap := make(map[string]string, len(stdExportCache.m))
	for k, v := range stdExportCache.m {
		snap[k] = v
	}
	return snap, nil
}

// wantEntry is one expected diagnostic: a regexp from a want comment.
type wantEntry struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

type wantKey struct {
	file string
	line int
}

// checkWants diffs findings against the want comments of the analyzed
// packages, matching per line.
func checkWants(t *testing.T, pkgs []*lint.Package, findings []lint.Finding) {
	t.Helper()
	wants := map[wantKey][]*wantEntry{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			collectFileWants(t, pkg.Fset, f, wants)
		}
	}
	for _, f := range findings {
		key := wantKey{file: f.Position.Filename, line: f.Position.Line}
		ok := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: missing diagnostic matching %q", k.file, k.line, w.raw)
			}
		}
	}
}

// collectFileWants parses the want comments of one file.
func collectFileWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[wantKey][]*wantEntry) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			patterns, err := parseWantPatterns(strings.TrimPrefix(text, "want "))
			if err != nil {
				t.Fatalf("%s: malformed want comment: %v", pos, err)
			}
			key := wantKey{file: pos.Filename, line: pos.Line}
			for _, p := range patterns {
				rx, err := regexp.Compile(p)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
				}
				wants[key] = append(wants[key], &wantEntry{rx: rx, raw: p})
			}
		}
	}
}

// parseWantPatterns splits a want payload into its quoted regexps.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		case '"':
			i := 1
			for i < len(s) && s[i] != '"' {
				if s[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern in %q: %v", s, err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[i+1:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
