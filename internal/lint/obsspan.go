package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// AnalyzerObsSpan enforces span hygiene in the observability layer
// (DESIGN.md §7): a span begun with StartSpan must be ended on every return
// path of the function that began it — via `defer sp.End()` (directly or
// inside a deferred closure) or an explicit End before each return — and the
// span name must come from the schema-v1 vocabulary (the obs.Span*
// constants), never a raw string literal.
//
// Spans whose handle escapes the function (stored in a struct, passed to a
// callee, returned) transfer ownership and are exempt from the local
// end-on-all-paths check, matching the caller-owned-span contract of
// surface.GenerateObs.
var AnalyzerObsSpan = &Analyzer{
	Name: "obsspan",
	Doc:  "obs spans must be ended on all return paths and named by Span* constants from the schema-v1 vocabulary",
	URL:  "DESIGN.md#lint-obsspan",
	Run:  runObsSpan,
}

func runObsSpan(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpansInFunc(pass, fd)
		}
	}
	return nil
}

// checkSpansInFunc finds StartSpan assignments in the function and verifies
// naming and end-on-all-paths for each.
func checkSpansInFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obsPkg := startSpanCallee(pass, call)
		if obsPkg == nil {
			return true
		}
		checkSpanName(pass, call, obsPkg)
		return true
	})

	// End-on-all-paths: walk each block for `x := <...>.StartSpan(...)`.
	walkBlocks(fd.Body, func(block []ast.Stmt) {
		for i, stmt := range block {
			obj := spanAssignTarget(pass, stmt)
			if obj == nil {
				continue
			}
			checkSpanEnds(pass, obj, stmt, block[i+1:])
		}
	})
}

// startSpanCallee returns the obs package when call is <expr>.StartSpan(...)
// on an obs.Run value, else nil.
func startSpanCallee(pass *Pass, call *ast.CallExpr) *types.Package {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if base := fn.Pkg().Path(); base != "obs" && !strings.HasSuffix(base, "/obs") {
		return nil
	}
	return fn.Pkg()
}

// checkSpanName requires the StartSpan argument to be (a constant equal to)
// one of the obs package's Span* constants. Raw string literals are flagged
// even when their value is in the vocabulary: the constants are the schema.
func checkSpanName(pass *Pass, call *ast.CallExpr, obsPkg *types.Package) {
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	vocab := spanVocabulary(obsPkg)
	if lit, ok := arg.(*ast.BasicLit); ok {
		val := strings.Trim(lit.Value, "`\"")
		if _, known := vocab[val]; known {
			pass.Reportf(lit.Pos(), "span name %q is a raw literal: use the %s.Span* constant so the schema-v1 vocabulary stays the single source of truth", val, obsPkg.Name())
		} else {
			pass.Reportf(lit.Pos(), "span name %q is not in the schema-v1 vocabulary (the %s.Span* constants)", val, obsPkg.Name())
		}
		return
	}
	// Identifiers/selectors resolving to constants must carry a vocabulary
	// value. Non-constant expressions (a variable naming a span chosen
	// upstream) are accepted; their value was checked where it was set.
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	val := constant.StringVal(tv.Value)
	if _, known := vocab[val]; !known {
		pass.Reportf(arg.Pos(), "span name %q is not in the schema-v1 vocabulary (the %s.Span* constants)", val, obsPkg.Name())
	}
}

// spanVocabulary collects the string values of the obs package's Span*
// constants.
func spanVocabulary(obsPkg *types.Package) map[string]bool {
	vocab := map[string]bool{}
	scope := obsPkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Span") || name == "Span" {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		vocab[constant.StringVal(c.Val())] = true
	}
	return vocab
}

// spanAssignTarget returns the variable a statement binds to a StartSpan
// result (`x := run.StartSpan(...)` or `x = run.StartSpan(...)`), nil
// otherwise or when the result is multi-assigned.
func spanAssignTarget(pass *Pass, stmt ast.Stmt) types.Object {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || startSpanCallee(pass, call) == nil {
		return nil
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// spanFlow is the per-path state of the end-on-all-paths walk.
type spanFlow struct {
	ended      bool // an explicit x.End() executed on this path
	deferred   bool // a defer registering x.End() executed on this path
	escaped    bool // the handle left the function; stop checking
	terminated bool // the path returned or branched away
}

func (s spanFlow) done() bool { return s.ended || s.deferred || s.escaped }

// checkSpanEnds verifies that the span bound at assign is ended on every
// path through the remaining statements of its declaring block.
func checkSpanEnds(pass *Pass, obj types.Object, assign ast.Stmt, rest []ast.Stmt) {
	st := walkSpanStmts(pass, obj, rest, spanFlow{})
	if !st.terminated && !st.done() {
		pass.Reportf(assign.Pos(),
			"span %s is not ended on every path: leaving its scope without %s.End() (use defer or end it before each return)",
			obj.Name(), obj.Name())
	}
}

// walkSpanStmts simulates the statement list, reporting returns that leave
// the span open.
func walkSpanStmts(pass *Pass, obj types.Object, stmts []ast.Stmt, st spanFlow) spanFlow {
	for _, stmt := range stmts {
		if st.terminated || st.escaped {
			return st
		}
		st = walkSpanStmt(pass, obj, stmt, st)
	}
	return st
}

func walkSpanStmt(pass *Pass, obj types.Object, stmt ast.Stmt, st spanFlow) spanFlow {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if isEndCall(pass, obj, s.X) {
			st.ended = true
			return st
		}
		if spanEscapes(pass, obj, s.X) {
			st.escaped = true
		}
		return st
	case *ast.DeferStmt:
		if deferEndsSpan(pass, obj, s) {
			st.deferred = true
			return st
		}
		if spanEscapes(pass, obj, s.Call) {
			st.escaped = true
		}
		return st
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if spanEscapes(pass, obj, r) {
				st.escaped = true
			}
		}
		if !st.done() {
			pass.Reportf(s.Pos(), "return leaves span %s open: call %s.End() on this path or defer it", obj.Name(), obj.Name())
		}
		st.terminated = true
		return st
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && usesObject(pass, id, obj) {
				st.escaped = true // rebound; stop tracking
				return st
			}
		}
		for _, rhs := range s.Rhs {
			if spanEscapes(pass, obj, rhs) {
				st.escaped = true
				return st
			}
		}
		return st
	case *ast.IfStmt:
		thenSt := walkSpanStmts(pass, obj, s.Body.List, st)
		elseSt := st
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseSt = walkSpanStmts(pass, obj, e.List, st)
		case ast.Stmt:
			elseSt = walkSpanStmt(pass, obj, e, st)
		}
		return mergeSpanFlow(thenSt, elseSt)
	case *ast.BlockStmt:
		return walkSpanStmts(pass, obj, s.List, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return walkSpanBranches(pass, obj, stmt, st)
	case *ast.ForStmt:
		// The body may run zero times: check returns inside with the current
		// state but do not credit Ends performed in the loop.
		walkSpanStmts(pass, obj, s.Body.List, st)
		return st
	case *ast.RangeStmt:
		walkSpanStmts(pass, obj, s.Body.List, st)
		return st
	case *ast.BranchStmt:
		// break/continue/goto leave this walk's scope; stop checking the
		// path rather than guessing the target.
		st.terminated = true
		return st
	case *ast.LabeledStmt:
		return walkSpanStmt(pass, obj, s.Stmt, st)
	case *ast.GoStmt:
		if spanEscapes(pass, obj, s.Call) {
			st.escaped = true
		}
		return st
	default:
		if stmtMentions(pass, stmt, obj) {
			// Unmodeled statement using the handle: assume ownership moved.
			st.escaped = true
		}
		return st
	}
}

// walkSpanBranches handles switch/type-switch/select: every case is an
// alternative path; a missing default leaves a fallthrough path with the
// incoming state.
func walkSpanBranches(pass *Pass, obj types.Object, stmt ast.Stmt, st spanFlow) spanFlow {
	var bodies [][]ast.Stmt
	hasDefault := false
	collect := func(list []ast.Stmt) {
		for _, c := range list {
			switch cc := c.(type) {
			case *ast.CaseClause:
				bodies = append(bodies, cc.Body)
				if cc.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				bodies = append(bodies, cc.Body)
				if cc.Comm == nil {
					hasDefault = true
				}
			}
		}
	}
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		collect(s.Body.List)
	case *ast.TypeSwitchStmt:
		collect(s.Body.List)
	case *ast.SelectStmt:
		collect(s.Body.List)
		hasDefault = true // select blocks until a comm case runs
	}
	merged := spanFlow{terminated: true, ended: true, deferred: true}
	any := false
	for _, body := range bodies {
		bst := walkSpanStmts(pass, obj, body, st)
		merged = mergeSpanFlow(merged, bst)
		any = true
	}
	if !hasDefault || !any {
		merged = mergeSpanFlow(merged, st)
	}
	return merged
}

// mergeSpanFlow joins two alternative paths: the continuation is as safe as
// its least safe non-terminated branch.
func mergeSpanFlow(a, b spanFlow) spanFlow {
	if a.terminated && b.terminated {
		return spanFlow{terminated: true}
	}
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	return spanFlow{
		ended:    a.ended && b.ended,
		deferred: a.deferred && b.deferred,
		escaped:  a.escaped || b.escaped,
	}
}

// isEndCall reports whether expr is x.End() on the tracked span.
func isEndCall(pass *Pass, obj types.Object, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && usesObject(pass, id, obj)
}

// deferEndsSpan reports whether a defer registers x.End(), directly or
// inside a deferred function literal.
func deferEndsSpan(pass *Pass, obj types.Object, d *ast.DeferStmt) bool {
	if isEndCall(pass, obj, d.Call) {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if expr, ok := n.(ast.Expr); ok && isEndCall(pass, obj, expr) {
			found = true
			return false
		}
		return true
	})
	return found
}

// spanEscapes reports whether expr uses the span handle anywhere other than
// as the receiver of a method call — passing it to a callee, storing it in a
// composite literal or field, returning it.
func spanEscapes(pass *Pass, obj types.Object, expr ast.Expr) bool {
	escaped := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && usesObject(pass, id, obj) {
					// Method call on the handle: inspect only the arguments.
					for _, a := range call.Args {
						if spanEscapes(pass, obj, a) {
							escaped = true
						}
					}
					return false
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && usesObject(pass, id, obj) {
			escaped = true
			return false
		}
		return true
	})
	return escaped
}

// stmtMentions reports whether any identifier in the statement resolves to
// the tracked object.
func stmtMentions(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && usesObject(pass, id, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func usesObject(pass *Pass, id *ast.Ident, obj types.Object) bool {
	return pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj
}

// walkBlocks invokes fn on every statement list in the function body
// (blocks, case bodies, loop bodies), so span assignments are checked in
// their own declaring scope.
func walkBlocks(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			fn(b.List)
		case *ast.CaseClause:
			fn(b.Body)
		case *ast.CommClause:
			fn(b.Body)
		}
		return true
	})
}
