// Package lint is the source-level static-analysis suite of this repository:
// a registry of go/analysis-style passes that encode the codebase's own
// cross-cutting invariants — the Ctx/Background wrapper contract of the
// public API, span hygiene in the observability layer, Prometheus counter
// pre-seeding, options-validation and coalescing-key completeness, goroutine
// discipline outside the scheduler, and deprecated-alias containment.
//
// The kernel deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic, Reportf) so passes can be lifted onto the upstream
// driver verbatim if that dependency ever becomes available; here they run
// on a self-contained driver built only from the standard library: packages
// are enumerated with `go list -export -json` and type-checked against the
// compiler's export data (no source re-typechecking of dependencies, no
// network, no third-party modules).
//
// Suppression policy: a finding may be silenced with a comment
//
//	// latchlint:ignore <pass>[,<pass>...] <reason>
//
// placed on the flagged line or the line directly above it (struct-field
// findings accept the marker as the last line of the field's doc comment).
// The reason is mandatory by convention — a bare marker still suppresses,
// but reviews treat it as a defect. See DESIGN.md §11 for the pass catalog
// and the policy rationale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one independent source-level check, shaped like
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the stable pass ID (lowercase, one word); it tags every
	// diagnostic and addresses the pass in -enable/-disable and in
	// latchlint:ignore comments.
	Name string
	// Doc is the one-line description shown by latchlint -list and used as
	// the SARIF rule shortDescription.
	Doc string
	// URL points at the pass's catalog entry (the SARIF rule helpUri).
	URL string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package, shaped like
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module carries module-wide syntax facts (the deprecation index) and
	// the module path, for checks that cross package boundaries.
	Module *ModuleIndex

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InModule reports whether path names a package of the analyzed module (the
// deprecated and ctxpair passes only police module-local API use). With no
// module index every non-standard-library-looking path counts, which is what
// the analysistest fixtures need.
func (p *Pass) InModule(path string) bool {
	if p.Module == nil || p.Module.ModulePath == "" {
		return !isStdPath(path)
	}
	return path == p.Module.ModulePath || strings.HasPrefix(path, p.Module.ModulePath+"/")
}

// isStdPath heuristically identifies standard-library import paths: their
// first segment never contains a dot and the go list driver only ever hands
// non-module paths to the type checker for the standard library.
func isStdPath(path string) bool {
	first := path
	if i := strings.IndexByte(first, '/'); i >= 0 {
		first = first[:i]
	}
	return !strings.Contains(first, ".")
}

// hasPathSegment reports whether one of the /-separated segments of an
// import path equals seg.
func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// Finding is one driver-level result: a diagnostic resolved to a file
// position and its originating analyzer.
type Finding struct {
	Analyzer *Analyzer
	Position token.Position
	Message  string
}

// RunAnalyzers applies the analyzers to each package and returns the
// surviving findings sorted by position. latchlint:ignore comments are
// honored here, so every pass gets suppression for free.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    pkg.Module,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.suppressed(a.Name, pos) {
					continue
				}
				out = append(out, Finding{Analyzer: a, Position: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// ignoreIndex maps file -> line -> pass names suppressed on that line.
type ignoreIndex map[string]map[int][]string

// collectIgnores scans every comment of the package for latchlint:ignore
// markers. A marker suppresses findings on its own line and on the line
// directly below it.
func collectIgnores(pkg *Package) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "latchlint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "latchlint:ignore"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	return idx
}

func (idx ignoreIndex) suppressed(name string, pos token.Position) bool {
	for _, n := range idx[pos.Filename][pos.Line] {
		if n == name {
			return true
		}
	}
	return false
}
