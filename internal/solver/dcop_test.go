package solver

import (
	"errors"
	"math"
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/num"
	"latchchar/internal/wave"
)

func mustR(t *testing.T, c *circuit.Circuit, name string, p, n circuit.UnknownID, ohms float64) {
	t.Helper()
	r, err := device.NewResistor(name, p, n, ohms)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(r)
}

func mustV(t *testing.T, c *circuit.Circuit, name string, p, n circuit.UnknownID, w wave.Waveform, role device.SourceRole) *device.VSource {
	t.Helper()
	v, err := device.NewVSource(name, p, n, w, role)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(v)
	return v
}

func nmosModel() device.MOSModel {
	return device.MOSModel{Type: device.NMOS, VT0: 0.43, KP: 115e-6, Lambda: 0.06, Cox: 6e-3, CJ: 1e-9}
}

func pmosModel() device.MOSModel {
	return device.MOSModel{Type: device.PMOS, VT0: 0.40, KP: 30e-6, Lambda: 0.10, Cox: 6e-3, CJ: 1e-9}
}

func mustM(t *testing.T, c *circuit.Circuit, name string, d, g, s, b circuit.UnknownID, m device.MOSModel, w, l float64) {
	t.Helper()
	mos, err := device.NewMOSFET(name, d, g, s, b, m, w, l)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(mos)
}

func TestDCVoltageDivider(t *testing.T) {
	c := circuit.New()
	in := c.Node("in")
	mid := c.Node("mid")
	mustV(t, c, "v1", in, circuit.Ground, wave.DC(3.0), device.RoleSupply)
	mustR(t, c, "r1", in, mid, 1e3)
	mustR(t, c, "r2", mid, circuit.Ground, 2e3)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	x, st, err := DCOperatingPoint(c, 0, nil, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Strategy != "newton" {
		t.Errorf("expected plain newton, got %s", st.Strategy)
	}
	if !num.ApproxEqual(x[mid], 2.0, 1e-6, 1e-6) {
		t.Errorf("v(mid) = %v, want 2.0", x[mid])
	}
	if !num.ApproxEqual(x[in], 3.0, 1e-9, 1e-9) {
		t.Errorf("v(in) = %v, want 3.0", x[in])
	}
	// Branch current of the source: i = −3/3k (flows out of + terminal).
	br := int(c.N() - 1)
	if !num.ApproxEqual(x[br], -1e-3, 1e-6, 1e-9) {
		t.Errorf("i(v1) = %v, want −1 mA", x[br])
	}
}

func TestDCLinearSolvesInOneishIteration(t *testing.T) {
	c := circuit.New()
	a := c.Node("a")
	mustV(t, c, "v1", a, circuit.Ground, wave.DC(1.0), device.RoleSupply)
	mustR(t, c, "r1", a, circuit.Ground, 50)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	_, st, err := DCOperatingPoint(c, 0, nil, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 3 {
		t.Errorf("linear circuit took %d iterations", st.Iterations)
	}
}

// buildInverter returns a CMOS inverter circuit with the given input level.
func buildInverter(t *testing.T, vin float64) (*circuit.Circuit, circuit.UnknownID) {
	t.Helper()
	c := circuit.New()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	mustV(t, c, "vdd", vdd, circuit.Ground, wave.DC(2.5), device.RoleSupply)
	mustV(t, c, "vin", in, circuit.Ground, wave.DC(vin), device.RoleSupply)
	mustM(t, c, "mp", out, in, vdd, vdd, pmosModel(), 8e-6, 0.25e-6)
	mustM(t, c, "mn", out, in, circuit.Ground, circuit.Ground, nmosModel(), 4e-6, 0.25e-6)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c, out
}

func TestDCInverterRails(t *testing.T) {
	c, out := buildInverter(t, 0)
	x, _, err := DCOperatingPoint(c, 0, nil, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if x[out] < 2.45 {
		t.Errorf("inverter(0) output = %v, want ≈ 2.5", x[out])
	}
	c, out = buildInverter(t, 2.5)
	x, _, err = DCOperatingPoint(c, 0, nil, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if x[out] > 0.05 {
		t.Errorf("inverter(2.5) output = %v, want ≈ 0", x[out])
	}
}

func TestDCInverterVTCMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, vin := range []float64{0, 0.5, 1.0, 1.1, 1.2, 1.3, 1.5, 2.0, 2.5} {
		c, out := buildInverter(t, vin)
		x, _, err := DCOperatingPoint(c, 0, nil, DCOptions{})
		if err != nil {
			t.Fatalf("vin=%v: %v", vin, err)
		}
		if x[out] > prev+1e-6 {
			t.Errorf("VTC not monotone at vin=%v: %v > %v", vin, x[out], prev)
		}
		prev = x[out]
	}
}

func TestDCResidualIsSmall(t *testing.T) {
	c, _ := buildInverter(t, 1.25) // near the switching point: hardest bias
	x, _, err := DCOperatingPoint(c, 0, nil, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev := c.NewEval()
	ev.At(x, 0)
	for i := range x {
		r := ev.F[i] + ev.Src[i]
		if math.Abs(r) > 1e-9 {
			t.Errorf("residual[%d] = %v", i, r)
		}
	}
}

func TestDCUsesInitialGuess(t *testing.T) {
	c, out := buildInverter(t, 0)
	seed := make([]float64, c.N())
	seed[out] = 2.5
	x, st, err := DCOperatingPoint(c, 0, seed, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if x[out] < 2.45 {
		t.Errorf("output = %v", x[out])
	}
	if st.Iterations > 20 {
		t.Errorf("warm start took %d iterations", st.Iterations)
	}
	// The seed must not be modified.
	if seed[out] != 2.5 {
		t.Error("x0 was modified")
	}
}

func TestDCBadX0Length(t *testing.T) {
	c, _ := buildInverter(t, 0)
	if _, _, err := DCOperatingPoint(c, 0, []float64{1}, DCOptions{}); err == nil {
		t.Error("expected length error")
	}
}

func TestDCFloatingNodeHandledByGmin(t *testing.T) {
	// A capacitor-only node has no DC path; the circuit-level Gmin must
	// keep the system solvable, landing the node at 0 V.
	c := circuit.New()
	a := c.Node("a")
	fl := c.Node("float")
	mustV(t, c, "v1", a, circuit.Ground, wave.DC(1), device.RoleSupply)
	cap, err := device.NewCapacitor("c1", a, fl, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	c.AddDevice(cap)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	x, _, err := DCOperatingPoint(c, 0, nil, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[fl]) > 1e-6 {
		t.Errorf("floating node = %v, want ≈ 0", x[fl])
	}
}

func TestDCTimeDependentSource(t *testing.T) {
	// The operating point must honor the source value at the given time.
	c := circuit.New()
	a := c.Node("a")
	st := wave.Step{V0: 0, V1: 2, T50: 1e-9, Rise: 0.2e-9, Shape: wave.RampSmooth}
	mustV(t, c, "v1", a, circuit.Ground, st, device.RoleClock)
	mustR(t, c, "r1", a, circuit.Ground, 1e3)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	x, _, err := DCOperatingPoint(c, 5e-9, nil, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !num.ApproxEqual(x[a], 2.0, 1e-9, 1e-9) {
		t.Errorf("v(a) at t=5ns: %v", x[a])
	}
}

func TestDCOptionsDefaults(t *testing.T) {
	o := DCOptions{}.withDefaults()
	if o.MaxIter != 100 || o.MaxStep != 0.5 {
		t.Errorf("defaults: %+v", o)
	}
	o = DCOptions{MaxStep: -1}.withDefaults()
	if o.MaxStep != 0 {
		t.Errorf("negative MaxStep should disable damping: %+v", o)
	}
}

func TestDCGminSteppingFallback(t *testing.T) {
	// A start point hundreds of volts away exhausts the damped plain-Newton
	// budget (0.5 V per iteration), forcing the gmin-stepping continuation,
	// which restarts from zero and succeeds.
	c, out := buildInverter(t, 0)
	far := make([]float64, c.N())
	for i := range far {
		far[i] = 200
	}
	x, st, err := DCOperatingPoint(c, 0, far, DCOptions{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	if st.Strategy != "gmin" {
		t.Errorf("strategy = %s, want gmin", st.Strategy)
	}
	if x[out] < 2.4 {
		t.Errorf("output = %v", x[out])
	}
	if st.Stages < 2 {
		t.Errorf("stages = %d", st.Stages)
	}
}

func TestDCAllStrategiesExhausted(t *testing.T) {
	// With a one-iteration budget nothing can converge; the solver must
	// fall through gmin and source stepping and report ErrNoConvergence.
	c, _ := buildInverter(t, 1.25)
	_, _, err := DCOperatingPoint(c, 0, nil, DCOptions{MaxIter: 1})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v", err)
	}
}

func TestDCUndampedOption(t *testing.T) {
	// MaxStep < 0 disables damping entirely; the linear divider still
	// converges in one step.
	c := circuit.New()
	a := c.Node("a")
	mustV(t, c, "v1", a, circuit.Ground, wave.DC(3.0), device.RoleSupply)
	mustR(t, c, "r1", a, circuit.Ground, 1e3)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	x, st, err := DCOperatingPoint(c, 0, nil, DCOptions{MaxStep: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 2 {
		t.Errorf("iterations = %d", st.Iterations)
	}
	if !num.ApproxEqual(x[a], 3, 1e-9, 1e-9) {
		t.Errorf("x = %v", x[a])
	}
}
