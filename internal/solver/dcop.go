// Package solver provides the nonlinear DC operating-point solver: damped
// Newton-Raphson with gmin-stepping and source-stepping continuation
// fallbacks, SPICE-style.
package solver

import (
	"errors"
	"fmt"
	"math"

	"latchchar/internal/circuit"
	"latchchar/internal/sparse"
)

// ErrNoConvergence is returned when every solution strategy fails.
var ErrNoConvergence = errors.New("solver: DC operating point did not converge")

// DCOptions configure the operating-point solve.
type DCOptions struct {
	// MaxIter bounds Newton iterations per continuation stage (default 100).
	MaxIter int
	// VTol and RelTol define per-unknown convergence:
	// |Δx| ≤ VTol + RelTol·|x| for voltages; branch currents use
	// ITol + RelTol·|i|.
	VTol, ITol, RelTol float64
	// MaxStep limits the voltage update per iteration (default 0.5 V);
	// 0 disables damping.
	MaxStep float64
}

func (o DCOptions) withDefaults() DCOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.VTol <= 0 {
		o.VTol = 1e-9
	}
	if o.ITol <= 0 {
		o.ITol = 1e-12
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
	if o.MaxStep < 0 {
		o.MaxStep = 0
	} else if o.MaxStep == 0 {
		o.MaxStep = 0.5
	}
	return o
}

// DCStats reports how the operating point was obtained.
type DCStats struct {
	// Strategy names the successful continuation: "newton", "gmin" or
	// "source".
	Strategy string
	// Iterations is the total Newton iteration count across all stages.
	Iterations int
	// Stages is the number of continuation stages used.
	Stages int
}

// DCOperatingPoint solves f(x) + src(t) = 0 for the finalized circuit at
// time t, starting from x0 (which may be nil for a zero start). It returns
// the operating point without modifying x0.
func DCOperatingPoint(c *circuit.Circuit, t float64, x0 []float64, opts DCOptions) ([]float64, DCStats, error) {
	o := opts.withDefaults()
	n := c.N()
	ev := c.NewEval()
	x := make([]float64, n)
	if x0 != nil {
		if len(x0) != n {
			return nil, DCStats{}, fmt.Errorf("solver: x0 length %d, want %d", len(x0), n)
		}
		copy(x, x0)
	}
	st := DCStats{}

	// Plain Newton.
	if iters, err := dcNewton(ev, x, t, 1.0, 0, o); err == nil {
		st.Strategy = "newton"
		st.Iterations = iters
		st.Stages = 1
		return x, st, nil
	}

	// Gmin stepping: solve a sequence of easier problems with extra
	// conductance from every node to ground, reducing it geometrically.
	xg := make([]float64, n)
	ok := true
	iters := 0
	stages := 0
	for _, g := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12, 0} {
		it, err := dcNewton(ev, xg, t, 1.0, g, o)
		iters += it
		stages++
		if err != nil {
			ok = false
			break
		}
	}
	if ok {
		copy(x, xg)
		st.Strategy = "gmin"
		st.Iterations = iters
		st.Stages = stages
		return x, st, nil
	}

	// Source stepping: ramp the independent sources from 0 to full value.
	xs := make([]float64, n)
	iters = 0
	stages = 0
	alpha := 0.0
	step := 0.1
	for alpha < 1 {
		next := math.Min(1, alpha+step)
		trial := append([]float64(nil), xs...)
		it, err := dcNewton(ev, trial, t, next, 0, o)
		iters += it
		stages++
		if err != nil {
			step /= 2
			if step < 1e-4 {
				return nil, DCStats{}, fmt.Errorf("%w (source stepping stalled at α=%g)", ErrNoConvergence, alpha)
			}
			continue
		}
		copy(xs, trial)
		alpha = next
		if step < 0.1 {
			step *= 2
		}
	}
	copy(x, xs)
	st.Strategy = "source"
	st.Iterations = iters
	st.Stages = stages
	return x, st, nil
}

// dcNewton runs damped Newton on f(x) + α·src(t) + g·x_nodes = 0, updating
// x in place. It returns the iteration count.
func dcNewton(ev *circuit.Eval, x []float64, t, alpha, gExtra float64, o DCOptions) (int, error) {
	c := ev.Circuit()
	n := c.N()
	numNodes := c.NumNodes()
	r := make([]float64, n)
	dx := make([]float64, n)
	var lu sparse.Reusable
	// Cache the diagonal positions for the gmin-stepping conductance.
	var diag []int
	if gExtra > 0 {
		diag = make([]int, numNodes)
		ev.At(x, t) // ensure pattern values exist (indices are state-independent)
		for i := 0; i < numNodes; i++ {
			idx, ok := ev.G.Index(i, i)
			if !ok {
				return 0, fmt.Errorf("solver: node %d lacks a diagonal entry", i)
			}
			diag[i] = idx
		}
	}
	for iter := 1; iter <= o.MaxIter; iter++ {
		ev.At(x, t)
		for i := 0; i < n; i++ {
			r[i] = ev.F[i] + alpha*ev.Src[i]
		}
		if gExtra > 0 {
			for i := 0; i < numNodes; i++ {
				r[i] += gExtra * x[i]
				ev.G.Val[diag[i]] += gExtra
			}
		}
		if err := lu.Factorize(ev.G); err != nil {
			return iter, fmt.Errorf("solver: Jacobian singular at iteration %d: %w", iter, err)
		}
		lu.Solve(r, dx)
		// Damping: limit the largest voltage move.
		scale := 1.0
		if o.MaxStep > 0 {
			maxDV := 0.0
			for i := 0; i < numNodes; i++ {
				if a := math.Abs(dx[i]); a > maxDV {
					maxDV = a
				}
			}
			if maxDV > o.MaxStep {
				scale = o.MaxStep / maxDV
			}
		}
		conv := true
		for i := 0; i < n; i++ {
			x[i] -= scale * dx[i]
			atol := o.VTol
			if i >= numNodes {
				atol = o.ITol
			}
			if math.Abs(dx[i]) > atol+o.RelTol*math.Abs(x[i]) {
				conv = false
			}
		}
		if conv && scale == 1 {
			return iter, nil
		}
	}
	return o.MaxIter, ErrNoConvergence
}
