package solver

import (
	"math"
	"math/rand"
	"testing"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/wave"
)

// TestDCRandomResistorNetworksProperty: on random connected resistor
// networks with one source, the operating point must satisfy KCL to
// near-machine precision, every node voltage must lie inside the source
// range (maximum principle), and plain Newton must converge (the system is
// linear).
func TestDCRandomResistorNetworksProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		c := circuit.New()
		nodes := []circuit.UnknownID{c.Node("n0")}
		numNodes := 3 + rng.Intn(10)
		for i := 1; i < numNodes; i++ {
			id := c.Node("n" + string(rune('0'+i)))
			nodes = append(nodes, id)
			// Connect to a random earlier node: keeps the network connected.
			prev := nodes[rng.Intn(i)]
			r, err := device.NewResistor("r", prev, id, 100+rng.Float64()*10e3)
			if err != nil {
				t.Fatal(err)
			}
			c.AddDevice(r)
		}
		// A few extra random edges and one tie to ground.
		for k := 0; k < numNodes/2; k++ {
			a := nodes[rng.Intn(numNodes)]
			b := nodes[rng.Intn(numNodes)]
			if a == b {
				continue
			}
			r, err := device.NewResistor("rx", a, b, 100+rng.Float64()*10e3)
			if err != nil {
				t.Fatal(err)
			}
			c.AddDevice(r)
		}
		rg, err := device.NewResistor("rg", nodes[rng.Intn(numNodes)], circuit.Ground, 1e3)
		if err != nil {
			t.Fatal(err)
		}
		c.AddDevice(rg)
		vsrc := 1 + rng.Float64()*4
		v, err := device.NewVSource("v1", nodes[0], circuit.Ground, wave.DC(vsrc), device.RoleSupply)
		if err != nil {
			t.Fatal(err)
		}
		c.AddDevice(v)
		if err := c.Finalize(); err != nil {
			t.Fatal(err)
		}

		x, st, err := DCOperatingPoint(c, 0, nil, DCOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if st.Strategy != "newton" {
			t.Errorf("trial %d: linear network needed %s", trial, st.Strategy)
		}
		// Maximum principle: all node voltages within [0, vsrc].
		for i := 0; i < numNodes; i++ {
			if x[i] < -1e-6 || x[i] > vsrc+1e-6 {
				t.Errorf("trial %d: node %d at %v outside [0, %v]", trial, i, x[i], vsrc)
			}
		}
		// KCL residual.
		ev := c.NewEval()
		ev.At(x, 0)
		for i := range x {
			if r := ev.F[i] + ev.Src[i]; math.Abs(r) > 1e-9 {
				t.Errorf("trial %d: residual[%d] = %v", trial, i, r)
			}
		}
	}
}
