package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	g := p.NewGroup(context.Background())
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func(context.Context) { n.Add(1) })
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	g := p.NewGroup(context.Background())
	var cur, peak atomic.Int64
	for i := 0; i < 30; i++ {
		g.Go(func(context.Context) {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// The waiting goroutine may lend itself as one extra worker.
	if got := peak.Load(); got > workers+1 {
		t.Fatalf("peak concurrency %d exceeds bound %d", got, workers+1)
	}
}

func TestGroupNestedSubmitDoesNotDeadlock(t *testing.T) {
	// One worker; a task submits subtasks and a second group waits on the
	// pool from outside. The helping Wait must execute queued tasks itself.
	p := NewPool(1)
	defer p.Close()
	g := p.NewGroup(context.Background())
	var n atomic.Int64
	g.Go(func(context.Context) {
		for i := 0; i < 8; i++ {
			g.Go(func(context.Context) { n.Add(1) })
		}
		n.Add(1)
	})
	done := make(chan struct{})
	go func() {
		g.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested submit deadlocked")
	}
	if n.Load() != 9 {
		t.Fatalf("ran %d tasks, want 9", n.Load())
	}
}

func TestGroupWaitReturnsContextError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	g := p.NewGroup(ctx)
	var sawCancel atomic.Bool
	g.Go(func(ctx context.Context) {
		cancel()
		<-ctx.Done()
		sawCancel.Store(true)
	})
	err := g.Wait()
	if err == nil {
		t.Fatal("Wait returned nil after cancellation")
	}
	if !sawCancel.Load() {
		t.Fatal("task did not observe cancellation before Wait returned")
	}
}

func TestPoolCloseIdempotentAndDrains(t *testing.T) {
	p := NewPool(2)
	g := p.NewGroup(context.Background())
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		g.Go(func(context.Context) { n.Add(1) })
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	p.Close()
	p.Close()
	if n.Load() != 10 {
		t.Fatalf("ran %d tasks, want 10", n.Load())
	}
}

func TestPoolStealsAcrossDeques(t *testing.T) {
	// Round-robin submission puts tasks on every deque; with a single slow
	// task pinning one worker, the others (or the helper) must steal the
	// rest. Completion within the timeout is the assertion.
	p := NewPool(2)
	defer p.Close()
	g := p.NewGroup(context.Background())
	release := make(chan struct{})
	g.Go(func(context.Context) { <-release })
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		g.Go(func(context.Context) { n.Add(1) })
	}
	deadline := time.After(10 * time.Second)
	for n.Load() < 20 {
		select {
		case <-deadline:
			t.Fatalf("stole only %d/20 tasks while one worker was pinned", n.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestGroupConcurrentGoAndWait(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	g := p.NewGroup(context.Background())
	var n atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				g.Go(func(context.Context) { n.Add(1) })
			}
		}()
	}
	wg.Wait()
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}
