package sched

import (
	"sync"
	"testing"
)

func TestLRUBasicAndEviction(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was refreshed by the Get)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a evicted instead of b: %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUPutRefreshesValue(t *testing.T) {
	c := NewLRU[int, string](4)
	c.Put(1, "x")
	c.Put(1, "y")
	if v, _ := c.Get(1); v != "y" {
		t.Fatalf("Get(1) = %q, want y", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[int, int](16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Put(i%32, w)
				c.Get(i % 32)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}
