// Package sched provides the shared execution substrate of the batch
// characterization engine: a single bounded, work-stealing worker pool that
// SweepCorners, MonteCarlo, BruteForce and Engine.CharacterizeBatch all
// draw from, plus the LRU cache backing calibration and warm-seed reuse.
//
// The paper's motivating workload is library-scale — "setup/hold times need
// to be characterized for every register/cell of every standard cell
// library ... for all PVT corners" — which previously spawned one goroutine
// per corner (unbounded), one per Monte-Carlo sample (Workers = Samples by
// default) and a third, separate worker count for surface grids. The pool
// replaces all three with one Parallelism bound.
//
// Design: each worker owns a LIFO deque guarded by the pool lock (task
// granularity here is milliseconds of transient simulation, so a single
// lock is nowhere near contended); Submit distributes round-robin, workers
// pop their own tail and steal other deques' heads when idle. Group.Wait
// lends the waiting goroutine as an extra worker — it executes queued tasks
// instead of parking — so nested fan-out (a batch job that itself fans a
// surface grid onto the pool) can never deadlock the fixed worker set.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Task is one unit of pool work.
type Task func()

// Pool is a bounded work-stealing worker pool. The zero value is not
// usable; construct with NewPool. All methods are safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]Task // per-worker; push tail, owner pops tail, thieves pop head
	rr     int      // round-robin submit cursor
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts a pool with n workers (n <= 0 selects GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{deques: make([][]Task, n)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go p.worker(w)
	}
	return p
}

// NumWorkers returns the pool's worker count (its Parallelism bound).
func (p *Pool) NumWorkers() int { return len(p.deques) }

// Submit enqueues a task. It panics on a closed pool.
func (p *Pool) Submit(t Task) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Submit on closed pool")
	}
	w := p.rr % len(p.deques)
	p.rr++
	p.deques[w] = append(p.deques[w], t)
	p.mu.Unlock()
	p.cond.Signal()
}

// Close drains the queues and stops the workers. Submit after Close panics;
// Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// worker runs tasks until the pool closes and its queues drain.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		t := p.takeLocked(id)
		for t == nil && !p.closed {
			p.cond.Wait()
			t = p.takeLocked(id)
		}
		p.mu.Unlock()
		if t == nil {
			return // closed and empty
		}
		t()
	}
}

// takeLocked pops the worker's own newest task, or failing that steals the
// oldest task of another deque. Callers hold p.mu.
func (p *Pool) takeLocked(id int) Task {
	if q := p.deques[id]; len(q) > 0 {
		t := q[len(q)-1]
		q[len(q)-1] = nil
		p.deques[id] = q[:len(q)-1]
		return t
	}
	for off := 1; off < len(p.deques); off++ {
		v := (id + off) % len(p.deques)
		if q := p.deques[v]; len(q) > 0 {
			t := q[0]
			copy(q, q[1:])
			q[len(q)-1] = nil
			p.deques[v] = q[:len(q)-1]
			return t
		}
	}
	return nil
}

// trySteal removes one queued task for an external helper (Group.Wait).
// Returns nil when every deque is empty.
func (p *Pool) trySteal() Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := range p.deques {
		if q := p.deques[w]; len(q) > 0 {
			t := q[0]
			copy(q, q[1:])
			q[len(q)-1] = nil
			p.deques[w] = q[:len(q)-1]
			return t
		}
	}
	return nil
}

// Group tracks a set of related tasks submitted to one pool under a shared
// context. Tasks receive the group context and are expected to observe its
// cancellation themselves (the pool always runs them, so result slots are
// written exactly once and Wait never returns while work is in flight).
type Group struct {
	p   *Pool
	ctx context.Context

	mu      sync.Mutex
	pending int
	tick    chan struct{} // nudged on task completion and submission
}

// NewGroup creates a task group over the pool. A nil ctx means Background.
func (p *Pool) NewGroup(ctx context.Context) *Group {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Group{p: p, ctx: ctx, tick: make(chan struct{}, 1)}
}

// Context returns the group's context.
func (g *Group) Context() context.Context { return g.ctx }

// Go submits fn to the pool as part of the group. It may be called from
// inside another group task (warm-start followers are submitted by the
// leader's task when its contour becomes available).
func (g *Group) Go(fn func(ctx context.Context)) {
	g.mu.Lock()
	g.pending++
	g.mu.Unlock()
	g.p.Submit(func() {
		defer g.taskDone()
		fn(g.ctx)
	})
	g.nudge()
}

func (g *Group) taskDone() {
	g.mu.Lock()
	g.pending--
	g.mu.Unlock()
	g.nudge()
}

func (g *Group) nudge() {
	select {
	case g.tick <- struct{}{}:
	default:
	}
}

// Wait blocks until every task of the group (including tasks they spawned)
// has finished, then returns the context error, if any. While waiting it
// helps the pool: queued tasks — this group's or others' — run on the
// waiting goroutine, so a task that itself submits to the pool and waits
// cannot deadlock a fully busy worker set.
func (g *Group) Wait() error {
	for {
		g.mu.Lock()
		done := g.pending == 0
		g.mu.Unlock()
		if done {
			return context.Cause(g.ctx)
		}
		if t := g.p.trySteal(); t != nil {
			t()
			continue
		}
		<-g.tick
	}
}

// String describes the pool for diagnostics.
func (p *Pool) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	queued := 0
	for _, q := range p.deques {
		queued += len(q)
	}
	return fmt.Sprintf("sched.Pool{workers: %d, queued: %d, closed: %v}", len(p.deques), queued, p.closed)
}
