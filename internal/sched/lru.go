package sched

import "sync"

// LRU is a fixed-capacity least-recently-used cache, safe for concurrent
// use. The batch engine keys it by (cell, process, timing) to reuse built
// calibrations and warm-start contours across jobs, corners and batches.
type LRU[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	m   map[K]*lruEntry[K, V]
	// Doubly linked list, most recent at head.
	head, tail *lruEntry[K, V]

	// Hits and Misses count lookups for cache-efficiency reporting.
	hits, misses int64
}

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

// NewLRU creates a cache holding at most capacity entries. A non-positive
// capacity yields a disabled cache: Get always misses and Put is a no-op.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{cap: capacity, m: make(map[K]*lruEntry[K, V])}
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when over capacity.
func (c *LRU[K, V]) Put(key K, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	e := &lruEntry[K, V]{key: key, val: val}
	c.m[key] = e
	c.pushFront(e)
	if len(c.m) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
	}
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns cumulative hit/miss counts.
func (c *LRU[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRU[K, V]) moveToFront(e *lruEntry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
