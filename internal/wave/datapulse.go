package wave

import "fmt"

// DataPulse is the parametric data waveform ud(t, τs, τh) of the paper's
// Fig. 2: the line rests at Rest, transitions to Active with its 50% point
// τs before the active clock edge's 50% crossing, holds, and transitions
// back to Rest with its 50% point τh after the edge. The pulse width is
// therefore τs + τh, controlled by the two skews.
//
// The skew derivatives zs = ∂ud/∂τs and zh = ∂ud/∂τh are analytic:
// increasing τs shifts the leading ramp earlier (zs equals the leading
// ramp's time derivative), while increasing τh shifts the trailing ramp
// later (zh equals minus the trailing ramp's time derivative).
type DataPulse struct {
	Edge50       float64 // 50% crossing time of the active clock edge
	Rest, Active float64 // data level before / during the pulse
	Rise, Fall   float64 // leading / trailing transition durations
	Shape        RampShape

	tauS, tauH float64
}

// NewDataPulse constructs a data pulse with zero skews; call SetSkews before
// simulation.
func NewDataPulse(edge50, rest, active, rise, fall float64, shape RampShape) (*DataPulse, error) {
	if rise <= 0 || fall <= 0 {
		return nil, fmt.Errorf("wave: DataPulse rise/fall must be positive, got %g/%g", rise, fall)
	}
	return &DataPulse{
		Edge50: edge50,
		Rest:   rest,
		Active: active,
		Rise:   rise,
		Fall:   fall,
		Shape:  shape,
	}, nil
}

// SetSkews updates the setup and hold skews. It is the single mutation point
// used by the characterization loop between transient evaluations.
func (d *DataPulse) SetSkews(tauS, tauH float64) {
	d.tauS = tauS
	d.tauH = tauH
}

// Skews returns the current (τs, τh).
func (d *DataPulse) Skews() (tauS, tauH float64) { return d.tauS, d.tauH }

// leading ramp interval [a, a+Rise]; 50% at Edge50 − τs.
func (d *DataPulse) leadStart() float64 { return d.Edge50 - d.tauS - d.Rise/2 }

// trailing ramp interval [b, b+Fall]; 50% at Edge50 + τh.
func (d *DataPulse) trailStart() float64 { return d.Edge50 + d.tauH - d.Fall/2 }

// V implements Waveform. The two ramps are superposed, so even degenerate
// overlapping-ramp configurations produce a continuous bounded waveform.
func (d *DataPulse) V(t float64) float64 {
	a := d.leadStart()
	s1, _ := d.Shape.ramp(a, a+d.Rise, t)
	b := d.trailStart()
	s2, _ := d.Shape.ramp(b, b+d.Fall, t)
	return d.Rest + (d.Active-d.Rest)*(s1-s2)
}

// DTauS returns zs(t) = ∂ud/∂τs at the current skews. Only the leading ramp
// depends on τs; shifting its start earlier by dτs raises the profile by its
// time derivative.
func (d *DataPulse) DTauS(t float64) float64 {
	a := d.leadStart()
	_, ds1dt := d.Shape.ramp(a, a+d.Rise, t)
	return (d.Active - d.Rest) * ds1dt
}

// DTauH returns zh(t) = ∂ud/∂τh at the current skews. Only the trailing
// ramp depends on τh; shifting its start later by dτh raises the pulse tail
// by its time derivative.
func (d *DataPulse) DTauH(t float64) float64 {
	b := d.trailStart()
	_, ds2dt := d.Shape.ramp(b, b+d.Fall, t)
	return (d.Active - d.Rest) * ds2dt
}

// SupportStart returns the earliest time at which the pulse differs from
// Rest, for the given maximum setup skew; useful for choosing the fine
// integration window.
func (d *DataPulse) SupportStart(maxTauS float64) float64 {
	return d.Edge50 - maxTauS - d.Rise/2
}
