package wave

import (
	"math"
	"testing"

	"latchchar/internal/num"
)

func TestDC(t *testing.T) {
	if DC(2.5).V(123) != 2.5 {
		t.Error("DC wrong")
	}
}

func TestStepLevelsAndMidpoint(t *testing.T) {
	s := Step{V0: 0, V1: 2.5, T50: 1e-9, Rise: 0.1e-9, Shape: RampSmooth}
	if s.V(0) != 0 {
		t.Error("before step")
	}
	if s.V(2e-9) != 2.5 {
		t.Error("after step")
	}
	if !num.ApproxEqual(s.V(1e-9), 1.25, 1e-12, 1e-12) {
		t.Errorf("50%% point: %v", s.V(1e-9))
	}
}

func TestStepLinearShape(t *testing.T) {
	s := Step{V0: 0, V1: 1, T50: 0.5, Rise: 1, Shape: RampLinear}
	if !num.ApproxEqual(s.V(0.25), 0.25, 1e-12, 1e-12) {
		t.Errorf("quarter point: %v", s.V(0.25))
	}
}

func TestPWLValidation(t *testing.T) {
	if _, err := NewPWL([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewPWL(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewPWL([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestPWLInterpolationAndClamping(t *testing.T) {
	p, err := NewPWL([]float64{1, 2, 4}, []float64{0, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.V(0) != 0 {
		t.Error("before first point")
	}
	if p.V(9) != 0 {
		t.Error("after last point")
	}
	if !num.ApproxEqual(p.V(1.5), 5, 1e-12, 1e-12) {
		t.Errorf("interp: %v", p.V(1.5))
	}
	if !num.ApproxEqual(p.V(3), 5, 1e-12, 1e-12) {
		t.Errorf("interp down: %v", p.V(3))
	}
	if p.V(2) != 10 {
		t.Errorf("exact point: %v", p.V(2))
	}
}

func paperClock() Clock {
	return Clock{
		Low: 0, High: 2.5,
		Period: 10e-9, Delay: 1e-9,
		Rise: 0.1e-9, Fall: 0.1e-9,
		Shape: RampSmooth,
	}
}

func TestClockPaperTiming(t *testing.T) {
	c := paperClock()
	if c.V(0) != 0 {
		t.Error("clock should be low before first edge")
	}
	if got := c.Edge50(1); !num.ApproxEqual(got, 11.05e-9, 1e-12, 1e-21) {
		t.Errorf("Edge50(1) = %v", got)
	}
	if !num.ApproxEqual(c.V(11.05e-9), 1.25, 1e-9, 1e-9) {
		t.Errorf("value at 50%% crossing: %v", c.V(11.05e-9))
	}
	if c.V(3e-9) != 2.5 {
		t.Errorf("high phase: %v", c.V(3e-9))
	}
	if c.V(8e-9) != 0 {
		t.Errorf("low phase: %v", c.V(8e-9))
	}
	// Periodicity.
	if !num.ApproxEqual(c.V(13e-9), c.V(3e-9), 1e-12, 1e-12) {
		t.Error("not periodic")
	}
}

func TestClockFallRamp(t *testing.T) {
	c := paperClock()
	// Width defaults to Period/2 = 5 ns from ramp start: fall begins at
	// 1 ns + 5 ns = 6 ns, 50% at 6.05 ns.
	if !num.ApproxEqual(c.V(6.05e-9), 1.25, 1e-9, 1e-9) {
		t.Errorf("fall midpoint: %v", c.V(6.05e-9))
	}
}

func TestClockExplicitWidth(t *testing.T) {
	c := paperClock()
	c.Width = 2e-9
	if c.V(2.5e-9) != 2.5 {
		t.Error("high before fall")
	}
	if c.V(3.5e-9) != 0 {
		t.Error("low after explicit-width fall")
	}
}

func TestShiftedAndInverted(t *testing.T) {
	c := paperClock()
	s := Shifted{W: c, Dt: 0.3e-9}
	if !num.ApproxEqual(s.V(11.35e-9), c.V(11.05e-9), 1e-12, 1e-12) {
		t.Error("shift wrong")
	}
	inv := Inverted{W: c, Low: 0, High: 2.5}
	if !num.ApproxEqual(inv.V(3e-9), 0, 1e-12, 1e-12) {
		t.Errorf("inverted high phase: %v", inv.V(3e-9))
	}
	if !num.ApproxEqual(inv.V(8e-9), 2.5, 1e-12, 1e-12) {
		t.Errorf("inverted low phase: %v", inv.V(8e-9))
	}
}

func mkPulse(t *testing.T, shape RampShape) *DataPulse {
	t.Helper()
	d, err := NewDataPulse(11.05e-9, 0, 2.5, 0.1e-9, 0.1e-9, shape)
	if err != nil {
		t.Fatal(err)
	}
	d.SetSkews(200e-12, 150e-12)
	return d
}

func TestDataPulseLevels(t *testing.T) {
	d := mkPulse(t, RampSmooth)
	if d.V(0) != 0 {
		t.Error("rest before pulse")
	}
	if !num.ApproxEqual(d.V(11.0e-9), 2.5, 1e-9, 1e-9) {
		t.Errorf("active during pulse: %v", d.V(11.0e-9))
	}
	if !num.ApproxEqual(d.V(12e-9), 0, 1e-9, 1e-9) {
		t.Errorf("rest after pulse: %v", d.V(12e-9))
	}
}

func TestDataPulse50PercentCrossings(t *testing.T) {
	d := mkPulse(t, RampSmooth)
	lead := 11.05e-9 - 200e-12
	trail := 11.05e-9 + 150e-12
	if !num.ApproxEqual(d.V(lead), 1.25, 1e-9, 1e-9) {
		t.Errorf("lead 50%%: %v", d.V(lead))
	}
	if !num.ApproxEqual(d.V(trail), 1.25, 1e-9, 1e-9) {
		t.Errorf("trail 50%%: %v", d.V(trail))
	}
}

func TestDataPulseFallingData(t *testing.T) {
	// High-to-low data transition (the C²MOS experiment).
	d, err := NewDataPulse(11.05e-9, 2.5, 0, 0.1e-9, 0.1e-9, RampSmooth)
	if err != nil {
		t.Fatal(err)
	}
	d.SetSkews(300e-12, 250e-12)
	if d.V(0) != 2.5 {
		t.Error("rest should be high")
	}
	if !num.ApproxEqual(d.V(11.05e-9), 0, 1e-9, 1e-9) {
		t.Errorf("active low at edge: %v", d.V(11.05e-9))
	}
}

func TestDataPulseSkewDerivativesFiniteDifference(t *testing.T) {
	for _, shape := range []RampShape{RampSmooth, RampLinear} {
		d := mkPulse(t, shape)
		const h = 1e-16 // seconds; derivative scale is V/s ~ 1e10
		// Interior ramp points only: the linear shape's derivative is
		// discontinuous exactly at ramp boundaries, where a centered finite
		// difference straddles the kink.
		times := []float64{
			10.82e-9, 10.84e-9, 10.85e-9, 10.88e-9, // inside the leading ramp
			11.16e-9, 11.18e-9, 11.20e-9, 11.24e-9, // inside the trailing ramp
			5e-9, 11.0e-9, // quiescent regions
		}
		for _, tt := range times {
			d.SetSkews(200e-12+h, 150e-12)
			vp := d.V(tt)
			d.SetSkews(200e-12-h, 150e-12)
			vm := d.V(tt)
			d.SetSkews(200e-12, 150e-12)
			fd := (vp - vm) / (2 * h)
			an := d.DTauS(tt)
			if !num.ApproxEqual(fd, an, 2e-3, 1e6) { // 1e6 V/s ≈ 1e-4 of scale
				t.Errorf("%v DTauS at t=%v: fd=%v analytic=%v", shape, tt, fd, an)
			}

			d.SetSkews(200e-12, 150e-12+h)
			vp = d.V(tt)
			d.SetSkews(200e-12, 150e-12-h)
			vm = d.V(tt)
			d.SetSkews(200e-12, 150e-12)
			fd = (vp - vm) / (2 * h)
			an = d.DTauH(tt)
			if !num.ApproxEqual(fd, an, 2e-3, 1e6) {
				t.Errorf("%v DTauH at t=%v: fd=%v analytic=%v", shape, tt, fd, an)
			}
		}
	}
}

func TestDataPulseDerivativeSupports(t *testing.T) {
	d := mkPulse(t, RampSmooth)
	// zs vanishes away from the leading ramp; zh away from the trailing.
	if d.DTauS(11.2e-9) != 0 {
		t.Error("DTauS should vanish on trailing ramp region")
	}
	if d.DTauH(10.85e-9) != 0 {
		t.Error("DTauH should vanish on leading ramp region")
	}
	if d.DTauS(5e-9) != 0 || d.DTauH(5e-9) != 0 {
		t.Error("derivatives should vanish in quiescence")
	}
}

func TestDataPulseDerivativeSigns(t *testing.T) {
	d := mkPulse(t, RampSmooth)
	// Rising data (Active > Rest): increasing τs moves the rise earlier, so
	// mid-ramp the value increases with τs → zs > 0 there.
	if zs := d.DTauS(11.05e-9 - 200e-12); zs <= 0 {
		t.Errorf("zs mid-lead-ramp = %v, want > 0", zs)
	}
	// Increasing τh moves the fall later → value increases with τh mid-fall.
	if zh := d.DTauH(11.05e-9 + 150e-12); zh <= 0 {
		t.Errorf("zh mid-trail-ramp = %v, want > 0", zh)
	}
}

func TestDataPulseValidation(t *testing.T) {
	if _, err := NewDataPulse(0, 0, 1, 0, 1e-10, RampSmooth); err == nil {
		t.Error("zero rise accepted")
	}
	if _, err := NewDataPulse(0, 0, 1, 1e-10, -1, RampSmooth); err == nil {
		t.Error("negative fall accepted")
	}
}

func TestDataPulseSupportStart(t *testing.T) {
	d := mkPulse(t, RampSmooth)
	got := d.SupportStart(400e-12)
	want := 11.05e-9 - 400e-12 - 0.05e-9
	if !num.ApproxEqual(got, want, 1e-12, 1e-21) {
		t.Errorf("SupportStart = %v, want %v", got, want)
	}
}

func TestDataPulseSkewsAccessor(t *testing.T) {
	d := mkPulse(t, RampSmooth)
	s, h := d.Skews()
	if s != 200e-12 || h != 150e-12 {
		t.Errorf("Skews = %v, %v", s, h)
	}
}

func TestRampShapeString(t *testing.T) {
	if RampSmooth.String() != "smooth" || RampLinear.String() != "linear" {
		t.Error("String wrong")
	}
	if RampShape(9).String() == "" {
		t.Error("unknown shape should still format")
	}
}

func TestDataPulseContinuity(t *testing.T) {
	// The waveform must be continuous everywhere (no jumps), even across
	// ramp boundaries, for both shapes.
	for _, shape := range []RampShape{RampSmooth, RampLinear} {
		d := mkPulse(t, shape)
		prevT := 10.5e-9
		prevV := d.V(prevT)
		for i := 1; i <= 2000; i++ {
			tt := 10.5e-9 + float64(i)*0.5e-12
			v := d.V(tt)
			// Max profile slope ≈ 1.5·swing/rise (smoothstep peak), i.e.
			// ≤ 0.02 V per 0.5 ps sample; anything much larger is a jump.
			if math.Abs(v-prevV) > 0.05 {
				t.Fatalf("%v: jump at t=%v: %v -> %v", shape, tt, prevV, v)
			}
			prevV = v
		}
	}
}
