// Package wave provides the input waveforms used for latch characterization:
// DC levels, steps, piecewise-linear sources, periodic clocks, shifted and
// inverted views, and the parametric data pulse ud(t, τs, τh) whose analytic
// skew derivatives zs = ∂ud/∂τs and zh = ∂ud/∂τh drive the sensitivity
// right-hand sides of the state-transition formulation (paper eq. (7)).
package wave

import (
	"fmt"
	"sort"

	"latchchar/internal/num"
)

// Waveform is a time-dependent source value.
type Waveform interface {
	// V returns the source value at time t (seconds).
	V(t float64) float64
}

// RampShape selects the transition profile of edges.
type RampShape int

const (
	// RampSmooth is the C¹ cubic smoothstep profile (default). Its skew
	// derivatives are continuous, which keeps h(τ) smooth for Newton.
	RampSmooth RampShape = iota
	// RampLinear is the piecewise-linear profile used by conventional SPICE
	// PULSE sources; its skew derivatives have jumps at ramp boundaries.
	RampLinear
)

func (s RampShape) String() string {
	switch s {
	case RampSmooth:
		return "smooth"
	case RampLinear:
		return "linear"
	default:
		return fmt.Sprintf("RampShape(%d)", int(s))
	}
}

// ramp returns the 0→1 profile over [a, b] at x and its time derivative.
func (s RampShape) ramp(a, b, x float64) (v, dvdt float64) {
	switch s {
	case RampLinear:
		return num.LinStep(a, b, x), num.LinStepDeriv(a, b, x)
	default:
		return num.Smoothstep(a, b, x), num.SmoothstepDeriv(a, b, x)
	}
}

// DC is a constant source.
type DC float64

// V implements Waveform.
func (d DC) V(float64) float64 { return float64(d) }

// Step transitions from V0 to V1 with a ramp of duration Rise whose 50%
// point is at T50.
type Step struct {
	V0, V1 float64
	T50    float64
	Rise   float64
	Shape  RampShape
}

// V implements Waveform.
func (s Step) V(t float64) float64 {
	a := s.T50 - s.Rise/2
	v, _ := s.Shape.ramp(a, a+s.Rise, t)
	return s.V0 + (s.V1-s.V0)*v
}

// PWL is a piecewise-linear waveform through the given (T, V) points,
// holding the first value before the first point and the last value after
// the last point. Points must be sorted by strictly increasing T.
type PWL struct {
	Times  []float64
	Values []float64
}

// NewPWL validates and constructs a PWL waveform.
func NewPWL(ts, vs []float64) (*PWL, error) {
	if len(ts) != len(vs) {
		return nil, fmt.Errorf("wave: PWL needs equal-length slices, got %d and %d", len(ts), len(vs))
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("wave: PWL needs at least one point")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			return nil, fmt.Errorf("wave: PWL times must be strictly increasing (point %d)", i)
		}
	}
	return &PWL{Times: ts, Values: vs}, nil
}

// V implements Waveform.
func (p *PWL) V(t float64) float64 {
	n := len(p.Times)
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	i := sort.SearchFloat64s(p.Times, t)
	// p.Times[i-1] < t <= p.Times[i]
	u := num.InvLerp(p.Times[i-1], p.Times[i], t)
	return num.Lerp(p.Values[i-1], p.Values[i], u)
}

// Clock is a periodic two-level waveform. Each period starts with a rising
// ramp beginning at Delay + k·Period (so the 50% crossing of edge k is at
// Delay + k·Period + Rise/2, matching the paper's convention for the TSPC
// experiment where edges "start" at 1 ns, 11 ns, …). Before the first edge
// the output is Low.
type Clock struct {
	Low, High  float64
	Period     float64
	Delay      float64 // time at which the first rising ramp begins
	Rise, Fall float64
	Width      float64 // high time measured from ramp start to fall start; 0 means Period/2
	Shape      RampShape
}

// EdgeStart returns the time the k-th (0-based) rising ramp begins.
func (c Clock) EdgeStart(k int) float64 { return c.Delay + float64(k)*c.Period }

// Edge50 returns the 50% crossing time of the k-th rising edge.
func (c Clock) Edge50(k int) float64 { return c.EdgeStart(k) + c.Rise/2 }

func (c Clock) width() float64 {
	if c.Width > 0 {
		return c.Width
	}
	return c.Period / 2
}

// V implements Waveform.
func (c Clock) V(t float64) float64 {
	tp := t - c.Delay
	if tp < 0 {
		return c.Low
	}
	// Position within the period.
	k := float64(int(tp / c.Period))
	ph := tp - k*c.Period
	w := c.width()
	switch {
	case ph < c.Rise:
		v, _ := c.Shape.ramp(0, c.Rise, ph)
		return num.Lerp(c.Low, c.High, v)
	case ph < w:
		return c.High
	case ph < w+c.Fall:
		v, _ := c.Shape.ramp(w, w+c.Fall, ph)
		return num.Lerp(c.High, c.Low, v)
	default:
		return c.Low
	}
}

// Shifted delays a waveform by Dt: V(t) = W.V(t − Dt).
type Shifted struct {
	W  Waveform
	Dt float64
}

// V implements Waveform.
func (s Shifted) V(t float64) float64 { return s.W.V(t - s.Dt) }

// Inverted mirrors a two-level waveform about the midpoint of [Low, High]:
// V(t) = Low + High − W.V(t). Used to derive clk̄ from clk.
type Inverted struct {
	W         Waveform
	Low, High float64
}

// V implements Waveform.
func (i Inverted) V(t float64) float64 { return i.Low + i.High - i.W.V(t) }
