package netlist

import (
	"fmt"
	"strings"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/registers"
	"latchchar/internal/wave"
)

// Build constructs a fresh register instance from the parsed deck. Each
// call produces an independent circuit, so decks can drive concurrent
// characterization.
func (d *Deck) Build() (*registers.Instance, error) {
	c := circuit.New()
	var dataPulse *wave.DataPulse
	var clockWave wave.Clock
	var supplySrc *device.VSource
	haveClock := false

	for _, s := range d.sources {
		p, n := c.Node(s.p), c.Node(s.n)
		var w wave.Waveform
		role := device.RoleSupply
		switch s.kind {
		case srcDC:
			w = wave.DC(s.dc)
		case srcClock:
			ck := wave.Clock{
				Low: s.clock.low, High: s.clock.high,
				Period: s.clock.period, Delay: s.clock.delay,
				Rise: s.clock.rise, Fall: s.clock.fall,
				Width: s.clock.width,
				Shape: wave.RampSmooth,
			}
			if !haveClock {
				clockWave = ck
				haveClock = true
			}
			w = ck
			role = device.RoleClock
		case srcPWL:
			pw, err := wave.NewPWL(s.pwlT, s.pwlV)
			if err != nil {
				return nil, fmt.Errorf("netlist: source %s: %w", s.name, err)
			}
			w = pw
			role = device.RoleClock
		case srcData:
			dp, err := wave.NewDataPulse(s.data.edge50, s.data.rest, s.data.active,
				s.data.rise, s.data.fall, wave.RampSmooth)
			if err != nil {
				return nil, fmt.Errorf("netlist: source %s: %w", s.name, err)
			}
			dataPulse = dp
			w = dp
			role = device.RoleData
		}
		v, err := device.NewVSource(s.name, p, n, w, role)
		if err != nil {
			return nil, fmt.Errorf("netlist: source %s: %w", s.name, err)
		}
		c.AddDevice(v)
		// The first DC source named "vdd" (or driving a node of that name)
		// is treated as the main supply for energy measurements.
		if supplySrc == nil && s.kind == srcDC &&
			(strings.EqualFold(s.name, "vdd") || s.p == "vdd") {
			supplySrc = v
		}
	}

	for _, r := range d.resistors {
		dev, err := device.NewResistor(r.name, c.Node(r.p), c.Node(r.n), r.ohms)
		if err != nil {
			return nil, fmt.Errorf("netlist: %w", err)
		}
		c.AddDevice(dev)
	}
	for _, cp := range d.capacitors {
		dev, err := device.NewCapacitor(cp.name, c.Node(cp.p), c.Node(cp.n), cp.farads)
		if err != nil {
			return nil, fmt.Errorf("netlist: %w", err)
		}
		c.AddDevice(dev)
	}
	for _, m := range d.mosfets {
		mr := d.models[m.model]
		mdl := device.MOSModel{
			Type:   device.NMOS,
			VT0:    mr.vt0,
			KP:     mr.kp,
			Lambda: mr.lambda,
			Cox:    mr.cox,
			CJ:     mr.cj,
		}
		if mr.isPMOS {
			mdl.Type = device.PMOS
		}
		dev, err := device.NewMOSFET(m.name, c.Node(m.d), c.Node(m.g), c.Node(m.s), c.Node(m.b), mdl, m.w, m.l)
		if err != nil {
			return nil, fmt.Errorf("netlist: %w", err)
		}
		c.AddDevice(dev)
	}

	out, err := c.LookupNode(d.out)
	if err != nil {
		return nil, fmt.Errorf("netlist: .out: %w", err)
	}
	if out == circuit.Ground {
		return nil, fmt.Errorf("netlist: .out cannot be ground")
	}
	if err := c.Finalize(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	inst := &registers.Instance{
		Circuit:      c,
		Data:         dataPulse,
		Out:          out,
		Clock:        clockWave,
		Edge50:       dataPulse.Edge50,
		VDD:          d.vdd,
		OutputRising: d.rising,
		CrossFrac:    d.crossFrac,
		Supply:       circuit.Ground,
	}
	if supplySrc != nil {
		inst.Supply = supplySrc.Branch()
	}
	return inst, nil
}

// Cell wraps the deck as a registers.Cell so it plugs into the same
// characterization entry points as the built-in registers.
func (d *Deck) Cell(name string) *registers.Cell {
	return &registers.Cell{
		Name:  name,
		Build: d.Build,
	}
}
