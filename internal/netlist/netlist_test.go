package netlist

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"latchchar/internal/registers"
	"latchchar/internal/stf"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1},
		{"2.5", 2.5},
		{"-3", -3},
		{"10p", 10e-12},
		{"0.1n", 0.1e-9},
		{"4u", 4e-6},
		{"6m", 6e-3},
		{"1k", 1e3},
		{"2meg", 2e6},
		{"3g", 3e9},
		{"1t", 1e12},
		{"5f", 5e-15},
		{"1e-9", 1e-9},
		{"2.5V", 2.5},
		{"10pF", 10e-12},
		{"1K", 1e3},
		{"100ohm", 100},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want)+1e-300 {
			t.Errorf("%q = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "1q", "=3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

const tspcDeck = `
* TSPC positive-edge register, equivalent to registers.TSPC defaults
.model nch nmos VT0=0.43 KP=115u LAMBDA=0.06 COX=6m CJ=0.6n
.model pch pmos VT0=0.40 KP=30u LAMBDA=0.10 COX=6m CJ=0.6n

Vdd  vdd 0 DC 2.5
Vclk clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd   d   0 DATA(11.05n 2.5 0 0.1n 0.1n)

* stage 1
MP1 n1 d   vdd vdd pch W=1.4u L=0.25u
MP2 x  clk n1  vdd pch W=1.4u L=0.25u
MN1 x  d   0   0   nch W=0.6u L=0.25u
* stage 2
MP3 y  x   vdd vdd pch W=1.4u L=0.25u
MN2 y  clk n2  0   nch W=0.6u L=0.25u
MN3 n2 x   0   0   nch W=0.6u L=0.25u
* stage 3
MP4 q  y   vdd vdd pch W=1.4u L=0.25u
MN4 q  clk n3  0   nch W=0.6u L=0.25u
MN5 n3 y   0   0   nch W=0.6u L=0.25u

Cx x 0 12f
Cy y 0 12f
Cq q 0 25f

.out q
.vdd 2.5
.crossfrac 0.5
.rising 1
.end
`

func TestParseTSPCDeck(t *testing.T) {
	d, err := ParseString(tspcDeck)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.mosfets) != 9 || len(d.capacitors) != 3 || len(d.sources) != 3 {
		t.Errorf("counts: %d mosfets, %d caps, %d sources", len(d.mosfets), len(d.capacitors), len(d.sources))
	}
	if d.out != "q" || d.vdd != 2.5 || d.crossFrac != 0.5 || !d.rising {
		t.Errorf("directives: out=%q vdd=%v frac=%v rising=%v", d.out, d.vdd, d.crossFrac, d.rising)
	}
}

func TestBuildTSPCDeck(t *testing.T) {
	d, err := ParseString(tspcDeck)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Circuit.Finalized() {
		t.Error("circuit not finalized")
	}
	if inst.Data == nil || inst.Out < 0 {
		t.Error("incomplete instance")
	}
	if math.Abs(inst.Edge50-11.05e-9) > 1e-18 {
		t.Errorf("Edge50 = %v", inst.Edge50)
	}
	// Independent instances.
	inst2, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Circuit == inst2.Circuit || inst.Data == inst2.Data {
		t.Error("Build instances share state")
	}
}

// TestDeckMatchesBuiltinCell is the round-trip check: the parsed deck must
// calibrate to the same characteristic delay as the programmatic TSPC cell.
func TestDeckMatchesBuiltinCell(t *testing.T) {
	d, err := ParseString(tspcDeck)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	evDeck, err := stf.NewEvaluator(inst, stf.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cell, err := registers.ByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	evRef, err := stf.NewEvaluator(ref, stf.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dDeck := evDeck.Calibration().CharDelay
	dRef := evRef.Calibration().CharDelay
	if math.Abs(dDeck-dRef) > 1e-12 {
		t.Errorf("deck delay %v ps, builtin %v ps", dDeck*1e12, dRef*1e12)
	}
}

func TestContinuationAndComments(t *testing.T) {
	d, err := ParseString(`
* comment
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 2.5 10n 1n
+ 0.1n 0.1n) ; trailing comment
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.sources) != 2 {
		t.Errorf("sources: %d", len(d.sources))
	}
	if math.Abs(d.sources[0].clock.rise-0.1e-9) > 1e-21 {
		t.Errorf("continuation lost: %+v", d.sources[0].clock)
	}
}

func TestBareDCSource(t *testing.T) {
	d, err := ParseString(`
.model nch nmos VT0=0.43 KP=115u
Vs vdd 0 2.5
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.sources[0].kind != srcDC || d.sources[0].dc != 2.5 {
		t.Errorf("bare DC: %+v", d.sources[0])
	}
}

func TestPulseMapsToClock(t *testing.T) {
	d, err := ParseString(`
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 PULSE(0 2.5 1n 0.1n 0.1n 4.9n 10n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`)
	if err != nil {
		t.Fatal(err)
	}
	ck := d.sources[0].clock
	if ck.period != 10e-9 || math.Abs(ck.width-5e-9) > 1e-18 {
		t.Errorf("pulse mapping: %+v", ck)
	}
}

func TestPWLSource(t *testing.T) {
	d, err := ParseString(`
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vp ramp 0 PWL(0 0 1n 2.5)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	base := `
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`
	cases := map[string]string{
		"no data":        strings.Replace(base, "DATA(11.05n 2.5 0 0.1n 0.1n)", "DC 0", 1),
		"no clock":       strings.Replace(base, "CLOCK(0 2.5 10n 1n 0.1n 0.1n)", "DC 0", 1),
		"no out":         strings.Replace(base, ".out q", "", 1),
		"missing model":  strings.Replace(base, "nch W=1u", "nope W=1u", 1),
		"two data":       base + "\nVd2 d2 0 DATA(11.05n 2.5 0 0.1n 0.1n)\n",
		"unknown elem":   base + "\nQ1 a b c\n",
		"unknown direct": base + "\n.wibble 3\n",
		"bad crossfrac":  base + "\n.crossfrac 1.5\n",
		"bad rising":     base + "\n.rising yes\n",
		"bad mos param":  strings.Replace(base, "W=1u", "Z=1u", 1),
		"zero W":         strings.Replace(base, "W=1u", "W=0", 1),
		"bad model type": strings.Replace(base, "nmos VT0", "jfet VT0", 1),
	}
	for name, deck := range cases {
		if _, err := ParseString(deck); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	// .out on a node that exists but is ground.
	d, err := ParseString(`
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Build(); err == nil {
		t.Error("ground output accepted")
	}
	// .out references a node that never appears.
	d, err = ParseString(`
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out nowhere
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Build(); err == nil {
		t.Error("unknown output node accepted")
	}
}

func TestDeckCell(t *testing.T) {
	d, err := ParseString(tspcDeck)
	if err != nil {
		t.Fatal(err)
	}
	cell := d.Cell("my-tspc")
	if cell.Name != "my-tspc" {
		t.Errorf("name %q", cell.Name)
	}
	if _, err := cell.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestContinuationWithoutPrior(t *testing.T) {
	if _, err := ParseString("+ 1 2 3\n"); err == nil {
		t.Error("leading continuation accepted")
	}
}

func TestMalformedNumbers(t *testing.T) {
	if _, err := ParseString(`
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 x 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`); err == nil {
		t.Error("bad clock arg accepted")
	}
}

func TestParseFileWithInclude(t *testing.T) {
	dir := t.TempDir()
	models := `
.model nch nmos VT0=0.43 KP=115u
.model pch pmos VT0=0.40 KP=30u
`
	if err := os.WriteFile(filepath.Join(dir, "models.inc"), []byte(models), 0o644); err != nil {
		t.Fatal(err)
	}
	deck := `
* top-level deck
.include models.inc
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`
	path := filepath.Join(dir, "top.cir")
	if err := os.WriteFile(path, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.models) != 2 {
		t.Errorf("models: %d", len(d.models))
	}
	if _, err := d.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestIncludeMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "top.cir")
	if err := os.WriteFile(path, []byte(".include nothere.inc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(path); err == nil {
		t.Error("missing include accepted")
	}
}

func TestIncludeRecursionLimited(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "self.inc")
	if err := os.WriteFile(path, []byte(".include self.inc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(path); err == nil {
		t.Error("self-including deck accepted")
	}
}

func TestIncludeBadArgs(t *testing.T) {
	if _, err := ParseString(".include a b\n"); err == nil {
		t.Error(".include with two paths accepted")
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent/deck.cir"); err == nil {
		t.Error("missing file accepted")
	}
}

// FuzzParse exercises the parser with arbitrary inputs; it must never
// panic, only return errors. The seeds cover every element and directive
// form. Run with `go test -fuzz=FuzzParse ./internal/netlist` for real
// fuzzing; the seeds execute as regular tests.
func FuzzParse(f *testing.F) {
	f.Add(tspcDeck)
	f.Add("R1 a b 1k\n")
	f.Add("+ dangling continuation\n")
	f.Add(".model m nmos VT0=0.4 KP=1u\nVc c 0 CLOCK(0 1 1n 0.1n 0.01n 0.01n)\n")
	f.Add("Vd d 0 DATA(1n 0 1 0.1n 0.1n)\n.out q\n")
	f.Add("M1 a b c d mod W=1u L=1u\n")
	f.Add("* comment only\n; semicolon\n")
	f.Add(".include /etc/hostname\n")
	f.Add("V1 a 0 PWL(0 0 1 1)\nV2 b 0 PULSE(0 1 0 1 1 1 10)\n")
	f.Add("C1 x 0 1f\n.vdd 3\n.crossfrac 0.9\n.rising 0\n.end\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseString(input)
		if err == nil && d != nil {
			// A successfully parsed deck must also survive Build or fail
			// with an error, never panic.
			_, _ = d.Build()
		}
	})
}
