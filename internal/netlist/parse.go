package netlist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// source waveform kinds.
type srcKind int

const (
	srcDC srcKind = iota
	srcClock
	srcPWL
	srcData
)

type resRec struct {
	name, p, n string
	ohms       float64
}

type capRec struct {
	name, p, n string
	farads     float64
}

type srcRec struct {
	name, p, n string
	kind       srcKind
	dc         float64
	clock      clockSpec
	pwlT, pwlV []float64
	data       dataSpec
}

type clockSpec struct {
	low, high, period, delay, rise, fall, width float64
}

type dataSpec struct {
	edge50, rest, active, rise, fall float64
}

type mosRec struct {
	name, d, g, s, b string
	model            string
	w, l             float64
}

type modelRec struct {
	isPMOS                   bool
	vt0, kp, lambda, cox, cj float64
}

// Deck is a parsed netlist. It is immutable after Parse; Build constructs
// fresh circuit instances from it.
type Deck struct {
	resistors  []resRec
	capacitors []capRec
	sources    []srcRec
	mosfets    []mosRec
	models     map[string]modelRec

	out       string
	vdd       float64
	crossFrac float64
	rising    bool
}

// maxIncludeDepth bounds .include nesting.
const maxIncludeDepth = 10

// srcLine is one logical deck line with its origin for error messages.
type srcLine struct {
	text  string
	where string
}

// collectLines gathers logical lines: comments stripped, continuations
// joined, .include directives spliced (paths resolved against baseDir).
func collectLines(r io.Reader, name, baseDir string, depth int) ([]srcLine, error) {
	if depth > maxIncludeDepth {
		return nil, fmt.Errorf("netlist: %s: include nesting exceeds %d", name, maxIncludeDepth)
	}
	sc := bufio.NewScanner(r)
	var lines []srcLine
	no := 0
	for sc.Scan() {
		no++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		where := fmt.Sprintf("%s:%d", name, no)
		if strings.HasPrefix(line, "+") {
			if len(lines) == 0 {
				return nil, fmt.Errorf("netlist: %s: continuation with nothing to continue", where)
			}
			lines[len(lines)-1].text += " " + strings.TrimPrefix(line, "+")
			continue
		}
		if low := strings.ToLower(line); strings.HasPrefix(low, ".include") {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: %s: .include needs one path", where)
			}
			incPath := strings.Trim(fields[1], "\"'")
			if !filepath.IsAbs(incPath) {
				incPath = filepath.Join(baseDir, incPath)
			}
			f, err := os.Open(incPath)
			if err != nil {
				return nil, fmt.Errorf("netlist: %s: %w", where, err)
			}
			inc, err := collectLines(f, incPath, filepath.Dir(incPath), depth+1)
			f.Close()
			if err != nil {
				return nil, err
			}
			lines = append(lines, inc...)
			continue
		}
		lines = append(lines, srcLine{text: line, where: where})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read %s: %w", name, err)
	}
	return lines, nil
}

func parseLines(lines []srcLine) (*Deck, error) {
	d := &Deck{
		models:    make(map[string]modelRec),
		vdd:       2.5,
		crossFrac: 0.5,
		rising:    true,
	}
	for _, line := range lines {
		if err := d.parseLine(line.text); err != nil {
			return nil, fmt.Errorf("netlist: %s: %w", line.where, err)
		}
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Parse reads a deck. Lines starting with '*' are comments; '+' continues
// the previous line; text after ';' is ignored; .include paths are resolved
// against the current directory. Element and directive names are
// case-insensitive; node names are case-sensitive.
func Parse(r io.Reader) (*Deck, error) {
	lines, err := collectLines(r, "deck", ".", 0)
	if err != nil {
		return nil, err
	}
	return parseLines(lines)
}

// ParseFile reads a deck from a file; .include paths are resolved against
// the file's directory.
func ParseFile(path string) (*Deck, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lines, err := collectLines(f, path, filepath.Dir(path), 0)
	if err != nil {
		return nil, err
	}
	return parseLines(lines)
}

// ParseString parses a deck held in a string.
func ParseString(s string) (*Deck, error) { return Parse(strings.NewReader(s)) }

// tokenize splits a line into tokens, treating parentheses and commas as
// separators while keeping them out of the token stream.
func tokenize(line string) []string {
	line = strings.ReplaceAll(line, "(", " ")
	line = strings.ReplaceAll(line, ")", " ")
	line = strings.ReplaceAll(line, ",", " ")
	return strings.Fields(line)
}

func (d *Deck) parseLine(line string) error {
	toks := tokenize(line)
	if len(toks) == 0 {
		return nil
	}
	head := strings.ToLower(toks[0])
	switch {
	case strings.HasPrefix(head, "."):
		return d.parseDirective(head, toks[1:])
	case head[0] == 'r':
		if len(toks) != 4 {
			return fmt.Errorf("resistor needs: Rname n1 n2 value")
		}
		v, err := ParseValue(toks[3])
		if err != nil {
			return err
		}
		d.resistors = append(d.resistors, resRec{toks[0], toks[1], toks[2], v})
		return nil
	case head[0] == 'c':
		if len(toks) != 4 {
			return fmt.Errorf("capacitor needs: Cname n1 n2 value")
		}
		v, err := ParseValue(toks[3])
		if err != nil {
			return err
		}
		d.capacitors = append(d.capacitors, capRec{toks[0], toks[1], toks[2], v})
		return nil
	case head[0] == 'v':
		return d.parseSource(toks)
	case head[0] == 'm':
		return d.parseMOS(toks)
	default:
		return fmt.Errorf("unknown element %q", toks[0])
	}
}

func (d *Deck) parseSource(toks []string) error {
	if len(toks) < 4 {
		return fmt.Errorf("source needs: Vname n+ n- spec")
	}
	rec := srcRec{name: toks[0], p: toks[1], n: toks[2]}
	spec := strings.ToLower(toks[3])
	args := toks[4:]
	vals := func(n int) ([]float64, error) {
		if len(args) < n {
			return nil, fmt.Errorf("%s needs %d arguments, got %d", spec, n, len(args))
		}
		out := make([]float64, len(args))
		for i, a := range args {
			v, err := ParseValue(a)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch spec {
	case "dc":
		v, err := vals(1)
		if err != nil {
			return err
		}
		rec.kind = srcDC
		rec.dc = v[0]
	case "clock":
		v, err := vals(6)
		if err != nil {
			return err
		}
		rec.kind = srcClock
		rec.clock = clockSpec{low: v[0], high: v[1], period: v[2], delay: v[3], rise: v[4], fall: v[5]}
		if len(v) > 6 {
			rec.clock.width = v[6]
		}
	case "pulse":
		// SPICE PULSE(v1 v2 td tr tf pw per) mapped onto the clock shape:
		// width (ramp start to fall start) = tr + pw.
		v, err := vals(7)
		if err != nil {
			return err
		}
		rec.kind = srcClock
		rec.clock = clockSpec{
			low: v[0], high: v[1], delay: v[2],
			rise: v[3], fall: v[4], width: v[3] + v[5], period: v[6],
		}
	case "pwl":
		v, err := vals(2)
		if err != nil {
			return err
		}
		if len(v)%2 != 0 {
			return fmt.Errorf("pwl needs time/value pairs")
		}
		rec.kind = srcPWL
		for i := 0; i < len(v); i += 2 {
			rec.pwlT = append(rec.pwlT, v[i])
			rec.pwlV = append(rec.pwlV, v[i+1])
		}
	case "data":
		v, err := vals(5)
		if err != nil {
			return err
		}
		rec.kind = srcData
		rec.data = dataSpec{edge50: v[0], rest: v[1], active: v[2], rise: v[3], fall: v[4]}
	default:
		// Bare numeric value → DC.
		v, err := ParseValue(toks[3])
		if err != nil {
			return fmt.Errorf("unknown source spec %q", toks[3])
		}
		rec.kind = srcDC
		rec.dc = v
	}
	d.sources = append(d.sources, rec)
	return nil
}

func (d *Deck) parseMOS(toks []string) error {
	// Mname nd ng ns nb model W=... L=...
	if len(toks) < 8 {
		return fmt.Errorf("mosfet needs: Mname nd ng ns nb model W=val L=val")
	}
	rec := mosRec{name: toks[0], d: toks[1], g: toks[2], s: toks[3], b: toks[4], model: strings.ToLower(toks[5])}
	for _, kv := range toks[6:] {
		k, v, err := parseKV(kv)
		if err != nil {
			return err
		}
		switch k {
		case "w":
			rec.w = v
		case "l":
			rec.l = v
		default:
			return fmt.Errorf("unknown mosfet parameter %q", k)
		}
	}
	if rec.w <= 0 || rec.l <= 0 {
		return fmt.Errorf("mosfet %s needs positive W and L", rec.name)
	}
	d.mosfets = append(d.mosfets, rec)
	return nil
}

func (d *Deck) parseDirective(head string, args []string) error {
	switch head {
	case ".model":
		if len(args) < 2 {
			return fmt.Errorf(".model needs: .model name nmos|pmos key=val...")
		}
		name := strings.ToLower(args[0])
		typ := strings.ToLower(args[1])
		rec := modelRec{cox: 6e-3}
		switch typ {
		case "nmos":
		case "pmos":
			rec.isPMOS = true
		default:
			return fmt.Errorf("model type %q must be nmos or pmos", args[1])
		}
		for _, kv := range args[2:] {
			k, v, err := parseKV(kv)
			if err != nil {
				return err
			}
			switch k {
			case "vt0", "vto":
				rec.vt0 = v
			case "kp":
				rec.kp = v
			case "lambda":
				rec.lambda = v
			case "cox":
				rec.cox = v
			case "cj":
				rec.cj = v
			default:
				return fmt.Errorf("unknown model parameter %q", k)
			}
		}
		d.models[name] = rec
		return nil
	case ".out", ".probe":
		if len(args) != 1 {
			return fmt.Errorf("%s needs one node name", head)
		}
		// Accept ".probe v(q)" which tokenizes to ["v", "q"]? No: parens are
		// stripped, so ".probe v q" arrives as 2 args; keep it simple and
		// accept the node name directly.
		d.out = args[0]
		return nil
	case ".vdd":
		if len(args) != 1 {
			return fmt.Errorf(".vdd needs one value")
		}
		v, err := ParseValue(args[0])
		if err != nil {
			return err
		}
		d.vdd = v
		return nil
	case ".crossfrac":
		if len(args) != 1 {
			return fmt.Errorf(".crossfrac needs one value")
		}
		v, err := ParseValue(args[0])
		if err != nil {
			return err
		}
		if v <= 0 || v >= 1 {
			return fmt.Errorf(".crossfrac must lie in (0, 1)")
		}
		d.crossFrac = v
		return nil
	case ".rising":
		if len(args) != 1 {
			return fmt.Errorf(".rising needs 0 or 1")
		}
		switch args[0] {
		case "0":
			d.rising = false
		case "1":
			d.rising = true
		default:
			return fmt.Errorf(".rising needs 0 or 1, got %q", args[0])
		}
		return nil
	case ".end":
		return nil
	default:
		return fmt.Errorf("unknown directive %q", head)
	}
}

func (d *Deck) validate() error {
	nData, nClock := 0, 0
	for _, s := range d.sources {
		switch s.kind {
		case srcData:
			nData++
		case srcClock:
			nClock++
		}
	}
	if nData != 1 {
		return fmt.Errorf("netlist: need exactly one DATA source, found %d", nData)
	}
	if nClock < 1 {
		return fmt.Errorf("netlist: need at least one CLOCK or PULSE source")
	}
	if d.out == "" {
		return fmt.Errorf("netlist: missing .out directive")
	}
	if len(d.mosfets)+len(d.resistors) == 0 {
		return fmt.Errorf("netlist: no devices")
	}
	for _, m := range d.mosfets {
		if _, ok := d.models[m.model]; !ok {
			return fmt.Errorf("netlist: mosfet %s references undefined model %q", m.name, m.model)
		}
	}
	return nil
}
