// Package netlist parses a small SPICE-like deck format describing a latch
// or register plus its characterization stimulus, and builds simulator
// instances from it. Supported elements: R, C, V (DC / CLOCK / PULSE / PWL /
// DATA waveforms), M (level-1 MOSFETs with .model cards), and the
// characterization directives .vdd, .out, .crossfrac and .rising.
//
// A deck is parsed once into an AST; every Build call constructs a fresh,
// independent circuit instance, so parsed decks can drive concurrent
// characterization exactly like the built-in cells.
package netlist

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseValue parses a SPICE-style number with an optional scale suffix:
// f, p, n, u, m, k, meg, g, t (case-insensitive). Any trailing unit letters
// after the suffix are ignored (e.g. "10pF", "2.5V").
func ParseValue(s string) (float64, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if ls == "" {
		return 0, fmt.Errorf("netlist: empty value")
	}
	// Split the numeric prefix from the suffix.
	end := len(ls)
	for i, r := range ls {
		if (r >= '0' && r <= '9') || r == '.' || r == '+' || r == '-' || r == 'e' {
			// 'e' is tricky: only part of the number if followed by digits
			// or a sign; otherwise it starts a suffix... handled below by
			// retrying the parse.
			continue
		}
		end = i
		break
	}
	// strconv handles scientific notation; back off while the prefix fails
	// to parse (covers "2e" from "2eg" style accidents).
	var num float64
	var err error
	for end > 0 {
		num, err = strconv.ParseFloat(ls[:end], 64)
		if err == nil {
			break
		}
		end--
	}
	if end == 0 {
		return 0, fmt.Errorf("netlist: cannot parse number %q", s)
	}
	suffix := ls[end:]
	scale := 1.0
	switch {
	case suffix == "":
	case strings.HasPrefix(suffix, "meg"):
		scale = 1e6
	case strings.HasPrefix(suffix, "f"):
		scale = 1e-15
	case strings.HasPrefix(suffix, "p"):
		scale = 1e-12
	case strings.HasPrefix(suffix, "n"):
		scale = 1e-9
	case strings.HasPrefix(suffix, "u"):
		scale = 1e-6
	case strings.HasPrefix(suffix, "m"):
		scale = 1e-3
	case strings.HasPrefix(suffix, "k"):
		scale = 1e3
	case strings.HasPrefix(suffix, "g"):
		scale = 1e9
	case strings.HasPrefix(suffix, "t"):
		scale = 1e12
	case strings.HasPrefix(suffix, "v"), strings.HasPrefix(suffix, "a"),
		strings.HasPrefix(suffix, "s"), strings.HasPrefix(suffix, "hz"),
		strings.HasPrefix(suffix, "ohm"):
		// bare units
	default:
		return 0, fmt.Errorf("netlist: unknown suffix %q in %q", suffix, s)
	}
	return num * scale, nil
}

// parseKV splits "W=4u" style parameters.
func parseKV(tok string) (key string, val float64, err error) {
	i := strings.IndexByte(tok, '=')
	if i <= 0 || i == len(tok)-1 {
		return "", 0, fmt.Errorf("netlist: malformed parameter %q", tok)
	}
	v, err := ParseValue(tok[i+1:])
	if err != nil {
		return "", 0, err
	}
	return strings.ToLower(tok[:i]), v, nil
}
