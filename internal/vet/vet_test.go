package vet_test

import (
	"strings"
	"testing"

	"latchchar/internal/core"
	"latchchar/internal/netlist"
	"latchchar/internal/registers"
	"latchchar/internal/stf"
	"latchchar/internal/vet"
)

// baseDeck is a minimal clean characterization deck: a resistor-loaded
// clocked pulldown with every node conductively grounded, aligned data and
// clock references, and sane values.
const baseDeck = `
.model nch nmos VT0=0.43 KP=115u LAMBDA=0.06 COX=6m CJ=0.6n
Vdd  vdd 0 DC 2.5
Vclk clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd   d   0 DATA(11.05n 2.5 0 0.1n 0.1n)
R1 vdd q 10k
M1 q  d   s1 0 nch W=0.6u L=0.25u
M2 s1 clk 0  0 nch W=0.6u L=0.25u
.out q
.vdd 2.5
`

// buildTarget parses a deck and returns the built instance.
func buildInstance(t *testing.T, deck string) *registers.Instance {
	t.Helper()
	d, err := netlist.ParseString(deck)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inst, err := d.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return inst
}

// runCheck vets the instance with exactly one analyzer enabled.
func runCheck(t *testing.T, inst *registers.Instance, check string, spec vet.Spec) *vet.Report {
	t.Helper()
	rep, err := vet.VetInstance("test", inst, spec, vet.Options{Enable: []string{check}})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	return rep
}

// wantDiag asserts a diagnostic with the given severity whose node, device,
// param or message contains needle.
func wantDiag(t *testing.T, rep *vet.Report, sev vet.Severity, needle string) {
	t.Helper()
	for _, d := range rep.Diagnostics {
		if d.Severity != sev {
			continue
		}
		if strings.Contains(d.Node, needle) || strings.Contains(d.Device, needle) ||
			strings.Contains(d.Param, needle) || strings.Contains(d.Message, needle) {
			return
		}
	}
	t.Errorf("no %s diagnostic matching %q in %v", sev, needle, rep.Diagnostics)
}

func wantClean(t *testing.T, rep *vet.Report) {
	t.Helper()
	if len(rep.Diagnostics) != 0 {
		t.Errorf("expected no diagnostics, got %v", rep.Diagnostics)
	}
}

func TestBuiltinCellsVetClean(t *testing.T) {
	for _, name := range []string{"tspc", "c2mos", "tgate"} {
		cell, err := registers.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := cell.Build()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := vet.VetInstance(name, inst, vet.Spec{}, vet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Diagnostics) != 0 {
			t.Errorf("%s: built-in cell not clean: %v", name, rep.Diagnostics)
		}
		if len(rep.Checks) < 8 {
			t.Errorf("%s: only %d checks ran, want ≥ 8", name, len(rep.Checks))
		}
	}
}

func TestBaseDeckVetClean(t *testing.T) {
	inst := buildInstance(t, baseDeck)
	rep, err := vet.VetInstance("base", inst, vet.Spec{}, vet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantClean(t, rep)
}

func TestFloatingNode(t *testing.T) {
	inst := buildInstance(t, baseDeck+"Cf f1 f2 5f\n")
	rep := runCheck(t, inst, "floating-node", vet.Spec{})
	wantDiag(t, rep, vet.Error, "f1")
	wantDiag(t, rep, vet.Error, "f2")
	if rep.Count(vet.Error) != 2 {
		t.Errorf("want exactly 2 errors, got %v", rep.Diagnostics)
	}
	wantClean(t, runCheck(t, buildInstance(t, baseDeck), "floating-node", vet.Spec{}))
}

func TestNoGroundPath(t *testing.T) {
	inst := buildInstance(t, baseDeck+"R2 a b 1k\n")
	rep := runCheck(t, inst, "no-ground-path", vet.Spec{})
	wantDiag(t, rep, vet.Error, "a")
	wantDiag(t, rep, vet.Error, "b")
	wantClean(t, runCheck(t, buildInstance(t, baseDeck), "no-ground-path", vet.Spec{}))
}

func TestSingleTerminal(t *testing.T) {
	inst := buildInstance(t, baseDeck+"R2 q stub 1k\n")
	rep := runCheck(t, inst, "single-terminal", vet.Spec{})
	wantDiag(t, rep, vet.Warning, "stub")
	if rep.Count(vet.Warning) != 1 {
		t.Errorf("want exactly 1 warning, got %v", rep.Diagnostics)
	}
}

func TestClockWindow(t *testing.T) {
	// High phase (9.95 ns from ramp start) plus fall overruns the period.
	bad := strings.Replace(baseDeck,
		"CLOCK(0 2.5 10n 1n 0.1n 0.1n)",
		"CLOCK(0 2.5 10n 1n 0.1n 0.1n 9.95n)", 1)
	rep := runCheck(t, buildInstance(t, bad), "clock-window", vet.Spec{})
	wantDiag(t, rep, vet.Error, "exceeds the period")

	// A ramp shorter than the fine timestep is under-resolved.
	fast := strings.Replace(baseDeck,
		"CLOCK(0 2.5 10n 1n 0.1n 0.1n)",
		"CLOCK(0 2.5 10n 1n 1p 0.1n)", 1)
	rep = runCheck(t, buildInstance(t, fast), "clock-window", vet.Spec{})
	wantDiag(t, rep, vet.Warning, "fine timestep")

	wantClean(t, runCheck(t, buildInstance(t, baseDeck), "clock-window", vet.Spec{}))
}

func TestEventOrder(t *testing.T) {
	inst := buildInstance(t, baseDeck)
	// Sweep box reaching past the active edge pushes the data lead ramp
	// before t = 0: tf unreachable.
	wide := vet.Spec{Bounds: core.Rect{MinS: 1e-12, MaxS: 12e-9, MinH: 1e-12, MaxH: 0.5e-9}}
	rep := runCheck(t, inst, "event-order", wide)
	wantDiag(t, rep, vet.Error, "before t = 0")

	// A data reference away from any rising clock edge is suspicious.
	skewed := strings.Replace(baseDeck, "DATA(11.05n", "DATA(13.4n", 1)
	rep = runCheck(t, buildInstance(t, skewed), "event-order", vet.Spec{})
	wantDiag(t, rep, vet.Warning, "not aligned")

	wantClean(t, runCheck(t, inst, "event-order", vet.Spec{}))
}

func TestOutputNode(t *testing.T) {
	// Output forced by an ideal source: clock-to-Q unobservable.
	forced := strings.Replace(baseDeck, ".out q", ".out d", 1)
	rep := runCheck(t, buildInstance(t, forced), "output-node", vet.Spec{})
	wantDiag(t, rep, vet.Warning, "ideal voltage source")

	// Output hanging on a capacitor only.
	capOnly := strings.Replace(baseDeck, ".out q", ".out qc", 1) + "Cc qc 0 10f\n"
	rep = runCheck(t, buildInstance(t, capOnly), "output-node", vet.Spec{})
	wantDiag(t, rep, vet.Warning, "capacitively coupled")

	wantClean(t, runCheck(t, buildInstance(t, baseDeck), "output-node", vet.Spec{}))
}

func TestValueSanity(t *testing.T) {
	// 25 F capacitor (dropped "f" suffix).
	rep := runCheck(t, buildInstance(t, baseDeck+"Cbig q 0 25\n"), "value-sanity", vet.Spec{})
	wantDiag(t, rep, vet.Error, "Cbig")

	// Millimetre-scale channel (dropped "u" suffix).
	wide := strings.Replace(baseDeck, "M1 q  d   s1 0 nch W=0.6u", "M1 q  d   s1 0 nch W=0.6", 1)
	rep = runCheck(t, buildInstance(t, wide), "value-sanity", vet.Spec{})
	wantDiag(t, rep, vet.Error, "M1")

	// Tera-ohm resistor.
	rep = runCheck(t, buildInstance(t, baseDeck+"Rbig q 0 5T\n"), "value-sanity", vet.Spec{})
	wantDiag(t, rep, vet.Warning, "Rbig")

	wantClean(t, runCheck(t, buildInstance(t, baseDeck), "value-sanity", vet.Spec{}))
}

func TestMPNRConfig(t *testing.T) {
	inst := buildInstance(t, baseDeck)
	// Step larger than the sweep box.
	rep := runCheck(t, inst, "mpnr-config", vet.Spec{
		Step:   2e-9,
		Bounds: core.Rect{MinS: 1e-12, MaxS: 1e-9, MinH: 1e-12, MaxH: 1e-9},
	})
	wantDiag(t, rep, vet.Error, "step")

	// Degradation fraction outside (0, 1).
	rep = runCheck(t, inst, "mpnr-config", vet.Spec{Eval: stf.Config{Degrade: 1.5}})
	wantDiag(t, rep, vet.Error, "degrade")

	// Crossing fraction outside (0, 1) on the instance.
	badCF := buildInstance(t, baseDeck)
	badCF.CrossFrac = 1.2
	rep = runCheck(t, badCF, "mpnr-config", vet.Spec{})
	wantDiag(t, rep, vet.Error, "crossfrac")

	// Declared VDD above the strongest rail makes r collide with the rail.
	badVDD := buildInstance(t, baseDeck)
	badVDD.VDD = 5.0
	rep = runCheck(t, badVDD, "mpnr-config", vet.Spec{})
	wantDiag(t, rep, vet.Error, "unreachable")

	wantClean(t, runCheck(t, inst, "mpnr-config", vet.Spec{}))
}

func TestSimWindow(t *testing.T) {
	inst := buildInstance(t, baseDeck)
	// Inverted two-phase grid.
	rep := runCheck(t, inst, "sim-window", vet.Spec{
		Eval: stf.Config{CoarseStep: 1e-12, FineStep: 5e-12},
	})
	wantDiag(t, rep, vet.Error, "finestep")

	// Calibration skew pushing the fine window before t = 0.
	rep = runCheck(t, inst, "sim-window", vet.Spec{Eval: stf.Config{CalSkew: 12e-9}})
	wantDiag(t, rep, vet.Error, "calibration fine window")

	// Calibration skew below the swept setup bound.
	rep = runCheck(t, inst, "sim-window", vet.Spec{
		Eval:   stf.Config{CalSkew: 0.5e-9},
		Bounds: core.Rect{MinS: 1e-12, MaxS: 0.9e-9, MinH: 1e-12, MaxH: 0.9e-9},
	})
	wantDiag(t, rep, vet.Warning, "calskew")

	wantClean(t, runCheck(t, inst, "sim-window", vet.Spec{}))
}

func TestChordConfig(t *testing.T) {
	inst := buildInstance(t, baseDeck)
	// Chord with no Newton iteration headroom for the fallback.
	rep := runCheck(t, inst, "chord-config", vet.Spec{
		Eval: stf.Config{Chord: true, MaxNewtonIter: 4},
	})
	wantDiag(t, rep, vet.Warning, "maxnewtoniter")

	// Contraction threshold that is no contraction at all.
	rep = runCheck(t, inst, "chord-config", vet.Spec{
		Eval: stf.Config{Chord: true, ChordContraction: 1.5},
	})
	wantDiag(t, rep, vet.Error, "chordcontraction")

	// Threshold so close to 1 the stall detector barely fires.
	rep = runCheck(t, inst, "chord-config", vet.Spec{
		Eval: stf.Config{Chord: true, ChordContraction: 0.95},
	})
	wantDiag(t, rep, vet.Warning, "chordcontraction")

	// Chord with defaults is clean; so is everything with chord off, even a
	// nonsensical threshold (the knob is inert then).
	wantClean(t, runCheck(t, inst, "chord-config", vet.Spec{Eval: stf.Config{Chord: true}}))
	wantClean(t, runCheck(t, inst, "chord-config", vet.Spec{Eval: stf.Config{ChordContraction: 1.5}}))
}

func TestSupplyRail(t *testing.T) {
	// Clock swinging above the 2.5 V rail.
	hot := strings.Replace(baseDeck, "CLOCK(0 2.5", "CLOCK(0 5", 1)
	rep := runCheck(t, buildInstance(t, hot), "supply-rail", vet.Spec{})
	wantDiag(t, rep, vet.Warning, "outside the supply rails")

	// No DC supply at all: energy measurements unavailable.
	noSupply := strings.Replace(baseDeck, "Vdd  vdd 0 DC 2.5\n", "", 1)
	noSupply = strings.Replace(noSupply, "R1 vdd q 10k", "R1 clk q 10k", 1)
	rep = runCheck(t, buildInstance(t, noSupply), "supply-rail", vet.Spec{})
	wantDiag(t, rep, vet.Info, "no DC supply")

	wantClean(t, runCheck(t, buildInstance(t, baseDeck), "supply-rail", vet.Spec{}))
}

func TestRegistrySelection(t *testing.T) {
	inst := buildInstance(t, baseDeck+"Cf f1 f2 5f\n")
	// Disable suppresses the check.
	rep, err := vet.VetInstance("t", inst, vet.Spec{}, vet.Options{
		Disable: []string{"floating-node", "no-ground-path", "single-terminal"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantClean(t, rep)
	// Unknown names are typos, not silently ignored.
	if _, err := vet.VetInstance("t", inst, vet.Spec{}, vet.Options{Disable: []string{"flaoting-node"}}); err == nil {
		t.Error("unknown check in Disable accepted")
	}
	if _, err := vet.VetInstance("t", inst, vet.Spec{}, vet.Options{Enable: []string{"nope"}}); err == nil {
		t.Error("unknown check in Enable accepted")
	}
}

func TestDefaultRegistrySize(t *testing.T) {
	reg := vet.DefaultRegistry()
	if n := len(reg.Analyzers()); n < 8 {
		t.Errorf("registry has %d analyzers, want ≥ 8", n)
	}
	names := map[string]bool{}
	for _, a := range reg.Analyzers() {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		names[a.Name] = true
	}
	for _, required := range []string{
		"floating-node", "no-ground-path", "single-terminal",
		"clock-window", "event-order", "output-node",
		"value-sanity", "mpnr-config", "sim-window", "supply-rail",
		"chord-config",
	} {
		if !names[required] {
			t.Errorf("missing analyzer %q", required)
		}
	}
}

func TestDiagnosticOrdering(t *testing.T) {
	inst := buildInstance(t, baseDeck+"Cf f1 f2 5f\nR2 q stub 1k\n")
	rep, err := vet.VetInstance("t", inst, vet.Spec{}, vet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Diagnostics); i++ {
		if rep.Diagnostics[i].Severity > rep.Diagnostics[i-1].Severity {
			t.Errorf("diagnostics not sorted errors-first: %v", rep.Diagnostics)
			break
		}
	}
	if !rep.HasErrors() {
		t.Error("expected errors")
	}
}
