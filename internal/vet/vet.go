// Package vet is a static-analysis driver for characterization setups, in
// the style of go/analysis: a registry of small, independent analyzers runs
// over a finalized circuit plus the characterization query parameters and
// returns structured diagnostics with stable check IDs.
//
// The point is throughput: every broken netlist, unreachable crossing level
// or ill-posed clock/data window that slips into a run costs a full
// transient + sensitivity trace before it is discovered. The analyzers here
// encode the preconditions of the Euler-Newton flow (paper Sections III–IV)
// so they can be enforced before any simulation is spent — by the charvet
// CLI, by the -vet pre-run gate in latchchar and surfgen, and by CI over the
// shipped example netlists.
//
// Adding an analyzer: construct an Analyzer with a stable kebab-case Name,
// a one-line Doc, and a Run function emitting Diagnostics, then register it
// (DefaultRegistry registers all built-ins). Analyzers must be pure
// functions of the Target: no simulation, no mutation, deterministic output
// order (the driver sorts diagnostics, but emit deterministically anyway so
// per-analyzer tests are stable).
package vet

import (
	"fmt"
	"sort"
	"strings"

	"latchchar/internal/circuit"
	"latchchar/internal/registers"
)

// Severity grades a diagnostic. Errors abort gated runs; warnings and infos
// are advisory.
type Severity int

const (
	// Info marks an observation that needs no action.
	Info Severity = iota
	// Warning marks a likely mistake that does not invalidate the run.
	Warning
	// Error marks a precondition violation: the characterization would
	// waste simulations or produce meaningless results.
	Error
)

// String returns the lowercase severity name used in renderers.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Info:
		return "info"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalText implements encoding.TextMarshaler for JSON output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "info":
		*s = Info
	default:
		return fmt.Errorf("vet: unknown severity %q", b)
	}
	return nil
}

// Diagnostic is one finding. Check and Severity are always set; the locus
// fields (Node, Device, Param) are set when the finding anchors to a
// specific circuit node, device instance or configuration parameter.
type Diagnostic struct {
	// Check is the stable ID of the analyzer that produced the finding.
	Check string `json:"check"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Node names the affected circuit node, when applicable.
	Node string `json:"node,omitempty"`
	// Device names the affected device instance, when applicable.
	Device string `json:"device,omitempty"`
	// Param names the affected configuration parameter, when applicable.
	Param string `json:"param,omitempty"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// Details carries machine-readable key/value context (numeric limits,
	// measured values) for tooling.
	Details map[string]string `json:"details,omitempty"`
	// File and Line anchor the finding in source, for producers whose
	// subject is code rather than a circuit (the latchlint suite renders
	// through this report type). Zero values mean "no source position".
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

// String formats the diagnostic in the one-line text form.
func (d Diagnostic) String() string {
	var sb strings.Builder
	if d.File != "" {
		fmt.Fprintf(&sb, "%s:%d: ", d.File, d.Line)
	}
	fmt.Fprintf(&sb, "%s: %s", d.Severity, d.Check)
	switch {
	case d.Node != "":
		fmt.Fprintf(&sb, ": node %q", d.Node)
	case d.Device != "":
		fmt.Fprintf(&sb, ": device %q", d.Device)
	case d.Param != "":
		fmt.Fprintf(&sb, ": param %q", d.Param)
	}
	fmt.Fprintf(&sb, ": %s", d.Message)
	return sb.String()
}

// Target is what analyzers examine: a finalized circuit, optionally the
// built register instance carrying the characterization stimulus, and the
// query parameters.
type Target struct {
	// Name labels the target in reports (cell name or netlist path).
	Name string
	// Circuit is the finalized circuit. Required.
	Circuit *circuit.Circuit
	// Inst is the built register instance. Analyzers that need the stimulus
	// (clock, data pulse, output node) skip their checks when nil.
	Inst *registers.Instance
	// Spec holds the characterization query parameters.
	Spec Spec

	// top caches the topology computation across analyzers.
	top *circuit.Topology
}

// NewTarget bundles a built instance and spec into a Target.
func NewTarget(name string, inst *registers.Instance, spec Spec) *Target {
	return &Target{Name: name, Circuit: inst.Circuit, Inst: inst, Spec: spec.Normalized()}
}

// Topology returns the target circuit's connectivity summary, computed once.
func (t *Target) Topology() *circuit.Topology {
	if t.top == nil {
		t.top = t.Circuit.Topology()
	}
	return t.top
}

// Analyzer is one independent check. Run must be a pure function of the
// target: no simulation, no mutation.
type Analyzer struct {
	// Name is the stable check ID (kebab-case); it tags every diagnostic
	// the analyzer emits and addresses it in -enable/-disable.
	Name string
	// Doc is a one-line description shown by charvet -list.
	Doc string
	// HelpURI points at the check's catalog entry (DESIGN.md anchor); it is
	// emitted as the SARIF rule helpUri so CI annotations link back to the
	// rationale.
	HelpURI string
	// Run inspects the target and returns findings.
	Run func(*Target) []Diagnostic
}

// RuleMeta is the renderer-facing description of one rule: what SARIF (and
// other structured outputs) need to describe a check independently of which
// driver produced it. Both the vet registry and the latchlint suite render
// through this type.
type RuleMeta struct {
	// ID is the stable rule/check identifier.
	ID string
	// Doc is the one-line description (the SARIF shortDescription).
	Doc string
	// HelpURI links the rule's catalog entry.
	HelpURI string
}

// RuleMetas returns the metadata for the named checks, in the given order.
// Unknown names yield a bare ID so renderers never drop a rule.
func (r *Registry) RuleMetas(names []string) []RuleMeta {
	metas := make([]RuleMeta, 0, len(names))
	for _, name := range names {
		meta := RuleMeta{ID: name}
		if a := r.Lookup(name); a != nil {
			meta.Doc = a.Doc
			meta.HelpURI = a.HelpURI
		}
		metas = append(metas, meta)
	}
	return metas
}

// Registry holds a set of analyzers.
type Registry struct {
	analyzers []*Analyzer
	byName    map[string]*Analyzer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Analyzer)}
}

// Register adds an analyzer; duplicate names panic (programming error).
func (r *Registry) Register(a *Analyzer) {
	if a.Name == "" || a.Run == nil {
		panic("vet: analyzer needs a name and a Run function")
	}
	if _, dup := r.byName[a.Name]; dup {
		panic(fmt.Sprintf("vet: duplicate analyzer %q", a.Name))
	}
	r.analyzers = append(r.analyzers, a)
	r.byName[a.Name] = a
}

// Analyzers returns the registered analyzers in registration order.
func (r *Registry) Analyzers() []*Analyzer { return r.analyzers }

// Lookup returns the analyzer with the given name, or nil.
func (r *Registry) Lookup(name string) *Analyzer { return r.byName[name] }

// DefaultRegistry returns a registry with every built-in analyzer: the three
// topology checks ported from circuit.Lint plus the stimulus-, value- and
// configuration-level checks.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register(analyzerFloatingNode)
	r.Register(analyzerNoGroundPath)
	r.Register(analyzerSingleTerminal)
	r.Register(analyzerClockWindow)
	r.Register(analyzerEventOrder)
	r.Register(analyzerOutputNode)
	r.Register(analyzerValueSanity)
	r.Register(analyzerMPNRConfig)
	r.Register(analyzerSimWindow)
	r.Register(analyzerChordConfig)
	r.Register(analyzerSupplyRail)
	return r
}

// Options select which checks run.
type Options struct {
	// Enable, when non-empty, restricts the run to exactly these checks.
	Enable []string
	// Disable removes checks from the (possibly restricted) set.
	Disable []string
}

// Report is the outcome of one driver run over one target.
type Report struct {
	// Tool names the producer in rendered output (default "charvet"). Not
	// serialized directly: renderers place it in their own envelopes.
	Tool string `json:"-"`
	// Target labels the vetted setup.
	Target string `json:"target"`
	// Checks lists the analyzer names that ran.
	Checks []string `json:"checks"`
	// Diagnostics are the findings, sorted by severity (errors first), then
	// check ID, then locus.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// HasErrors reports whether any Error-severity finding is present.
func (rep *Report) HasErrors() bool { return rep.Count(Error) > 0 }

// Count returns the number of findings at the given severity.
func (rep *Report) Count(s Severity) int {
	n := 0
	for _, d := range rep.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Vet runs the selected analyzers over the target. Unknown check names in
// the options are reported as an error so typos never silently disable a
// gate.
func (r *Registry) Vet(t *Target, opts Options) (*Report, error) {
	if t == nil || t.Circuit == nil {
		return nil, fmt.Errorf("vet: nil target or circuit")
	}
	if !t.Circuit.Finalized() {
		return nil, fmt.Errorf("vet: circuit not finalized")
	}
	for _, name := range append(append([]string(nil), opts.Enable...), opts.Disable...) {
		if r.Lookup(name) == nil {
			return nil, fmt.Errorf("vet: unknown check %q", name)
		}
	}
	selected := func(name string) bool {
		if len(opts.Enable) > 0 {
			ok := false
			for _, e := range opts.Enable {
				if e == name {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		for _, d := range opts.Disable {
			if d == name {
				return false
			}
		}
		return true
	}
	t.Spec = t.Spec.Normalized()
	rep := &Report{Target: t.Name}
	for _, a := range r.analyzers {
		if !selected(a.Name) {
			continue
		}
		rep.Checks = append(rep.Checks, a.Name)
		for _, d := range a.Run(t) {
			d.Check = a.Name
			rep.Diagnostics = append(rep.Diagnostics, d)
		}
	}
	sort.SliceStable(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity // errors first
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Message < b.Message
	})
	return rep, nil
}

// VetInstance runs the default registry over a built instance.
func VetInstance(name string, inst *registers.Instance, spec Spec, opts Options) (*Report, error) {
	return DefaultRegistry().Vet(NewTarget(name, inst, spec), opts)
}
