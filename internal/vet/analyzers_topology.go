package vet

import "strconv"

// The three topology analyzers ported from circuit.Lint. They share the
// Topology computation cached on the Target.

// analyzerFloatingNode flags nodes no conductive device terminal touches at
// all: only capacitors (or nothing) connect to them, so their DC level is
// set solely by the gmin leak and the DC operating point is meaningless.
var analyzerFloatingNode = &Analyzer{
	Name:    "floating-node",
	Doc:     "node touched only by non-conductive devices (DC level set by gmin alone)",
	HelpURI: "DESIGN.md#vet-floating-node",
	Run: func(t *Target) []Diagnostic {
		top := t.Topology()
		var out []Diagnostic
		for i := 0; i < top.NumNodes(); i++ {
			if top.ConductiveDegree(i) == 0 && top.TerminalCount(i) > 0 {
				out = append(out, Diagnostic{
					Severity: Error,
					Node:     top.NodeName(i),
					Message:  "no conductive device terminal touches this node; its DC level is set only by the gmin leak",
					Details: map[string]string{
						"terminals": strconv.Itoa(top.TerminalCount(i)),
					},
				})
			}
		}
		return out
	},
}

// analyzerNoGroundPath flags nodes whose conductive component does not
// contain ground. MOSFET channels count as conductive regardless of bias, so
// dynamic storage nodes behind pass devices do not trigger this.
var analyzerNoGroundPath = &Analyzer{
	Name:    "no-ground-path",
	Doc:     "node with no conductive path to ground (missing connection or name typo)",
	HelpURI: "DESIGN.md#vet-no-ground-path",
	Run: func(t *Target) []Diagnostic {
		top := t.Topology()
		var out []Diagnostic
		for i := 0; i < top.NumNodes(); i++ {
			if !top.ReachesGround(i) {
				out = append(out, Diagnostic{
					Severity: Error,
					Node:     top.NodeName(i),
					Message:  "no conductive path to ground; usually a missing transistor connection or a node name typo",
				})
			}
		}
		return out
	},
}

// analyzerSingleTerminal flags nodes exactly one device terminal touches —
// almost always a misspelled node name splitting a net in two.
var analyzerSingleTerminal = &Analyzer{
	Name:    "single-terminal",
	Doc:     "node touched by exactly one device terminal (dangling net, likely typo)",
	HelpURI: "DESIGN.md#vet-single-terminal",
	Run: func(t *Target) []Diagnostic {
		top := t.Topology()
		var out []Diagnostic
		for i := 0; i < top.NumNodes(); i++ {
			if top.TerminalCount(i) == 1 {
				out = append(out, Diagnostic{
					Severity: Warning,
					Node:     top.NodeName(i),
					Message:  "only one device terminal touches this node (typo?)",
				})
			}
		}
		return out
	},
}
