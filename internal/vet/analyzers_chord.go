package vet

import "fmt"

// analyzerChordConfig validates the chord/bypass fast-path setup (DESIGN
// §10). Chord iterations deliberately waste Newton iterations on stalls
// before falling back to a full factorization, so they need iteration
// headroom; and the contraction threshold θ must be a genuine contraction
// rate — θ ≥ 1 would keep reusing a factorization through a non-converging
// iteration until MaxNewtonIter runs out.
var analyzerChordConfig = &Analyzer{
	Name:    "chord-config",
	Doc:     "chord fast-path config sane: iteration headroom, contraction threshold a real contraction",
	HelpURI: "DESIGN.md#vet-chord-config",
	Run: func(t *Target) []Diagnostic {
		cfg := t.Spec.Eval
		if !cfg.Chord {
			return nil
		}
		var out []Diagnostic
		if cfg.MaxNewtonIter < 8 {
			out = append(out, Diagnostic{
				Severity: Warning,
				Param:    "maxnewtoniter",
				Message: fmt.Sprintf("chord mode with MaxNewtonIter = %d leaves no iteration headroom: stalled chord iterations spend budget before the full-Newton fallback converges (want ≥ 8)",
					cfg.MaxNewtonIter),
				Details: map[string]string{"max_newton_iter": fmt.Sprint(cfg.MaxNewtonIter)},
			})
		}
		switch {
		case cfg.ChordContraction >= 1:
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "chordcontraction",
				Message: fmt.Sprintf("chord contraction threshold %.4g is not a contraction: θ ≥ 1 accepts non-converging chord iterations until the Newton budget runs out",
					cfg.ChordContraction),
			})
		case cfg.ChordContraction > 0.9:
			out = append(out, Diagnostic{
				Severity: Warning,
				Param:    "chordcontraction",
				Message: fmt.Sprintf("chord contraction threshold %.4g barely rejects stalls; rates this close to 1 ride a stale Jacobian through many wasted iterations (typical: 0.5)",
					cfg.ChordContraction),
			})
		}
		return out
	},
}
