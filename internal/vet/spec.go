package vet

import (
	"latchchar/internal/core"
	"latchchar/internal/stf"
)

// Spec carries the characterization query parameters the analyzers check
// the circuit and stimulus against. It mirrors the knobs of a latchchar run:
// the evaluator configuration (integration steps, skew bounds, degradation)
// and the continuation setup (Euler step, sweep box, point budget).
type Spec struct {
	// Eval is the state-transition evaluator configuration.
	Eval stf.Config
	// Step is the Euler contour step length α in seconds (default 5 ps,
	// matching core.TraceOptions).
	Step float64
	// Bounds is the traced (τs, τh) sweep box. The zero Rect derives the
	// default box [1 ps, MaxSetupSkew]² used by latchchar.Characterize.
	Bounds core.Rect
	// MaxPoints is the contour point budget per trace direction (default 40).
	MaxPoints int
}

// DefaultSpec returns the spec of a default latchchar run.
func DefaultSpec() Spec { return Spec{}.Normalized() }

// Normalized fills every unset field with the defaults the characterization
// flow itself would apply, so analyzers always see concrete values.
func (s Spec) Normalized() Spec {
	s.Eval = s.Eval.WithDefaults()
	if s.Step <= 0 {
		s.Step = 5e-12
	}
	if (s.Bounds == core.Rect{}) {
		s.Bounds = core.Rect{
			MinS: 1e-12, MaxS: s.Eval.MaxSetupSkew,
			MinH: 1e-12, MaxH: s.Eval.MaxSetupSkew,
		}
	}
	if s.MaxPoints <= 0 {
		s.MaxPoints = 40
	}
	return s
}
