package vet

import (
	"fmt"

	"latchchar/internal/device"
)

// Magnitude fences for netlist value sanity. On-chip characterization decks
// live in femtofarads, sub-micron channels and kilo-ohm-scale resistors; a
// value orders of magnitude outside those ranges is almost always a dropped
// SI suffix ("25" instead of "25f").
const (
	capErrorFarads  = 1e-7  // ≥ 0.1 µF: certainly a unit typo in a latch deck
	capWarnFarads   = 1e-11 // ≥ 10 pF: suspiciously large for an internal node
	resWarnLowOhms  = 1e-2
	resWarnHighOhms = 1e9
	mosErrorMeters  = 1e-3 // ≥ 1 mm channel dimension: dropped µ/n suffix
	mosWarnMeters   = 1e-4 // ≥ 100 µm: suspicious
	vddWarnVolts    = 50.0
)

// analyzerValueSanity flags component values whose magnitude betrays a unit
// typo: farad-scale capacitors, millimetre-scale MOSFET channels, extreme
// resistances and implausible supply voltages.
var analyzerValueSanity = &Analyzer{
	Name:    "value-sanity",
	Doc:     "component values inside plausible magnitude ranges (unit-typo detection)",
	HelpURI: "DESIGN.md#vet-value-sanity",
	Run: func(t *Target) []Diagnostic {
		var out []Diagnostic
		for _, d := range t.Circuit.Devices() {
			switch dev := d.(type) {
			case *device.Capacitor:
				switch {
				case dev.Farads >= capErrorFarads:
					out = append(out, Diagnostic{
						Severity: Error,
						Device:   dev.Name(),
						Message: fmt.Sprintf("capacitance %.4g F is farad-scale; on-chip load caps are fF–pF (dropped suffix?)",
							dev.Farads),
						Details: map[string]string{"farads": fmt.Sprintf("%g", dev.Farads)},
					})
				case dev.Farads >= capWarnFarads:
					out = append(out, Diagnostic{
						Severity: Warning,
						Device:   dev.Name(),
						Message: fmt.Sprintf("capacitance %.4g F is unusually large for a latch internal node",
							dev.Farads),
						Details: map[string]string{"farads": fmt.Sprintf("%g", dev.Farads)},
					})
				}
			case *device.Resistor:
				if dev.Ohms < resWarnLowOhms || dev.Ohms > resWarnHighOhms {
					out = append(out, Diagnostic{
						Severity: Warning,
						Device:   dev.Name(),
						Message: fmt.Sprintf("resistance %.4g Ω is outside the plausible range [%.0g, %.0g] Ω",
							dev.Ohms, resWarnLowOhms, resWarnHighOhms),
						Details: map[string]string{"ohms": fmt.Sprintf("%g", dev.Ohms)},
					})
				}
			case *device.MOSFET:
				switch {
				case dev.W >= mosErrorMeters || dev.L >= mosErrorMeters:
					out = append(out, Diagnostic{
						Severity: Error,
						Device:   dev.Name(),
						Message: fmt.Sprintf("channel W=%.4g m, L=%.4g m is millimetre-scale; widths are usually µm (dropped suffix?)",
							dev.W, dev.L),
						Details: map[string]string{"w": fmt.Sprintf("%g", dev.W), "l": fmt.Sprintf("%g", dev.L)},
					})
				case dev.W >= mosWarnMeters || dev.L >= mosWarnMeters:
					out = append(out, Diagnostic{
						Severity: Warning,
						Device:   dev.Name(),
						Message: fmt.Sprintf("channel W=%.4g m, L=%.4g m is over 100 µm; unusual for a latch device",
							dev.W, dev.L),
					})
				default:
					if ratio := dev.W / dev.L; ratio > 1e4 || ratio < 1e-4 {
						out = append(out, Diagnostic{
							Severity: Warning,
							Device:   dev.Name(),
							Message:  fmt.Sprintf("aspect ratio W/L = %.4g is extreme; check W and L", ratio),
						})
					}
				}
			}
		}
		if t.Inst != nil {
			switch {
			case t.Inst.VDD <= 0:
				out = append(out, Diagnostic{
					Severity: Error,
					Param:    "vdd",
					Message:  fmt.Sprintf("declared VDD %s is not positive", volts(t.Inst.VDD)),
				})
			case t.Inst.VDD > vddWarnVolts:
				out = append(out, Diagnostic{
					Severity: Warning,
					Param:    "vdd",
					Message:  fmt.Sprintf("declared VDD %s is implausibly high for a latch deck", volts(t.Inst.VDD)),
				})
			}
		}
		return out
	},
}
