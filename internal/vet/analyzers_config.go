package vet

import (
	"fmt"
	"math"
)

// analyzerMPNRConfig validates the continuation setup: the Euler step α
// against the sweep box, the degradation fraction, and the crossing level r
// against the supply rails — the preconditions of the MPNR corrector and
// Euler-Newton tracer (paper Sections IIIC–IIIE).
var analyzerMPNRConfig = &Analyzer{
	Name:    "mpnr-config",
	Doc:     "continuation config sane: step α vs. sweep box, degradation in (0,1), crossing level r between rails",
	HelpURI: "DESIGN.md#vet-mpnr-config",
	Run: func(t *Target) []Diagnostic {
		var out []Diagnostic
		box := t.Spec.Bounds
		if box.MinS >= box.MaxS || box.MinH >= box.MaxH {
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "bounds",
				Message: fmt.Sprintf("sweep box is degenerate: τs ∈ [%s, %s], τh ∈ [%s, %s]",
					ps(box.MinS), ps(box.MaxS), ps(box.MinH), ps(box.MaxH)),
			})
		} else {
			minDim := math.Min(box.MaxS-box.MinS, box.MaxH-box.MinH)
			switch {
			case t.Spec.Step >= minDim:
				out = append(out, Diagnostic{
					Severity: Error,
					Param:    "step",
					Message: fmt.Sprintf("contour step α = %s is not smaller than the sweep box (min dimension %s); the first Euler step would leave the domain",
						ps(t.Spec.Step), ps(minDim)),
					Details: map[string]string{"alpha": ps(t.Spec.Step), "box_min_dim": ps(minDim)},
				})
			case t.Spec.Step > minDim/4:
				out = append(out, Diagnostic{
					Severity: Warning,
					Param:    "step",
					Message: fmt.Sprintf("contour step α = %s exceeds a quarter of the sweep box (min dimension %s); the trace will be very coarse",
						ps(t.Spec.Step), ps(minDim)),
				})
			}
		}
		if box.MinS < 0 || box.MinH < 0 {
			out = append(out, Diagnostic{
				Severity: Warning,
				Param:    "bounds",
				Message:  "sweep box extends to negative skews; the data pulse degenerates when τs + τh ≤ 0",
			})
		}
		if t.Spec.MaxPoints < 2 {
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "points",
				Message:  fmt.Sprintf("contour point budget %d is too small to trace a curve", t.Spec.MaxPoints),
			})
		}
		if deg := t.Spec.Eval.Degrade; deg >= 1 {
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "degrade",
				Message: fmt.Sprintf("clock-to-Q degradation fraction %.4g must lie in (0, 1); at 1 the measurement level never recovers",
					deg),
			})
		}
		if t.Inst != nil {
			cf := t.Inst.CrossFrac
			if cf <= 0 || cf >= 1 {
				out = append(out, Diagnostic{
					Severity: Error,
					Param:    "crossfrac",
					Message:  fmt.Sprintf("crossing fraction %.4g must lie strictly inside (0, 1)", cf),
				})
			} else if lo, hi, ok := supplyRails(t); ok && hi > lo {
				// r as the calibration computes it (stf.calibrate).
				r := cf * t.Inst.VDD
				if !t.Inst.OutputRising {
					r = (1 - cf) * t.Inst.VDD
				}
				if r >= hi-railTol || r <= lo+railTol {
					out = append(out, Diagnostic{
						Severity: Error,
						Param:    "crossfrac",
						Message: fmt.Sprintf("crossing level r = %s is unreachable: the output is bounded by the supply rails [%s, %s]",
							volts(r), volts(lo), volts(hi)),
						Details: map[string]string{"r": volts(r), "rail_lo": volts(lo), "rail_hi": volts(hi)},
					})
				}
			}
		}
		return out
	},
}

// analyzerSimWindow validates the two-phase integration windows: step
// ordering, clock resolvability, calibration skew coverage and the
// post-edge hunt window.
var analyzerSimWindow = &Analyzer{
	Name:    "sim-window",
	Doc:     "integration windows sane: step ordering, calibration skew, post-edge window",
	HelpURI: "DESIGN.md#vet-sim-window",
	Run: func(t *Target) []Diagnostic {
		cfg := t.Spec.Eval
		var out []Diagnostic
		if cfg.FineStep > cfg.CoarseStep {
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "finestep",
				Message: fmt.Sprintf("fine step %s exceeds the coarse step %s; the two-phase grid is inverted",
					ps(cfg.FineStep), ps(cfg.CoarseStep)),
			})
		}
		if cfg.CalSkew < t.Spec.Bounds.MaxS {
			out = append(out, Diagnostic{
				Severity: Warning,
				Param:    "calskew",
				Message: fmt.Sprintf("calibration skew %s is smaller than the max swept setup skew %s; the characteristic delay may not reflect ample-skew behavior",
					ps(cfg.CalSkew), ps(t.Spec.Bounds.MaxS)),
			})
		}
		if cfg.PostWindow < 10*cfg.FineStep {
			out = append(out, Diagnostic{
				Severity: Warning,
				Param:    "postwindow",
				Message: fmt.Sprintf("post-edge window %s is under 10 fine steps; the crossing hunt may run out of samples",
					ps(cfg.PostWindow)),
			})
		}
		if t.Inst != nil {
			ck := t.Inst.Clock
			if ck.Period > 0 && cfg.CoarseStep >= ck.Period/2 {
				out = append(out, Diagnostic{
					Severity: Warning,
					Param:    "coarsestep",
					Message: fmt.Sprintf("coarse step %s cannot resolve the clock period %s",
						ps(cfg.CoarseStep), ps(ck.Period)),
				})
			}
			// The calibration transient needs its fine window to start after
			// t = 0 (stf.calibrate errors out otherwise; catch it statically).
			if start := t.Inst.Edge50 - cfg.CalSkew - ck.Rise/2 - cfg.FineMargin; start <= 0 {
				out = append(out, Diagnostic{
					Severity: Error,
					Param:    "calskew",
					Message: fmt.Sprintf("calibration fine window starts at %s, before t = 0; reduce CalSkew or delay the active edge (at %s)",
						ps(start), ps(t.Inst.Edge50)),
					Details: map[string]string{"fine_start": ps(start), "edge50": ps(t.Inst.Edge50)},
				})
			}
		}
		return out
	},
}
