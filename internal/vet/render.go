package vet

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders the report in the one-line-per-finding form used on
// stderr by the CLI gates. Clean reports print nothing.
func (rep *Report) WriteText(w io.Writer) error {
	for _, d := range rep.Diagnostics {
		prefix := ""
		if rep.Target != "" {
			prefix = rep.Target + ": "
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", prefix, d); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the stable machine-readable envelope of a report.
type jsonReport struct {
	Tool        string       `json:"tool"`
	Version     int          `json:"version"`
	Target      string       `json:"target"`
	Checks      []string     `json:"checks"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// toolName is the producer label in rendered envelopes.
func (rep *Report) toolName() string {
	if rep.Tool != "" {
		return rep.Tool
	}
	return "charvet"
}

// WriteJSON renders the report as an indented JSON object with a stable
// shape: tool/version header, the checks that ran, severity counts and the
// sorted diagnostics.
func (rep *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		Tool:        rep.toolName(),
		Version:     1,
		Target:      rep.Target,
		Checks:      rep.Checks,
		Errors:      rep.Count(Error),
		Warnings:    rep.Count(Warning),
		Diagnostics: rep.Diagnostics,
	}
	if out.Diagnostics == nil {
		out.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF-lite structures: the subset of SARIF 2.1.0 that CI annotators
// consume (tool driver with rules, results with ruleId/level/message and a
// logical location).
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription sarifMessage      `json:"shortDescription"`
	HelpURI          string            `json:"helpUri,omitempty"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation *sarifPhysicalLocation `json:"physicalLocation,omitempty"`
	LogicalLocations []sarifLogicalLocation `json:"logicalLocations,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifLogicalLocation struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// sarifLevel maps severities to SARIF levels.
func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// WriteSARIF renders the report as a SARIF-lite 2.1.0 log, with one rule
// per entry of rules (full metadata: shortDescription plus helpUri) and one
// result per diagnostic. Diagnostics carrying a source position emit a
// physicalLocation, circuit-anchored ones a logicalLocation — the shapes CI
// annotators consume.
func (rep *Report) WriteSARIF(w io.Writer, rules []RuleMeta) error {
	run := sarifRun{Results: []sarifResult{}}
	run.Tool.Driver.Name = rep.toolName()
	for _, meta := range rules {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               meta.ID,
			ShortDescription: sarifMessage{Text: meta.Doc},
			HelpURI:          meta.HelpURI,
		})
	}
	for _, d := range rep.Diagnostics {
		res := sarifResult{
			RuleID:  d.Check,
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: d.Message},
		}
		switch {
		case d.File != "":
			res.Locations = []sarifLocation{{PhysicalLocation: &sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: d.File},
				Region:           &sarifRegion{StartLine: d.Line},
			}}}
		case d.Node != "":
			res.Locations = locations(d.Node, "node")
		case d.Device != "":
			res.Locations = locations(d.Device, "member")
		case d.Param != "":
			res.Locations = locations(d.Param, "parameter")
		}
		run.Results = append(run.Results, res)
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func locations(name, kind string) []sarifLocation {
	return []sarifLocation{{LogicalLocations: []sarifLogicalLocation{{Name: name, Kind: kind}}}}
}
