package vet_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"latchchar/internal/netlist"
	"latchchar/internal/vet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestBrokenTSPCGolden vets the deliberately broken TSPC deck in testdata and
// compares the full JSON report byte-for-byte against the golden file. The
// deck plants one defect per analyzer family (see the deck header comment);
// regenerate with: go test ./internal/vet -run Golden -update
func TestBrokenTSPCGolden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "broken_tspc.cir"))
	if err != nil {
		t.Fatal(err)
	}
	deck, err := netlist.ParseString(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := deck.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := vet.VetInstance("broken_tspc", inst, vet.Spec{}, vet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasErrors() {
		t.Fatal("broken deck produced no error findings")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "broken_tspc.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON report differs from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
