package vet

import (
	"fmt"
	"math"

	"latchchar/internal/circuit"
	"latchchar/internal/device"
	"latchchar/internal/wave"
)

// ps formats a time in picoseconds for diagnostic messages and details.
func ps(sec float64) string { return fmt.Sprintf("%.4g ps", sec*1e12) }

// volts formats a voltage for diagnostic messages and details.
func volts(v float64) string { return fmt.Sprintf("%.4g V", v) }

// railTol is the slack applied when comparing voltages against supply rails.
const railTol = 1e-9

// supplyRails scans the instance's devices for DC supply sources and returns
// the spanned rail interval [lo, hi] including ground. ok is false when no
// DC supply source exists, in which case rail-relative checks are skipped.
func supplyRails(t *Target) (lo, hi float64, ok bool) {
	if t.Inst == nil {
		return 0, 0, false
	}
	lo, hi = 0, 0
	for _, d := range t.Circuit.Devices() {
		vs, isSrc := d.(*device.VSource)
		if !isSrc || vs.Role != device.RoleSupply {
			continue
		}
		dc, isDC := vs.W.(wave.DC)
		if !isDC {
			continue
		}
		lo = math.Min(lo, float64(dc))
		hi = math.Max(hi, float64(dc))
		ok = true
	}
	return lo, hi, ok
}

// analyzerClockWindow validates the primary clock waveform: edges must be
// monotone ramps of positive duration that the fine integration step can
// resolve, phases must fit the period, and the first ramp must not precede
// the simulation start.
var analyzerClockWindow = &Analyzer{
	Name:    "clock-window",
	Doc:     "clock edges inside the simulation window, monotone ramps vs. the min timestep",
	HelpURI: "DESIGN.md#vet-clock-window",
	Run: func(t *Target) []Diagnostic {
		if t.Inst == nil {
			return nil
		}
		ck := t.Inst.Clock
		if ck.Period == 0 && ck.High == ck.Low {
			return []Diagnostic{{
				Severity: Warning,
				Param:    "clock",
				Message:  "no primary clock waveform identified on the instance; clock checks skipped",
			}}
		}
		var out []Diagnostic
		if ck.Period <= 0 {
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "clock.period",
				Message:  fmt.Sprintf("clock period must be positive, got %s", ps(ck.Period)),
			})
		}
		if ck.Rise <= 0 || ck.Fall <= 0 {
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "clock.rise/fall",
				Message: fmt.Sprintf("clock ramps must have positive duration for a monotone edge, got rise %s, fall %s",
					ps(ck.Rise), ps(ck.Fall)),
			})
		}
		fine := t.Spec.Eval.FineStep
		if ck.Rise > 0 && ck.Rise < fine {
			out = append(out, Diagnostic{
				Severity: Warning,
				Param:    "clock.rise",
				Message: fmt.Sprintf("clock rise %s is shorter than the fine timestep %s; the integrator may step over the edge",
					ps(ck.Rise), ps(fine)),
				Details: map[string]string{"rise": ps(ck.Rise), "fine_step": ps(fine)},
			})
		}
		if ck.Delay < 0 {
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "clock.delay",
				Message:  fmt.Sprintf("first clock ramp begins at %s, before the simulation start", ps(ck.Delay)),
			})
		}
		if ck.Period > 0 {
			width := ck.Width
			if width == 0 {
				width = ck.Period / 2
			}
			if width < ck.Rise {
				out = append(out, Diagnostic{
					Severity: Error,
					Param:    "clock.width",
					Message: fmt.Sprintf("clock fall begins at %s after ramp start, before the %s rise completes",
						ps(width), ps(ck.Rise)),
				})
			}
			if width+ck.Fall > ck.Period {
				out = append(out, Diagnostic{
					Severity: Error,
					Param:    "clock.width",
					Message: fmt.Sprintf("high phase %s plus fall %s exceeds the period %s; adjacent edges overlap",
						ps(width), ps(ck.Fall), ps(ck.Period)),
				})
			}
		}
		return out
	},
}

// analyzerEventOrder validates the data/clock event ordering against the
// (τs, τh) sweep box: the data pulse must reference a clock edge, and at the
// extreme skews of the box the pulse must stay inside the simulated window,
// otherwise the crossing time tf of eq. (4) is unreachable.
var analyzerEventOrder = &Analyzer{
	Name:    "event-order",
	Doc:     "data/clock event ordering consistent with the (τs, τh) sweep box",
	HelpURI: "DESIGN.md#vet-event-order",
	Run: func(t *Target) []Diagnostic {
		if t.Inst == nil || t.Inst.Data == nil {
			return nil
		}
		dp := t.Inst.Data
		ck := t.Inst.Clock
		box := t.Spec.Bounds
		var out []Diagnostic
		if ck.Period > 0 {
			// The data pulse's 50% reference should coincide with a rising
			// clock edge; a mismatch means the skews are measured against
			// nothing physical.
			k := math.Round((dp.Edge50 - ck.Delay - ck.Rise/2) / ck.Period)
			tol := math.Max(ck.Rise, 1e-12)
			if k < 0 || math.Abs(ck.Edge50(int(k))-dp.Edge50) > tol {
				out = append(out, Diagnostic{
					Severity: Warning,
					Param:    "data.edge50",
					Message: fmt.Sprintf("data reference %s is not aligned with any rising clock edge (nearest edge %s)",
						ps(dp.Edge50), ps(ck.Edge50(int(math.Max(k, 0))))),
					Details: map[string]string{"edge50": ps(dp.Edge50)},
				})
			}
		}
		if start := dp.Edge50 - box.MaxS - dp.Rise/2; start <= 0 {
			out = append(out, Diagnostic{
				Severity: Error,
				Param:    "bounds.maxS",
				Message: fmt.Sprintf("max setup skew %s pushes the data leading ramp to start at %s, before t = 0; the crossing time tf is unreachable there",
					ps(box.MaxS), ps(start)),
				Details: map[string]string{"support_start": ps(start), "max_setup": ps(box.MaxS)},
			})
		}
		if ck.Period > 0 {
			if end := dp.Edge50 + box.MaxH + dp.Fall/2; end >= dp.Edge50+ck.Period {
				out = append(out, Diagnostic{
					Severity: Warning,
					Param:    "bounds.maxH",
					Message: fmt.Sprintf("max hold skew %s pushes the data trailing ramp past the next clock edge at %s",
						ps(box.MaxH), ps(dp.Edge50+ck.Period)),
				})
			}
		}
		return out
	},
}

// analyzerOutputNode validates the monitored output (the paper's c-vector):
// it must select an existing node voltage that devices actually drive.
var analyzerOutputNode = &Analyzer{
	Name:    "output-node",
	Doc:     "monitored output node present and driven",
	HelpURI: "DESIGN.md#vet-output-node",
	Run: func(t *Target) []Diagnostic {
		if t.Inst == nil {
			return nil
		}
		out := t.Inst.Out
		if out == circuit.Ground {
			return []Diagnostic{{
				Severity: Error,
				Param:    "out",
				Message:  "monitored output is ground; h(τs, τh) would be identically −r",
			}}
		}
		if int(out) >= t.Circuit.NumNodes() {
			return []Diagnostic{{
				Severity: Error,
				Param:    "out",
				Message:  fmt.Sprintf("monitored output %s is a branch current, not a node voltage", t.Circuit.NodeName(out)),
			}}
		}
		top := t.Topology()
		name := t.Circuit.NodeName(out)
		var diags []Diagnostic
		if top.TerminalCount(int(out)) == 0 {
			return []Diagnostic{{
				Severity: Error,
				Node:     name,
				Message:  "monitored output node is not connected to any device",
			}}
		}
		if top.ConductiveDegree(int(out)) == 0 {
			diags = append(diags, Diagnostic{
				Severity: Warning,
				Node:     name,
				Message:  "monitored output node is only capacitively coupled; no device drives it conductively",
			})
		}
		for _, d := range t.Circuit.Devices() {
			vs, ok := d.(*device.VSource)
			if !ok {
				continue
			}
			if vs.P == out || vs.N == out {
				diags = append(diags, Diagnostic{
					Severity: Warning,
					Node:     name,
					Device:   vs.Name(),
					Message:  "monitored output node is forced by an ideal voltage source; the clock-to-Q transition is not observable",
				})
			}
		}
		return diags
	},
}

// analyzerSupplyRail cross-checks the declared rails against the stimulus:
// a supply source should exist for energy metrics, and the clock and data
// waveforms should swing inside the supply rails.
var analyzerSupplyRail = &Analyzer{
	Name:    "supply-rail",
	Doc:     "supply source present; clock and data levels inside the rails",
	HelpURI: "DESIGN.md#vet-supply-rail",
	Run: func(t *Target) []Diagnostic {
		if t.Inst == nil {
			return nil
		}
		lo, hi, ok := supplyRails(t)
		var out []Diagnostic
		if !ok {
			out = append(out, Diagnostic{
				Severity: Info,
				Param:    "supply",
				Message:  "no DC supply source identified; supply-energy measurements will be unavailable",
			})
			return out
		}
		inRange := func(v float64) bool { return v >= lo-railTol && v <= hi+railTol }
		ck := t.Inst.Clock
		if !(ck.Period == 0 && ck.High == ck.Low) {
			if !inRange(ck.Low) || !inRange(ck.High) {
				out = append(out, Diagnostic{
					Severity: Warning,
					Param:    "clock.levels",
					Message: fmt.Sprintf("clock swings %s to %s, outside the supply rails [%s, %s]",
						volts(ck.Low), volts(ck.High), volts(lo), volts(hi)),
				})
			}
		}
		if dp := t.Inst.Data; dp != nil {
			if !inRange(dp.Rest) || !inRange(dp.Active) {
				out = append(out, Diagnostic{
					Severity: Warning,
					Param:    "data.levels",
					Message: fmt.Sprintf("data pulse swings %s to %s, outside the supply rails [%s, %s]",
						volts(dp.Rest), volts(dp.Active), volts(lo), volts(hi)),
				})
			}
		}
		if t.Inst.VDD > hi+railTol {
			out = append(out, Diagnostic{
				Severity: Warning,
				Param:    "vdd",
				Message: fmt.Sprintf("declared VDD %s exceeds the strongest supply rail %s",
					volts(t.Inst.VDD), volts(hi)),
			})
		}
		return out
	},
}
