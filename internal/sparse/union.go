package sparse

// UnionPattern builds a CSR matrix whose sparsity pattern is the union of
// the patterns of a and b (values initialized to zero), together with index
// maps: mapA[k] is the position in the union's Val of a's k-th stored entry,
// and likewise mapB. It is used to form Jacobian combinations
// J = α·C + β·G without re-assembling either operand.
func UnionPattern(a, b *CSR) (u *CSR, mapA, mapB []int) {
	if a.N != b.N {
		panic("sparse: UnionPattern dimension mismatch")
	}
	n := a.N
	u = &CSR{N: n, RowPtr: make([]int, n+1)}
	mapA = make([]int, a.NNZ())
	mapB = make([]int, b.NNZ())
	// First pass: count union nnz per row via merge.
	for i := 0; i < n; i++ {
		ka, ea := a.RowPtr[i], a.RowPtr[i+1]
		kb, eb := b.RowPtr[i], b.RowPtr[i+1]
		count := 0
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && a.Col[ka] < b.Col[kb]):
				ka++
			case ka >= ea || b.Col[kb] < a.Col[ka]:
				kb++
			default:
				ka++
				kb++
			}
			count++
		}
		u.RowPtr[i+1] = u.RowPtr[i] + count
	}
	nnz := u.RowPtr[n]
	u.Col = make([]int, nnz)
	u.Val = make([]float64, nnz)
	// Second pass: fill columns and index maps.
	for i := 0; i < n; i++ {
		ka, ea := a.RowPtr[i], a.RowPtr[i+1]
		kb, eb := b.RowPtr[i], b.RowPtr[i+1]
		ku := u.RowPtr[i]
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && a.Col[ka] < b.Col[kb]):
				u.Col[ku] = a.Col[ka]
				mapA[ka] = ku
				ka++
			case ka >= ea || b.Col[kb] < a.Col[ka]:
				u.Col[ku] = b.Col[kb]
				mapB[kb] = ku
				kb++
			default:
				u.Col[ku] = a.Col[ka]
				mapA[ka] = ku
				mapB[kb] = ku
				ka++
				kb++
			}
			ku++
		}
	}
	return u, mapA, mapB
}

// Combine sets u.Val = α·a.Val (scattered through mapA) + β·b.Val
// (scattered through mapB). u, mapA and mapB must come from UnionPattern of
// matrices with the same patterns as a and b.
func Combine(u *CSR, alpha float64, a *CSR, mapA []int, beta float64, b *CSR, mapB []int) {
	if len(mapA) != a.NNZ() || len(mapB) != b.NNZ() {
		panic("sparse: Combine map length mismatch")
	}
	u.ZeroVals()
	for k, pos := range mapA {
		u.Val[pos] += alpha * a.Val[k]
	}
	for k, pos := range mapB {
		u.Val[pos] += beta * b.Val[k]
	}
}
