package sparse

import (
	"errors"
	"math"
)

// ErrZeroPivot is returned when elimination hits a pivot that is zero or
// negligible relative to the matrix scale. During Refactor it signals the
// caller to redo the full Markowitz analysis.
var ErrZeroPivot = errors.New("sparse: zero pivot encountered")

// LUOptions configure factorization.
type LUOptions struct {
	// Threshold is the Markowitz partial-pivoting threshold τ ∈ (0, 1]:
	// a candidate pivot must satisfy |a| ≥ τ·(column max). Smaller values
	// favor sparsity over stability. Zero selects the default 0.1.
	Threshold float64
	// PivRelFloor rejects pivots smaller than this fraction of the largest
	// matrix entry. Zero selects the default 1e-13.
	PivRelFloor float64
}

func (o LUOptions) withDefaults() LUOptions {
	if o.Threshold <= 0 || o.Threshold > 1 {
		o.Threshold = 0.1
	}
	if o.PivRelFloor <= 0 {
		o.PivRelFloor = 1e-13
	}
	return o
}

type lentry struct {
	row int
	m   float64
}

type uentry struct {
	col int
	v   float64
}

// LU is a sparse LU factorization P_r·A·P_c = L·U produced by Markowitz
// ordering with threshold partial pivoting. The pivot sequence is recorded
// so subsequent matrices with the same sparsity pattern can be refactored
// numerically without repeating the ordering analysis (Refactor).
type LU struct {
	n     int
	opts  LUOptions
	rowOf []int // rowOf[k]: original row pivoted at step k
	colOf []int // colOf[k]: original column pivoted at step k
	lower [][]lentry
	upper [][]uentry // upper[k][0] is the pivot entry
	y     []float64  // solve scratch (row-indexed)
	xs    []float64  // solve scratch (column-indexed)

	// elimination scratch, reused across Refactor calls
	rows    []map[int]float64
	colRows []map[int]struct{}
}

// Factor performs the full analysis + numeric factorization of a.
func Factor(a *CSR, opts LUOptions) (*LU, error) {
	f := &LU{
		n:     a.N,
		opts:  opts.withDefaults(),
		rowOf: make([]int, a.N),
		colOf: make([]int, a.N),
		lower: make([][]lentry, a.N),
		upper: make([][]uentry, a.N),
		y:     make([]float64, a.N),
		xs:    make([]float64, a.N),
	}
	if err := f.factorFull(a); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *LU) load(a *CSR) {
	n := f.n
	if f.rows == nil {
		f.rows = make([]map[int]float64, n)
		f.colRows = make([]map[int]struct{}, n)
		for i := 0; i < n; i++ {
			f.rows[i] = make(map[int]float64, 8)
			f.colRows[i] = make(map[int]struct{}, 8)
		}
	}
	for i := 0; i < n; i++ {
		clear(f.rows[i])
		clear(f.colRows[i])
	}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			f.rows[i][j] += a.Val[k]
			f.colRows[j][i] = struct{}{}
		}
	}
}

// factorFull performs Markowitz pivot selection and elimination.
func (f *LU) factorFull(a *CSR) error {
	n := f.n
	f.load(a)
	scale := a.MaxAbs()
	if n > 0 && scale == 0 {
		return ErrZeroPivot
	}
	floor := scale * f.opts.PivRelFloor
	rowActive := make([]bool, n)
	colActive := make([]bool, n)
	for i := 0; i < n; i++ {
		rowActive[i] = true
		colActive[i] = true
	}
	colMax := make([]float64, n)
	for k := 0; k < n; k++ {
		// Column maxima over the active submatrix for the threshold test.
		for j := 0; j < n; j++ {
			if !colActive[j] {
				continue
			}
			m := 0.0
			for r := range f.colRows[j] {
				v := math.Abs(f.rows[r][j])
				if v > m {
					m = v
				}
			}
			colMax[j] = m
		}
		// Markowitz search: minimize (rownnz-1)(colnnz-1) subject to the
		// threshold; tie-break on larger magnitude.
		bestCost := math.MaxInt64
		bestMag := 0.0
		pi, pj := -1, -1
		for r := 0; r < n; r++ {
			if !rowActive[r] {
				continue
			}
			rc := len(f.rows[r]) - 1
			for j, v := range f.rows[r] {
				av := math.Abs(v)
				if av <= floor || av < f.opts.Threshold*colMax[j] {
					continue
				}
				cost := rc * (len(f.colRows[j]) - 1)
				if cost < bestCost || (cost == bestCost && av > bestMag) {
					bestCost, bestMag = cost, av
					pi, pj = r, j
				}
			}
		}
		if pi < 0 {
			return ErrZeroPivot
		}
		f.rowOf[k], f.colOf[k] = pi, pj
		rowActive[pi] = false
		colActive[pj] = false
		if err := f.eliminateStep(k, floor); err != nil {
			return err
		}
	}
	return nil
}

// Refactor repeats the numeric factorization of a matrix with the same
// sparsity pattern as the one passed to Factor, reusing the recorded pivot
// sequence. Returns ErrZeroPivot if a previously acceptable pivot has become
// negligible; the caller should then fall back to Factor.
func (f *LU) Refactor(a *CSR) error {
	if a.N != f.n {
		panic("sparse: Refactor dimension mismatch")
	}
	f.load(a)
	scale := a.MaxAbs()
	if f.n > 0 && scale == 0 {
		return ErrZeroPivot
	}
	floor := scale * f.opts.PivRelFloor
	for k := 0; k < f.n; k++ {
		if err := f.eliminateStep(k, floor); err != nil {
			return err
		}
	}
	return nil
}

// eliminateStep performs the elimination for step k with pivot
// (rowOf[k], colOf[k]) on the current rows/colRows state, recording the
// lower multipliers and the upper (pivot) row.
func (f *LU) eliminateStep(k int, floor float64) error {
	pi, pj := f.rowOf[k], f.colOf[k]
	pivRow := f.rows[pi]
	piv, ok := pivRow[pj]
	if !ok || math.Abs(piv) <= floor {
		return ErrZeroPivot
	}
	// Record the U row, pivot entry first.
	up := f.upper[k][:0]
	up = append(up, uentry{pj, piv})
	for j, v := range pivRow {
		if j != pj {
			up = append(up, uentry{j, v})
		}
	}
	f.upper[k] = up
	// Deactivate the pivot row in the column index.
	for j := range pivRow {
		delete(f.colRows[j], pi)
	}
	// Eliminate the pivot column from the remaining active rows.
	lo := f.lower[k][:0]
	for r := range f.colRows[pj] {
		m := f.rows[r][pj] / piv
		lo = append(lo, lentry{r, m})
		delete(f.rows[r], pj)
		if m == 0 {
			continue
		}
		for j, v := range pivRow {
			if j == pj {
				continue
			}
			old, exists := f.rows[r][j]
			f.rows[r][j] = old - m*v
			if !exists {
				f.colRows[j][r] = struct{}{}
			}
		}
	}
	clear(f.colRows[pj])
	f.lower[k] = lo
	return nil
}

// Solve solves A·x = b. b is not modified; x receives the solution. Both
// must have length N. x and b may be the same slice.
func (f *LU) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("sparse: Solve dimension mismatch")
	}
	y := f.y
	copy(y, b)
	// Forward elimination in recorded pivot order.
	for k := 0; k < n; k++ {
		pr := f.rowOf[k]
		ypr := y[pr]
		if ypr == 0 {
			continue
		}
		for _, le := range f.lower[k] {
			y[le.row] -= le.m * ypr
		}
	}
	// Back substitution. The solution component produced at step k belongs
	// to original column colOf[k]; every non-pivot column in upper[k] is
	// pivoted at a later step, so its solution component is already final
	// when iterating k downwards.
	xs := f.xs
	for k := n - 1; k >= 0; k-- {
		pr, pc := f.rowOf[k], f.colOf[k]
		up := f.upper[k]
		s := y[pr]
		for _, ue := range up[1:] {
			s -= ue.v * xs[ue.col]
		}
		xs[pc] = s / up[0].v
	}
	copy(x, xs)
}
