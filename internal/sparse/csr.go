// Package sparse implements the sparse linear algebra used by the circuit
// simulator: triplet assembly, compressed sparse row (CSR) storage, pattern
// union for forming C/Δt + G Jacobians, and an LU factorization with
// Markowitz ordering, threshold partial pivoting and fast numeric
// refactorization along a recorded pivot sequence — the classic SPICE
// (sparse1.3) recipe.
package sparse

import (
	"fmt"
	"sort"

	"latchchar/internal/linalg"
)

// Builder accumulates triplet (i, j, v) entries; duplicates are summed when
// the CSR matrix is built.
type Builder struct {
	n       int
	rows    []int
	cols    []int
	vals    []float64
	frozen  bool
	nnzHint int
}

// NewBuilder returns a Builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("sparse: negative dimension")
	}
	return &Builder{n: n}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Add records entry (i, j) += v.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of %dx%d", i, j, b.n, b.n))
	}
	b.rows = append(b.rows, i)
	b.cols = append(b.cols, j)
	b.vals = append(b.vals, v)
}

// Len returns the number of recorded triplets (before duplicate merging).
func (b *Builder) Len() int { return len(b.rows) }

// Build merges duplicates and returns the CSR matrix. The Builder may be
// reused afterwards by calling Reset.
func (b *Builder) Build() *CSR {
	type key struct{ i, j int }
	merged := make(map[key]float64, len(b.rows))
	for k := range b.rows {
		merged[key{b.rows[k], b.cols[k]}] += b.vals[k]
	}
	m := &CSR{N: b.n, RowPtr: make([]int, b.n+1)}
	keys := make([]key, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, c int) bool {
		if keys[a].i != keys[c].i {
			return keys[a].i < keys[c].i
		}
		return keys[a].j < keys[c].j
	})
	m.Col = make([]int, len(keys))
	m.Val = make([]float64, len(keys))
	for idx, k := range keys {
		m.RowPtr[k.i+1]++
		m.Col[idx] = k.j
		m.Val[idx] = merged[k]
	}
	for i := 0; i < b.n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// Reset discards all recorded triplets so the Builder can be reused.
func (b *Builder) Reset() {
	b.rows = b.rows[:0]
	b.cols = b.cols[:0]
	b.vals = b.vals[:0]
}

// CSR is an n×n sparse matrix in compressed-sparse-row form with column
// indices sorted within each row.
type CSR struct {
	N      int
	RowPtr []int // len N+1
	Col    []int // len nnz
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Col) }

// At returns element (i, j), or 0 if it is not stored. O(log row nnz).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.N || j < 0 || j >= m.N {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of %dx%d", i, j, m.N, m.N))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.Col[lo:hi], j)
	if k < hi && m.Col[k] == j {
		return m.Val[k]
	}
	return 0
}

// Index returns the position in Val of stored entry (i, j) and whether the
// entry exists in the pattern.
func (m *CSR) Index(i, j int) (int, bool) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.Col[lo:hi], j)
	if k < hi && m.Col[k] == j {
		return k, true
	}
	return -1, false
}

// MulVec computes y = M·x. x and y must have length N and must not alias.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += alpha · M·x.
func (m *CSR) MulVecAdd(alpha float64, x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic("sparse: MulVecAdd dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] += alpha * s
	}
}

// ZeroVals sets all stored values to 0, keeping the pattern.
func (m *CSR) ZeroVals() {
	for i := range m.Val {
		m.Val[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	return &CSR{
		N:      m.N,
		RowPtr: append([]int(nil), m.RowPtr...),
		Col:    append([]int(nil), m.Col...),
		Val:    append([]float64(nil), m.Val...),
	}
}

// PatternClone returns a matrix sharing m's symbolic structure (RowPtr and
// Col alias m's slices, which callers must treat as read-only) with fresh
// zeroed values. The block-transient lanes use this so one symbolic analysis
// serves every lane of a block.
func (m *CSR) PatternClone() *CSR {
	return &CSR{
		N:      m.N,
		RowPtr: m.RowPtr,
		Col:    m.Col,
		Val:    make([]float64, len(m.Val)),
	}
}

// ToDense converts to a dense matrix; intended for tests and debugging.
func (m *CSR) ToDense() *linalg.Matrix {
	d := linalg.NewMatrix(m.N, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Add(i, m.Col[k], m.Val[k])
		}
	}
	return d
}

// MaxAbs returns the largest absolute stored value.
func (m *CSR) MaxAbs() float64 {
	best := 0.0
	for _, v := range m.Val {
		if v < 0 {
			v = -v
		}
		if v > best {
			best = v
		}
	}
	return best
}

// FromDense builds a CSR from a dense matrix, storing entries with
// |value| > 0. Intended for tests.
func FromDense(d *linalg.Matrix) *CSR {
	if d.Rows != d.Cols {
		panic("sparse: FromDense requires square matrix")
	}
	b := NewBuilder(d.Rows)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if v := d.At(i, j); v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}
