package sparse

import (
	"math"
	"math/rand"
	"testing"

	"latchchar/internal/linalg"
)

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(2, 1, -1)
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if m.At(0, 0) != 3 {
		t.Errorf("At(0,0) = %v, want 3", m.At(0, 0))
	}
	if m.At(2, 1) != -1 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
	if m.At(1, 1) != 0 {
		t.Errorf("missing entry should read 0")
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	b.Add(1, 1, 5)
	m := b.Build()
	if m.NNZ() != 1 || m.At(1, 1) != 5 {
		t.Errorf("rebuild after reset wrong: %v", m)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	b := NewBuilder(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Add(2, 0, 1)
}

func TestCSRSortedColumnsAndIndex(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 2)
	b.Add(0, 0, 1)
	m := b.Build()
	if m.Col[0] != 0 || m.Col[1] != 1 {
		t.Errorf("columns not sorted: %v", m.Col)
	}
	if k, ok := m.Index(0, 1); !ok || m.Val[k] != 2 {
		t.Errorf("Index(0,1) = %d,%v", k, ok)
	}
	if _, ok := m.Index(1, 0); ok {
		t.Error("Index of absent entry should be !ok")
	}
}

func TestMulVec(t *testing.T) {
	// [2 0 1; 0 3 0; 0 0 4]
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(0, 2, 1)
	b.Add(1, 1, 3)
	b.Add(2, 2, 4)
	m := b.Build()
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	m.MulVec(x, y)
	want := []float64{5, 6, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec: %v want %v", y, want)
		}
	}
	// MulVecAdd accumulates.
	m.MulVecAdd(2, x, y)
	if y[0] != 15 || y[1] != 18 || y[2] != 36 {
		t.Fatalf("MulVecAdd: %v", y)
	}
}

func TestToDenseFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := linalg.NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if rng.Float64() < 0.4 {
				d.Set(i, j, rng.NormFloat64())
			}
		}
	}
	m := FromDense(d)
	back := m.ToDense()
	for i := range d.Data {
		if d.Data[i] != back.Data[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestUnionPattern(t *testing.T) {
	a := FromDense(denseOf(3, map[[2]int]float64{{0, 0}: 1, {1, 2}: 2}))
	b := FromDense(denseOf(3, map[[2]int]float64{{0, 0}: 5, {2, 1}: 3}))
	u, mapA, mapB := UnionPattern(a, b)
	if u.NNZ() != 3 {
		t.Fatalf("union NNZ = %d, want 3", u.NNZ())
	}
	Combine(u, 2, a, mapA, 10, b, mapB)
	if u.At(0, 0) != 2*1+10*5 {
		t.Errorf("At(0,0) = %v", u.At(0, 0))
	}
	if u.At(1, 2) != 4 {
		t.Errorf("At(1,2) = %v", u.At(1, 2))
	}
	if u.At(2, 1) != 30 {
		t.Errorf("At(2,1) = %v", u.At(2, 1))
	}
}

func TestUnionPatternRandomAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		da, db := randomDense(rng, n, 0.3, 0), randomDense(rng, n, 0.3, 0)
		a, b := FromDense(da), FromDense(db)
		u, mapA, mapB := UnionPattern(a, b)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		Combine(u, alpha, a, mapA, beta, b, mapB)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := alpha*da.At(i, j) + beta*db.At(i, j)
				if math.Abs(u.At(i, j)-want) > 1e-12 {
					t.Fatalf("trial %d (%d,%d): got %v want %v", trial, i, j, u.At(i, j), want)
				}
			}
		}
	}
}

func denseOf(n int, entries map[[2]int]float64) *linalg.Matrix {
	d := linalg.NewMatrix(n, n)
	for k, v := range entries {
		d.Set(k[0], k[1], v)
	}
	return d
}

func randomDense(rng *rand.Rand, n int, density, diagBoost float64) *linalg.Matrix {
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				d.Set(i, j, rng.NormFloat64())
			}
		}
		d.Add(i, i, diagBoost)
	}
	return d
}

func TestLUSolveDiagonal(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(1, 1, 4)
	b.Add(2, 2, 8)
	m := b.Build()
	f, err := Factor(m, LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3)
	f.Solve([]float64{2, 4, 8}, x)
	for i, v := range x {
		if math.Abs(v-1) > 1e-14 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

func TestLUSolveNeedsColumnPermutation(t *testing.T) {
	// Anti-diagonal matrix: [0 1; 2 0].
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 2)
	m := b.Build()
	f, err := Factor(m, LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{3, 4}, x)
	// x1 = 3, 2·x0 = 4.
	if math.Abs(x[0]-2) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("x = %v", x)
	}
}

func TestLUSingularDetected(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2)
	b.Add(1, 0, 2)
	b.Add(1, 1, 4)
	if _, err := Factor(b.Build(), LUOptions{}); err == nil {
		t.Error("expected ErrZeroPivot for singular matrix")
	}
	z := NewBuilder(2).Build()
	if _, err := Factor(z, LUOptions{}); err == nil {
		t.Error("expected error for empty pattern")
	}
}

func TestLUEmptyMatrix(t *testing.T) {
	f, err := Factor(NewBuilder(0).Build(), LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f.Solve(nil, nil)
}

func TestLURandomAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(15)
		d := randomDense(rng, n, 0.35, float64(n))
		m := FromDense(d)
		bvec := make(linalg.Vector, n)
		for i := range bvec {
			bvec[i] = rng.NormFloat64()
		}
		want, err := linalg.SolveLinear(d, bvec)
		if err != nil {
			continue // skip the rare singular draw
		}
		f, err := Factor(m, LUOptions{})
		if err != nil {
			t.Fatalf("trial %d: sparse Factor failed: %v", trial, err)
		}
		got := make([]float64, n)
		f.Solve(bvec, got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d x[%d]: sparse %v dense %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLUResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		d := randomDense(rng, n, 0.2, float64(n))
		m := FromDense(d)
		f, err := Factor(m, LUOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		f.Solve(b, x)
		r := make([]float64, n)
		m.MulVec(x, r)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d: residual[%d] = %v", trial, i, r[i]-b[i])
			}
		}
	}
}

func TestLURefactorSamePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 12
	d := randomDense(rng, n, 0.3, float64(n))
	m := FromDense(d)
	f, err := Factor(m, LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Change the values (same pattern) several times and refactor.
	for round := 0; round < 5; round++ {
		m2 := m.Clone()
		for k := range m2.Val {
			m2.Val[k] *= 1 + 0.3*rng.NormFloat64()
		}
		// Keep diagonal dominant so the old pivot order stays valid.
		for i := 0; i < n; i++ {
			if k, ok := m2.Index(i, i); ok {
				m2.Val[k] += float64(n)
			}
		}
		if err := f.Refactor(m2); err != nil {
			t.Fatalf("round %d: Refactor: %v", round, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		f.Solve(b, x)
		r := make([]float64, n)
		m2.MulVec(x, r)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				t.Fatalf("round %d: residual[%d] = %v", round, i, r[i]-b[i])
			}
		}
	}
}

func TestLURefactorZeroPivotReported(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	m := b.Build()
	f, err := Factor(m, LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	// Zero out whichever diagonal was pivoted first; both are pivots here.
	m2.Val[0] = 0
	if err := f.Refactor(m2); err == nil {
		t.Error("expected ErrZeroPivot after zeroing a pivot")
	}
}

func TestLUSolveAliasedInPlace(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 2)
	b.Add(1, 1, 5)
	f, err := Factor(b.Build(), LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{4, 10}
	f.Solve(v, v)
	if v[0] != 2 || v[1] != 2 {
		t.Fatalf("in-place solve: %v", v)
	}
}

func TestLUHighFillMatrix(t *testing.T) {
	// Arrow matrix: dense last row/col + diagonal. Classic fill-in stress:
	// a bad pivot order fills completely; Markowitz should keep it sparse,
	// and regardless the numerics must stay correct.
	n := 25
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i < n-1 {
			b.Add(i, n-1, 1)
			b.Add(n-1, i, 1)
		}
	}
	m := b.Build()
	f, err := Factor(m, LUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i + 1)
	}
	x := make([]float64, n)
	f.Solve(rhs, x)
	r := make([]float64, n)
	m.MulVec(x, r)
	for i := range r {
		if math.Abs(r[i]-rhs[i]) > 1e-10 {
			t.Fatalf("residual[%d] = %v", i, r[i]-rhs[i])
		}
	}
	// Sparsity check: with Markowitz ordering, the arrow matrix should
	// factor with O(n) fill, far below the dense n(n-1)/2.
	fill := 0
	for k := 0; k < n; k++ {
		fill += len(f.lower[k]) + len(f.upper[k]) - 1
	}
	if fill > 6*n {
		t.Errorf("fill %d too high for arrow matrix (n=%d); ordering broken?", fill, n)
	}
}

func TestLUOptionsDefaults(t *testing.T) {
	o := LUOptions{}.withDefaults()
	if o.Threshold != 0.1 || o.PivRelFloor != 1e-13 {
		t.Errorf("defaults wrong: %+v", o)
	}
	o = LUOptions{Threshold: 0.5, PivRelFloor: 1e-10}.withDefaults()
	if o.Threshold != 0.5 || o.PivRelFloor != 1e-10 {
		t.Errorf("explicit options clobbered: %+v", o)
	}
	o = LUOptions{Threshold: 2}.withDefaults()
	if o.Threshold != 0.1 {
		t.Errorf("out-of-range threshold not defaulted: %+v", o)
	}
}

// Property: Refactor along the recorded pivot order produces the same
// solutions as a fresh full analysis, for random same-pattern value sets.
func TestLURefactorEquivalentToFreshFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(15)
		d := randomDense(rng, n, 0.3, float64(n))
		m := FromDense(d)
		reused, err := Factor(m, LUOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			m2 := m.Clone()
			for k := range m2.Val {
				m2.Val[k] *= 1 + 0.2*rng.NormFloat64()
			}
			for i := 0; i < n; i++ {
				if k, ok := m2.Index(i, i); ok {
					m2.Val[k] += float64(n)
				}
			}
			if err := reused.Refactor(m2); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			fresh, err := Factor(m2, LUOptions{})
			if err != nil {
				t.Fatal(err)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x1 := make([]float64, n)
			x2 := make([]float64, n)
			reused.Solve(b, x1)
			fresh.Solve(b, x2)
			for i := range x1 {
				if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
					t.Fatalf("trial %d: refactor solve differs at %d: %v vs %v", trial, i, x1[i], x2[i])
				}
			}
		}
	}
}

func TestReusableFallsBackToFreshAnalysis(t *testing.T) {
	// First matrix is diagonal; the recorded pivots are the diagonal
	// entries. The second matrix (same pattern) zeroes the diagonal but is
	// nonsingular through its off-diagonal entries, so Refactor's pivot
	// order goes stale and Reusable must transparently redo the analysis.
	b := NewBuilder(2)
	b.Add(0, 0, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(1, 1, 2)
	m1 := b.Build()
	var r Reusable
	if err := r.Factorize(m1); err != nil {
		t.Fatal(err)
	}
	if r.Factorizations != 1 || r.Refactorizations != 0 {
		t.Fatalf("counters after first: %+v", r)
	}
	m2 := m1.Clone()
	// Zero the diagonal, strengthen the anti-diagonal.
	for i := 0; i < 2; i++ {
		if k, ok := m2.Index(i, i); ok {
			m2.Val[k] = 0
		}
		if k, ok := m2.Index(i, 1-i); ok {
			m2.Val[k] = 3
		}
	}
	if err := r.Factorize(m2); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if r.Factorizations != 2 {
		t.Errorf("expected a fresh analysis, counters: %+v", r)
	}
	x := make([]float64, 2)
	r.Solve([]float64{3, 6}, x)
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("x = %v, want [2 1]", x)
	}
	// Same-pattern benign change now refactors fast.
	m3 := m2.Clone()
	for k := range m3.Val {
		m3.Val[k] *= 1.1
	}
	if err := r.Factorize(m3); err != nil {
		t.Fatal(err)
	}
	if r.Refactorizations != 1 {
		t.Errorf("expected a refactorization, counters: %+v", r)
	}
}

func TestReusableSolveBeforeFactorizePanics(t *testing.T) {
	var r Reusable
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Solve([]float64{1}, []float64{0})
}
