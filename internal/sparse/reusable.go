package sparse

// Reusable wraps LU with the factor-or-refactor policy used by the solvers:
// the first factorization runs the full Markowitz analysis, subsequent ones
// reuse the recorded pivot sequence, and a zero pivot during refactorization
// transparently triggers a fresh analysis.
type Reusable struct {
	Opts LUOptions

	lu *LU
	// Factorizations counts full analyses; Refactorizations counts fast
	// numeric refactorizations.
	Factorizations   int
	Refactorizations int
}

// Factorize prepares the factorization of a, reusing the previous pivot
// order when possible.
func (r *Reusable) Factorize(a *CSR) error {
	if r.lu != nil {
		if err := r.lu.Refactor(a); err == nil {
			r.Refactorizations++
			return nil
		}
		// Pivot order went stale; fall through to a full analysis.
	}
	lu, err := Factor(a, r.Opts)
	if err != nil {
		return err
	}
	r.lu = lu
	r.Factorizations++
	return nil
}

// Solve solves with the last successful factorization. It panics if
// Factorize has never succeeded.
func (r *Reusable) Solve(b, x []float64) {
	if r.lu == nil {
		panic("sparse: Reusable.Solve before Factorize")
	}
	r.lu.Solve(b, x)
}
