package sparse

// Reusable wraps LU with the factor-or-refactor policy used by the solvers:
// the first factorization runs the full Markowitz analysis, subsequent ones
// reuse the recorded pivot sequence, and a zero pivot during refactorization
// transparently triggers a fresh analysis.
type Reusable struct {
	Opts LUOptions

	lu *LU
	// Factorizations counts full analyses; Refactorizations counts fast
	// numeric refactorizations.
	Factorizations   int
	Refactorizations int
	// Age counts Solve calls against the current factorization since it was
	// last rebuilt — the staleness measure chord-Newton policies consult to
	// decide when a factorization is too old to keep reusing.
	Age int
}

// Factorize prepares the factorization of a, reusing the previous pivot
// order when possible.
func (r *Reusable) Factorize(a *CSR) error {
	if r.lu != nil {
		if err := r.lu.Refactor(a); err == nil {
			r.Refactorizations++
			r.Age = 0
			return nil
		}
		// Pivot order went stale; fall through to a full analysis.
	}
	lu, err := Factor(a, r.Opts)
	if err != nil {
		return err
	}
	r.lu = lu
	r.Factorizations++
	r.Age = 0
	return nil
}

// Factorized reports whether a factorization is available, i.e. whether
// Solve may be called. Chord iterations use this to guard against solving
// before the first full Newton iteration has built a Jacobian.
func (r *Reusable) Factorized() bool { return r.lu != nil }

// Solve solves with the last successful factorization. It panics if
// Factorize has never succeeded.
func (r *Reusable) Solve(b, x []float64) {
	if r.lu == nil {
		panic("sparse: Reusable.Solve before Factorize")
	}
	r.lu.Solve(b, x)
	r.Age++
}
