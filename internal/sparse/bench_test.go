package sparse

import (
	"math/rand"
	"testing"
)

// circuitLike builds a matrix with the structure of an MNA Jacobian:
// strong diagonal, a few off-diagonal couplings per row, plus a handful of
// dense-ish source rows.
func circuitLike(rng *rand.Rand, n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4+rng.Float64())
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j != i {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func BenchmarkFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := circuitLike(rng, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(m, LUOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefactor(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := circuitLike(rng, 100)
	lu, err := Factor(m, LUOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lu.Refactor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := circuitLike(rng, 100)
	lu, err := Factor(m, LUOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, m.N)
	x := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu.Solve(rhs, x)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := circuitLike(rng, 200)
	x := make([]float64, m.N)
	y := make([]float64, m.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
}

func BenchmarkCombine(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	c := circuitLike(rng, 200)
	g := circuitLike(rng, 200)
	u, mapC, mapG := UnionPattern(c, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Combine(u, 1e12, c, mapC, 1, g, mapG)
	}
}
