package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchFile is the schema of BENCH_serve.json: serving-layer throughput and
// latency-percentile curves vs worker count, written by cmd/latchload
// -bench-out and consumed by humans and CI trend checks.
type BenchFile struct {
	// Note documents the methodology (mock service time, host shape) so a
	// future reader doesn't mistake serving-layer scaling for solver speed.
	Note    string   `json:"note,omitempty"`
	Results []Report `json:"results"`
}

// MergeBenchFile loads path (if it exists), upserts reports by
// (label, workers), sorts, and writes the file back atomically.
func MergeBenchFile(path, note string, reports []Report) error {
	var bf BenchFile
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &bf); err != nil {
			return fmt.Errorf("loadgen: existing %s is not a bench file: %w", path, err)
		}
	}
	if note != "" {
		bf.Note = note
	}
	for _, r := range reports {
		replaced := false
		for i := range bf.Results {
			if bf.Results[i].Label == r.Label && bf.Results[i].Workers == r.Workers {
				bf.Results[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			bf.Results = append(bf.Results, r)
		}
	}
	sort.Slice(bf.Results, func(i, j int) bool {
		if bf.Results[i].Label != bf.Results[j].Label {
			return bf.Results[i].Label < bf.Results[j].Label
		}
		return bf.Results[i].Workers < bf.Results[j].Workers
	})
	b, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
