package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		in      string
		want    Mix
		wantErr bool
	}{
		{"", Mix{Hot: 1}, false},
		{"hot=1", Mix{Hot: 1}, false},
		{"hot=0.7,cold=0.2,batch=0.05,stream=0.05", Mix{Hot: 0.7, Cold: 0.2, Batch: 0.05, Stream: 0.05}, false},
		{" hot=3 , cold=1 ", Mix{Hot: 3, Cold: 1}, false},
		{"hot=0,cold=0", Mix{}, true}, // sums to zero
		{"warm=0.5", Mix{}, true},     // unknown kind
		{"hot", Mix{}, true},          // no '='
		{"hot=-1", Mix{}, true},       // negative fraction
		{"hot=banana", Mix{}, true},   // not a number
	}
	for _, tc := range cases {
		got, err := ParseMix(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseMix(%q): want error, got %+v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMix(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMix(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	good := Options{BaseURL: "http://x", Clients: 4, HotCells: 2, BatchSize: 1, Seed: 7}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	for name, o := range map[string]Options{
		"clients":   {Clients: -1},
		"hotcells":  {HotCells: -1},
		"batchsize": {BatchSize: -1},
		"seed":      {Seed: -1},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: negative value accepted", name)
		}
	}
}

func TestMergeBenchFileUpsertsAndSorts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")

	first := []Report{
		{Label: "hot-mix", Workers: 2, Ops: 100, Throughput: 50},
		{Label: "hot-mix", Workers: 1, Ops: 60, Throughput: 30},
	}
	if err := MergeBenchFile(path, "mock service time", first); err != nil {
		t.Fatal(err)
	}
	// Second run replaces workers=2 and adds workers=4.
	second := []Report{
		{Label: "hot-mix", Workers: 2, Ops: 200, Throughput: 55},
		{Label: "hot-mix", Workers: 4, Ops: 300, Throughput: 80},
	}
	if err := MergeBenchFile(path, "", second); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf BenchFile
	if err := json.Unmarshal(b, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Note != "mock service time" {
		t.Errorf("note lost on merge: %q", bf.Note)
	}
	if len(bf.Results) != 3 {
		t.Fatalf("want 3 results, got %d: %+v", len(bf.Results), bf.Results)
	}
	for i, wantWorkers := range []int{1, 2, 4} {
		if bf.Results[i].Workers != wantWorkers {
			t.Errorf("results[%d].workers = %d, want %d (sorted by worker count)", i, bf.Results[i].Workers, wantWorkers)
		}
	}
	if bf.Results[1].Ops != 200 {
		t.Errorf("workers=2 entry not replaced on upsert: ops=%d", bf.Results[1].Ops)
	}
}

func TestMergeBenchFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeBenchFile(path, "", []Report{{Label: "x"}}); err == nil {
		t.Fatal("corrupt bench file silently overwritten")
	}
}
