// Package loadgen drives synthetic load against a latchchard daemon or
// cluster coordinator through the public serveclient API and reports
// throughput and latency quantiles. It replays a configurable mix of
// realistic request shapes:
//
//   - hot: repeated characterizations of a small set of catalog cells —
//     exercises the result cache and cross-node coalescing.
//   - cold: inline-netlist characterizations with a unique deck per request
//     — every one is a fresh job, exercising queueing and forwarding.
//   - batch: multi-job batch submissions mixing hot cells.
//   - stream: submit a job and consume its NDJSON event stream to the end —
//     exercises the event fan-out and the coordinator's stream proxy.
//
// cmd/latchload is the CLI wrapper; the cluster smoke test drives it
// in-process.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"latchchar/serveclient"
)

// Mix is the fraction of each operation type; fractions are normalized, so
// {Hot: 3, Cold: 1} means 75% hot.
type Mix struct {
	Hot    float64 `json:"hot"`
	Cold   float64 `json:"cold"`
	Batch  float64 `json:"batch"`
	Stream float64 `json:"stream"`
}

// ParseMix parses "hot=0.8,cold=0.1,batch=0.05,stream=0.05". Omitted kinds
// are zero; an empty string is the default hot-only mix.
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return Mix{Hot: 1}, nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Mix{}, fmt.Errorf("loadgen: bad mix term %q (want kind=fraction)", part)
		}
		var f float64
		if _, err := fmt.Sscanf(kv[1], "%g", &f); err != nil || f < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad mix fraction %q", kv[1])
		}
		switch kv[0] {
		case "hot":
			m.Hot = f
		case "cold":
			m.Cold = f
		case "batch":
			m.Batch = f
		case "stream":
			m.Stream = f
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix kind %q (have hot, cold, batch, stream)", kv[0])
		}
	}
	if m.Hot+m.Cold+m.Batch+m.Stream <= 0 {
		return Mix{}, fmt.Errorf("loadgen: mix fractions sum to zero")
	}
	return m, nil
}

// Options configures one load run.
type Options struct {
	// BaseURL is the daemon or coordinator to hit (required).
	BaseURL string
	// Clients is the number of concurrent closed-loop clients (default 8).
	Clients int
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// Mix selects the operation blend (default hot-only).
	Mix Mix
	// HotCells is the number of distinct hot request shapes (default 4):
	// small enough to keep the hot set cached, large enough to spread over
	// multiple ring owners.
	HotCells int
	// BatchSize is the jobs per batch operation (default 4).
	BatchSize int
	// Seed makes the op sequence reproducible (default 1).
	Seed int64
	// HotNoCache sets no_cache on hot requests: each op pays real service
	// time on its ring owner (still coalescing with concurrent duplicates)
	// instead of returning from the result cache. Benchmarks use this so
	// the throughput-vs-workers curve measures worker capacity rather than
	// cache-hit proxying.
	HotNoCache bool
	// Client overrides the serveclient constructor (tests).
	Client *serveclient.Client
}

// Validate rejects nonsensical knob values; zero values mean "use the
// default" and pass.
func (o *Options) Validate() error {
	if o.Clients < 0 {
		return fmt.Errorf("loadgen: Clients must be >= 0 (got %d)", o.Clients)
	}
	if o.HotCells < 0 {
		return fmt.Errorf("loadgen: HotCells must be >= 0 (got %d)", o.HotCells)
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("loadgen: BatchSize must be >= 0 (got %d)", o.BatchSize)
	}
	if o.Seed < 0 {
		return fmt.Errorf("loadgen: Seed must be >= 0 (got %d)", o.Seed)
	}
	return nil
}

// Report is the outcome of one load run.
type Report struct {
	Label      string  `json:"label"`
	Workers    int     `json:"workers"`
	Clients    int     `json:"clients"`
	DurationS  float64 `json:"duration_s"`
	Ops        int     `json:"ops"`
	Errors     int     `json:"errors"`
	Throughput float64 `json:"throughput_ops_per_s"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	// StreamEvents counts NDJSON events consumed by stream ops.
	StreamEvents int `json:"stream_events,omitempty"`
}

// Run generates load until Options.Duration elapses or ctx is canceled,
// whichever is first, and reports aggregate throughput and latency.
func Run(ctx context.Context, o Options) (Report, error) {
	if o.BaseURL == "" && o.Client == nil {
		return Report{}, fmt.Errorf("loadgen: BaseURL is required")
	}
	if err := o.Validate(); err != nil {
		return Report{}, err
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Mix.Hot+o.Mix.Cold+o.Mix.Batch+o.Mix.Stream <= 0 {
		o.Mix = Mix{Hot: 1}
	}
	if o.HotCells <= 0 {
		o.HotCells = 4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	client := o.Client
	if client == nil {
		client = serveclient.New(o.BaseURL)
	}

	ctx, cancel := context.WithTimeout(ctx, o.Duration)
	defer cancel()

	type clientStats struct {
		lats   []time.Duration
		errs   int
		events int
	}
	stats := make([]clientStats, o.Clients)
	var coldSeq struct {
		sync.Mutex
		n int
	}
	nextCold := func() int {
		coldSeq.Lock()
		defer coldSeq.Unlock()
		coldSeq.n++
		return coldSeq.n
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(i)))
			st := &stats[i]
			for ctx.Err() == nil {
				opStart := time.Now()
				events, err := runOp(ctx, client, o, rng, nextCold)
				if ctx.Err() != nil && err != nil {
					// The deadline tore down an in-flight op; don't count a
					// truncated sample either way.
					return
				}
				st.lats = append(st.lats, time.Since(opStart))
				st.events += events
				if err != nil {
					st.errs++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	rep := Report{Clients: o.Clients, DurationS: elapsed.Seconds()}
	for _, st := range stats {
		all = append(all, st.lats...)
		rep.Errors += st.errs
		rep.StreamEvents += st.events
	}
	rep.Ops = len(all)
	if elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) float64 {
			idx := int(p * float64(len(all)-1))
			return float64(all[idx]) / float64(time.Millisecond)
		}
		rep.P50MS, rep.P95MS, rep.P99MS = q(0.50), q(0.95), q(0.99)
		rep.MaxMS = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	return rep, nil
}

// runOp executes one operation drawn from the mix, returning the number of
// stream events consumed (stream ops only).
func runOp(ctx context.Context, client *serveclient.Client, o Options, rng *rand.Rand, nextCold func() int) (int, error) {
	total := o.Mix.Hot + o.Mix.Cold + o.Mix.Batch + o.Mix.Stream
	r := rng.Float64() * total
	switch {
	case r < o.Mix.Hot:
		_, err := client.Characterize(ctx, hotRequest(rng.Intn(o.HotCells), o.HotNoCache))
		return 0, err
	case r < o.Mix.Hot+o.Mix.Cold:
		_, err := client.Characterize(ctx, coldRequest(nextCold()))
		return 0, err
	case r < o.Mix.Hot+o.Mix.Cold+o.Mix.Batch:
		req := &serveclient.BatchRequest{Wait: true}
		for j := 0; j < o.BatchSize; j++ {
			req.Jobs = append(req.Jobs, serveclient.BatchJobRequest{
				Name:                fmt.Sprintf("b%d", j),
				CharacterizeRequest: *hotRequest(rng.Intn(o.HotCells), o.HotNoCache),
			})
		}
		st, err := client.Batch(ctx, req)
		if err == nil && st.State == serveclient.StateFailed {
			err = fmt.Errorf("loadgen: batch failed: %s", st.Error)
		}
		return 0, err
	default:
		return streamOp(ctx, client, o, rng)
	}
}

// streamOp submits an async hot job and consumes its event stream to the
// end.
func streamOp(ctx context.Context, client *serveclient.Client, o Options, rng *rand.Rand) (int, error) {
	req := *hotRequest(rng.Intn(o.HotCells), o.HotNoCache)
	req.Wait = false
	st, err := client.Characterize(ctx, &req)
	if err != nil {
		return 0, err
	}
	es, err := client.Stream(ctx, st.ID)
	if err != nil {
		return 0, err
	}
	defer es.Close()
	for {
		if _, ok := es.Next(); !ok {
			return es.Count(), es.Err()
		}
	}
}

// hotRequest returns one of HotCells stable request shapes: same catalog
// cell, distinct option sets, so each shape has its own coalescing key and
// ring owner.
func hotRequest(i int, noCache bool) *serveclient.CharacterizeRequest {
	return &serveclient.CharacterizeRequest{
		Cell:    "tspc",
		Options: serveclient.OptionsRequest{Points: 3 + i},
		Wait:    true,
		NoCache: noCache,
	}
}

// coldRequest returns an inline-netlist characterization whose deck is
// unique per sequence number — a guaranteed cache and coalescing miss.
func coldRequest(n int) *serveclient.CharacterizeRequest {
	deck := fmt.Sprintf(`
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
Rload q 0 %dk
.out q
`, 100+n)
	return &serveclient.CharacterizeRequest{
		Netlist: deck,
		Options: serveclient.OptionsRequest{Points: 3},
		Wait:    true,
	}
}
