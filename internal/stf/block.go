package stf

import (
	"fmt"
	"math"

	"latchchar/internal/obs"
	"latchchar/internal/transient"
)

// WithFastPath returns the config with the chord/bypass fast path of DESIGN
// §10 enabled — chord (modified-Newton) iterations against the standing LU
// factorization plus the device-eval latency bypass, each with its default
// gates. This is the single home for the fast-path preset: the -fast CLI
// flag, the HTTP fast_path field and the block kernel's lane options all go
// through here, so they can never drift apart.
func (c Config) WithFastPath() Config {
	c.Chord = true
	c.DeviceBypass = true
	return c
}

// blockSplit returns the earliest time the lanes' stimuli can differ — the
// shared-prefix horizon handed to the block engine. The data pulse (and its
// skew derivatives) depends on τs only within the leading ramp starting at
// Edge50 − τs − Rise/2 and on τh only within the trailing ramp starting at
// Edge50 + τh − Fall/2, so lanes agreeing on an axis share that axis's
// waveform; axes with spread diverge at the earliest ramp start among the
// lanes. Identical lanes share everything (+Inf).
func (e *Evaluator) blockSplit(tauS, tauH []float64) float64 {
	d := e.inst.Data
	split := math.Inf(1)
	sMin, sMax := minMax(tauS)
	if sMax > sMin {
		split = math.Min(split, d.Edge50-sMax-d.Rise/2)
	}
	hMin, hMax := minMax(tauH)
	if hMax > hMin {
		split = math.Min(split, d.Edge50+hMin-d.Fall/2)
	}
	return split
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// blockEngine returns (building on first use) the k-lane block engine for
// plain or gradient-carrying transients. Engines are cached per lane count;
// every lane aliases the reference lane's symbolic analysis.
func (e *Evaluator) blockEngine(k int, skews bool) *transient.BlockEngine {
	cache := &e.blkPlain
	if skews {
		cache = &e.blkGrad
	}
	if *cache == nil {
		*cache = make(map[int]*transient.BlockEngine)
	}
	if be := (*cache)[k]; be != nil {
		return be
	}
	be := transient.NewBlockEngine(e.inst.Circuit, e.cfg.transientOptions(skews), k, func(lane int) {
		e.inst.Data.SetSkews(e.blkS[lane], e.blkH[lane])
	})
	(*cache)[k] = be
	return be
}

// EvalBlock computes h(τs, τh) for a block of skew pairs with one lockstep
// multi-lane transient (transient.BlockEngine): nearby points share the
// exact stimulus prefix, the lane Jacobian and bypassed device stamps. Lanes
// that peel off the block are retried on the scalar path, so the result is
// defined for every point or the call errors.
func (e *Evaluator) EvalBlock(tauS, tauH []float64) ([]float64, error) {
	k := len(tauS)
	if len(tauH) != k {
		return nil, fmt.Errorf("stf: EvalBlock skew slices disagree: %d vs %d", k, len(tauH))
	}
	if k == 0 {
		return nil, nil
	}
	if k == 1 {
		h, err := e.Eval(tauS[0], tauH[0])
		if err != nil {
			return nil, err
		}
		return []float64{h}, nil
	}
	be := e.blockEngine(k, false)
	e.blkS = append(e.blkS[:0], tauS...)
	e.blkH = append(e.blkH[:0], tauH...)
	res, err := be.RunCtx(e.ctx, e.run, e.x0, e.grid, e.blockSplit(tauS, tauH))
	if err != nil {
		return nil, err
	}
	e.PlainEvals += k
	e.run.Count(obs.CtrTransients, int64(k))
	e.Work.Add(res.Stats)
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		if res.Errs[i] != nil {
			h, err := e.Eval(tauS[i], tauH[i])
			if err != nil {
				return nil, fmt.Errorf("stf: lane %d peeled off (%v) and the scalar retry failed: %w", i, res.Errs[i], err)
			}
			out[i] = h
			continue
		}
		out[i] = res.X[i][e.inst.Out] - e.cal.R
	}
	return out, nil
}

// EvalGradBlock is EvalBlock carrying forward sensitivities: h and its
// gradient for every lane. Per-lane failures (a peel-off whose scalar retry
// also failed) are reported in errs without invalidating the other lanes;
// the final error is reserved for whole-block failures (cancellation, a
// failure inside the shared prefix, invalid input).
func (e *Evaluator) EvalGradBlock(tauS, tauH []float64) (h, dhdS, dhdH []float64, errs []error, err error) {
	k := len(tauS)
	if len(tauH) != k {
		return nil, nil, nil, nil, fmt.Errorf("stf: EvalGradBlock skew slices disagree: %d vs %d", k, len(tauH))
	}
	if k == 0 {
		return nil, nil, nil, nil, nil
	}
	h = make([]float64, k)
	dhdS = make([]float64, k)
	dhdH = make([]float64, k)
	errs = make([]error, k)
	if k == 1 {
		h[0], dhdS[0], dhdH[0], err = e.EvalGrad(tauS[0], tauH[0])
		return h, dhdS, dhdH, errs, err
	}
	be := e.blockEngine(k, true)
	e.blkS = append(e.blkS[:0], tauS...)
	e.blkH = append(e.blkH[:0], tauH...)
	res, rerr := be.RunCtx(e.ctx, e.run, e.x0, e.grid, e.blockSplit(tauS, tauH))
	if rerr != nil {
		return nil, nil, nil, nil, rerr
	}
	e.GradEvals += k
	e.run.Count(obs.CtrTransientsGrad, int64(k))
	e.Work.Add(res.Stats)
	out := e.inst.Out
	for i := 0; i < k; i++ {
		if res.Errs[i] != nil {
			h[i], dhdS[i], dhdH[i], err = e.EvalGrad(tauS[i], tauH[i])
			if err != nil {
				if e.ctx.Err() != nil {
					return nil, nil, nil, nil, err
				}
				errs[i] = fmt.Errorf("stf: lane %d peeled off (%v) and the scalar retry failed: %w", i, res.Errs[i], err)
			}
			err = nil
			continue
		}
		h[i] = res.X[i][out] - e.cal.R
		dhdS[i] = res.Ms[i][out]
		dhdH[i] = res.Mh[i][out]
	}
	return h, dhdS, dhdH, errs, nil
}
