// Package stf exposes the state-transition function φ(tf; x0, 0, τs, τh) of
// a register circuit as a scalar characterization problem
//
//	h(τs, τh) = cᵀφ(tf; x0, 0, τs, τh) − r        (paper eq. (4))
//
// together with its gradient [∂h/∂τs, ∂h/∂τh] obtained from the transient
// engine's forward sensitivities (paper eqs. (11)–(14)). It also performs
// the calibration of Section IV: simulate with large skews, locate the
// characteristic clock-to-Q crossing tc, and derive the measurement time tf
// and level r for a prescribed clock-to-Q degradation.
package stf

import (
	"context"
	"fmt"

	"latchchar/internal/circuit"
	"latchchar/internal/num"
	"latchchar/internal/obs"
	"latchchar/internal/registers"
	"latchchar/internal/solver"
	"latchchar/internal/transient"
)

// Config tunes the characterization setup.
type Config struct {
	// Method selects the integration scheme (default BE).
	Method transient.Method
	// CoarseStep and FineStep are the two-phase grid resolutions
	// (defaults 100 ps and 5 ps).
	CoarseStep, FineStep float64
	// MaxSetupSkew bounds the τs domain the fine window must cover
	// (default 1.0 ns).
	MaxSetupSkew float64
	// FineMargin is extra lead time before the earliest data activity
	// (default 0.2 ns).
	FineMargin float64
	// CalSkew is the large setup/hold skew used to measure the
	// characteristic clock-to-Q delay (default 1.2 ns).
	CalSkew float64
	// Degrade is the prescribed clock-to-Q degradation defining setup/hold
	// times (default 0.10, the paper's 10%).
	Degrade float64
	// PostWindow is how far past the active edge the calibration transient
	// runs while hunting for the crossing (default 3 ns).
	PostWindow float64
	// MaxNewtonIter bounds the per-step Newton iterations of every transient
	// the evaluator launches (default 50, transient.Options). Chord mode
	// needs headroom here: stalled chord iterations spend budget before the
	// full-Newton fallback finishes the step.
	MaxNewtonIter int
	// Chord enables chord (modified-Newton) iterations in the transient
	// inner loop: reuse the standing LU factorization while the iteration
	// contracts, fall back to full Newton on stall or divergence
	// (transient.Options.Chord).
	Chord bool
	// ChordContraction is the chord stall threshold θ ∈ (0, 1)
	// (default 0.5); ChordMaxAge bounds back-substitutions per factorization
	// (default 20). Both only apply with Chord.
	ChordContraction float64
	ChordMaxAge      int
	// DeviceBypass enables the device-eval latency bypass: MOSFETs whose
	// terminal voltages moved less than BypassVTol volts replay cached
	// stamps instead of re-evaluating (default tolerance 1 µV).
	DeviceBypass bool
	BypassVTol   float64
	// Obs attaches observability: every transient the evaluator launches is
	// tagged and counted under the currently attached span (solvers re-parent
	// it via SetObs while they own the evaluator). nil disables collection.
	Obs *obs.Run
}

// WithDefaults returns the config with every unset field replaced by its
// default, exactly as the evaluator would normalize it. Static analysis
// (internal/vet) uses this so checks run against the effective values.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.CoarseStep <= 0 {
		c.CoarseStep = 100e-12
	}
	if c.FineStep <= 0 {
		c.FineStep = 5e-12
	}
	if c.MaxSetupSkew <= 0 {
		c.MaxSetupSkew = 1.0e-9
	}
	if c.FineMargin <= 0 {
		c.FineMargin = 0.2e-9
	}
	if c.CalSkew <= 0 {
		c.CalSkew = 1.2e-9
	}
	if c.Degrade <= 0 {
		c.Degrade = 0.10
	}
	if c.PostWindow <= 0 {
		c.PostWindow = 3e-9
	}
	if c.MaxNewtonIter <= 0 {
		c.MaxNewtonIter = 50
	}
	if c.ChordContraction <= 0 {
		c.ChordContraction = 0.5
	}
	if c.ChordMaxAge <= 0 {
		c.ChordMaxAge = 20
	}
	return c
}

// transientOptions renders the integrator-level options every transient the
// evaluator launches shares; skews and probes vary per call site.
func (c Config) transientOptions(skews bool, probes ...circuit.UnknownID) transient.Options {
	return transient.Options{
		Method:           c.Method,
		Skews:            skews,
		MaxNewtonIter:    c.MaxNewtonIter,
		Chord:            c.Chord,
		ChordContraction: c.ChordContraction,
		ChordMaxAge:      c.ChordMaxAge,
		DeviceBypass:     c.DeviceBypass,
		BypassVTol:       c.BypassVTol,
		Probes:           probes,
	}
}

// Calibration is the outcome of the characteristic-delay measurement.
type Calibration struct {
	// TC is the time the output crosses R with ample skews (the paper's tc).
	TC float64
	// CharDelay is the characteristic clock-to-Q delay, TC − edge50.
	CharDelay float64
	// Tf is the measurement time: edge50 + (1+Degrade)·CharDelay.
	Tf float64
	// R is the absolute output level defining the crossing (the paper's r).
	R float64
	// Rising is the direction of the monitored output transition.
	Rising bool
}

// Evaluator computes h(τs, τh) and its gradient for one register instance.
// It is not safe for concurrent use; build one per goroutine via
// NewEvaluator with separate instances.
type Evaluator struct {
	inst *registers.Instance
	cfg  Config
	cal  Calibration
	x0   []float64
	grid transient.Grid
	run  *obs.Run
	ctx  context.Context

	engPlain *transient.Engine
	engGrad  *transient.Engine

	// Block-transient lanes (EvalBlock/EvalGradBlock): engines cached per
	// lane count, plus the current block's skews for the setLane hook.
	blkPlain   map[int]*transient.BlockEngine
	blkGrad    map[int]*transient.BlockEngine
	blkS, blkH []float64

	// PlainEvals and GradEvals count transient simulations by kind; the
	// paper's cost comparisons are expressed in these.
	PlainEvals, GradEvals int
	// Work accumulates integrator-level statistics.
	Work transient.Stats
}

// NewEvaluator builds an evaluator: it computes the DC start state, runs the
// calibration transient and freezes the τ-independent measurement grid.
func NewEvaluator(inst *registers.Instance, cfg Config) (*Evaluator, error) {
	return newEvaluator(inst, cfg, nil)
}

// NewEvaluatorWithCalibration builds an evaluator reusing a calibration
// measured on an identical instance, skipping the calibration transient.
// Surface-generation workers use this so the brute-force cost accounting
// contains exactly the n² grid simulations.
func NewEvaluatorWithCalibration(inst *registers.Instance, cfg Config, cal Calibration) (*Evaluator, error) {
	return newEvaluator(inst, cfg, &cal)
}

func newEvaluator(inst *registers.Instance, cfg Config, cal *Calibration) (*Evaluator, error) {
	c := cfg.withDefaults()
	e := &Evaluator{inst: inst, cfg: c, run: c.Obs, ctx: context.Background()}

	// Fixed initial condition: the DC operating point at t = 0 with the
	// data line at rest (independent of the skews, paper step 1b/1c).
	inst.Data.SetSkews(c.CalSkew, c.CalSkew)
	x0, _, err := solver.DCOperatingPoint(inst.Circuit, 0, nil, solver.DCOptions{})
	if err != nil {
		return nil, fmt.Errorf("stf: DC operating point: %w", err)
	}
	e.x0 = x0

	if cal != nil {
		e.cal = *cal
	} else if err := e.calibrate(); err != nil {
		return nil, err
	}

	fineStart := inst.Edge50 - c.MaxSetupSkew - inst.Clock.Rise/2 - c.FineMargin
	if fineStart <= 0 || fineStart >= e.cal.Tf {
		return nil, fmt.Errorf("stf: fine window start %g outside (0, tf=%g); reduce MaxSetupSkew", fineStart, e.cal.Tf)
	}
	grid, err := transient.TwoPhaseGrid(0, fineStart, e.cal.Tf, c.CoarseStep, c.FineStep)
	if err != nil {
		return nil, fmt.Errorf("stf: measurement grid: %w", err)
	}
	e.grid = grid
	e.engPlain = transient.NewEngine(inst.Circuit, c.transientOptions(false))
	e.engGrad = transient.NewEngine(inst.Circuit, c.transientOptions(true))
	return e, nil
}

// SetObs re-points the evaluator's observability handle; solvers use this
// (via core.ObsAttachable) to nest the transients they request under their
// own span. A nil handle disables collection.
func (e *Evaluator) SetObs(run *obs.Run) { e.run = run }

// SetContext re-points the evaluator's cancellation context; the ctx-first
// solvers use this (via core.CtxAttachable) so a canceled context stops the
// transient step loop mid-simulation. nil restores Background.
func (e *Evaluator) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
}

// calibrate measures tc, the characteristic delay and tf (Section IV).
func (e *Evaluator) calibrate() error {
	sp := e.run.StartSpan(obs.SpanCalibrate)
	defer sp.End()
	c := e.cfg
	inst := e.inst
	swing := inst.VDD
	var r float64
	var dir int
	if inst.OutputRising {
		r = inst.CrossFrac * swing
		dir = +1
	} else {
		r = (1 - inst.CrossFrac) * swing
		dir = -1
	}

	fineStart := inst.Edge50 - c.CalSkew - inst.Clock.Rise/2 - c.FineMargin
	if fineStart <= 0 {
		return fmt.Errorf("stf: calibration fine window start %g ≤ 0; reduce CalSkew", fineStart)
	}
	grid, err := transient.TwoPhaseGrid(0, fineStart, inst.Edge50+c.PostWindow, c.CoarseStep, c.FineStep)
	if err != nil {
		return fmt.Errorf("stf: calibration grid: %w", err)
	}
	eng := transient.NewEngine(inst.Circuit, c.transientOptions(false, inst.Out))
	inst.Data.SetSkews(c.CalSkew, c.CalSkew)
	res, err := eng.RunObs(sp, e.x0, grid)
	if err != nil {
		return fmt.Errorf("stf: calibration transient: %w", err)
	}
	sp.Count(obs.CtrTransients, 1)
	e.Work.Add(res.Stats)
	tc, ok := num.CrossingTime(res.Times, res.Probes[0], r, dir, inst.Edge50)
	if !ok {
		return fmt.Errorf("stf: calibration output never crossed %g V after the active edge", r)
	}
	delay := tc - inst.Edge50
	e.cal = Calibration{
		TC:        tc,
		CharDelay: delay,
		Tf:        inst.Edge50 + (1+c.Degrade)*delay,
		R:         r,
		Rising:    inst.OutputRising,
	}
	return nil
}

// Calibration returns the measured characteristic timing.
func (e *Evaluator) Calibration() Calibration { return e.cal }

// Grid returns the τ-independent measurement grid (for diagnostics).
func (e *Evaluator) Grid() transient.Grid { return e.grid }

// Instance returns the evaluated register instance.
func (e *Evaluator) Instance() *registers.Instance { return e.inst }

// Eval computes h(τs, τh) = cᵀx(tf) − r with one transient simulation.
func (e *Evaluator) Eval(tauS, tauH float64) (float64, error) {
	e.inst.Data.SetSkews(tauS, tauH)
	res, err := e.engPlain.RunCtx(e.ctx, e.run, e.x0, e.grid)
	if err != nil {
		return 0, err
	}
	e.PlainEvals++
	e.run.Count(obs.CtrTransients, 1)
	e.Work.Add(res.Stats)
	return res.X[e.inst.Out] - e.cal.R, nil
}

// EvalGrad computes h and its gradient [∂h/∂τs, ∂h/∂τh] with one transient
// simulation carrying forward sensitivities.
func (e *Evaluator) EvalGrad(tauS, tauH float64) (h, dhdS, dhdH float64, err error) {
	e.inst.Data.SetSkews(tauS, tauH)
	res, err := e.engGrad.RunCtx(e.ctx, e.run, e.x0, e.grid)
	if err != nil {
		return 0, 0, 0, err
	}
	e.GradEvals++
	e.run.Count(obs.CtrTransientsGrad, 1)
	e.Work.Add(res.Stats)
	out := e.inst.Out
	return res.X[out] - e.cal.R, res.Ms[out], res.Mh[out], nil
}

// OutputAt runs a plain transient and returns the full output waveform;
// used for waveform figures (Fig. 3(a), Fig. 11(b)).
func (e *Evaluator) OutputAt(tauS, tauH float64) (times, out []float64, err error) {
	e.inst.Data.SetSkews(tauS, tauH)
	eng := transient.NewEngine(e.inst.Circuit, e.cfg.transientOptions(false, e.inst.Out))
	res, err := eng.RunCtx(e.ctx, e.run, e.x0, e.grid)
	if err != nil {
		return nil, nil, err
	}
	e.PlainEvals++
	e.run.Count(obs.CtrTransients, 1)
	e.Work.Add(res.Stats)
	return res.Times, res.Probes[0], nil
}

// OutputUntil runs a plain transient on an extended grid ending at tEnd
// (past the usual measurement time tf) and returns the output waveform.
// Used to expose post-tf behavior such as the C²MOS false transitions of
// Fig. 11(b).
func (e *Evaluator) OutputUntil(tauS, tauH, tEnd float64) (times, out []float64, err error) {
	if tEnd <= e.grid.Start() {
		return nil, nil, fmt.Errorf("stf: OutputUntil end %g before grid start", tEnd)
	}
	fineStart := e.inst.Edge50 - e.cfg.MaxSetupSkew - e.inst.Clock.Rise/2 - e.cfg.FineMargin
	grid, err := transient.TwoPhaseGrid(0, fineStart, tEnd, e.cfg.CoarseStep, e.cfg.FineStep)
	if err != nil {
		return nil, nil, err
	}
	e.inst.Data.SetSkews(tauS, tauH)
	eng := transient.NewEngine(e.inst.Circuit, e.cfg.transientOptions(false, e.inst.Out))
	res, err := eng.RunCtx(e.ctx, e.run, e.x0, grid)
	if err != nil {
		return nil, nil, err
	}
	e.PlainEvals++
	e.run.Count(obs.CtrTransients, 1)
	e.Work.Add(res.Stats)
	return res.Times, res.Probes[0], nil
}

// ClockToQ measures the actual clock-to-Q delay for one skew pair: the time
// from the active edge's 50% crossing to the output's crossing of the
// calibrated level r, found on an extended transient (the "pushout curve"
// data of the paper's Figs. 3 and 7). ok is false when the register fails
// to latch within the search window.
func (e *Evaluator) ClockToQ(tauS, tauH float64) (delay float64, ok bool, err error) {
	edge := e.inst.Edge50
	times, out, err := e.OutputUntil(tauS, tauH, edge+e.cfg.PostWindow)
	if err != nil {
		return 0, false, err
	}
	dir := -1
	if e.cal.Rising {
		dir = +1
	}
	tc, ok := num.CrossingTime(times, out, e.cal.R, dir, edge)
	if !ok {
		return 0, false, nil
	}
	return tc - edge, true, nil
}

// SupplyEnergy measures the energy drawn from the main supply over the
// measurement window [0, tf] for one skew pair, by integrating the supply
// branch current (trapezoidal rule over the transient grid) and scaling by
// VDD. Different points of the constant clock-to-Q contour can draw
// different energy — the power-optimization degree of freedom the paper's
// introduction highlights for SHIA-STA.
func (e *Evaluator) SupplyEnergy(tauS, tauH float64) (float64, error) {
	if e.inst.Supply < 0 {
		return 0, fmt.Errorf("stf: instance has no supply branch for energy measurement")
	}
	e.inst.Data.SetSkews(tauS, tauH)
	eng := transient.NewEngine(e.inst.Circuit, e.cfg.transientOptions(false, e.inst.Supply))
	res, err := eng.RunCtx(e.ctx, e.run, e.x0, e.grid)
	if err != nil {
		return 0, err
	}
	e.PlainEvals++
	e.run.Count(obs.CtrTransients, 1)
	e.Work.Add(res.Stats)
	// The branch current of a source delivering power is negative in the
	// MNA convention (current flows out of the + terminal), so the drawn
	// charge is −∫ i dt.
	q := 0.0
	ts := res.Times
	is := res.Probes[0]
	for k := 1; k < len(ts); k++ {
		q += 0.5 * (is[k] + is[k-1]) * (ts[k] - ts[k-1])
	}
	return -q * e.inst.VDD, nil
}

// PushoutPoint is one sample of a clock-to-Q pushout curve.
type PushoutPoint struct {
	// Skew is the swept skew value (seconds).
	Skew float64
	// Delay is the measured clock-to-Q delay; valid when Latched.
	Delay float64
	// Latched reports whether the register captured the data.
	Latched bool
}

// PushoutCurve sweeps one skew axis with the other pinned and measures the
// actual clock-to-Q delay at each sample — the "pushout" plots of the
// paper's Figs. 3(b) and 7(a): the delay sits at its characteristic value
// for generous skews and grows sharply (then fails) as the swept skew
// approaches the cliff. axisSetup selects whether τs (true) or τh (false)
// is swept from lo to hi in n samples.
func (e *Evaluator) PushoutCurve(axisSetup bool, pinned, lo, hi float64, n int) ([]PushoutPoint, error) {
	if n < 2 {
		return nil, fmt.Errorf("stf: PushoutCurve needs n ≥ 2")
	}
	if hi <= lo {
		return nil, fmt.Errorf("stf: PushoutCurve needs hi > lo")
	}
	out := make([]PushoutPoint, n)
	for i := 0; i < n; i++ {
		skew := lo + float64(i)*(hi-lo)/float64(n-1)
		var tauS, tauH float64
		if axisSetup {
			tauS, tauH = skew, pinned
		} else {
			tauS, tauH = pinned, skew
		}
		d, ok, err := e.ClockToQ(tauS, tauH)
		if err != nil {
			return nil, err
		}
		out[i] = PushoutPoint{Skew: skew, Delay: d, Latched: ok}
	}
	return out, nil
}

// ResetCounters zeroes the simulation counters (used between benchmark
// phases).
func (e *Evaluator) ResetCounters() {
	e.PlainEvals = 0
	e.GradEvals = 0
	e.Work = transient.Stats{}
}
