package stf

import (
	"math"
	"testing"

	"latchchar/internal/num"
	"latchchar/internal/registers"
	"latchchar/internal/transient"
)

// evaluators are expensive to build (DC + calibration transient), so the
// tests share one per cell.
var evalCache = map[string]*Evaluator{}

func evaluatorFor(t *testing.T, cellName string) *Evaluator {
	t.Helper()
	if e, ok := evalCache[cellName]; ok {
		return e
	}
	cell, err := registers.ByName(cellName)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	evalCache[cellName] = e
	return e
}

func TestCalibrationTSPC(t *testing.T) {
	e := evaluatorFor(t, "tspc")
	cal := e.Calibration()
	if !cal.Rising {
		t.Error("TSPC output should rise")
	}
	if cal.R != 1.25 {
		t.Errorf("r = %v, want 1.25 (50%% of 2.5 V)", cal.R)
	}
	// Characteristic delay should land in the paper's few-hundred-ps range.
	if cal.CharDelay < 100e-12 || cal.CharDelay > 600e-12 {
		t.Errorf("characteristic delay = %v ps", cal.CharDelay*1e12)
	}
	wantTf := 11.05e-9 + 1.1*cal.CharDelay
	if !num.ApproxEqual(cal.Tf, wantTf, 1e-12, 1e-15) {
		t.Errorf("tf = %v, want %v", cal.Tf, wantTf)
	}
	if !(cal.TC > 11.05e-9 && cal.TC < 12e-9) {
		t.Errorf("tc = %v", cal.TC)
	}
}

func TestCalibrationC2MOS(t *testing.T) {
	e := evaluatorFor(t, "c2mos")
	cal := e.Calibration()
	if cal.Rising {
		t.Error("C2MOS output should fall")
	}
	if !num.ApproxEqual(cal.R, 0.25, 1e-12, 0) {
		t.Errorf("r = %v, want 0.25 (90%% criterion on a 2.5 V fall)", cal.R)
	}
	if cal.CharDelay < 100e-12 || cal.CharDelay > 800e-12 {
		t.Errorf("characteristic delay = %v ps", cal.CharDelay*1e12)
	}
}

// TestHSignStructureTSPC verifies the characterization landscape: h > 0
// (output ahead of the degraded crossing) with generous skews, h < 0 with a
// starved setup or hold skew. This is the structure Figs. 1(a)/3(a) depict.
func TestHSignStructureTSPC(t *testing.T) {
	e := evaluatorFor(t, "tspc")
	h, err := e.Eval(600e-12, 500e-12)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 {
		t.Errorf("generous skews: h = %v, want > 0", h)
	}
	h, err = e.Eval(30e-12, 500e-12)
	if err != nil {
		t.Fatal(err)
	}
	if h >= 0 {
		t.Errorf("starved setup: h = %v, want < 0", h)
	}
	h, err = e.Eval(600e-12, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	if h >= 0 {
		t.Errorf("starved hold: h = %v, want < 0", h)
	}
}

func TestHSignStructureC2MOS(t *testing.T) {
	e := evaluatorFor(t, "c2mos")
	// Falling output: h = out − r is negative when properly latched.
	h, err := e.Eval(600e-12, 500e-12)
	if err != nil {
		t.Fatal(err)
	}
	if h >= 0 {
		t.Errorf("generous skews: h = %v, want < 0", h)
	}
	h, err = e.Eval(30e-12, 500e-12)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 {
		t.Errorf("starved setup: h = %v, want > 0", h)
	}
}

// TestGradientMatchesFiniteDifference is the end-to-end validation of the
// sensitivity machinery on the real register: ∂h/∂τ from the propagated
// mₛ/m_h must match finite differences of h.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	for _, cellName := range []string{"tspc", "c2mos"} {
		e := evaluatorFor(t, cellName)
		tauS, tauH := 300e-12, 200e-12
		h0, dhdS, dhdH, err := e.EvalGrad(tauS, tauH)
		if err != nil {
			t.Fatalf("%s: %v", cellName, err)
		}
		const d = 1e-13 // 0.1 ps
		hp, err := e.Eval(tauS+d, tauH)
		if err != nil {
			t.Fatal(err)
		}
		hm, err := e.Eval(tauS-d, tauH)
		if err != nil {
			t.Fatal(err)
		}
		fdS := (hp - hm) / (2 * d)
		if !num.ApproxEqual(fdS, dhdS, 5e-2, 1e6) {
			t.Errorf("%s: dh/dτs = %v, fd = %v", cellName, dhdS, fdS)
		}
		hp, err = e.Eval(tauS, tauH+d)
		if err != nil {
			t.Fatal(err)
		}
		hm, err = e.Eval(tauS, tauH-d)
		if err != nil {
			t.Fatal(err)
		}
		fdH := (hp - hm) / (2 * d)
		if !num.ApproxEqual(fdH, dhdH, 5e-2, 1e6) {
			t.Errorf("%s: dh/dτh = %v, fd = %v", cellName, dhdH, fdH)
		}
		// Consistency of the two evaluation paths.
		h1, err := e.Eval(tauS, tauH)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h1-h0) > 1e-6 {
			t.Errorf("%s: Eval and EvalGrad disagree: %v vs %v", cellName, h1, h0)
		}
	}
}

func TestHContinuityInSkews(t *testing.T) {
	// h must vary smoothly with τs (fixed grid ⇒ no staircase artifacts).
	e := evaluatorFor(t, "tspc")
	prevH := math.NaN()
	prevS := 0.0
	for _, s := range []float64{240e-12, 242e-12, 244e-12, 246e-12, 248e-12, 250e-12} {
		h, err := e.Eval(s, 300e-12)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(prevH) {
			slope := (h - prevH) / (s - prevS)
			// The gradient scale is ~2e9 V/s; anything wildly above means a
			// discontinuity.
			if math.Abs(slope) > 5e10 {
				t.Errorf("h jumps between τs=%v and %v: slope %v", prevS, s, slope)
			}
		}
		prevH, prevS = h, s
	}
}

func TestCountersAndReset(t *testing.T) {
	e := evaluatorFor(t, "tgate")
	e.ResetCounters()
	if _, err := e.Eval(400e-12, 300e-12); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := e.EvalGrad(400e-12, 300e-12); err != nil {
		t.Fatal(err)
	}
	if e.PlainEvals != 1 || e.GradEvals != 1 {
		t.Errorf("counters: plain=%d grad=%d", e.PlainEvals, e.GradEvals)
	}
	if e.Work.Steps == 0 || e.Work.NewtonIters == 0 {
		t.Errorf("work stats empty: %+v", e.Work)
	}
	e.ResetCounters()
	if e.PlainEvals != 0 || e.GradEvals != 0 || e.Work.Steps != 0 {
		t.Error("ResetCounters incomplete")
	}
}

func TestOutputAtShape(t *testing.T) {
	e := evaluatorFor(t, "tspc")
	times, out, err := e.OutputAt(400e-12, 300e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(out) || len(times) != e.Grid().Len() {
		t.Fatalf("waveform shape: %d vs %d", len(times), len(out))
	}
	if times[len(times)-1] != e.Calibration().Tf {
		t.Errorf("waveform should end at tf")
	}
}

func TestOutputUntilExtendsPastTf(t *testing.T) {
	e := evaluatorFor(t, "tspc")
	tEnd := e.Calibration().Tf + 1e-9
	times, out, err := e.OutputUntil(400e-12, 300e-12, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	if times[len(times)-1] != tEnd {
		t.Errorf("end = %v, want %v", times[len(times)-1], tEnd)
	}
	if len(out) != len(times) {
		t.Error("shape mismatch")
	}
	if _, _, err := e.OutputUntil(1e-12, 1e-12, -1); err == nil {
		t.Error("negative end accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Degrade != 0.10 || c.FineStep != 5e-12 || c.CoarseStep != 100e-12 {
		t.Errorf("defaults: %+v", c)
	}
	c = Config{Degrade: 0.2, Method: transient.TRAP}.withDefaults()
	if c.Degrade != 0.2 || c.Method != transient.TRAP {
		t.Errorf("overrides clobbered: %+v", c)
	}
}

func TestEvaluatorRejectsOversizedSkewDomain(t *testing.T) {
	cell, err := registers.ByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Fine window would start before t=0.
	if _, err := NewEvaluator(inst, Config{MaxSetupSkew: 12e-9}); err == nil {
		t.Error("expected error for oversized setup-skew domain")
	}
}

func TestClockToQ(t *testing.T) {
	e := evaluatorFor(t, "tspc")
	cal := e.Calibration()
	// Generous skews reproduce the characteristic delay.
	d, ok, err := e.ClockToQ(800e-12, 700e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("failed to latch with generous skews")
	}
	if !num.ApproxEqual(d, cal.CharDelay, 0.02, 1e-12) {
		t.Errorf("delay %v ps, characteristic %v ps", d*1e12, cal.CharDelay*1e12)
	}
	// Starved hold: no latch.
	_, ok, err = e.ClockToQ(600e-12, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("starved hold should fail to latch")
	}
}

func TestEvaluatorDeterministic(t *testing.T) {
	// Re-running the same evaluation must reproduce the result. The sparse
	// LU reuses its recorded pivot order across runs and only re-runs the
	// Markowitz analysis when a pivot goes stale, so consecutive runs can
	// differ by rounding when the pivot order changed in between — the
	// agreement requirement is therefore "to solver tolerance", far tighter
	// than anything the characterization layer can observe.
	e := evaluatorFor(t, "tspc")
	h1, err := e.Eval(313e-12, 171e-12)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Eval(313e-12, 171e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !num.ApproxEqual(h1, h2, 1e-9, 1e-9) {
		t.Errorf("non-deterministic: %v vs %v", h1, h2)
	}
	g1a, g1b, g1c, err := e.EvalGrad(313e-12, 171e-12)
	if err != nil {
		t.Fatal(err)
	}
	g2a, g2b, g2c, err := e.EvalGrad(313e-12, 171e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !num.ApproxEqual(g1a, g2a, 1e-9, 1e-9) ||
		!num.ApproxEqual(g1b, g2b, 1e-6, 1) ||
		!num.ApproxEqual(g1c, g2c, 1e-6, 1) {
		t.Errorf("gradient evaluation non-deterministic: (%v %v %v) vs (%v %v %v)",
			g1a, g1b, g1c, g2a, g2b, g2c)
	}
}

func TestSupplyEnergyMagnitude(t *testing.T) {
	e := evaluatorFor(t, "tspc")
	en, err := e.SupplyEnergy(500e-12, 400e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Scale check: total switched capacitance is tens of fF at 2.5 V over
	// a window with two clock edges → somewhere between 10 fJ and 100 pJ.
	if en < 1e-14 || en > 1e-10 {
		t.Errorf("supply energy %v J implausible", en)
	}
	// Energy must be deterministic.
	en2, err := e.SupplyEnergy(500e-12, 400e-12)
	if err != nil {
		t.Fatal(err)
	}
	if en != en2 {
		t.Errorf("non-deterministic energy: %v vs %v", en, en2)
	}
}

func TestSupplyEnergyVariesWithSkews(t *testing.T) {
	// Different skew pairs exercise the internal nodes differently; the
	// measured energies should not all collapse to one value.
	e := evaluatorFor(t, "tspc")
	a, err := e.SupplyEnergy(700e-12, 160e-12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.SupplyEnergy(280e-12, 600e-12)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Errorf("energies identical: %v", a)
	}
	rel := math.Abs(a-b) / math.Max(a, b)
	t.Logf("energy at two contour-ish points: %.3g J vs %.3g J (%.1f%% apart)", a, b, 100*rel)
}

func TestSupplyEnergyRequiresSupplyBranch(t *testing.T) {
	cell, err := registers.ByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst.Supply = -1
	ev, err := NewEvaluator(inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.SupplyEnergy(400e-12, 300e-12); err == nil {
		t.Error("missing supply branch accepted")
	}
}

// TestGradientConsistentAcrossIntegrators: BE and TRAP discretize the same
// ODE, so h and ∂h/∂τs must agree closely on the default fine grid. The
// hold derivative ∂h/∂τh is the stiffest quantity (the trailing data edge
// races an internal dynamic-node discharge): first-order BE needs sub-ps
// steps to converge it, so cross-method agreement is only asserted to a
// factor of two there — each method is separately validated against its own
// finite differences in TestGradientMatchesFiniteDifference.
func TestGradientConsistentAcrossIntegrators(t *testing.T) {
	cell, err := registers.ByName("tspc")
	if err != nil {
		t.Fatal(err)
	}
	instBE, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	evBE, err := NewEvaluator(instBE, Config{Method: transient.BE})
	if err != nil {
		t.Fatal(err)
	}
	instTR, err := cell.Build()
	if err != nil {
		t.Fatal(err)
	}
	evTR, err := NewEvaluator(instTR, Config{Method: transient.TRAP})
	if err != nil {
		t.Fatal(err)
	}
	// The two calibrations must themselves agree to discretization accuracy.
	if !num.ApproxEqual(evBE.Calibration().CharDelay, evTR.Calibration().CharDelay, 0.05, 0) {
		t.Errorf("calibrations differ: BE %v vs TRAP %v",
			evBE.Calibration().CharDelay, evTR.Calibration().CharDelay)
	}
	hB, gsB, ghB, err := evBE.EvalGrad(320e-12, 210e-12)
	if err != nil {
		t.Fatal(err)
	}
	hT, gsT, ghT, err := evTR.EvalGrad(320e-12, 210e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !num.ApproxEqual(hB, hT, 0.1, 0.05) {
		t.Errorf("h: BE %v vs TRAP %v", hB, hT)
	}
	if !num.ApproxEqual(gsB, gsT, 0.2, 1e8) {
		t.Errorf("dh/dτs: BE %v vs TRAP %v", gsB, gsT)
	}
	if ghB/ghT > 2 || ghT/ghB > 2 || num.Sign(ghB) != num.Sign(ghT) {
		t.Errorf("dh/dτh: BE %v vs TRAP %v beyond stiffness allowance", ghB, ghT)
	}
}

// TestPushoutCurveShape validates the Fig. 3(b)/7(a) structure: the delay
// equals the characteristic value for generous setup skews, grows
// monotonically as the skew shrinks toward the cliff, and capture fails
// beyond it.
func TestPushoutCurveShape(t *testing.T) {
	e := evaluatorFor(t, "tspc")
	cal := e.Calibration()
	pts, err := e.PushoutCurve(true, 500e-12, 150e-12, 750e-12, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !pts[len(pts)-1].Latched {
		t.Fatal("generous setup skew failed to latch")
	}
	// Plateau: the last sample is within 2% of the characteristic delay.
	if !num.ApproxEqual(pts[len(pts)-1].Delay, cal.CharDelay, 0.02, 0) {
		t.Errorf("plateau delay %v ps vs characteristic %v ps",
			pts[len(pts)-1].Delay*1e12, cal.CharDelay*1e12)
	}
	// Failure at the starved end.
	if pts[0].Latched {
		t.Error("starved setup skew latched")
	}
	// Monotone pushout: among latched samples, delay non-increasing with
	// growing skew (small jitter allowed).
	prev := math.Inf(1)
	for _, p := range pts {
		if !p.Latched {
			continue
		}
		if p.Delay > prev+2e-12 {
			t.Errorf("pushout not monotone at skew %v ps", p.Skew*1e12)
		}
		prev = p.Delay
	}
	// Validation errors.
	if _, err := e.PushoutCurve(true, 1, 0, 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := e.PushoutCurve(true, 1, 1, 0, 5); err == nil {
		t.Error("reversed range accepted")
	}
}
