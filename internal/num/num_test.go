package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0, 0, 0, 0},
		{-3, -2, -1, -2},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > hi")
		}
	}()
	Clamp(0, 1, -1)
}

func TestLerpInvLerpRoundTrip(t *testing.T) {
	if err := quick.Check(func(a, b, u float64) bool {
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		u = math.Mod(u, 10)
		if a == b || !IsFinite(a) || !IsFinite(b) || !IsFinite(u) {
			return true
		}
		x := Lerp(a, b, u)
		got := InvLerp(a, b, x)
		return ApproxEqual(got, u, 1e-9, 1e-9)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInvLerpPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a == b")
		}
	}()
	InvLerp(2, 2, 3)
}

func TestSmoothstepEndpointsAndMidpoint(t *testing.T) {
	if got := Smoothstep(0, 1, -5); got != 0 {
		t.Errorf("below edge0: got %v", got)
	}
	if got := Smoothstep(0, 1, 5); got != 1 {
		t.Errorf("above edge1: got %v", got)
	}
	if got := Smoothstep(0, 1, 0.5); got != 0.5 {
		t.Errorf("midpoint: got %v, want 0.5", got)
	}
	if got := Smoothstep(2, 4, 3); got != 0.5 {
		t.Errorf("shifted midpoint: got %v, want 0.5", got)
	}
}

func TestSmoothstepMonotone(t *testing.T) {
	prev := -1.0
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		v := Smoothstep(0, 1, x)
		if v < prev {
			t.Fatalf("not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestSmoothstepDerivMatchesFiniteDifference(t *testing.T) {
	const h = 1e-7
	for i := 1; i < 20; i++ {
		x := float64(i) / 20
		fd := (Smoothstep(0, 1, x+h) - Smoothstep(0, 1, x-h)) / (2 * h)
		an := SmoothstepDeriv(0, 1, x)
		if !ApproxEqual(fd, an, 1e-5, 1e-5) {
			t.Errorf("x=%v: fd=%v analytic=%v", x, fd, an)
		}
	}
}

func TestSmoothstepDerivZeroOutside(t *testing.T) {
	if d := SmoothstepDeriv(0, 1, -0.1); d != 0 {
		t.Errorf("got %v below edge", d)
	}
	if d := SmoothstepDeriv(0, 1, 1.1); d != 0 {
		t.Errorf("got %v above edge", d)
	}
	if d := SmoothstepDeriv(0, 1, 0); d != 0 {
		t.Errorf("C1 requires zero derivative at edge0, got %v", d)
	}
}

func TestLinStepAndDeriv(t *testing.T) {
	if got := LinStep(1, 3, 2); got != 0.5 {
		t.Errorf("LinStep midpoint = %v", got)
	}
	if got := LinStepDeriv(1, 3, 2); got != 0.5 {
		t.Errorf("LinStepDeriv interior = %v", got)
	}
	if got := LinStepDeriv(1, 3, 0); got != 0 {
		t.Errorf("LinStepDeriv outside = %v", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-13, 1e-12, 0) {
		t.Error("tiny relative difference should be equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-12, 1e-12) {
		t.Error("10% difference should not be equal")
	}
	if !ApproxEqual(0, 1e-15, 0, 1e-12) {
		t.Error("within atol should be equal")
	}
}

func TestSignAndSameSign(t *testing.T) {
	if Sign(3) != 1 || Sign(-2) != -1 || Sign(0) != 0 {
		t.Error("Sign wrong")
	}
	if !SameSign(1, 2) || !SameSign(-1, -5) {
		t.Error("SameSign false negative")
	}
	if SameSign(1, -1) || SameSign(0, 1) || SameSign(0, 0) {
		t.Error("SameSign false positive")
	}
}

func TestFiniteHelpers(t *testing.T) {
	if !IsFinite(1.5) || IsFinite(math.NaN()) || IsFinite(math.Inf(1)) {
		t.Error("IsFinite wrong")
	}
	if !AllFinite([]float64{1, 2, 3}) {
		t.Error("AllFinite false negative")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("AllFinite false positive")
	}
	if MaxAbs([]float64{-3, 2}) != 3 {
		t.Error("MaxAbs wrong")
	}
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs of empty should be 0")
	}
}

func TestCrossingTimeRising(t *testing.T) {
	ts := []float64{0, 1, 2, 3}
	vs := []float64{0, 0, 1, 1}
	tc, ok := CrossingTime(ts, vs, 0.5, +1, 0)
	if !ok || !ApproxEqual(tc, 1.5, 1e-12, 1e-12) {
		t.Errorf("got %v ok=%v, want 1.5", tc, ok)
	}
}

func TestCrossingTimeFalling(t *testing.T) {
	ts := []float64{0, 1, 2}
	vs := []float64{2, 2, 0}
	tc, ok := CrossingTime(ts, vs, 1.0, -1, 0)
	if !ok || !ApproxEqual(tc, 1.5, 1e-12, 1e-12) {
		t.Errorf("got %v ok=%v, want 1.5", tc, ok)
	}
}

func TestCrossingTimeRespectsTMin(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4}
	vs := []float64{0, 1, 0, 1, 1} // rises at ~0.5 and ~2.5
	tc, ok := CrossingTime(ts, vs, 0.5, +1, 2)
	if !ok || !ApproxEqual(tc, 2.5, 1e-12, 1e-12) {
		t.Errorf("got %v ok=%v, want 2.5", tc, ok)
	}
}

func TestCrossingTimeNone(t *testing.T) {
	if _, ok := CrossingTime([]float64{0, 1}, []float64{0, 0.4}, 0.5, +1, 0); ok {
		t.Error("expected no crossing")
	}
}

func TestCrossingTimeMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossingTime([]float64{0}, []float64{0, 1}, 0.5, 1, 0)
}

func TestSmoothstepPropertyBounded(t *testing.T) {
	f := func(x float64) bool {
		if !IsFinite(x) {
			return true
		}
		v := Smoothstep(-1, 1, x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
