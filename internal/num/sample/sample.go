// Package sample provides deterministic, index-addressable sample sources
// over the unit hypercube [0,1)ᵈ — the generators behind statistical process
// sampling. Three schemes are offered: independent pseudo-random draws
// (IID), Latin-hypercube stratification (LHS) and an Owen-scrambled Sobol
// sequence — the two quasi-Monte-Carlo designs cut the 1/√N error scaling of
// plain Monte-Carlo on the smooth low-dimensional integrands process
// variation produces.
//
// Every Source is a pure function of (seed, index): At(i) returns the same
// point no matter which goroutine asks, in which order, or how the indices
// are partitioned across workers. That is the stream-splitting contract a
// work-stealing pool needs — callers draw sample i when they get to it, and
// the aggregate sample set is bitwise identical at any parallelism.
package sample

import (
	"fmt"
	"math"
)

// Source yields the points of a d-dimensional low-discrepancy (or
// pseudo-random) sequence in [0,1)ᵈ.
type Source interface {
	// Dim returns the point dimensionality.
	Dim() int
	// At fills p (length ≥ Dim) with point i ≥ 0 of the sequence. At is a
	// pure function of the source's seed and i, safe for concurrent use.
	At(i int, p []float64)
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used as
// the counter-based randomness primitive throughout this package.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps 64 bits of randomness onto [0,1) with full float64 resolution.
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// IID is the independent pseudo-random source: coordinate d of point i is a
// counter-based hash of (seed, i, d), so it needs no state and no draw
// order.
type IID struct {
	seed uint64
	dim  int
}

// NewIID returns an independent uniform source of the given dimension.
func NewIID(seed int64, dim int) (*IID, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("sample: dimension must be ≥ 1, got %d", dim)
	}
	return &IID{seed: uint64(seed), dim: dim}, nil
}

// Dim returns the point dimensionality.
func (s *IID) Dim() int { return s.dim }

// At fills p with point i.
func (s *IID) At(i int, p []float64) {
	base := splitmix64(s.seed ^ 0xA5A5A5A5A5A5A5A5)
	for d := 0; d < s.dim; d++ {
		p[d] = unit(splitmix64(base ^ splitmix64(uint64(i)<<20|uint64(d))))
	}
}

// LHS is a Latin-hypercube design over a fixed sample count n: each axis is
// divided into n equal strata and each stratum is hit exactly once, with the
// within-stratum position jittered. Marginal uniformity is therefore exact
// by construction, which is what removes most of the variance of axis-wise
// statistics.
type LHS struct {
	seed  uint64
	dim   int
	n     int
	perms [][]int32 // perms[d][i] = stratum of point i on axis d
}

// NewLHS returns a Latin-hypercube source for exactly n points of the given
// dimension. Unlike the other sources an LHS design is a function of n: At
// panics on indices outside [0, n).
func NewLHS(seed int64, dim, n int) (*LHS, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("sample: dimension must be ≥ 1, got %d", dim)
	}
	if n <= 0 {
		return nil, fmt.Errorf("sample: LHS needs a positive sample count, got %d", n)
	}
	s := &LHS{seed: uint64(seed), dim: dim, n: n, perms: make([][]int32, dim)}
	for d := range s.perms {
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		// Seeded Fisher-Yates: the permutation depends only on (seed, d, n).
		state := splitmix64(s.seed ^ splitmix64(uint64(d)+0xD1B54A32D192ED03))
		for i := n - 1; i > 0; i-- {
			state = splitmix64(state)
			j := int(state % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		s.perms[d] = perm
	}
	return s, nil
}

// Dim returns the point dimensionality.
func (s *LHS) Dim() int { return s.dim }

// N returns the design's sample count.
func (s *LHS) N() int { return s.n }

// At fills p with point i of the design.
func (s *LHS) At(i int, p []float64) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("sample: LHS index %d outside design [0, %d)", i, s.n))
	}
	for d := 0; d < s.dim; d++ {
		jitter := unit(splitmix64(s.seed ^ splitmix64(uint64(d)<<32|uint64(i)+0x9E3779B9)))
		p[d] = (float64(s.perms[d][i]) + jitter) / float64(s.n)
	}
}

// sobolMaxDim bounds the Sobol dimensionality: direction numbers are baked
// in for the first 8 dimensions (new-joe-kuo-6 initialization), which covers
// the process axes with headroom.
const sobolMaxDim = 8

// joeKuo carries the primitive-polynomial degree s, coefficient word a and
// initial direction numbers m for Sobol dimensions 2..8 (dimension 1 is the
// van der Corput sequence).
var joeKuo = []struct {
	s int
	a uint32
	m []uint32
}{
	{1, 0, []uint32{1}},
	{2, 1, []uint32{1, 3}},
	{3, 1, []uint32{1, 3, 1}},
	{3, 2, []uint32{1, 1, 1}},
	{4, 1, []uint32{1, 1, 3, 3}},
	{4, 4, []uint32{1, 3, 5, 13}},
	{5, 2, []uint32{1, 1, 5, 5, 17}},
}

// Sobol is an Owen-scrambled Sobol sequence: the base-2 digital (t,s)-net
// whose prefixes fill the hypercube far more evenly than random points
// (discrepancy O(log(N)ᵈ/N)), with a seeded nested-uniform scramble per
// dimension so distinct seeds give statistically independent randomizations
// while preserving the net structure. The raw origin point needs no special
// casing: the scramble maps it to a uniformly random point of the stream.
type Sobol struct {
	seed uint64
	dim  int
	v    [][32]uint32 // direction numbers per dimension
}

// NewSobol returns a scrambled Sobol source of the given dimension (≤ 8).
func NewSobol(seed int64, dim int) (*Sobol, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("sample: dimension must be ≥ 1, got %d", dim)
	}
	if dim > sobolMaxDim {
		return nil, fmt.Errorf("sample: Sobol supports up to %d dimensions, got %d", sobolMaxDim, dim)
	}
	s := &Sobol{seed: uint64(seed), dim: dim, v: make([][32]uint32, dim)}
	for d := 0; d < dim; d++ {
		v := &s.v[d]
		if d == 0 {
			for k := 0; k < 32; k++ {
				v[k] = 1 << (31 - k)
			}
			continue
		}
		p := joeKuo[d-1]
		for k := 0; k < p.s; k++ {
			v[k] = p.m[k] << (31 - k)
		}
		// Bratley-Fox recurrence for the remaining direction numbers.
		for k := p.s; k < 32; k++ {
			v[k] = v[k-p.s] ^ (v[k-p.s] >> uint(p.s))
			for j := 1; j < p.s; j++ {
				if (p.a>>(p.s-1-j))&1 == 1 {
					v[k] ^= v[k-j]
				}
			}
		}
	}
	return s, nil
}

// Dim returns the point dimensionality.
func (s *Sobol) Dim() int { return s.dim }

// At fills p with point i of the scrambled sequence.
func (s *Sobol) At(i int, p []float64) {
	// Closed-form Gray-code expansion: every index is independently
	// addressable, and any aligned 2ᵏ-point prefix keeps the net property.
	g := uint32(i) ^ uint32(i)>>1
	for d := 0; d < s.dim; d++ {
		var x uint32
		for b := 0; g>>uint(b) != 0; b++ {
			if g>>uint(b)&1 == 1 {
				x ^= s.v[d][b]
			}
		}
		key := splitmix64(s.seed ^ splitmix64(uint64(d)+0xBF58476D1CE4E5B9))
		p[d] = float64(owenScramble(x, key)) / (1 << 32)
	}
}

// owenScramble applies a hash-based nested-uniform (Owen) scramble to the 32
// binary digits of x: the flip of digit ℓ depends only on the digits above
// it, so nested dyadic intervals stay nested and the net's equidistribution
// survives the randomization.
func owenScramble(x uint32, key uint64) uint32 {
	var out uint32
	for l := 0; l < 32; l++ {
		bit := x >> (31 - l) & 1
		prefix := uint64(0)
		if l > 0 {
			prefix = uint64(x >> (32 - l))
		}
		h := splitmix64(key ^ splitmix64(prefix<<6|uint64(l)))
		out = out<<1 | bit^uint32(h&1)
	}
	return out
}

// Normal maps a uniform variate u ∈ (0,1) onto a standard normal via the
// inverse CDF (Acklam's rational approximation, |relative error| < 1.15e-9).
// The inverse-CDF transform — unlike Box-Muller — preserves the
// stratification structure of LHS and Sobol points, which is what carries
// their variance reduction through to Gaussian process parameters. Inputs at
// or beyond the open interval are clamped to ±~8.2σ.
func Normal(u float64) float64 {
	const tiny = 1e-16
	if u <= tiny {
		u = tiny
	} else if u >= 1-1e-16 {
		u = 1 - 1e-16
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
			1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
			6.680131188771972e+01, -1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
			-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
			3.754408661907416e+00}
	)
	switch {
	case u < pLow:
		q := math.Sqrt(-2 * math.Log(u))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case u <= pHigh:
		q := u - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-u))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
