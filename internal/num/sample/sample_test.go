package sample

import (
	"math"
	"testing"
)

func points(t *testing.T, s Source, n int) [][]float64 {
	t.Helper()
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, s.Dim())
		s.At(i, out[i])
	}
	return out
}

func TestSourcesDeterministicAndOrderIndependent(t *testing.T) {
	mk := map[string]func(seed int64) Source{
		"iid": func(seed int64) Source { s, _ := NewIID(seed, 4); return s },
		"lhs": func(seed int64) Source { s, _ := NewLHS(seed, 4, 64); return s },
		"sobol": func(seed int64) Source {
			s, _ := NewSobol(seed, 4)
			return s
		},
	}
	for name, make := range mk {
		t.Run(name, func(t *testing.T) {
			a := points(t, make(7), 64)
			b := make(7)
			// Reverse evaluation order: index addressing must make the draw
			// order irrelevant.
			for i := 63; i >= 0; i-- {
				p := [4]float64{}
				b.At(i, p[:])
				for d := range p {
					if p[d] != a[i][d] {
						t.Fatalf("point %d dim %d: order-dependent draw: %v vs %v", i, d, p[d], a[i][d])
					}
				}
			}
			c := points(t, make(8), 64)
			same := true
			for i := range a {
				for d := range a[i] {
					if a[i][d] != c[i][d] {
						same = false
					}
				}
			}
			if same {
				t.Error("different seeds produced identical sequences")
			}
			for i := range a {
				for d := range a[i] {
					if a[i][d] < 0 || a[i][d] >= 1 {
						t.Fatalf("point %d dim %d: %v outside [0,1)", i, d, a[i][d])
					}
				}
			}
		})
	}
}

func TestLHSExactStratification(t *testing.T) {
	const n = 40
	s, err := NewLHS(3, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	pts := points(t, s, n)
	for d := 0; d < 2; d++ {
		hit := make([]int, n)
		for i := range pts {
			hit[int(pts[i][d]*n)]++
		}
		for stratum, c := range hit {
			if c != 1 {
				t.Fatalf("axis %d stratum %d hit %d times, want exactly 1", d, stratum, c)
			}
		}
	}
}

func TestLHSRejectsBadShape(t *testing.T) {
	if _, err := NewLHS(1, 0, 8); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewLHS(1, 2, 0); err == nil {
		t.Error("n 0 accepted")
	}
	s, _ := NewLHS(1, 2, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-design index did not panic")
		}
	}()
	var p [2]float64
	s.At(4, p[:])
}

// Owen scrambling must preserve the net property: any prefix of 2^k points
// hits each dyadic stratum of width 2^-k exactly once in every dimension.
func TestSobolStratifiedPerDimension(t *testing.T) {
	s, err := NewSobol(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4 // 16 strata over the first 16 points
	n := 1 << k
	pts := points(t, s, n)
	for d := 0; d < 4; d++ {
		hit := make([]int, n)
		for i := range pts {
			hit[int(pts[i][d]*float64(n))]++
		}
		for stratum, c := range hit {
			if c != 1 {
				t.Fatalf("dim %d stratum %d hit %d times, want exactly 1", d, stratum, c)
			}
		}
	}
}

func TestSobolBeatsIIDDiscrepancy(t *testing.T) {
	// Star-discrepancy proxy: max deviation of the empirical CDF of the
	// first coordinate pair over a dyadic grid of anchored boxes. The
	// scrambled net should fill space measurably more evenly than IID.
	disc := func(s Source, n int) float64 {
		pts := points(t, s, n)
		worst := 0.0
		for gx := 1; gx <= 8; gx++ {
			for gy := 1; gy <= 8; gy++ {
				x, y := float64(gx)/8, float64(gy)/8
				in := 0
				for _, p := range pts {
					if p[0] < x && p[1] < y {
						in++
					}
				}
				if d := math.Abs(float64(in)/float64(n) - x*y); d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	sb, _ := NewSobol(5, 2)
	id, _ := NewIID(5, 2)
	ds, di := disc(sb, 256), disc(id, 256)
	if ds >= di {
		t.Errorf("scrambled Sobol discrepancy %v not below IID %v", ds, di)
	}
}

func TestSobolRejectsBadDim(t *testing.T) {
	if _, err := NewSobol(1, 0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewSobol(1, sobolMaxDim+1); err == nil {
		t.Error("oversized dim accepted")
	}
}

func TestNormalInverseCDF(t *testing.T) {
	cases := []struct{ u, z float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9772498680518208, 2},
		{0.9986501019683699, 3},
		{0.975, 1.959963984540054},
	}
	for _, c := range cases {
		if got := Normal(c.u); math.Abs(got-c.z) > 1e-6 {
			t.Errorf("Normal(%v) = %v, want %v", c.u, got, c.z)
		}
		// Symmetry.
		if got := Normal(1 - c.u); math.Abs(got+c.z) > 1e-6 {
			t.Errorf("Normal(%v) = %v, want %v", 1-c.u, got, -c.z)
		}
	}
	// Extreme inputs clamp to finite tails instead of returning ±Inf.
	for _, u := range []float64{0, 1, -1, 2} {
		if z := Normal(u); math.IsNaN(z) || math.IsInf(z, 0) || math.Abs(z) > 10 {
			t.Errorf("Normal(%v) = %v, want a finite clamped tail", u, z)
		}
	}
}

// The inverse-CDF transform of an LHS design must keep the sample mean and
// variance of the Gaussian much tighter than IID at the same count.
func TestLHSGaussianMoments(t *testing.T) {
	const n = 256
	s, _ := NewLHS(9, 1, n)
	var mean, m2 float64
	var p [1]float64
	for i := 0; i < n; i++ {
		s.At(i, p[:])
		z := Normal(p[0])
		mean += z
		m2 += z * z
	}
	mean /= n
	m2 /= n
	if math.Abs(mean) > 0.01 {
		t.Errorf("LHS Gaussian mean %v, want ≈ 0", mean)
	}
	if math.Abs(m2-1) > 0.05 {
		t.Errorf("LHS Gaussian second moment %v, want ≈ 1", m2)
	}
}
