// Package num provides small scalar numeric helpers shared across the
// simulator and characterization code: clamping, smooth ramps, interpolation
// and tolerance-based comparisons.
//
// Everything in this package is pure and allocation-free; it exists so the
// rest of the code base agrees on one definition of "close enough" and one
// smoothstep shape.
package num

import "math"

// Eps is the default relative tolerance used by approximate comparisons.
const Eps = 1e-12

// Clamp returns x limited to the closed interval [lo, hi].
// It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("num: Clamp with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a (at u=0) and b (at u=1).
// u is not clamped.
func Lerp(a, b, u float64) float64 { return a + (b-a)*u }

// InvLerp returns the parameter u such that Lerp(a, b, u) == x.
// It panics if a == b.
func InvLerp(a, b, x float64) float64 {
	if a == b {
		panic("num: InvLerp with a == b")
	}
	return (x - a) / (b - a)
}

// Smoothstep is the cubic Hermite ramp 3u²−2u³ evaluated on the clamped
// parameter u = (x−edge0)/(edge1−edge0). It is C¹: its derivative vanishes
// at both edges. edge0 must be strictly less than edge1.
func Smoothstep(edge0, edge1, x float64) float64 {
	u := Clamp((x-edge0)/(edge1-edge0), 0, 1)
	return u * u * (3 - 2*u)
}

// SmoothstepDeriv returns d/dx Smoothstep(edge0, edge1, x).
func SmoothstepDeriv(edge0, edge1, x float64) float64 {
	w := edge1 - edge0
	u := (x - edge0) / w
	if u <= 0 || u >= 1 {
		return 0
	}
	return 6 * u * (1 - u) / w
}

// LinStep is the piecewise-linear ramp from 0 (x ≤ edge0) to 1 (x ≥ edge1).
func LinStep(edge0, edge1, x float64) float64 {
	return Clamp((x-edge0)/(edge1-edge0), 0, 1)
}

// LinStepDeriv returns d/dx LinStep(edge0, edge1, x). At the two kink points
// it returns the interior slope, which is the convention most useful for the
// sensitivity right-hand sides built on top of it.
func LinStepDeriv(edge0, edge1, x float64) float64 {
	if x < edge0 || x > edge1 {
		return 0
	}
	return 1 / (edge1 - edge0)
}

// ApproxEqual reports whether a and b are equal to within
// atol + rtol·max(|a|,|b|).
func ApproxEqual(a, b, rtol, atol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= atol+rtol*scale
}

// WithinRel reports whether a and b agree to relative tolerance rtol,
// treating exact equality (including both zero) as agreement.
func WithinRel(a, b, rtol float64) bool {
	if a == b {
		return true
	}
	return ApproxEqual(a, b, rtol, 0)
}

// Sign returns -1, 0 or +1 according to the sign of x.
func Sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// SameSign reports whether a and b are both strictly positive or both
// strictly negative.
func SameSign(a, b float64) bool {
	return (a > 0 && b > 0) || (a < 0 && b < 0)
}

// IsFinite reports whether x is neither NaN nor ±Inf.
func IsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// AllFinite reports whether every element of xs is finite.
func AllFinite(xs []float64) bool {
	for _, x := range xs {
		if !IsFinite(x) {
			return false
		}
	}
	return true
}

// MaxAbs returns the maximum absolute value in xs, or 0 for an empty slice.
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// CrossingTime returns the time at which a sampled waveform (times ts,
// values vs) first crosses level going in direction dir (+1 rising,
// -1 falling) at or after tMin, using linear interpolation between samples.
// It returns ok=false if no such crossing exists. ts must be strictly
// increasing and len(ts) == len(vs).
func CrossingTime(ts, vs []float64, level float64, dir int, tMin float64) (t float64, ok bool) {
	if len(ts) != len(vs) {
		panic("num: CrossingTime length mismatch")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] < tMin {
			continue
		}
		a, b := vs[i-1], vs[i]
		var crossed bool
		switch {
		case dir >= 0:
			crossed = a < level && b >= level
		default:
			crossed = a > level && b <= level
		}
		if !crossed {
			continue
		}
		if a == b {
			return ts[i], true
		}
		u := (level - a) / (b - a)
		tc := Lerp(ts[i-1], ts[i], u)
		if tc >= tMin {
			return tc, true
		}
	}
	return 0, false
}
