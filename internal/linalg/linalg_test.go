package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	u := v.Clone()
	u.Add(w)
	if u[0] != 5 || u[1] != 7 || u[2] != 9 {
		t.Errorf("Add: %v", u)
	}
	u.CopyFrom(v)
	u.Sub(w)
	if u[0] != -3 || u[1] != -3 || u[2] != -3 {
		t.Errorf("Sub: %v", u)
	}
	u.CopyFrom(v)
	u.AddScaled(2, w)
	if u[0] != 9 || u[1] != 12 || u[2] != 15 {
		t.Errorf("AddScaled: %v", u)
	}
	u.CopyFrom(v)
	u.Scale(-1)
	if u[0] != -1 {
		t.Errorf("Scale: %v", u)
	}
	if v.Dot(w) != 32 {
		t.Errorf("Dot = %v", v.Dot(w))
	}
	if (Vector{-3, 2}).NormInf() != 3 {
		t.Error("NormInf wrong")
	}
	if !almostEq((Vector{3, 4}).Norm2(), 5, 1e-14) {
		t.Error("Norm2 wrong")
	}
	u.Zero()
	if u.NormInf() != 0 {
		t.Error("Zero failed")
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Add":       func() { Vector{1}.Add(Vector{1, 2}) },
		"Sub":       func() { Vector{1}.Sub(Vector{1, 2}) },
		"AddScaled": func() { Vector{1}.AddScaled(1, Vector{1, 2}) },
		"Dot":       func() { Vector{1}.Dot(Vector{1, 2}) },
		"CopyFrom":  func() { Vector{1}.CopyFrom(Vector{1, 2}) },
		"Weighted":  func() { Vector{1}.WeightedMaxNorm(Vector{1, 2}, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestWeightedMaxNorm(t *testing.T) {
	v := Vector{1e-4, 2e-6}
	ref := Vector{1.0, 1.0}
	got := v.WeightedMaxNorm(ref, 1e-3, 1e-6)
	// element 0: 1e-4/(1e-6+1e-3) ≈ 0.0999; element 1: 2e-6/1.001e-3 ≈ 0.002
	if !almostEq(got, 1e-4/(1e-6+1e-3), 1e-12) {
		t.Errorf("got %v", got)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Errorf("At/Set/Add wrong: %v", m)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Errorf("Transpose wrong: %v", tr)
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero failed")
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(2, 0)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for j := 0; j < 3; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, float64(j+4))
	}
	x := Vector{1, 1, 1}
	y := NewVector(2)
	m.MulVec(x, y)
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec: %v", y)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	prod := a.Mul(Identity(4))
	for i := range a.Data {
		if a.Data[i] != prod.Data[i] {
			t.Fatal("A·I != A")
		}
	}
	prod2 := Identity(4).Mul(a)
	for i := range a.Data {
		if a.Data[i] != prod2.Data[i] {
			t.Fatal("I·A != A")
		}
	}
}

func TestMatMulAssociativeWithVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(3, 4)
	b := NewMatrix(4, 2)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	x := Vector{1.5, -2.5}
	// (A·B)·x vs A·(B·x)
	ab := a.Mul(b)
	y1 := NewVector(3)
	ab.MulVec(x, y1)
	bx := NewVector(4)
	b.MulVec(x, bx)
	y2 := NewVector(3)
	a.MulVec(bx, y2)
	for i := range y1 {
		if !almostEq(y1[i], y2[i], 1e-12) {
			t.Fatalf("mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLinear(a, Vector{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	x, err := SolveLinear(a, Vector{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Error("expected ErrSingular for rank-deficient matrix")
	}
	z := NewMatrix(3, 3)
	if _, err := Factor(z); err == nil {
		t.Error("expected ErrSingular for zero matrix")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -2, 1e-12) {
		t.Errorf("Det = %v, want -2", f.Det())
	}
}

func TestLUEmptyMatrix(t *testing.T) {
	f, err := Factor(NewMatrix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(Vector{})
	if len(x) != 0 {
		t.Error("empty solve should yield empty vector")
	}
}

// Property: for random well-conditioned systems, the LU solution satisfies
// A·x ≈ b to tight tolerance.
func TestLURandomResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal boost keeps the condition number sane.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := NewVector(n)
		a.MulVec(x, r)
		r.Sub(b)
		if r.NormInf() > 1e-10*(1+b.NormInf()) {
			t.Fatalf("trial %d: residual %v too large", trial, r.NormInf())
		}
	}
}

// Property: Solve(A, A·x) recovers x.
func TestLURoundTripQuick(t *testing.T) {
	f := func(a11, a12, a21, a22, x1, x2 float64) bool {
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Mod(v, 3)
		}
		a := NewMatrix(2, 2)
		// bound() lies in (−3, 3); +8 keeps the matrix strictly diagonally
		// dominant (diagonal ≥ 5 vs off-diagonal < 3) for every draw.
		a.Set(0, 0, bound(a11)+8)
		a.Set(0, 1, bound(a12))
		a.Set(1, 0, bound(a21))
		a.Set(1, 1, bound(a22)+8)
		x := Vector{bound(x1), bound(x2)}
		b := NewVector(2)
		a.MulVec(x, b)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		return almostEq(got[0], x[0], 1e-9) && almostEq(got[1], x[1], 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveIntoAliasesSafely(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := Vector{6, 4}
	f.SolveInto(b, b) // solve in place
	if !almostEq(b[0], 2, 1e-14) || !almostEq(b[1], 2, 1e-14) {
		t.Errorf("in-place solve: %v", b)
	}
}

func TestNormInfMatrix(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, -1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 0.5)
	if m.NormInf() != 3 {
		t.Errorf("NormInf = %v", m.NormInf())
	}
}
