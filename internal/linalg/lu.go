package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when factorization encounters a pivot that is
// exactly zero or negligibly small relative to the matrix scale.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds the LU factorization PA = LU of a square matrix with partial
// (row) pivoting. L has unit diagonal and is stored, together with U, in lu.
type LU struct {
	n    int
	lu   []float64 // row-major combined L (strict lower) and U (upper)
	perm []int     // perm[i] = original row placed at position i
	sign int       // permutation parity, for Det
}

// Factor computes the LU factorization of a. The input matrix is not
// modified. It returns ErrSingular if a pivot smaller than pivTol times the
// matrix infinity-norm scale is encountered.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{
		n:    n,
		lu:   append([]float64(nil), a.Data...),
		perm: make([]int, n),
		sign: 1,
	}
	for i := range f.perm {
		f.perm[i] = i
	}
	scale := a.NormInf()
	if scale == 0 {
		if n == 0 {
			return f, nil
		}
		return nil, ErrSingular
	}
	// Circuit Jacobians can be badly scaled, so the singularity test is
	// deliberately permissive: only a pivot vanishing relative to the overall
	// matrix scale is rejected.
	pivFloor := scale * 1e-30
	for k := 0; k < n; k++ {
		// Find pivot row.
		p, best := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best <= pivFloor {
			return nil, ErrSingular
		}
		if p != k {
			row1 := f.lu[k*n : (k+1)*n]
			row2 := f.lu[p*n : (p+1)*n]
			for j := range row1 {
				row1[j], row2[j] = row2[j], row1[j]
			}
			f.perm[k], f.perm[p] = f.perm[p], f.perm[k]
			f.sign = -f.sign
		}
		piv := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := f.lu[i*n+k] / piv
			f.lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= m * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b using the factorization. b is not modified; the
// solution is returned in a new vector.
func (f *LU) Solve(b Vector) Vector {
	x := NewVector(f.n)
	f.SolveInto(b, x)
	return x
}

// SolveInto solves A·x = b, writing the solution into x. b and x may alias
// only if they are the same slice.
func (f *LU) SolveInto(b, x Vector) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("linalg: Solve dimension mismatch")
	}
	// Apply permutation: y = P·b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.perm[i]]
	}
	// Forward substitution L·z = y (unit diagonal).
	for i := 1; i < n; i++ {
		s := y[i]
		row := f.lu[i*n : i*n+i]
		for j, l := range row {
			s -= l * y[j]
		}
		y[i] = s
	}
	// Back substitution U·x = z.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * y[j]
		}
		y[i] = s / f.lu[i*n+i]
	}
	copy(x, y)
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveLinear is a convenience that factors a and solves a single system.
func SolveLinear(a *Matrix, b Vector) (Vector, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
