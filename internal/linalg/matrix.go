package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x. y must have length Rows, x length Cols; y and x
// must not alias.
func (m *Matrix) MulVec(x, y Vector) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("linalg: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// Mul returns M·B as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Transpose returns Mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// NormInf returns the maximum absolute row sum.
func (m *Matrix) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += math.Abs(m.At(i, j))
		}
		if s > max {
			max = s
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .6g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
