// Package linalg provides dense vectors, dense matrices and an LU solver
// with partial pivoting. It is the reference implementation the sparse
// package is validated against, and the fallback solver for small systems.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// CopyFrom copies w into v. The lengths must match.
func (v Vector) CopyFrom(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: CopyFrom length mismatch %d vs %d", len(v), len(w)))
	}
	copy(v, w)
}

// Add sets v = v + w.
func (v Vector) Add(w Vector) {
	if len(v) != len(w) {
		panic("linalg: Add length mismatch")
	}
	for i := range v {
		v[i] += w[i]
	}
}

// Sub sets v = v − w.
func (v Vector) Sub(w Vector) {
	if len(v) != len(w) {
		panic("linalg: Sub length mismatch")
	}
	for i := range v {
		v[i] -= w[i]
	}
}

// AddScaled sets v = v + s·w.
func (v Vector) AddScaled(s float64, w Vector) {
	if len(v) != len(w) {
		panic("linalg: AddScaled length mismatch")
	}
	for i := range v {
		v[i] += s * w[i]
	}
}

// Scale sets v = s·v.
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns vᵀw.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// NormInf returns the maximum absolute element, or 0 for an empty vector.
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// WeightedMaxNorm returns maxᵢ |v[i]| / (atol + rtol·|ref[i]|), the scaled
// norm used for Newton and integrator convergence checks. ref supplies the
// per-element magnitude scale; it must have the same length as v.
func (v Vector) WeightedMaxNorm(ref Vector, rtol, atol float64) float64 {
	if len(v) != len(ref) {
		panic("linalg: WeightedMaxNorm length mismatch")
	}
	m := 0.0
	for i, x := range v {
		w := math.Abs(x) / (atol + rtol*math.Abs(ref[i]))
		if w > m {
			m = w
		}
	}
	return m
}
