package cli

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// fakeSignals records registrations against a synthetic signal channel.
type fakeSignals struct {
	mu         sync.Mutex
	ch         chan<- os.Signal
	registered bool
	stopped    chan struct{} // closed on the first stop call
}

func newFakeSignals() *fakeSignals {
	return &fakeSignals{stopped: make(chan struct{})}
}

func (f *fakeSignals) notify(ch chan<- os.Signal, sigs ...os.Signal) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ch = ch
	f.registered = true
}

func (f *fakeSignals) stop(ch chan<- os.Signal) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.registered && ch == f.ch {
		f.registered = false
		close(f.stopped)
	}
}

func (f *fakeSignals) deliver(sig os.Signal) {
	f.mu.Lock()
	ch := f.ch
	f.mu.Unlock()
	ch <- sig
}

// TestFirstSignalCancelsAndReleases: one synthetic SIGINT cancels the
// context AND deregisters the channel, so the next real signal would reach
// the default handler (process termination).
func TestFirstSignalCancelsAndReleases(t *testing.T) {
	f := newFakeSignals()
	ctx, cancel := signalContext(context.Background(), f.notify, f.stop, os.Interrupt)
	defer cancel()
	if !f.registered {
		t.Fatal("signalContext did not register a channel")
	}
	select {
	case <-ctx.Done():
		t.Fatal("context canceled before any signal")
	default:
	}
	f.deliver(os.Interrupt)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled after first signal")
	}
	select {
	case <-f.stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("registration not released after first signal: a second ^C would not hard-exit")
	}
}

// TestStopReleasesWithoutSignal: the returned stop function deregisters and
// cancels even when no signal ever arrives (the deferred-cleanup path every
// cmd/ main takes on normal completion).
func TestStopReleasesWithoutSignal(t *testing.T) {
	f := newFakeSignals()
	ctx, stop := signalContext(context.Background(), f.notify, f.stop, os.Interrupt)
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not cancel the context")
	}
	select {
	case <-f.stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not release the registration")
	}
}

// TestParentCancellationReleases: canceling the parent context releases the
// registration without a signal, so no handler goroutine or registration
// leaks past the run's lifetime.
func TestParentCancellationReleases(t *testing.T) {
	f := newFakeSignals()
	parent, cancelParent := context.WithCancel(context.Background())
	_, stop := signalContext(parent, f.notify, f.stop, os.Interrupt)
	defer stop()
	cancelParent()
	select {
	case <-f.stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancellation did not release the registration")
	}
}

// TestHelperSignalLoop is the subprocess body for the hard-exit test: it
// installs the real handler, reports readiness, reports cancellation, then
// lingers so only a default-disposition signal can end it.
func TestHelperSignalLoop(t *testing.T) {
	if os.Getenv("LATCHCHAR_SIGNAL_HELPER") != "1" {
		t.Skip("helper process body, driven by TestSecondSignalHardExits")
	}
	ctx, stop := SignalContext()
	defer stop()
	fmt.Println("helper:ready")
	<-ctx.Done()
	fmt.Println("helper:canceled")
	time.Sleep(time.Minute) // only a hard exit gets past this
}

// TestSecondSignalHardExits drives the real handler in a subprocess: the
// first SIGINT cancels the context (graceful path), the second kills the
// process through the restored default disposition.
func TestSecondSignalHardExits(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal dispositions")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestHelperSignalLoop$", "-test.v")
	cmd.Env = append(os.Environ(), "LATCHCHAR_SIGNAL_HELPER=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitFor := func(marker string) {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("helper exited before printing %q", marker)
				}
				if strings.Contains(line, marker) {
					return
				}
			case <-deadline:
				t.Fatalf("timeout waiting for %q", marker)
			}
		}
	}

	waitFor("helper:ready")
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waitFor("helper:canceled")
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var ee *exec.ExitError
		if err == nil {
			t.Fatal("helper exited cleanly; second SIGINT must hard-exit")
		} else if !errors.As(err, &ee) {
			t.Fatalf("unexpected wait error: %v", err)
		} else if ws, ok := ee.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGINT {
			t.Fatalf("helper did not die from SIGINT: %v (sys %v)", ee, ee.Sys())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("helper survived the second SIGINT")
	}
}
