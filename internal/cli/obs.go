package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"latchchar/internal/core"
	"latchchar/internal/obs"
)

// ObsFlags is the observability flag set shared by the command-line tools:
// -trace (JSONL event stream), -chrometrace (Perfetto/chrome://tracing),
// -progress (live stderr reporting) and -v (run summary on exit).
type ObsFlags struct {
	TracePath  string
	ChromePath string
	Progress   bool
	Verbose    bool
}

// Register installs the flags on fs.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TracePath, "trace", "", "write a JSON-lines event trace to this path")
	fs.StringVar(&f.ChromePath, "chrometrace", "", "write a Chrome trace-event file (load in Perfetto) to this path")
	fs.BoolVar(&f.Progress, "progress", false, "report live progress on stderr")
	fs.BoolVar(&f.Verbose, "v", false, "print a run summary (phases, counters, histograms) on stderr")
}

// Build constructs the observability run the flags describe and returns it
// with a closer that flushes sinks and output files. When no flag asks for
// observability the run is nil — collection fully disabled — and the closer
// is a no-op.
func (f *ObsFlags) Build(errw io.Writer) (*obs.Run, func() error, error) {
	if f.TracePath == "" && f.ChromePath == "" && !f.Progress && !f.Verbose {
		return nil, func() error { return nil }, nil
	}
	var ropts []obs.Option
	if f.Progress {
		ropts = append(ropts, obs.WithProgress(func(p obs.Progress) {
			writeProgress(errw, p)
		}, 500*time.Millisecond))
	}
	run := obs.New(ropts...)
	var files []*os.File
	closeAll := func() {
		for _, fl := range files {
			fl.Close()
		}
	}
	if f.TracePath != "" {
		fl, err := os.Create(f.TracePath)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		files = append(files, fl)
		run.AddSink(obs.NewJSONLSink(fl))
	}
	if f.ChromePath != "" {
		fl, err := os.Create(f.ChromePath)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		files = append(files, fl)
		run.AddSink(obs.NewChromeTraceSink(fl))
	}
	if f.Verbose {
		run.AddSink(obs.NewTextSummarySink(errw))
	}
	closer := func() error {
		err := run.Close()
		for _, fl := range files {
			if cerr := fl.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	return run, closer, nil
}

// writeProgress renders one live progress report as a single stderr line.
func writeProgress(w io.Writer, p obs.Progress) {
	fmt.Fprintf(w, "[%s] %d/%d", p.Phase, p.Done, p.Total)
	if p.TauS != 0 || p.TauH != 0 {
		fmt.Fprintf(w, "  τs=%s τh=%s", Ps(p.TauS), Ps(p.TauH))
	}
	if p.CorrectorIters > 0 {
		fmt.Fprintf(w, "  corrector=%d it", p.CorrectorIters)
	}
	if p.ETA > 0 && p.Done < p.Total {
		fmt.Fprintf(w, "  eta=%v", p.ETA.Round(100*time.Millisecond))
	}
	fmt.Fprintln(w)
}

// RenderError writes err to w; for solver convergence failures it expands
// the structured diagnostics — the last corrector iterates with their |h|
// residuals and the predictor step lengths tried — so the failure site is
// debuggable without rerunning under a tracer.
func RenderError(w io.Writer, err error) {
	var ce *core.ConvergenceError
	if !errors.As(err, &ce) {
		fmt.Fprintln(w, err)
		return
	}
	fmt.Fprintln(w, err)
	if len(ce.StepLens) > 0 {
		fmt.Fprintf(w, "  predictor step lengths tried (ps):")
		for _, a := range ce.StepLens {
			fmt.Fprintf(w, " %.3g", a*1e12)
		}
		fmt.Fprintln(w)
	}
	if len(ce.Iterates) == 0 {
		// A trace failure wraps the corrector failure that killed it; pull
		// the iterate trail from the nested error.
		var inner *core.ConvergenceError
		if errors.As(ce.Err, &inner) {
			ce = inner
		}
	}
	if len(ce.Iterates) > 0 {
		fmt.Fprintf(w, "  last corrector iterates:\n")
		fmt.Fprintf(w, "    %-4s %-12s %-12s %-12s\n", "it", "tau_s_ps", "tau_h_ps", "|h|")
		for i, p := range ce.Iterates {
			fmt.Fprintf(w, "    %-4d %-12.4f %-12.4f %-12.3e\n", i+1, p.TauS*1e12, p.TauH*1e12, absf(p.H))
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
