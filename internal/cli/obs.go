package cli

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"latchchar/internal/core"
	"latchchar/internal/obs"
)

// ObsFlags is the observability flag set shared by the command-line tools:
// -trace (JSONL event stream), -chrometrace (Perfetto/chrome://tracing),
// -progress (live stderr reporting), -v (run summary on exit), -log
// (structured text logging with a per-invocation correlation ID) and
// -flightdump (post-mortem event dump on failure).
type ObsFlags struct {
	TracePath  string
	ChromePath string
	Progress   bool
	Verbose    bool
	LogLevel   string
	DumpPath   string

	corr string
	rec  *obs.Recorder
}

// Register installs the flags on fs.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TracePath, "trace", "", "write a JSON-lines event trace to this path")
	fs.StringVar(&f.ChromePath, "chrometrace", "", "write a Chrome trace-event file (load in Perfetto) to this path")
	fs.BoolVar(&f.Progress, "progress", false, "report live progress on stderr")
	fs.BoolVar(&f.Verbose, "v", false, "print a run summary (phases, counters, histograms) on stderr")
	fs.StringVar(&f.LogLevel, "log", "", "structured logging on stderr at this level (debug, info, warn, error)")
	fs.StringVar(&f.DumpPath, "flightdump", "", "on failure, write a flight-recorder post-mortem dump (JSONL) to this path")
}

// NewCorrID returns a fresh correlation ID (a random W3C-style trace-id).
func NewCorrID() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		return fmt.Sprintf("%032x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b)
}

// Corr returns the invocation's correlation ID; it is generated lazily, so
// every caller (run construction, loggers, dumps) sees the same ID.
func (f *ObsFlags) Corr() string {
	if f.corr == "" {
		f.corr = NewCorrID()
	}
	return f.corr
}

// Logger builds the structured text logger -log asks for, writing to errw;
// an unset -log yields a discard logger, so call sites log unconditionally.
// Callers attach the correlation ID themselves (logger.With("corr", ...)) or
// use LoggerWithCorr.
func (f *ObsFlags) Logger(errw io.Writer) (*slog.Logger, error) {
	if f.LogLevel == "" {
		return slog.New(slog.NewTextHandler(io.Discard, nil)), nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(f.LogLevel)); err != nil {
		return nil, fmt.Errorf("-log: unknown level %q (have debug, info, warn, error)", f.LogLevel)
	}
	return slog.New(slog.NewTextHandler(errw, &slog.HandlerOptions{Level: lvl})), nil
}

// LoggerWithCorr is Logger with the invocation's correlation ID attached to
// every line.
func (f *ObsFlags) LoggerWithCorr(errw io.Writer) (*slog.Logger, error) {
	l, err := f.Logger(errw)
	if err != nil {
		return nil, err
	}
	return l.With("corr", f.Corr()), nil
}

// DumpOnError writes the flight-recorder post-mortem for err to the
// -flightdump path: the recorded event window plus a structured error event
// (for convergence failures, the corrector iterate ring and the step
// schedule). A no-op when the flag is unset, no run was built, or err is
// nil. Returns the path written ("" when skipped).
func (f *ObsFlags) DumpOnError(err error) (string, error) {
	if f.DumpPath == "" || f.rec == nil || err == nil {
		return "", nil
	}
	out, cerr := os.Create(f.DumpPath)
	if cerr != nil {
		return "", cerr
	}
	meta := obs.DumpMeta{Corr: f.Corr(), Reason: "failed", Err: err.Error()}
	if errors.Is(err, core.ErrCanceled) {
		meta.Reason = "canceled"
	}
	werr := f.rec.WriteDump(out, meta, errorEvent(err))
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	return f.DumpPath, nil
}

// OnFailure is the shared CLI error path: it logs the failure with the
// correlation ID and writes the -flightdump post-mortem when one was asked
// for, reporting the written path on errw. A no-op for nil err.
func (f *ObsFlags) OnFailure(logger *slog.Logger, errw io.Writer, err error) {
	if err == nil {
		return
	}
	logger.Error("run failed", "error", err)
	path, derr := f.DumpOnError(err)
	switch {
	case derr != nil:
		fmt.Fprintf(errw, "flight dump failed: %v\n", derr)
	case path != "":
		fmt.Fprintf(errw, "flight dump written to %s\n", path)
		logger.Info("flight dump written", "path", path)
	}
}

// errorEvent converts a solver failure into the dump's structured error
// event, preserving the convergence iterate ring when present.
func errorEvent(err error) *obs.Event {
	if err == nil {
		return nil
	}
	ev := &obs.Event{Msg: err.Error()}
	var ce *core.ConvergenceError
	if errors.As(err, &ce) {
		ev.Op = ce.Op
		ev.Iterates = make([]obs.Iterate, len(ce.Iterates))
		for i, p := range ce.Iterates {
			ev.Iterates[i] = obs.Iterate{TauS: p.TauS, TauH: p.TauH, H: p.H}
		}
		ev.StepLens = append([]float64(nil), ce.StepLens...)
		return ev
	}
	var can *core.CanceledError
	if errors.As(err, &can) {
		ev.Op = can.Op
	}
	return ev
}

// Build constructs the observability run the flags describe and returns it
// with a closer that flushes sinks and output files. When no flag asks for
// observability the run is nil — collection fully disabled — and the closer
// is a no-op. (-log alone does not force a run: logging works without one.)
func (f *ObsFlags) Build(errw io.Writer) (*obs.Run, func() error, error) {
	if f.TracePath == "" && f.ChromePath == "" && !f.Progress && !f.Verbose && f.DumpPath == "" {
		return nil, func() error { return nil }, nil
	}
	ropts := []obs.Option{obs.WithCorr(f.Corr())}
	if f.Progress {
		ropts = append(ropts, obs.WithProgress(func(p obs.Progress) {
			writeProgress(errw, p)
		}, 500*time.Millisecond))
	}
	run := obs.New(ropts...)
	if f.DumpPath != "" {
		f.rec = obs.NewRecorder(0)
		run.AddSink(f.rec)
	}
	var files []*os.File
	closeAll := func() {
		for _, fl := range files {
			fl.Close()
		}
	}
	if f.TracePath != "" {
		fl, err := os.Create(f.TracePath)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		files = append(files, fl)
		run.AddSink(obs.NewJSONLSink(fl))
	}
	if f.ChromePath != "" {
		fl, err := os.Create(f.ChromePath)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		files = append(files, fl)
		run.AddSink(obs.NewChromeTraceSink(fl))
	}
	if f.Verbose {
		run.AddSink(obs.NewTextSummarySink(errw))
	}
	closer := func() error {
		err := run.Close()
		for _, fl := range files {
			if cerr := fl.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	return run, closer, nil
}

// writeProgress renders one live progress report as a single stderr line.
func writeProgress(w io.Writer, p obs.Progress) {
	fmt.Fprintf(w, "[%s] %d/%d", p.Phase, p.Done, p.Total)
	if p.TauS != 0 || p.TauH != 0 {
		fmt.Fprintf(w, "  τs=%s τh=%s", Ps(p.TauS), Ps(p.TauH))
	}
	if p.CorrectorIters > 0 {
		fmt.Fprintf(w, "  corrector=%d it", p.CorrectorIters)
	}
	if p.ETA > 0 && p.Done < p.Total {
		fmt.Fprintf(w, "  eta=%v", p.ETA.Round(100*time.Millisecond))
	}
	fmt.Fprintln(w)
}

// RenderError writes err to w; for solver convergence failures it expands
// the structured diagnostics — the last corrector iterates with their |h|
// residuals and the predictor step lengths tried — so the failure site is
// debuggable without rerunning under a tracer.
func RenderError(w io.Writer, err error) {
	var ce *core.ConvergenceError
	if !errors.As(err, &ce) {
		fmt.Fprintln(w, err)
		return
	}
	fmt.Fprintln(w, err)
	if len(ce.StepLens) > 0 {
		fmt.Fprintf(w, "  predictor step lengths tried (ps):")
		for _, a := range ce.StepLens {
			fmt.Fprintf(w, " %.3g", a*1e12)
		}
		fmt.Fprintln(w)
	}
	if len(ce.Iterates) == 0 {
		// A trace failure wraps the corrector failure that killed it; pull
		// the iterate trail from the nested error.
		var inner *core.ConvergenceError
		if errors.As(ce.Err, &inner) {
			ce = inner
		}
	}
	if len(ce.Iterates) > 0 {
		fmt.Fprintf(w, "  last corrector iterates:\n")
		fmt.Fprintf(w, "    %-4s %-12s %-12s %-12s\n", "it", "tau_s_ps", "tau_h_ps", "|h|")
		for i, p := range ce.Iterates {
			fmt.Fprintf(w, "    %-4d %-12.4f %-12.4f %-12.3e\n", i+1, p.TauS*1e12, p.TauH*1e12, absf(p.H))
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
