package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled on SIGINT or SIGTERM, so a ^C
// during a long sweep stops in-flight traces mid-transient instead of
// killing the process with partial output files left behind — the engine
// hands back the partial contour traced so far. The first signal cancels the
// context and releases the registration, so a second signal falls through to
// the default handler and terminates immediately: ^C to stop cleanly, ^C^C
// to get out now. The returned stop function releases the registration.
func SignalContext() (context.Context, context.CancelFunc) {
	return signalContext(context.Background(), signal.Notify, signal.Stop,
		os.Interrupt, syscall.SIGTERM)
}

// signalContext implements SignalContext over injectable registration
// functions, so tests can drive the handler with a synthetic channel and
// observe the release instead of delivering real signals.
func signalContext(parent context.Context,
	notify func(chan<- os.Signal, ...os.Signal),
	stop func(chan<- os.Signal),
	sigs ...os.Signal) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 1)
	notify(ch, sigs...)
	go func() {
		select {
		case <-ch:
			// First signal: restore the default disposition before canceling,
			// so a second signal during teardown hard-exits.
			stop(ch)
			cancel()
		case <-ctx.Done():
			stop(ch)
		}
	}()
	return ctx, func() {
		stop(ch)
		cancel()
	}
}
