package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled on SIGINT or SIGTERM, so a ^C
// during a long sweep stops in-flight traces mid-transient instead of
// killing the process with partial output files left behind. The returned
// stop function releases the signal registration; a second signal after the
// first falls through to the default handler and terminates immediately.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
