package cli

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"latchchar/internal/core"
	"latchchar/internal/obs"
)

func TestObsFlagsDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var f ObsFlags
	f.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	run, closer, err := f.Build(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		t.Fatal("no flags set, want nil run")
	}
	if err := closer(); err != nil {
		t.Fatalf("no-op closer: %v", err)
	}
}

func TestObsFlagsBuildSinks(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var f ObsFlags
	f.Register(fs)
	jsonl := filepath.Join(dir, "t.jsonl")
	chrome := filepath.Join(dir, "t.json")
	if err := fs.Parse([]string{"-trace", jsonl, "-chrometrace", chrome, "-v"}); err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	run, closer, err := f.Build(&errw)
	if err != nil {
		t.Fatal(err)
	}
	if run == nil {
		t.Fatal("flags set, want a live run")
	}
	sp := run.StartSpan(obs.SpanTrace)
	sp.Count(obs.CtrPoints, 1)
	sp.End()
	if err := closer(); err != nil {
		t.Fatalf("closer: %v", err)
	}
	events, err := obs.ReadJSONL(mustOpen(t, jsonl))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if err := obs.Validate(events); err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if !strings.Contains(errw.String(), "contour points: 1") {
		t.Fatalf("-v summary missing counters:\n%s", errw.String())
	}
	if b := mustRead(t, chrome); !bytes.Contains(b, []byte(`"ph": "X"`)) {
		t.Fatalf("chrome trace has no complete events:\n%s", b)
	}
}

func TestWriteProgress(t *testing.T) {
	var b bytes.Buffer
	writeProgress(&b, obs.Progress{
		Phase: obs.SpanTrace, Done: 3, Total: 40,
		TauS: 265.8e-12, TauH: 512.0e-12, CorrectorIters: 2,
		ETA: 1500 * time.Millisecond,
	})
	got := b.String()
	for _, want := range []string{"[trace] 3/40", "τs=265.80 ps", "τh=512.00 ps", "corrector=2 it", "eta=1.5s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("progress line missing %q: %s", want, got)
		}
	}
}

func TestRenderErrorConvergence(t *testing.T) {
	inner := &core.ConvergenceError{
		Op: "mpnr",
		At: core.Point{TauS: 250e-12, TauH: 480e-12},
		Iterates: []core.Point{
			{TauS: 251e-12, TauH: 481e-12, H: 0.3},
			{TauS: 252e-12, TauH: 482e-12, H: -0.2},
		},
		Err: core.ErrNoConvergence,
	}
	outer := &core.ConvergenceError{
		Op:       "trace",
		At:       core.Point{TauS: 250e-12, TauH: 480e-12},
		StepLens: []float64{5e-12, 2.5e-12, 1.25e-12},
		Err:      inner,
	}
	var b bytes.Buffer
	RenderError(&b, fmt.Errorf("latchchar: %w", outer))
	got := b.String()
	for _, want := range []string{
		"predictor step lengths tried (ps): 5 2.5 1.25",
		"last corrector iterates",
		"251.0000", "3.000e-01", // iterate trail pulled from the nested error
		"2.000e-01",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("rendered error missing %q:\n%s", want, got)
		}
	}
}

func TestRenderErrorPlain(t *testing.T) {
	var b bytes.Buffer
	RenderError(&b, fmt.Errorf("boring failure"))
	if got := b.String(); got != "boring failure\n" {
		t.Fatalf("plain error rendered as %q", got)
	}
}

func mustOpen(t *testing.T, path string) io.Reader {
	t.Helper()
	return bytes.NewReader(mustRead(t, path))
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
