package cli

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"latchchar/internal/core"
)

func TestLoadCellBuiltin(t *testing.T) {
	cell, err := LoadCell("tspc", "")
	if err != nil {
		t.Fatal(err)
	}
	if cell.Name != "tspc" {
		t.Errorf("name %q", cell.Name)
	}
	if _, err := LoadCell("nope", ""); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestLoadCellNetlist(t *testing.T) {
	deck := `
.model nch nmos VT0=0.43 KP=115u
Vc clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vd d 0 DATA(11.05n 2.5 0 0.1n 0.1n)
M1 q d 0 0 nch W=1u L=0.25u
.out q
`
	dir := t.TempDir()
	path := filepath.Join(dir, "latch.cir")
	if err := os.WriteFile(path, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	cell, err := LoadCell("", path)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Name != path {
		t.Errorf("name %q", cell.Name)
	}
	if _, err := cell.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCell("", filepath.Join(dir, "missing.cir")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.cir")
	if err := os.WriteFile(bad, []byte("garbage line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCell("", bad); err == nil {
		t.Error("bad deck accepted")
	}
}

func samplePoints() []core.Point {
	return []core.Point{
		{TauS: 300e-12, TauH: 180e-12, H: 1e-7, CorrectorIters: 2},
		{TauS: 280e-12, TauH: 200e-12, H: -2e-8, CorrectorIters: 3},
	}
}

func TestWriteContourCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContourCSV(&buf, samplePoints()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %d", len(lines))
	}
	if lines[0] != "tau_s_ps,tau_h_ps,h_volts,corrector_iters" {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "300.0000,180.0000,") {
		t.Errorf("row: %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",3") {
		t.Errorf("iters column: %q", lines[2])
	}
}

func TestWriteContourJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContourJSON(&buf, samplePoints()); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries: %d", len(got))
	}
	if got[0]["tau_s_ps"].(float64) != 300 {
		t.Errorf("tau_s_ps: %v", got[0]["tau_s_ps"])
	}
	if got[1]["corrector_iters"].(float64) != 3 {
		t.Errorf("iters: %v", got[1]["corrector_iters"])
	}
}

func TestWriteSurfaceCSV(t *testing.T) {
	var buf bytes.Buffer
	s := []float64{1e-12, 2e-12}
	h := []float64{3e-12}
	v := [][]float64{{0.5}, {1.5}}
	if err := WriteSurfaceCSV(&buf, s, h, v); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.HasPrefix(lines[1], "1.0000,3.0000,") {
		t.Errorf("row: %q", lines[1])
	}
}

func TestWritePolylinesCSV(t *testing.T) {
	var buf bytes.Buffer
	polys := [][][2]float64{
		{{1e-12, 2e-12}, {3e-12, 4e-12}},
		{{5e-12, 6e-12}},
	}
	if err := WritePolylinesCSV(&buf, polys); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.HasPrefix(lines[3], "1,5.0000") {
		t.Errorf("second polyline row: %q", lines[3])
	}
}

func TestOpenOutput(t *testing.T) {
	w, closeFn, err := OpenOutput("-")
	if err != nil || w != os.Stdout {
		t.Errorf("stdout: %v %v", w, err)
	}
	if err := closeFn(); err != nil {
		t.Error(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	w, closeFn, err = OpenOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Errorf("file contents: %q %v", data, err)
	}
	if _, _, err := OpenOutput(filepath.Join(dir, "no", "such", "dir", "x")); err == nil {
		t.Error("bad path accepted")
	}
}

func TestPs(t *testing.T) {
	if got := Ps(247.46e-12); got != "247.46 ps" {
		t.Errorf("Ps: %q", got)
	}
}

func TestWriteContourEnergyCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContourEnergyCSV(&buf, samplePoints(), []float64{210e-15, 250e-15}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %d", len(lines))
	}
	if !strings.HasSuffix(lines[1], ",210.0000") {
		t.Errorf("energy column: %q", lines[1])
	}
	if err := WriteContourEnergyCSV(&buf, samplePoints(), []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}
