// Package cli holds the glue shared by the command-line tools: loading a
// register cell by built-in name or netlist path, and formatting contour
// data as CSV or JSON.
package cli

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"latchchar/internal/core"
	"latchchar/internal/netlist"
	"latchchar/internal/registers"
	"latchchar/internal/vet"
)

// LoadCell resolves a register cell: if netlistPath is non-empty the deck is
// parsed from that file, otherwise name selects a built-in cell.
func LoadCell(name, netlistPath string) (*registers.Cell, error) {
	if netlistPath != "" {
		deck, err := netlist.ParseFile(netlistPath)
		if err != nil {
			return nil, err
		}
		return deck.Cell(netlistPath), nil
	}
	return registers.ByName(name)
}

// VetCell builds one instance of the cell and runs the default analyzer
// registry over it — the pre-run gate shared by the command-line tools.
func VetCell(cell *registers.Cell, spec vet.Spec, opts vet.Options) (*vet.Report, error) {
	inst, err := cell.Build()
	if err != nil {
		return nil, fmt.Errorf("cli: build %s: %w", cell.Name, err)
	}
	return vet.VetInstance(cell.Name, inst, spec, opts)
}

// SplitChecks parses a comma-separated check list from a CLI flag.
func SplitChecks(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Gate runs the vet pre-flight over the cell, printing findings to errw.
// It returns an error when Error-severity findings are present, so callers
// can abort before spending transient simulations.
func Gate(errw io.Writer, cell *registers.Cell, spec vet.Spec, opts vet.Options) error {
	rep, err := VetCell(cell, spec, opts)
	if err != nil {
		return err
	}
	if err := rep.WriteText(errw); err != nil {
		return err
	}
	if rep.HasErrors() {
		return fmt.Errorf("vet: %d error(s) in characterization setup (rerun with -vet=false to override)", rep.Count(vet.Error))
	}
	return nil
}

// WriteContourCSV writes a traced contour as CSV with picosecond columns.
func WriteContourCSV(w io.Writer, points []core.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tau_s_ps", "tau_h_ps", "h_volts", "corrector_iters"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			strconv.FormatFloat(p.TauS*1e12, 'f', 4, 64),
			strconv.FormatFloat(p.TauH*1e12, 'f', 4, 64),
			strconv.FormatFloat(p.H, 'e', 6, 64),
			strconv.Itoa(p.CorrectorIters),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteContourEnergyCSV writes a contour with a per-point supply-energy
// column (femtojoules).
func WriteContourEnergyCSV(w io.Writer, points []core.Point, energies []float64) error {
	if len(points) != len(energies) {
		return fmt.Errorf("cli: %d points but %d energies", len(points), len(energies))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tau_s_ps", "tau_h_ps", "h_volts", "corrector_iters", "energy_fj"}); err != nil {
		return err
	}
	for i, p := range points {
		rec := []string{
			strconv.FormatFloat(p.TauS*1e12, 'f', 4, 64),
			strconv.FormatFloat(p.TauH*1e12, 'f', 4, 64),
			strconv.FormatFloat(p.H, 'e', 6, 64),
			strconv.Itoa(p.CorrectorIters),
			strconv.FormatFloat(energies[i]*1e15, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// contourJSON is the JSON shape of a contour point.
type contourJSON struct {
	TauSPs float64 `json:"tau_s_ps"`
	TauHPs float64 `json:"tau_h_ps"`
	H      float64 `json:"h_volts"`
	Iters  int     `json:"corrector_iters"`
}

// WriteContourJSON writes a traced contour as a JSON array.
func WriteContourJSON(w io.Writer, points []core.Point) error {
	out := make([]contourJSON, len(points))
	for i, p := range points {
		out[i] = contourJSON{
			TauSPs: p.TauS * 1e12,
			TauHPs: p.TauH * 1e12,
			H:      p.H,
			Iters:  p.CorrectorIters,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteSurfaceCSV writes surface samples as long-form CSV rows.
func WriteSurfaceCSV(w io.Writer, sAxis, hAxis []float64, v [][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tau_s_ps", "tau_h_ps", "value"}); err != nil {
		return err
	}
	for i, s := range sAxis {
		for j, h := range hAxis {
			rec := []string{
				strconv.FormatFloat(s*1e12, 'f', 4, 64),
				strconv.FormatFloat(h*1e12, 'f', 4, 64),
				strconv.FormatFloat(v[i][j], 'e', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePolylinesCSV writes extracted iso-contour polylines, tagging each
// point with its polyline index.
func WritePolylinesCSV(w io.Writer, polys [][][2]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"polyline", "tau_s_ps", "tau_h_ps"}); err != nil {
		return err
	}
	for k, pl := range polys {
		for _, p := range pl {
			rec := []string{
				strconv.Itoa(k),
				strconv.FormatFloat(p[0]*1e12, 'f', 4, 64),
				strconv.FormatFloat(p[1]*1e12, 'f', 4, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// OpenOutput returns w for path "-" or "" (stdout), else creates the file.
// The returned closer is a no-op for stdout.
func OpenOutput(path string) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// Ps formats seconds as picoseconds for human-readable summaries.
func Ps(sec float64) string { return fmt.Sprintf("%.2f ps", sec*1e12) }
